// CLI failure semantics: stable exit codes, --json-errors, the exact->SMC
// fallback, and truncation reporting. Exit codes are part of the scripting
// contract (DESIGN.md, "Failure semantics") — pin them.
#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace fmtree::cli {
namespace {

const char* kBrokenModel =
    "toplevel T;\n"
    "T or A B;\n"
    "A ebe phases=0 mean=5;\n"   // bad attribute
    "B foo bar;\n"               // unknown statement
    "T ebe phases=2 mean=5;\n";  // duplicate

const char* kMarkovian =
    "toplevel T;\n"
    "T or A B;\n"
    "A be exp(0.2);\n"
    "B be exp(0.3);\n"
    "corrective cost=0 delay=0;\n";

const char* kSimModel =
    "toplevel T;\n"
    "T or A B;\n"
    "A ebe phases=3 mean=5 threshold=2 repair_cost=100;\n"
    "B be exp(0.05);\n"
    "inspection I period=0.5 cost=20 targets A;\n"
    "corrective cost=5000 delay=0;\n";

/// Writes a model under the test's working directory and returns the path.
std::string write_model(const std::string& name, const std::string& text) {
  const std::string path = "fmtree_cli_hardening_" + name + ".fmt";
  std::ofstream f(path);
  f << text;
  return path;
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

TEST(CliArgs, HardeningFlagsParsed) {
  const Options o = parse_args({"exact", "m.fmt", "--timeout", "2.5", "--state-cap",
                                "4096", "--json-errors", "--no-fallback"});
  EXPECT_DOUBLE_EQ(o.timeout, 2.5);
  EXPECT_EQ(o.state_cap, 4096u);
  EXPECT_TRUE(o.json_errors);
  EXPECT_TRUE(o.no_fallback);
  const Options defaults = parse_args({"check", "m.fmt"});
  EXPECT_DOUBLE_EQ(defaults.timeout, 0.0);
  EXPECT_EQ(defaults.state_cap, 1u << 20);
  EXPECT_FALSE(defaults.json_errors);
  EXPECT_FALSE(defaults.no_fallback);
}

TEST(CliArgs, HardeningFlagsValidated) {
  EXPECT_THROW(parse_args({"check", "m", "--timeout", "-1"}), DomainError);
  EXPECT_THROW(parse_args({"check", "m", "--state-cap", "0"}), DomainError);
  EXPECT_THROW(parse_args({"check", "m", "--state-cap", "1.5"}), DomainError);
}

TEST(CliArgs, FlagsMayPrecedeTheModelPath) {
  // `fmtree check --json-errors broken.fmt` is the documented invocation;
  // flag/positional order must not matter.
  const Options o = parse_args({"check", "--json-errors", "m.fmt"});
  EXPECT_TRUE(o.json_errors);
  EXPECT_EQ(o.model_path, "m.fmt");
  const Options c = parse_args({"compare", "--runs", "7", "a.fmt", "b.fmt"});
  EXPECT_EQ(c.model_path, "a.fmt");
  EXPECT_EQ(c.model_path_b, "b.fmt");
  EXPECT_EQ(c.runs, 7u);
  EXPECT_THROW(parse_args({"check", "--json-errors"}), DomainError);
  EXPECT_THROW(parse_args({"compare", "a.fmt", "--runs", "7"}), DomainError);
  EXPECT_THROW(parse_args({"check", "a.fmt", "b.fmt"}), DomainError);
}

TEST(CliExit, DiagnosticsExitThreeAndListEveryError) {
  const std::string path = write_model("broken", kBrokenModel);
  std::ostringstream out, err;
  const int rc = main_impl({"check", path}, out, err);
  EXPECT_EQ(rc, kExitDiagnostics);
  // All three problems from one pass, each with a stable code tag.
  EXPECT_EQ(count_occurrences(err.str(), "error["), 3u);
  EXPECT_NE(err.str().find("P104"), std::string::npos);
  EXPECT_NE(err.str().find("duplicate"), std::string::npos);
}

TEST(CliExit, JsonErrorsEmitMachineReadableDiagnostics) {
  const std::string path = write_model("broken_json", kBrokenModel);
  std::ostringstream out, err;
  const int rc = main_impl({"check", path, "--json-errors"}, out, err);
  EXPECT_EQ(rc, kExitDiagnostics);
  const std::string json = err.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(count_occurrences(json, "\"code\":"), 3u);
  EXPECT_NE(json.find("\"line\":4"), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
}

TEST(CliExit, JsonErrorsCoverIoFailuresToo) {
  std::ostringstream out, err;
  const int rc = main_impl({"check", "/nonexistent/x.fmt", "--json-errors"}, out, err);
  EXPECT_EQ(rc, kExitUsage);  // pinned: missing file stays exit 2
  EXPECT_NE(err.str().find("\"code\":\"U101\""), std::string::npos);
  EXPECT_NE(err.str().find("cannot open"), std::string::npos);
}

TEST(CliExit, ModelDiagnosticsAlsoExitThree) {
  const std::string path = write_model(
      "orphan", "toplevel T;\nT or A;\nA be exp(1);\nOrphan be exp(1);\n");
  std::ostringstream out, err;
  EXPECT_EQ(main_impl({"check", path}, out, err), kExitDiagnostics);
  EXPECT_NE(err.str().find("M103"), std::string::npos);
}

TEST(CliExit, ExactFallsBackToSmcWhenStateCapExceeded) {
  const std::string path = write_model("fallback", kMarkovian);
  std::ostringstream out, err;
  const int rc =
      main_impl({"exact", path, "--state-cap", "2", "--runs", "500"}, out, err);
  EXPECT_EQ(rc, kExitOk);
  EXPECT_NE(out.str().find("falling back to Monte-Carlo"), std::string::npos);
  EXPECT_NE(out.str().find("reliability"), std::string::npos);
}

TEST(CliExit, ExactNoFallbackExitsFour) {
  const std::string path = write_model("nofallback", kMarkovian);
  std::ostringstream out, err;
  const int rc =
      main_impl({"exact", path, "--state-cap", "2", "--no-fallback"}, out, err);
  EXPECT_EQ(rc, kExitResourceLimit);
  EXPECT_NE(err.str().find("R101"), std::string::npos);
  EXPECT_NE(err.str().find("max_states"), std::string::npos);
}

TEST(CliExit, ExactWithinCapStillExact) {
  const std::string path = write_model("exact_ok", kMarkovian);
  std::ostringstream out, err;
  EXPECT_EQ(main_impl({"exact", path}, out, err), kExitOk);
  EXPECT_NE(out.str().find("MTTF = 2"), std::string::npos);
}

TEST(CliExit, UnsupportedModelKeepsExitTwo) {
  // Non-Markovian exact is a modelling problem, not a resource limit: no
  // fallback, historic exit code 2.
  const std::string path = write_model("nonmarkov", kSimModel);
  std::ostringstream out, err;
  EXPECT_EQ(main_impl({"exact", path}, out, err), kExitUsage);
}

TEST(CliExit, TimeoutTruncatesAnalyzeWithExitOne) {
  // A budget far too small for 1M trajectories: the run starts (the first
  // poll precedes the deadline) and is then cut, yielding the truncated
  // exit code and an explicit notice over the exact prefix.
  const std::string path = write_model("timeout", kSimModel);
  std::ostringstream out, err;
  const int rc = main_impl({"analyze", path, "--runs", "1000000", "--timeout",
                            "0.25", "--threads", "2", "--seed", "3"},
                           out, err);
  EXPECT_EQ(rc, kExitTruncated);
  EXPECT_NE(out.str().find("truncated (deadline)"), std::string::npos);
  EXPECT_NE(out.str().find("reliability"), std::string::npos);
}

TEST(CliExit, InterruptControlIsProcessWideSingleton) {
  EXPECT_EQ(&interrupt_control(), &interrupt_control());
  interrupt_control().request_stop();
  EXPECT_TRUE(interrupt_control().stop_requested());
  interrupt_control().reset();
  EXPECT_FALSE(interrupt_control().stop_requested());
}

}  // namespace
}  // namespace fmtree::cli
