// CLI surface of the analysis service: `fmtree serve` argument handling,
// `sweep --emit-request` as the canonical schema emitter, the `sweep
// --connect` thin client, and the serve-specific exit-code mapping.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "cli/cli.hpp"
#include "serve/request.hpp"
#include "util/error.hpp"

namespace fmtree::cli {
namespace {

const char* kSweepModel = R"(
  toplevel T;
  T or A B;
  A ebe phases=3 mean=5 threshold=2 repair_cost=100;
  B be exp(0.05);
  inspection I period=0.5 cost=20 targets A;
  corrective cost=5000 delay=0;
)";

TEST(CliServeArgs, ParsesSocketAndServeFlags) {
  const Options o = parse_args({"serve", "/tmp/fmtree.sock", "--queue-limit",
                                "8", "--model-root", "/srv/models",
                                "--cache-dir", "/tmp/c"});
  EXPECT_EQ(o.command, Command::Serve);
  EXPECT_EQ(o.socket_path, "/tmp/fmtree.sock");
  EXPECT_EQ(o.queue_limit, 8u);
  EXPECT_EQ(o.model_root, "/srv/models");
  EXPECT_EQ(o.cache_dir, "/tmp/c");
}

TEST(CliServeArgs, RejectsBadUsage) {
  EXPECT_THROW(parse_args({"serve"}), DomainError);  // missing socket path
  EXPECT_THROW(parse_args({"serve", "s.sock", "--queue-limit", "0"}),
               DomainError);
  // --connect / --emit-request are sweep-only.
  EXPECT_THROW(parse_args({"analyze", "m.fmt", "--connect", "s.sock"}),
               DomainError);
  EXPECT_THROW(parse_args({"check", "m.fmt", "--emit-request"}), DomainError);
  // The daemon owns the cache and checkpoint; --resume cannot ride --connect.
  EXPECT_THROW(parse_args({"sweep", "m.fmt", "--connect", "s.sock", "--resume",
                           "--cache-dir", "/tmp/c"}),
               DomainError);
}

TEST(CliSweepEmitRequest, PrintsTheCanonicalRequestDocument) {
  Options o;
  o.command = Command::Sweep;
  o.emit_request = true;
  o.horizon = 5.0;
  o.runs = 200;
  o.seed = 3;
  o.frequencies = {0, 2};
  std::ostringstream out;
  ASSERT_EQ(run_on_text(o, kSweepModel, out), kExitOk);
  // The emitted document round-trips through the schema parser and carries
  // this invocation's settings bit-exactly (hexfloat canonical form).
  const serve::Request parsed = serve::parse_request(out.str());
  EXPECT_EQ(parsed.model_text, kSweepModel);
  EXPECT_DOUBLE_EQ(parsed.settings.horizon, 5.0);
  EXPECT_EQ(parsed.settings.trajectories, 200u);
  EXPECT_EQ(parsed.settings.seed, 3u);
  ASSERT_EQ(parsed.frequencies.size(), 2u);
  EXPECT_EQ(serve::encode_request(parsed), out.str());
}

TEST(CliSweepConnect, RefusedConnectionIsAUsageErrorWithR121) {
  const std::string model = testing::TempDir() + "fmtree_cli_connect_model.fmt";
  std::ofstream(model) << kSweepModel;
  std::ostringstream out, err;
  const int code = main_impl({"sweep", model, "--connect",
                              testing::TempDir() + "no-daemon-here.sock"},
                             out, err);
  EXPECT_EQ(code, kExitUsage);
  EXPECT_NE(err.str().find("R121"), std::string::npos);
}

// End to end through main_impl: a daemon thread and a client invocation in
// the same process, exactly as the CI integration job drives two processes.
// The client's rendered curve must be byte-identical to a standalone
// `fmtree sweep` of the same model and options (the served response carries
// hexfloat-exact reports, so even the last decimal agrees).
TEST(CliServe, ServedSweepRendersByteIdenticalToStandalone) {
  const std::string model = testing::TempDir() + "fmtree_cli_serve_model.fmt";
  std::ofstream(model) << kSweepModel;
  const std::string socket = testing::TempDir() + "fmtree_cli_serve.sock";
  std::filesystem::remove(socket);

  const std::vector<std::string> sweep_args = {
      "sweep", model, "--horizon", "5", "--runs", "200", "--seed", "3",
      "--frequencies", "0,2"};
  std::ostringstream standalone, standalone_err;
  ASSERT_EQ(main_impl(sweep_args, standalone, standalone_err), kExitOk);

  std::ostringstream serve_out, serve_err;
  std::thread daemon([&] {
    (void)main_impl({"serve", socket}, serve_out, serve_err);
  });
  for (int i = 0; i < 1000 && !std::filesystem::exists(socket); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(std::filesystem::exists(socket));

  std::vector<std::string> client_args = sweep_args;
  client_args.insert(client_args.end(), {"--connect", socket});
  std::ostringstream client, client_err;
  const int code = main_impl(client_args, client, client_err);
  interrupt_control().request_stop();  // what a SIGTERM to the daemon does
  daemon.join();
  ASSERT_EQ(code, kExitOk) << client_err.str();
  EXPECT_EQ(client.str(), standalone.str());
  EXPECT_NE(serve_out.str().find("listening on"), std::string::npos);
  EXPECT_NE(serve_out.str().find("drained"), std::string::npos);
}

}  // namespace
}  // namespace fmtree::cli
