#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace fmtree::cli {
namespace {

const char* kModel = R"(
  toplevel T;
  T or A B;
  A ebe phases=3 mean=5 threshold=2 repair_cost=100;
  B be exp(0.05);
  inspection I period=0.5 cost=20 targets A;
  corrective cost=5000 delay=0;
)";

const char* kMarkovianModel = R"(
  toplevel T;
  T or A B;
  A be exp(0.2);
  B be exp(0.3);
  corrective cost=0 delay=0;
)";

// ---- Argument parsing -------------------------------------------------------

TEST(CliArgs, ParsesCommandsAndFlags) {
  const Options o = parse_args({"analyze", "m.fmt", "--horizon", "25", "--runs",
                                "500", "--seed", "9", "--threads", "2",
                                "--confidence", "0.9", "--quantiles", "0.1,0.9"});
  EXPECT_EQ(o.command, Command::Analyze);
  EXPECT_EQ(o.model_path, "m.fmt");
  EXPECT_DOUBLE_EQ(o.horizon, 25);
  EXPECT_EQ(o.runs, 500u);
  EXPECT_EQ(o.seed, 9u);
  EXPECT_EQ(o.threads, 2u);
  EXPECT_DOUBLE_EQ(o.confidence, 0.9);
  ASSERT_EQ(o.quantiles.size(), 2u);
  EXPECT_DOUBLE_EQ(o.quantiles[1], 0.9);
}

TEST(CliArgs, DefaultsApplied) {
  const Options o = parse_args({"check", "m.fmt"});
  EXPECT_EQ(o.command, Command::Check);
  EXPECT_DOUBLE_EQ(o.horizon, 10);
  EXPECT_EQ(o.runs, 10000u);
  EXPECT_TRUE(o.quantiles.empty());
}

TEST(CliArgs, AllCommandsRecognized) {
  EXPECT_EQ(parse_args({"check", "m"}).command, Command::Check);
  EXPECT_EQ(parse_args({"analyze", "m"}).command, Command::Analyze);
  EXPECT_EQ(parse_args({"exact", "m"}).command, Command::Exact);
  EXPECT_EQ(parse_args({"dot", "m"}).command, Command::Dot);
  EXPECT_EQ(parse_args({"cutsets", "m"}).command, Command::CutSets);
}

TEST(CliArgs, RejectsBadUsage) {
  EXPECT_THROW(parse_args({}), DomainError);
  EXPECT_THROW(parse_args({"frobnicate", "m"}), DomainError);
  EXPECT_THROW(parse_args({"check"}), DomainError);
  EXPECT_THROW(parse_args({"check", "--horizon"}), DomainError);
  EXPECT_THROW(parse_args({"check", "m", "--bogus", "1"}), DomainError);
  EXPECT_THROW(parse_args({"check", "m", "--horizon"}), DomainError);
  EXPECT_THROW(parse_args({"check", "m", "--horizon", "abc"}), DomainError);
  EXPECT_THROW(parse_args({"check", "m", "--horizon", "0"}), DomainError);
  EXPECT_THROW(parse_args({"check", "m", "--runs", "0"}), DomainError);
  EXPECT_THROW(parse_args({"check", "m", "--runs", "1.5"}), DomainError);
  EXPECT_THROW(parse_args({"check", "m", "--confidence", "1"}), DomainError);
  EXPECT_THROW(parse_args({"check", "m", "--quantiles", "2"}), DomainError);
  EXPECT_THROW(parse_args({"check", "m", "--quantiles", ""}), DomainError);
}

// ---- Command execution ---------------------------------------------------------

Options opts(Command c, std::uint64_t runs = 2000) {
  Options o;
  o.command = c;
  o.runs = runs;
  o.horizon = 10;
  o.seed = 5;
  return o;
}

TEST(CliRun, CheckSummarizesModel) {
  std::ostringstream out;
  EXPECT_EQ(run_on_text(opts(Command::Check), kModel, out), 0);
  EXPECT_NE(out.str().find("model OK"), std::string::npos);
  EXPECT_NE(out.str().find("leaves:              2"), std::string::npos);
  EXPECT_NE(out.str().find("inspection modules:  1"), std::string::npos);
}

TEST(CliRun, AnalyzeReportsKpis) {
  Options o = opts(Command::Analyze);
  o.quantiles = {0.5};
  std::ostringstream out;
  EXPECT_EQ(run_on_text(o, kModel, out), 0);
  EXPECT_NE(out.str().find("reliability"), std::string::npos);
  EXPECT_NE(out.str().find("cost breakdown"), std::string::npos);
  EXPECT_NE(out.str().find("time-to-failure quantiles"), std::string::npos);
}

TEST(CliRun, ExactOnMarkovianModel) {
  std::ostringstream out;
  EXPECT_EQ(run_on_text(opts(Command::Exact), kMarkovianModel, out), 0);
  EXPECT_NE(out.str().find("MTTF = 2"), std::string::npos);  // 1/(0.2+0.3)
  EXPECT_NE(out.str().find("E[#failures within 10] = 5"), std::string::npos);
}

TEST(CliRun, ExactRejectsNonMarkovian) {
  std::ostringstream out;
  EXPECT_THROW(run_on_text(opts(Command::Exact), kModel, out),
               UnsupportedModelError);
}

TEST(CliRun, DotEmitsGraph) {
  std::ostringstream out;
  EXPECT_EQ(run_on_text(opts(Command::Dot), kModel, out), 0);
  EXPECT_NE(out.str().find("digraph"), std::string::npos);
}

TEST(CliRun, CutsetsListsAndRanks) {
  std::ostringstream out;
  EXPECT_EQ(run_on_text(opts(Command::CutSets), kModel, out), 0);
  EXPECT_NE(out.str().find("2 minimal cut sets"), std::string::npos);
  EXPECT_NE(out.str().find("Birnbaum"), std::string::npos);
}

TEST(CliRun, ParseErrorsPropagate) {
  std::ostringstream out;
  EXPECT_THROW(run_on_text(opts(Command::Check), "not a model", out), Error);
}

TEST(CliMain, ReportsMissingFileOnStderr) {
  std::ostringstream out, err;
  const int rc = main_impl({"check", "/nonexistent/path.fmt"}, out, err);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.str().find("cannot open"), std::string::npos);
}

TEST(CliArgs, CompareTakesTwoModels) {
  const Options o = parse_args({"compare", "a.fmt", "b.fmt", "--runs", "100"});
  EXPECT_EQ(o.command, Command::Compare);
  EXPECT_EQ(o.model_path, "a.fmt");
  EXPECT_EQ(o.model_path_b, "b.fmt");
  EXPECT_THROW(parse_args({"compare", "a.fmt"}), DomainError);
  EXPECT_THROW(parse_args({"compare", "a.fmt", "--runs", "5"}), DomainError);
}

TEST(CliRun, CompareDetectsBetterPolicy) {
  const std::string sparse = std::string(kModel);
  std::string frequent = sparse;
  const std::string from = "inspection I period=0.5 cost=20 targets A;";
  frequent.replace(frequent.find(from), from.size(),
                   "inspection I period=0.1 cost=20 targets A;");
  Options o = opts(Command::Compare, 4000);
  std::ostringstream out;
  EXPECT_EQ(run_compare(o, sparse, frequent, out), 0);
  EXPECT_NE(out.str().find("paired comparison"), std::string::npos);
  EXPECT_NE(out.str().find("failures"), std::string::npos);
}

TEST(CliRun, RunOnTextRejectsCompare) {
  std::ostringstream out;
  EXPECT_THROW(run_on_text(opts(Command::Compare), kModel, out), DomainError);
}

TEST(CliMain, ReportsUsageErrors) {
  std::ostringstream out, err;
  EXPECT_EQ(main_impl({}, out, err), 2);
  EXPECT_NE(err.str().find("usage:"), std::string::npos);
}

}  // namespace
}  // namespace fmtree::cli
