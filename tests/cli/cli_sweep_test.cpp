#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "cli/cli.hpp"
#include "util/error.hpp"

namespace fmtree::cli {
namespace {

const char* kSweepModel = R"(
  toplevel T;
  T or A B;
  A ebe phases=3 mean=5 threshold=2 repair_cost=100;
  B be exp(0.05);
  inspection I period=0.5 cost=20 targets A;
  corrective cost=5000 delay=0;
)";

const char* kNoInspectionModel = R"(
  toplevel T;
  T or A;
  A be exp(0.2);
  corrective cost=100 delay=0;
)";

TEST(CliSweepArgs, ParsesFrequenciesAndCacheDir) {
  const Options o = parse_args({"sweep", "m.fmt", "--frequencies", "0,1,4.5",
                                "--cache-dir", "/tmp/c"});
  EXPECT_EQ(o.command, Command::Sweep);
  ASSERT_EQ(o.frequencies.size(), 3u);
  EXPECT_DOUBLE_EQ(o.frequencies[0], 0.0);
  EXPECT_DOUBLE_EQ(o.frequencies[2], 4.5);
  EXPECT_EQ(o.cache_dir, "/tmp/c");
}

TEST(CliSweepArgs, DefaultsToPaperFrequencyGrid) {
  const Options o = parse_args({"sweep", "m.fmt"});
  ASSERT_EQ(o.frequencies.size(), 10u);
  EXPECT_DOUBLE_EQ(o.frequencies.front(), 0.0);
  EXPECT_DOUBLE_EQ(o.frequencies.back(), 24.0);
  EXPECT_TRUE(o.cache_dir.empty());
}

TEST(CliSweepArgs, RejectsBadFrequencies) {
  EXPECT_THROW(parse_args({"sweep", "m", "--frequencies", "-1"}), DomainError);
  EXPECT_THROW(parse_args({"sweep", "m", "--frequencies", "abc"}), DomainError);
  EXPECT_THROW(parse_args({"sweep", "m", "--frequencies", ""}), DomainError);
}

Options sweep_opts(std::vector<double> frequencies) {
  Options o;
  o.command = Command::Sweep;
  o.horizon = 5.0;
  o.runs = 200;
  o.seed = 3;
  o.frequencies = std::move(frequencies);
  return o;
}

TEST(CliSweep, PrintsCurveAndOptimum) {
  std::ostringstream out;
  const int code = run_on_text(sweep_opts({0, 2, 4}), kSweepModel, out);
  EXPECT_EQ(code, kExitOk);
  const std::string text = out.str();
  EXPECT_NE(text.find("no-inspection"), std::string::npos);
  EXPECT_NE(text.find("2x-per-year"), std::string::npos);
  EXPECT_NE(text.find("4x-per-year"), std::string::npos);
  EXPECT_NE(text.find("simulated"), std::string::npos);
  EXPECT_NE(text.find("cost-optimal policy:"), std::string::npos);
  // No cache configured, so no cache summary line.
  EXPECT_EQ(text.find("cache:"), std::string::npos);
}

TEST(CliSweep, SecondRunIsServedFromTheDiskCache) {
  Options o = sweep_opts({0, 2});
  o.cache_dir = testing::TempDir() + "fmtree_cli_sweep_cache";
  std::filesystem::remove_all(o.cache_dir);  // idempotence across ctest runs
  std::ostringstream cold;
  ASSERT_EQ(run_on_text(o, kSweepModel, cold), kExitOk);
  EXPECT_NE(cold.str().find("simulated"), std::string::npos);
  EXPECT_NE(cold.str().find("0 hits, 2 misses"), std::string::npos);

  std::ostringstream warm;
  ASSERT_EQ(run_on_text(o, kSweepModel, warm), kExitOk);
  EXPECT_EQ(warm.str().find("simulated"), std::string::npos);
  EXPECT_NE(warm.str().find("2 hits, 0 misses"), std::string::npos);

  // Identical numbers: only the source column ("simulated" vs "cache") and
  // its padding may differ, so compare with that column and layout removed.
  const auto normalized = [](std::string s) {
    s = s.substr(0, s.find("cache:"));
    for (const char* word : {"simulated", "cache"}) {
      for (std::size_t at; (at = s.find(word)) != std::string::npos;)
        s.erase(at, std::string(word).size());
    }
    std::erase_if(s, [](char c) { return c == ' ' || c == '|' || c == '-'; });
    return s;
  };
  EXPECT_EQ(normalized(cold.str()), normalized(warm.str()));
}

TEST(CliSweep, RejectsInspectionSweepOnUninspectableModel) {
  std::ostringstream out;
  EXPECT_THROW(run_on_text(sweep_opts({0, 2}), kNoInspectionModel, out),
               DomainError);
  // Frequency 0 alone is fine: it just clears (absent) inspections.
  EXPECT_EQ(run_on_text(sweep_opts({0}), kNoInspectionModel, out), kExitOk);
}

TEST(CliSweep, TimeoutTruncatesWithExitOne) {
  Options o = sweep_opts({0, 2, 4});
  o.runs = 200000;  // far more than a 1 ms budget allows
  o.timeout = 0.001;
  std::ostringstream out;
  const int code = run_on_text(o, kSweepModel, out);
  EXPECT_EQ(code, kExitTruncated);
  EXPECT_NE(out.str().find("NOTE: sweep truncated"), std::string::npos);
  EXPECT_NE(out.str().find("(interrupted)"), std::string::npos);
}

}  // namespace
}  // namespace fmtree::cli
