// CLI-level chaos: --inject-fault, --resume and the self-healing surface of
// `fmtree sweep`. "Chaos" prefix: selected by CI's chaos job (ctest -R Chaos).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "batch/checkpoint.hpp"
#include "cli/cli.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace fmtree::cli {
namespace {

const char* kSweepModel = R"(
  toplevel T;
  T or A B;
  A ebe phases=3 mean=5 threshold=2 repair_cost=100;
  B be exp(0.05);
  inspection I period=0.5 cost=20 targets A;
  corrective cost=5000 delay=0;
)";

Options sweep_opts(std::vector<double> frequencies) {
  Options o;
  o.command = Command::Sweep;
  o.horizon = 5.0;
  o.runs = 200;
  o.seed = 3;
  o.frequencies = std::move(frequencies);
  return o;
}

/// The cost-curve table with layout, status lines (resume preamble, cache
/// summary, healing note) and the source column removed, so a "simulated"
/// run and a "cache" replay compare equal iff the numbers match.
std::string normalized_curve(const std::string& text) {
  std::string s;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    const bool status_line = [&] {
      for (const char* marker : {"cache:", "resuming:", "self-healing:", "fmtree:"})
        if (line.find(marker) != std::string::npos) return true;
      return false;
    }();
    if (!status_line) s += line + "\n";
  }
  for (const char* word : {"simulated", "cache"}) {
    for (std::size_t at; (at = s.find(word)) != std::string::npos;)
      s.erase(at, std::string(word).size());
  }
  std::erase_if(s, [](char c) { return c == ' ' || c == '|' || c == '-'; });
  return s;
}

TEST(ChaosCliArgs, ParsesRobustnessFlags) {
  const Options o = parse_args(
      {"sweep", "m.fmt", "--cache-dir", "/tmp/c", "--resume", "--max-retries",
       "5", "--stall-timeout", "30", "--inject-fault",
       "cache.write:error,p=0.05,seed=7", "--inject-fault", "sweep.task:error"});
  EXPECT_TRUE(o.resume);
  EXPECT_EQ(o.max_retries, 5u);
  EXPECT_DOUBLE_EQ(o.stall_timeout, 30.0);
  ASSERT_EQ(o.inject_faults.size(), 2u);
  EXPECT_EQ(o.inject_faults[1], "sweep.task:error");
}

TEST(ChaosCliArgs, RejectsBadRobustnessFlags) {
  // --resume without a cache directory has nothing to resume from.
  EXPECT_THROW(parse_args({"sweep", "m.fmt", "--resume"}), DomainError);
  // Malformed fault specs fail at parse time, not mid-run.
  EXPECT_THROW(parse_args({"sweep", "m.fmt", "--inject-fault", "nonsense"}),
               DomainError);
  EXPECT_THROW(parse_args({"sweep", "m.fmt", "--stall-timeout", "-1"}),
               DomainError);
}

TEST(ChaosCliSweep, InjectedFaultsHealAndTheCurveIsIdentical) {
  std::ostringstream clean;
  ASSERT_EQ(run_on_text(sweep_opts({0, 2}), kSweepModel, clean), kExitOk);

  Options chaos = sweep_opts({0, 2});
  chaos.inject_faults = {"sweep.task:error,nth=1,limit=1"};
  std::ostringstream healed;
  ASSERT_EQ(run_on_text(chaos, kSweepModel, healed), kExitOk);
  EXPECT_NE(healed.str().find("self-healing:"), std::string::npos);
  EXPECT_EQ(normalized_curve(clean.str()), normalized_curve(healed.str()));
  // The scope died with the run: nothing stays armed for later tests.
  EXPECT_FALSE(fault::fault_point("sweep.task"));
}

TEST(ChaosCliSweep, ExhaustedRetriesFailTheJobButFinishTheSweep) {
  Options o = sweep_opts({0, 2});
  o.max_retries = 0;
  o.inject_faults = {"sweep.task:error,nth=1,limit=1"};
  std::ostringstream out;
  const int code = run_on_text(o, kSweepModel, out);
  EXPECT_EQ(code, kExitTruncated);
  EXPECT_NE(out.str().find("(failed: injected)"), std::string::npos);
  EXPECT_NE(out.str().find("job(s) failed permanently"), std::string::npos);
  // The healthy job still delivered its row.
  EXPECT_NE(out.str().find("cost-optimal policy:"), std::string::npos);
}

TEST(ChaosCliSweep, ResumeReplaysACrashedCacheBitIdentically) {
  Options o = sweep_opts({0, 2});
  o.cache_dir = testing::TempDir() + "fmtree_cli_chaos_resume";
  std::filesystem::remove_all(o.cache_dir);

  // Run 1 "crashes": every cache publish fails, so nothing durable lands —
  // except the checkpoint written at the end.
  Options crashing = o;
  crashing.inject_faults = {"cache.rename:error"};
  std::ostringstream first;
  ASSERT_EQ(run_on_text(crashing, kSweepModel, first), kExitOk);
  EXPECT_NE(first.str().find("0 hits, 2 misses"), std::string::npos);

  // Run 2 resumes: nothing was persisted, so it recomputes — and must land
  // on the identical curve. Its cache writes succeed this time.
  Options resume = o;
  resume.resume = true;
  std::ostringstream second;
  ASSERT_EQ(run_on_text(resume, kSweepModel, second), kExitOk);
  EXPECT_NE(second.str().find("resuming:"), std::string::npos);
  EXPECT_EQ(normalized_curve(first.str()), normalized_curve(second.str()));

  // Run 3 resumes against the now-warm cache: all hits, same bits, and the
  // checkpoint reports every job done.
  std::ostringstream third;
  ASSERT_EQ(run_on_text(resume, kSweepModel, third), kExitOk);
  EXPECT_NE(third.str().find("resuming: 2 of 2 jobs"), std::string::npos);
  EXPECT_NE(third.str().find("2 hits, 0 misses"), std::string::npos);
  EXPECT_EQ(normalized_curve(first.str()), normalized_curve(third.str()));
  const auto cp = batch::read_checkpoint(batch::checkpoint_path(o.cache_dir));
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->jobs_done(), 2u);
}

TEST(ChaosCliSweep, ResumeReportsFailedJobsSeparatelyFromDone) {
  Options o = sweep_opts({0, 2});
  o.cache_dir = testing::TempDir() + "fmtree_cli_chaos_failed_resume";
  std::filesystem::remove_all(o.cache_dir);

  // Run 1: one job fails permanently (no retry budget), one succeeds. The
  // checkpoint must bank them as 1 done + 1 failed, not 2 done.
  Options failing = o;
  failing.max_retries = 0;
  failing.inject_faults = {"sweep.task:error,nth=1,limit=1"};
  std::ostringstream first;
  ASSERT_EQ(run_on_text(failing, kSweepModel, first), kExitTruncated);
  const auto cp = batch::read_checkpoint(batch::checkpoint_path(o.cache_dir));
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->jobs_done(), 1u);
  EXPECT_EQ(cp->jobs_failed(), 1u);
  EXPECT_EQ(cp->jobs_pending(), 0u);

  // Run 2 resumes: the preamble reports the failed job as re-running, and
  // only the genuinely-done job counts as completed.
  Options resume = o;
  resume.resume = true;
  std::ostringstream second;
  ASSERT_EQ(run_on_text(resume, kSweepModel, second), kExitOk);
  EXPECT_NE(second.str().find("resuming: 1 of 2 jobs"), std::string::npos);
  EXPECT_NE(second.str().find("1 failed (will re-run)"), std::string::npos);
  EXPECT_NE(second.str().find("0 pending"), std::string::npos);
}

TEST(ChaosCliSweep, ResumeAgainstADifferentPlanWarnsAndRunsFresh) {
  Options o = sweep_opts({0, 2});
  o.cache_dir = testing::TempDir() + "fmtree_cli_chaos_plan_mismatch";
  std::filesystem::remove_all(o.cache_dir);
  std::ostringstream first;
  ASSERT_EQ(run_on_text(o, kSweepModel, first), kExitOk);

  Options other = sweep_opts({0, 4});  // different frequency grid
  other.cache_dir = o.cache_dir;
  other.resume = true;
  std::ostringstream second;
  ASSERT_EQ(run_on_text(other, kSweepModel, second), kExitOk);
  EXPECT_NE(second.str().find("C103"), std::string::npos);
  EXPECT_NE(second.str().find("different sweep plan"), std::string::npos);
}

TEST(ChaosCliExact, SolverBuildFaultBecomesADiagnosticNotACrash) {
  // The solver.build site sits ahead of CTMC construction; through the full
  // entry point an injected error must land in the structured failure path
  // (a U101 diagnostic and a usage-class exit), never a crash.
  const std::string model_path =
      testing::TempDir() + "fmtree_chaos_exact_model.fmt";
  {
    std::ofstream model(model_path);
    model << "toplevel T;\nT or A;\nA be exp(0.2);\n";
  }
  std::ostringstream out, err;
  const int code = main_impl(
      {"exact", model_path, "--inject-fault", "solver.build:error"}, out, err);
  EXPECT_EQ(code, kExitUsage);
  EXPECT_NE(err.str().find("injected fault at site 'solver.build'"),
            std::string::npos);
  EXPECT_FALSE(fault::fault_point("solver.build"));  // scope disarmed
}

}  // namespace
}  // namespace fmtree::cli
