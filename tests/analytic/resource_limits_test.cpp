// Guarded numerics: iteration and series caps surface as ResourceLimitError
// carrying the partial progress made, with stable messages callers (the CLI
// fallback, these tests) can rely on.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "analytic/ctmc.hpp"
#include "analytic/fmt2ctmc.hpp"
#include "analytic/solvers.hpp"
#include "fmt/parser.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace fmtree::analytic {
namespace {

Ctmc slow_chain() {
  // Asymmetric two-state chain: from the uniform start the iterate keeps
  // moving toward (0.6, 0.4), so the residual is nonzero at every sweep.
  Ctmc c(2);
  c.add_transition(0, 1, 2.0);
  c.add_transition(1, 0, 3.0);
  return c;
}

TEST(ResourceLimits, SteadyStateNonConvergenceCarriesProgress) {
  SolverOptions opts;
  opts.max_iterations = 3;
  opts.tolerance = 0.0;  // `delta < 0` never holds: guaranteed cap hit
  try {
    (void)steady_state(slow_chain(), opts);
    FAIL() << "expected ResourceLimitError";
  } catch (const ResourceLimitError& e) {
    EXPECT_NE(std::string(e.what()).find("failed to converge"), std::string::npos);
    EXPECT_EQ(e.progress().iterations, 3u);
    EXPECT_GT(e.progress().residual, 0.0);
    EXPECT_EQ(e.progress().states, 2u);
  }
}

TEST(ResourceLimits, HittingTimeNonConvergenceCarriesProgress) {
  // 0 -> 1 absorbing; with tolerance 0 the Gauss-Seidel loop can never
  // declare victory.
  Ctmc c(3);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 2, 0.5);
  SolverOptions opts;
  opts.max_iterations = 2;
  opts.tolerance = 0.0;
  try {
    (void)mean_time_to_absorption(c, {1.0, 0.0, 0.0}, {false, false, true}, opts);
    FAIL() << "expected ResourceLimitError";
  } catch (const ResourceLimitError& e) {
    EXPECT_NE(std::string(e.what()).find("failed to converge"), std::string::npos);
    EXPECT_EQ(e.progress().iterations, 2u);
  }
}

TEST(ResourceLimits, SolverDomainErrorsUnchanged) {
  // Unreachable absorbing set is a modelling problem, not a budget problem:
  // still DomainError.
  Ctmc c(2);
  c.add_transition(1, 0, 1.0);
  EXPECT_THROW(
      (void)mean_time_to_absorption(c, {1.0, 0.0}, {false, true}, SolverOptions{}),
      DomainError);
}

TEST(ResourceLimits, PoissonSeriesCapCarriesTermCount) {
  try {
    // lambda*t = 1e6 needs ~thousands of terms past the mode; cap at 10.
    (void)poisson_weights(1e6, 1e-12, 10);
    FAIL() << "expected ResourceLimitError";
  } catch (const ResourceLimitError& e) {
    EXPECT_NE(std::string(e.what()).find("poisson series"), std::string::npos);
    EXPECT_GE(e.progress().iterations, 10u);
    EXPECT_GT(e.progress().residual, 0.0);  // the unconverged tail mass
  }
}

TEST(ResourceLimits, PoissonSeriesConvergesUnderDefaultCap) {
  const auto w = poisson_weights(50.0, 1e-12);
  double sum = 0;
  for (double p : w) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ResourceLimits, PoissonRejectsNonFiniteRate) {
  EXPECT_THROW((void)poisson_weights(std::numeric_limits<double>::infinity(), 1e-12),
               DomainError);
}

TEST(ResourceLimits, StateSpaceCapNamesTheCap) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(R"(
    toplevel T;
    T and A B C D E F;
    A ebe phases=4 mean=10; B ebe phases=4 mean=10; C ebe phases=4 mean=10;
    D ebe phases=4 mean=10; E ebe phases=4 mean=10; F ebe phases=4 mean=10;
  )");
  try {
    (void)fmt_to_ctmc(model, FailureTreatment::Absorbing, /*max_states=*/16);
    FAIL() << "expected ResourceLimitError";
  } catch (const ResourceLimitError& e) {
    EXPECT_NE(std::string(e.what()).find("max_states"), std::string::npos);
    EXPECT_GE(e.progress().states, 16u);
  }
}

TEST(ResourceLimits, RunningStatsExcludesNonFiniteAndRefusesIntervals) {
  RunningStats s;
  s.add(1.0);
  s.add(std::numeric_limits<double>::quiet_NaN());
  s.add(3.0);
  s.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.non_finite_count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);  // the finite samples only
  try {
    (void)s.mean_ci(0.95);
    FAIL() << "expected DomainError";
  } catch (const DomainError& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
  }
}

TEST(ResourceLimits, RunningStatsMergePropagatesNonFiniteCount) {
  RunningStats a, b;
  a.add(1.0);
  b.add(std::numeric_limits<double>::quiet_NaN());
  b.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.non_finite_count(), 1u);
  RunningStats empty;
  empty.merge(a);  // merge-into-empty must not lose the counter either
  EXPECT_EQ(empty.non_finite_count(), 1u);
  EXPECT_THROW((void)empty.mean_ci(), DomainError);
}

}  // namespace
}  // namespace fmtree::analytic
