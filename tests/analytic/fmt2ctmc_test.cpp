// Cross-validation: the exact CTMC backend vs closed forms and vs the
// statistical model checker on Markovian submodels.
#include "analytic/fmt2ctmc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ft/bdd.hpp"
#include "smc/kpi.hpp"
#include "util/error.hpp"

namespace fmtree::analytic {
namespace {

using fmt::CorrectivePolicy;
using fmt::DegradationModel;
using fmt::FaultMaintenanceTree;
using fmt::NodeId;

TEST(FmtToCtmc, SingleErlangLeafMatchesErlangCdf) {
  FaultMaintenanceTree m;
  m.set_top(m.add_ebe("a", DegradationModel::erlang(4, 8.0, 2)));
  for (double t : {1.0, 4.0, 8.0, 20.0}) {
    EXPECT_NEAR(exact_unreliability(m, t), Distribution::erlang(4, 0.5).cdf(t), 1e-8)
        << t;
  }
}

TEST(FmtToCtmc, SeriesSystemMatchesProductForm) {
  // OR of independent exponential leaves: unreliability = 1 - e^{-(r1+r2)t}.
  FaultMaintenanceTree m;
  const NodeId a = m.add_basic_event("a", Distribution::exponential(0.3));
  const NodeId b = m.add_basic_event("b", Distribution::exponential(0.2));
  m.set_top(m.add_or("top", {a, b}));
  for (double t : {0.5, 2.0, 5.0})
    EXPECT_NEAR(exact_unreliability(m, t), 1 - std::exp(-0.5 * t), 1e-9) << t;
}

TEST(FmtToCtmc, ParallelSystemMatchesBddAtMissionTime) {
  // For exponential leaves with no RDEP, leaf states are independent, so the
  // static BDD evaluation at mission time is exact; CTMC must agree.
  FaultMaintenanceTree m;
  const NodeId a = m.add_basic_event("a", Distribution::exponential(0.4));
  const NodeId b = m.add_basic_event("b", Distribution::exponential(0.7));
  const NodeId c = m.add_basic_event("c", Distribution::exponential(0.2));
  const NodeId g = m.add_and("g", {a, b});
  m.set_top(m.add_or("top", {g, c}));
  for (double t : {0.5, 1.5, 4.0}) {
    EXPECT_NEAR(exact_unreliability(m, t),
                ft::top_event_probability(m.structure(), t), 1e-9)
        << t;
  }
}

TEST(FmtToCtmc, VotingGateMatchesBdd) {
  FaultMaintenanceTree m;
  std::vector<NodeId> leaves;
  for (int i = 0; i < 4; ++i)
    leaves.push_back(
        m.add_basic_event("l" + std::to_string(i), Distribution::exponential(0.3)));
  m.set_top(m.add_voting("v", 2, leaves));
  for (double t : {0.5, 2.0})
    EXPECT_NEAR(exact_unreliability(m, t),
                ft::top_event_probability(m.structure(), t), 1e-9);
}

TEST(FmtToCtmc, RdepBreaksIndependenceInTheRightDirection) {
  // AND(a, b) where a's failure accelerates b: dependent unreliability must
  // exceed the independent (BDD) value.
  FaultMaintenanceTree m;
  const NodeId a = m.add_basic_event("a", Distribution::exponential(0.5));
  const NodeId b = m.add_basic_event("b", Distribution::exponential(0.5));
  m.set_top(m.add_and("top", {a, b}));
  m.add_rdep("accel", a, {b}, 5.0);
  const double t = 2.0;
  const double dependent = exact_unreliability(m, t);
  const double independent = ft::top_event_probability(m.structure(), t);
  EXPECT_GT(dependent, independent + 0.01);
}

TEST(FmtToCtmc, RdepAgainstHandComputedTwoComponentChain) {
  // a ~ exp(r), b ~ exp(r); top = AND. With acceleration factor g after a
  // fails, law of total probability over a's failure time gives a formula
  // we can integrate numerically here with fine steps.
  const double r = 0.6, g = 3.0, t = 1.8;
  FaultMaintenanceTree m;
  const NodeId a = m.add_basic_event("a", Distribution::exponential(r));
  const NodeId b = m.add_basic_event("b", Distribution::exponential(r));
  m.set_top(m.add_and("top", {a, b}));
  m.add_rdep("dep", a, {b}, g);
  // Only a's failure accelerates b. Condition on a failing at s <= t:
  // b must fail by t, either before s (rate r) or in (s, t] at rate g*r:
  //   P = int_0^t r e^{-rs} [ (1 - e^{-rs}) + e^{-rs}(1 - e^{-gr(t-s)}) ] ds.
  const int steps = 200000;
  double integral = 0;
  for (int i = 0; i < steps; ++i) {
    const double s = (i + 0.5) * t / steps;
    const double p_b_by_t =
        (1 - std::exp(-r * s)) +
        std::exp(-r * s) * (1 - std::exp(-g * r * (t - s)));
    integral += r * std::exp(-r * s) * p_b_by_t * (t / steps);
  }
  EXPECT_NEAR(exact_unreliability(m, t), integral, 1e-4);
}

TEST(FmtToCtmc, PhaseTriggeredRdepMatchesSimulation) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", DegradationModel::erlang(3, 3.0, 4));
  const NodeId b = m.add_ebe("b", DegradationModel::erlang(2, 5.0, 3));
  m.set_top(m.add_and("top", {a, b}));
  m.add_rdep("dep", a, {b}, 4.0, 2);  // from a's phase 2
  const double t = 4.0;
  const double exact = exact_unreliability(m, t);

  smc::AnalysisSettings s;
  s.horizon = t;
  s.trajectories = 60000;
  s.seed = 3;
  const smc::KpiReport k = smc::analyze(m, s);
  const double simulated = 1 - k.reliability.point;
  EXPECT_TRUE(k.reliability.contains(1 - exact))
      << "exact=" << exact << " simulated=" << simulated;
}

TEST(FmtToCtmc, ExpectedFailuresPoisson) {
  // Single exponential leaf with zero-delay renewal: E[N(t)] = r t.
  FaultMaintenanceTree m;
  m.set_top(m.add_basic_event("a", Distribution::exponential(0.7)));
  m.set_corrective(CorrectivePolicy{true, 0.0, 0, 0});
  for (double t : {1.0, 5.0, 20.0})
    EXPECT_NEAR(exact_expected_failures(m, t), 0.7 * t, 1e-7) << t;
}

TEST(FmtToCtmc, ExpectedFailuresErlangRenewalAsymptote) {
  // Erlang(k, kr) lifetimes renewed instantly: renewal rate tends to
  // 1/mean; over long horizons E[N(t)] ~ t/mean (within edge effects).
  FaultMaintenanceTree m;
  m.set_top(m.add_ebe("a", DegradationModel::erlang(4, 2.0, 5)));
  m.set_corrective(CorrectivePolicy{true, 0.0, 0, 0});
  const double t = 400.0;
  const double expected = exact_expected_failures(m, t);
  EXPECT_NEAR(expected, t / 2.0, 2.0);  // within renewal-theory edge term
}

TEST(FmtToCtmc, ExpectedFailuresMatchesSimulationOnSeriesSystem) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", DegradationModel::erlang(2, 4.0, 3));
  const NodeId b = m.add_basic_event("b", Distribution::exponential(0.1));
  m.set_top(m.add_or("top", {a, b}));
  m.set_corrective(CorrectivePolicy{true, 0.0, 0, 0});
  const double t = 10.0;
  const double exact = exact_expected_failures(m, t);
  smc::AnalysisSettings s;
  s.horizon = t;
  s.trajectories = 60000;
  s.seed = 6;  // seed 5 is a (verified) unlucky 95% draw: no bias, just tail
  const smc::KpiReport k = smc::analyze(m, s);
  EXPECT_TRUE(k.expected_failures.contains(exact))
      << "exact=" << exact << " ci=[" << k.expected_failures.lo << ","
      << k.expected_failures.hi << "]";
}

TEST(FmtToCtmc, UnreliabilityMatchesSimulationOnVotingSystem) {
  FaultMaintenanceTree m;
  std::vector<NodeId> leaves;
  for (int i = 0; i < 3; ++i)
    leaves.push_back(m.add_ebe("l" + std::to_string(i),
                               DegradationModel::erlang(2, 3.0, 2)));
  m.set_top(m.add_voting("v", 2, leaves));
  const double t = 3.0;
  const double exact = exact_unreliability(m, t);
  smc::AnalysisSettings s;
  s.horizon = t;
  s.trajectories = 60000;
  s.seed = 9;
  const smc::KpiReport k = smc::analyze(m, s);
  EXPECT_TRUE(k.reliability.contains(1 - exact));
}

TEST(FmtToCtmc, RejectsNonMarkovianModels) {
  {
    FaultMaintenanceTree m;
    const NodeId a = m.add_ebe("a", DegradationModel::erlang(2, 3.0, 2));
    m.set_top(a);
    m.add_inspection(fmt::InspectionModule{"i", 1.0, -1, 0, {a}});
    EXPECT_THROW(exact_unreliability(m, 1.0), UnsupportedModelError);
  }
  {
    FaultMaintenanceTree m;
    m.set_top(m.add_ebe("w", DegradationModel::basic(Distribution::weibull(2, 5))));
    EXPECT_THROW(exact_unreliability(m, 1.0), UnsupportedModelError);
  }
  {
    FaultMaintenanceTree m;
    m.set_top(m.add_basic_event("a", Distribution::exponential(1.0)));
    // corrective with nonzero delay -> renewal-mode query refuses.
    m.set_corrective(CorrectivePolicy{true, 0.5, 0, 0});
    EXPECT_THROW(exact_expected_failures(m, 1.0), UnsupportedModelError);
  }
  {
    FaultMaintenanceTree m;
    m.set_top(m.add_basic_event("a", Distribution::exponential(1.0)));
    // corrective disabled -> renewal-mode query refuses.
    EXPECT_THROW(exact_expected_failures(m, 1.0), UnsupportedModelError);
  }
}

TEST(FmtToCtmc, StateSpaceCapEnforced) {
  FaultMaintenanceTree m;
  std::vector<NodeId> leaves;
  for (int i = 0; i < 6; ++i)
    leaves.push_back(m.add_ebe("l" + std::to_string(i),
                               DegradationModel::erlang(4, 10.0, 2)));
  m.set_top(m.add_and("top", leaves));
  try {
    fmt_to_ctmc(m, FailureTreatment::Absorbing, 100);
    FAIL() << "expected ResourceLimitError";
  } catch (const ResourceLimitError& e) {
    // The cap fires while interning the 101st state, so the partial progress
    // reports exactly the states built before the overflowing one.
    EXPECT_EQ(e.progress().states, 100u);
    EXPECT_NE(std::string(e.what()).find("max_states"), std::string::npos);
  }
}

TEST(FmtToCtmc, StateCountSingleLeaf) {
  FaultMaintenanceTree m;
  m.set_top(m.add_ebe("a", DegradationModel::erlang(3, 3.0, 2)));
  const MarkovFmt mk = fmt_to_ctmc(m, FailureTreatment::Absorbing);
  EXPECT_EQ(mk.states, 4u);  // phases 1..3 + failed
  int failed_states = 0;
  for (bool f : mk.failed)
    if (f) ++failed_states;
  EXPECT_EQ(failed_states, 1);
}

}  // namespace
}  // namespace fmtree::analytic
