#include "analytic/ctmc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/distributions.hpp"
#include "util/error.hpp"

namespace fmtree::analytic {
namespace {

TEST(Ctmc, ConstructionValidation) {
  EXPECT_THROW(Ctmc(0), DomainError);
  Ctmc c(3);
  EXPECT_THROW(c.add_transition(0, 0, 1.0), DomainError);  // self-loop
  EXPECT_THROW(c.add_transition(0, 5, 1.0), DomainError);  // range
  EXPECT_THROW(c.add_transition(0, 1, 0.0), DomainError);  // rate
  EXPECT_THROW(c.add_transition(0, 1, -2.0), DomainError);
  c.add_transition(0, 1, 2.0);
  c.add_transition(0, 2, 3.0);
  EXPECT_DOUBLE_EQ(c.exit_rate(0), 5.0);
  EXPECT_EQ(c.num_transitions(), 2u);
}

TEST(PoissonWeights, SumToOneAndMatchPmf) {
  for (double lt : {0.1, 1.0, 5.0, 50.0, 500.0}) {
    const auto pmf = poisson_weights(lt, 1e-12);
    const double total = std::accumulate(pmf.begin(), pmf.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9) << lt;
    // Spot-check a few entries against the direct formula.
    const auto mode = static_cast<std::size_t>(lt);
    if (mode < pmf.size()) {
      const double direct =
          std::exp(-lt + static_cast<double>(mode) * std::log(lt) -
                   std::lgamma(static_cast<double>(mode) + 1));
      EXPECT_NEAR(pmf[mode], direct, 1e-9) << lt;
    }
  }
}

TEST(PoissonWeights, ZeroTime) {
  const auto pmf = poisson_weights(0.0, 1e-12);
  ASSERT_EQ(pmf.size(), 1u);
  EXPECT_DOUBLE_EQ(pmf[0], 1.0);
}

TEST(CtmcTransient, TwoStateBirthMatchesExponential) {
  // 0 -> 1 with rate r: P(in 1 at t) = 1 - exp(-rt).
  Ctmc c(2);
  c.add_transition(0, 1, 0.7);
  const std::vector<double> init{1.0, 0.0};
  for (double t : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    const auto pi = c.transient(init, t);
    EXPECT_NEAR(pi[1], 1 - std::exp(-0.7 * t), 1e-9) << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-9);
  }
}

TEST(CtmcTransient, ErlangChainMatchesClosedForm) {
  // Chain 0 -> 1 -> 2 -> 3 (absorbing) with rate r: absorption time is
  // Erlang(3, r).
  const double r = 1.3;
  Ctmc c(4);
  for (State s = 0; s < 3; ++s) c.add_transition(s, s + 1, r);
  const std::vector<double> init{1, 0, 0, 0};
  const fmtree::Distribution erlang_dist = fmtree::Distribution::erlang(3, r);
  for (double t : {0.2, 1.0, 2.5, 6.0}) {
    const auto pi = c.transient(init, t);
    EXPECT_NEAR(pi[3], erlang_dist.cdf(t), 1e-9) << t;
  }
}

TEST(CtmcTransient, BirthDeathEquilibrium) {
  // 0 <-> 1 with rates a (up) and b (down): P(1, infinity) = a/(a+b).
  const double a = 2.0, b = 3.0;
  Ctmc c(2);
  c.add_transition(0, 1, a);
  c.add_transition(1, 0, b);
  const auto pi = c.transient({1.0, 0.0}, 100.0);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-9);
}

TEST(CtmcTransient, TimeZeroReturnsInitial) {
  Ctmc c(2);
  c.add_transition(0, 1, 1.0);
  const auto pi = c.transient({0.25, 0.75}, 0.0);
  EXPECT_DOUBLE_EQ(pi[0], 0.25);
  EXPECT_DOUBLE_EQ(pi[1], 0.75);
}

TEST(CtmcTransient, InputValidation) {
  Ctmc c(2);
  c.add_transition(0, 1, 1.0);
  EXPECT_THROW(c.transient({1.0}, 1.0), DomainError);
  EXPECT_THROW(c.transient({1.0, 0.0}, -1.0), DomainError);
  EXPECT_THROW(c.transient_probability({1.0, 0.0}, {true}, 1.0), DomainError);
}

TEST(CtmcTransient, AllAbsorbingChainStaysPut) {
  Ctmc c(3);  // no transitions at all
  const auto pi = c.transient({0.2, 0.3, 0.5}, 5.0);
  EXPECT_NEAR(pi[0], 0.2, 1e-12);
  EXPECT_NEAR(pi[1], 0.3, 1e-12);
  EXPECT_NEAR(pi[2], 0.5, 1e-12);
}

TEST(CtmcReward, UptimeIntegralOfTwoStateRepairable) {
  // Up (0) fails at rate f, repaired at rate r. Expected uptime over [0,t]:
  // closed form A(t) = r/(f+r) t + f/(f+r)^2 (1 - e^{-(f+r)t}).
  const double f = 1.0, r = 4.0;
  Ctmc c(2);
  c.add_transition(0, 1, f);
  c.add_transition(1, 0, r);
  const std::vector<double> reward{1.0, 0.0};
  for (double t : {0.5, 2.0, 10.0}) {
    const double s = f + r;
    const double expected = r / s * t + f / (s * s) * (1 - std::exp(-s * t));
    EXPECT_NEAR(c.accumulated_reward({1, 0}, reward, t), expected, 1e-8) << t;
  }
}

TEST(CtmcReward, ConstantRewardIntegratesToTime) {
  Ctmc c(3);
  c.add_transition(0, 1, 2.0);
  c.add_transition(1, 2, 1.0);
  c.add_transition(2, 0, 0.5);
  const std::vector<double> ones(3, 1.0);
  for (double t : {0.3, 1.7, 12.0})
    EXPECT_NEAR(c.accumulated_reward({1, 0, 0}, ones, t), t, 1e-8) << t;
}

TEST(CtmcReward, ZeroTimeIsZero) {
  Ctmc c(2);
  c.add_transition(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(c.accumulated_reward({1, 0}, {1, 1}, 0.0), 0.0);
}

TEST(CtmcReward, FailureIntensityGivesPoissonCount) {
  // Single state with a conceptual failure self-renewal of rate r is modeled
  // as reward r on the only state: E[N(t)] = r t.
  Ctmc c(1);
  for (double t : {1.0, 5.0})
    EXPECT_NEAR(c.accumulated_reward({1.0}, {0.8}, t), 0.8 * t, 1e-9);
}

}  // namespace
}  // namespace fmtree::analytic
