#include "analytic/solvers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "smc/kpi.hpp"
#include "util/error.hpp"

namespace fmtree::analytic {
namespace {

TEST(SteadyState, TwoStateBirthDeath) {
  // 0 <-> 1 with up-rate a, down-rate b: pi = (b, a)/(a+b).
  Ctmc c(2);
  c.add_transition(0, 1, 2.0);
  c.add_transition(1, 0, 3.0);
  const auto pi = steady_state(c);
  EXPECT_NEAR(pi[0], 0.6, 1e-9);
  EXPECT_NEAR(pi[1], 0.4, 1e-9);
}

TEST(SteadyState, BirthDeathChainDetailedBalance) {
  // M/M/1/3 queue: arrivals 1.0, service 2.0 -> pi_k ~ (1/2)^k.
  Ctmc c(4);
  for (State s = 0; s < 3; ++s) {
    c.add_transition(s, s + 1, 1.0);
    c.add_transition(s + 1, s, 2.0);
  }
  const auto pi = steady_state(c);
  const double z = 1 + 0.5 + 0.25 + 0.125;
  for (State s = 0; s < 4; ++s)
    EXPECT_NEAR(pi[s], std::pow(0.5, s) / z, 1e-9) << s;
}

TEST(SteadyState, SumsToOne) {
  Ctmc c(3);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 2, 0.5);
  c.add_transition(2, 0, 2.0);
  const auto pi = steady_state(c);
  double total = 0;
  for (double p : pi) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(SteadyState, MatchesLongHorizonTransient) {
  Ctmc c(3);
  c.add_transition(0, 1, 0.7);
  c.add_transition(1, 0, 0.2);
  c.add_transition(1, 2, 0.4);
  c.add_transition(2, 1, 1.1);
  const auto pi = steady_state(c);
  const auto transient = c.transient({1, 0, 0}, 500.0);
  for (State s = 0; s < 3; ++s) EXPECT_NEAR(pi[s], transient[s], 1e-6) << s;
}

TEST(Mtta, ErlangChainMatchesMean) {
  // 0 -> 1 -> 2 -> 3 absorbing, rate r each: E[T] = 3/r.
  const double r = 0.8;
  Ctmc c(4);
  for (State s = 0; s < 3; ++s) c.add_transition(s, s + 1, r);
  const std::vector<double> init{1, 0, 0, 0};
  const std::vector<bool> absorbing{false, false, false, true};
  EXPECT_NEAR(mean_time_to_absorption(c, init, absorbing), 3.0 / r, 1e-8);
}

TEST(Mtta, CompetingAbsorptionUsesMinimum) {
  // From 0: to absorbing 1 at rate a, to absorbing 2 at rate b -> E = 1/(a+b).
  Ctmc c(3);
  c.add_transition(0, 1, 0.5);
  c.add_transition(0, 2, 1.5);
  const std::vector<bool> absorbing{false, true, true};
  EXPECT_NEAR(mean_time_to_absorption(c, {1, 0, 0}, absorbing), 0.5, 1e-9);
}

TEST(Mtta, RepairableSystemClosedForm) {
  // Up(0) -> Degraded(1) at rate d; Degraded -> Up at repair rate r;
  // Degraded -> Failed(2, absorbing) at rate f.
  // h1 = (1 + r*h0) / (r + f), h0 = 1/d + h1 -> solve:
  const double d = 0.4, r = 2.0, f = 0.3;
  Ctmc c(3);
  c.add_transition(0, 1, d);
  c.add_transition(1, 0, r);
  c.add_transition(1, 2, f);
  // Hitting equations: h0 = 1/d + h1 and h1 = (1 + r h0)/(r+f)
  //   => h1 (r+f) = 1 + r/d + r h1  =>  h1 = (1 + r/d)/f.
  const double h1 = (1.0 + r / d) / f;
  const double h0 = 1.0 / d + h1;
  const std::vector<bool> absorbing{false, false, true};
  EXPECT_NEAR(mean_time_to_absorption(c, {1, 0, 0}, absorbing), h0, 1e-7);
}

TEST(Mtta, UnreachableAbsorbingSetThrows) {
  Ctmc c(3);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 0, 1.0);  // {0,1} closed; 2 unreachable
  const std::vector<bool> absorbing{false, false, true};
  EXPECT_THROW(mean_time_to_absorption(c, {1, 0, 0}, absorbing), DomainError);
}

TEST(Mtta, SizeValidation) {
  Ctmc c(2);
  c.add_transition(0, 1, 1.0);
  EXPECT_THROW(mean_time_to_absorption(c, {1.0}, {false, true}), DomainError);
  EXPECT_THROW(mean_time_to_absorption(c, {1, 0}, {false}), DomainError);
}

// ---- exact_mttf vs closed forms and vs SMC ---------------------------------------

TEST(ExactMttf, SingleErlangLeaf) {
  fmt::FaultMaintenanceTree m;
  m.set_top(m.add_ebe("a", fmt::DegradationModel::erlang(4, 8.0, 2)));
  EXPECT_NEAR(exact_mttf(m), 8.0, 1e-8);
}

TEST(ExactMttf, SeriesOfExponentials) {
  // min(exp(a), exp(b)) ~ exp(a+b).
  fmt::FaultMaintenanceTree m;
  const auto a = m.add_basic_event("a", Distribution::exponential(0.3));
  const auto b = m.add_basic_event("b", Distribution::exponential(0.2));
  m.set_top(m.add_or("top", {a, b}));
  EXPECT_NEAR(exact_mttf(m), 2.0, 1e-8);
}

TEST(ExactMttf, ParallelOfExponentials) {
  // max of two iid exp(r): E = 1/(2r) + 1/r.
  fmt::FaultMaintenanceTree m;
  const auto a = m.add_basic_event("a", Distribution::exponential(0.5));
  const auto b = m.add_basic_event("b", Distribution::exponential(0.5));
  m.set_top(m.add_and("top", {a, b}));
  EXPECT_NEAR(exact_mttf(m), 1.0 + 2.0, 1e-8);
}

TEST(ExactMttf, AgreesWithSmcEstimate) {
  fmt::FaultMaintenanceTree m;
  const auto a = m.add_ebe("a", fmt::DegradationModel::erlang(3, 5.0, 4));
  const auto b = m.add_ebe("b", fmt::DegradationModel::erlang(2, 7.0, 3));
  m.set_top(m.add_voting("top", 2, {a, b}));  // = AND
  m.add_rdep("dep", a, {b}, 2.0);
  const double exact = exact_mttf(m);
  smc::AnalysisSettings s;
  s.horizon = 200.0;  // long enough that censoring is negligible
  s.trajectories = 40000;
  s.seed = 4;
  const smc::MttfEstimate est = smc::mean_time_to_failure(m, s);
  EXPECT_LT(est.censored, 5u);
  EXPECT_TRUE(est.mttf.contains(exact))
      << "exact=" << exact << " estimate=" << est.mttf.point;
}

}  // namespace
}  // namespace fmtree::analytic
