// Streaming incident ingestion: the mmap reader speaks exactly the dialect
// IncidentDatabase::save_csv writes (round-trip with quoting, CRLF, blank
// lines), the streaming writer is byte-identical to save_csv, scans carry
// everything Garwood calibration needs, and malformed inputs fail with
// row-numbered IoErrors instead of silent misparses.
#include "data/stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/estimate.hpp"
#include "data/incident.hpp"
#include "util/error.hpp"

namespace fmtree::data {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "fmtree_stream_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary);
  ASSERT_TRUE(file) << path;
  file << content;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

std::vector<IncidentRecord> sample_records() {
  return {
      {0, 0.5, "contamination"},
      {3, 1.25, "impact_damage"},
      {1, 2.0, "mode,with,commas"},
      {2, 2.75, "quoted \"mode\""},
      {3, 9.5, "contamination"},
  };
}

TEST(IncidentStream, WriterIsByteIdenticalToSaveCsv) {
  IncidentDatabase db(4, 10.0);
  for (const IncidentRecord& r : sample_records()) db.add(r);
  std::ostringstream reference;
  db.save_csv(reference);

  const std::string path = temp_path("writer.csv");
  IncidentStreamWriter writer(path);
  for (const IncidentRecord& r : sample_records()) writer.add(r);
  writer.close();
  EXPECT_EQ(writer.written(), sample_records().size());
  EXPECT_EQ(read_file(path), reference.str());
  std::remove(path.c_str());
}

TEST(IncidentStream, ReaderRoundTripsTheWriterIncludingQuoting) {
  const std::string path = temp_path("roundtrip.csv");
  {
    IncidentStreamWriter writer(path);
    for (const IncidentRecord& r : sample_records()) writer.add(r);
    writer.close();
  }
  IncidentStreamReader reader(path);
  IncidentRecord record;
  std::vector<IncidentRecord> seen;
  while (reader.next(record)) seen.push_back(record);
  const std::vector<IncidentRecord> expected = sample_records();
  ASSERT_EQ(seen.size(), expected.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].asset_id, expected[i].asset_id) << i;
    EXPECT_DOUBLE_EQ(seen[i].time, expected[i].time) << i;
    EXPECT_EQ(seen[i].failure_mode, expected[i].failure_mode) << i;
  }
  std::remove(path.c_str());
}

TEST(IncidentStream, ToleratesCrlfAndBlankLines) {
  const std::string path = temp_path("crlf.csv");
  write_file(path,
             "asset_id,time,failure_mode\r\n"
             "\r\n"
             "0,1.5,contamination\r\n"
             "\n"
             "2,3.25,impact_damage\n");
  IncidentStreamReader reader(path);
  IncidentRecord record;
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record.asset_id, 0u);
  EXPECT_DOUBLE_EQ(record.time, 1.5);
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record.asset_id, 2u);
  EXPECT_EQ(record.failure_mode, "impact_damage");
  EXPECT_FALSE(reader.next(record));
  std::remove(path.c_str());
}

TEST(IncidentStream, RejectsMissingOrWrongHeader) {
  const std::string empty = temp_path("empty.csv");
  write_file(empty, "");
  EXPECT_THROW(IncidentStreamReader{empty}, IoError);
  const std::string wrong = temp_path("wrong_header.csv");
  write_file(wrong, "a,b,c\n0,1,x\n");
  EXPECT_THROW(IncidentStreamReader{wrong}, IoError);
  EXPECT_THROW(IncidentStreamReader{temp_path("does_not_exist.csv")}, IoError);
  std::remove(empty.c_str());
  std::remove(wrong.c_str());
}

TEST(IncidentStream, MalformedRowsThrowWithTheRowNumber) {
  const auto expect_bad = [](const std::string& name, const std::string& body,
                             const std::string& needle) {
    const std::string path = temp_path(name);
    write_file(path, "asset_id,time,failure_mode\n" + body);
    IncidentStreamReader reader(path);
    IncidentRecord record;
    try {
      while (reader.next(record)) {
      }
      FAIL() << name << ": expected IoError";
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << name << ": " << e.what();
    }
    std::remove(path.c_str());
  };
  expect_bad("short_row.csv", "0,1.5\n", "row 1");
  expect_bad("long_row.csv", "0,1.5,mode,extra\n", "row 1");
  expect_bad("bad_id.csv", "zero,1.5,mode\n", "malformed value");
  expect_bad("bad_time.csv", "0,later,mode\n", "malformed value");
  expect_bad("huge_id.csv", "5000000000,1.5,mode\n", "out of range");
  expect_bad("second_row.csv", "0,1.5,ok\n0,nope,mode\n", "row 2");
}

TEST(IncidentStream, ScanSummarisesCountsAndMaxima) {
  const std::string path = temp_path("scan.csv");
  {
    IncidentStreamWriter writer(path);
    for (const IncidentRecord& r : sample_records()) writer.add(r);
    writer.close();
  }
  const IncidentScan scan = scan_incidents(path);
  EXPECT_EQ(scan.records, 5u);
  EXPECT_EQ(scan.max_asset_id, 3u);
  EXPECT_DOUBLE_EQ(scan.max_time, 9.5);
  EXPECT_EQ(scan.counts_by_mode.at("contamination"), 2u);
  EXPECT_EQ(scan.counts_by_mode.at("impact_damage"), 1u);
  EXPECT_EQ(scan.counts_by_mode.size(), 4u);
  std::remove(path.c_str());
}

TEST(IncidentStream, ModeRatesMatchTheDirectGarwoodEstimate) {
  IncidentScan scan;
  scan.records = 7;
  scan.max_asset_id = 9;
  scan.max_time = 4.0;
  scan.counts_by_mode = {{"contamination", 4}, {"impact_damage", 3}};
  const std::vector<ModeRate> rates = estimate_mode_rates(scan, 10, 5.0, 0.95);
  ASSERT_EQ(rates.size(), 2u);
  const RateEstimate direct = estimate_rate(4, 50.0, 0.95);
  EXPECT_EQ(rates[0].mode, "contamination");
  EXPECT_DOUBLE_EQ(rates[0].rate.rate, direct.rate);
  EXPECT_DOUBLE_EQ(rates[0].rate.lo, direct.lo);
  EXPECT_DOUBLE_EQ(rates[0].rate.hi, direct.hi);
}

TEST(IncidentStream, ModeRatesValidateTheScanAgainstTheFleet) {
  IncidentScan scan;
  scan.records = 1;
  scan.max_asset_id = 10;
  scan.max_time = 2.0;
  scan.counts_by_mode = {{"m", 1}};
  EXPECT_THROW(estimate_mode_rates(scan, 0, 5.0), DomainError);
  EXPECT_THROW(estimate_mode_rates(scan, 10, 5.0), DomainError);   // id 10 of 10
  EXPECT_THROW(estimate_mode_rates(scan, 11, 1.0), DomainError);   // time outside
  EXPECT_NO_THROW(estimate_mode_rates(scan, 11, 5.0));
}

TEST(IncidentStream, MappedFileHandlesEmptyAndMoves) {
  const std::string path = temp_path("mapped.bin");
  write_file(path, "");
  MappedFile empty(path);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.data(), nullptr);
  write_file(path, "abc");
  MappedFile full(path);
  ASSERT_EQ(full.size(), 3u);
  MappedFile moved(std::move(full));
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_EQ(std::string(moved.data(), moved.size()), "abc");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fmtree::data
