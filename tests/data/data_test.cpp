#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "data/estimate.hpp"
#include "data/generator.hpp"
#include "data/incident.hpp"
#include "data/validate.hpp"
#include "util/error.hpp"

namespace fmtree::data {
namespace {

using fmt::CorrectivePolicy;
using fmt::DegradationModel;
using fmt::FaultMaintenanceTree;
using fmt::NodeId;

// ---- IncidentDatabase --------------------------------------------------------

TEST(IncidentDatabase, ValidatesRecords) {
  IncidentDatabase db(10, 5.0);
  EXPECT_NO_THROW(db.add({3, 2.5, "lipping"}));
  EXPECT_THROW(db.add({10, 1.0, "x"}), DomainError);   // asset out of range
  EXPECT_THROW(db.add({0, 6.0, "x"}), DomainError);    // beyond window
  EXPECT_THROW(db.add({0, -1.0, "x"}), DomainError);
  EXPECT_THROW(db.add({0, 1.0, ""}), DomainError);
  EXPECT_THROW(IncidentDatabase(0, 1.0), DomainError);
  EXPECT_THROW(IncidentDatabase(1, 0.0), DomainError);
}

TEST(IncidentDatabase, RatesAndCounts) {
  IncidentDatabase db(20, 10.0);
  db.add({0, 1.0, "a"});
  db.add({1, 2.0, "a"});
  db.add({2, 3.0, "b"});
  EXPECT_DOUBLE_EQ(db.exposure(), 200.0);
  EXPECT_DOUBLE_EQ(db.failure_rate(), 3.0 / 200.0);
  const auto counts = db.counts_by_mode();
  EXPECT_EQ(counts.at("a"), 2u);
  EXPECT_EQ(counts.at("b"), 1u);
}

TEST(IncidentDatabase, CsvRoundTrip) {
  IncidentDatabase db(5, 3.0);
  db.add({0, 0.5, "mode with, comma"});
  db.add({4, 2.999, "clean"});
  std::ostringstream os;
  db.save_csv(os);
  std::istringstream is(os.str());
  const IncidentDatabase loaded = IncidentDatabase::load_csv(is, 5, 3.0);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.records()[0].failure_mode, "mode with, comma");
  EXPECT_NEAR(loaded.records()[1].time, 2.999, 1e-9);
  EXPECT_EQ(loaded.records()[1].asset_id, 4u);
}

TEST(IncidentDatabase, LoadRejectsBadHeaderAndRows) {
  std::istringstream bad_header("a,b,c\n1,2,3\n");
  EXPECT_THROW(IncidentDatabase::load_csv(bad_header, 5, 3.0), IoError);
  std::istringstream bad_row("asset_id,time,failure_mode\n1,2\n");
  EXPECT_THROW(IncidentDatabase::load_csv(bad_row, 5, 3.0), IoError);
  std::istringstream bad_num("asset_id,time,failure_mode\nxx,2,m\n");
  EXPECT_THROW(IncidentDatabase::load_csv(bad_num, 5, 3.0), IoError);
}

// ---- Generator ------------------------------------------------------------------

FaultMaintenanceTree ground_truth() {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("wear", DegradationModel::erlang(3, 4.0, 2),
                             fmt::RepairSpec{"fix", 100});
  const NodeId b = m.add_basic_event("shock", Distribution::exponential(0.1));
  m.set_top(m.add_or("top", {a, b}));
  m.set_corrective(CorrectivePolicy{true, 0.0, 1000, 0});
  return m;
}

TEST(Generator, IncidentRatesMatchModelPrediction) {
  const FaultMaintenanceTree m = ground_truth();
  const IncidentDatabase db = generate_incidents(m, 500, 10.0, 42);
  // Without inspections the system is a renewal process over
  // min(Erlang(3, 0.75), Exp(0.1)); rate roughly 1/mean of the min. Sanity:
  // between 0.1 (shock only) and 0.6.
  EXPECT_GT(db.failure_rate(), 0.15);
  EXPECT_LT(db.failure_rate(), 0.60);
  // Both modes appear.
  const auto counts = db.counts_by_mode();
  EXPECT_GT(counts.at("wear"), 0u);
  EXPECT_GT(counts.at("shock"), 0u);
}

TEST(Generator, DeterministicInSeed) {
  const FaultMaintenanceTree m = ground_truth();
  const IncidentDatabase a = generate_incidents(m, 50, 5.0, 7);
  const IncidentDatabase b = generate_incidents(m, 50, 5.0, 7);
  const IncidentDatabase c = generate_incidents(m, 50, 5.0, 8);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_NE(a.size(), c.size());  // overwhelmingly likely
}

TEST(Generator, ElicitationMatchesDegradationMoments) {
  const FaultMaintenanceTree m = ground_truth();
  const NodeId wear = *m.find("wear");
  const auto samples = elicit_degradation(m, wear, 50000, 1);
  ASSERT_EQ(samples.size(), 50000u);
  double mean_ttf = 0, mean_thresh = 0;
  for (const DegradationSample& s : samples) {
    EXPECT_GE(s.time_to_failure, s.time_to_threshold);
    mean_ttf += s.time_to_failure;
    mean_thresh += s.time_to_threshold;
  }
  mean_ttf /= static_cast<double>(samples.size());
  mean_thresh /= static_cast<double>(samples.size());
  EXPECT_NEAR(mean_ttf, 4.0, 0.05);
  // Threshold phase 2 of 3: expected time to threshold = 1 phase = 4/3.
  EXPECT_NEAR(mean_thresh, 4.0 / 3.0, 0.04);
}

TEST(Generator, ElicitationOfUndetectableModeGivesThresholdAtFailure) {
  const FaultMaintenanceTree m = ground_truth();
  const auto samples = elicit_degradation(m, *m.find("shock"), 100, 1);
  for (const DegradationSample& s : samples)
    EXPECT_DOUBLE_EQ(s.time_to_threshold, s.time_to_failure);
}

// ---- Estimators ------------------------------------------------------------------

TEST(EstimateRate, PointAndIntervalProperties) {
  const RateEstimate est = estimate_rate(50, 1000.0);
  EXPECT_DOUBLE_EQ(est.rate, 0.05);
  EXPECT_LT(est.lo, 0.05);
  EXPECT_GT(est.hi, 0.05);
  // Garwood 95% for k=50: roughly [0.0371, 0.0659].
  EXPECT_NEAR(est.lo, 0.0371, 0.001);
  EXPECT_NEAR(est.hi, 0.0659, 0.001);
}

TEST(EstimateRate, ZeroEventsLowerBoundZero) {
  const RateEstimate est = estimate_rate(0, 100.0);
  EXPECT_DOUBLE_EQ(est.rate, 0.0);
  EXPECT_DOUBLE_EQ(est.lo, 0.0);
  // Upper bound for 0 events at 95%: -ln(0.025)/T = 3.689/T.
  EXPECT_NEAR(est.hi, 3.689 / 100.0, 0.001);
}

TEST(EstimateRate, Validation) {
  EXPECT_THROW(estimate_rate(1, 0.0), DomainError);
  EXPECT_THROW(estimate_rate(1, 10.0, 1.5), DomainError);
  EXPECT_THROW(estimate_rate(1, std::numeric_limits<double>::infinity()), DomainError);
  EXPECT_THROW(estimate_rate(1, std::nan("")), DomainError);
}

TEST(GammaQuantile, RoundTripsThroughGammaP) {
  for (double shape : {0.5, 1.0, 3.0, 10.0}) {
    for (double p : {0.05, 0.5, 0.95}) {
      const double x = gamma_quantile(shape, p);
      EXPECT_NEAR(gamma_p(shape, x), p, 1e-8) << shape << " " << p;
    }
  }
  EXPECT_THROW(gamma_quantile(0, 0.5), DomainError);
  EXPECT_THROW(gamma_quantile(1, 0.0), DomainError);
}

TEST(FitErlang, RecoversShapeAndRate) {
  RandomStream rng(5, 0);
  const Distribution truth = Distribution::erlang(4, 0.5);  // mean 8
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(truth.sample(rng));
  const ErlangFit fit = fit_erlang(samples);
  EXPECT_EQ(fit.shape, 4);
  EXPECT_NEAR(fit.rate, 0.5, 0.02);
  EXPECT_NEAR(fit.mean(), 8.0, 0.2);
}

TEST(FitErlang, ExponentialDataGivesShapeOne) {
  RandomStream rng(6, 0);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(Distribution::exponential(0.2).sample(rng));
  EXPECT_EQ(fit_erlang(samples).shape, 1);
}

TEST(FitErlang, Validation) {
  EXPECT_THROW(fit_erlang({}), DomainError);
  EXPECT_THROW(fit_erlang({1.0, -1.0}), DomainError);
  EXPECT_THROW(fit_erlang({1.0, 0.0}), DomainError);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(fit_erlang({1.0, inf}), DomainError);
  EXPECT_THROW(fit_erlang({1.0, std::nan("")}), DomainError);
}

TEST(FitErlang, SingleSampleClampsInsteadOfThrowing) {
  const ErlangFit fit = fit_erlang({4.0});
  EXPECT_TRUE(fit.degenerate);
  EXPECT_FALSE(fit.note.empty());
  EXPECT_EQ(fit.shape, kDegenerateErlangShape);
  EXPECT_TRUE(std::isfinite(fit.rate));
  EXPECT_NEAR(fit.mean(), 4.0, 1e-12);
}

TEST(FitErlang, AllEqualSamplesClampWithFiniteRate) {
  const ErlangFit fit = fit_erlang({2.5, 2.5, 2.5, 2.5});
  EXPECT_TRUE(fit.degenerate);
  EXPECT_EQ(fit.shape, kDegenerateErlangShape);
  EXPECT_TRUE(std::isfinite(fit.rate));
  EXPECT_GT(fit.rate, 0.0);
  EXPECT_NEAR(fit.mean(), 2.5, 1e-12);
}

TEST(FitErlang, NearZeroVarianceClampsShapeInsteadOfOverflowing) {
  // Relative spread ~1e-12 gives mean^2/var ~1e24, far past INT_MAX; the
  // fit must clamp to the ceiling, not overflow the integer cast.
  const ErlangFit fit = fit_erlang({1.0, 1.0 + 1e-12, 1.0 - 1e-12, 1.0});
  EXPECT_TRUE(fit.degenerate);
  EXPECT_EQ(fit.shape, kDegenerateErlangShape);
  EXPECT_TRUE(std::isfinite(fit.rate));
}

TEST(FitDegradation, RecoversFullModelFromElicitation) {
  FaultMaintenanceTree m;
  m.set_top(m.add_ebe("mode", DegradationModel::erlang(5, 10.0, 3)));
  const auto samples = elicit_degradation(m, *m.find("mode"), 20000, 9);
  const DegradationModel fitted = fit_degradation(samples);
  EXPECT_EQ(fitted.phases(), 5);
  EXPECT_EQ(fitted.threshold_phase(), 3);
  EXPECT_NEAR(fitted.mean_time_to_failure(), 10.0, 0.3);
}

TEST(FitDegradation, SingleSampleFitsClampedModel) {
  const DegradationModel fitted = fit_degradation({{2.0, 5.0}});
  EXPECT_EQ(fitted.phases(), kDegenerateErlangShape);
  EXPECT_NEAR(fitted.mean_time_to_failure(), 5.0, 1e-9);
  EXPECT_THROW(fit_degradation({}), DomainError);
  EXPECT_THROW(fit_degradation({{std::nan(""), 5.0}}), DomainError);
  EXPECT_THROW(fit_degradation({{1.0, std::nan("")}}), DomainError);
}

TEST(FitDegradation, UndetectableModeFitsThresholdPastEnd) {
  FaultMaintenanceTree m;
  m.set_top(m.add_ebe("mode", DegradationModel::erlang(3, 6.0, 4)));
  const auto samples = elicit_degradation(m, *m.find("mode"), 20000, 9);
  const DegradationModel fitted = fit_degradation(samples);
  EXPECT_FALSE(fitted.inspectable());
}

// ---- Validation pipeline ----------------------------------------------------------

TEST(Validate, GroundTruthModelValidatesAgainstOwnData) {
  const FaultMaintenanceTree m = ground_truth();
  const IncidentDatabase holdout = generate_incidents(m, 400, 10.0, 1234);
  smc::AnalysisSettings s;
  s.trajectories = 4000;
  s.seed = 99;
  const ValidationReport report = validate_against(m, holdout, s);
  EXPECT_TRUE(report.system.intervals_overlap)
      << "observed " << report.system.observed.rate << " predicted "
      << report.system.predicted.point;
  ASSERT_EQ(report.modes.size(), 2u);
  for (const ValidationRow& row : report.modes)
    EXPECT_TRUE(row.intervals_overlap) << row.label;
}

TEST(Validate, WrongModelFailsValidation) {
  const FaultMaintenanceTree truth = ground_truth();
  const IncidentDatabase holdout = generate_incidents(truth, 400, 10.0, 77);
  // Candidate with a shock rate 10x too high must not match.
  FaultMaintenanceTree wrong;
  const NodeId a = wrong.add_ebe("wear", DegradationModel::erlang(3, 4.0, 2),
                                 fmt::RepairSpec{"fix", 100});
  const NodeId b = wrong.add_basic_event("shock", Distribution::exponential(1.0));
  wrong.set_top(wrong.add_or("top", {a, b}));
  wrong.set_corrective(CorrectivePolicy{true, 0.0, 1000, 0});
  smc::AnalysisSettings s;
  s.trajectories = 4000;
  s.seed = 99;
  const ValidationReport report = validate_against(wrong, holdout, s);
  EXPECT_FALSE(report.system.intervals_overlap);
}

}  // namespace
}  // namespace fmtree::data
