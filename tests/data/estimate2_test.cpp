// Weibull MLE, lifetime-family selection, fleet data and the extended
// (maintenance-record) validation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "data/estimate.hpp"
#include "data/generator.hpp"
#include "data/validate.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fmtree::data {
namespace {

std::vector<double> draw(const Distribution& d, std::size_t n, std::uint64_t seed) {
  RandomStream rng(seed, 0);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(d.sample(rng));
  return out;
}

// ---- Weibull MLE ---------------------------------------------------------------

TEST(FitWeibull, RecoversKnownParameters) {
  const auto samples = draw(Distribution::weibull(2.5, 8.0), 20000, 11);
  const WeibullFit fit = fit_weibull(samples);
  EXPECT_NEAR(fit.shape, 2.5, 0.06);
  EXPECT_NEAR(fit.scale, 8.0, 0.15);
}

TEST(FitWeibull, ExponentialDataGivesShapeNearOne) {
  const auto samples = draw(Distribution::exponential(0.25), 20000, 12);
  const WeibullFit fit = fit_weibull(samples);
  EXPECT_NEAR(fit.shape, 1.0, 0.03);
  EXPECT_NEAR(fit.scale, 4.0, 0.15);
}

TEST(FitWeibull, DecreasingHazardShapeBelowOne) {
  const auto samples = draw(Distribution::weibull(0.7, 3.0), 20000, 13);
  EXPECT_NEAR(fit_weibull(samples).shape, 0.7, 0.03);
}

TEST(FitWeibull, Validation) {
  EXPECT_THROW(fit_weibull({}), DomainError);
  EXPECT_THROW(fit_weibull({1.0, -2.0}), DomainError);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(fit_weibull({1.0, inf}), DomainError);
  EXPECT_THROW(fit_weibull({1.0, std::nan("")}), DomainError);
}

TEST(FitWeibull, DegenerateSamplesClampInsteadOfThrowing) {
  // A single sample and an all-equal sample both have zero spread: the MLE
  // shape diverges, so the fit clamps to the ceiling with a diagnostic.
  for (const std::vector<double>& s :
       {std::vector<double>{3.0}, std::vector<double>{3.0, 3.0, 3.0}}) {
    const WeibullFit fit = fit_weibull(s);
    EXPECT_TRUE(fit.degenerate);
    EXPECT_FALSE(fit.note.empty());
    EXPECT_DOUBLE_EQ(fit.shape, kMaxWeibullShape);
    EXPECT_DOUBLE_EQ(fit.scale, 3.0);
    EXPECT_TRUE(std::isfinite(fit.log_likelihood));
  }
}

TEST(LogLikelihoods, MleBeatsPerturbedParameters) {
  const auto samples = draw(Distribution::weibull(1.8, 5.0), 5000, 14);
  const WeibullFit fit = fit_weibull(samples);
  EXPECT_GT(fit.log_likelihood,
            weibull_log_likelihood(fit.shape * 1.3, fit.scale, samples));
  EXPECT_GT(fit.log_likelihood,
            weibull_log_likelihood(fit.shape, fit.scale * 1.3, samples));
}

TEST(LogLikelihoods, ErlangValidation) {
  EXPECT_THROW(erlang_log_likelihood(0, 1.0, {1.0}), DomainError);
  EXPECT_THROW(erlang_log_likelihood(1, 0.0, {1.0}), DomainError);
  EXPECT_THROW(weibull_log_likelihood(0, 1.0, {1.0}), DomainError);
}

TEST(FamilySelection, PicksTheGeneratingFamily) {
  // Strongly Weibull data (shape 0.6 is inexpressible by Erlang).
  const auto weib = draw(Distribution::weibull(0.6, 5.0), 20000, 15);
  EXPECT_EQ(select_lifetime_family(weib).family, LifetimeFamily::Weibull);
  // Erlang(5) data: Erlang should win (or at least not lose badly; the
  // families overlap, so require the log-likelihood gap to be small if
  // Weibull edges it out numerically).
  const auto erl = draw(Distribution::erlang(5, 1.0), 20000, 16);
  const FamilySelection sel = select_lifetime_family(erl);
  if (sel.family != LifetimeFamily::Erlang) {
    EXPECT_NEAR(sel.weibull_log_likelihood, sel.erlang_log_likelihood,
                0.002 * std::fabs(sel.erlang_log_likelihood));
  }
}

// ---- Fleet data -------------------------------------------------------------------

TEST(FleetData, IncidentsMatchGenerateIncidents) {
  const auto model = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                             eijoint::current_policy());
  const FleetData fleet = generate_fleet_data(model, 150, 8.0, 99);
  const IncidentDatabase alone = generate_incidents(model, 150, 8.0, 99);
  EXPECT_EQ(fleet.incidents.size(), alone.size());
}

TEST(FleetData, MaintenanceCountsConsistent) {
  const auto model = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                             eijoint::current_policy());
  const FleetData fleet = generate_fleet_data(model, 200, 10.0, 5);
  // Quarterly inspections over 10 years x 200 assets = 8000 rounds.
  EXPECT_EQ(fleet.inspections, 8000u);
  EXPECT_EQ(fleet.replacements, 0u);
  // Contamination is the workhorse repair (~0.8-1 per joint-year).
  const double contamination_rate =
      static_cast<double>(fleet.repairs_by_mode.at("contamination")) / fleet.exposure();
  EXPECT_GT(contamination_rate, 0.4);
  EXPECT_LT(contamination_rate, 1.5);
  // Every mode key exists even with zero repairs.
  EXPECT_TRUE(fleet.repairs_by_mode.contains("impact_damage"));
  EXPECT_EQ(fleet.repairs_by_mode.at("impact_damage"), 0u);
}

TEST(ValidateFleet, GroundTruthMatchesOwnMaintenanceRecords) {
  const auto model = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                             eijoint::current_policy());
  const FleetData fleet = generate_fleet_data(model, 600, 10.0, 321);
  smc::AnalysisSettings s;
  s.trajectories = 3000;
  s.seed = 77;
  const ValidationReport report = validate_fleet(model, fleet, s);
  EXPECT_TRUE(report.system.intervals_overlap);
  ASSERT_EQ(report.repairs.size(), model.num_ebes());
  for (const ValidationRow& row : report.repairs)
    EXPECT_TRUE(row.intervals_overlap) << row.label;
}

TEST(ValidateFleet, WrongMaintenanceModelCaughtByRepairRates) {
  // A candidate with the same failure behaviour for contamination but a
  // much later threshold produces far fewer repairs: the repair-rate check
  // must flag it even though overall failure rates may stay plausible at
  // modest precision.
  const auto truth = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                             eijoint::current_policy());
  eijoint::EiJointParameters wrong_params = eijoint::EiJointParameters::defaults();
  wrong_params.contamination.threshold = 3;  // instead of 2
  const auto wrong = eijoint::build_ei_joint(wrong_params, eijoint::current_policy());
  const FleetData fleet = generate_fleet_data(truth, 600, 10.0, 654);
  smc::AnalysisSettings s;
  s.trajectories = 3000;
  s.seed = 78;
  const ValidationReport report = validate_fleet(wrong, fleet, s);
  bool contamination_flagged = false;
  for (const ValidationRow& row : report.repairs)
    if (row.label == "contamination" && !row.intervals_overlap)
      contamination_flagged = true;
  EXPECT_TRUE(contamination_flagged);
}

}  // namespace
}  // namespace fmtree::data
