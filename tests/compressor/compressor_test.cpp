#include "compressor/compressor.hpp"

#include <gtest/gtest.h>

#include "ft/cutsets.hpp"
#include "smc/kpi.hpp"
#include "util/error.hpp"

namespace fmtree::compressor {
namespace {

smc::AnalysisSettings settings(std::uint64_t n = 4000) {
  smc::AnalysisSettings s;
  s.horizon = 20.0;
  s.trajectories = n;
  s.seed = 1234;
  return s;
}

TEST(Compressor, StructureMatchesTaxonomy) {
  const auto m = build_compressor(CompressorParameters::defaults(), current_plan());
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.num_ebes(), 9u);
  for (const char* name :
       {"cylinder_wear", "piston_rings", "valve_wear", "dryer_saturation",
        "oil_carryover", "oil_degradation", "oil_pump", "motor_bearing",
        "motor_winding"}) {
    EXPECT_TRUE(m.find(name).has_value()) << name;
  }
  EXPECT_EQ(m.name(m.top()), "compressor_failure");
  // All-OR structure: every leaf is a singleton cut set.
  EXPECT_EQ(ft::minimal_cut_sets(m.structure()).size(), 9u);
}

TEST(Compressor, TwoInspectionTiersWithDisjointScopes) {
  const auto m = build_compressor(CompressorParameters::defaults(), current_plan());
  ASSERT_EQ(m.inspections().size(), 2u);
  const auto& minor = m.inspections()[0];
  const auto& major = m.inspections()[1];
  EXPECT_LT(minor.period, major.period);
  EXPECT_LT(minor.cost, major.cost);
  EXPECT_EQ(minor.targets.size(), 3u);  // consumables
  EXPECT_EQ(major.targets.size(), 4u);  // wear parts
  for (fmt::NodeId t1 : minor.targets)
    for (fmt::NodeId t2 : major.targets) EXPECT_NE(t1, t2);
}

TEST(Compressor, RdepCouplingConfigured) {
  const auto m = build_compressor(CompressorParameters::defaults(), current_plan());
  ASSERT_EQ(m.rdeps().size(), 3u);
  for (const fmt::RateDependency& r : m.rdeps()) {
    EXPECT_EQ(m.name(r.trigger), "oil_degradation");
    EXPECT_EQ(r.trigger_phase, 3);
  }
  CompressorParameters p = CompressorParameters::defaults();
  p.enable_rdep = false;
  EXPECT_TRUE(build_compressor(p, current_plan()).rdeps().empty());
}

TEST(Compressor, PlanCatalogueShapes) {
  const auto plans = compressor_plans();
  ASSERT_EQ(plans.size(), 5u);
  EXPECT_EQ(plans[0].name, "corrective-only");
  EXPECT_LE(plans[0].minor_period, 0.0);
  EXPECT_GT(plans.back().overhaul_period, 0.0);
}

TEST(Compressor, MinorServiceBeatsMajorInspectionAlone) {
  // The consumables dominate the failure intensity and the oil coupling
  // amplifies wear, so servicing consumables must beat inspecting only the
  // wear parts.
  const auto plans = compressor_plans();
  const auto& minor_only = plans[1];
  const auto& major_only = plans[2];
  const auto k_minor = smc::analyze(
      build_compressor(CompressorParameters::defaults(), minor_only), settings());
  const auto k_major = smc::analyze(
      build_compressor(CompressorParameters::defaults(), major_only), settings());
  EXPECT_LT(k_minor.failures_per_year.point, k_major.failures_per_year.point);
  EXPECT_LT(k_minor.cost_per_year.point, k_major.cost_per_year.point);
}

TEST(Compressor, CombinedPlanIsCheapestInCatalogue) {
  double best = 1e300, current = 0;
  for (const CompressorPlan& plan : compressor_plans()) {
    const auto k = smc::analyze(
        build_compressor(CompressorParameters::defaults(), plan), settings());
    best = std::min(best, k.cost_per_year.point);
    if (plan.name == "current") current = k.cost_per_year.point;
  }
  EXPECT_LE(current, best * 1.02);
}

TEST(Compressor, OilCouplingDrivesWearFailures) {
  // Disabling the RDEP must reduce wear-part failures under sparse
  // maintenance (oil often degraded).
  CompressorParameters with = CompressorParameters::defaults();
  CompressorParameters without = with;
  without.enable_rdep = false;
  CompressorPlan sparse = current_plan();
  sparse.minor_period = 0;  // oil never serviced
  const auto k_with = smc::analyze(build_compressor(with, sparse), settings(8000));
  const auto k_without =
      smc::analyze(build_compressor(without, sparse), settings(8000));
  const auto model = build_compressor(with, sparse);
  const auto idx = [&](const char* name) { return model.ebe_index(*model.find(name)); };
  const double wear_with = k_with.failures_per_leaf[idx("cylinder_wear")] +
                           k_with.failures_per_leaf[idx("piston_rings")];
  const double wear_without = k_without.failures_per_leaf[idx("cylinder_wear")] +
                              k_without.failures_per_leaf[idx("piston_rings")];
  EXPECT_GT(wear_with, wear_without * 1.2);
}

TEST(Compressor, TimedRepairsAccountedInTrace) {
  // The wear-part repairs carry durations; they must appear as
  // started-then-completed pairs.
  const auto m = build_compressor(CompressorParameters::defaults(), current_plan());
  const sim::FmtSimulator simulator(m);
  sim::Trace trace;
  sim::SimOptions opts;
  opts.horizon = 60.0;
  opts.trace = &trace;
  (void)simulator.run(RandomStream(3, 3), opts);
  const auto started = trace.of_kind(sim::TraceKind::RepairPerformed);
  const auto completed = trace.of_kind(sim::TraceKind::RepairCompleted);
  EXPECT_LE(completed.size(), started.size());
}

}  // namespace
}  // namespace fmtree::compressor
