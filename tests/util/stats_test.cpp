#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fmtree {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.std_error(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RandomStream rng(1, 0);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 10);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  RunningStats b = a;
  b.merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, MeanCiCoversTrueMean) {
  // 95% CI over repeated experiments should cover the true mean ~95% of the
  // time; check coverage is at least 90% over 200 replications.
  int covered = 0;
  for (int rep = 0; rep < 200; ++rep) {
    RandomStream rng(42, static_cast<std::uint64_t>(rep));
    RunningStats s;
    for (int i = 0; i < 500; ++i) s.add(rng.uniform(0, 2));  // true mean 1
    if (s.mean_ci(0.95).contains(1.0)) ++covered;
  }
  EXPECT_GE(covered, 180);
}

TEST(RunningStats, MeanCiRejectsBadConfidence) {
  RunningStats s;
  s.add(1);
  EXPECT_THROW(s.mean_ci(0.0), DomainError);
  EXPECT_THROW(s.mean_ci(1.0), DomainError);
}

TEST(WilsonInterval, KnownValue) {
  // 8/10 successes, 95%: Wilson gives about [0.49, 0.94].
  const ConfidenceInterval ci = wilson_interval(8, 10, 0.95);
  EXPECT_NEAR(ci.point, 0.8, 1e-12);
  EXPECT_NEAR(ci.lo, 0.4902, 0.005);
  EXPECT_NEAR(ci.hi, 0.9433, 0.005);
}

TEST(WilsonInterval, DegenerateCountsStayInUnitInterval) {
  const ConfidenceInterval zero = wilson_interval(0, 50);
  EXPECT_EQ(zero.point, 0.0);
  EXPECT_NEAR(zero.lo, 0.0, 1e-12);
  EXPECT_GT(zero.hi, 0.001);
  const ConfidenceInterval full = wilson_interval(50, 50);
  EXPECT_EQ(full.point, 1.0);
  EXPECT_LT(full.lo, 0.999);
  EXPECT_NEAR(full.hi, 1.0, 1e-12);
}

TEST(WilsonInterval, RejectsBadInput) {
  EXPECT_THROW(wilson_interval(1, 0), DomainError);
  EXPECT_THROW(wilson_interval(5, 3), DomainError);
  EXPECT_THROW(wilson_interval(1, 2, 1.5), DomainError);
}

TEST(HoeffdingInterval, WiderThanWilson) {
  const ConfidenceInterval w = wilson_interval(500, 1000);
  const ConfidenceInterval h = hoeffding_interval(0.5, 1000);
  EXPECT_GT(h.half_width(), w.half_width());
}

TEST(HoeffdingInterval, ShrinksWithSamples) {
  const ConfidenceInterval a = hoeffding_interval(0.5, 100);
  const ConfidenceInterval b = hoeffding_interval(0.5, 10000);
  EXPECT_LT(b.half_width(), a.half_width());
}

TEST(OkamotoSampleSize, MatchesHoeffdingWidth) {
  // With the Okamoto count, the Hoeffding interval has half-width <= eps.
  const double eps = 0.01;
  const std::uint64_t n = okamoto_sample_size(eps, 0.95);
  const ConfidenceInterval ci = hoeffding_interval(0.5, n, 0.95);
  EXPECT_LE(ci.half_width(), eps + 1e-12);
  // And one fewer sample is not enough.
  const ConfidenceInterval ci1 = hoeffding_interval(0.5, n - 1, 0.95);
  EXPECT_GT(ci1.half_width(), eps);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-0.1);  // underflow
  h.add(0.0);
  h.add(1.999);
  h.add(2.0);
  h.add(9.999);
  h.add(10.0);  // overflow (right-open)
  h.add(25.0);  // overflow
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_THROW(h.bin_count(5), DomainError);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1, 1, 4), DomainError);
  EXPECT_THROW(Histogram(0, 1, 0), DomainError);
}

TEST(Quantile, KnownValues) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.125), 1.5);  // interpolated
}

TEST(Quantile, SingleElementAndErrors) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.3), 7.0);
  EXPECT_THROW(quantile({}, 0.5), DomainError);
  EXPECT_THROW(quantile({1.0}, 1.5), DomainError);
}

}  // namespace
}  // namespace fmtree
