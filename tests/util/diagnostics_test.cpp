#include "util/diagnostics.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fmtree {
namespace {

TEST(Diagnostics, CountsErrorsNotWarnings) {
  Diagnostics d;
  EXPECT_TRUE(d.empty());
  d.warning("P101", {1, 1}, "odd but legal");
  EXPECT_FALSE(d.has_errors());
  d.error("P102", {2, 5}, "duplicate definition of 'A'");
  d.error("M101", {3, 1}, "undefined reference");
  EXPECT_EQ(d.error_count(), 2u);
  EXPECT_EQ(d.all().size(), 3u);
}

TEST(Diagnostics, FormatIncludesLocationCodeHintAndToken) {
  Diagnostic d;
  d.code = "P101";
  d.loc = {4, 12};
  d.message = "expected ';'";
  d.hint = "statements end with ';'";
  d.token = "or";
  EXPECT_EQ(format_diagnostic(d),
            "4:12: error[P101]: expected ';' (at 'or') (hint: statements end with ';')");
}

TEST(Diagnostics, FormatSuppressesMissingParts) {
  Diagnostic d;
  d.code = "M105";
  d.message = "no top event set";
  EXPECT_EQ(format_diagnostic(d), "error[M105]: no top event set");
  d.loc = {7, 0};  // line known, column not
  EXPECT_EQ(format_diagnostic(d), "7: error[M105]: no top event set");
}

TEST(Diagnostics, TokenNotRepeatedWhenMessageQuotesIt) {
  Diagnostic d;
  d.code = "P102";
  d.loc = {2, 1};
  d.message = "duplicate definition of 'A'";
  d.token = "A";
  EXPECT_EQ(format_diagnostic(d), "2:1: error[P102]: duplicate definition of 'A'");
}

TEST(Diagnostics, ToJsonEscapesAndListsEveryDiagnostic) {
  Diagnostics d;
  d.error("P101", {1, 2}, "bad \"name\"", "quote it", "\"x");
  d.warning("M103", {0, 0}, "unused node");
  const std::string json = d.to_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"code\":\"P101\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":1"), std::string::npos);
  EXPECT_NE(json.find("\"column\":2"), std::string::npos);
  EXPECT_NE(json.find("bad \\\"name\\\""), std::string::npos);
  EXPECT_NE(json.find("\"hint\":\"quote it\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"warning\""), std::string::npos);
}

TEST(Diagnostics, JsonEscapeControlCharacters) {
  EXPECT_EQ(json_escape("a\nb\tc\\d\"e"), "a\\nb\\tc\\\\d\\\"e");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Diagnostics, ThrowIfErrorsPicksParseAggregateForParseCodes) {
  Diagnostics d;
  d.error("P101", {3, 7}, "expected ';'");
  d.error("M101", {5, 1}, "undefined reference to 'X'");
  try {
    d.throw_if_errors();
    FAIL() << "expected ParseErrors";
  } catch (const ParseErrors& e) {
    EXPECT_EQ(e.diagnostics().size(), 2u);
    EXPECT_EQ(e.line(), 3u);  // first error's location
    EXPECT_EQ(e.column(), 7u);
    EXPECT_NE(std::string(e.what()).find("2 parse errors"), std::string::npos);
  }
}

TEST(Diagnostics, ThrowIfErrorsPicksModelAggregateOtherwise) {
  Diagnostics d;
  d.warning("P101", {1, 1}, "a warning does not make it a parse failure");
  d.error("M102", {0, 0}, "cycle involving 'A'");
  EXPECT_THROW(d.throw_if_errors(), ModelErrors);
}

TEST(Diagnostics, ThrowIfErrorsNoOpWithoutErrors) {
  Diagnostics d;
  d.warning("M103", {1, 1}, "nothing fatal");
  EXPECT_NO_THROW(d.throw_if_errors());
}

TEST(Diagnostics, AggregatesStillCatchableAsSingleErrorTypes) {
  // Compatibility contract: old call sites catching ParseError / ModelError
  // keep working when the parser throws the aggregate forms.
  Diagnostics d;
  d.error("P101", {1, 1}, "boom");
  EXPECT_THROW(d.throw_if_errors(), ParseError);
  Diagnostics m;
  m.error("M101", {1, 1}, "boom");
  EXPECT_THROW(m.throw_if_errors(), ModelError);
}

TEST(Diagnostics, FromParseErrorPreservesStructuredFields) {
  const ParseError e(9, 4, "vot", "unknown statement type 'vot'", "P104",
                     "expected and/or/vot/be");
  const Diagnostic d = diagnostic_from(e);
  EXPECT_EQ(d.code, "P104");
  EXPECT_EQ(d.loc.line, 9u);
  EXPECT_EQ(d.loc.column, 4u);
  EXPECT_EQ(d.token, "vot");
  EXPECT_EQ(d.message, "unknown statement type 'vot'");
  EXPECT_EQ(d.hint, "expected and/or/vot/be");
}

TEST(Diagnostics, FromErrorStripsClassPrefix) {
  const Diagnostic d = diagnostic_from(IoError("cannot open 'x.fmt'"), "U101");
  EXPECT_EQ(d.code, "U101");
  EXPECT_EQ(d.message, "cannot open 'x.fmt'");
}

TEST(ResourceLimit, WhatRendersPartialProgress) {
  const ResourceLimitError e("solver failed to converge",
                             {.iterations = 42, .residual = 1e-3, .states = 7});
  const std::string what = e.what();
  EXPECT_NE(what.find("resource limit: solver failed to converge"), std::string::npos);
  EXPECT_NE(what.find("iterations=42"), std::string::npos);
  EXPECT_NE(what.find("residual=0.001"), std::string::npos);
  EXPECT_NE(what.find("states=7"), std::string::npos);
  EXPECT_EQ(e.progress().iterations, 42u);
}

}  // namespace
}  // namespace fmtree
