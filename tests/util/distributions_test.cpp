#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fmtree {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- Construction / validation ---------------------------------------------

TEST(DistributionFactories, RejectInvalidParameters) {
  EXPECT_THROW(Distribution::exponential(0), DomainError);
  EXPECT_THROW(Distribution::exponential(-1), DomainError);
  EXPECT_THROW(Distribution::erlang(0, 1), DomainError);
  EXPECT_THROW(Distribution::erlang(3, 0), DomainError);
  EXPECT_THROW(Distribution::erlang_mean(2, -1), DomainError);
  EXPECT_THROW(Distribution::weibull(0, 1), DomainError);
  EXPECT_THROW(Distribution::weibull(1, 0), DomainError);
  EXPECT_THROW(Distribution::lognormal(0, 0), DomainError);
  EXPECT_THROW(Distribution::uniform(2, 1), DomainError);
  EXPECT_THROW(Distribution::uniform(-1, 1), DomainError);
  EXPECT_THROW(Distribution::deterministic(-2), DomainError);
}

TEST(DistributionFactories, ErlangMeanSetsCorrectRate) {
  const Distribution d = Distribution::erlang_mean(4, 8.0);
  EXPECT_DOUBLE_EQ(d.mean(), 8.0);
  const auto& e = std::get<Erlang>(d.as_variant());
  EXPECT_EQ(e.shape, 4);
  EXPECT_DOUBLE_EQ(e.rate, 0.5);
}

TEST(DistributionFactories, EqualityComparesParameters) {
  EXPECT_EQ(Distribution::exponential(2), Distribution::exponential(2));
  EXPECT_NE(Distribution::exponential(2), Distribution::exponential(3));
  EXPECT_NE(Distribution::exponential(2), Distribution::erlang(1, 2));
}

// ---- Moments ----------------------------------------------------------------

TEST(DistributionMoments, Exponential) {
  const Distribution d = Distribution::exponential(0.25);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_DOUBLE_EQ(d.variance(), 16.0);
}

TEST(DistributionMoments, Erlang) {
  const Distribution d = Distribution::erlang(3, 0.5);
  EXPECT_DOUBLE_EQ(d.mean(), 6.0);
  EXPECT_DOUBLE_EQ(d.variance(), 12.0);
}

TEST(DistributionMoments, WeibullShapeOneIsExponential) {
  const Distribution w = Distribution::weibull(1.0, 5.0);
  EXPECT_NEAR(w.mean(), 5.0, 1e-12);
  EXPECT_NEAR(w.variance(), 25.0, 1e-9);
}

TEST(DistributionMoments, Lognormal) {
  const Distribution d = Distribution::lognormal(0.0, 1.0);
  EXPECT_NEAR(d.mean(), std::exp(0.5), 1e-12);
  EXPECT_NEAR(d.variance(), (std::exp(1.0) - 1) * std::exp(1.0), 1e-9);
}

TEST(DistributionMoments, UniformAndDeterministic) {
  EXPECT_DOUBLE_EQ(Distribution::uniform(2, 6).mean(), 4.0);
  EXPECT_NEAR(Distribution::uniform(2, 6).variance(), 16.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(Distribution::deterministic(3).mean(), 3.0);
  EXPECT_DOUBLE_EQ(Distribution::deterministic(3).variance(), 0.0);
}

TEST(DistributionMoments, NeverHasInfiniteMean) {
  EXPECT_TRUE(std::isinf(Distribution::never().mean()));
  EXPECT_TRUE(Distribution::never().is_never());
  EXPECT_FALSE(Distribution::deterministic(1).is_never());
}

// ---- CDFs --------------------------------------------------------------------

TEST(DistributionCdf, NegativeArgumentIsZero) {
  EXPECT_EQ(Distribution::exponential(1).cdf(-1), 0.0);
  EXPECT_EQ(Distribution::deterministic(0).cdf(-0.5), 0.0);
}

TEST(DistributionCdf, ExponentialClosedForm) {
  const Distribution d = Distribution::exponential(2.0);
  EXPECT_NEAR(d.cdf(1.0), 1 - std::exp(-2.0), 1e-12);
  EXPECT_NEAR(d.cdf(0.0), 0.0, 1e-12);
}

TEST(DistributionCdf, ErlangMatchesPoissonSum) {
  // P(Erlang(k, r) <= t) = P(Poisson(rt) >= k).
  const double r = 0.7, t = 3.0;
  const int k = 4;
  const Distribution d = Distribution::erlang(k, r);
  double poisson_lt_k = 0;
  double term = std::exp(-r * t);
  for (int j = 0; j < k; ++j) {
    poisson_lt_k += term;
    term *= r * t / (j + 1);
  }
  EXPECT_NEAR(d.cdf(t), 1.0 - poisson_lt_k, 1e-10);
}

TEST(DistributionCdf, WeibullClosedForm) {
  const Distribution d = Distribution::weibull(2.0, 3.0);
  EXPECT_NEAR(d.cdf(3.0), 1 - std::exp(-1.0), 1e-12);
}

TEST(DistributionCdf, DeterministicIsStep) {
  const Distribution d = Distribution::deterministic(2.0);
  EXPECT_EQ(d.cdf(1.999), 0.0);
  EXPECT_EQ(d.cdf(2.0), 1.0);
}

TEST(DistributionCdf, NeverIsAlwaysZero) {
  EXPECT_EQ(Distribution::never().cdf(1e100), 0.0);
}

TEST(DistributionCdf, MonotoneNondecreasing) {
  const Distribution dists[] = {
      Distribution::exponential(0.5), Distribution::erlang(3, 1.0),
      Distribution::weibull(1.5, 2.0), Distribution::lognormal(0.5, 0.8),
      Distribution::uniform(1, 4)};
  for (const Distribution& d : dists) {
    double prev = 0.0;
    for (double t = 0; t <= 20.0; t += 0.05) {
      const double f = d.cdf(t);
      ASSERT_GE(f, prev) << d.to_string() << " at t=" << t;
      ASSERT_LE(f, 1.0 + 1e-12);
      prev = f;
    }
  }
}

// ---- Sampling vs moments (law of large numbers) ------------------------------

class SamplingMatchesMoments : public ::testing::TestWithParam<Distribution> {};

TEST_P(SamplingMatchesMoments, MeanAndVariance) {
  const Distribution d = GetParam();
  RandomStream rng(2024, 0);
  RunningStats stats;
  const int n = 200000;
  for (int i = 0; i < n; ++i) stats.add(d.sample(rng));
  const double tol_mean = 4 * std::sqrt(d.variance() / n) + 1e-9;
  EXPECT_NEAR(stats.mean(), d.mean(), tol_mean) << d.to_string();
  // Variance estimate tolerance: generous 10% (heavy-tailed lognormal).
  if (d.variance() > 0) {
    EXPECT_NEAR(stats.variance(), d.variance(), 0.1 * d.variance()) << d.to_string();
  }
}

TEST_P(SamplingMatchesMoments, SamplesNonNegative) {
  const Distribution d = GetParam();
  RandomStream rng(7, 3);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(d.sample(rng), 0.0);
}

TEST_P(SamplingMatchesMoments, EmpiricalCdfMatchesCdf) {
  const Distribution d = GetParam();
  RandomStream rng(55, 1);
  const int n = 100000;
  const double t = d.mean();  // probe at the mean
  int below = 0;
  for (int i = 0; i < n; ++i)
    if (d.sample(rng) <= t) ++below;
  EXPECT_NEAR(static_cast<double>(below) / n, d.cdf(t), 0.01) << d.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SamplingMatchesMoments,
    ::testing::Values(Distribution::exponential(0.5), Distribution::exponential(4.0),
                      Distribution::erlang(2, 1.0), Distribution::erlang(6, 0.3),
                      Distribution::weibull(0.8, 2.0), Distribution::weibull(2.5, 5.0),
                      Distribution::lognormal(0.0, 0.5),
                      Distribution::uniform(1.0, 3.0),
                      Distribution::deterministic(2.5)));

// ---- Special functions --------------------------------------------------------

TEST(SpecialFunctions, NormalQuantileRoundTrips) {
  for (double p : {0.001, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8) << p;
  }
}

TEST(SpecialFunctions, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
}

TEST(SpecialFunctions, NormalQuantileRejectsOutOfDomain) {
  EXPECT_THROW(normal_quantile(0.0), DomainError);
  EXPECT_THROW(normal_quantile(1.0), DomainError);
}

TEST(SpecialFunctions, GammaPBoundaries) {
  EXPECT_EQ(gamma_p(2.0, 0.0), 0.0);
  EXPECT_EQ(gamma_p(2.0, kInf), 1.0);
  EXPECT_THROW(gamma_p(0.0, 1.0), DomainError);
  EXPECT_THROW(gamma_p(1.0, -1.0), DomainError);
}

TEST(SpecialFunctions, GammaPShapeOneIsExponentialCdf) {
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0})
    EXPECT_NEAR(gamma_p(1.0, x), 1 - std::exp(-x), 1e-12);
}

TEST(SpecialFunctions, GammaPIntegerShapeMatchesErlang) {
  // gamma_p(k, x) with integer k equals 1 - sum_{j<k} e^-x x^j / j!.
  const int k = 5;
  const double x = 3.7;
  double sum = 0, term = std::exp(-x);
  for (int j = 0; j < k; ++j) {
    sum += term;
    term *= x / (j + 1);
  }
  EXPECT_NEAR(gamma_p(k, x), 1 - sum, 1e-10);
}

TEST(SpecialFunctions, LogGammaFactorials) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_THROW(log_gamma(0.0), DomainError);
}

TEST(DistributionPrinting, ToStringFormats) {
  EXPECT_EQ(Distribution::exponential(2).to_string(), "Exponential(rate=2)");
  EXPECT_EQ(Distribution::erlang(3, 0.5).to_string(), "Erlang(3, rate=0.5)");
  EXPECT_EQ(Distribution::never().to_string(), "Never");
}

}  // namespace
}  // namespace fmtree
