#include "util/fault_injection.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <set>

#include "util/error.hpp"

namespace fmtree::fault {
namespace {

TEST(FaultSpecGrammar, ParsesModesTriggersAndLimit) {
  const FaultSpec err = parse_fault_spec("cache.write:error");
  EXPECT_EQ(err.site, "cache.write");
  EXPECT_EQ(err.mode, Mode::Error);
  EXPECT_LT(err.probability, 0.0);
  EXPECT_EQ(err.nth, 0u);

  const FaultSpec coin = parse_fault_spec("cache.read:corrupt,p=0.25,seed=9");
  EXPECT_EQ(coin.mode, Mode::Corrupt);
  EXPECT_DOUBLE_EQ(coin.probability, 0.25);
  EXPECT_EQ(coin.seed, 9u);

  const FaultSpec stall = parse_fault_spec("sweep.task:stall=150,nth=3,limit=2");
  EXPECT_EQ(stall.mode, Mode::Stall);
  EXPECT_EQ(stall.stall_ms, 150u);
  EXPECT_EQ(stall.nth, 3u);
  EXPECT_EQ(stall.limit, 2u);
}

TEST(FaultSpecGrammar, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_spec(""), DomainError);
  EXPECT_THROW(parse_fault_spec("no-colon"), DomainError);
  EXPECT_THROW(parse_fault_spec(":error"), DomainError);
  EXPECT_THROW(parse_fault_spec("site:"), DomainError);
  EXPECT_THROW(parse_fault_spec("site:unknown-mode"), DomainError);
  EXPECT_THROW(parse_fault_spec("site:error,p=0"), DomainError);
  EXPECT_THROW(parse_fault_spec("site:error,p=1.5"), DomainError);
  EXPECT_THROW(parse_fault_spec("site:error,nth=0"), DomainError);
  EXPECT_THROW(parse_fault_spec("site:error,limit=0"), DomainError);
  // p and nth are mutually exclusive triggers.
  EXPECT_THROW(parse_fault_spec("site:error,p=0.5,nth=2"), DomainError);
}

TEST(FaultRegistry, DisarmedSiteIsInert) {
  // No spec armed for this site: the fast path must return false and record
  // nothing, regardless of what else is armed.
  EXPECT_FALSE(fault_point("test.never-armed"));
  const Scope scope({"test.other-site:error"});
  EXPECT_FALSE(fault_point("test.never-armed"));
  EXPECT_THROW(fault_point("test.other-site"), InjectedFault);
}

TEST(FaultRegistry, ErrorModeThrowsWithSiteName) {
  const Scope scope({"test.err:error"});
  try {
    fault_point("test.err");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), "test.err");
    EXPECT_NE(std::string(e.what()).find("test.err"), std::string::npos);
  }
}

TEST(FaultRegistry, NthTriggerFiresExactlyOnce) {
  const Scope scope({"test.nth:corrupt,nth=3"});
  int fires = 0;
  for (int i = 0; i < 10; ++i)
    if (fault_point("test.nth")) ++fires;
  EXPECT_EQ(fires, 1);
  // The fire was on the 3rd hit, which the registry's counters confirm.
  EXPECT_GE(FaultRegistry::instance().hits("test.nth"), 10u);
}

TEST(FaultRegistry, LimitCapsTotalFires) {
  const Scope scope({"test.limit:corrupt,limit=2"});
  int fires = 0;
  for (int i = 0; i < 10; ++i)
    if (fault_point("test.limit")) ++fires;
  EXPECT_EQ(fires, 2);
}

TEST(FaultRegistry, ProbabilityCoinIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    FaultSpec spec = parse_fault_spec("test.coin:corrupt,p=0.5");
    spec.seed = seed;
    FaultRegistry::instance().arm(spec);
    std::set<int> fired;
    for (int i = 0; i < 64; ++i)
      if (fault_point("test.coin")) fired.insert(i);
    FaultRegistry::instance().disarm("test.coin");
    return fired;
  };
  // Hit indices are per-arming, so two armings with the same seed replay the
  // exact same fire pattern; a different seed gives a different pattern.
  const auto a1 = run(42);
  const auto a2 = run(42);
  const auto b = run(43);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  // ~50% of 64 hits should fire; 10..54 is a >6-sigma band.
  EXPECT_GT(a1.size(), 10u);
  EXPECT_LT(a1.size(), 54u);
}

TEST(FaultRegistry, StallModeSleepsAtTheSite) {
  const Scope scope({"test.stall:stall=30,nth=1"});
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(fault_point("test.stall"));  // stall, not corrupt
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  EXPECT_GE(elapsed_ms, 25.0);
  EXPECT_FALSE(fault_point("test.stall"));  // nth=1: only the first hit
}

TEST(FaultScope, DisarmsItsSitesOnExit) {
  {
    const Scope scope({"test.scoped:error"});
    EXPECT_THROW(fault_point("test.scoped"), InjectedFault);
  }
  EXPECT_FALSE(fault_point("test.scoped"));
  // Malformed specs throw before arming anything.
  EXPECT_THROW(Scope({"broken spec"}), DomainError);
}

TEST(FaultScope, FiresFeedTheInjectedMetricCounter) {
  const std::uint64_t before = FaultRegistry::instance().fires();
  const Scope scope({"test.metric:corrupt"});
  (void)fault_point("test.metric");
  (void)fault_point("test.metric");
  EXPECT_EQ(FaultRegistry::instance().fires(), before + 2);
}

}  // namespace
}  // namespace fmtree::fault
