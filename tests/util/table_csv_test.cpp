#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace fmtree {
namespace {

// ---- TextTable ----------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.set_alignment({Align::Left, Align::Right});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  |"), std::string::npos);
  EXPECT_NE(s.find("|     1 |"), std::string::npos);
  EXPECT_NE(s.find("| 12345 |"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), DomainError);
  EXPECT_THROW(t.set_alignment({Align::Left}), DomainError);
}

TEST(TextTable, EmptyHeadersRejected) {
  EXPECT_THROW(TextTable({}), DomainError);
}

TEST(TextTable, CountsRowsAndColumns) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 3u);
}

TEST(CellFormatting, FixedScientificIntegral) {
  EXPECT_EQ(cell(3.14159, 2), "3.14");
  EXPECT_EQ(cell(3.0, 0), "3");
  EXPECT_EQ(cell_sci(12345.678, 3), "1.23e+04");
  EXPECT_EQ(cell(std::uint64_t{42}), "42");
  EXPECT_EQ(cell(-7), "-7");
}

// ---- CSV ------------------------------------------------------------------------

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(Csv, WriterReaderRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b,c", "d\"e", "line\nbreak"});
  w.write_row({"1", "2", "3", "4"});
  const auto rows = read_csv_string(os.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b,c", "d\"e", "line\nbreak"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "2", "3", "4"}));
}

TEST(Csv, ToleratesCrlfAndTrailingNewline) {
  const auto rows = read_csv_string("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(Csv, LastLineWithoutNewline) {
  const auto rows = read_csv_string("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(Csv, EmptyFieldsPreserved) {
  const auto rows = read_csv_string("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "", "c"}));
  EXPECT_EQ(rows[1], (CsvRow{"", "", ""}));
}

TEST(Csv, EmptyInputYieldsNoRows) {
  EXPECT_TRUE(read_csv_string("").empty());
  EXPECT_TRUE(read_csv_string("\n\n").empty());
}

TEST(Csv, MalformedQuotingThrows) {
  EXPECT_THROW(read_csv_string("\"unterminated"), IoError);
  EXPECT_THROW(read_csv_string("ab\"cd,e"), IoError);
}

TEST(Csv, QuotedFieldWithEmbeddedNewlineSpansLines) {
  const auto rows = read_csv_string("\"a\nb\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a\nb", "c"}));
}

}  // namespace
}  // namespace fmtree
