#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace fmtree {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, ReferenceVectorsSelfConsistent) {
  // Same seed -> same sequence; different seed -> different sequence.
  Xoshiro256StarStar a(42), b(42), c(43);
  bool all_equal_c = true;
  for (int i = 0; i < 64; ++i) {
    const auto x = a();
    EXPECT_EQ(x, b());
    if (x != c()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(RandomStream, SameIdentitySameSequence) {
  RandomStream a(7, 13);
  RandomStream b(7, 13);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(RandomStream, DifferentStreamsAreDistinct) {
  RandomStream a(7, 0);
  RandomStream b(7, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(RandomStream, DifferentSeedsAreDistinct) {
  RandomStream a(1, 5);
  RandomStream b(2, 5);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(RandomStream, Uniform01InRange) {
  RandomStream rng(99, 0);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RandomStream, Uniform01OpenLeftNeverZero) {
  RandomStream rng(99, 1);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01_open_left();
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(RandomStream, Uniform01MeanNearHalf) {
  RandomStream rng(3, 0);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RandomStream, BelowIsBoundedAndCoversRange) {
  RandomStream rng(5, 0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.below(7);
    ASSERT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RandomStream, BelowZeroIsTotal) {
  RandomStream rng(5, 0);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(RandomStream, BelowOneIsZero) {
  RandomStream rng(5, 0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RandomStream, BelowIsApproximatelyUniform) {
  RandomStream rng(11, 0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(RandomStream, BernoulliMatchesProbability) {
  RandomStream rng(17, 0);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RandomStream, SubstreamsAreIndependentAndReproducible) {
  RandomStream parent(21, 4);
  RandomStream s0 = parent.substream(0);
  RandomStream s1 = parent.substream(1);
  RandomStream s0_again = RandomStream(21, 4).substream(0);
  int equal01 = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto a = s0();
    ASSERT_EQ(a, s0_again());
    if (a == s1()) ++equal01;
  }
  EXPECT_EQ(equal01, 0);
}

TEST(RandomStream, UniformRangeRespected) {
  RandomStream rng(2, 2);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(3.0, 5.0);
    ASSERT_GE(x, 3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(RandomStream, IdentityAccessors) {
  RandomStream rng(123, 456);
  EXPECT_EQ(rng.seed(), 123u);
  EXPECT_EQ(rng.stream(), 456u);
}

// ---- Counter-based generator (Philox / CounterStream) ----------------------

TEST(Philox, IsAPureFunctionOfKeyAndCounter) {
  const auto a = Philox4x32::block(7, 13, 21);
  const auto b = Philox4x32::block(7, 13, 21);
  EXPECT_EQ(a.word, b.word);
}

TEST(Philox, AnyInputBitChangesTheBlock) {
  const auto base = Philox4x32::block(7, 13, 21);
  EXPECT_NE(base.word, Philox4x32::block(8, 13, 21).word);   // key
  EXPECT_NE(base.word, Philox4x32::block(7, 14, 21).word);   // ctr_lo
  EXPECT_NE(base.word, Philox4x32::block(7, 13, 22).word);   // ctr_hi
  EXPECT_NE(base.word, Philox4x32::block(7ull << 32, 13, 21).word);
}

TEST(CounterStream, SameIdentitySameSequence) {
  CounterStream a(7, 13);
  CounterStream b(7, 13);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(CounterStream, AtMatchesSequentialDraws) {
  // Random access at(seed, stream, i) must agree with the i-th sequential
  // draw — this is the property that lets a trajectory be re-run in
  // isolation (any lane, any batch) and reproduce its stream exactly.
  CounterStream seq(42, 1234567);
  for (std::uint64_t i = 0; i < 256; ++i)
    ASSERT_EQ(seq(), CounterStream::at(42, 1234567, i)) << "draw " << i;
}

TEST(CounterStream, AtIsRandomAccess) {
  // Evaluating out of order or skipping draws changes nothing.
  const auto x100 = CounterStream::at(9, 5, 100);
  (void)CounterStream::at(9, 5, 3);
  (void)CounterStream::at(9, 5, 77);
  EXPECT_EQ(CounterStream::at(9, 5, 100), x100);
}

TEST(CounterStream, DistinctCountersNeverCollideAcrossStreams) {
  // Philox is a bijection on the 128-bit counter space under one key, so
  // distinct (stream, draw) pairs cannot produce colliding *blocks*. Check a
  // grid of streams x draws for distinct 64-bit outputs (a collision there
  // would be a once-in-2^32 birthday accident at this sample size, not a
  // generator property).
  std::set<std::uint64_t> seen;
  const std::uint64_t streams = 64, draws = 64;
  for (std::uint64_t s = 0; s < streams; ++s)
    for (std::uint64_t d = 0; d < draws; ++d)
      seen.insert(CounterStream::at(1, s, d));
  EXPECT_EQ(seen.size(), streams * draws);
}

TEST(CounterStream, DifferentStreamsAreDistinct) {
  CounterStream a(7, 0);
  CounterStream b(7, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(CounterStream, DifferentSeedsAreDistinct) {
  CounterStream a(1, 5);
  CounterStream b(2, 5);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(CounterStream, DistantStreamIdsStayIndependent) {
  // Lane retirement/refill uses arbitrary trajectory indices as stream ids;
  // adjacent and far-apart ids must be equally unrelated.
  CounterStream a(3, 0);
  CounterStream b(3, std::uint64_t{1} << 63);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(CounterStream, Uniform01InRange) {
  CounterStream rng(99, 0);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(CounterStream, Uniform01OpenLeftNeverZero) {
  CounterStream rng(99, 1);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01_open_left();
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(CounterStream, Uniform01MeanNearHalf) {
  CounterStream rng(3, 0);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(CounterStream, BelowIsBoundedAndCoversRange) {
  CounterStream rng(5, 0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.below(7);
    ASSERT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(CounterStream, BelowIsApproximatelyUniform) {
  CounterStream rng(11, 0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(CounterStream, BernoulliMatchesProbability) {
  CounterStream rng(17, 0);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(CounterStream, IdentityAndDrawIndexAccessors) {
  CounterStream rng(123, 456);
  EXPECT_EQ(rng.seed(), 123u);
  EXPECT_EQ(rng.stream(), 456u);
  EXPECT_EQ(rng.draw_index(), 0u);
  (void)rng();
  (void)rng();
  (void)rng();
  EXPECT_EQ(rng.draw_index(), 3u);
}

}  // namespace
}  // namespace fmtree
