#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace fmtree {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, ReferenceVectorsSelfConsistent) {
  // Same seed -> same sequence; different seed -> different sequence.
  Xoshiro256StarStar a(42), b(42), c(43);
  bool all_equal_c = true;
  for (int i = 0; i < 64; ++i) {
    const auto x = a();
    EXPECT_EQ(x, b());
    if (x != c()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(RandomStream, SameIdentitySameSequence) {
  RandomStream a(7, 13);
  RandomStream b(7, 13);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(RandomStream, DifferentStreamsAreDistinct) {
  RandomStream a(7, 0);
  RandomStream b(7, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(RandomStream, DifferentSeedsAreDistinct) {
  RandomStream a(1, 5);
  RandomStream b(2, 5);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(RandomStream, Uniform01InRange) {
  RandomStream rng(99, 0);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RandomStream, Uniform01OpenLeftNeverZero) {
  RandomStream rng(99, 1);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01_open_left();
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(RandomStream, Uniform01MeanNearHalf) {
  RandomStream rng(3, 0);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RandomStream, BelowIsBoundedAndCoversRange) {
  RandomStream rng(5, 0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.below(7);
    ASSERT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RandomStream, BelowZeroIsTotal) {
  RandomStream rng(5, 0);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(RandomStream, BelowOneIsZero) {
  RandomStream rng(5, 0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RandomStream, BelowIsApproximatelyUniform) {
  RandomStream rng(11, 0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(RandomStream, BernoulliMatchesProbability) {
  RandomStream rng(17, 0);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RandomStream, SubstreamsAreIndependentAndReproducible) {
  RandomStream parent(21, 4);
  RandomStream s0 = parent.substream(0);
  RandomStream s1 = parent.substream(1);
  RandomStream s0_again = RandomStream(21, 4).substream(0);
  int equal01 = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto a = s0();
    ASSERT_EQ(a, s0_again());
    if (a == s1()) ++equal01;
  }
  EXPECT_EQ(equal01, 0);
}

TEST(RandomStream, UniformRangeRespected) {
  RandomStream rng(2, 2);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(3.0, 5.0);
    ASSERT_GE(x, 3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(RandomStream, IdentityAccessors) {
  RandomStream rng(123, 456);
  EXPECT_EQ(rng.seed(), 123u);
  EXPECT_EQ(rng.stream(), 456u);
}

}  // namespace
}  // namespace fmtree
