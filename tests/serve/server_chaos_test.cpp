// Socket daemon tests, including the Chaos-prefixed fault-site suites (CI
// selects chaos coverage with `ctest -R Chaos`; these arm their own faults,
// so they run identically with and without FMTREE_FAULTS set).
//
// The invariants: a served response carries the same report bits as an
// in-process run; a dropped connection (serve.accept) or a dropped event
// write (serve.write) is isolated to that one connection while the daemon —
// and its cache — keep serving; a SIGTERM-style drain mid-request resolves
// the in-flight ticket, and a restarted daemon on the same cache directory
// replays completed work bit-identically.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "../batch/report_bits.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "smc/run_control.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace fmtree::serve {
namespace {

using batch_test::same_bits;

const char* kModel = R"(
  toplevel T;
  T or A B;
  A ebe phases=3 mean=5 threshold=2 repair_cost=100;
  B be exp(0.05);
  inspection I period=0.5 cost=20 targets A;
  corrective cost=5000 delay=0;
)";

Request sweep_request(std::uint64_t trajectories = 400) {
  Request r;
  r.model_text = kModel;
  r.settings.horizon = 5.0;
  r.settings.trajectories = trajectories;
  r.settings.seed = 3;
  r.frequencies = {0, 2};
  r.has_policy = true;
  return r;
}

/// One daemon: a Session and a Server accept loop on its own thread, stopped
/// through the same RunControl a SIGTERM would fire.
struct Daemon {
  obs::MetricsRegistry metrics;
  smc::RunControl stop;
  std::unique_ptr<Session> session;
  std::unique_ptr<Server> server;
  std::thread thread;
  std::string socket_path;

  explicit Daemon(const std::string& name, std::string cache_dir = {}) {
    socket_path = testing::TempDir() + name + ".sock";
    std::filesystem::remove(socket_path);
    SessionConfig config;
    config.threads = 2;
    config.cache_dir = std::move(cache_dir);
    config.telemetry.metrics = &metrics;
    session = std::make_unique<Session>(std::move(config));
    ServerConfig server_config;
    server_config.socket_path = socket_path;
    server_config.stop = &stop;
    server_config.poll_interval_s = 0.02;
    server = std::make_unique<Server>(*session, server_config);
    thread = std::thread([this] { server->run(); });
    for (int i = 0; i < 1000 && !std::filesystem::exists(socket_path); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  ~Daemon() { shutdown(); }

  void shutdown() {
    if (thread.joinable()) {
      stop.request_stop();
      thread.join();
    }
  }
};

std::string request_code(const std::string& socket, const Request& r) {
  try {
    (void)request_over_socket(socket, r);
  } catch (const RequestError& e) {
    return e.code();
  }
  return "(no throw)";
}

TEST(ServeSocket, ServedResponseMatchesInProcessBits) {
  // In-process baseline through the same Session entry points.
  SessionConfig config;
  config.threads = 2;
  Session inprocess(std::move(config));
  const Response baseline = inprocess.submit(sweep_request()).take();
  ASSERT_TRUE(baseline.all_done());

  Daemon daemon("fmtree_serve_roundtrip");
  std::size_t accepted_jobs = 0;
  ClientEvents events;
  events.accepted = [&](const std::string&, std::size_t jobs) {
    accepted_jobs = jobs;
  };
  const Response served = request_over_socket(daemon.socket_path,
                                              sweep_request(), events);
  EXPECT_EQ(accepted_jobs, 2u);
  ASSERT_TRUE(served.all_done());
  ASSERT_EQ(served.jobs.size(), baseline.jobs.size());
  for (std::size_t i = 0; i < served.jobs.size(); ++i) {
    EXPECT_EQ(served.jobs[i].label, baseline.jobs[i].label);
    EXPECT_EQ(served.jobs[i].key.id(), baseline.jobs[i].key.id());
    EXPECT_TRUE(same_bits(served.jobs[i].report, baseline.jobs[i].report)) << i;
  }
  EXPECT_EQ(daemon.metrics.counter_value("serve.requests"), 1u);
  EXPECT_EQ(daemon.metrics.counter_value("batch.jobs_simulated"), 2u);
}

TEST(ServeSocket, SigtermDrainMidRequestThenRestartReplaysFromCache) {
  const std::string cache_dir =
      testing::TempDir() + "fmtree_serve_drain_cache";
  std::filesystem::remove_all(cache_dir);

  Response before_drain;
  Response interrupted;
  {
    Daemon daemon("fmtree_serve_drain", cache_dir);
    before_drain = request_over_socket(daemon.socket_path, sweep_request());
    ASSERT_TRUE(before_drain.all_done());

    // A request far too large to finish; the drain lands mid-flight. The
    // stop is only fired once the daemon has accepted the request, so the
    // drain deterministically interrupts a submitted job.
    std::atomic<bool> accepted{false};
    std::thread client([&] {
      ClientEvents events;
      events.accepted = [&](const std::string&, std::size_t) {
        accepted.store(true);
      };
      try {
        interrupted = request_over_socket(daemon.socket_path,
                                          sweep_request(50'000'000), events);
      } catch (const Error&) {
      }
    });
    for (int i = 0; i < 1000 && !accepted.load(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(accepted.load());
    daemon.stop.request_stop();  // what the SIGTERM handler does
    daemon.shutdown();
    client.join();
  }
  // The in-flight ticket resolved instead of hanging; its unfinished jobs
  // report Interrupted and the response says why.
  EXPECT_GT(interrupted.count(JobState::Interrupted), 0u);
  EXPECT_EQ(interrupted.stop_reason, smc::StopReason::Interrupted);

  // A restarted daemon on the same cache directory replays the completed
  // request bit-identically, without simulating anything again.
  Daemon restarted("fmtree_serve_drain2", cache_dir);
  const Response replayed =
      request_over_socket(restarted.socket_path, sweep_request());
  ASSERT_TRUE(replayed.all_done());
  ASSERT_EQ(replayed.jobs.size(), before_drain.jobs.size());
  for (std::size_t i = 0; i < replayed.jobs.size(); ++i) {
    EXPECT_TRUE(replayed.jobs[i].cache_hit) << i;
    EXPECT_TRUE(same_bits(replayed.jobs[i].report, before_drain.jobs[i].report))
        << i;
  }
  EXPECT_EQ(restarted.metrics.counter_value("batch.jobs_simulated"), 0u);
}

TEST(ChaosServe, DroppedAcceptIsIsolatedToOneConnection) {
  Daemon daemon("fmtree_chaos_accept");
  const fault::Scope faults({"serve.accept:error,nth=1,limit=1"});
  // The daemon drops the first freshly accepted connection; that client sees
  // a transport failure (R121), not a hang and not a scrambled response.
  EXPECT_EQ(request_code(daemon.socket_path, sweep_request()), "R121");
  // The very next connection is served normally.
  const Response response =
      request_over_socket(daemon.socket_path, sweep_request());
  EXPECT_TRUE(response.all_done());
}

TEST(ChaosServe, DroppedResultWriteLeavesTheCachedResultIntact) {
  Daemon daemon("fmtree_chaos_write");
  const Response first = request_over_socket(daemon.socket_path, sweep_request());
  ASSERT_TRUE(first.all_done());
  const std::uint64_t simulated =
      daemon.metrics.counter_value("batch.jobs_simulated");
  {
    // Write #1 after arming is this connection's "accepted" event, write #2
    // its result (a cache hit resolves before any progress event): the
    // response is lost on the wire, after the work is safely cached.
    const fault::Scope faults({"serve.write:error,nth=2,limit=1"});
    EXPECT_EQ(request_code(daemon.socket_path, sweep_request()), "R121");
  }
  // Nothing was recomputed, and the retry is served — bit-identical — from
  // the cache the dropped connection already populated.
  const Response retry = request_over_socket(daemon.socket_path, sweep_request());
  ASSERT_TRUE(retry.all_done());
  for (std::size_t i = 0; i < retry.jobs.size(); ++i) {
    EXPECT_TRUE(retry.jobs[i].cache_hit) << i;
    EXPECT_TRUE(same_bits(retry.jobs[i].report, first.jobs[i].report)) << i;
  }
  EXPECT_EQ(daemon.metrics.counter_value("batch.jobs_simulated"), simulated);
}

}  // namespace
}  // namespace fmtree::serve
