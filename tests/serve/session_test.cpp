// serve::Session semantics: in-flight dedup (N identical concurrent requests
// cost one computation), all-or-nothing admission control (R120), cache-hit
// resolution, and the drain path that resolves every ticket.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "../batch/report_bits.hpp"
#include "obs/metrics.hpp"
#include "serve/request.hpp"
#include "serve/session.hpp"
#include "smc/kpi.hpp"

namespace fmtree::serve {
namespace {

using batch_test::same_bits;

const char* kModel = R"(
  toplevel T;
  T or A B;
  A ebe phases=3 mean=5 threshold=2 repair_cost=100;
  B be exp(0.05);
  inspection I period=0.5 cost=20 targets A;
  corrective cost=5000 delay=0;
)";

Request sweep_request(std::uint64_t trajectories = 400) {
  Request r;
  r.model_text = kModel;
  r.settings.horizon = 5.0;
  r.settings.trajectories = trajectories;
  r.settings.seed = 3;
  r.frequencies = {0, 2};
  r.has_policy = true;
  return r;
}

struct Harness {
  obs::MetricsRegistry metrics;
  std::unique_ptr<Session> session;

  explicit Harness(std::size_t queue_limit = 64, unsigned threads = 2) {
    SessionConfig config;
    config.threads = threads;
    config.queue_limit = queue_limit;
    config.telemetry.metrics = &metrics;
    session = std::make_unique<Session>(std::move(config));
  }
};

// The PR's headline acceptance criterion: two concurrent identical requests
// cost exactly one computation per job and both callers receive bit-equal
// reports. Whichever way the race resolves — the second submit attaches to
// the in-flight job (dedup) or, if the first already finished, hits the
// cache — batch.jobs_simulated must count each distinct job exactly once.
TEST(ServeSession, ConcurrentIdenticalRequestsComputeOnce) {
  Harness h;
  Ticket first = h.session->submit(sweep_request(20000));
  Ticket second = h.session->submit(sweep_request(20000));
  const Response a = first.take();
  const Response b = second.take();
  EXPECT_TRUE(a.all_done());
  EXPECT_TRUE(b.all_done());
  ASSERT_EQ(a.jobs.size(), 2u);
  ASSERT_EQ(b.jobs.size(), 2u);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].label, b.jobs[i].label);
    EXPECT_TRUE(same_bits(a.jobs[i].report, b.jobs[i].report)) << i;
  }
  EXPECT_EQ(h.metrics.counter_value("batch.jobs_simulated"), 2u);
  EXPECT_EQ(h.metrics.counter_value("serve.requests"), 2u);
  EXPECT_EQ(h.metrics.counter_value("serve.dedup_hits") +
                h.metrics.counter_value("serve.cache_hits"),
            2u);
}

TEST(ServeSession, DedupInsideOneRequestCostsOneSlotAndOneComputation) {
  Harness h;
  Request r = sweep_request();
  r.frequencies = {2, 2, 2};  // three identical policy points
  Ticket ticket = h.session->submit(r);
  EXPECT_EQ(ticket.jobs(), 3u);
  const Response response = ticket.take();
  EXPECT_TRUE(response.all_done());
  EXPECT_TRUE(same_bits(response.jobs[0].report, response.jobs[2].report));
  EXPECT_EQ(h.metrics.counter_value("batch.jobs_simulated"), 1u);
  EXPECT_EQ(h.metrics.counter_value("serve.jobs"), 1u);
  EXPECT_EQ(h.metrics.counter_value("serve.dedup_hits"), 2u);
}

TEST(ServeSession, RepeatedRequestResolvesFromTheCacheWithoutSimulation) {
  Harness h;
  (void)h.session->submit(sweep_request()).take();
  const std::uint64_t simulated = h.metrics.counter_value("batch.jobs_simulated");
  const Response again = h.session->submit(sweep_request()).take();
  EXPECT_TRUE(again.all_done());
  for (const JobOutcome& j : again.jobs) EXPECT_TRUE(j.cache_hit);
  EXPECT_EQ(h.metrics.counter_value("batch.jobs_simulated"), simulated);
  EXPECT_GE(h.metrics.counter_value("serve.cache_hits"), 2u);
}

TEST(ServeSession, AdmissionRejectsWholeRequestsBeyondTheQueueLimit) {
  Harness h(/*queue_limit=*/1);
  // Two genuinely new jobs against one slot: rejected whole, nothing queued.
  try {
    (void)h.session->submit(sweep_request());
    FAIL() << "expected AdmissionError";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.code(), "R120");
    ASSERT_FALSE(e.diagnostics().empty());
    EXPECT_EQ(e.diagnostics().front().code, "R120");
  }
  EXPECT_EQ(h.metrics.counter_value("serve.rejected"), 1u);
  EXPECT_EQ(h.metrics.counter_value("serve.jobs"), 0u);

  // All-or-nothing means the rejection leaked no slots: a request that fits
  // the limit is admitted and completes normally afterwards.
  Request small = sweep_request();
  small.frequencies = {2};
  const Response response = h.session->submit(small).take();
  EXPECT_TRUE(response.all_done());
}

TEST(ServeSession, DrainResolvesPendingTicketsAsInterrupted) {
  Harness h;
  // Far more work than the drain allows to finish.
  Ticket ticket = h.session->submit(sweep_request(50'000'000));
  h.session->drain();
  EXPECT_TRUE(ticket.done());
  const Response response = ticket.take();
  ASSERT_EQ(response.jobs.size(), 2u);
  for (const JobOutcome& j : response.jobs)
    EXPECT_TRUE(j.state == JobState::Interrupted || j.state == JobState::Done);
  EXPECT_GT(response.count(JobState::Interrupted), 0u);
  // A drained session accepts nothing new (R122, not a hang).
  try {
    (void)h.session->submit(sweep_request());
    FAIL() << "expected RequestError";
  } catch (const RequestError& e) {
    EXPECT_EQ(e.code(), "R122");
  }
}

TEST(ServeSession, LastWatcherCancelAbandonsTheJob) {
  Harness h;
  Ticket ticket = h.session->submit(sweep_request(50'000'000));
  ticket.cancel();
  // The per-job control fires: a still-pending job resolves immediately, a
  // claimed one is abandoned at the next trajectory boundary. Either way the
  // dispatcher must come back for new work instead of grinding through the
  // orphaned 50M-trajectory plan.
  const Response response = h.session->submit(sweep_request(400)).take();
  EXPECT_TRUE(response.all_done());
}

TEST(ServeSession, InvalidSettingsAreRejectedWithR112) {
  Harness h;
  Request r = sweep_request();
  r.settings.horizon = -1;  // built directly, so no parse_request guard ran
  try {
    (void)h.session->submit(r);
    FAIL() << "expected RequestError";
  } catch (const RequestError& e) {
    EXPECT_EQ(e.code(), "R112");
  }
}

}  // namespace
}  // namespace fmtree::serve
