// fmtree.request/v1 schema tests: stable R-codes, canonical (hexfloat)
// serialization round-trips, and the CLI-identical policy expansion that
// makes a served sweep cache the very same jobs as a standalone one.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "batch/fingerprint.hpp"
#include "fmt/canonical.hpp"
#include "serve/request.hpp"
#include "util/error.hpp"

namespace fmtree::serve {
namespace {

const char* kModel = R"(
  toplevel T;
  T or A B;
  A ebe phases=3 mean=5 threshold=2 repair_cost=100;
  B be exp(0.05);
  inspection I period=0.5 cost=20 targets A;
  corrective cost=5000 delay=0;
)";

Request sweep_request() {
  Request r;
  r.model_text = kModel;
  r.settings.horizon = 7.5;
  r.settings.trajectories = 300;
  r.settings.seed = 9;
  r.settings.confidence = 0.9;
  r.frequencies = {0, 2, 4};
  r.has_policy = true;
  return r;
}

std::string expect_code(const std::function<void()>& f) {
  try {
    f();
  } catch (const RequestError& e) {
    EXPECT_FALSE(e.diagnostics().empty());
    return e.code();
  }
  return "(no throw)";
}

TEST(ServeRequest, EncodeParsePreservesEveryFieldBitExactly) {
  Request original = sweep_request();
  original.id = "job-42";
  original.priority = 7;
  const std::string text = encode_request(original);
  const Request parsed = parse_request(text);
  EXPECT_EQ(parsed.id, "job-42");
  EXPECT_EQ(parsed.priority, 7);
  EXPECT_EQ(parsed.model_text, original.model_text);
  EXPECT_EQ(parsed.has_policy, true);
  ASSERT_EQ(parsed.frequencies.size(), original.frequencies.size());
  // Hexfloat canonical form: a re-encode of the parse is byte-identical.
  EXPECT_EQ(encode_request(parsed), text);
  // The settings fingerprint — hence every cache key — survives the trip.
  EXPECT_EQ(batch::settings_fingerprint(parsed.settings).hex(),
            batch::settings_fingerprint(original.settings).hex());
}

TEST(ServeRequest, AcceptsPlainNumbersWhereHexfloatsAreCanonical) {
  const Request r = parse_request(R"({
    "schema": "fmtree.request/v1",
    "model": {"ref": "ei_joint.fmt"},
    "settings": {"horizon": 20, "trajectories": 1000, "confidence": 0.99}
  })");
  EXPECT_EQ(r.model_ref, "ei_joint.fmt");
  EXPECT_DOUBLE_EQ(r.settings.horizon, 20.0);
  EXPECT_DOUBLE_EQ(r.settings.confidence, 0.99);
  EXPECT_FALSE(r.has_policy);
}

TEST(ServeRequest, StableDiagnosticCodes) {
  // R110: not even JSON / not an object.
  EXPECT_EQ(expect_code([] { parse_request("{oops"); }), "R110");
  EXPECT_EQ(expect_code([] { parse_request("[1,2]"); }), "R110");
  // R111: schema tag missing or unsupported.
  EXPECT_EQ(expect_code([] { parse_request(R"({"model": {"ref": "x"}})"); }),
            "R111");
  EXPECT_EQ(expect_code([] {
              parse_request(R"({"schema": "fmtree.request/v99",
                                "model": {"ref": "x"}})");
            }),
            "R111");
  // R112: structurally valid JSON that violates the schema.
  EXPECT_EQ(expect_code([] { parse_request(R"({"schema": "fmtree.request/v1"})"); }),
            "R112");
  EXPECT_EQ(expect_code([] {
              parse_request(R"({"schema": "fmtree.request/v1",
                                "model": {"inline": "a", "ref": "b"}})");
            }),
            "R112");
  EXPECT_EQ(expect_code([] {
              parse_request(R"({"schema": "fmtree.request/v1",
                                "model": {"ref": "x"}, "surprise": 1})");
            }),
            "R112");
  EXPECT_EQ(expect_code([] {
              parse_request(R"({"schema": "fmtree.request/v1",
                                "model": {"ref": "x"},
                                "settings": {"horizon": -1}})");
            }),
            "R112");
  EXPECT_EQ(expect_code([] {
              parse_request(R"({"schema": "fmtree.request/v1",
                                "model": {"ref": "x"},
                                "settings": {"engine": "quantum"}})");
            }),
            "R112");
}

TEST(ServeRequest, PrepareExpandsThePolicyGridWithCliIdenticalLabels) {
  const PreparedRequest prepared = prepare(sweep_request(), "models");
  ASSERT_EQ(prepared.jobs.size(), 3u);
  EXPECT_EQ(prepared.jobs[0].label, "no-inspection");
  EXPECT_EQ(prepared.jobs[1].label, "2x-per-year");
  EXPECT_EQ(prepared.jobs[2].label, "4x-per-year");
  EXPECT_TRUE(prepared.jobs[0].model.inspections().empty());
}

TEST(ServeRequest, PrepareWithoutPolicyYieldsOneAnalysisJob) {
  Request r = sweep_request();
  r.frequencies.clear();
  r.has_policy = false;
  const PreparedRequest prepared = prepare(r, "models");
  ASSERT_EQ(prepared.jobs.size(), 1u);
  EXPECT_EQ(prepared.jobs[0].label, "analysis");
}

TEST(ServeRequest, PrepareRejectsEscapingModelRefsAndBadModels) {
  Request escaping = sweep_request();
  escaping.model_text.clear();
  escaping.model_ref = "../secrets.fmt";
  EXPECT_EQ(expect_code([&] { prepare(escaping, "models"); }), "R112");

  Request missing = sweep_request();
  missing.model_text.clear();
  missing.model_ref = "definitely-not-there.fmt";
  EXPECT_EQ(expect_code([&] { prepare(missing, "models"); }), "R112");

  // R113: the model is the problem, carrying parse diagnostics.
  Request broken = sweep_request();
  broken.model_text = "toplevel T;\nT or A;\n";  // A undefined
  EXPECT_EQ(expect_code([&] { prepare(broken, "models"); }), "R113");

  Request uninspectable = sweep_request();
  uninspectable.model_text = R"(
    toplevel T;
    T or A;
    A be exp(0.2);
    corrective cost=100 delay=0;
  )";
  EXPECT_EQ(expect_code([&] { prepare(uninspectable, "models"); }), "R112");
}

Request fleet_request() {
  Request r;
  r.model_text = kModel;
  r.settings.horizon = 4.0;
  r.settings.trajectories = 40;
  r.settings.seed = 3;
  r.has_fleet = true;
  r.fleet.joints = 6;
  r.fleet.seed = 17;
  r.fleet.jitter = 0.12;
  r.fleet.coupling = 0.3;
  return r;
}

TEST(ServeRequest, FleetMemberRoundTripsBitExactly) {
  const Request original = fleet_request();
  const std::string text = encode_request(original);
  const Request parsed = parse_request(text);
  ASSERT_TRUE(parsed.has_fleet);
  EXPECT_EQ(parsed.fleet.joints, 6u);
  EXPECT_EQ(parsed.fleet.seed, 17u);
  EXPECT_TRUE(parsed.fleet.jitter == original.fleet.jitter);
  EXPECT_TRUE(parsed.fleet.coupling == original.fleet.coupling);
  EXPECT_EQ(encode_request(parsed), text);
}

TEST(ServeRequest, FleetSchemaViolationsAreR112) {
  // joints is required and bounded; unknown fleet members are rejected; a
  // fleet request cannot also sweep a frequency grid.
  EXPECT_EQ(expect_code([] {
              parse_request(R"({"schema": "fmtree.request/v1",
                                "model": {"ref": "x"}, "fleet": {}})");
            }),
            "R112");
  EXPECT_EQ(expect_code([] {
              parse_request(R"({"schema": "fmtree.request/v1",
                                "model": {"ref": "x"},
                                "fleet": {"joints": 0}})");
            }),
            "R112");
  EXPECT_EQ(expect_code([] {
              parse_request(R"({"schema": "fmtree.request/v1",
                                "model": {"ref": "x"},
                                "fleet": {"joints": 4, "crews": 2}})");
            }),
            "R112");
  EXPECT_EQ(expect_code([] {
              parse_request(R"({"schema": "fmtree.request/v1",
                                "model": {"ref": "x"},
                                "fleet": {"joints": 4, "jitter": -0.5}})");
            }),
            "R112");
  EXPECT_EQ(expect_code([] {
              parse_request(R"({"schema": "fmtree.request/v1",
                                "model": {"ref": "x"},
                                "fleet": {"joints": 4},
                                "policy": {"frequencies": [1, 2]}})");
            }),
            "R112");
}

TEST(ServeRequest, PrepareExpandsAFleetIntoJointLabelledJobs) {
  const PreparedRequest prepared = prepare(fleet_request(), "models");
  ASSERT_EQ(prepared.jobs.size(), 6u);
  // The daemon routes through fleet::fleet_plan, so its jobs carry exactly
  // the corridor's joint names (and hence the same cache keys as an
  // in-process `fmtree fleet` run).
  EXPECT_EQ(prepared.jobs.front().label, "joint-0000");
  EXPECT_EQ(prepared.jobs.back().label, "joint-0005");
  // Jitter perturbs the lifetimes: the shards are distinct models, so they
  // hash to distinct cache keys.
  EXPECT_FALSE(fmt::canonical_hash(prepared.jobs[0].model) ==
               fmt::canonical_hash(prepared.jobs[1].model));
}

}  // namespace
}  // namespace fmtree::serve
