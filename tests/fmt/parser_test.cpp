#include "fmt/parser.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fmtree::fmt {
namespace {

const char* kFullModel = R"(
  toplevel System;
  System or Electrical Mechanical;
  Electrical or Lipping Contamination;
  Mechanical vot 2 B1 B2 B3;

  Lipping ebe phases=6 mean=10 threshold=4 repair_cost=800 repair=grind;
  Contamination ebe phases=3 mean=3 threshold=2 repair_cost=250 repair=clean;
  B1 ebe phases=2 mean=40 threshold=2 repair_cost=100;
  B2 ebe phases=2 mean=40 threshold=2 repair_cost=100;
  B3 be exp(0.025);

  rdep Accel factor=3 trigger=Contamination targets Lipping;
  inspection Visual period=0.25 cost=35 targets Lipping Contamination B1 B2;
  replacement Renewal period=15 cost=5500 targets all;
  corrective cost=8000 delay=0.02 downtime_rate=50000;
)";

TEST(FmtParser, ParsesFullModel) {
  const FaultMaintenanceTree m = parse_fmt(kFullModel);
  EXPECT_EQ(m.num_ebes(), 5u);
  EXPECT_EQ(m.inspections().size(), 1u);
  EXPECT_EQ(m.replacements().size(), 1u);
  EXPECT_EQ(m.rdeps().size(), 1u);
  EXPECT_TRUE(m.corrective().enabled);
  EXPECT_DOUBLE_EQ(m.corrective().cost, 8000);
  EXPECT_DOUBLE_EQ(m.corrective().delay, 0.02);

  const ExtendedBasicEvent& lipping = m.ebe(*m.find("Lipping"));
  EXPECT_EQ(lipping.degradation.phases(), 6);
  EXPECT_EQ(lipping.degradation.threshold_phase(), 4);
  EXPECT_NEAR(lipping.degradation.mean_time_to_failure(), 10.0, 1e-12);
  EXPECT_EQ(lipping.repair.action, "grind");
  EXPECT_DOUBLE_EQ(lipping.repair.cost, 800);
}

TEST(FmtParser, PlainBeBecomesUndetectableSinglePhase) {
  const FaultMaintenanceTree m = parse_fmt(kFullModel);
  const ExtendedBasicEvent& b3 = m.ebe(*m.find("B3"));
  EXPECT_EQ(b3.degradation.phases(), 1);
  EXPECT_FALSE(b3.degradation.inspectable());
}

TEST(FmtParser, TargetsAllExpandsCorrectly) {
  const FaultMaintenanceTree m = parse_fmt(kFullModel);
  // Renewal targets all 5 leaves.
  EXPECT_EQ(m.replacements()[0].targets.size(), 5u);
}

TEST(FmtParser, InspectionTargetsAllSkipsUndetectable) {
  const FaultMaintenanceTree m = parse_fmt(R"(
    toplevel T;
    T or A B;
    A ebe phases=3 mean=5 threshold=2;
    B be exp(0.1);
    inspection I period=1 targets all;
  )");
  ASSERT_EQ(m.inspections()[0].targets.size(), 1u);
  EXPECT_EQ(m.name(m.inspections()[0].targets[0]), "A");
}

TEST(FmtParser, DefaultThresholdIsUndetectable) {
  const FaultMaintenanceTree m = parse_fmt(R"(
    toplevel T; T or A; A ebe phases=4 mean=10;
  )");
  EXPECT_FALSE(m.ebe(*m.find("A")).degradation.inspectable());
}

TEST(FmtParser, RdepWithTriggerPhase) {
  const FaultMaintenanceTree m = parse_fmt(R"(
    toplevel T;
    T or A B;
    A ebe phases=5 mean=18 threshold=2;
    B ebe phases=6 mean=10 threshold=4;
    rdep R factor=2.5 trigger=A trigger_phase=3 targets B;
  )");
  ASSERT_EQ(m.rdeps().size(), 1u);
  EXPECT_EQ(m.rdeps()[0].trigger_phase, 3);
  EXPECT_DOUBLE_EQ(m.rdeps()[0].factor, 2.5);
}

TEST(FmtParser, CorrectiveOff) {
  const FaultMaintenanceTree m = parse_fmt(R"(
    toplevel T; T or A; A be exp(1); corrective off;
  )");
  EXPECT_FALSE(m.corrective().enabled);
}

TEST(FmtParser, RejectsMalformedStatements) {
  EXPECT_THROW(parse_fmt("toplevel T; T or A; A ebe mean=5;"), ParseError);  // no phases
  EXPECT_THROW(parse_fmt("toplevel T; T or A; A ebe phases=2;"), ParseError);  // no mean
  EXPECT_THROW(parse_fmt("toplevel T; T or A; A ebe phases=2.5 mean=5;"), ParseError);
  EXPECT_THROW(parse_fmt("toplevel T; T or A; A ebe phases=2 mean=5 bogus=1;"),
               ParseError);
  EXPECT_THROW(
      parse_fmt("toplevel T; T or A; A be exp(1); inspection I cost=5 targets A;"),
      ParseError);  // no period
  EXPECT_THROW(parse_fmt("toplevel T; T or A; A be exp(1); inspection I period=1;"),
               ParseError);  // no targets
  EXPECT_THROW(parse_fmt(
                   "toplevel T; T or A; A be exp(1); rdep R factor=2 targets A;"),
               ParseError);  // no trigger
  EXPECT_THROW(parse_fmt(
                   "toplevel T; T or A; A be exp(1); corrective off; corrective off;"),
               ParseError);  // duplicate corrective
}

TEST(FmtParser, RejectsUnknownTargets) {
  EXPECT_THROW(
      parse_fmt("toplevel T; T or A; A be exp(1); inspection I period=1 targets Zed;"),
      ParseError);
}

TEST(FmtParser, RejectsInspectionOfUndetectableLeaf) {
  EXPECT_THROW(
      parse_fmt("toplevel T; T or A; A be exp(1); inspection I period=1 targets A;"),
      ModelError);  // caught by validate()
}

TEST(FmtParser, RoundTripsThroughToText) {
  const FaultMaintenanceTree m1 = parse_fmt(kFullModel);
  const std::string text = to_text(m1);
  const FaultMaintenanceTree m2 = parse_fmt(text);
  EXPECT_EQ(m1.num_ebes(), m2.num_ebes());
  EXPECT_EQ(m1.inspections().size(), m2.inspections().size());
  EXPECT_EQ(m1.replacements().size(), m2.replacements().size());
  EXPECT_EQ(m1.rdeps().size(), m2.rdeps().size());
  EXPECT_EQ(m1.corrective().cost, m2.corrective().cost);
  for (std::size_t i = 0; i < m1.num_ebes(); ++i) {
    EXPECT_EQ(m1.ebes()[i].name, m2.ebes()[i].name);
    EXPECT_EQ(m1.ebes()[i].degradation.phases(), m2.ebes()[i].degradation.phases());
    EXPECT_EQ(m1.ebes()[i].degradation.threshold_phase(),
              m2.ebes()[i].degradation.threshold_phase());
    EXPECT_NEAR(m1.ebes()[i].degradation.mean_time_to_failure(),
                m2.ebes()[i].degradation.mean_time_to_failure(), 1e-9);
  }
  // Inspection offsets serialize explicitly, so schedules match too.
  EXPECT_DOUBLE_EQ(m1.inspections()[0].first_at, m2.inspections()[0].first_at);
}

}  // namespace
}  // namespace fmtree::fmt
