#include "fmt/fmtree.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fmtree::fmt {
namespace {

FaultMaintenanceTree two_leaf_model() {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("wear", DegradationModel::erlang(4, 8.0, 3),
                             RepairSpec{"overhaul", 500});
  const NodeId b = m.add_basic_event("shock", Distribution::exponential(0.05));
  m.set_top(m.add_or("top", {a, b}));
  return m;
}

TEST(FaultMaintenanceTree, BuildsAndValidates) {
  FaultMaintenanceTree m = two_leaf_model();
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.num_ebes(), 2u);
  EXPECT_EQ(m.ebe(*m.find("wear")).repair.action, "overhaul");
  EXPECT_EQ(m.ebe(*m.find("wear")).degradation.phases(), 4);
  EXPECT_EQ(m.ebe(*m.find("shock")).degradation.phases(), 1);
}

TEST(FaultMaintenanceTree, StructureViewHasTtfApproximations) {
  FaultMaintenanceTree m = two_leaf_model();
  const ft::FaultTree& s = m.structure();
  EXPECT_EQ(s.basic(*s.find("wear")).lifetime, Distribution::erlang(4, 0.5));
  EXPECT_EQ(s.basic(*s.find("shock")).lifetime, Distribution::exponential(0.05));
}

TEST(FaultMaintenanceTree, InspectionModuleValidation) {
  FaultMaintenanceTree m = two_leaf_model();
  const NodeId wear = *m.find("wear");
  const NodeId shock = *m.find("shock");
  EXPECT_THROW(m.add_inspection({"i", 0.0, -1, 0, {wear}}), ModelError);  // period
  EXPECT_THROW(m.add_inspection({"i", 1.0, -1, 0, {}}), ModelError);      // no targets
  EXPECT_THROW(m.add_inspection({"i", 1.0, -1, 0, {wear, wear}}), ModelError);
  EXPECT_THROW(m.add_inspection({"i", 1.0, -1, 0, {m.top()}}), ModelError);
  // Inspecting an undetectable leaf is caught at validate().
  m.add_inspection({"bad", 1.0, -1, 0, {shock}});
  EXPECT_THROW(m.validate(), ModelError);
}

TEST(FaultMaintenanceTree, InspectionDefaultsFirstAtToPeriod) {
  FaultMaintenanceTree m = two_leaf_model();
  m.add_inspection({"i", 0.5, -1.0, 10, {*m.find("wear")}});
  EXPECT_DOUBLE_EQ(m.inspections()[0].first_at, 0.5);
  m.add_inspection({"j", 0.5, 0.1, 10, {*m.find("wear")}});
  EXPECT_DOUBLE_EQ(m.inspections()[1].first_at, 0.1);
}

TEST(FaultMaintenanceTree, ReplacementValidation) {
  FaultMaintenanceTree m = two_leaf_model();
  EXPECT_THROW(m.add_replacement({"r", -1.0, -1, 0, {*m.find("wear")}}), ModelError);
  EXPECT_NO_THROW(
      m.add_replacement({"r", 10.0, -1, 0, {*m.find("wear"), *m.find("shock")}}));
  EXPECT_NO_THROW(m.validate());  // replacements may cover undetectable leaves
}

TEST(FaultMaintenanceTree, RdepValidation) {
  FaultMaintenanceTree m = two_leaf_model();
  const NodeId wear = *m.find("wear");
  const NodeId shock = *m.find("shock");
  EXPECT_THROW(m.add_rdep("r", shock, {wear}, 0.5), ModelError);   // factor < 1
  EXPECT_THROW(m.add_rdep("r", shock, {}, 2.0), ModelError);       // no deps
  EXPECT_THROW(m.add_rdep("r", shock, {m.top()}, 2.0), ModelError);
  EXPECT_THROW(m.add_rdep("r", wear, {wear}, 2.0), ModelError);    // self
  EXPECT_NO_THROW(m.add_rdep("ok", shock, {wear}, 2.0));
}

TEST(FaultMaintenanceTree, RdepPhaseTriggerValidation) {
  FaultMaintenanceTree m = two_leaf_model();
  const NodeId wear = *m.find("wear");
  const NodeId shock = *m.find("shock");
  // Phase trigger on a gate is rejected.
  EXPECT_THROW(m.add_rdep("r", m.top(), {wear}, 2.0, 2), ModelError);
  // Phase out of range (wear has 4 phases -> max 5).
  EXPECT_THROW(m.add_rdep("r", wear, {shock}, 2.0, 6), ModelError);
  EXPECT_NO_THROW(m.add_rdep("ok", wear, {shock}, 2.0, 3));
  EXPECT_EQ(m.rdeps()[0].trigger_phase, 3);
}

TEST(FaultMaintenanceTree, CorrectivePolicyValidation) {
  FaultMaintenanceTree m = two_leaf_model();
  CorrectivePolicy bad{true, -1.0, 0, 0};
  EXPECT_THROW(m.set_corrective(bad), ModelError);
  m.set_corrective(CorrectivePolicy{true, 0.5, 1000, 0});
  EXPECT_TRUE(m.corrective().enabled);
  EXPECT_DOUBLE_EQ(m.corrective().delay, 0.5);
}

TEST(FaultMaintenanceTree, IsMarkovianConditions) {
  FaultMaintenanceTree m = two_leaf_model();
  EXPECT_TRUE(m.is_markovian());  // no modules, exp phases, corrective off

  m.set_corrective(CorrectivePolicy{true, 0.0, 100, 0});
  EXPECT_TRUE(m.is_markovian());  // zero-delay corrective is fine

  m.set_corrective(CorrectivePolicy{true, 0.5, 100, 0});
  EXPECT_FALSE(m.is_markovian());  // deterministic delay

  m.set_corrective(CorrectivePolicy{false, 0, 0, 0});
  m.add_inspection({"i", 1.0, -1, 0, {*m.find("wear")}});
  EXPECT_FALSE(m.is_markovian());  // periodic clock

  FaultMaintenanceTree w;
  w.add_ebe("weib", DegradationModel::basic(Distribution::weibull(2, 5)));
  w.set_top(*w.find("weib"));
  EXPECT_FALSE(w.is_markovian());  // non-exponential phase
}

TEST(FaultMaintenanceTree, VotingAndNestedGates) {
  FaultMaintenanceTree m;
  std::vector<NodeId> bolts;
  for (int i = 0; i < 4; ++i)
    bolts.push_back(m.add_ebe("bolt" + std::to_string(i),
                              DegradationModel::erlang(2, 30, 2)));
  const NodeId vote = m.add_voting("bolts", 2, bolts);
  const NodeId other = m.add_basic_event("other", Distribution::exponential(0.1));
  m.set_top(m.add_and("top", {vote, other}));
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.structure().gate(vote).k, 2);
}

}  // namespace
}  // namespace fmtree::fmt
