// Tests for the formalism extensions: functional dependencies (FDEP) and
// imperfect inspections.
#include <gtest/gtest.h>

#include <cmath>
#include "analytic/fmt2ctmc.hpp"
#include "fmt/parser.hpp"
#include "sim/fmt_executor.hpp"
#include "smc/kpi.hpp"
#include "util/error.hpp"

namespace fmtree::fmt {
namespace {

DegradationModel det_phases(int n, int threshold, double unit = 1.0) {
  std::vector<Distribution> phases(static_cast<std::size_t>(n),
                                   Distribution::deterministic(unit));
  return DegradationModel(std::move(phases), threshold);
}

sim::TrajectoryResult run_one(const FaultMaintenanceTree& m, double horizon,
                              sim::Trace* trace = nullptr) {
  const sim::FmtSimulator simulator(m);
  sim::SimOptions opts;
  opts.horizon = horizon;
  opts.trace = trace;
  return simulator.run(RandomStream(1, 0), opts);
}

// ---- FDEP model validation ----------------------------------------------------

TEST(Fdep, Validation) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(1, 2));
  const NodeId b = m.add_ebe("b", det_phases(1, 2, 100.0));
  m.set_top(m.add_or("top", {a, b}));
  EXPECT_THROW(m.add_fdep("f", a, {}), ModelError);
  EXPECT_THROW(m.add_fdep("f", a, {a}), ModelError);
  EXPECT_THROW(m.add_fdep("f", a, {m.top()}), ModelError);
  EXPECT_NO_THROW(m.add_fdep("f", a, {b}));
  EXPECT_EQ(m.fdeps().size(), 1u);
}

TEST(Fdep, MarkovianWithFdep) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_basic_event("a", Distribution::exponential(1));
  const NodeId b = m.add_basic_event("b", Distribution::exponential(1));
  m.set_top(m.add_and("top", {a, b}));
  m.add_fdep("f", a, {b});
  EXPECT_TRUE(m.is_markovian());
}

// ---- FDEP semantics (deterministic) ---------------------------------------------

TEST(Fdep, TriggerFailureCascadesInstantly) {
  // a fails at 2; FDEP forces b (would live 100) to fail at 2 too; the AND
  // top therefore fails at 2, not at 100.
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(1, 2, 2.0));
  const NodeId b = m.add_ebe("b", det_phases(1, 2, 100.0));
  m.set_top(m.add_and("top", {a, b}));
  m.add_fdep("f", a, {b});
  const sim::TrajectoryResult r = run_one(m, 10.0);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 2.0);
}

TEST(Fdep, ChainedCascadeReachesFixpoint) {
  // a -> b -> c chained FDEPs: a fails at 1, so b and then c fail at 1.
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(1, 2, 1.0));
  const NodeId b = m.add_ebe("b", det_phases(1, 2, 50.0));
  const NodeId c = m.add_ebe("c", det_phases(1, 2, 50.0));
  m.set_top(m.add_and("top", {b, c}));
  m.add_fdep("f1", a, {b});
  m.add_fdep("f2", b, {c});
  sim::Trace trace;
  const sim::TrajectoryResult r = run_one(m, 10.0, &trace);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 1.0);
  // All three leaf failures happen at t = 1.
  const auto failures = trace.of_kind(sim::TraceKind::LeafFailed);
  ASSERT_EQ(failures.size(), 3u);
  for (const auto& e : failures) EXPECT_DOUBLE_EQ(e.time, 1.0);
}

TEST(Fdep, GateTriggerSupported) {
  // Trigger is an AND gate: dependents fail only when both a1, a2 failed.
  FaultMaintenanceTree m;
  const NodeId a1 = m.add_ebe("a1", det_phases(1, 2, 1.0));
  const NodeId a2 = m.add_ebe("a2", det_phases(1, 2, 3.0));
  const NodeId g = m.add_and("g", {a1, a2});
  const NodeId b = m.add_ebe("b", det_phases(1, 2, 100.0));
  m.set_top(m.add_or("top", {g, b}));
  m.add_fdep("f", g, {b});
  const sim::TrajectoryResult r = run_one(m, 10.0);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 3.0);  // when g fires
}

TEST(Fdep, RenewalRefailsWhileTriggerHolds) {
  // a fails at 2 and forces b down. The replacement module renews only b at
  // t=3; since a is still failed, b re-fails instantly, so the AND top never
  // recovers. Without re-failure the top would flip false at 3.
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(1, 2, 2.0));
  const NodeId b = m.add_ebe("b", det_phases(1, 2, 100.0));
  m.set_top(m.add_and("top", {a, b}));
  m.add_fdep("f", a, {b});
  m.add_replacement(ReplacementModule{"renew_b", 3.0, -1, 10, {b}});
  const sim::TrajectoryResult r = run_one(m, 10.0);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 2.0);
  EXPECT_DOUBLE_EQ(r.downtime, 8.0);  // never restored
}

TEST(Fdep, CorrectiveRenewalOfEverythingClearsCascade) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(1, 2, 2.0));
  const NodeId b = m.add_ebe("b", det_phases(1, 2, 100.0));
  m.set_top(m.add_and("top", {a, b}));
  m.add_fdep("f", a, {b});
  m.set_corrective(CorrectivePolicy{true, 0.5, 100, 0});
  const sim::TrajectoryResult r = run_one(m, 10.0);
  // Failure at 2, full renewal at 2.5, next failure at 4.5, ... -> 4 failures.
  EXPECT_EQ(r.failures, 4u);
  EXPECT_DOUBLE_EQ(r.downtime, 2.0);
}

// ---- FDEP exactness (CTMC vs closed form / simulation) ---------------------------

TEST(Fdep, CtmcMatchesClosedForm) {
  // AND(a, b) with FDEP a->b: the system fails exactly when a does, so
  // unreliability = exponential CDF of a.
  FaultMaintenanceTree m;
  const NodeId a = m.add_basic_event("a", Distribution::exponential(0.4));
  const NodeId b = m.add_basic_event("b", Distribution::exponential(0.05));
  m.set_top(m.add_and("top", {a, b}));
  m.add_fdep("f", a, {b});
  for (double t : {0.5, 2.0, 6.0}) {
    // Failure occurs when a fails (cascade) or when b fails first and then a.
    // Either way the top needs a to have failed AND b (forced) -> top = a's
    // failure OR (b then a). Since b's own failure also only completes with
    // a, top == "a failed" exactly.
    EXPECT_NEAR(analytic::exact_unreliability(m, t), 1 - std::exp(-0.4 * t), 1e-9)
        << t;
  }
}

TEST(Fdep, CtmcMatchesSimulation) {
  FaultMaintenanceTree m;
  const NodeId t1 = m.add_ebe("t1", DegradationModel::erlang(2, 3.0, 3));
  const NodeId d1 = m.add_ebe("d1", DegradationModel::erlang(3, 8.0, 4));
  const NodeId d2 = m.add_ebe("d2", DegradationModel::erlang(2, 6.0, 3));
  m.set_top(m.add_voting("top", 2, {t1, d1, d2}));
  m.add_fdep("f", t1, {d1});
  const double horizon = 4.0;
  const double exact = analytic::exact_unreliability(m, horizon);
  smc::AnalysisSettings s;
  s.horizon = horizon;
  s.trajectories = 60000;
  s.seed = 12;
  const smc::KpiReport k = smc::analyze(m, s);
  EXPECT_TRUE(k.reliability.contains(1 - exact))
      << "exact=" << exact << " sim=" << 1 - k.reliability.point;
}

// ---- Imperfect inspections --------------------------------------------------------

TEST(ImperfectInspections, DetectionProbabilityValidated) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", DegradationModel::erlang(3, 5, 2));
  m.set_top(a);
  InspectionModule bad{"i", 1.0, -1, 0, {a}, 0.0};
  EXPECT_THROW(m.add_inspection(bad), ModelError);
  bad.detection_probability = 1.5;
  EXPECT_THROW(m.add_inspection(bad), ModelError);
  bad.detection_probability = 0.5;
  EXPECT_NO_THROW(m.add_inspection(bad));
}

TEST(ImperfectInspections, DetectionOneIsDeterministic) {
  // With p = 1 no random draw happens for inspections, so the result equals
  // the default-constructed module's.
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", DegradationModel::erlang(3, 2, 2),
                             RepairSpec{"fix", 1});
  m.set_top(a);
  m.add_inspection(InspectionModule{"i", 0.5, -1, 1, {a}, 1.0});
  const sim::TrajectoryResult r1 = run_one(m, 20.0);
  const sim::TrajectoryResult r2 = run_one(m, 20.0);
  EXPECT_EQ(r1.repairs, r2.repairs);
  EXPECT_EQ(r1.failures, r2.failures);
}

TEST(ImperfectInspections, FailureRateInterpolatesBetweenExtremes) {
  auto build = [](double detect) {
    FaultMaintenanceTree m;
    const NodeId a = m.add_ebe("a", DegradationModel::erlang(4, 3.0, 2),
                               RepairSpec{"fix", 10});
    m.set_top(a);
    if (detect > 0)
      m.add_inspection(InspectionModule{"i", 0.25, -1, 1, {a}, detect});
    m.set_corrective(CorrectivePolicy{true, 0.0, 100, 0});
    return m;
  };
  smc::AnalysisSettings s;
  s.horizon = 30.0;
  s.trajectories = 20000;
  s.seed = 8;
  const double none = smc::analyze(build(0.0), s).failures_per_year.point;
  const double half = smc::analyze(build(0.5), s).failures_per_year.point;
  const double full = smc::analyze(build(1.0), s).failures_per_year.point;
  EXPECT_LT(full, half);
  EXPECT_LT(half, none);
  // Sanity magnitudes: full detection nearly eliminates this mode.
  EXPECT_LT(full, 0.2 * none);
}

// ---- Text format round-trips -------------------------------------------------------

TEST(ExtensionsParser, FdepAndDetectRoundTrip) {
  const FaultMaintenanceTree m = parse_fmt(R"(
    toplevel T;
    T and A B;
    A ebe phases=2 mean=3 threshold=2;
    B ebe phases=3 mean=9 threshold=2;
    fdep Kill trigger=A targets B;
    inspection Fuzzy period=0.5 cost=5 detect=0.8 targets A B;
  )");
  ASSERT_EQ(m.fdeps().size(), 1u);
  EXPECT_EQ(m.name(m.fdeps()[0].trigger), "A");
  ASSERT_EQ(m.inspections().size(), 1u);
  EXPECT_DOUBLE_EQ(m.inspections()[0].detection_probability, 0.8);

  const FaultMaintenanceTree m2 = parse_fmt(to_text(m));
  ASSERT_EQ(m2.fdeps().size(), 1u);
  EXPECT_DOUBLE_EQ(m2.inspections()[0].detection_probability, 0.8);
}

TEST(ExtensionsParser, RejectsBadFdepAndDetect) {
  EXPECT_THROW(parse_fmt("toplevel T; T or A; A be exp(1); fdep F targets A;"),
               ParseError);  // no trigger
  EXPECT_THROW(parse_fmt("toplevel T; T or A; A be exp(1); fdep F trigger=A;"),
               ParseError);  // no targets
  EXPECT_THROW(parse_fmt(R"(
    toplevel T; T or A; A ebe phases=2 mean=3 threshold=2;
    inspection I period=1 detect=0 targets A;
  )"),
               ParseError);  // detect out of range
  EXPECT_THROW(parse_fmt(R"(
    toplevel T; T or A; A ebe phases=2 mean=3 threshold=2;
    replacement R period=1 detect=0.5 targets A;
  )"),
               ParseError);  // detect not valid on replacements
}

}  // namespace
}  // namespace fmtree::fmt
