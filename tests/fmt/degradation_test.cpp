#include "fmt/degradation.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fmtree::fmt {
namespace {

TEST(DegradationModel, ErlangFactorySplitsMean) {
  const DegradationModel d = DegradationModel::erlang(4, 8.0, 3);
  EXPECT_EQ(d.phases(), 4);
  EXPECT_EQ(d.threshold_phase(), 3);
  EXPECT_TRUE(d.inspectable());
  EXPECT_DOUBLE_EQ(d.mean_time_to_failure(), 8.0);
  EXPECT_DOUBLE_EQ(d.variance_time_to_failure(), 4 * 4.0);  // 4 * (1/0.5)^2
  for (int p = 1; p <= 4; ++p)
    EXPECT_EQ(d.sojourn(p), Distribution::exponential(0.5));
}

TEST(DegradationModel, BasicIsSinglePhaseUndetectable) {
  const DegradationModel d = DegradationModel::basic(Distribution::weibull(2, 10));
  EXPECT_EQ(d.phases(), 1);
  EXPECT_FALSE(d.inspectable());
  EXPECT_EQ(d.threshold_phase(), 2);
}

TEST(DegradationModel, ThresholdBounds) {
  EXPECT_NO_THROW(DegradationModel::erlang(3, 1.0, 1));
  EXPECT_NO_THROW(DegradationModel::erlang(3, 1.0, 4));  // phases+1: undetectable
  EXPECT_THROW(DegradationModel::erlang(3, 1.0, 0), ModelError);
  EXPECT_THROW(DegradationModel::erlang(3, 1.0, 5), ModelError);
}

TEST(DegradationModel, RejectsBadParameters) {
  EXPECT_THROW(DegradationModel::erlang(0, 1.0, 1), ModelError);
  EXPECT_THROW(DegradationModel::erlang(2, 0.0, 1), ModelError);
  EXPECT_THROW(DegradationModel({}, 1), ModelError);
  EXPECT_THROW(DegradationModel({Distribution::never()}, 1), ModelError);
}

TEST(DegradationModel, SojournOutOfRangeThrows) {
  const DegradationModel d = DegradationModel::erlang(2, 1.0, 1);
  EXPECT_THROW(d.sojourn(0), ModelError);
  EXPECT_THROW(d.sojourn(3), ModelError);
}

TEST(DegradationModel, MixedPhaseDistributions) {
  const DegradationModel d(
      {Distribution::exponential(1.0), Distribution::deterministic(2.0),
       Distribution::uniform(1.0, 3.0)},
      2);
  EXPECT_EQ(d.phases(), 3);
  EXPECT_FALSE(d.all_phases_exponential());
  EXPECT_DOUBLE_EQ(d.mean_time_to_failure(), 1.0 + 2.0 + 2.0);
  EXPECT_DOUBLE_EQ(d.variance_time_to_failure(), 1.0 + 0.0 + 4.0 / 12.0);
}

TEST(DegradationModel, TtfApproximationExactForUniformErlang) {
  const DegradationModel d = DegradationModel::erlang(5, 10.0, 2);
  EXPECT_EQ(d.time_to_failure_approximation(), Distribution::erlang(5, 0.5));
}

TEST(DegradationModel, TtfApproximationMomentMatchesOtherwise) {
  // Two exponential phases with different rates: hypoexponential with
  // mean 1 + 0.5 = 1.5, var 1 + 0.25 = 1.25 -> shape round(1.8) = 2.
  const DegradationModel d(
      {Distribution::exponential(1.0), Distribution::exponential(2.0)}, 2);
  EXPECT_TRUE(d.all_phases_exponential());
  const Distribution approx = d.time_to_failure_approximation();
  const auto& e = std::get<Erlang>(approx.as_variant());
  EXPECT_EQ(e.shape, 2);
  EXPECT_NEAR(approx.mean(), 1.5, 1e-12);
}

TEST(DegradationModel, TtfApproximationDeterministicPhases) {
  const DegradationModel d(
      {Distribution::deterministic(1.0), Distribution::deterministic(2.0)}, 1);
  EXPECT_EQ(d.time_to_failure_approximation(), Distribution::deterministic(3.0));
}

}  // namespace
}  // namespace fmtree::fmt
