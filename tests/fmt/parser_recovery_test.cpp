// Error-recovery parsing of the .fmt format: one pass collects every
// diagnostic; semantic checks (references, cycles, usage) report complete
// lists and are suppressed when the statement level already failed.
#include "fmt/parser.hpp"

#include <gtest/gtest.h>

#include "util/diagnostics.hpp"
#include "util/error.hpp"

namespace fmtree::fmt {
namespace {

TEST(FmtParserRecovery, CleanInputYieldsModelAndNoDiagnostics) {
  const FmtParseResult r = parse_fmt_collect(
      "toplevel T;\n"
      "T or A B;\n"
      "A ebe phases=3 mean=10 threshold=2;\n"
      "B be exp(0.1);\n"
      "inspection Visual period=0.5 cost=10 targets A;\n");
  ASSERT_TRUE(r.model.has_value());
  EXPECT_TRUE(r.diagnostics.empty());
  EXPECT_EQ(r.model->num_ebes(), 2u);
}

TEST(FmtParserRecovery, ReportsEveryStatementErrorInOnePass) {
  const FmtParseResult r = parse_fmt_collect(
      "toplevel T;\n"
      "T or A B;\n"
      "A ebe phases=0 mean=5;\n"   // bad attribute value
      "B foo bar;\n"               // unknown statement type
      "T ebe phases=2 mean=5;\n"   // duplicate definition
      "B be exp(1);\n");           // fine — recovery must reach it
  EXPECT_FALSE(r.model.has_value());
  ASSERT_EQ(r.diagnostics.error_count(), 3u);
  const auto& d = r.diagnostics.all();
  EXPECT_EQ(d[0].loc.line, 3u);
  EXPECT_NE(d[0].message.find("phases"), std::string::npos);
  EXPECT_EQ(d[1].loc.line, 4u);
  EXPECT_EQ(d[1].code, "P104");
  EXPECT_EQ(d[1].token, "foo");
  EXPECT_EQ(d[2].loc.line, 5u);
  EXPECT_NE(d[2].message.find("duplicate"), std::string::npos);
}

TEST(FmtParserRecovery, DependencyAndModuleTargetsValidated) {
  const FmtParseResult r = parse_fmt_collect(
      "toplevel T;\n"
      "T or A B;\n"
      "A ebe phases=2 mean=5 threshold=1;\n"
      "B ebe phases=2 mean=5;\n"
      "rdep R factor=2 trigger=A targets Nope;\n"
      "inspection I period=1 cost=5 targets Ghost;\n");
  EXPECT_FALSE(r.model.has_value());
  ASSERT_EQ(r.diagnostics.error_count(), 2u);
  for (const Diagnostic& d : r.diagnostics.all()) {
    EXPECT_EQ(d.code, "P301");
    EXPECT_FALSE(d.hint.empty());
  }
}

TEST(FmtParserRecovery, UnusedLeafReported) {
  const FmtParseResult r = parse_fmt_collect(
      "toplevel T;\n"
      "T or A;\n"
      "A ebe phases=2 mean=5;\n"
      "Unused ebe phases=2 mean=5;\n");
  EXPECT_FALSE(r.model.has_value());
  ASSERT_EQ(r.diagnostics.error_count(), 1u);
  EXPECT_EQ(r.diagnostics.all()[0].code, "M103");
  EXPECT_EQ(r.diagnostics.all()[0].loc.line, 4u);
}

TEST(FmtParserRecovery, DependencyTriggersCountAsUsage) {
  // C sits outside the tree but accelerates A; triggers are usage roots
  // (mirrors FaultMaintenanceTree::validate), so this is a valid model.
  const FmtParseResult r = parse_fmt_collect(
      "toplevel T;\n"
      "T or A;\n"
      "A ebe phases=2 mean=5 threshold=1;\n"
      "C ebe phases=2 mean=5;\n"
      "rdep R factor=2 trigger=C targets A;\n");
  EXPECT_TRUE(r.model.has_value()) << format_diagnostic(r.diagnostics.all().front());
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(FmtParserRecovery, DependencyTargetOutsideTreeIsReported) {
  // A target is not a usage root: accelerating a leaf that never feeds the
  // structure function is a modelling error, caught at parse validation
  // (M103) instead of surfacing later as a generic build failure.
  const FmtParseResult r = parse_fmt_collect(
      "toplevel T;\n"
      "T or A;\n"
      "A ebe phases=2 mean=5 threshold=1;\n"
      "B ebe phases=2 mean=5;\n"
      "rdep R factor=2 trigger=A targets B;\n");
  EXPECT_FALSE(r.model.has_value());
  ASSERT_EQ(r.diagnostics.error_count(), 1u);
  EXPECT_EQ(r.diagnostics.all()[0].code, "M103");
  EXPECT_EQ(r.diagnostics.all()[0].token, "B");
}

TEST(FmtParserRecovery, SyntaxErrorsSuppressSemanticCascade) {
  // The broken leaf statement leaves 'A' undeclared; reporting M101/M103 on
  // top of the real error would be noise.
  const FmtParseResult r = parse_fmt_collect(
      "toplevel T;\nT or A;\nA ebe phases=0 mean=5;\n");
  ASSERT_EQ(r.diagnostics.error_count(), 1u);
  EXPECT_EQ(r.diagnostics.all()[0].loc.line, 3u);
}

TEST(FmtParserRecovery, UndefinedReferenceAndMissingToplevel) {
  const FmtParseResult r = parse_fmt_collect(
      "T or A Missing;\nA ebe phases=2 mean=5;\n");
  EXPECT_FALSE(r.model.has_value());
  bool saw_toplevel = false;
  for (const Diagnostic& d : r.diagnostics.all())
    saw_toplevel |= d.code == "P103";
  EXPECT_TRUE(saw_toplevel);
}

TEST(FmtParserRecovery, ThrowingParserRaisesAggregate) {
  const std::string text =
      "toplevel T;\nT or A B;\nA ebe phases=0 mean=5;\nB foo;\n";
  try {
    (void)parse_fmt(text);
    FAIL() << "expected ParseErrors";
  } catch (const ParseErrors& e) {
    EXPECT_EQ(e.diagnostics().size(), 2u);
    EXPECT_NE(std::string(e.what()).find("2 parse errors"), std::string::npos);
  }
}

TEST(FmtParserRecovery, NonFiniteAttributeValuesAreTypedErrors) {
  // 1e999 overflows to inf; casting that to int would be UB, so the parser
  // must reject it as a diagnostic.
  const FmtParseResult r = parse_fmt_collect(
      "toplevel T;\nT or A;\nA ebe phases=1e999 mean=5;\n");
  EXPECT_FALSE(r.model.has_value());
  EXPECT_GE(r.diagnostics.error_count(), 1u);
}

}  // namespace
}  // namespace fmtree::fmt
