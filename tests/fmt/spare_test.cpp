// SPARE gates: warm/cold standby pools with dormancy-scaled degradation.
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/fmt2ctmc.hpp"
#include "analytic/solvers.hpp"
#include "fmt/parser.hpp"
#include "sim/fmt_executor.hpp"
#include "smc/kpi.hpp"
#include "util/error.hpp"

namespace fmtree::fmt {
namespace {

DegradationModel det_phases(int n, int threshold, double unit = 1.0) {
  std::vector<Distribution> phases(static_cast<std::size_t>(n),
                                   Distribution::deterministic(unit));
  return DegradationModel(std::move(phases), threshold);
}

sim::TrajectoryResult run_one(const FaultMaintenanceTree& m, double horizon) {
  const sim::FmtSimulator simulator(m);
  sim::SimOptions opts;
  opts.horizon = horizon;
  return simulator.run(RandomStream(1, 0), opts);
}

// ---- Validation --------------------------------------------------------------

TEST(Spare, Validation) {
  FaultMaintenanceTree m;
  const NodeId p = m.add_ebe("p", det_phases(1, 2, 2.0));
  const NodeId s = m.add_ebe("s", det_phases(1, 2, 4.0));
  const NodeId q = m.add_ebe("q", det_phases(1, 2, 4.0));
  EXPECT_THROW(m.add_spare("sp", {p}, 0.5), ModelError);        // one child
  EXPECT_THROW(m.add_spare("sp", {p, s}, -0.1), ModelError);    // dormancy
  EXPECT_THROW(m.add_spare("sp", {p, s}, 1.5), ModelError);
  const NodeId gate = m.add_spare("sp", {p, s}, 0.5);
  EXPECT_THROW(m.add_spare("sp2", {s, q}, 0.5), ModelError);    // s reused
  m.set_top(gate);
  // Gate is an AND in the boolean structure.
  EXPECT_EQ(m.structure().gate(gate).type, ft::GateType::And);
  EXPECT_THROW(m.add_spare("sp3", {gate, q}, 0.5), ModelError); // non-leaf child
}

// ---- Deterministic semantics ---------------------------------------------------

TEST(Spare, ColdSpareDoesNotAgeUntilActivated) {
  // Primary lives 2; cold spare has a 4-unit lifetime that only starts
  // ticking at t=2 -> pool exhausted at 6.
  FaultMaintenanceTree m;
  const NodeId p = m.add_ebe("p", det_phases(1, 2, 2.0));
  const NodeId s = m.add_ebe("s", det_phases(1, 2, 4.0));
  m.set_top(m.add_spare("pool", {p, s}, 0.0));
  const sim::TrajectoryResult r = run_one(m, 10.0);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 6.0);
}

TEST(Spare, WarmSpareAgesAtDormancyRate) {
  // Dormancy 0.5: by t=2 the spare has burned 1 of its 4 natural units;
  // activated at 2, it fails 3 later -> top at 5.
  FaultMaintenanceTree m;
  const NodeId p = m.add_ebe("p", det_phases(1, 2, 2.0));
  const NodeId s = m.add_ebe("s", det_phases(1, 2, 4.0));
  m.set_top(m.add_spare("pool", {p, s}, 0.5));
  const sim::TrajectoryResult r = run_one(m, 10.0);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 5.0);
}

TEST(Spare, HotSpareEqualsPlainAnd) {
  FaultMaintenanceTree spare_model;
  {
    const NodeId p = spare_model.add_ebe("p", det_phases(1, 2, 2.0));
    const NodeId s = spare_model.add_ebe("s", det_phases(1, 2, 4.0));
    spare_model.set_top(spare_model.add_spare("pool", {p, s}, 1.0));
  }
  FaultMaintenanceTree and_model;
  {
    const NodeId p = and_model.add_ebe("p", det_phases(1, 2, 2.0));
    const NodeId s = and_model.add_ebe("s", det_phases(1, 2, 4.0));
    and_model.set_top(and_model.add_and("pool", {p, s}));
  }
  EXPECT_DOUBLE_EQ(run_one(spare_model, 10.0).first_failure_time,
                   run_one(and_model, 10.0).first_failure_time);
}

TEST(Spare, TwoSparesActivateInOrder) {
  // Primary 2, spares of 4 each, cold: failures at 2, 6; pool dead at 10.
  FaultMaintenanceTree m;
  const NodeId p = m.add_ebe("p", det_phases(1, 2, 2.0));
  const NodeId s1 = m.add_ebe("s1", det_phases(1, 2, 4.0));
  const NodeId s2 = m.add_ebe("s2", det_phases(1, 2, 4.0));
  m.set_top(m.add_spare("pool", {p, s1, s2}, 0.0));
  const sim::TrajectoryResult r = run_one(m, 12.0);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 10.0);
}

TEST(Spare, RenewedPrimaryTakesBackActiveRole) {
  // Cold spare; primary fails at 2, spare activates. The replacement module
  // renews the primary at t=3: the primary is active again, the spare
  // (with 3 natural units left) goes back to dormant and freezes. The
  // renewed primary fails at 5; the spare then burns its remaining 3 -> 8.
  FaultMaintenanceTree m;
  const NodeId p = m.add_ebe("p", det_phases(1, 2, 2.0));
  const NodeId s = m.add_ebe("s", det_phases(1, 2, 4.0));
  m.set_top(m.add_spare("pool", {p, s}, 0.0));
  m.add_replacement(ReplacementModule{"renew_p", 100.0, 3.0, 10, {p}});
  const sim::TrajectoryResult r = run_one(m, 12.0);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 8.0);
}

// ---- Exactness ------------------------------------------------------------------

TEST(Spare, ColdStandbyOfExponentialsIsErlang) {
  // Cold standby of two exp(r) units: total lifetime = Erlang(2, r).
  const double r = 0.5;
  FaultMaintenanceTree m;
  const NodeId p = m.add_basic_event("p", Distribution::exponential(r));
  const NodeId s = m.add_basic_event("s", Distribution::exponential(r));
  m.set_top(m.add_spare("pool", {p, s}, 0.0));
  for (double t : {0.5, 2.0, 5.0})
    EXPECT_NEAR(analytic::exact_unreliability(m, t), Distribution::erlang(2, r).cdf(t),
                1e-9)
        << t;
  EXPECT_NEAR(analytic::exact_mttf(m), 2.0 / r, 1e-8);
}

TEST(Spare, WarmStandbyMttfClosedForm) {
  // Warm standby, iid exp(r), dormancy d: MTTF = 1/(r(1+d)) + 1/r.
  const double r = 0.4, d = 0.3;
  FaultMaintenanceTree m;
  const NodeId p = m.add_basic_event("p", Distribution::exponential(r));
  const NodeId s = m.add_basic_event("s", Distribution::exponential(r));
  m.set_top(m.add_spare("pool", {p, s}, d));
  EXPECT_NEAR(analytic::exact_mttf(m), 1.0 / (r * (1 + d)) + 1.0 / r, 1e-8);
}

TEST(Spare, CtmcMatchesSimulation) {
  FaultMaintenanceTree m;
  const NodeId p = m.add_ebe("p", DegradationModel::erlang(2, 3.0, 3));
  const NodeId s = m.add_ebe("s", DegradationModel::erlang(2, 3.0, 3));
  const NodeId other = m.add_basic_event("other", Distribution::exponential(0.05));
  const NodeId pool = m.add_spare("pool", {p, s}, 0.25);
  m.set_top(m.add_or("top", {pool, other}));
  const double t = 6.0;
  const double exact = analytic::exact_unreliability(m, t);
  smc::AnalysisSettings settings;
  settings.horizon = t;
  settings.trajectories = 60000;
  settings.seed = 14;
  const smc::KpiReport k = smc::analyze(m, settings);
  EXPECT_TRUE(k.reliability.contains(1 - exact))
      << "exact=" << exact << " sim=" << 1 - k.reliability.point;
}

// ---- Text format -----------------------------------------------------------------

TEST(Spare, ParserRoundTrip) {
  const FaultMaintenanceTree m = parse_fmt(R"(
    toplevel T;
    T or Pool Other;
    Pool spare dormancy=0.25 P S1 S2;
    P ebe phases=2 mean=6 threshold=2;
    S1 ebe phases=2 mean=6 threshold=2;
    S2 ebe phases=2 mean=6 threshold=2;
    Other be exp(0.01);
  )");
  ASSERT_EQ(m.spares().size(), 1u);
  EXPECT_DOUBLE_EQ(m.spares()[0].dormancy, 0.25);
  EXPECT_EQ(m.spares()[0].children.size(), 3u);
  const FaultMaintenanceTree m2 = parse_fmt(to_text(m));
  ASSERT_EQ(m2.spares().size(), 1u);
  EXPECT_DOUBLE_EQ(m2.spares()[0].dormancy, 0.25);
  EXPECT_EQ(m2.name(m2.spares()[0].children[0]), "P");
}

TEST(Spare, ParserDefaultsToColdAndValidates) {
  const FaultMaintenanceTree m = parse_fmt(R"(
    toplevel Pool;
    Pool spare P S;
    P be exp(0.5); S be exp(0.5);
  )");
  EXPECT_DOUBLE_EQ(m.spares()[0].dormancy, 0.0);
  EXPECT_THROW(parse_fmt(R"(
    toplevel Pool; Pool spare dormancy=2 P S; P be exp(1); S be exp(1);
  )"),
               ParseError);
}

}  // namespace
}  // namespace fmtree::fmt
