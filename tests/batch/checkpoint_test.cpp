#include "batch/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "batch/sweep.hpp"
#include "fmt/parser.hpp"
#include "util/error.hpp"

namespace fmtree::batch {
namespace {

const char* kModel = R"(
  toplevel T;
  T or A;
  A be exp(0.2);
  corrective cost=100 delay=0;
)";

SweepPlan tiny_plan(std::uint64_t seed_base = 1) {
  SweepPlan plan;
  for (std::uint64_t s : {seed_base, seed_base + 1}) {
    SweepJob job;
    job.label = "seed-" + std::to_string(s);
    job.model = fmt::parse_fmt(kModel);
    job.settings.horizon = 5.0;
    job.settings.trajectories = 50;
    job.settings.seed = s;
    plan.jobs.push_back(std::move(job));
  }
  return plan;
}

TEST(SweepCheckpoint, EncodeDecodeRoundTrips) {
  SweepCheckpoint cp;
  cp.plan_id = "abc123";
  cp.jobs = {{"job \"quoted\"", "k1-k1", "done"},
             {"other", "k2-k2", "failed"},
             {"third", "k3-k3", "pending"}};
  const SweepCheckpoint back = decode_checkpoint(encode_checkpoint(cp));
  EXPECT_EQ(back.plan_id, cp.plan_id);
  ASSERT_EQ(back.jobs.size(), 3u);
  EXPECT_EQ(back.jobs[0].label, "job \"quoted\"");
  EXPECT_EQ(back.jobs[1].status, "failed");
  // done / failed / pending partition the plan and round-trip exactly: a
  // failed job must never be folded into either of the other totals.
  EXPECT_EQ(back.jobs_done(), 1u);
  EXPECT_EQ(back.jobs_failed(), 1u);
  EXPECT_EQ(back.jobs_pending(), 1u);
  EXPECT_EQ(back.jobs_done() + back.jobs_failed() + back.jobs_pending(),
            back.jobs.size());
}

TEST(SweepCheckpoint, DecodeRejectsGarbage) {
  EXPECT_THROW(decode_checkpoint("not json"), IoError);
  EXPECT_THROW(decode_checkpoint("{\"schema\": \"other/v1\"}"), IoError);
  EXPECT_THROW(decode_checkpoint(
                   "{\"schema\": \"fmtree.sweep-checkpoint/v1\", \"plan\": "
                   "\"x\", \"jobs\": [{\"label\": \"a\", \"key\": \"k\", "
                   "\"status\": \"bogus\"}]}"),
               IoError);
}

TEST(SweepCheckpoint, PlanIdDetectsADifferentPlan) {
  EXPECT_EQ(checkpoint_plan_id(tiny_plan()), checkpoint_plan_id(tiny_plan()));
  // A different seed grid is a different plan...
  EXPECT_NE(checkpoint_plan_id(tiny_plan()), checkpoint_plan_id(tiny_plan(7)));
  // ...but execution knobs (threads, chunking, retries) are not.
  SweepPlan tuned = tiny_plan();
  tuned.threads = 7;
  tuned.chunk = 3;
  tuned.max_retries = 9;
  EXPECT_EQ(checkpoint_plan_id(tiny_plan()), checkpoint_plan_id(tuned));
}

TEST(SweepCheckpoint, WriteReadReflectsOutcomeStatus) {
  const std::string dir = testing::TempDir() + "fmtree_checkpoint_test";
  std::filesystem::remove_all(dir);  // idempotence across ctest runs
  std::filesystem::create_directories(dir);
  const std::string path = checkpoint_path(dir);
  EXPECT_FALSE(read_checkpoint(path).has_value());  // absent = nullopt

  const SweepPlan plan = tiny_plan();
  const SweepOutcome outcome = run_sweep(plan);
  ASSERT_TRUE(write_checkpoint(path, plan, outcome));
  const auto cp = read_checkpoint(path);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->plan_id, checkpoint_plan_id(plan));
  ASSERT_EQ(cp->jobs.size(), plan.jobs.size());
  EXPECT_EQ(cp->jobs_done(), plan.jobs.size());
  for (std::size_t j = 0; j < cp->jobs.size(); ++j) {
    EXPECT_EQ(cp->jobs[j].label, plan.jobs[j].label);
    EXPECT_EQ(cp->jobs[j].key, outcome.results[j].key.id());
    EXPECT_EQ(cp->jobs[j].status, "done");
  }

  // A torn manifest (crash mid-write) would throw; the atomic publish means
  // we only ever see whole files — simulate the torn case directly.
  {
    std::ofstream torn(path, std::ios::trunc);
    torn << "{\"schema\": \"fmtree.sweep-ch";
  }
  EXPECT_THROW(read_checkpoint(path), IoError);
}

}  // namespace
}  // namespace fmtree::batch
