#include "batch/result_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>

#include "batch/fingerprint.hpp"
#include "fmt/parser.hpp"
#include "report_bits.hpp"
#include "util/error.hpp"

namespace fmtree::batch {
namespace {

using batch_test::same_bits;

CacheKey test_key(std::uint64_t salt = 0) {
  return CacheKey{Fingerprint{0x1234, salt}, Fingerprint{0x5678, 0x9abc}};
}

/// A report stuffed with doubles a decimal serialization would mangle:
/// non-terminating binaries, subnormals, extremes of the exponent range,
/// and a negative zero.
smc::KpiReport nasty_report() {
  smc::KpiReport r;
  r.horizon = 0.1 + 0.2;  // != 0.3
  r.trajectories = 12345;
  r.reliability = {1.0 / 3.0, std::nextafter(1.0 / 3.0, 0.0), 2.0 / 3.0, 0.95};
  r.expected_failures = {5e-324, 1e308, -0.0, 0.99};  // subnormal, huge, -0.0
  r.failures_per_year = {3.141592653589793, -3.141592653589793, 1e-300, 0.95};
  r.availability = {std::numeric_limits<double>::epsilon(), 0.0, 1.0, 0.95};
  r.total_cost = {1234.5678, 1000.0, 1500.0, 0.95};
  r.cost_per_year = {61.728, 50.0, 75.0, 0.95};
  r.npv_cost = {1111.1, 1000.1, 1222.1, 0.95};
  r.mean_cost = {0.1, 0.2, 0.3, 0.4, 0.7};
  r.mean_inspections = 39.999999999999996;
  r.mean_repairs = 2.0000000000000004;
  r.mean_replacements = 0.0;
  r.failures_per_leaf = {0.1, 1.0 / 7.0, 5e-324};
  r.repairs_per_leaf = {0.0, -0.0, 123.456};
  return r;
}

TEST(ResultCacheCodec, HexfloatRoundTripIsBitwiseExact) {
  const CacheKey key = test_key();
  const smc::KpiReport original = nasty_report();
  const smc::KpiReport decoded = decode_report(key, encode_report(key, original));
  EXPECT_TRUE(same_bits(original, decoded));
}

TEST(ResultCacheCodec, RejectsKeyMismatchAndGarbage) {
  const CacheKey key = test_key();
  const std::string text = encode_report(key, nasty_report());
  EXPECT_THROW(decode_report(test_key(/*salt=*/1), text), IoError);
  EXPECT_THROW(decode_report(key, "not json"), IoError);
  EXPECT_THROW(decode_report(key, "{\"schema\": \"fmtree.result/v99\"}"), IoError);
}

TEST(ResultCache, MemoryTierHitsBitwise) {
  ResultCache cache;
  EXPECT_FALSE(cache.has_disk_tier());
  const CacheKey key = test_key();
  EXPECT_FALSE(cache.get(key).has_value());
  cache.put(key, nasty_report());
  const auto hit = cache.get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(same_bits(*hit, nasty_report()));
  EXPECT_EQ(cache.size(), 1u);
  const ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.memory_hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.disk_writes, 0u);
}

TEST(ResultCache, RefusesTruncatedReports) {
  ResultCache cache;
  smc::KpiReport truncated = nasty_report();
  truncated.truncated = true;
  truncated.stop_reason = smc::StopReason::Interrupted;
  cache.put(test_key(), truncated);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(test_key()).has_value());
}

TEST(ResultCache, DiskTierSurvivesProcessBoundary) {
  const std::string dir = testing::TempDir() + "fmtree_cache_disk_test";
  std::filesystem::remove_all(dir);  // idempotence across ctest runs
  const CacheKey key = test_key();
  {
    ResultCache writer(dir);
    EXPECT_TRUE(writer.has_disk_tier());
    writer.put(key, nasty_report());
    EXPECT_EQ(writer.stats().disk_writes, 1u);
  }
  // A fresh cache instance (≈ a new process) finds the entry on disk.
  ResultCache reader(dir);
  const auto hit = reader.get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(same_bits(*hit, nasty_report()));
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  // The promoted copy now serves from memory.
  (void)reader.get(key);
  EXPECT_EQ(reader.stats().memory_hits, 1u);
}

TEST(ResultCache, CorruptDiskEntryIsAMissNotAnError) {
  const std::string dir = testing::TempDir() + "fmtree_cache_corrupt_test";
  std::filesystem::remove_all(dir);  // idempotence across ctest runs
  const CacheKey key = test_key(/*salt=*/7);
  ResultCache cache(dir);
  {
    std::ofstream out(dir + "/" + key.id() + ".json");
    out << "{ \"schema\": \"fmtree.result/v1\", truncated garbage";
  }
  EXPECT_FALSE(cache.get(key).has_value());
  const ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.disk_failures, 1u);
  // And the slot is writable again.
  cache.put(key, nasty_report());
  ResultCache fresh(dir);
  EXPECT_TRUE(fresh.get(key).has_value());
}

TEST(ResultCache, UncreatableDirectoryThrows) {
  EXPECT_THROW(ResultCache(""), IoError);
  EXPECT_THROW(ResultCache("/dev/null/not-a-dir"), IoError);
}

TEST(ResultCacheCodec, ContentHashCatchesSingleBitRot) {
  const CacheKey key = test_key();
  std::string text = encode_report(key, nasty_report());
  EXPECT_NE(text.find("\"content_hash\""), std::string::npos);
  // Flip one bit in the middle of the payload: whatever it lands on — a
  // value digit, a key, structure — decode must reject the entry.
  text[text.size() / 2] ^= 0x01;
  EXPECT_THROW(decode_report(key, text), IoError);
}

TEST(ResultCacheCodec, ContentHashIsAFunctionOfValuesNotText) {
  // Same values, different keys: the hash must agree (it feeds from the
  // decoded values, not from the serialized text or the entry identity).
  const std::string a = encode_report(test_key(), nasty_report());
  const std::string b = encode_report(test_key(/*salt=*/9), nasty_report());
  const std::string needle = "\"content_hash\": \"";
  const auto hash_of = [&](const std::string& text) {
    const std::size_t at = text.find(needle) + needle.size();
    return text.substr(at, 32);
  };
  EXPECT_EQ(hash_of(a), hash_of(b));
  EXPECT_EQ(report_content_hash(nasty_report()).hex(), hash_of(a));
}

TEST(ResultCache, QuarantinesCorruptEntriesWithAWarning) {
  const std::string dir = testing::TempDir() + "fmtree_cache_quarantine_test";
  std::filesystem::remove_all(dir);  // idempotence across ctest runs
  const CacheKey key = test_key(/*salt=*/3);
  {
    ResultCache writer(dir);
    writer.put(key, nasty_report());
  }
  // Corrupt the published entry on disk the way bit rot would.
  const std::string path = dir + "/" + key.id() + ".json";
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size / 2);
    char c = 0;
    f.seekg(size / 2);
    f.get(c);
    f.seekp(size / 2);
    f.put(static_cast<char>(c ^ 0x01));
  }
  ResultCache reader(dir);
  EXPECT_FALSE(reader.get(key).has_value());
  const ResultCache::Stats st = reader.stats();
  EXPECT_EQ(st.corrupt_entries, 1u);
  EXPECT_EQ(st.quarantined, 1u);
  EXPECT_FALSE(std::filesystem::exists(path));  // moved, not deleted
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(reader.quarantine_directory()) / (key.id() + ".json")));
  const std::vector<Diagnostic> warnings = reader.take_warnings();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].code, "C101");
  EXPECT_EQ(warnings[0].severity, Severity::Warning);
  EXPECT_TRUE(reader.take_warnings().empty());  // drained
}

TEST(ResultCache, RecoveryScanRemovesStaleTempFiles) {
  const std::string dir = testing::TempDir() + "fmtree_cache_recovery_test";
  std::filesystem::remove_all(dir);  // idempotence across ctest runs
  std::filesystem::create_directories(dir);
  {
    std::ofstream dead(dir + "/abc.json.tmp.deadbeef-1");
    dead << "torn write from a crashed process";
  }
  ResultCache cache(dir);
  EXPECT_FALSE(std::filesystem::exists(dir + "/abc.json.tmp.deadbeef-1"));
  EXPECT_EQ(cache.stats().recovered_tmp_files, 1u);
  const std::vector<Diagnostic> warnings = cache.take_warnings();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].code, "C102");
}

}  // namespace
}  // namespace fmtree::batch
