#include "batch/fingerprint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "fmt/canonical.hpp"
#include "fmt/parser.hpp"
#include "smc/kpi.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace fmtree::batch {
namespace {

const char* kModel = R"(
  toplevel T;
  T or A B;
  A ebe phases=3 mean=6 threshold=2 repair_cost=100;
  B be exp(0.05);
  inspection I period=0.25 cost=20 targets A;
  corrective cost=5000 delay=0.02;
)";

std::string read_ei_joint() {
  std::ifstream file(std::string(FMTREE_SOURCE_DIR) + "/models/ei_joint.fmt");
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

// ---- Hash primitives --------------------------------------------------------

TEST(StreamHasher, TypedAndLengthPrefixed) {
  const auto digest = [](auto&& feed) {
    StreamHasher h;
    feed(h);
    return h.digest();
  };
  // u64(1) and f64(1.0) must not collide via their byte patterns.
  EXPECT_NE(digest([](StreamHasher& h) { h.u64(1); }),
            digest([](StreamHasher& h) { h.f64(1.0); }));
  // Length prefixes: "ab"+"c" != "a"+"bc".
  EXPECT_NE(digest([](StreamHasher& h) { h.str("ab").str("c"); }),
            digest([](StreamHasher& h) { h.str("a").str("bc"); }));
  // -0.0 canonicalizes to +0.0 (they compare equal, so they must hash equal).
  EXPECT_EQ(digest([](StreamHasher& h) { h.f64(-0.0); }),
            digest([](StreamHasher& h) { h.f64(0.0); }));
  // Order is semantic.
  EXPECT_NE(digest([](StreamHasher& h) { h.u64(1).u64(2); }),
            digest([](StreamHasher& h) { h.u64(2).u64(1); }));
}

TEST(KeyedHasher, FieldOrderDoesNotMatter) {
  KeyedHasher a("test/v1");
  a.f64("horizon", 20.0).u64("seed", 7).str("kind", "kpis");
  KeyedHasher b("test/v1");
  b.str("kind", "kpis").u64("seed", 7).f64("horizon", 20.0);
  EXPECT_EQ(a.digest(), b.digest());

  KeyedHasher other_schema("test/v2");
  other_schema.f64("horizon", 20.0).u64("seed", 7).str("kind", "kpis");
  EXPECT_NE(a.digest(), other_schema.digest());
}

TEST(KeyedHasher, DuplicateKeyThrows) {
  KeyedHasher h("test/v1");
  h.u64("seed", 1).u64("seed", 2);
  EXPECT_THROW(h.digest(), DomainError);
}

// ---- Canonical model hash ---------------------------------------------------

TEST(CanonicalHash, StableAcrossParsePrintReparse) {
  const fmt::FaultMaintenanceTree first = fmt::parse_fmt(read_ei_joint());
  const std::string printed = fmt::to_text(first);
  const fmt::FaultMaintenanceTree second = fmt::parse_fmt(printed);
  EXPECT_EQ(fmt::canonical_hash(first), fmt::canonical_hash(second));
  // print ∘ parse is a fixpoint: the second print is byte-identical.
  EXPECT_EQ(printed, fmt::to_text(second));
}

TEST(CanonicalHash, IgnoresFormattingButNotSemantics) {
  const Fingerprint base = fmt::canonical_hash(fmt::parse_fmt(kModel));

  // Comments and whitespace are not content.
  std::string reformatted = "# a comment\n" + std::string(kModel) + "\n\n";
  EXPECT_EQ(base, fmt::canonical_hash(fmt::parse_fmt(reformatted)));

  const auto variant = [&](const std::string& from, const std::string& to) {
    std::string text = kModel;
    text.replace(text.find(from), from.size(), to);
    return fmt::canonical_hash(fmt::parse_fmt(text));
  };
  // Any semantic field change moves the hash: a leaf rate, a threshold, an
  // inspection interval, a corrective cost.
  EXPECT_NE(base, variant("mean=6", "mean=7"));
  EXPECT_NE(base, variant("threshold=2", "threshold=3"));
  EXPECT_NE(base, variant("period=0.25", "period=0.5"));
  EXPECT_NE(base, variant("exp(0.05)", "exp(0.06)"));
  EXPECT_NE(base, variant("cost=5000", "cost=5001"));
}

TEST(CanonicalHash, TracksPolicyMutations) {
  fmt::FaultMaintenanceTree m = fmt::parse_fmt(kModel);
  const Fingerprint base = fmt::canonical_hash(m);
  m.set_inspection_schedule(0, 0.5);
  const Fingerprint retimed = fmt::canonical_hash(m);
  EXPECT_NE(base, retimed);
  m.set_inspection_schedule(0, 0.25);
  EXPECT_EQ(base, fmt::canonical_hash(m));
  m.clear_inspections();
  EXPECT_NE(base, fmt::canonical_hash(m));
}

// ---- Settings fingerprint and full cache key --------------------------------

TEST(SettingsFingerprint, SensitiveToResultRelevantFieldsOnly) {
  smc::AnalysisSettings s;
  s.horizon = 20.0;
  s.trajectories = 1000;
  s.seed = 42;
  const Fingerprint base = settings_fingerprint(s);

  const auto changed = [&](auto&& mutate) {
    smc::AnalysisSettings t = s;
    mutate(t);
    return settings_fingerprint(t);
  };
  EXPECT_NE(base, changed([](auto& t) { t.horizon = 25.0; }));
  EXPECT_NE(base, changed([](auto& t) { t.seed = 43; }));
  EXPECT_NE(base, changed([](auto& t) { t.trajectories = 1001; }));
  EXPECT_NE(base, changed([](auto& t) { t.confidence = 0.99; }));
  EXPECT_NE(base, changed([](auto& t) { t.discount_rate = 0.03; }));
  EXPECT_NE(base, changed([](auto& t) { t.target_relative_error = 0.01; }));

  // Thread count never changes the result (bit-reproducibility contract),
  // so it must not change the key; telemetry is observational; `batch` only
  // matters under adaptive stopping.
  EXPECT_EQ(base, changed([](auto& t) { t.threads = 8; }));
  EXPECT_EQ(base, changed([](auto& t) { t.batch = 512; }));
  smc::AnalysisSettings adaptive = s;
  adaptive.target_relative_error = 0.01;
  const Fingerprint adaptive_base = settings_fingerprint(adaptive);
  adaptive.batch = 512;
  EXPECT_NE(adaptive_base, settings_fingerprint(adaptive));
}

TEST(SettingsFingerprint, EngineIdentitySeparatesCacheEntries) {
  smc::AnalysisSettings s;
  s.horizon = 20.0;
  s.trajectories = 1000;
  s.seed = 42;

  smc::AnalysisSettings scalar = s;
  scalar.engine = Engine::Scalar;
  smc::AnalysisSettings batch = s;
  batch.engine = Engine::Batch;

  // The engines draw different random numbers, so a cached scalar result
  // must never answer a batch request (or vice versa).
  EXPECT_NE(settings_fingerprint(scalar), settings_fingerprint(batch));

  // Default resolves through FMTREE_ENGINE before hashing: the key depends
  // on which kernel actually runs, not on how it was spelled.
  smc::AnalysisSettings dflt = s;
  dflt.engine = Engine::Default;
  EXPECT_EQ(settings_fingerprint(dflt),
            settings_fingerprint(resolve_engine(Engine::Default) == Engine::Batch
                                     ? batch
                                     : scalar));

  // Lane width and threads are execution-only on both engines: reports are
  // bit-identical at any value, so neither may move the key.
  const auto with = [](smc::AnalysisSettings t, auto&& mutate) {
    mutate(t);
    return settings_fingerprint(t);
  };
  EXPECT_EQ(settings_fingerprint(batch),
            with(batch, [](auto& t) { t.lane_width = 64; }));
  EXPECT_EQ(settings_fingerprint(batch), with(batch, [](auto& t) { t.threads = 8; }));
  EXPECT_EQ(settings_fingerprint(scalar),
            with(scalar, [](auto& t) { t.lane_width = 64; }));
}

TEST(CacheKey, EnginesNeverShareACacheEntry) {
  const fmt::FaultMaintenanceTree m = fmt::parse_fmt(kModel);
  smc::AnalysisSettings s;
  s.horizon = 10.0;
  s.trajectories = 100;
  smc::AnalysisSettings scalar = s;
  scalar.engine = Engine::Scalar;
  smc::AnalysisSettings batch = s;
  batch.engine = Engine::Batch;
  const CacheKey a = kpi_cache_key(m, scalar);
  const CacheKey b = kpi_cache_key(m, batch);
  EXPECT_EQ(a.model, b.model);      // same model either way
  EXPECT_NE(a.request, b.request);  // different kernel, different entry
  EXPECT_NE(a.id(), b.id());
}

TEST(CacheKey, SeparatesModelAndRequest) {
  const fmt::FaultMaintenanceTree m = fmt::parse_fmt(kModel);
  smc::AnalysisSettings s;
  s.horizon = 10.0;
  s.trajectories = 100;
  const CacheKey base = kpi_cache_key(m, s);

  smc::AnalysisSettings s2 = s;
  s2.seed = 99;
  const CacheKey reseeded = kpi_cache_key(m, s2);
  EXPECT_EQ(base.model, reseeded.model);
  EXPECT_NE(base.request, reseeded.request);

  fmt::FaultMaintenanceTree m2 = fmt::parse_fmt(kModel);
  m2.set_inspection_schedule(0, 1.0);
  const CacheKey repoliced = kpi_cache_key(m2, s);
  EXPECT_NE(base.model, repoliced.model);
  EXPECT_EQ(base.request, repoliced.request);

  // id() is the stable cache entry name: two 32-hex halves joined by '-'.
  EXPECT_EQ(base.id().size(), 65u);  // 32 + '-' + 32
  EXPECT_EQ(base.id(), base.model.hex() + "-" + base.request.hex());
}

}  // namespace
}  // namespace fmtree::batch
