// Chaos suite: sweeps under injected faults. Every test here carries the
// "Chaos" prefix so CI's chaos job can select exactly this suite
// (ctest -R Chaos) — these tests also arm faults themselves, so they run
// identically with and without FMTREE_FAULTS in the environment.
//
// The invariant under test is the robustness contract of DESIGN.md
// ("Failure semantics"): injected faults may cost retries, recomputation or
// quarantined cache entries, but every *successful* report is bit-identical
// to the fault-free run, and a cache directory that absorbed crashes mid-
// write still resumes into identical bits.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "batch/checkpoint.hpp"
#include "batch/result_cache.hpp"
#include "batch/sweep.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "fmt/parser.hpp"
#include "obs/metrics.hpp"
#include "report_bits.hpp"
#include "smc/kpi.hpp"
#include "util/fault_injection.hpp"

namespace fmtree::batch {
namespace {

using batch_test::same_bits;

const char* kModel = R"(
  toplevel T;
  T or A B;
  A ebe phases=3 mean=6 threshold=2 repair_cost=100;
  B be exp(0.05);
  inspection I period=0.25 cost=20 targets A;
  corrective cost=5000 delay=0.02;
)";

smc::AnalysisSettings small_settings(std::uint64_t trajectories = 300) {
  smc::AnalysisSettings s;
  s.horizon = 10.0;
  s.trajectories = trajectories;
  s.seed = 11;
  return s;
}

SweepPlan small_plan(std::uint64_t chunk = 64, unsigned threads = 2) {
  SweepPlan plan;
  plan.chunk = chunk;
  plan.threads = threads;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SweepJob job;
    job.label = "seed-" + std::to_string(seed);
    job.model = fmt::parse_fmt(kModel);
    job.settings = small_settings();
    job.settings.seed = seed;
    plan.jobs.push_back(std::move(job));
  }
  return plan;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);  // idempotence across ctest runs
  return dir;
}

TEST(ChaosSweep, InjectedTaskFaultHealsBitIdentically) {
  const SweepOutcome baseline = run_sweep(small_plan());
  // The first claimed task throws; the job becomes a failure record, then
  // heals through the retry path (plain analyze, which never hits
  // sweep.task). The healed report must carry no trace of the fault.
  const fault::Scope faults({"sweep.task:error,nth=1,limit=1"});
  const SweepOutcome chaos = run_sweep(small_plan());
  EXPECT_EQ(chaos.jobs_failed, 0u);
  EXPECT_GE(chaos.retries, 1u);
  ASSERT_EQ(chaos.results.size(), baseline.results.size());
  for (std::size_t i = 0; i < chaos.results.size(); ++i) {
    EXPECT_TRUE(chaos.results[i].completed);
    EXPECT_TRUE(same_bits(chaos.results[i].report, baseline.results[i].report));
  }
}

TEST(ChaosSweep, ExhaustedRetriesBecomeAStructuredFailureNotACrash) {
  SweepPlan plan = small_plan();
  plan.max_retries = 0;  // the injected (transient) fault has no budget left
  plan.retry_backoff_ms = 0.0;
  const fault::Scope faults({"sweep.task:error,nth=1,limit=1"});
  const SweepOutcome outcome = run_sweep(plan);
  EXPECT_EQ(outcome.jobs_failed, 1u);
  EXPECT_FALSE(outcome.truncated);  // failed jobs are accounted, not a stop
  std::size_t failed = 0, completed = 0;
  for (const JobResult& r : outcome.results) {
    if (r.failed) {
      ++failed;
      EXPECT_EQ(r.failure.kind, "injected");
      EXPECT_TRUE(r.failure.transient);
      EXPECT_EQ(r.failure.attempts, 1u);
      EXPECT_FALSE(r.completed);
    } else if (r.completed) {
      ++completed;  // job-level isolation: the rest of the plan finished
    }
  }
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(completed, outcome.results.size() - 1);
}

TEST(ChaosSweep, WatchdogConvertsAStallIntoAStalledStop) {
  SweepPlan plan = small_plan(/*chunk=*/64, /*threads=*/2);
  plan.stall_timeout_s = 0.25;
  // One worker parks for far longer than the stall window; the watchdog must
  // stop the sweep with a diagnostic instead of letting it hang silently.
  const fault::Scope faults({"sweep.task:stall=1500,nth=1,limit=1"});
  const SweepOutcome outcome = run_sweep(plan);
  EXPECT_TRUE(outcome.truncated);
  EXPECT_EQ(outcome.stop_reason, smc::StopReason::Stalled);
  bool saw_b102 = false;
  for (const Diagnostic& d : outcome.warnings)
    if (d.code == "B102") saw_b102 = true;
  EXPECT_TRUE(saw_b102);
}

TEST(ChaosCache, CorruptedWritesAreQuarantinedOnReadAndRecomputed) {
  const std::string dir = fresh_dir("fmtree_chaos_corrupt_write");
  const SweepPlan plan = small_plan();
  const SweepOutcome baseline = run_sweep(plan);
  {
    // Every disk write publishes a silently corrupted payload.
    const fault::Scope faults({"cache.write:corrupt"});
    ResultCache cache(dir);
    const SweepOutcome chaos = run_sweep(plan, &cache);
    for (std::size_t i = 0; i < chaos.results.size(); ++i)
      EXPECT_TRUE(
          same_bits(chaos.results[i].report, baseline.results[i].report));
  }
  // A fresh cache (≈ new process) must detect every corrupted entry via the
  // content hash, quarantine it, recompute, and still match the baseline.
  ResultCache cache(dir);
  const SweepOutcome resumed = run_sweep(plan, &cache);
  EXPECT_EQ(resumed.cache_hits, 0u);
  for (std::size_t i = 0; i < resumed.results.size(); ++i) {
    EXPECT_TRUE(resumed.results[i].completed);
    EXPECT_TRUE(
        same_bits(resumed.results[i].report, baseline.results[i].report));
  }
  const ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.corrupt_entries, plan.jobs.size());
  EXPECT_EQ(st.quarantined, plan.jobs.size());
  EXPECT_EQ(std::distance(
                std::filesystem::directory_iterator(cache.quarantine_directory()),
                std::filesystem::directory_iterator{}),
            static_cast<std::ptrdiff_t>(plan.jobs.size()));
  // The warnings surfaced on the outcome (C101 per quarantined entry).
  std::size_t c101 = 0;
  for (const Diagnostic& d : resumed.warnings)
    if (d.code == "C101") ++c101;
  EXPECT_EQ(c101, plan.jobs.size());
}

// Satellite acceptance: randomized crash points mid-write. Each round arms
// seeded probabilistic faults across the cache-write, publish-rename and
// worker-task sites (each well above the 1% floor), runs the sweep (the
// "crashing" run), then resumes against the same directory with faults
// disarmed and asserts bitwise-identical reports.
TEST(ChaosCache, RandomizedCrashPointsResumeBitIdentically) {
  const SweepPlan plan = small_plan();
  const SweepOutcome baseline = run_sweep(plan);
  for (std::uint64_t round = 1; round <= 3; ++round) {
    const std::string dir =
        fresh_dir("fmtree_chaos_resume_" + std::to_string(round));
    {
      const fault::Scope faults(
          {"cache.write:corrupt,p=0.4,seed=" + std::to_string(round),
           "cache.rename:error,p=0.4,seed=" + std::to_string(round + 100),
           "sweep.task:error,p=0.05,seed=" + std::to_string(round + 200)});
      ResultCache cache(dir);
      SweepPlan crashing = plan;
      crashing.retry_backoff_ms = 1.0;  // keep the chaos suite fast
      const SweepOutcome chaos = run_sweep(crashing, &cache);
      EXPECT_EQ(chaos.jobs_failed, 0u) << "round " << round;
      for (std::size_t i = 0; i < chaos.results.size(); ++i)
        EXPECT_TRUE(
            same_bits(chaos.results[i].report, baseline.results[i].report))
            << "round " << round << " job " << i;
    }
    ResultCache cache(dir);
    const SweepOutcome resumed = run_sweep(plan, &cache);
    ASSERT_EQ(resumed.results.size(), baseline.results.size());
    for (std::size_t i = 0; i < resumed.results.size(); ++i) {
      EXPECT_TRUE(resumed.results[i].completed) << "round " << round;
      EXPECT_TRUE(
          same_bits(resumed.results[i].report, baseline.results[i].report))
          << "round " << round << " job " << i;
    }
  }
}

// The headline acceptance criterion: the EI-joint cost-curve sweep under
// ≥1% fault rates on the cache-write path plus worker faults completes via
// retries and resume, and the final report is bitwise-identical to the
// fault-free run.
TEST(ChaosSweep, EiJointCostCurveSurvivesInjectedFaultsBitIdentically) {
  const SweepPlan plan = eijoint::cost_curve_plan(
      eijoint::EiJointParameters::defaults(), small_settings(200));
  const SweepOutcome baseline = run_sweep(plan);

  const std::string dir = fresh_dir("fmtree_chaos_eijoint");
  {
    const fault::Scope faults({"cache.write:error,p=0.25,seed=5",
                               "cache.read:corrupt,p=0.10,seed=6",
                               "sweep.task:error,p=0.10,seed=7"});
    ResultCache cache(dir);
    SweepPlan chaos_plan = plan;
    chaos_plan.retry_backoff_ms = 1.0;
    const SweepOutcome chaos = run_sweep(chaos_plan, &cache);
    EXPECT_EQ(chaos.jobs_failed, 0u);
    ASSERT_EQ(chaos.results.size(), baseline.results.size());
    for (std::size_t i = 0; i < chaos.results.size(); ++i) {
      EXPECT_TRUE(chaos.results[i].completed) << plan.jobs[i].label;
      EXPECT_TRUE(
          same_bits(chaos.results[i].report, baseline.results[i].report))
          << plan.jobs[i].label;
    }
  }
  // Resume: whatever the faulted run managed to persist replays bit-exact;
  // everything else (failed writes, quarantined entries) recomputes to the
  // same bits.
  ResultCache cache(dir);
  const SweepOutcome resumed = run_sweep(plan, &cache);
  for (std::size_t i = 0; i < resumed.results.size(); ++i)
    EXPECT_TRUE(
        same_bits(resumed.results[i].report, baseline.results[i].report))
        << plan.jobs[i].label;
}

TEST(ChaosMetrics, RobustnessCountersObserveInjectionAndRetries) {
  obs::MetricsRegistry metrics;
  obs::Telemetry telemetry;
  telemetry.metrics = &metrics;
  const fault::Scope faults({"sweep.task:error,nth=1,limit=1"});
  const SweepOutcome outcome = run_sweep(small_plan(), nullptr, telemetry);
  EXPECT_EQ(outcome.jobs_failed, 0u);
  const std::string json = metrics.to_json();
  EXPECT_NE(json.find("\"sweep.retries\""), std::string::npos);
  EXPECT_NE(json.find("\"sweep.job_failures\""), std::string::npos);
  EXPECT_NE(json.find("\"cache.corrupt_entries\""), std::string::npos);
  EXPECT_NE(json.find("\"fault.injected\""), std::string::npos);
}

}  // namespace
}  // namespace fmtree::batch
