// Bitwise comparison of KpiReports for the cache/sweep identity tests: the
// batch layer promises cached and fresh results are *bit*-equal, so these
// helpers compare IEEE-754 bit patterns, not values (EXPECT_DOUBLE_EQ would
// conflate -0.0 with +0.0 and distinct NaNs).
#pragma once

#include <cstring>
#include <vector>

#include "smc/kpi.hpp"

namespace fmtree::batch_test {

inline bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

inline bool same_bits(const ConfidenceInterval& a, const ConfidenceInterval& b) {
  return same_bits(a.point, b.point) && same_bits(a.lo, b.lo) &&
         same_bits(a.hi, b.hi) && same_bits(a.confidence, b.confidence);
}

inline bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!same_bits(a[i], b[i])) return false;
  return true;
}

inline bool same_bits(const smc::KpiReport& a, const smc::KpiReport& b) {
  return same_bits(a.horizon, b.horizon) && a.trajectories == b.trajectories &&
         a.truncated == b.truncated && a.stop_reason == b.stop_reason &&
         same_bits(a.reliability, b.reliability) &&
         same_bits(a.expected_failures, b.expected_failures) &&
         same_bits(a.failures_per_year, b.failures_per_year) &&
         same_bits(a.availability, b.availability) &&
         same_bits(a.total_cost, b.total_cost) &&
         same_bits(a.cost_per_year, b.cost_per_year) &&
         same_bits(a.npv_cost, b.npv_cost) &&
         same_bits(a.mean_cost.inspection, b.mean_cost.inspection) &&
         same_bits(a.mean_cost.repair, b.mean_cost.repair) &&
         same_bits(a.mean_cost.replacement, b.mean_cost.replacement) &&
         same_bits(a.mean_cost.corrective, b.mean_cost.corrective) &&
         same_bits(a.mean_cost.downtime, b.mean_cost.downtime) &&
         same_bits(a.mean_inspections, b.mean_inspections) &&
         same_bits(a.mean_repairs, b.mean_repairs) &&
         same_bits(a.mean_replacements, b.mean_replacements) &&
         same_bits(a.failures_per_leaf, b.failures_per_leaf) &&
         same_bits(a.repairs_per_leaf, b.repairs_per_leaf);
}

}  // namespace fmtree::batch_test
