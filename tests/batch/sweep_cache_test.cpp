#include "batch/sweep.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "fmt/parser.hpp"
#include "report_bits.hpp"
#include "smc/kpi.hpp"
#include "util/error.hpp"

namespace fmtree::batch {
namespace {

using batch_test::same_bits;

const char* kModel = R"(
  toplevel T;
  T or A B;
  A ebe phases=3 mean=6 threshold=2 repair_cost=100;
  B be exp(0.05);
  inspection I period=0.25 cost=20 targets A;
  corrective cost=5000 delay=0.02;
)";

smc::AnalysisSettings small_settings(std::uint64_t trajectories = 300) {
  smc::AnalysisSettings s;
  s.horizon = 10.0;
  s.trajectories = trajectories;
  s.seed = 11;
  return s;
}

SweepPlan small_plan(std::uint64_t chunk = 2048, unsigned threads = 0) {
  SweepPlan plan;
  plan.chunk = chunk;
  plan.threads = threads;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SweepJob job;
    job.label = "seed-" + std::to_string(seed);
    job.model = fmt::parse_fmt(kModel);
    job.settings = small_settings();
    job.settings.seed = seed;
    plan.jobs.push_back(std::move(job));
  }
  return plan;
}

// The load-bearing invariant: a pooled sweep produces, for every job, the
// exact bits smc::analyze produces — at any thread count and chunk size.
TEST(SweepEngine, BitIdenticalToAnalyzeAtAnyThreadAndChunkCount) {
  const SweepPlan plan = small_plan();
  const SweepOutcome serial = run_sweep(small_plan(/*chunk=*/2048, /*threads=*/1));
  const SweepOutcome pooled = run_sweep(small_plan(/*chunk=*/7, /*threads=*/4));
  ASSERT_EQ(serial.results.size(), 3u);
  ASSERT_EQ(pooled.results.size(), 3u);
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    const smc::KpiReport direct =
        smc::analyze(plan.jobs[i].model, plan.jobs[i].settings);
    EXPECT_TRUE(serial.results[i].completed);
    EXPECT_TRUE(pooled.results[i].completed);
    EXPECT_TRUE(same_bits(serial.results[i].report, direct));
    EXPECT_TRUE(same_bits(pooled.results[i].report, direct));
  }
  EXPECT_EQ(pooled.trajectories_simulated, 900u);
  EXPECT_FALSE(pooled.truncated);
}

TEST(SweepEngine, RejectsBadPlansAndSettings) {
  SweepPlan bad_chunk = small_plan();
  bad_chunk.chunk = 0;
  EXPECT_THROW(run_sweep(bad_chunk), DomainError);
  SweepPlan bad_settings = small_plan();
  bad_settings.jobs[1].settings.horizon = -1.0;
  EXPECT_THROW(run_sweep(bad_settings), DomainError);
}

TEST(SweepEngine, AdaptiveJobsFallBackButStayExactAndCached) {
  SweepPlan plan;
  SweepJob job;
  job.label = "adaptive";
  job.model = fmt::parse_fmt(kModel);
  job.settings = small_settings(2000);
  job.settings.target_relative_error = 0.2;
  job.settings.batch = 100;
  plan.jobs.push_back(std::move(job));

  ResultCache cache;
  const SweepOutcome cold = run_sweep(plan, &cache);
  ASSERT_TRUE(cold.results[0].completed);
  const smc::KpiReport direct =
      smc::analyze(plan.jobs[0].model, plan.jobs[0].settings);
  EXPECT_TRUE(same_bits(cold.results[0].report, direct));

  const SweepOutcome warm = run_sweep(plan, &cache);
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_TRUE(warm.results[0].cache_hit);
  EXPECT_TRUE(same_bits(warm.results[0].report, direct));
}

TEST(SweepEngine, StoppedPlanReturnsIncompleteJobsAndCachesNothing) {
  SweepPlan plan = small_plan();
  smc::RunControl control;
  control.request_stop();  // stop before the first trajectory boundary
  plan.control = &control;
  ResultCache cache;
  const SweepOutcome outcome = run_sweep(plan, &cache);
  EXPECT_TRUE(outcome.truncated);
  EXPECT_EQ(outcome.stop_reason, smc::StopReason::Interrupted);
  for (const JobResult& r : outcome.results) EXPECT_FALSE(r.completed);
  EXPECT_EQ(cache.size(), 0u);
}

// Acceptance criterion of the batch subsystem: replaying the EI-joint cost
// curve against a warm cache is at least 5x faster than computing it, serves
// every job from the cache, and returns bit-identical reports.
TEST(SweepEngine, EiJointCostCurveWarmReplayIsFastAndBitIdentical) {
  const SweepPlan plan = eijoint::cost_curve_plan(
      eijoint::EiJointParameters::defaults(), small_settings(400));
  ASSERT_EQ(plan.jobs.size(), eijoint::cost_curve_frequencies().size());

  using clock = std::chrono::steady_clock;
  ResultCache cache;
  const auto cold_start = clock::now();
  const SweepOutcome cold = run_sweep(plan, &cache);
  const double cold_s =
      std::chrono::duration<double>(clock::now() - cold_start).count();
  EXPECT_EQ(cold.cache_misses, plan.jobs.size());

  const auto warm_start = clock::now();
  const SweepOutcome warm = run_sweep(plan, &cache);
  const double warm_s =
      std::chrono::duration<double>(clock::now() - warm_start).count();

  EXPECT_EQ(warm.cache_hits, plan.jobs.size());
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.trajectories_simulated, 0u);
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    EXPECT_TRUE(warm.results[i].cache_hit);
    EXPECT_TRUE(same_bits(warm.results[i].report, cold.results[i].report));
  }
  EXPECT_GE(cold_s, 5.0 * warm_s)
      << "warm replay " << warm_s << "s vs cold " << cold_s << "s";
}

}  // namespace
}  // namespace fmtree::batch
