// Scalar-vs-batch engine contract: the two trajectory kernels draw from
// different RNG families (xoshiro streams vs Philox counter streams), so
// their outputs are never compared bit-for-bit — the contract is
//
//  * statistical equivalence: on the case-study models every KPI estimated
//    by one engine falls inside (overlaps) the other engine's confidence
//    interval, because both implement the same FMT semantics;
//  * per-engine determinism: the batch engine's report is bit-identical at
//    any thread count, lane width, and chunk split (counter streams make
//    trajectory i a pure function of (seed, i)); the scalar engine ignores
//    the batch-only knobs entirely, so enabling them can never disturb the
//    scalar goldens pinned in tests/integration/regression_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../batch/report_bits.hpp"
#include "fmt/parser.hpp"
#include "sim/batch_executor.hpp"
#include "sim/fmt_executor.hpp"
#include "smc/kpi.hpp"
#include "smc/runner.hpp"

namespace fmtree::smc {
namespace {

fmt::FaultMaintenanceTree load_model(const std::string& name) {
  std::ifstream file(std::string(FMTREE_SOURCE_DIR) + "/models/" + name + ".fmt");
  std::ostringstream text;
  text << file.rdbuf();
  return fmt::parse_fmt(text.str());
}

bool overlaps(const ConfidenceInterval& a, const ConfidenceInterval& b) {
  return a.lo <= b.hi && b.lo <= a.hi;
}

AnalysisSettings base_settings(Engine engine) {
  AnalysisSettings s;
  s.horizon = 10.0;
  s.trajectories = 20000;
  s.seed = 20160628;
  s.threads = 1;
  s.engine = engine;
  return s;
}

void expect_statistical_agreement(const std::string& model_name) {
  const fmt::FaultMaintenanceTree model = load_model(model_name);
  const KpiReport scalar = analyze(model, base_settings(Engine::Scalar));
  const KpiReport batch = analyze(model, base_settings(Engine::Batch));
  EXPECT_TRUE(overlaps(scalar.reliability, batch.reliability))
      << scalar.reliability.point << " vs " << batch.reliability.point;
  EXPECT_TRUE(overlaps(scalar.expected_failures, batch.expected_failures))
      << scalar.expected_failures.point << " vs " << batch.expected_failures.point;
  EXPECT_TRUE(overlaps(scalar.availability, batch.availability))
      << scalar.availability.point << " vs " << batch.availability.point;
  EXPECT_TRUE(overlaps(scalar.total_cost, batch.total_cost))
      << scalar.total_cost.point << " vs " << batch.total_cost.point;
}

TEST(EngineEquivalence, EiJointKpisAgreeStatistically) {
  expect_statistical_agreement("ei_joint");
}

TEST(EngineEquivalence, CompressorKpisAgreeStatistically) {
  expect_statistical_agreement("compressor");
}

// ---- Batch-engine determinism ----------------------------------------------

bool bitwise_equal(const TrajectorySummary& a, const TrajectorySummary& b) {
  using batch_test::same_bits;
  return same_bits(a.first_failure_time, b.first_failure_time) &&
         a.failures == b.failures && same_bits(a.downtime, b.downtime) &&
         same_bits(a.cost.inspection, b.cost.inspection) &&
         same_bits(a.cost.repair, b.cost.repair) &&
         same_bits(a.cost.replacement, b.cost.replacement) &&
         same_bits(a.cost.corrective, b.cost.corrective) &&
         same_bits(a.cost.downtime, b.cost.downtime) &&
         same_bits(a.discounted_total, b.discounted_total) &&
         a.inspections == b.inspections && a.repairs == b.repairs &&
         a.replacements == b.replacements;
}

bool bitwise_equal(const BatchResult& a, const BatchResult& b) {
  if (a.summaries.size() != b.summaries.size()) return false;
  for (std::size_t i = 0; i < a.summaries.size(); ++i)
    if (!bitwise_equal(a.summaries[i], b.summaries[i])) return false;
  return a.failures_per_leaf == b.failures_per_leaf &&
         a.repairs_per_leaf == b.repairs_per_leaf && a.completed == b.completed;
}

TEST(BatchDeterminism, ReportBitsInvariantToThreadCount) {
  const fmt::FaultMaintenanceTree model = load_model("ei_joint");
  const sim::FmtSimulator simulator(model);
  sim::SimOptions opts;
  opts.horizon = 10.0;
  opts.engine = Engine::Batch;
  const BatchResult one = ParallelRunner(simulator, 1).run(99, 0, 2000, opts);
  const BatchResult three = ParallelRunner(simulator, 3).run(99, 0, 2000, opts);
  const BatchResult seven = ParallelRunner(simulator, 7).run(99, 0, 2000, opts);
  EXPECT_TRUE(bitwise_equal(one, three));
  EXPECT_TRUE(bitwise_equal(one, seven));
}

TEST(BatchDeterminism, ReportBitsInvariantToLaneWidth) {
  const fmt::FaultMaintenanceTree model = load_model("ei_joint");
  const sim::FmtSimulator simulator(model);
  const ParallelRunner runner(simulator, 2);
  sim::SimOptions opts;
  opts.horizon = 10.0;
  opts.engine = Engine::Batch;
  const BatchResult dflt = runner.run(7, 0, 2000, opts);
  for (unsigned width : {1u, 3u, 16u, 64u}) {
    sim::SimOptions w = opts;
    w.lane_width = width;
    EXPECT_TRUE(bitwise_equal(dflt, runner.run(7, 0, 2000, w)))
        << "lane width " << width;
  }
}

TEST(BatchDeterminism, ChunkSplitsReproduceEveryTrajectoryBit) {
  // Lane L of any chunk [first, first+n) runs CounterStream(seed, first+L):
  // re-running an arbitrary sub-range must reproduce the same trajectories
  // bit-for-bit, independent of how the full range was originally split.
  const fmt::FaultMaintenanceTree model = load_model("compressor");
  const sim::BatchExecutor executor(model);
  sim::SimOptions opts;
  opts.horizon = 10.0;
  sim::BatchWorkspace whole, split;
  executor.run(5, 0, 512, opts, whole);
  const std::vector<sim::TrajectoryResult> reference = whole.results;
  for (std::uint32_t first = 0; first < 512; first += 7) {
    const std::uint32_t n = std::min<std::uint32_t>(7, 512 - first);
    executor.run(5, first, n, opts, split);
    for (std::uint32_t lane = 0; lane < n; ++lane) {
      const sim::TrajectoryResult& a = reference[first + lane];
      const sim::TrajectoryResult& b = split.results[lane];
      ASSERT_EQ(a.events, b.events) << "trajectory " << first + lane;
      ASSERT_TRUE(batch_test::same_bits(a.first_failure_time, b.first_failure_time));
      ASSERT_TRUE(batch_test::same_bits(a.downtime, b.downtime));
      ASSERT_TRUE(batch_test::same_bits(a.cost.total(), b.cost.total()));
      ASSERT_TRUE(
          batch_test::same_bits(a.discounted_cost.total(), b.discounted_cost.total()));
      ASSERT_EQ(a.failures, b.failures);
      ASSERT_EQ(a.repairs_per_leaf, b.repairs_per_leaf);
      ASSERT_EQ(a.failures_per_leaf, b.failures_per_leaf);
    }
  }
}

// ---- Scalar engine must ignore batch-only knobs -----------------------------

TEST(ScalarEngine, IgnoresLaneWidthAndStaysBitStable) {
  const fmt::FaultMaintenanceTree model = load_model("ei_joint");
  AnalysisSettings plain = base_settings(Engine::Scalar);
  plain.trajectories = 2000;
  AnalysisSettings knobs = plain;
  knobs.lane_width = 64;
  knobs.threads = 3;
  EXPECT_TRUE(batch_test::same_bits(analyze(model, plain), analyze(model, knobs)));
}

}  // namespace
}  // namespace fmtree::smc
