#include <gtest/gtest.h>

#include <cmath>

#include "smc/kpi.hpp"
#include "smc/runner.hpp"
#include "util/error.hpp"

namespace fmtree::smc {
namespace {

using fmt::CorrectivePolicy;
using fmt::DegradationModel;
using fmt::FaultMaintenanceTree;
using fmt::NodeId;

FaultMaintenanceTree exponential_leaf(double rate) {
  FaultMaintenanceTree m;
  m.set_top(m.add_basic_event("leaf", Distribution::exponential(rate)));
  return m;
}

FaultMaintenanceTree series_two_exponentials() {
  FaultMaintenanceTree m;
  const NodeId a = m.add_basic_event("a", Distribution::exponential(0.3));
  const NodeId b = m.add_basic_event("b", Distribution::exponential(0.2));
  m.set_top(m.add_or("top", {a, b}));
  return m;
}

AnalysisSettings fast_settings(double horizon, std::uint64_t n = 20000) {
  AnalysisSettings s;
  s.horizon = horizon;
  s.trajectories = n;
  s.seed = 11;
  s.threads = 4;
  return s;
}

// ---- Runner ------------------------------------------------------------------

TEST(ParallelRunner, DeterministicAcrossThreadCounts) {
  const FaultMaintenanceTree m = series_two_exponentials();
  const sim::FmtSimulator simulator(m);
  sim::SimOptions opts;
  opts.horizon = 5.0;
  const BatchResult r1 = ParallelRunner(simulator, 1).run(77, 0, 500, opts);
  const BatchResult r4 = ParallelRunner(simulator, 4).run(77, 0, 500, opts);
  const BatchResult r7 = ParallelRunner(simulator, 7).run(77, 0, 500, opts);
  ASSERT_EQ(r1.summaries.size(), 500u);
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_DOUBLE_EQ(r1.summaries[i].first_failure_time,
                     r4.summaries[i].first_failure_time);
    EXPECT_DOUBLE_EQ(r1.summaries[i].first_failure_time,
                     r7.summaries[i].first_failure_time);
    EXPECT_EQ(r1.summaries[i].failures, r7.summaries[i].failures);
  }
  EXPECT_EQ(r1.failures_per_leaf, r4.failures_per_leaf);
  EXPECT_EQ(r1.failures_per_leaf, r7.failures_per_leaf);
}

TEST(ParallelRunner, FirstOffsetContinuesStreams) {
  const FaultMaintenanceTree m = series_two_exponentials();
  const sim::FmtSimulator simulator(m);
  sim::SimOptions opts;
  opts.horizon = 5.0;
  const ParallelRunner runner(simulator, 2);
  const BatchResult all = runner.run(5, 0, 100, opts);
  const BatchResult tail = runner.run(5, 60, 40, opts);
  for (std::size_t i = 0; i < 40; ++i)
    EXPECT_DOUBLE_EQ(all.summaries[60 + i].first_failure_time,
                     tail.summaries[i].first_failure_time);
}

TEST(ParallelRunner, RejectsTraces) {
  const FaultMaintenanceTree m = series_two_exponentials();
  const sim::FmtSimulator simulator(m);
  sim::Trace trace;
  sim::SimOptions opts;
  opts.horizon = 1.0;
  opts.trace = &trace;
  EXPECT_THROW(ParallelRunner(simulator).run(1, 0, 1, opts), DomainError);
}

// ---- KPIs vs closed forms ------------------------------------------------------

TEST(Kpi, ReliabilityMatchesExponentialLaw) {
  const FaultMaintenanceTree m = exponential_leaf(0.5);
  const KpiReport k = analyze(m, fast_settings(2.0, 40000));
  const double expected = std::exp(-0.5 * 2.0);
  EXPECT_NEAR(k.reliability.point, expected, 0.01);
  EXPECT_TRUE(k.reliability.contains(expected));
}

TEST(Kpi, ReliabilityOfSeriesSystem) {
  // Series of exp(0.3) and exp(0.2): survival = exp(-0.5 t).
  const FaultMaintenanceTree m = series_two_exponentials();
  const KpiReport k = analyze(m, fast_settings(3.0, 40000));
  EXPECT_NEAR(k.reliability.point, std::exp(-0.5 * 3.0), 0.01);
}

TEST(Kpi, ExpectedFailuresOfPoissonRenewal) {
  // Exponential leaf with instant corrective renewal is a Poisson process:
  // E[N(t)] = rate * t.
  FaultMaintenanceTree m = exponential_leaf(0.4);
  m.set_corrective(CorrectivePolicy{true, 0.0, 0, 0});
  const KpiReport k = analyze(m, fast_settings(10.0, 40000));
  EXPECT_NEAR(k.expected_failures.point, 4.0, 0.05);
  EXPECT_TRUE(k.expected_failures.contains(4.0));
  EXPECT_NEAR(k.failures_per_year.point, 0.4, 0.005);
}

TEST(Kpi, AvailabilityOfRenewalWithDelay) {
  // Failure rate r with repair delay d: long-run availability ~ m/(m+d)
  // where m = 1/r is the mean up time (alternating renewal process).
  FaultMaintenanceTree m = exponential_leaf(1.0);
  m.set_corrective(CorrectivePolicy{true, 0.25, 0, 0});
  const KpiReport k = analyze(m, fast_settings(200.0, 4000));
  EXPECT_NEAR(k.availability.point, 1.0 / 1.25, 0.01);
}

TEST(Kpi, CostAccountingMatchesCounts) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", DegradationModel::erlang(3, 2.0, 2),
                             fmt::RepairSpec{"fix", 100});
  m.set_top(a);
  m.add_inspection(fmt::InspectionModule{"i", 0.5, -1, 10, {a}});
  m.set_corrective(CorrectivePolicy{true, 0.0, 1000, 0});
  const KpiReport k = analyze(m, fast_settings(10.0, 5000));
  EXPECT_NEAR(k.mean_cost.inspection, k.mean_inspections * 10, 1e-9);
  EXPECT_NEAR(k.mean_cost.repair, k.mean_repairs * 100, 1e-9);
  EXPECT_NEAR(k.mean_cost.corrective, k.expected_failures.point * 1000, 1e-9);
  EXPECT_NEAR(k.total_cost.point,
              k.mean_cost.inspection + k.mean_cost.repair + k.mean_cost.corrective +
                  k.mean_cost.replacement + k.mean_cost.downtime,
              1e-9);
}

TEST(Kpi, PerLeafAttributionSumsToTotal) {
  FaultMaintenanceTree m = series_two_exponentials();
  m.set_corrective(CorrectivePolicy{true, 0.0, 0, 0});
  const KpiReport k = analyze(m, fast_settings(5.0, 20000));
  const double sum = k.failures_per_leaf[0] + k.failures_per_leaf[1];
  EXPECT_NEAR(sum, k.expected_failures.point, 1e-9);
  // Rate 0.3 leaf causes ~60% of failures.
  EXPECT_NEAR(k.failures_per_leaf[0] / sum, 0.6, 0.02);
}

TEST(Kpi, SequentialStoppingReachesTarget) {
  FaultMaintenanceTree m = exponential_leaf(0.5);
  m.set_corrective(CorrectivePolicy{true, 0.0, 0, 0});
  AnalysisSettings s = fast_settings(10.0, 2000000);
  s.target_relative_error = 0.02;
  s.batch = 4096;
  const KpiReport k = analyze(m, s);
  EXPECT_LT(k.trajectories, 2000000u);  // stopped early
  EXPECT_LE(k.expected_failures.half_width(),
            0.02 * k.expected_failures.point * 1.05);
}

TEST(Kpi, SettingsValidation) {
  const FaultMaintenanceTree m = exponential_leaf(1.0);
  AnalysisSettings s;
  s.horizon = 0;
  EXPECT_THROW(analyze(m, s), DomainError);
  s.horizon = 1;
  s.trajectories = 0;
  EXPECT_THROW(analyze(m, s), DomainError);
  s.trajectories = 10;
  s.confidence = 1.5;
  EXPECT_THROW(analyze(m, s), DomainError);
}

// ---- Curves ---------------------------------------------------------------------

TEST(Curves, ReliabilityCurveMatchesExponential) {
  const FaultMaintenanceTree m = exponential_leaf(0.3);
  const auto grid = linspace_grid(10.0, 10);
  const auto curve = reliability_curve(m, grid, fast_settings(10.0, 40000));
  ASSERT_EQ(curve.size(), grid.size());
  for (const CurvePoint& pt : curve) {
    const double expected = std::exp(-0.3 * pt.t);
    EXPECT_NEAR(pt.value.point, expected, 0.015) << "t=" << pt.t;
  }
  EXPECT_DOUBLE_EQ(curve.front().value.point, 1.0);  // R(0) = 1
}

TEST(Curves, ReliabilityCurveIsNonincreasing) {
  const FaultMaintenanceTree m = series_two_exponentials();
  const auto curve =
      reliability_curve(m, linspace_grid(8.0, 16), fast_settings(8.0, 10000));
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LE(curve[i].value.point, curve[i - 1].value.point + 1e-12);
}

TEST(Curves, ExpectedFailuresCurveLinearForPoisson) {
  FaultMaintenanceTree m = exponential_leaf(0.5);
  m.set_corrective(CorrectivePolicy{true, 0.0, 0, 0});
  const auto curve =
      expected_failures_curve(m, linspace_grid(8.0, 8), fast_settings(8.0, 10000));
  for (const CurvePoint& pt : curve)
    EXPECT_NEAR(pt.value.point, 0.5 * pt.t, 0.06 + 0.02 * pt.t) << pt.t;
  // Nondecreasing.
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i].value.point, curve[i - 1].value.point - 1e-12);
}

TEST(Curves, GridHelpersValidate) {
  EXPECT_THROW(linspace_grid(0, 5), DomainError);
  EXPECT_THROW(linspace_grid(5, 0), DomainError);
  const auto g = linspace_grid(10, 5);
  ASSERT_EQ(g.size(), 6u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 10.0);
}

// ---- MTTF -------------------------------------------------------------------------

TEST(Mttf, MatchesExponentialMean) {
  const FaultMaintenanceTree m = exponential_leaf(0.5);
  AnalysisSettings s = fast_settings(200.0, 20000);  // horizon >> mean: few censored
  const MttfEstimate est = mean_time_to_failure(m, s);
  EXPECT_NEAR(est.mttf.point, 2.0, 0.05);
  EXPECT_LT(est.censored, 20u);
}

TEST(Mttf, CensoringReported) {
  const FaultMaintenanceTree m = exponential_leaf(0.01);  // mean 100
  const MttfEstimate est = mean_time_to_failure(m, fast_settings(1.0, 1000));
  EXPECT_GT(est.censored, 950u);  // nearly everything survives 1 year
  EXPECT_LE(est.mttf.point, 1.0);
}

}  // namespace
}  // namespace fmtree::smc
