// Net-present-value (discounted) cost accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/fmt_executor.hpp"
#include "smc/kpi.hpp"
#include "util/error.hpp"

namespace fmtree::smc {
namespace {

using fmt::DegradationModel;
using fmt::FaultMaintenanceTree;
using fmt::NodeId;

DegradationModel det_phases(int n, int threshold, double unit = 1.0) {
  std::vector<Distribution> phases(static_cast<std::size_t>(n),
                                   Distribution::deterministic(unit));
  return DegradationModel(std::move(phases), threshold);
}

TEST(Npv, DeterministicEventsDiscountExactly) {
  // Inspections at t = 1, 2, 3 costing 100 each; discount rate 0.1:
  // NPV = 100 (e^-0.1 + e^-0.2 + e^-0.3).
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(2, 2, 100.0), fmt::RepairSpec{"fix", 0});
  m.set_top(a);
  m.add_inspection(fmt::InspectionModule{"i", 1.0, -1, 100.0, {a}});
  const sim::FmtSimulator simulator(m);
  sim::SimOptions opts;
  opts.horizon = 3.5;
  opts.discount_rate = 0.1;
  const sim::TrajectoryResult r = simulator.run(RandomStream(1, 0), opts);
  const double expected =
      100 * (std::exp(-0.1) + std::exp(-0.2) + std::exp(-0.3));
  EXPECT_NEAR(r.discounted_cost.inspection, expected, 1e-10);
  EXPECT_DOUBLE_EQ(r.cost.inspection, 300.0);
}

TEST(Npv, DowntimeIntegralDiscounted) {
  // Leaf fails at 1, corrective completes at 2 (downtime [1,2]), rate 50/yr,
  // discount 0.2: NPV = 50 (e^-0.2 - e^-0.4)/0.2.
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(1, 2, 1.0));
  m.set_top(a);
  m.set_corrective(fmt::CorrectivePolicy{true, 1.0, 1000.0, 50.0});
  const sim::FmtSimulator simulator(m);
  sim::SimOptions opts;
  opts.horizon = 1.5;  // downtime clamped at horizon: [1, 1.5]
  opts.discount_rate = 0.2;
  const sim::TrajectoryResult r = simulator.run(RandomStream(1, 0), opts);
  const double expected = 50.0 * (std::exp(-0.2) - std::exp(-0.3)) / 0.2;
  EXPECT_NEAR(r.discounted_cost.downtime, expected, 1e-10);
  // Failure cost of 1000 at t = 1 discounts to 1000 e^-0.2.
  EXPECT_NEAR(r.discounted_cost.corrective, 1000 * std::exp(-0.2), 1e-10);
}

TEST(Npv, ZeroRateEqualsUndiscounted) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", DegradationModel::erlang(3, 2.0, 2),
                             fmt::RepairSpec{"fix", 10});
  m.set_top(a);
  m.add_inspection(fmt::InspectionModule{"i", 0.25, -1, 5, {a}});
  m.set_corrective(fmt::CorrectivePolicy{true, 0.1, 500, 20});
  const sim::FmtSimulator simulator(m);
  sim::SimOptions opts;
  opts.horizon = 30.0;
  opts.discount_rate = 0.0;
  const sim::TrajectoryResult r = simulator.run(RandomStream(8, 2), opts);
  EXPECT_DOUBLE_EQ(r.discounted_cost.total(), r.cost.total());
}

TEST(Npv, NegativeRateRejected) {
  FaultMaintenanceTree m;
  m.set_top(m.add_basic_event("a", Distribution::exponential(1)));
  const sim::FmtSimulator simulator(m);
  sim::SimOptions opts;
  opts.horizon = 1.0;
  opts.discount_rate = -0.1;
  EXPECT_THROW(simulator.run(RandomStream(1, 0), opts), DomainError);
}

TEST(Npv, KpiReportExposesNpv) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", DegradationModel::erlang(3, 2.0, 2),
                             fmt::RepairSpec{"fix", 10});
  m.set_top(a);
  m.add_inspection(fmt::InspectionModule{"i", 0.25, -1, 5, {a}});
  m.set_corrective(fmt::CorrectivePolicy{true, 0.0, 500, 0});

  AnalysisSettings s;
  s.horizon = 20;
  s.trajectories = 3000;
  s.seed = 2;
  s.discount_rate = 0.05;
  const KpiReport k = analyze(m, s);
  // Discounting strictly reduces cost, but not below e^{-r h} of it.
  EXPECT_LT(k.npv_cost.point, k.total_cost.point);
  EXPECT_GT(k.npv_cost.point, k.total_cost.point * std::exp(-0.05 * 20));

  s.discount_rate = 0.0;
  const KpiReport k0 = analyze(m, s);
  EXPECT_DOUBLE_EQ(k0.npv_cost.point, k0.total_cost.point);
}

}  // namespace
}  // namespace fmtree::smc
