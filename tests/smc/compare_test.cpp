#include "smc/compare.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "util/error.hpp"

namespace fmtree::smc {
namespace {

using fmt::FaultMaintenanceTree;

AnalysisSettings quick(std::uint64_t n = 4000, double horizon = 20.0) {
  AnalysisSettings s;
  s.horizon = horizon;
  s.trajectories = n;
  s.seed = 31;
  return s;
}

TEST(CompareModels, IdenticalModelsGiveZeroDifference) {
  const auto model = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                             eijoint::current_policy());
  const auto model2 = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                              eijoint::current_policy());
  const PairedComparison cmp = compare_models(model, model2, quick(500));
  EXPECT_DOUBLE_EQ(cmp.failures_diff.point, 0.0);
  EXPECT_DOUBLE_EQ(cmp.cost_diff.point, 0.0);
  EXPECT_DOUBLE_EQ(cmp.failures_diff.half_width(), 0.0);
  EXPECT_FALSE(cmp.failures_significantly_different());
}

TEST(CompareModels, DetectsThatInspectionsReduceFailures) {
  const auto factory = eijoint::ei_joint_factory(eijoint::EiJointParameters::defaults());
  const FaultMaintenanceTree sparse = factory(eijoint::inspections_per_year(1));
  const FaultMaintenanceTree current = factory(eijoint::current_policy());
  const PairedComparison cmp = compare_models(sparse, current, quick());
  EXPECT_GT(cmp.failures_diff.lo, 0.0);  // sparse has strictly more failures
  EXPECT_TRUE(cmp.failures_significantly_different());
}

TEST(CompareModels, PairedTighterThanUnpairedOnCloseVariants) {
  // 3x vs 4x inspections are so close that independent runs at this budget
  // cannot rank them; the paired estimator's CI must be narrower than the
  // difference of two independent CIs combined.
  const auto factory = eijoint::ei_joint_factory(eijoint::EiJointParameters::defaults());
  const FaultMaintenanceTree a = factory(eijoint::inspections_per_year(3));
  const FaultMaintenanceTree b = factory(eijoint::current_policy());
  const AnalysisSettings s = quick(6000);
  const PairedComparison paired = compare_models(a, b, s);

  AnalysisSettings sa = s;
  const KpiReport ka = analyze(a, sa);
  sa.seed = s.seed + 1;  // independent second run
  const KpiReport kb = analyze(b, sa);
  const double unpaired_hw = std::sqrt(
      std::pow(ka.expected_failures.half_width(), 2) +
      std::pow(kb.expected_failures.half_width(), 2));
  EXPECT_LT(paired.failures_diff.half_width(), unpaired_hw);
}

TEST(CompareModels, Validation) {
  const auto model = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                             eijoint::current_policy());
  AnalysisSettings s = quick();
  s.horizon = 0;
  EXPECT_THROW(compare_models(model, model, s), DomainError);
  s.horizon = 1;
  s.trajectories = 0;
  EXPECT_THROW(compare_models(model, model, s), DomainError);
}

TEST(FailureTimeQuantiles, MatchExponentialClosedForm) {
  FaultMaintenanceTree m;
  m.set_top(m.add_basic_event("a", Distribution::exponential(0.5)));
  AnalysisSettings s = quick(40000, 100.0);
  const auto q = failure_time_quantiles(m, {0.25, 0.5, 0.9}, s);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_NEAR(q[0], -std::log(0.75) / 0.5, 0.05);
  EXPECT_NEAR(q[1], -std::log(0.5) / 0.5, 0.06);
  EXPECT_NEAR(q[2], -std::log(0.1) / 0.5, 0.25);
}

TEST(FailureTimeQuantiles, CensoredTailIsInfinite) {
  FaultMaintenanceTree m;
  m.set_top(m.add_basic_event("a", Distribution::exponential(0.01)));  // mean 100
  AnalysisSettings s = quick(2000, 5.0);  // ~95% survive the horizon
  const auto q = failure_time_quantiles(m, {0.5, 0.99}, s);
  EXPECT_TRUE(std::isinf(q[0]));
  EXPECT_TRUE(std::isinf(q[1]));
}

TEST(FailureTimeQuantiles, MonotoneInProbability) {
  const auto model = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                             eijoint::corrective_only());
  const auto q =
      failure_time_quantiles(model, {0.1, 0.3, 0.5, 0.7, 0.9}, quick(10000, 50.0));
  for (std::size_t i = 1; i < q.size(); ++i) EXPECT_GE(q[i], q[i - 1]);
}

TEST(FailureTimeQuantiles, Validation) {
  FaultMaintenanceTree m;
  m.set_top(m.add_basic_event("a", Distribution::exponential(1)));
  EXPECT_THROW(failure_time_quantiles(m, {}, quick(10)), DomainError);
  EXPECT_THROW(failure_time_quantiles(m, {1.5}, quick(10)), DomainError);
}

}  // namespace
}  // namespace fmtree::smc
