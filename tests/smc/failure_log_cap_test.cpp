// The failure-log memory cap: ParallelRunner bounds the total number of
// retained sim::FailureRecord entries per batch, drops whole per-trajectory
// logs beyond the budget (flagging the batch), and the statistics layer
// refuses to compute a curve from incomplete logs.
#include <gtest/gtest.h>

#include "fmt/parser.hpp"
#include "obs/metrics.hpp"
#include "sim/fmt_executor.hpp"
#include "smc/kpi.hpp"
#include "smc/runner.hpp"
#include "util/error.hpp"

namespace fmtree::smc {
namespace {

// A fast-failing renewal model so every trajectory logs several failures.
const char* kChattyModel = R"(
toplevel System;
System or Part;
Part be exp(2.0);
corrective cost=100 delay=0;
)";

TEST(FailureLogCap, UncappedRunKeepsEveryLog) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kChattyModel);
  const sim::FmtSimulator simulator(model);
  const ParallelRunner runner(simulator, 2);
  sim::SimOptions opts;
  opts.horizon = 5.0;
  opts.record_failure_log = true;
  const BatchResult batch = runner.run(7, 0, 200, opts);
  EXPECT_FALSE(batch.failure_logs_truncated);
  ASSERT_EQ(batch.failure_logs.size(), 200u);
  std::size_t records = 0;
  for (const auto& log : batch.failure_logs) records += log.size();
  EXPECT_GT(records, 200u);  // ~10 failures per trajectory at rate 2, t=5
}

TEST(FailureLogCap, CapDropsWholeLogsAndFlagsTheBatch) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kChattyModel);
  const sim::FmtSimulator simulator(model);
  const ParallelRunner runner(simulator, 2);

  sim::SimOptions opts;
  opts.horizon = 5.0;
  opts.record_failure_log = true;
  opts.failure_log_cap = 50;  // far below the ~2000 records the run produces
  obs::MetricsRegistry metrics;
  opts.telemetry.metrics = &metrics;
  const BatchResult batch = runner.run(7, 0, 200, opts);

  EXPECT_TRUE(batch.failure_logs_truncated);
  ASSERT_EQ(batch.failure_logs.size(), 200u);  // slots stay index-aligned
  std::size_t kept_records = 0, kept_logs = 0, dropped_logs = 0;
  for (const auto& log : batch.failure_logs) {
    if (log.empty()) {
      ++dropped_logs;
    } else {
      ++kept_logs;
      kept_records += log.size();
    }
  }
  EXPECT_LE(kept_records, 50u);  // the budget bounds retained records
  EXPECT_GT(kept_logs, 0u);      // but some logs fit
  EXPECT_GT(dropped_logs, 0u);
  // Every dropped record is counted, and summaries are unaffected.
  EXPECT_GT(metrics.counter_value("smc.failure_log_records_dropped"), 0u);
  EXPECT_EQ(batch.summaries.size(), 200u);
  EXPECT_EQ(batch.completed, 200u);
}

TEST(FailureLogCap, SingleThreadedCapKeepsAPrefixDeterministically) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kChattyModel);
  const sim::FmtSimulator simulator(model);
  const ParallelRunner runner(simulator, 1);
  sim::SimOptions opts;
  opts.horizon = 5.0;
  opts.record_failure_log = true;
  opts.failure_log_cap = 50;
  const BatchResult a = runner.run(7, 0, 200, opts);
  const BatchResult b = runner.run(7, 0, 200, opts);
  // At one thread trajectories run in index order, so which logs are
  // retained is a pure function of (seed, cap): repeat runs agree exactly.
  ASSERT_EQ(a.failure_logs.size(), b.failure_logs.size());
  for (std::size_t i = 0; i < a.failure_logs.size(); ++i)
    EXPECT_EQ(a.failure_logs[i].size(), b.failure_logs[i].size()) << i;
}

TEST(FailureLogCap, CurveEstimationRefusesTruncatedLogs) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kChattyModel);
  AnalysisSettings s;
  s.horizon = 5.0;
  s.trajectories = 200;
  s.seed = 7;
  s.threads = 2;
  s.failure_log_cap = 50;
  EXPECT_THROW(expected_failures_curve(model, linspace_grid(5.0, 10), s),
               ResourceLimitError);

  s.failure_log_cap = std::uint64_t{1} << 24;
  const auto curve = expected_failures_curve(model, linspace_grid(5.0, 10), s);
  EXPECT_EQ(curve.size(), 11u);
  EXPECT_GT(curve.back().value.point, 5.0);  // E[failures by t=5] ~ 10
}

}  // namespace
}  // namespace fmtree::smc
