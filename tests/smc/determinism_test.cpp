// Cross-thread determinism regression tests. The contract (smc/runner.hpp):
// trajectory i always runs on RandomStream(seed, start + i), so every
// aggregate — analyze(), the failure-log-driven curves, adaptive batching —
// is a pure function of (model, settings minus threads). These tests pin
// that down with exact (bitwise) comparisons on the shipped EI-joint model.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "fmt/parser.hpp"
#include "smc/kpi.hpp"

namespace fmtree::smc {
namespace {

std::string read_model_file(const std::string& name) {
  for (const std::string& prefix : {std::string("models/"), std::string("../models/"),
                                    std::string(FMTREE_SOURCE_DIR "/models/")}) {
    std::ifstream f(prefix + name);
    if (f) {
      std::ostringstream text;
      text << f.rdbuf();
      return text.str();
    }
  }
  ADD_FAILURE() << "cannot locate models/" << name;
  return {};
}

void expect_same_interval(const ConfidenceInterval& a, const ConfidenceInterval& b,
                          const char* what) {
  EXPECT_EQ(a.point, b.point) << what;
  EXPECT_EQ(a.lo, b.lo) << what;
  EXPECT_EQ(a.hi, b.hi) << what;
  EXPECT_EQ(a.confidence, b.confidence) << what;
}

void expect_same_report(const KpiReport& a, const KpiReport& b) {
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.trajectories, b.trajectories);
  expect_same_interval(a.reliability, b.reliability, "reliability");
  expect_same_interval(a.expected_failures, b.expected_failures, "expected_failures");
  expect_same_interval(a.failures_per_year, b.failures_per_year, "failures_per_year");
  expect_same_interval(a.availability, b.availability, "availability");
  expect_same_interval(a.total_cost, b.total_cost, "total_cost");
  expect_same_interval(a.cost_per_year, b.cost_per_year, "cost_per_year");
  expect_same_interval(a.npv_cost, b.npv_cost, "npv_cost");
  EXPECT_EQ(a.mean_cost.inspection, b.mean_cost.inspection);
  EXPECT_EQ(a.mean_cost.repair, b.mean_cost.repair);
  EXPECT_EQ(a.mean_cost.replacement, b.mean_cost.replacement);
  EXPECT_EQ(a.mean_cost.corrective, b.mean_cost.corrective);
  EXPECT_EQ(a.mean_cost.downtime, b.mean_cost.downtime);
  EXPECT_EQ(a.mean_inspections, b.mean_inspections);
  EXPECT_EQ(a.mean_repairs, b.mean_repairs);
  EXPECT_EQ(a.mean_replacements, b.mean_replacements);
  EXPECT_EQ(a.failures_per_leaf, b.failures_per_leaf);
  EXPECT_EQ(a.repairs_per_leaf, b.repairs_per_leaf);
}

AnalysisSettings base_settings(unsigned threads) {
  AnalysisSettings s;
  s.horizon = 10.0;
  s.trajectories = 4000;
  s.seed = 20160628;
  s.threads = threads;
  s.discount_rate = 0.04;
  return s;
}

TEST(Determinism, AnalyzeIsBitIdenticalAcrossThreadCounts) {
  const fmt::FaultMaintenanceTree model =
      fmt::parse_fmt(read_model_file("ei_joint.fmt"));
  const KpiReport one = analyze(model, base_settings(1));
  const KpiReport four = analyze(model, base_settings(4));
  expect_same_report(one, four);
}

TEST(Determinism, AnalyzeWithAdaptiveStoppingIsThreadCountInvariant) {
  // Adaptive batching decides when to stop from aggregated batch results;
  // since every batch is thread-count-invariant, so is the stopping point.
  const fmt::FaultMaintenanceTree model =
      fmt::parse_fmt(read_model_file("ei_joint.fmt"));
  AnalysisSettings s1 = base_settings(1);
  s1.trajectories = 20000;  // budget cap
  s1.batch = 1024;
  s1.target_relative_error = 0.2;
  AnalysisSettings s4 = s1;
  s4.threads = 4;
  const KpiReport one = analyze(model, s1);
  const KpiReport four = analyze(model, s4);
  EXPECT_LT(one.trajectories, 20000u);  // the target stopped it early
  expect_same_report(one, four);
}

TEST(Determinism, ExpectedFailuresCurveIsThreadCountInvariant) {
  const fmt::FaultMaintenanceTree model =
      fmt::parse_fmt(read_model_file("ei_joint.fmt"));
  const std::vector<double> grid = linspace_grid(10.0, 20);
  const auto one = expected_failures_curve(model, grid, base_settings(1));
  const auto four = expected_failures_curve(model, grid, base_settings(4));
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].t, four[i].t) << "grid point " << i;
    expect_same_interval(one[i].value, four[i].value, "curve value");
  }
}

TEST(Determinism, CurveHonorsTrajectoryBudgetAndBatching) {
  // The curve shares collect() with analyze(): the trajectory budget and
  // batch size must be respected rather than hard-coded.
  const fmt::FaultMaintenanceTree model =
      fmt::parse_fmt(read_model_file("ei_joint.fmt"));
  AnalysisSettings s = base_settings(2);
  s.trajectories = 1500;
  s.batch = 256;
  const std::vector<double> grid = linspace_grid(10.0, 10);
  const auto curve = expected_failures_curve(model, grid, s);
  ASSERT_EQ(curve.size(), grid.size());
  // At t = 0 no failures have happened yet; at the horizon the estimate
  // matches analyze() on the same settings exactly (same trajectories).
  EXPECT_EQ(curve.front().value.point, 0.0);
  const KpiReport report = analyze(model, s);
  EXPECT_EQ(curve.back().value.point, report.expected_failures.point);
}

}  // namespace
}  // namespace fmtree::smc
