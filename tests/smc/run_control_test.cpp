// RunControl semantics and the truncation contract: a run stopped early
// delivers the longest fully-completed trajectory prefix, bit-identical to
// an untruncated run over exactly those streams.
#include "smc/run_control.hpp"

#include <gtest/gtest.h>

#include "fmt/parser.hpp"
#include "sim/fmt_executor.hpp"
#include "smc/kpi.hpp"
#include "smc/runner.hpp"
#include "util/error.hpp"

namespace fmtree::smc {
namespace {

const char* kModel = R"(
toplevel System;
System or Lipping Contamination;
Lipping ebe phases=4 mean=6 threshold=3 repair_cost=800;
Contamination ebe phases=3 mean=3 threshold=2 repair_cost=250;
inspection Visual period=0.5 cost=35 targets Lipping Contamination;
corrective cost=8000 delay=0.02 downtime_rate=50000;
)";

TEST(RunControl, StopConditionsAndPriority) {
  RunControl c;
  EXPECT_EQ(c.should_stop(0), StopReason::None);

  c.set_trajectory_budget(100);
  EXPECT_EQ(c.should_stop(99), StopReason::None);
  EXPECT_EQ(c.should_stop(100), StopReason::BudgetExhausted);

  c.set_timeout(-1.0);  // already expired
  EXPECT_EQ(c.should_stop(0), StopReason::DeadlineExpired);

  c.request_stop();  // external stop outranks everything
  EXPECT_TRUE(c.stop_requested());
  EXPECT_EQ(c.should_stop(0), StopReason::Interrupted);

  c.reset();
  EXPECT_FALSE(c.stop_requested());
  EXPECT_EQ(c.should_stop(1'000'000), StopReason::None);
}

TEST(RunControl, StopReasonNames) {
  EXPECT_STREQ(stop_reason_name(StopReason::None), "none");
  EXPECT_STREQ(stop_reason_name(StopReason::Interrupted), "interrupted");
  EXPECT_STREQ(stop_reason_name(StopReason::DeadlineExpired), "deadline");
  EXPECT_STREQ(stop_reason_name(StopReason::BudgetExhausted), "budget");
}

TEST(RunControl, UncontrolledRunIsNeverTruncated) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  const sim::FmtSimulator simulator(model);
  const ParallelRunner runner(simulator, 2);
  sim::SimOptions run_opts;
  run_opts.horizon = 10.0;
  const BatchResult r = runner.run(7, 0, 200, run_opts);
  EXPECT_EQ(r.completed, 200u);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.stop_reason, StopReason::None);
  EXPECT_EQ(r.summaries.size(), 200u);
}

TEST(RunControl, NullControlMatchesNoControlBitExactly) {
  // The controlled code path (sparse deltas, prefix accounting) must not
  // perturb results when no stop fires.
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  const sim::FmtSimulator simulator(model);
  const ParallelRunner runner(simulator, 3);
  sim::SimOptions opts;
  opts.horizon = 10.0;
  RunControl idle;  // no condition armed
  const BatchResult plain = runner.run(11, 0, 300, opts);
  const BatchResult controlled = runner.run(11, 0, 300, opts, &idle);
  EXPECT_FALSE(controlled.truncated);
  ASSERT_EQ(plain.summaries.size(), controlled.summaries.size());
  for (std::size_t i = 0; i < plain.summaries.size(); ++i) {
    EXPECT_EQ(plain.summaries[i].first_failure_time,
              controlled.summaries[i].first_failure_time);
    EXPECT_EQ(plain.summaries[i].cost.total(), controlled.summaries[i].cost.total());
  }
  EXPECT_EQ(plain.failures_per_leaf, controlled.failures_per_leaf);
  EXPECT_EQ(plain.repairs_per_leaf, controlled.repairs_per_leaf);
}

TEST(RunControl, TruncatedPrefixBitIdenticalToUntruncatedRun) {
  // Budget-stop a multi-threaded run, then rerun exactly the delivered
  // prefix without a control: every statistic must match bit for bit.
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  const sim::FmtSimulator simulator(model);
  const ParallelRunner runner(simulator, 4);
  sim::SimOptions opts;
  opts.horizon = 10.0;

  RunControl control;
  control.set_trajectory_budget(120);
  const BatchResult truncated = runner.run(42, 0, 5000, opts, &control);
  ASSERT_TRUE(truncated.truncated);
  EXPECT_EQ(truncated.stop_reason, StopReason::BudgetExhausted);
  // The delivered prefix hovers around the budget but is only guaranteed to
  // be nonempty and partial (a slow worker shortens it).
  ASSERT_GT(truncated.completed, 0u);
  ASSERT_LT(truncated.completed, 5000u);
  ASSERT_EQ(truncated.summaries.size(), truncated.completed);

  const BatchResult reference = runner.run(42, 0, truncated.completed, opts);
  ASSERT_EQ(reference.summaries.size(), truncated.summaries.size());
  for (std::size_t i = 0; i < reference.summaries.size(); ++i) {
    EXPECT_EQ(reference.summaries[i].first_failure_time,
              truncated.summaries[i].first_failure_time);
    EXPECT_EQ(reference.summaries[i].failures, truncated.summaries[i].failures);
    EXPECT_EQ(reference.summaries[i].downtime, truncated.summaries[i].downtime);
    EXPECT_EQ(reference.summaries[i].discounted_total,
              truncated.summaries[i].discounted_total);
  }
  EXPECT_EQ(reference.failures_per_leaf, truncated.failures_per_leaf);
  EXPECT_EQ(reference.repairs_per_leaf, truncated.repairs_per_leaf);
}

TEST(RunControl, AnalyzeReportsTruncationOverExactPrefix) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  AnalysisSettings s;
  s.horizon = 10.0;
  s.trajectories = 4000;
  s.seed = 9;
  s.threads = 2;
  RunControl control;
  control.set_trajectory_budget(150);
  s.control = &control;
  const KpiReport truncated = analyze(model, s);
  ASSERT_TRUE(truncated.truncated);
  EXPECT_EQ(truncated.stop_reason, StopReason::BudgetExhausted);
  ASSERT_LT(truncated.trajectories, 4000u);

  // The same analysis asked for exactly the delivered prefix is identical.
  AnalysisSettings exact = s;
  exact.control = nullptr;
  exact.trajectories = truncated.trajectories;
  const KpiReport reference = analyze(model, exact);
  EXPECT_FALSE(reference.truncated);
  EXPECT_EQ(reference.reliability.point, truncated.reliability.point);
  EXPECT_EQ(reference.expected_failures.point, truncated.expected_failures.point);
  EXPECT_EQ(reference.expected_failures.lo, truncated.expected_failures.lo);
  EXPECT_EQ(reference.total_cost.point, truncated.total_cost.point);
  EXPECT_EQ(reference.availability.hi, truncated.availability.hi);
  EXPECT_EQ(reference.failures_per_leaf, truncated.failures_per_leaf);
  EXPECT_EQ(reference.repairs_per_leaf, truncated.repairs_per_leaf);
}

TEST(RunControl, PreStoppedRunThrowsResourceLimitWithReason) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  AnalysisSettings s;
  s.horizon = 10.0;
  s.trajectories = 100;
  RunControl control;
  control.request_stop();  // fires before the first trajectory
  s.control = &control;
  try {
    (void)analyze(model, s);
    FAIL() << "expected ResourceLimitError";
  } catch (const ResourceLimitError& e) {
    EXPECT_NE(std::string(e.what()).find("interrupted"), std::string::npos);
  }
}

TEST(RunControl, AdaptiveBatchingStopsAtBudget) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  AnalysisSettings s;
  s.horizon = 10.0;
  s.trajectories = 100000;
  s.batch = 512;
  s.target_relative_error = 1e-9;  // would need far more than the budget
  s.threads = 2;
  RunControl control;
  control.set_trajectory_budget(700);
  s.control = &control;
  const KpiReport k = analyze(model, s);
  EXPECT_TRUE(k.truncated);
  EXPECT_EQ(k.stop_reason, StopReason::BudgetExhausted);
  EXPECT_LT(k.trajectories, 2000u);  // stopped near the budget, not the cap
}

}  // namespace
}  // namespace fmtree::smc
