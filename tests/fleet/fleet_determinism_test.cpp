// The fleet determinism matrix: a 50-joint corridor produces bit-identical
// per-joint reports and aggregate KPIs at 1 thread vs N threads, on the
// scalar AND the batch engine, whether executed in-process
// (fleet::analyze_fleet) or through the daemon's service layer
// (serve::prepare + serve::Session, the exact code path `fmtree serve`
// drives) — the corridor-scale extension of the per-model bitwise
// determinism contract.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../batch/report_bits.hpp"
#include "fleet/fleet.hpp"
#include "fmt/parser.hpp"
#include "serve/request.hpp"
#include "serve/session.hpp"
#include "smc/kpi.hpp"

namespace fmtree::fleet {
namespace {

using batch_test::same_bits;

const char* kModel = R"(
  toplevel T;
  T or A B;
  A ebe phases=3 mean=6 threshold=2 repair_cost=100;
  B be exp(0.05);
  inspection I period=0.5 cost=20 targets A;
  corrective cost=5000 delay=0.02;
)";

constexpr std::size_t kJoints = 50;

CorridorSpec corridor_spec() {
  CorridorSpec spec;
  spec.joints = kJoints;
  spec.seed = 17;
  spec.jitter = 0.12;
  spec.coupling = 0.3;
  return spec;
}

FleetOptions options_for(Engine engine, unsigned threads) {
  FleetOptions options;
  options.settings.horizon = 4.0;
  options.settings.trajectories = 60;
  options.settings.seed = 3;
  options.settings.engine = engine;
  options.threads = threads;
  return options;
}

void expect_same_kpis(const FleetKpis& a, const FleetKpis& b) {
  EXPECT_EQ(a.joints, b.joints);
  EXPECT_TRUE(same_bits(a.failures_per_year, b.failures_per_year));
  EXPECT_TRUE(same_bits(a.cost_per_year, b.cost_per_year));
  EXPECT_TRUE(same_bits(a.cost_per_km_year, b.cost_per_km_year));
  EXPECT_TRUE(same_bits(a.inspections_per_year, b.inspections_per_year));
  EXPECT_TRUE(same_bits(a.repairs_per_year, b.repairs_per_year));
  EXPECT_TRUE(same_bits(a.replacements_per_year, b.replacements_per_year));
  EXPECT_TRUE(same_bits(a.crew_visits_per_year, b.crew_visits_per_year));
  EXPECT_TRUE(same_bits(a.crew_utilisation, b.crew_utilisation));
  EXPECT_EQ(a.worst, b.worst);
}

void expect_same_outcome(const FleetOutcome& a, const FleetOutcome& b) {
  ASSERT_EQ(a.joints.size(), b.joints.size());
  for (std::size_t i = 0; i < a.joints.size(); ++i) {
    EXPECT_EQ(a.joints[i].name, b.joints[i].name);
    EXPECT_TRUE(same_bits(a.joints[i].scale, b.joints[i].scale)) << i;
    EXPECT_TRUE(same_bits(a.joints[i].report, b.joints[i].report)) << i;
  }
  expect_same_kpis(a.kpis, b.kpis);
}

/// The daemon's code path for the same corridor: expand the request through
/// serve::prepare (which routes through fleet::fleet_plan) and execute it on
/// a serve::Session, then reassemble per-joint summaries in corridor order.
FleetOutcome via_service(const Corridor& corridor, const FleetOptions& options) {
  serve::Request request;
  request.model_text = kModel;
  request.settings = options.settings;
  request.has_fleet = true;
  request.fleet.joints = static_cast<std::uint32_t>(corridor.spec.joints);
  request.fleet.seed = corridor.spec.seed;
  request.fleet.jitter = corridor.spec.jitter;
  request.fleet.coupling = corridor.spec.coupling;

  serve::SessionConfig config;
  config.threads = options.threads;
  config.queue_limit = kJoints;
  serve::Session session(std::move(config));
  serve::PreparedRequest prepared = serve::prepare(request, "models");
  serve::Ticket ticket = session.submit_jobs(std::move(prepared.jobs));
  const serve::Response response = ticket.take();

  FleetOutcome outcome;
  outcome.joints.reserve(corridor.joints.size());
  for (std::size_t i = 0; i < corridor.joints.size(); ++i) {
    JointSummary summary;
    summary.name = corridor.joints[i].name;
    summary.scale = corridor.joints[i].scale;
    EXPECT_EQ(response.jobs[i].label, summary.name) << i;
    if (response.jobs[i].state == serve::JobState::Done)
      summary.report = response.jobs[i].report;
    outcome.joints.push_back(std::move(summary));
  }
  outcome.kpis = aggregate_fleet(corridor, outcome.joints, options);
  return outcome;
}

TEST(FleetDeterminism, FiftyJointMatrixThreadsEnginesAndExecutor) {
  const fmt::FaultMaintenanceTree base = fmt::parse_fmt(kModel);
  const Corridor corridor = generate_corridor(base, corridor_spec());
  for (const Engine engine : {Engine::Scalar, Engine::Batch}) {
    const FleetOutcome serial = analyze_fleet(corridor, options_for(engine, 1));
    const FleetOutcome pooled = analyze_fleet(corridor, options_for(engine, 4));
    const FleetOutcome served = via_service(corridor, options_for(engine, 4));
    expect_same_outcome(serial, pooled);
    expect_same_outcome(serial, served);
  }
}

// The engines draw from different RNG families, so they are never compared
// bit-for-bit (see tests/smc/engine_equivalence_test.cpp); at corridor scale
// the contract is that every joint's scalar and batch KPI estimates overlap.
TEST(FleetDeterminism, EnginesAgreeStatisticallyPerJoint) {
  const fmt::FaultMaintenanceTree base = fmt::parse_fmt(kModel);
  CorridorSpec spec = corridor_spec();
  spec.joints = 4;
  const Corridor corridor = generate_corridor(base, spec);
  FleetOptions scalar_options = options_for(Engine::Scalar, 2);
  FleetOptions batch_options = options_for(Engine::Batch, 2);
  scalar_options.settings.trajectories = 2000;
  batch_options.settings.trajectories = 2000;
  const FleetOutcome scalar = analyze_fleet(corridor, scalar_options);
  const FleetOutcome batch = analyze_fleet(corridor, batch_options);
  const auto overlaps = [](const ConfidenceInterval& a,
                           const ConfidenceInterval& b) {
    return a.lo <= b.hi && b.lo <= a.hi;
  };
  for (std::size_t i = 0; i < corridor.joints.size(); ++i) {
    const smc::KpiReport& s = scalar.joints[i].report;
    const smc::KpiReport& b = batch.joints[i].report;
    EXPECT_TRUE(overlaps(s.failures_per_year, b.failures_per_year)) << i;
    EXPECT_TRUE(overlaps(s.cost_per_year, b.cost_per_year)) << i;
  }
}

}  // namespace
}  // namespace fmtree::fleet
