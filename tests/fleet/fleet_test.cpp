// The fleet subsystem's core contracts: corridor generation is a pure
// deterministic function of (base, spec); joints are independent (an
// override touches exactly one model hash, coupling reads only neighbour
// jitter); shards are bit-identical to standalone analyses; and the
// content-addressed cache re-simulates exactly the edited joint of a large
// corridor.
#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "../batch/report_bits.hpp"
#include "batch/fingerprint.hpp"
#include "batch/result_cache.hpp"
#include "fleet/corridor.hpp"
#include "fmt/canonical.hpp"
#include "fmt/parser.hpp"
#include "smc/kpi.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace fmtree::fleet {
namespace {

using batch_test::same_bits;

const char* kModel = R"(
  toplevel T;
  T or A B;
  A ebe phases=3 mean=6 threshold=2 repair_cost=100;
  B be exp(0.05);
  inspection I period=0.5 cost=20 targets A;
  corrective cost=5000 delay=0.02;
)";

fmt::FaultMaintenanceTree base_model() { return fmt::parse_fmt(kModel); }

smc::AnalysisSettings tiny_settings(std::uint64_t trajectories = 50) {
  smc::AnalysisSettings s;
  s.horizon = 5.0;
  s.trajectories = trajectories;
  s.seed = 7;
  return s;
}

std::vector<Fingerprint> model_hashes(const Corridor& corridor) {
  std::vector<Fingerprint> hashes;
  hashes.reserve(corridor.joints.size());
  for (const CorridorJoint& joint : corridor.joints)
    hashes.push_back(fmt::canonical_hash(joint.model));
  return hashes;
}

TEST(Corridor, JointNamesAreZeroPadded) {
  EXPECT_EQ(joint_name(0), "joint-0000");
  EXPECT_EQ(joint_name(7), "joint-0007");
  EXPECT_EQ(joint_name(1234), "joint-1234");
}

TEST(Corridor, GenerationIsAPureFunctionOfBaseAndSpec) {
  CorridorSpec spec;
  spec.joints = 12;
  spec.seed = 3;
  spec.jitter = 0.2;
  spec.coupling = 0.4;
  const Corridor a = generate_corridor(base_model(), spec);
  const Corridor b = generate_corridor(base_model(), spec);
  ASSERT_EQ(a.joints.size(), 12u);
  const std::vector<Fingerprint> ha = model_hashes(a);
  const std::vector<Fingerprint> hb = model_hashes(b);
  for (std::size_t i = 0; i < a.joints.size(); ++i) {
    EXPECT_TRUE(same_bits(a.joints[i].scale, b.joints[i].scale)) << i;
    EXPECT_EQ(ha[i], hb[i]) << i;
  }
}

TEST(Corridor, ZeroJitterZeroCouplingReproducesTheBaseModelExactly) {
  CorridorSpec spec;
  spec.joints = 4;
  spec.jitter = 0.0;
  const fmt::FaultMaintenanceTree base = base_model();
  const Corridor corridor = generate_corridor(base, spec);
  for (const CorridorJoint& joint : corridor.joints) {
    EXPECT_EQ(joint.scale, 1.0);
    EXPECT_EQ(fmt::canonical_hash(joint.model), fmt::canonical_hash(base));
  }
}

TEST(Corridor, JitterDrawsAreIndependentOfCorridorSizeAndNeighbours) {
  CorridorSpec small;
  small.joints = 5;
  small.seed = 11;
  CorridorSpec large = small;
  large.joints = 200;
  // Joint i's jitter is a pure function of (seed, i): growing the corridor
  // or adding overrides elsewhere must not move it.
  large.overrides.push_back({0, 2.0});
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_TRUE(same_bits(joint_jitter(small, i), joint_jitter(large, i))) << i;
}

TEST(Corridor, CouplingZeroEqualsJitterOnlyBitExactly) {
  CorridorSpec spec;
  spec.joints = 8;
  spec.seed = 5;
  spec.jitter = 0.15;
  spec.coupling = 0.0;
  for (std::size_t i = 0; i < spec.joints; ++i)
    EXPECT_TRUE(same_bits(joint_scale(spec, i), joint_jitter(spec, i))) << i;
  // With coupling on, a joint flanked by weak (jitter < 1) neighbours
  // degrades faster: its scale drops below its own jitter draw.
  CorridorSpec coupled = spec;
  coupled.coupling = 1.0;
  for (std::size_t i = 0; i < spec.joints; ++i)
    EXPECT_LE(joint_scale(coupled, i), joint_jitter(coupled, i)) << i;
}

TEST(Corridor, OverrideChangesExactlyOneModelHash) {
  CorridorSpec spec;
  spec.joints = 10;
  spec.seed = 2;
  const Corridor plain = generate_corridor(base_model(), spec);
  CorridorSpec edited_spec = spec;
  edited_spec.overrides.push_back({3, 2.0});
  const Corridor edited = generate_corridor(base_model(), edited_spec);
  const std::vector<Fingerprint> before = model_hashes(plain);
  const std::vector<Fingerprint> after = model_hashes(edited);
  for (std::size_t i = 0; i < 10; ++i) {
    if (i == 3) EXPECT_NE(before[i], after[i]);
    else EXPECT_EQ(before[i], after[i]) << i;
  }
}

TEST(Corridor, InvalidSpecsThrow) {
  const fmt::FaultMaintenanceTree base = base_model();
  CorridorSpec spec;
  spec.joints = 0;
  EXPECT_THROW(generate_corridor(base, spec), DomainError);
  spec = {};
  spec.jitter = -0.1;
  EXPECT_THROW(generate_corridor(base, spec), DomainError);
  spec = {};
  spec.coupling = std::nan("");
  EXPECT_THROW(generate_corridor(base, spec), DomainError);
  spec = {};
  spec.spacing_km = 0.0;
  EXPECT_THROW(generate_corridor(base, spec), DomainError);
  spec = {};
  spec.joints = 3;
  spec.overrides.push_back({3, 1.5});  // out of range
  EXPECT_THROW(generate_corridor(base, spec), DomainError);
  spec = {};
  spec.overrides.push_back({0, 0.0});  // non-positive scale
  EXPECT_THROW(generate_corridor(base, spec), DomainError);
}

TEST(Fleet, ShardsAreBitIdenticalToStandaloneAnalyses) {
  CorridorSpec spec;
  spec.joints = 5;
  spec.seed = 4;
  const Corridor corridor = generate_corridor(base_model(), spec);
  FleetOptions options;
  options.settings = tiny_settings();
  options.threads = 4;
  const FleetOutcome outcome = analyze_fleet(corridor, options);
  ASSERT_EQ(outcome.joints.size(), 5u);
  for (std::size_t i = 0; i < corridor.joints.size(); ++i) {
    const smc::KpiReport direct =
        smc::analyze(corridor.joints[i].model, options.settings);
    EXPECT_TRUE(same_bits(outcome.joints[i].report, direct)) << i;
  }
}

// The headline cache property: editing one joint of a large corridor
// re-simulates exactly that joint; every other shard replays from cache.
TEST(Fleet, EditedJointOfALargeCorridorResimulatesExactlyOneJoint) {
  constexpr std::size_t kJoints = 1000;
  CorridorSpec spec;
  spec.joints = kJoints;
  spec.seed = 9;
  const fmt::FaultMaintenanceTree base = base_model();
  FleetOptions options;
  options.settings = tiny_settings(/*trajectories=*/2);
  options.settings.horizon = 1.0;
  batch::ResultCache cache;  // memory tier is enough for the invariant

  const Corridor corridor = generate_corridor(base, spec);
  const FleetOutcome first = analyze_fleet(corridor, options, &cache);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(first.cache_misses, kJoints);

  CorridorSpec edited_spec = spec;
  edited_spec.overrides.push_back({123, 1.5});
  const Corridor edited = generate_corridor(base, edited_spec);
  const FleetOutcome second = analyze_fleet(edited, options, &cache);
  EXPECT_EQ(second.cache_hits, kJoints - 1);
  EXPECT_EQ(second.cache_misses, 1u);
  // And the replayed 999 joints carry the first run's bits.
  for (std::size_t i = 0; i < kJoints; ++i) {
    if (i == 123) continue;
    EXPECT_TRUE(same_bits(first.joints[i].report, second.joints[i].report)) << i;
  }
}

TEST(Fleet, AggregatesAreExactSumsWithCrewAndWorstK) {
  CorridorSpec spec;
  spec.joints = 3;
  spec.jitter = 0.0;
  spec.spacing_km = 2.0;
  const Corridor corridor = generate_corridor(base_model(), spec);

  std::vector<JointSummary> summaries(3);
  for (std::size_t i = 0; i < 3; ++i) {
    JointSummary& s = summaries[i];
    s.name = joint_name(i);
    s.report.trajectories = 100;
    s.report.horizon = 10.0;
    s.report.failures_per_year.point = 0.1 * static_cast<double>(i + 1);
    s.report.cost_per_year.point = 100.0 * static_cast<double>(i + 1);
    s.report.mean_inspections = 20.0;  // 2 rounds / yr over horizon 10
    s.report.mean_repairs = 5.0;
    s.report.mean_replacements = 1.0;
  }
  FleetOptions options;
  options.resources.crews = 1;
  options.resources.visits_per_crew_year = 10.0;
  options.worst_k = 2;
  const FleetKpis kpis = aggregate_fleet(corridor, summaries, options);
  EXPECT_EQ(kpis.joints, 3u);
  EXPECT_DOUBLE_EQ(kpis.corridor_length_km, 6.0);
  EXPECT_DOUBLE_EQ(kpis.failures_per_year, 0.6);
  EXPECT_DOUBLE_EQ(kpis.cost_per_year, 600.0);
  EXPECT_DOUBLE_EQ(kpis.cost_per_km_year, 100.0);
  EXPECT_DOUBLE_EQ(kpis.inspections_per_year, 6.0);
  EXPECT_DOUBLE_EQ(kpis.repairs_per_year, 1.5);
  EXPECT_DOUBLE_EQ(kpis.replacements_per_year, 0.3);
  // visits = inspections + failures + replacements = 6.9 of 10 capacity
  EXPECT_DOUBLE_EQ(kpis.crew_visits_per_year, 6.9);
  EXPECT_DOUBLE_EQ(kpis.crew_capacity_per_year, 10.0);
  EXPECT_DOUBLE_EQ(kpis.crew_utilisation, 0.69);
  ASSERT_EQ(kpis.worst.size(), 2u);
  EXPECT_EQ(kpis.worst[0], 2u);  // highest failures first
  EXPECT_EQ(kpis.worst[1], 1u);
}

TEST(Fleet, FailedShardBecomesAWarningAndIsExcludedFromAggregates) {
  CorridorSpec spec;
  spec.joints = 4;
  const Corridor corridor = generate_corridor(base_model(), spec);
  FleetOptions options;
  options.settings = tiny_settings(/*trajectories=*/10);
  options.threads = 1;
  options.max_retries = 0;
  const fault::Scope faults({"sweep.task:error,nth=1,limit=1"});
  const FleetOutcome outcome = analyze_fleet(corridor, options);
  EXPECT_EQ(outcome.jobs_failed, 1u);
  EXPECT_EQ(outcome.kpis.joints, 3u);
  bool found = false;
  for (const Diagnostic& d : outcome.warnings) found = found || d.code == "F101";
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace fmtree::fleet
