// Randomized equivalence tests for the incremental gate evaluator.
//
// Two layers of defence:
//  * GateEvaluator alone, against its own recompute() reference: random
//    AND/OR/VOT DAGs (shared subtrees included) under long random leaf
//    flip/repair sequences — every intermediate node_true state must match a
//    full bottom-up re-evaluation of the same leaf values;
//  * the whole executor: random FMT models with FDEPs, spares, RDEPs and
//    maintenance, run in incremental and reference-evaluation mode — every
//    TrajectoryResult field must agree bit-for-bit.
//
// std::mt19937 is fully specified by the standard, so these "random" tests
// are deterministic across platforms.
#include "sim/gate_eval.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "fmt/fmtree.hpp"
#include "sim/fmt_executor.hpp"

namespace fmtree::sim {
namespace {

using fmt::CorrectivePolicy;
using fmt::DegradationModel;
using fmt::FaultMaintenanceTree;
using fmt::InspectionModule;
using fmt::RepairSpec;
using fmt::ReplacementModule;

int pick(std::mt19937& rng, int lo, int hi) {  // inclusive bounds
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

/// Random monotone DAG: `num_leaves` basic events, then `num_gates` gates
/// whose children are drawn (without replacement) from all earlier nodes —
/// so gates freely share subtrees.
ft::FaultTree random_tree(std::mt19937& rng, int num_leaves, int num_gates) {
  ft::FaultTree tree;
  std::vector<ft::NodeId> nodes;
  for (int i = 0; i < num_leaves; ++i)
    nodes.push_back(
        tree.add_basic_event("L" + std::to_string(i), Distribution::deterministic(1.0)));
  for (int g = 0; g < num_gates; ++g) {
    std::vector<ft::NodeId> pool = nodes;
    std::shuffle(pool.begin(), pool.end(), rng);
    const int arity = pick(rng, 2, std::min<int>(4, static_cast<int>(pool.size())));
    std::vector<ft::NodeId> children(pool.begin(), pool.begin() + arity);
    const int which = pick(rng, 0, 2);
    const std::string name = "G" + std::to_string(g);
    ft::NodeId id;
    if (which == 0) {
      id = tree.add_and(name, std::move(children));
    } else if (which == 1) {
      id = tree.add_or(name, std::move(children));
    } else {
      id = tree.add_voting(name, pick(rng, 1, arity), std::move(children));
    }
    nodes.push_back(id);
  }
  return tree;
}

TEST(GateEval, RandomFlipSequencesMatchFullReevaluation) {
  for (unsigned seed = 0; seed < 12; ++seed) {
    std::mt19937 rng(seed);
    const int num_leaves = pick(rng, 3, 16);
    const int num_gates = pick(rng, 1, 24);
    const ft::FaultTree tree = random_tree(rng, num_leaves, num_gates);
    const GateEvaluator eval(tree);

    GateEvaluator::State incremental;
    eval.reset(incremental);
    std::vector<char> leaf_vals(static_cast<std::size_t>(num_leaves), 0);

    GateEvaluator::State reference;
    for (int step = 0; step < 400; ++step) {
      // A mix of flips (fail <-> repair) and redundant writes (no-ops).
      const auto leaf = static_cast<std::uint32_t>(pick(rng, 0, num_leaves - 1));
      const bool fail =
          pick(rng, 0, 3) != 0 ? leaf_vals[leaf] == 0 : leaf_vals[leaf] != 0;
      leaf_vals[leaf] = fail ? 1 : 0;
      eval.set_leaf(incremental, leaf, fail);

      eval.reset(reference);
      for (std::uint32_t l = 0; l < static_cast<std::uint32_t>(num_leaves); ++l)
        eval.set_leaf_raw(reference, l, leaf_vals[l] != 0);
      eval.recompute(reference);

      ASSERT_EQ(incremental.node_true, reference.node_true)
          << "seed " << seed << " step " << step;
      ASSERT_TRUE(eval.consistent(incremental)) << "seed " << seed << " step " << step;
    }
  }
}

TEST(GateEval, VotingThresholdEdges) {
  // 2-of-3 voting: exhaustive check of all 8 leaf assignments, reached by
  // single flips so every intermediate state exercises the propagation.
  ft::FaultTree tree;
  std::vector<ft::NodeId> leaves;
  for (int i = 0; i < 3; ++i)
    leaves.push_back(
        tree.add_basic_event("L" + std::to_string(i), Distribution::deterministic(1.0)));
  const ft::NodeId top = tree.add_voting("vot", 2, leaves);
  const GateEvaluator eval(tree);

  GateEvaluator::State s;
  eval.reset(s);
  for (unsigned mask = 0; mask < 8; ++mask) {
    for (std::uint32_t l = 0; l < 3; ++l) eval.set_leaf(s, l, (mask >> l & 1u) != 0);
    const int count = (mask & 1) + (mask >> 1 & 1) + (mask >> 2 & 1);
    EXPECT_EQ(eval.value(s, top), count >= 2) << "mask " << mask;
    EXPECT_TRUE(eval.consistent(s));
  }
}

// ---- Executor-level equivalence ---------------------------------------------

bool same_result(const TrajectoryResult& a, const TrajectoryResult& b) {
  if (a.failure_log.size() != b.failure_log.size()) return false;
  for (std::size_t i = 0; i < a.failure_log.size(); ++i) {
    if (a.failure_log[i].time != b.failure_log[i].time ||
        a.failure_log[i].cause_leaf != b.failure_log[i].cause_leaf)
      return false;
  }
  return a.failures == b.failures && a.first_failure_time == b.first_failure_time &&
         a.downtime == b.downtime && a.cost.total() == b.cost.total() &&
         a.discounted_cost.total() == b.discounted_cost.total() &&
         a.inspections == b.inspections && a.repairs == b.repairs &&
         a.replacements == b.replacements && a.events == b.events &&
         a.repairs_per_leaf == b.repairs_per_leaf &&
         a.failures_per_leaf == b.failures_per_leaf;
}

/// Random FMT exercising every executor feature the evaluator interacts
/// with: multi-phase leaves (some with timed repairs), a spare pool with
/// dormancy, an FDEP cascade, event- and phase-triggered RDEPs, imperfect
/// inspections, replacements and corrective renewal.
FaultMaintenanceTree random_fmt(std::mt19937& rng) {
  FaultMaintenanceTree m;
  const int num_leaves = pick(rng, 4, 8);
  std::vector<ft::NodeId> leaves;
  for (int i = 0; i < num_leaves; ++i) {
    const int phases = pick(rng, 1, 4);
    const double mean = 0.5 + 0.25 * pick(rng, 0, 10);
    RepairSpec repair{"fix", 10.0, pick(rng, 0, 2) == 0 ? 0.25 : 0.0};
    leaves.push_back(
        m.add_ebe("e" + std::to_string(i),
                  DegradationModel::erlang(phases, mean, pick(rng, 1, phases)),
                  repair));
  }

  // Two dedicated leaves form a warm spare pool.
  const ft::NodeId sp0 = m.add_ebe("sp0", DegradationModel::erlang(2, 2.0, 1));
  const ft::NodeId sp1 = m.add_ebe("sp1", DegradationModel::erlang(2, 2.0, 1));
  const ft::NodeId spare = m.add_spare("pool", {sp0, sp1}, 0.25 * pick(rng, 0, 4));

  // Random two-level structure over the plain leaves, with the spare mixed in.
  std::vector<ft::NodeId> pool = leaves;
  std::shuffle(pool.begin(), pool.end(), rng);
  const std::size_t half = pool.size() / 2;
  const ft::NodeId g1 =
      m.add_or("g1", std::vector<ft::NodeId>(pool.begin(), pool.begin() + half));
  const ft::NodeId g2 = m.add_voting(
      "g2", pick(rng, 1, 2), std::vector<ft::NodeId>(pool.begin() + half, pool.end()));
  const ft::NodeId top = pick(rng, 0, 1) ? m.add_and("top", {g1, g2, spare})
                                         : m.add_or("top", {g1, g2, spare});
  m.set_top(top);

  // FDEP: the first gate knocks out a couple of leaves from the second half.
  if (pick(rng, 0, 1)) m.add_fdep("cascade", g1, {pool[half], pool.back()});
  // Event-triggered RDEP on the spare pool, phase-triggered RDEP off leaf 0.
  m.add_rdep("stress", g2, {sp0, sp1}, 1.0 + 0.5 * pick(rng, 0, 4));
  m.add_rdep("wear", leaves[0], {leaves[1]}, 2.0, 1);

  m.add_inspection(InspectionModule{
      "insp", 0.4 + 0.2 * pick(rng, 0, 4), -1.0, 5.0,
      std::vector<ft::NodeId>(leaves.begin(), leaves.end()),
      pick(rng, 0, 1) ? 1.0 : 0.8});
  m.add_replacement(ReplacementModule{"renew", 2.0 + pick(rng, 0, 3), -1.0, 50.0,
                                      {leaves[0], sp0, sp1}});
  m.set_corrective(CorrectivePolicy{true, 0.1 * pick(rng, 0, 3), 100.0, 25.0});
  return m;
}

TEST(GateEval, ExecutorReferenceAndIncrementalEnginesAgreeBitForBit) {
  for (unsigned seed = 0; seed < 10; ++seed) {
    std::mt19937 rng(seed);
    const FaultMaintenanceTree model = random_fmt(rng);
    const FmtSimulator simulator(model);

    SimOptions fast;
    fast.horizon = 25.0;
    fast.record_failure_log = true;
    fast.discount_rate = 0.05;
    SimOptions reference = fast;
    reference.reference_engine = true;

    SimWorkspace ws;
    for (std::uint64_t traj = 0; traj < 8; ++traj) {
      const TrajectoryResult a = simulator.run(RandomStream(seed, traj), reference);
      const TrajectoryResult b = simulator.run(RandomStream(seed, traj), fast);
      const TrajectoryResult c = simulator.run(RandomStream(seed, traj), fast, ws);
      EXPECT_TRUE(same_result(a, b)) << "seed " << seed << " trajectory " << traj;
      EXPECT_TRUE(same_result(a, c)) << "seed " << seed << " trajectory " << traj
                                     << " (reused workspace)";
      EXPECT_GT(a.events, 0u);
    }
  }
}

}  // namespace
}  // namespace fmtree::sim
