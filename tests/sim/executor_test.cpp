// Semantic tests of the FMT executor. Deterministic phase durations make
// every event time exact, so assertions are sharp rather than statistical.
#include "sim/fmt_executor.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fmtree::sim {
namespace {

using fmt::CorrectivePolicy;
using fmt::DegradationModel;
using fmt::FaultMaintenanceTree;
using fmt::InspectionModule;
using fmt::NodeId;
using fmt::RepairSpec;
using fmt::ReplacementModule;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// N deterministic phases of `unit` time each, threshold as given.
DegradationModel det_phases(int n, int threshold, double unit = 1.0) {
  std::vector<Distribution> phases(static_cast<std::size_t>(n),
                                   Distribution::deterministic(unit));
  return DegradationModel(std::move(phases), threshold);
}

TrajectoryResult run(const FaultMaintenanceTree& m, double horizon,
                     Trace* trace = nullptr, bool log = false) {
  const FmtSimulator simulator(m);
  SimOptions opts;
  opts.horizon = horizon;
  opts.trace = trace;
  opts.record_failure_log = log;
  return simulator.run(RandomStream(1, 0), opts);
}

TEST(Executor, UnmaintainedDeterministicFailureTime) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(3, 4));
  m.set_top(a);
  const TrajectoryResult r = run(m, 10.0);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 3.0);
  EXPECT_EQ(r.failures, 1u);
  EXPECT_DOUBLE_EQ(r.downtime, 7.0);  // no corrective: down to horizon
  EXPECT_FALSE(r.survived());
}

TEST(Executor, SurvivesWhenFailureBeyondHorizon) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(3, 4, 5.0));  // fails at 15
  m.set_top(a);
  const TrajectoryResult r = run(m, 10.0);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.first_failure_time, kInf);
  EXPECT_TRUE(r.survived());
  EXPECT_DOUBLE_EQ(r.downtime, 0.0);
}

TEST(Executor, InspectionRepairsAtThresholdForever) {
  // Phases at t=1 (->2), t=2 (->3, detectable), failure would be t=3.
  // Inspections every 2.5 catch phase 3 first (2.5, then the cycle repeats).
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(3, 3), RepairSpec{"fix", 100});
  m.set_top(a);
  m.add_inspection(InspectionModule{"insp", 2.5, -1, 10, {a}});
  const TrajectoryResult r = run(m, 10.0);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.inspections, 4u);  // t = 2.5, 5, 7.5, 10
  EXPECT_EQ(r.repairs, 4u);      // detected each time
  EXPECT_DOUBLE_EQ(r.cost.inspection, 40.0);
  EXPECT_DOUBLE_EQ(r.cost.repair, 400.0);
  ASSERT_EQ(r.repairs_per_leaf.size(), 1u);
  EXPECT_EQ(r.repairs_per_leaf[0], 4u);
}

TEST(Executor, InspectionBelowThresholdDoesNothing) {
  // Inspect at 1.5 when the leaf is in phase 2 < threshold 3: no repair,
  // and the leaf fails at 3.0 anyway.
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(3, 3), RepairSpec{"fix", 100});
  m.set_top(a);
  m.add_inspection(InspectionModule{"insp", 10.0, 1.5, 10, {a}});
  const TrajectoryResult r = run(m, 5.0);
  EXPECT_EQ(r.repairs, 0u);
  EXPECT_EQ(r.failures, 1u);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 3.0);
}

TEST(Executor, InspectionCannotRepairFailedLeaf) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(2, 2), RepairSpec{"fix", 100});
  m.set_top(a);
  m.add_inspection(InspectionModule{"insp", 3.0, -1, 10, {a}});  // first at 3 > 2
  const TrajectoryResult r = run(m, 10.0);
  EXPECT_EQ(r.failures, 1u);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 2.0);
  EXPECT_EQ(r.repairs, 0u);
  EXPECT_DOUBLE_EQ(r.downtime, 8.0);  // never restored
}

TEST(Executor, ReplacementRestoresFailedSystem) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(2, 3));  // fails at 2, undetectable
  m.set_top(a);
  m.add_replacement(ReplacementModule{"renew", 3.0, -1, 500, {a}});
  const TrajectoryResult r = run(m, 10.0);
  // Fails at 2, renewed at 3 (downtime 1), fails again at 5, renewed at 6,
  // fails at 8, renewed at 9; the next failure (11) is beyond the horizon.
  EXPECT_EQ(r.failures, 3u);
  EXPECT_DOUBLE_EQ(r.downtime, 3.0);
  EXPECT_EQ(r.replacements, 3u);  // t = 3, 6, 9
  EXPECT_DOUBLE_EQ(r.cost.replacement, 1500.0);
}

TEST(Executor, CorrectiveRenewalCycle) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(2, 3));
  m.set_top(a);
  m.set_corrective(CorrectivePolicy{true, 0.5, 1000, 100});
  const TrajectoryResult r = run(m, 10.0);
  // Failures at 2, 4.5, 7, 9.5; each renewed 0.5 later (last at 10.0).
  EXPECT_EQ(r.failures, 4u);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 2.0);
  EXPECT_DOUBLE_EQ(r.downtime, 2.0);
  EXPECT_DOUBLE_EQ(r.cost.corrective, 4000.0);
  EXPECT_DOUBLE_EQ(r.cost.downtime, 200.0);  // 100/yr * 2.0
}

TEST(Executor, CorrectiveWithZeroDelayGivesNoDowntime) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(1, 2, 2.0));
  m.set_top(a);
  m.set_corrective(CorrectivePolicy{true, 0.0, 1000, 100});
  const TrajectoryResult r = run(m, 10.0);
  EXPECT_EQ(r.failures, 5u);  // at 2, 4, 6, 8, 10
  EXPECT_DOUBLE_EQ(r.downtime, 0.0);
  EXPECT_DOUBLE_EQ(r.cost.downtime, 0.0);
}

TEST(Executor, RdepEventTriggerAcceleratesRemainingTime) {
  // A fails at 1 (not failing the AND top); B's single 4-unit phase is then
  // accelerated x2: remaining 3 -> 1.5, so B (and the top) fail at 2.5.
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(1, 2));
  const NodeId b = m.add_ebe("b", det_phases(1, 2, 4.0));
  m.set_top(m.add_and("top", {a, b}));
  m.add_rdep("accel", a, {b}, 2.0);
  const TrajectoryResult r = run(m, 10.0);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 2.5);
}

TEST(Executor, RdepPhaseTriggerActivatesMidDegradation) {
  // A reaches phase 2 at t=1, which accelerates B x2: B fails at
  // 1 + (4-1)/2 = 2.5. A itself fails at 3. Top = AND fails at 3.
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(3, 4));
  const NodeId b = m.add_ebe("b", det_phases(1, 2, 4.0));
  m.set_top(m.add_and("top", {a, b}));
  m.add_rdep("accel", a, {b}, 2.0, 2);
  Trace trace;
  const TrajectoryResult r = run(m, 10.0, &trace);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 3.0);
  const auto accel_events = trace.of_kind(TraceKind::AccelerationChanged);
  ASSERT_GE(accel_events.size(), 1u);
  EXPECT_DOUBLE_EQ(accel_events[0].time, 1.0);
  EXPECT_EQ(accel_events[0].subject, "b");
  EXPECT_EQ(accel_events[0].detail, 2000);  // factor x1000
}

TEST(Executor, RdepDeactivatesWhenTriggerRepaired) {
  // A (2 phases of 1, threshold 2) reaches phase 2 at t=1 and accelerates B
  // (x2, phase trigger 2). The single inspection at t=1.5 repairs A, pausing
  // the acceleration until A degrades to phase 2 again at t=2.5 (and A's
  // failure at 3.5 keeps it active). B's 10-unit phase burns:
  //   [0,1] at x1 (1.0), [1,1.5] at x2 (1.0), [1.5,2.5] at x1 (1.0),
  //   then x2 with 7.0 left -> fires 3.5 later, at t=6.0.
  // A fails at 3.5, so the AND top fails when B does: t=6.0.
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(2, 2), RepairSpec{"fix", 1});
  const NodeId b = m.add_ebe("b", det_phases(1, 2, 10.0));
  m.set_top(m.add_and("top", {a, b}));
  m.add_rdep("accel", a, {b}, 2.0, 2);
  m.add_inspection(InspectionModule{"insp", 100.0, 1.5, 1, {a}});
  const TrajectoryResult r = run(m, 20.0);
  EXPECT_EQ(r.repairs, 1u);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 6.0);
}

TEST(Executor, CauseAttributionInFailureLog) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("fast", det_phases(1, 2, 1.0));
  const NodeId b = m.add_ebe("slow", det_phases(1, 2, 5.0));
  m.set_top(m.add_or("top", {a, b}));
  m.set_corrective(CorrectivePolicy{true, 0.0, 0, 0});
  const FmtSimulator simulator(m);
  SimOptions opts;
  opts.horizon = 3.5;
  opts.record_failure_log = true;
  const TrajectoryResult r = simulator.run(RandomStream(1, 0), opts);
  // Renewal cycle of 'fast': failures at 1, 2, 3 - all caused by leaf 0.
  ASSERT_EQ(r.failure_log.size(), 3u);
  for (const FailureRecord& f : r.failure_log) EXPECT_EQ(f.cause_leaf, 0u);
  EXPECT_EQ(r.failures_per_leaf[0], 3u);
  EXPECT_EQ(r.failures_per_leaf[1], 0u);
}

TEST(Executor, VotingGateFailsAtKthLeaf) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(1, 2, 1.0));
  const NodeId b = m.add_ebe("b", det_phases(1, 2, 2.0));
  const NodeId c = m.add_ebe("c", det_phases(1, 2, 3.0));
  m.set_top(m.add_voting("vote", 2, {a, b, c}));
  const TrajectoryResult r = run(m, 10.0);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 2.0);  // second of three
}

TEST(Executor, TraceRecordsLifecycle) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(2, 2), RepairSpec{"fix", 1});
  m.set_top(a);
  m.add_inspection(InspectionModule{"insp", 1.5, -1, 1, {a}});
  m.set_corrective(CorrectivePolicy{true, 0.25, 10, 0});
  Trace trace;
  (void)run(m, 4.0, &trace);
  EXPECT_FALSE(trace.of_kind(TraceKind::PhaseTransition).empty());
  EXPECT_FALSE(trace.of_kind(TraceKind::InspectionPerformed).empty());
  EXPECT_FALSE(trace.of_kind(TraceKind::RepairPerformed).empty());
  // Times are nondecreasing.
  double prev = 0;
  for (const TraceEvent& e : trace.events()) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(Executor, SameStreamSameResult) {
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", DegradationModel::erlang(4, 8, 3),
                             RepairSpec{"fix", 100});
  const NodeId b =
      m.add_ebe("b", DegradationModel::basic(Distribution::weibull(1.5, 20)));
  m.set_top(m.add_or("top", {a, b}));
  m.add_inspection(InspectionModule{"insp", 0.5, -1, 10, {a}});
  m.set_corrective(CorrectivePolicy{true, 0.1, 1000, 100});
  const FmtSimulator simulator(m);
  SimOptions opts;
  opts.horizon = 50.0;
  const TrajectoryResult r1 = simulator.run(RandomStream(9, 7), opts);
  const TrajectoryResult r2 = simulator.run(RandomStream(9, 7), opts);
  EXPECT_EQ(r1.failures, r2.failures);
  EXPECT_DOUBLE_EQ(r1.first_failure_time, r2.first_failure_time);
  EXPECT_DOUBLE_EQ(r1.cost.total(), r2.cost.total());
  EXPECT_DOUBLE_EQ(r1.downtime, r2.downtime);
}

TEST(Executor, RejectsNonPositiveHorizon) {
  FaultMaintenanceTree m;
  m.set_top(m.add_ebe("a", det_phases(1, 2)));
  const FmtSimulator simulator(m);
  SimOptions opts;
  opts.horizon = 0.0;
  EXPECT_THROW(simulator.run(RandomStream(1, 0), opts), DomainError);
}

TEST(Executor, FailureExactlyAtHorizonCounts) {
  FaultMaintenanceTree m;
  m.set_top(m.add_ebe("a", det_phases(1, 2, 5.0)));
  const TrajectoryResult r = run(m, 5.0);
  EXPECT_EQ(r.failures, 1u);
  EXPECT_FALSE(r.survived());
}

}  // namespace
}  // namespace fmtree::sim
