// Semantics of timed (non-instantaneous) condition-based repairs.
#include <gtest/gtest.h>

#include "fmt/parser.hpp"
#include "sim/fmt_executor.hpp"
#include "util/error.hpp"

namespace fmtree::sim {
namespace {

using fmt::DegradationModel;
using fmt::FaultMaintenanceTree;
using fmt::InspectionModule;
using fmt::NodeId;
using fmt::RepairSpec;

DegradationModel det_phases(int n, int threshold, double unit = 1.0) {
  std::vector<Distribution> phases(static_cast<std::size_t>(n),
                                   Distribution::deterministic(unit));
  return DegradationModel(std::move(phases), threshold);
}

TrajectoryResult run(const FaultMaintenanceTree& m, double horizon,
                     Trace* trace = nullptr) {
  const FmtSimulator simulator(m);
  SimOptions opts;
  opts.horizon = horizon;
  opts.trace = trace;
  return simulator.run(RandomStream(1, 0), opts);
}

TEST(TimedRepair, DegradationPausedDuringRepair) {
  // Leaf: 3 unit phases, threshold 2 (reached at t=1), would fail at 3.
  // Inspection at 1.5 starts a repair lasting 4; during [1.5, 5.5] the leaf
  // cannot progress, so no failure. Completion resets to phase 1; the next
  // threshold crossing is at 6.5, inspected at... inspections every 10 from
  // 1.5: next at 11.5 -> leaf fails at 5.5 + 3 = 8.5.
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(3, 2), RepairSpec{"fix", 100, 4.0});
  m.set_top(a);
  m.add_inspection(InspectionModule{"i", 10.0, 1.5, 1, {a}});
  Trace trace;
  const TrajectoryResult r = run(m, 20.0, &trace);
  EXPECT_EQ(r.repairs, 1u);
  EXPECT_DOUBLE_EQ(r.first_failure_time, 8.5);
  const auto done = trace.of_kind(TraceKind::RepairCompleted);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].time, 5.5);
}

TEST(TimedRepair, InspectionSkipsLeafUnderRepair) {
  // Repairs last 2.0; inspections every 0.5. Phase 2 is entered at t=1.0 and
  // the same-time inspection (phase events order before it) detects it, so a
  // repair runs over [1, 3]; the six inspections during it must not start a
  // second one. The cycle then repeats every 3 units: repairs start at 1, 4,
  // 7, 10 and no failure ever happens.
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(3, 2), RepairSpec{"fix", 100, 2.0});
  m.set_top(a);
  m.add_inspection(InspectionModule{"i", 0.5, -1, 1, {a}});
  const TrajectoryResult r = run(m, 10.0);
  EXPECT_EQ(r.repairs, 4u);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_DOUBLE_EQ(r.cost.repair, 400.0);
}

TEST(TimedRepair, ReplacementPreemptsRepair) {
  // Repair starts at 1.5 and would complete at 7.5, but the replacement at
  // t=3 renews the leaf: the repair is cancelled (no RepairCompleted) and
  // the leaf restarts from new at 3.
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(3, 2), RepairSpec{"fix", 100, 6.0});
  m.set_top(a);
  m.add_inspection(InspectionModule{"i", 100.0, 1.5, 1, {a}});
  m.add_replacement(fmt::ReplacementModule{"renew", 100.0, 3.0, 10, {a}});
  Trace trace;
  const TrajectoryResult r = run(m, 10.0, &trace);
  EXPECT_EQ(trace.of_kind(TraceKind::RepairCompleted).size(), 0u);
  EXPECT_EQ(r.replacements, 1u);
  // Renewed at 3: phases at 4, 5, fails at 6.
  EXPECT_DOUBLE_EQ(r.first_failure_time, 6.0);
}

TEST(TimedRepair, LeafCannotFailWhileUnderRepair) {
  // Degradation nearly complete (phase 3 of 3) when repair starts; without
  // the pause it would fail 0.5 later, but the repair wins.
  FaultMaintenanceTree m;
  const NodeId a = m.add_ebe("a", det_phases(3, 3), RepairSpec{"fix", 100, 1.0});
  m.set_top(a);
  m.add_inspection(InspectionModule{"i", 100.0, 2.5, 1, {a}});  // phase 3 since t=2
  const TrajectoryResult r = run(m, 20.0);
  // Repair 2.5 -> 3.5; then fresh cycle fails at 3.5 + 3 = 6.5.
  EXPECT_DOUBLE_EQ(r.first_failure_time, 6.5);
}

TEST(TimedRepair, ParserRoundTripsRepairTime) {
  const FaultMaintenanceTree m = fmt::parse_fmt(R"(
    toplevel T;
    T or A;
    A ebe phases=3 mean=6 threshold=2 repair_cost=50 repair_time=0.2 repair=grind;
  )");
  EXPECT_DOUBLE_EQ(m.ebe(*m.find("A")).repair.duration, 0.2);
  const FaultMaintenanceTree m2 = fmt::parse_fmt(fmt::to_text(m));
  EXPECT_DOUBLE_EQ(m2.ebe(*m2.find("A")).repair.duration, 0.2);
  EXPECT_THROW(fmt::parse_fmt(R"(
    toplevel T; T or A; A ebe phases=2 mean=3 repair_time=-1;
  )"),
               ParseError);
}

TEST(TimedRepair, ZeroDurationEqualsInstantSemantics) {
  // duration = 0 must behave exactly like the original instantaneous path.
  auto build = [](double duration) {
    FaultMaintenanceTree m;
    const NodeId a = m.add_ebe("a", DegradationModel::erlang(3, 2.0, 2),
                               RepairSpec{"fix", 10, duration});
    m.set_top(a);
    m.add_inspection(InspectionModule{"i", 0.25, -1, 1, {a}});
    m.set_corrective(fmt::CorrectivePolicy{true, 0.0, 100, 0});
    return m;
  };
  const FaultMaintenanceTree m0 = build(0.0);
  const FaultMaintenanceTree m0b = build(0.0);
  const FmtSimulator s0(m0);  // the simulator keeps a reference to the model
  const FmtSimulator s0b(m0b);
  SimOptions opts;
  opts.horizon = 50.0;
  const TrajectoryResult a = s0.run(RandomStream(3, 1), opts);
  const TrajectoryResult b = s0b.run(RandomStream(3, 1), opts);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total());
}

}  // namespace
}  // namespace fmtree::sim
