#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace fmtree::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.schedule(3.0, 3);
  q.schedule(1.0, 1);
  q.schedule(2.0, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue<int> q;
  for (int i = 0; i < 10; ++i) q.schedule(5.0, i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop().payload, i);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue<int> q;
  q.schedule(1.0, 1);
  const EventHandle h = q.schedule(2.0, 2);
  q.schedule(3.0, 3);
  EXPECT_TRUE(q.cancel(h));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelTwiceIsNoop) {
  EventQueue<int> q;
  const EventHandle h = q.schedule(1.0, 1);
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue<int> q;
  const EventHandle h = q.schedule(1.0, 1);
  q.pop();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelUnknownHandleIsNoop) {
  EventQueue<int> q;
  EXPECT_FALSE(q.cancel(EventHandle{1234}));
}

TEST(EventQueue, PeekTimeSkipsCancelled) {
  EventQueue<int> q;
  const EventHandle h = q.schedule(1.0, 1);
  q.schedule(2.0, 2);
  q.cancel(h);
  EXPECT_DOUBLE_EQ(q.peek_time(), 2.0);
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  EventQueue<int> q;
  q.schedule(1.0, 1);
  q.schedule(5.0, 5);
  EXPECT_EQ(q.pop().payload, 1);
  q.schedule(2.0, 2);   // earlier than remaining event
  q.schedule(4.0, 4);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 4);
  EXPECT_EQ(q.pop().payload, 5);
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue<int> q;
  q.schedule(1.0, 1);
  q.schedule(2.0, 2);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.schedule(3.0, 3);
  EXPECT_EQ(q.pop().payload, 3);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue<std::size_t> q;
  // Schedule with decreasing times; pops must come back increasing.
  for (std::size_t i = 0; i < 1000; ++i)
    q.schedule(static_cast<double>(1000 - i), i);
  double prev = 0;
  while (!q.empty()) {
    const auto e = q.pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(EventQueue, RandomizedAgainstReferenceModel) {
  // Drive the queue with random schedule/cancel/pop operations and compare
  // against a naive sorted-vector reference.
  RandomStream rng(42, 0);
  EventQueue<std::uint64_t> q;
  struct RefEntry {
    double time;
    std::uint64_t seq;
    std::uint64_t payload;
  };
  std::vector<RefEntry> reference;  // live events only
  std::vector<EventHandle> live_handles;
  std::uint64_t payload_counter = 0;

  for (int step = 0; step < 20000; ++step) {
    const double dice = rng.uniform01();
    if (dice < 0.5 || q.empty()) {
      const double time = rng.uniform(0, 100);
      const EventHandle h = q.schedule(time, payload_counter);
      reference.push_back(RefEntry{time, h.seq, payload_counter});
      live_handles.push_back(h);
      ++payload_counter;
    } else if (dice < 0.7 && !live_handles.empty()) {
      const std::size_t pick = rng.below(live_handles.size());
      const EventHandle h = live_handles[pick];
      q.cancel(h);
      std::erase_if(reference, [&](const RefEntry& e) { return e.seq == h.seq; });
      live_handles.erase(live_handles.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      ASSERT_FALSE(reference.empty());
      const auto best = std::min_element(
          reference.begin(), reference.end(), [](const RefEntry& a, const RefEntry& b) {
            if (a.time != b.time) return a.time < b.time;
            return a.seq < b.seq;
          });
      const auto popped = q.pop();
      EXPECT_DOUBLE_EQ(popped.time, best->time);
      EXPECT_EQ(popped.payload, best->payload);
      std::erase_if(live_handles,
                    [&](EventHandle h) { return h.seq == best->seq; });
      reference.erase(best);
    }
    ASSERT_EQ(q.size(), reference.size());
  }
}

}  // namespace
}  // namespace fmtree::sim
