#include <gtest/gtest.h>

#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "ft/cutsets.hpp"
#include "smc/kpi.hpp"
#include "util/error.hpp"

namespace fmtree::eijoint {
namespace {

fmt::FaultMaintenanceTree current_model() {
  return build_ei_joint(EiJointParameters::defaults(), current_policy());
}

TEST(EiJointModel, StructureMatchesTaxonomy) {
  const fmt::FaultMaintenanceTree m = current_model();
  EXPECT_NO_THROW(m.validate());
  // 4 electrical + 4 bolts + fishplate + glue + batter = 11 leaves.
  EXPECT_EQ(m.num_ebes(), 11u);
  EXPECT_TRUE(m.find("lipping").has_value());
  EXPECT_TRUE(m.find("contamination").has_value());
  EXPECT_TRUE(m.find("endpost_wear").has_value());
  EXPECT_TRUE(m.find("impact_damage").has_value());
  EXPECT_TRUE(m.find("bolt_1").has_value());
  EXPECT_TRUE(m.find("bolt_4").has_value());
  EXPECT_TRUE(m.find("fishplate_crack").has_value());
  EXPECT_TRUE(m.find("glue_degradation").has_value());
  EXPECT_TRUE(m.find("joint_batter").has_value());
  EXPECT_EQ(m.name(m.top()), "ei_joint_failure");
  // Bolt voting gate is 2/4.
  const ft::Gate& bolts = m.structure().gate(*m.find("bolt_group"));
  EXPECT_EQ(bolts.type, ft::GateType::Voting);
  EXPECT_EQ(bolts.k, 2);
  EXPECT_EQ(bolts.children.size(), 4u);
}

TEST(EiJointModel, RdepsConfigured) {
  const fmt::FaultMaintenanceTree m = current_model();
  ASSERT_EQ(m.rdeps().size(), 2u);
  for (const fmt::RateDependency& r : m.rdeps()) {
    EXPECT_EQ(m.name(r.trigger), "joint_batter");
    EXPECT_EQ(r.trigger_phase, 3);
    EXPECT_GE(r.factor, 1.0);
  }
  EiJointParameters p = EiJointParameters::defaults();
  p.enable_rdep = false;
  EXPECT_TRUE(build_ei_joint(p, current_policy()).rdeps().empty());
}

TEST(EiJointModel, CurrentPolicyModules) {
  const fmt::FaultMaintenanceTree m = current_model();
  ASSERT_EQ(m.inspections().size(), 1u);
  EXPECT_DOUBLE_EQ(m.inspections()[0].period, 0.25);
  // Inspection covers every inspectable leaf (all but impact_damage).
  EXPECT_EQ(m.inspections()[0].targets.size(), 10u);
  EXPECT_TRUE(m.replacements().empty());
  EXPECT_TRUE(m.corrective().enabled);
}

TEST(EiJointModel, ImpactDamageIsUndetectable) {
  const fmt::FaultMaintenanceTree m = current_model();
  EXPECT_FALSE(m.ebe(*m.find("impact_damage")).degradation.inspectable());
}

TEST(EiJointModel, MinimalCutSetsAreSingletonsAndBoltPairs) {
  const fmt::FaultMaintenanceTree m = current_model();
  const auto cuts = ft::minimal_cut_sets(m.structure());
  // 7 singleton modes + C(4,2)=6 bolt pairs.
  EXPECT_EQ(cuts.size(), 13u);
  std::size_t singletons = 0, pairs = 0;
  for (const auto& c : cuts) {
    if (c.size() == 1) ++singletons;
    if (c.size() == 2) ++pairs;
  }
  EXPECT_EQ(singletons, 7u);
  EXPECT_EQ(pairs, 6u);
}

TEST(EiJointModel, ParameterValidation) {
  EiJointParameters p = EiJointParameters::defaults();
  p.bolt_vote = 5;  // > num_bolts
  EXPECT_THROW(build_ei_joint(p, current_policy()), ModelError);
}

TEST(EiJointModel, FactoryAppliesPolicy) {
  const auto factory = ei_joint_factory(EiJointParameters::defaults());
  const fmt::FaultMaintenanceTree none = factory(corrective_only());
  EXPECT_TRUE(none.inspections().empty());
  const fmt::FaultMaintenanceTree monthly = factory(inspections_per_year(12));
  ASSERT_EQ(monthly.inspections().size(), 1u);
  EXPECT_NEAR(monthly.inspections()[0].period, 1.0 / 12, 1e-12);
  const fmt::FaultMaintenanceTree renewed = factory(with_renewal(15));
  ASSERT_EQ(renewed.replacements().size(), 1u);
  EXPECT_DOUBLE_EQ(renewed.replacements()[0].period, 15.0);
}

TEST(EiJointModel, AllModesCauseFailuresWithoutMaintenance) {
  // Long-horizon corrective-only run: every mode should eventually be a
  // proximate cause (bolt votes make individual bolts rarer but present).
  const auto factory = ei_joint_factory(EiJointParameters::defaults());
  const fmt::FaultMaintenanceTree m = factory(corrective_only());
  smc::AnalysisSettings s;
  s.horizon = 60;
  s.trajectories = 3000;
  s.seed = 21;
  const smc::KpiReport k = smc::analyze(m, s);
  double total = 0;
  for (double f : k.failures_per_leaf) total += f;
  EXPECT_GT(total, 0);
  // Dominant causes: contamination (fastest mean) then lipping/batter.
  const auto idx = [&](const char* name) {
    return m.ebe_index(*m.find(name));
  };
  EXPECT_GT(k.failures_per_leaf[idx("contamination")],
            k.failures_per_leaf[idx("glue_degradation")]);
  EXPECT_GT(k.failures_per_leaf[idx("contamination")], 0.5 * total);
}

TEST(EiJointModel, CurrentPolicyKpisInPlausibleRange) {
  const fmt::FaultMaintenanceTree m = current_model();
  smc::AnalysisSettings s;
  s.horizon = 20;
  s.trajectories = 4000;
  s.seed = 23;
  const smc::KpiReport k = smc::analyze(m, s);
  // Synthetic calibration target: a few failures per hundred joint-years.
  EXPECT_GT(k.failures_per_year.point, 0.005);
  EXPECT_LT(k.failures_per_year.point, 0.15);
  EXPECT_GT(k.availability.point, 0.995);
  EXPECT_GT(k.cost_per_year.point, 100.0);
  EXPECT_LT(k.cost_per_year.point, 10000.0);
}

}  // namespace
}  // namespace fmtree::eijoint
