// The telemetry invariants the observability layer guarantees:
//
//  1. Telemetry is observational — running an analysis with metrics, tracing
//     and progress enabled produces KPIs bit-identical to a bare run, at any
//     thread count.
//  2. Work counters derived from per-trajectory quantities are themselves
//     deterministic: same (seed, trajectories) => same totals, independent
//     of the thread count.
//  3. The metrics JSON export is byte-stable for a deterministic run
//     (golden file), so the schema cannot drift silently.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "fmt/parser.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "smc/kpi.hpp"

namespace fmtree::smc {
namespace {

const char* kModel = R"(
toplevel System;
System or Wear Electronics;
Wear ebe phases=4 mean=6 threshold=3 repair_cost=800;
Electronics be exp(0.08);
inspection Visual period=0.5 cost=35 targets Wear;
corrective cost=8000 delay=0.02 downtime_rate=50000;
)";

AnalysisSettings base_settings(unsigned threads) {
  AnalysisSettings s;
  s.horizon = 10.0;
  s.trajectories = 4000;
  s.seed = 20260807;
  s.threads = threads;
  return s;
}

#define EXPECT_BIT_EQ(a, b) \
  EXPECT_EQ(std::memcmp(&(a), &(b), sizeof(a)), 0) << #a " differs bitwise"

void expect_reports_identical(const KpiReport& a, const KpiReport& b) {
  EXPECT_EQ(a.trajectories, b.trajectories);
  EXPECT_BIT_EQ(a.reliability, b.reliability);
  EXPECT_BIT_EQ(a.expected_failures, b.expected_failures);
  EXPECT_BIT_EQ(a.availability, b.availability);
  EXPECT_BIT_EQ(a.total_cost, b.total_cost);
  EXPECT_BIT_EQ(a.npv_cost, b.npv_cost);
  EXPECT_BIT_EQ(a.mean_cost, b.mean_cost);
  ASSERT_EQ(a.failures_per_leaf.size(), b.failures_per_leaf.size());
  for (std::size_t i = 0; i < a.failures_per_leaf.size(); ++i) {
    EXPECT_BIT_EQ(a.failures_per_leaf[i], b.failures_per_leaf[i]);
    EXPECT_BIT_EQ(a.repairs_per_leaf[i], b.repairs_per_leaf[i]);
  }
}

TEST(TelemetryDeterminism, EnablingTelemetryChangesNoOutputBit) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  for (unsigned threads : {1u, 2u, 4u}) {
    const KpiReport bare = analyze(model, base_settings(threads));

    obs::MetricsRegistry metrics;
    obs::Tracer tracer;
    obs::ProgressReporter progress([](const obs::Progress&) {}, 0.0);
    AnalysisSettings instrumented = base_settings(threads);
    instrumented.telemetry = {&metrics, &tracer, &progress};
    const KpiReport observed = analyze(model, instrumented);

    SCOPED_TRACE(threads);
    expect_reports_identical(bare, observed);
    EXPECT_EQ(metrics.counter_value("smc.trajectories"), 4000u);
    EXPECT_GT(tracer.size(), 0u);
  }
}

TEST(TelemetryDeterminism, AdaptiveStoppingIsUnaffectedByTelemetry) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  AnalysisSettings s = base_settings(2);
  s.trajectories = 50000;
  s.batch = 1000;
  s.target_relative_error = 0.05;
  const KpiReport bare = analyze(model, s);

  obs::MetricsRegistry metrics;
  obs::ProgressReporter progress([](const obs::Progress&) {}, 0.0);
  AnalysisSettings instrumented = s;
  instrumented.telemetry.metrics = &metrics;
  instrumented.telemetry.progress = &progress;
  const KpiReport observed = analyze(model, instrumented);

  // Telemetry must not perturb the stopping decision: same batch count,
  // same trajectory count, same statistics.
  expect_reports_identical(bare, observed);
  EXPECT_EQ(metrics.counter_value("smc.trajectories"), bare.trajectories);
}

TEST(TelemetryDeterminism, CounterTotalsAreThreadCountInvariant) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  std::string reference;
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    obs::MetricsRegistry metrics;
    AnalysisSettings s = base_settings(threads);
    s.telemetry.metrics = &metrics;
    analyze(model, s);
    const std::string json = metrics.to_json();
    if (reference.empty()) reference = json;
    EXPECT_EQ(json, reference) << "thread count " << threads
                               << " changed the metrics export";
  }
}

TEST(TelemetryDeterminism, MetricsJsonMatchesGoldenFile) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  obs::MetricsRegistry metrics;
  AnalysisSettings s = base_settings(2);
  // The golden file records the scalar engine's event counts; the batch
  // engine draws a different (statistically equivalent) trajectory set, so
  // pin the kernel regardless of the FMTREE_ENGINE process default.
  s.engine = Engine::Scalar;
  s.telemetry.metrics = &metrics;
  analyze(model, s);

  const std::string path =
      std::string(FMTREE_SOURCE_DIR) + "/tests/obs/golden_metrics.json";
  std::ifstream file(path);
  ASSERT_TRUE(file) << "missing golden file " << path;
  std::ostringstream golden;
  golden << file.rdbuf();
  EXPECT_EQ(metrics.to_json() + "\n", golden.str())
      << "metrics schema or values drifted; if intentional, regenerate "
         "tests/obs/golden_metrics.json (the test prints the new content)";
}

}  // namespace
}  // namespace fmtree::smc
