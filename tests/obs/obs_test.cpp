// Unit tests of the observability primitives: metrics registry + per-thread
// accumulators, phase tracer, throttled progress reporting.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"

namespace fmtree::obs {
namespace {

TEST(Metrics, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  const CounterId a = reg.counter("traj");
  const CounterId b = reg.counter("traj");
  EXPECT_EQ(a.index, b.index);
  const GaugeId g1 = reg.gauge("residual");
  const GaugeId g2 = reg.gauge("residual");
  EXPECT_EQ(g1.index, g2.index);
  const HistogramId h1 = reg.histogram("events", 0.0, 100.0, 10);
  const HistogramId h2 = reg.histogram("events", 0.0, 100.0, 10);
  EXPECT_EQ(h1.index, h2.index);
}

TEST(Metrics, HistogramShapeIsValidated) {
  MetricsRegistry reg;
  reg.histogram("h", 0.0, 100.0, 10);
  EXPECT_THROW(reg.histogram("h", 0.0, 200.0, 10), DomainError);  // mismatch
  EXPECT_THROW(reg.histogram("bad", 1.0, 1.0, 10), DomainError);  // empty range
  EXPECT_THROW(reg.histogram("bad", 0.0, 1.0, 0), DomainError);   // no bins
}

TEST(Metrics, DirectMutationAndReadBack) {
  MetricsRegistry reg;
  const CounterId c = reg.counter("c");
  reg.add(c);
  reg.add(c, 41);
  EXPECT_EQ(reg.counter_value("c"), 42u);
  EXPECT_EQ(reg.counter_value("unknown"), 0u);

  const GaugeId g = reg.gauge("g");
  reg.set(g, 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 2.5);

  const HistogramId h = reg.histogram("h", 0.0, 10.0, 5);
  reg.observe(h, -1.0);  // underflow
  reg.observe(h, 3.0);
  reg.observe(h, 99.0);  // overflow
  EXPECT_EQ(reg.histogram_total("h"), 3u);
}

TEST(Metrics, LocalAccumulatorsMergeAndReset) {
  MetricsRegistry reg;
  const CounterId c = reg.counter("c");
  const HistogramId h = reg.histogram("h", 0.0, 10.0, 5);

  LocalMetrics a = reg.local();
  LocalMetrics b = reg.local();
  a.add(c, 10);
  b.add(c, 5);
  a.observe(h, 1.0);
  b.observe(h, 2.0);
  reg.merge(a);
  reg.merge(b);
  EXPECT_EQ(reg.counter_value("c"), 15u);
  EXPECT_EQ(reg.histogram_total("h"), 2u);

  // merge() resets the local state, so folding again adds nothing.
  reg.merge(a);
  EXPECT_EQ(reg.counter_value("c"), 15u);
}

TEST(Metrics, LocalHandlesLateRegistrationAndInvalidIds) {
  MetricsRegistry reg;
  LocalMetrics local = reg.local();  // sized before anything exists
  local.add(CounterId{}, 100);       // invalid id: ignored
  const CounterId c = reg.counter("late");
  local.add(c, 7);  // registered after local() was taken: grows on first use
  reg.merge(local);
  EXPECT_EQ(reg.counter_value("late"), 7u);
}

TEST(Metrics, ConcurrentWorkersMergeExactly) {
  MetricsRegistry reg;
  const CounterId c = reg.counter("n");
  constexpr int kThreads = 4, kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      LocalMetrics local = reg.local();
      for (int i = 0; i < kPerThread; ++i) local.add(c);
      reg.merge(local);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(reg.counter_value("n"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, JsonFollowsSchemaWithSortedKeys) {
  MetricsRegistry reg;
  reg.add(reg.counter("zeta"), 1);
  reg.add(reg.counter("alpha"), 2);
  reg.set(reg.gauge("g"), 1.5);
  reg.gauge("never_set");  // registered but unset gauges are omitted
  reg.observe(reg.histogram("h", 0.0, 2.0, 2), 0.5);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema\": \"fmtree.metrics/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));  // sorted
  EXPECT_EQ(json.find("never_set"), std::string::npos);
  EXPECT_NE(json.find("\"underflow\""), std::string::npos);
  EXPECT_NE(json.find("\"total\""), std::string::npos);
}

TEST(Metrics, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg;
  const CounterId c = reg.counter("c");
  reg.add(c, 5);
  reg.reset_values();
  EXPECT_EQ(reg.counter_value("c"), 0u);
  EXPECT_EQ(reg.counter("c").index, c.index);
}

TEST(Tracer, SpansNestPerThread) {
  Tracer tracer;
  {
    auto outer = tracer.span("simulate");
    auto inner = tracer.span("batch");
    inner.close();
    inner.close();  // idempotent
  }
  const std::vector<SpanRecord> spans = tracer.records();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "simulate");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "batch");
  EXPECT_EQ(spans[1].parent, 0);  // nested under "simulate"
  for (const SpanRecord& s : spans) {
    EXPECT_GT(s.end_ns, 0u);
    EXPECT_GE(s.end_ns, s.start_ns);
  }
}

TEST(Tracer, ThreadsGetDenseNumbersAndRootSpans) {
  Tracer tracer;
  auto main_span = tracer.span("main");
  std::thread worker([&] { tracer.span("worker"); });
  worker.join();
  main_span.close();
  const auto spans = tracer.records();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].thread, spans[1].thread);
  // The worker's span must not be parented to another thread's open span.
  EXPECT_EQ(spans[1].parent, -1);
}

TEST(Tracer, ExportsBothSchemas) {
  Tracer tracer;
  tracer.span("parse").close();
  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"schema\": \"fmtree.trace/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"cpu_ms\""), std::string::npos);

  const std::string chrome = tracer.to_chrome_trace();
  EXPECT_EQ(chrome.front(), '[');
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"parse\""), std::string::npos);
}

TEST(Tracer, MaybeSpanToleratesNull) {
  auto span = maybe_span(nullptr, "anything");
  span.close();  // no tracer: nothing to do, nothing to crash
  Tracer tracer;
  maybe_span(&tracer, "real").close();
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Progress, DeliversAndComputesRate) {
  std::vector<Progress> seen;
  ProgressReporter reporter([&](const Progress& p) { seen.push_back(p); },
                            /*min_interval_seconds=*/0.0);
  Progress p;
  p.phase = "simulate";
  p.done = 100;
  p.total = 300;
  reporter.update(p);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  p.done = 200;
  reporter.update(p);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(reporter.deliveries(), 2u);
  EXPECT_EQ(seen[0].rate, 0.0);  // no previous sample yet
  EXPECT_GT(seen[1].rate, 0.0);
  EXPECT_GT(seen[1].eta_seconds, 0.0);
  EXPECT_EQ(seen[1].phase, "simulate");
}

TEST(Progress, ThrottleAdmitsOneDeliveryPerInterval) {
  std::atomic<int> calls{0};
  ProgressReporter reporter([&](const Progress&) { ++calls; },
                            /*min_interval_seconds=*/3600.0);
  Progress p;
  reporter.update(p);  // first call is due immediately
  for (int i = 0; i < 100; ++i) reporter.update(p);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_FALSE(reporter.due());
  reporter.report_now(p);  // forced delivery bypasses the throttle
  EXPECT_EQ(calls.load(), 2);
}

}  // namespace
}  // namespace fmtree::obs
