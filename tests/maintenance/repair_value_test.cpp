#include "maintenance/repair_value.hpp"

#include <gtest/gtest.h>

#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "util/error.hpp"

namespace fmtree::maintenance {
namespace {

// ---- remove_inspection_target ------------------------------------------------

fmt::FaultMaintenanceTree two_target_model() {
  fmt::FaultMaintenanceTree m;
  const auto a = m.add_ebe("a", fmt::DegradationModel::erlang(3, 5, 2),
                           fmt::RepairSpec{"fix", 10});
  const auto b = m.add_ebe("b", fmt::DegradationModel::erlang(3, 7, 2),
                           fmt::RepairSpec{"fix", 10});
  m.set_top(m.add_or("top", {a, b}));
  m.add_inspection(fmt::InspectionModule{"i", 0.5, -1, 5, {a, b}});
  return m;
}

TEST(RemoveInspectionTarget, RemovesOnlyTheLeaf) {
  fmt::FaultMaintenanceTree m = two_target_model();
  m.remove_inspection_target(0, *m.find("a"));
  ASSERT_EQ(m.inspections().size(), 1u);
  ASSERT_EQ(m.inspections()[0].targets.size(), 1u);
  EXPECT_EQ(m.name(m.inspections()[0].targets[0]), "b");
  EXPECT_NO_THROW(m.validate());
}

TEST(RemoveInspectionTarget, LastTargetDeletesModule) {
  fmt::FaultMaintenanceTree m = two_target_model();
  m.remove_inspection_target(0, *m.find("a"));
  m.remove_inspection_target(0, *m.find("b"));
  EXPECT_TRUE(m.inspections().empty());
}

TEST(RemoveInspectionTarget, NonTargetIsNoop) {
  fmt::FaultMaintenanceTree m = two_target_model();
  m.remove_inspection_target(0, *m.find("a"));
  m.remove_inspection_target(0, *m.find("a"));  // already gone
  EXPECT_EQ(m.inspections()[0].targets.size(), 1u);
  EXPECT_THROW(m.remove_inspection_target(5, *m.find("a")), ModelError);
}

// ---- repair_value_analysis ------------------------------------------------------

TEST(RepairValue, RequiresInspections) {
  const auto m = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                         eijoint::corrective_only());
  smc::AnalysisSettings s;
  EXPECT_THROW(repair_value_analysis(m, s), DomainError);
}

TEST(RepairValue, KnockoutIncreasesFailuresForDominantMode) {
  const auto m = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                         eijoint::current_policy());
  smc::AnalysisSettings s;
  s.horizon = 20;
  s.trajectories = 2000;
  s.seed = 42;
  const auto values = repair_value_analysis(m, s);
  ASSERT_EQ(values.size(), 10u);  // every inspectable leaf
  // Sorted by net value, contamination first, and dropping it clearly hurts.
  EXPECT_EQ(values.front().mode, "contamination");
  EXPECT_GT(values.front().extra_failures.lo, 0.0);
  EXPECT_GT(values.front().extra_cost.lo, 0.0);
  EXPECT_GT(values.front().repair_spend, 0.0);
  // Net values nonincreasing.
  for (std::size_t i = 1; i < values.size(); ++i)
    EXPECT_LE(values[i].net_value(), values[i - 1].net_value());
}

TEST(RepairValue, WorthlessInspectionHasNoFailureEffect) {
  // A leaf whose degradation never reaches failure within the horizon:
  // dropping its repairs cannot change failures.
  fmt::FaultMaintenanceTree m;
  const auto slow = m.add_ebe("slow", fmt::DegradationModel::erlang(4, 4000, 2),
                              fmt::RepairSpec{"fix", 10});
  const auto fast = m.add_basic_event("fast", Distribution::exponential(0.2));
  m.set_top(m.add_or("top", {slow, fast}));
  m.add_inspection(fmt::InspectionModule{"i", 0.5, -1, 1, {slow}});
  m.set_corrective(fmt::CorrectivePolicy{true, 0.0, 100, 0});
  smc::AnalysisSettings s;
  s.horizon = 10;
  s.trajectories = 2000;
  s.seed = 7;
  const auto values = repair_value_analysis(m, s);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_TRUE(values[0].extra_failures.contains(0.0));
}

}  // namespace
}  // namespace fmtree::maintenance
