#include <gtest/gtest.h>

#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "maintenance/optimizer.hpp"
#include "maintenance/policy.hpp"
#include "util/error.hpp"

namespace fmtree::maintenance {
namespace {

fmt::FaultMaintenanceTree bare_model() {
  fmt::FaultMaintenanceTree m;
  const fmt::NodeId a = m.add_ebe("wear", fmt::DegradationModel::erlang(3, 5.0, 2),
                                  fmt::RepairSpec{"fix", 100});
  const fmt::NodeId b = m.add_basic_event("shock", Distribution::exponential(0.05));
  m.set_top(m.add_or("top", {a, b}));
  return m;
}

TEST(Policy, ApplyAddsModulesFromPolicy) {
  fmt::FaultMaintenanceTree m = bare_model();
  MaintenancePolicy p;
  p.name = "test";
  p.inspection_period = 0.5;
  p.inspection_cost = 10;
  p.replacement_period = 20;
  p.replacement_cost = 1000;
  p.corrective = fmt::CorrectivePolicy{true, 0.1, 500, 0};
  apply_policy(m, p);
  ASSERT_EQ(m.inspections().size(), 1u);
  EXPECT_DOUBLE_EQ(m.inspections()[0].period, 0.5);
  // Only the inspectable leaf is targeted.
  ASSERT_EQ(m.inspections()[0].targets.size(), 1u);
  EXPECT_EQ(m.name(m.inspections()[0].targets[0]), "wear");
  // Replacement covers everything.
  ASSERT_EQ(m.replacements().size(), 1u);
  EXPECT_EQ(m.replacements()[0].targets.size(), 2u);
  EXPECT_TRUE(m.corrective().enabled);
  EXPECT_NO_THROW(m.validate());
}

TEST(Policy, ZeroPeriodsMeanNoModules) {
  fmt::FaultMaintenanceTree m = bare_model();
  MaintenancePolicy p;  // all periods 0
  apply_policy(m, p);
  EXPECT_TRUE(m.inspections().empty());
  EXPECT_TRUE(m.replacements().empty());
}

TEST(Policy, InspectionWithoutInspectableLeavesThrows) {
  fmt::FaultMaintenanceTree m;
  m.set_top(m.add_basic_event("shock", Distribution::exponential(0.1)));
  MaintenancePolicy p;
  p.inspection_period = 1.0;
  EXPECT_THROW(apply_policy(m, p), ModelError);
}

TEST(Policy, FrequencyHelpers) {
  MaintenancePolicy p;
  p.inspection_period = 0.25;
  EXPECT_DOUBLE_EQ(p.inspections_per_year(), 4.0);
  p.inspection_period = 0;
  EXPECT_DOUBLE_EQ(p.inspections_per_year(), 0.0);
  EXPECT_FALSE(p.has_inspections());
}

TEST(Optimizer, CandidateGenerationNamesAndPeriods) {
  MaintenancePolicy base;
  base.inspection_cost = 35;
  const auto cands = inspection_frequency_candidates(base, {0, 2, 4});
  ASSERT_EQ(cands.size(), 3u);
  EXPECT_EQ(cands[0].name, "no-inspection");
  EXPECT_DOUBLE_EQ(cands[0].inspection_period, 0.0);
  EXPECT_DOUBLE_EQ(cands[1].inspection_period, 0.5);
  EXPECT_DOUBLE_EQ(cands[2].inspection_period, 0.25);
  EXPECT_THROW(inspection_frequency_candidates(base, {}), DomainError);
  EXPECT_THROW(inspection_frequency_candidates(base, {-1.0}), DomainError);
}

TEST(Optimizer, SweepFindsInteriorOptimum) {
  // Inspections are cheap relative to failures, but over-inspection must
  // eventually dominate: the swept curve should have its minimum strictly
  // inside and cost must be reported for every candidate.
  auto factory = [](const MaintenancePolicy& p) {
    fmt::FaultMaintenanceTree m = bare_model();
    apply_policy(m, p);
    return m;
  };
  MaintenancePolicy base;
  base.inspection_cost = 30;
  base.corrective = fmt::CorrectivePolicy{true, 0.05, 3000, 0};
  const auto candidates = inspection_frequency_candidates(base, {0, 1, 4, 52});
  smc::AnalysisSettings s;
  s.horizon = 10;
  s.trajectories = 4000;
  s.seed = 17;
  const SweepResult result = sweep_policies(factory, candidates, s);
  ASSERT_EQ(result.curve.size(), 4u);
  for (const PolicyEvaluation& e : result.curve) EXPECT_GT(e.cost_per_year(), 0.0);
  // No inspection must be more expensive than the best found.
  EXPECT_GT(result.curve[0].cost_per_year(), result.best().cost_per_year());
  // Weekly inspections (52/yr at 30 each = 1560/yr) must also lose.
  EXPECT_GT(result.curve[3].cost_per_year(), result.best().cost_per_year());
}

TEST(Optimizer, SweepRejectsEmptyCandidates) {
  auto factory = [](const MaintenancePolicy&) { return bare_model(); };
  smc::AnalysisSettings s;
  EXPECT_THROW(sweep_policies(factory, {}, s), DomainError);
}

TEST(Scenarios, CatalogueIsConsistent) {
  const auto strategies = eijoint::paper_strategies();
  ASSERT_GE(strategies.size(), 6u);
  EXPECT_EQ(strategies[0].name, "corrective-only");
  EXPECT_FALSE(strategies[0].has_inspections());
  bool found_current = false;
  for (const auto& s : strategies) {
    EXPECT_TRUE(s.corrective.enabled);  // failures always fixed
    if (s.name == "current-4x") {
      found_current = true;
      EXPECT_DOUBLE_EQ(s.inspection_period, 0.25);
    }
  }
  EXPECT_TRUE(found_current);
  // The renewal variant really has a replacement period.
  EXPECT_GT(strategies.back().replacement_period, 0.0);
}

TEST(Scenarios, InspectionFrequencyFactory) {
  EXPECT_DOUBLE_EQ(eijoint::inspections_per_year(8).inspection_period, 0.125);
  EXPECT_FALSE(eijoint::inspections_per_year(0).has_inspections());
}

}  // namespace
}  // namespace fmtree::maintenance
