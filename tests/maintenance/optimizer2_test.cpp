// Golden-section refinement and CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "maintenance/optimizer.hpp"
#include "smc/export.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace fmtree::maintenance {
namespace {

TEST(RefineFrequency, Validation) {
  auto factory = [](const MaintenancePolicy&) {
    fmt::FaultMaintenanceTree m;
    m.set_top(m.add_basic_event("a", Distribution::exponential(1)));
    return m;
  };
  smc::AnalysisSettings s;
  EXPECT_THROW(refine_inspection_frequency(factory, {}, 0, 5, s), DomainError);
  EXPECT_THROW(refine_inspection_frequency(factory, {}, 5, 2, s), DomainError);
  EXPECT_THROW(refine_inspection_frequency(factory, {}, 1, 5, s, 0), DomainError);
}

TEST(RefineFrequency, FindsInteriorOptimumOnEiJoint) {
  const auto factory = eijoint::ei_joint_factory(eijoint::EiJointParameters::defaults());
  smc::AnalysisSettings s;
  s.horizon = 20;
  s.trajectories = 4000;
  s.seed = 99;
  const RefinedOptimum opt = refine_inspection_frequency(
      factory, eijoint::current_policy(), 0.5, 12.0, s, 10);
  // The grid analysis puts the optimum near 3-4/yr; the refinement must
  // land in that neighbourhood (noise allows some slack).
  EXPECT_GT(opt.frequency, 1.5);
  EXPECT_LT(opt.frequency, 7.0);
  EXPECT_EQ(opt.evaluations, 12u);  // 2 + iterations
  // And it must not be worse than the endpoints.
  const auto candidates =
      inspection_frequency_candidates(eijoint::current_policy(), {0.5, 12.0});
  const SweepResult ends = sweep_policies(factory, candidates, s);
  EXPECT_LT(opt.cost_per_year, ends.curve[0].cost_per_year());
  EXPECT_LT(opt.cost_per_year, ends.curve[1].cost_per_year());
}

TEST(CsvExport, CurveRoundTrips) {
  std::vector<smc::CurvePoint> curve{
      {0.0, {1.0, 0.99, 1.0, 0.95}},
      {5.0, {0.75, 0.74, 0.76, 0.95}},
  };
  std::ostringstream os;
  smc::write_curve_csv(os, curve, "reliability");
  const auto rows = read_csv_string(os.str());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (CsvRow{"t", "reliability", "ci_lo", "ci_hi"}));
  EXPECT_EQ(std::stod(rows[2][1]), 0.75);
}

TEST(CsvExport, ReportIncludesAttribution) {
  const auto model = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                             eijoint::current_policy());
  smc::AnalysisSettings s;
  s.horizon = 5;
  s.trajectories = 200;
  s.seed = 4;
  const smc::KpiReport report = smc::analyze(model, s);
  std::vector<std::string> names;
  for (const auto& e : model.ebes()) names.push_back(e.name);
  std::ostringstream os;
  smc::write_report_csv(os, report, names);
  const std::string text = os.str();
  EXPECT_NE(text.find("cost_per_year"), std::string::npos);
  EXPECT_NE(text.find("failures_per_horizon:contamination"), std::string::npos);
  // Wrong leaf count rejected.
  names.pop_back();
  std::ostringstream os2;
  EXPECT_THROW(smc::write_report_csv(os2, report, names), DomainError);
}

}  // namespace
}  // namespace fmtree::maintenance
