// Fuzz-style robustness: the error-recovery parsers must never throw, crash
// or hand back a half-built model — malformed input always becomes typed
// diagnostics. Runs over a committed corpus of adversarial inputs
// (tests/ft/corpus/) plus a deterministic randomized mutator, and is part of
// the sanitizer CI job, so any UB in the recovery paths fails loudly.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fmt/parser.hpp"
#include "ft/parser.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fmtree {
namespace {

std::filesystem::path corpus_dir() {
  for (const char* candidate : {"tests/ft/corpus", "../tests/ft/corpus",
                                FMTREE_SOURCE_DIR "/tests/ft/corpus"}) {
    if (std::filesystem::is_directory(candidate)) return candidate;
  }
  ADD_FAILURE() << "cannot locate tests/ft/corpus";
  return {};
}

std::vector<std::pair<std::string, std::string>> load_corpus() {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_dir())) {
    if (entry.path().extension() != ".fmt") continue;
    std::ifstream f(entry.path());
    std::ostringstream text;
    text << f.rdbuf();
    out.emplace_back(entry.path().filename().string(), text.str());
  }
  return out;
}

/// Every diagnostic must carry a stable code: one category letter and a
/// number (e.g. "P104"). Crash-shaped output (empty code, free text) fails.
void expect_well_formed(const Diagnostics& diags, const std::string& source) {
  for (const Diagnostic& d : diags.all()) {
    ASSERT_GE(d.code.size(), 2u) << source;
    EXPECT_NE(std::string("LPMNRUX").find(d.code[0]), std::string::npos)
        << source << ": code " << d.code;
    for (std::size_t i = 1; i < d.code.size(); ++i)
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(d.code[i])))
          << source << ": code " << d.code;
    EXPECT_FALSE(d.message.empty()) << source;
  }
}

TEST(FuzzCorpus, EveryCorpusFileYieldsOnlyTypedDiagnostics) {
  const auto corpus = load_corpus();
  ASSERT_GE(corpus.size(), 10u) << "corpus went missing";
  for (const auto& [name, text] : corpus) {
    SCOPED_TRACE(name);
    fmt::FmtParseResult r;
    ASSERT_NO_THROW(r = fmt::parse_fmt_collect(text));
    EXPECT_EQ(r.model.has_value(), !r.diagnostics.has_errors());
    expect_well_formed(r.diagnostics, name);

    ft::FtParseResult ft_result;
    ASSERT_NO_THROW(ft_result = ft::parse_fault_tree_collect(text));
    EXPECT_EQ(ft_result.tree.has_value(), !ft_result.diagnostics.has_errors());
    expect_well_formed(ft_result.diagnostics, name);
  }
}

TEST(FuzzCorpus, MixedErrorFileSurfacesMultipleCategoriesInOnePass) {
  std::ifstream f(corpus_dir() / "mixed_errors.fmt");
  std::ostringstream text;
  text << f.rdbuf();
  const fmt::FmtParseResult r = fmt::parse_fmt_collect(text.str());
  EXPECT_FALSE(r.model.has_value());
  bool lexical = false, syntax = false;
  for (const Diagnostic& d : r.diagnostics.all()) {
    lexical |= d.code[0] == 'L';
    syntax |= d.code[0] == 'P';
  }
  EXPECT_TRUE(lexical);
  EXPECT_TRUE(syntax);
  EXPECT_GE(r.diagnostics.error_count(), 4u);
}

const char* kSeedModel = R"(
toplevel System;
System or Electrical Mechanical;
Electrical or Lipping Contamination;
Mechanical vot 2 B1 B2 B3;
Lipping ebe phases=6 mean=10 threshold=4 repair_cost=800 repair=grind;
Contamination ebe phases=3 mean=3 threshold=2 repair_cost=250;
B1 ebe phases=2 mean=40 threshold=2;
B2 ebe phases=2 mean=40 threshold=2;
B3 be exp(0.025);
rdep Accel factor=3 trigger=Contamination targets Lipping;
inspection Visual period=0.25 cost=35 targets Lipping Contamination B1 B2;
corrective cost=8000 delay=0.02 downtime_rate=50000;
)";

/// Deterministic document mutator: byte substitutions, deletions,
/// duplications and statement shuffles/drops, seeded per repetition.
std::string mutate(const std::string& text, RandomStream& rng) {
  std::string out = text;
  const std::uint64_t ops = 1 + rng.below(4);
  for (std::uint64_t op = 0; op < ops && !out.empty(); ++op) {
    switch (rng.below(5)) {
      case 0:  // substitute a printable byte
        out[rng.below(out.size())] = static_cast<char>(32 + rng.below(95));
        break;
      case 1:  // delete a byte
        out.erase(rng.below(out.size()), 1);
        break;
      case 2:  // duplicate a span
        {
          const std::size_t pos = rng.below(out.size());
          const std::size_t len =
              std::min<std::size_t>(1 + rng.below(12), out.size() - pos);
          out.insert(pos, out.substr(pos, len));
        }
        break;
      case 3:  // drop everything after a random ';'
        {
          const std::size_t cut = out.find(';', rng.below(out.size()));
          if (cut != std::string::npos) out.resize(cut + 1);
        }
        break;
      case 4:  // splice a random token
        {
          static const char* kTokens[] = {";", "=", "(", ")", "toplevel", "ebe",
                                          "1e999", "\"", "#", "vot", "targets"};
          out.insert(rng.below(out.size()), kTokens[rng.below(std::size(kTokens))]);
        }
        break;
    }
  }
  return out;
}

TEST(FuzzMutator, CollectNeverThrowsAndNeverHandsBackABrokenModel) {
  const std::string seed_text = kSeedModel;
  for (std::uint64_t rep = 0; rep < 400; ++rep) {
    RandomStream rng(20260807, rep);
    const std::string mutated = mutate(seed_text, rng);
    SCOPED_TRACE("rep " + std::to_string(rep));
    fmt::FmtParseResult r;
    ASSERT_NO_THROW(r = fmt::parse_fmt_collect(mutated));
    EXPECT_EQ(r.model.has_value(), !r.diagnostics.has_errors());
    expect_well_formed(r.diagnostics, mutated);
    if (r.model.has_value()) {
      // Survivors must be fully valid models, not half-built ones.
      ASSERT_NO_THROW(r.model->validate());
    }
  }
}

TEST(FuzzMutator, ThrowingParserAgreesWithCollector) {
  // parse_fmt is collect + throw: it must throw exactly when the collector
  // records errors, and the exception carries the same diagnostics.
  for (std::uint64_t rep = 0; rep < 100; ++rep) {
    RandomStream rng(77, rep);
    const std::string mutated = mutate(kSeedModel, rng);
    const fmt::FmtParseResult collected = fmt::parse_fmt_collect(mutated);
    if (!collected.diagnostics.has_errors()) {
      EXPECT_NO_THROW((void)fmt::parse_fmt(mutated));
      continue;
    }
    try {
      (void)fmt::parse_fmt(mutated);
      FAIL() << "collector saw errors but parse_fmt did not throw (rep " << rep << ")";
    } catch (const ParseErrors& e) {
      EXPECT_EQ(e.diagnostics().size(), collected.diagnostics.error_count());
    } catch (const ModelErrors& e) {
      EXPECT_EQ(e.diagnostics().size(), collected.diagnostics.error_count());
    }
  }
}

}  // namespace
}  // namespace fmtree
