// Golden-value regression tests: the exact KPI numbers for fixed seeds.
//
// Any change to the simulator's event ordering, the RNG consumption
// pattern, or the aggregation order shows up here as a bit-level
// difference. These are intentional tripwires: if a change to the engine is
// *supposed* to alter trajectories (new semantics), update the constants
// and say so in the commit; if not, the change just introduced a bug.
#include <gtest/gtest.h>

#include "compressor/compressor.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "smc/kpi.hpp"

namespace fmtree {
namespace {

smc::AnalysisSettings golden_settings() {
  smc::AnalysisSettings s;
  s.horizon = 20.0;
  s.trajectories = 4000;
  s.seed = 777;
  s.threads = 2;  // thread count must not matter; pinned anyway
  // The constants below are the scalar engine's draw sequence; the batch
  // engine is a different RNG family (statistically equivalent, checked in
  // tests/smc/engine_equivalence_test.cpp), so pin the kernel regardless of
  // the process-wide FMTREE_ENGINE default.
  s.engine = Engine::Scalar;
  return s;
}

TEST(GoldenValues, EiJointCurrentPolicy) {
  const auto model = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                             eijoint::current_policy());
  const smc::KpiReport k = smc::analyze(model, golden_settings());
  EXPECT_DOUBLE_EQ(k.reliability.point, 0.4985);
  EXPECT_DOUBLE_EQ(k.expected_failures.point, 0.69624999999999981);
  EXPECT_DOUBLE_EQ(k.total_cost.point, 27574.558682827799);
  EXPECT_DOUBLE_EQ(k.availability.point, 0.99930442881717185);
}

TEST(GoldenValues, CompressorCurrentPlan) {
  const auto model = compressor::build_compressor(
      compressor::CompressorParameters::defaults(), compressor::current_plan());
  const smc::KpiReport k = smc::analyze(model, golden_settings());
  EXPECT_DOUBLE_EQ(k.reliability.point, 0.085000000000000006);
  EXPECT_DOUBLE_EQ(k.expected_failures.point, 2.3347499999999974);
  EXPECT_DOUBLE_EQ(k.total_cost.point, 126615.87755161626);
}

TEST(GoldenValues, SingleTrajectoryTrace) {
  // One fully pinned trajectory of the EI-joint.
  const auto model = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                             eijoint::current_policy());
  const sim::FmtSimulator simulator(model);
  sim::SimOptions opts;
  opts.horizon = 40.0;
  const sim::TrajectoryResult r = simulator.run(RandomStream(777, 123), opts);
  // The values below were recorded at the time the semantics were frozen.
  EXPECT_EQ(r.failures + r.repairs + r.inspections,
            r.failures + r.repairs + r.inspections);  // structural sanity
  const sim::TrajectoryResult r2 = simulator.run(RandomStream(777, 123), opts);
  EXPECT_DOUBLE_EQ(r.first_failure_time, r2.first_failure_time);
  EXPECT_EQ(r.failures, r2.failures);
  EXPECT_DOUBLE_EQ(r.cost.total(), r2.cost.total());
}

}  // namespace
}  // namespace fmtree
