// Property-based tests: the qualitative laws of maintenance the paper's
// analysis relies on, checked over parameter sweeps of the EI-joint model.
#include <gtest/gtest.h>

#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "fmt/parser.hpp"
#include "smc/kpi.hpp"

namespace fmtree {
namespace {

using eijoint::EiJointParameters;

smc::AnalysisSettings settings(std::uint64_t trajectories = 4000,
                               double horizon = 20.0) {
  smc::AnalysisSettings s;
  s.horizon = horizon;
  s.trajectories = trajectories;
  s.seed = 4242;
  return s;
}

smc::KpiReport analyze_with_frequency(double freq, EiJointParameters params =
                                                       EiJointParameters::defaults()) {
  const auto model = eijoint::build_ei_joint(params, eijoint::inspections_per_year(freq));
  return smc::analyze(model, settings());
}

// ---- P1: more inspections never hurt reliability -----------------------------

class InspectionFrequencyMonotonicity
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(InspectionFrequencyMonotonicity, FewerFailuresWithMoreInspections) {
  const auto [low_freq, high_freq] = GetParam();
  const smc::KpiReport low = analyze_with_frequency(low_freq);
  const smc::KpiReport high = analyze_with_frequency(high_freq);
  EXPECT_GT(low.expected_failures.point, high.expected_failures.point)
      << low_freq << " vs " << high_freq;
  EXPECT_LT(low.reliability.point, high.reliability.point);
}

INSTANTIATE_TEST_SUITE_P(FrequencyPairs, InspectionFrequencyMonotonicity,
                         ::testing::Values(std::pair{0.0, 1.0}, std::pair{1.0, 4.0},
                                           std::pair{4.0, 24.0}, std::pair{0.0, 24.0}));

// ---- P2: reliability curves are monotone in time ------------------------------

TEST(Properties, ReliabilityNonincreasingInTime) {
  const auto model = eijoint::build_ei_joint(EiJointParameters::defaults(),
                                             eijoint::current_policy());
  const auto curve = smc::reliability_curve(model, smc::linspace_grid(40, 20),
                                            settings(4000, 40));
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LE(curve[i].value.point, curve[i - 1].value.point + 1e-12);
}

// ---- P3: disabling RDEP underestimates failures --------------------------------

TEST(Properties, RdepIncreasesFailures) {
  EiJointParameters with = EiJointParameters::defaults();
  EiJointParameters without = with;
  without.enable_rdep = false;
  // Sparse inspections so batter actually reaches its trigger phase.
  const auto m_with = eijoint::build_ei_joint(with, eijoint::inspections_per_year(0.5));
  const auto m_without =
      eijoint::build_ei_joint(without, eijoint::inspections_per_year(0.5));
  const smc::KpiReport k_with = smc::analyze(m_with, settings(8000));
  const smc::KpiReport k_without = smc::analyze(m_without, settings(8000));
  EXPECT_GT(k_with.expected_failures.point, k_without.expected_failures.point);
}

// ---- P4: a later inspection threshold means more escapes ------------------------

TEST(Properties, LaterThresholdMeansMoreFailures) {
  EiJointParameters early = EiJointParameters::defaults();
  early.contamination.threshold = 1;  // visible immediately
  EiJointParameters late = EiJointParameters::defaults();
  late.contamination.threshold = 3;  // visible only in the last phase
  const smc::KpiReport k_early = smc::analyze(
      eijoint::build_ei_joint(early, eijoint::current_policy()), settings(8000));
  const smc::KpiReport k_late = smc::analyze(
      eijoint::build_ei_joint(late, eijoint::current_policy()), settings(8000));
  EXPECT_GT(k_late.expected_failures.point, k_early.expected_failures.point);
}

// ---- P5: single-phase (exponential) degradation defeats inspections -------------

TEST(Properties, ExponentialDegradationMakesInspectionsUseless) {
  // With one phase there is no observable precursor: inspections cannot
  // reduce contamination failures (threshold 1 repairs only freshly-new
  // state... threshold must be past the end to express 'no precursor').
  EiJointParameters p = EiJointParameters::defaults();
  p.contamination.phases = 1;
  p.contamination.threshold = 2;  // undetectable
  const smc::KpiReport sparse = smc::analyze(
      eijoint::build_ei_joint(p, eijoint::inspections_per_year(1)), settings(8000));
  const smc::KpiReport frequent = smc::analyze(
      eijoint::build_ei_joint(p, eijoint::inspections_per_year(12)), settings(8000));
  // Contamination-attributed failures are statistically indistinguishable.
  const auto model = eijoint::build_ei_joint(p, eijoint::current_policy());
  const std::size_t idx = model.ebe_index(*model.find("contamination"));
  EXPECT_NEAR(sparse.failures_per_leaf[idx], frequent.failures_per_leaf[idx],
              0.12 * sparse.failures_per_leaf[idx] + 0.05);
}

// ---- P6: maintenance costs respond to their drivers ------------------------------

TEST(Properties, InspectionCostScalesLinearly) {
  const smc::KpiReport k4 = analyze_with_frequency(4.0);
  const smc::KpiReport k8 = analyze_with_frequency(8.0);
  EXPECT_NEAR(k8.mean_cost.inspection, 2 * k4.mean_cost.inspection,
              0.02 * k8.mean_cost.inspection + 1.0);
}

TEST(Properties, FailureCostProportionalToFailures) {
  const smc::KpiReport k = analyze_with_frequency(2.0);
  EXPECT_NEAR(k.mean_cost.corrective, k.expected_failures.point * 8000.0, 1e-6);
}

// ---- P7: end-to-end text-format pipeline ------------------------------------------

TEST(Integration, ParsedModelAnalyzesSameAsBuilt) {
  const auto built = eijoint::build_ei_joint(EiJointParameters::defaults(),
                                             eijoint::current_policy());
  const auto parsed = fmt::parse_fmt(fmt::to_text(built));
  const smc::KpiReport k1 = smc::analyze(built, settings(3000));
  const smc::KpiReport k2 = smc::analyze(parsed, settings(3000));
  // Identical semantics and identical RNG consumption order -> identical
  // estimates, not merely close ones.
  EXPECT_DOUBLE_EQ(k1.expected_failures.point, k2.expected_failures.point);
  EXPECT_DOUBLE_EQ(k1.total_cost.point, k2.total_cost.point);
  EXPECT_DOUBLE_EQ(k1.reliability.point, k2.reliability.point);
}

// ---- P8: seed invariance and thread invariance of the headline analysis ----------

TEST(Integration, AnalysisDeterministicAcrossThreadCounts) {
  const auto model = eijoint::build_ei_joint(EiJointParameters::defaults(),
                                             eijoint::current_policy());
  smc::AnalysisSettings s1 = settings(2000);
  s1.threads = 1;
  smc::AnalysisSettings s8 = settings(2000);
  s8.threads = 8;
  const smc::KpiReport k1 = smc::analyze(model, s1);
  const smc::KpiReport k8 = smc::analyze(model, s8);
  EXPECT_DOUBLE_EQ(k1.expected_failures.point, k8.expected_failures.point);
  EXPECT_DOUBLE_EQ(k1.total_cost.point, k8.total_cost.point);
  EXPECT_DOUBLE_EQ(k1.reliability.point, k8.reliability.point);
  EXPECT_EQ(k1.failures_per_leaf, k8.failures_per_leaf);
}

// ---- P9: the paper's headline (C4) as a regression property -----------------------

TEST(Integration, CurrentPolicyNearCostOptimal) {
  // The cost curve over inspection frequencies has an interior minimum and
  // the current policy (4x) is within 15% of it.
  std::vector<double> freqs{0, 1, 2, 4, 8, 12};
  double best = 1e18, current = 0;
  for (double f : freqs) {
    const double cost = analyze_with_frequency(f).cost_per_year.point;
    best = std::min(best, cost);
    if (f == 4.0) current = cost;
  }
  EXPECT_LE(current, 1.15 * best);
  // And the extremes are clearly worse than the optimum.
  EXPECT_GT(analyze_with_frequency(0).cost_per_year.point, 1.5 * best);
}

}  // namespace
}  // namespace fmtree
