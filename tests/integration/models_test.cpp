// The shipped .fmt model files must stay parseable and in sync with the
// C++ builders they were generated from.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "compressor/compressor.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "fmt/parser.hpp"
#include "smc/kpi.hpp"

namespace fmtree {
namespace {

std::string read_model_file(const std::string& name) {
  // ctest runs from the build tree; models/ lives in the source tree next
  // to it. Try both layouts.
  for (const std::string& prefix : {std::string("models/"), std::string("../models/"),
                                    std::string(FMTREE_SOURCE_DIR "/models/")}) {
    std::ifstream f(prefix + name);
    if (f) {
      std::ostringstream text;
      text << f.rdbuf();
      return text.str();
    }
  }
  ADD_FAILURE() << "cannot locate models/" << name;
  return {};
}

TEST(ShippedModels, EiJointMatchesBuilder) {
  const fmt::FaultMaintenanceTree parsed =
      fmt::parse_fmt(read_model_file("ei_joint.fmt"));
  const fmt::FaultMaintenanceTree built = eijoint::build_ei_joint(
      eijoint::EiJointParameters::defaults(), eijoint::current_policy());
  // Same serialized form = same model.
  EXPECT_EQ(fmt::to_text(parsed), fmt::to_text(built));
}

TEST(ShippedModels, CompressorMatchesBuilder) {
  const fmt::FaultMaintenanceTree parsed =
      fmt::parse_fmt(read_model_file("compressor.fmt"));
  const fmt::FaultMaintenanceTree built = compressor::build_compressor(
      compressor::CompressorParameters::defaults(), compressor::current_plan());
  EXPECT_EQ(fmt::to_text(parsed), fmt::to_text(built));
}

TEST(ShippedModels, PumpingStationParsesAndAnalyzes) {
  const fmt::FaultMaintenanceTree m =
      fmt::parse_fmt(read_model_file("pumping_station.fmt"));
  EXPECT_EQ(m.num_ebes(), 4u);
  EXPECT_EQ(m.rdeps().size(), 2u);
  smc::AnalysisSettings s;
  s.horizon = 15;
  s.trajectories = 500;
  s.seed = 1;
  const smc::KpiReport k = smc::analyze(m, s);
  EXPECT_GT(k.failures_per_year.point, 0.0);
}

}  // namespace
}  // namespace fmtree
