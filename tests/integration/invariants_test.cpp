// Per-trajectory invariants, checked across every case-study model and many
// seeds: whatever the maintenance regime, these must hold for each run.
#include <gtest/gtest.h>

#include <cmath>

#include "compressor/compressor.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "fmt/parser.hpp"
#include "sim/fmt_executor.hpp"

namespace fmtree {
namespace {

struct ModelCase {
  std::string name;
  fmt::FaultMaintenanceTree model;
};

std::vector<std::string> model_names() {
  return {"ei-current", "ei-corrective", "ei-renewal", "compressor",
          "station", "spare-pool"};
}

fmt::FaultMaintenanceTree make_model(const std::string& name) {
  if (name == "ei-current")
    return eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                   eijoint::current_policy());
  if (name == "ei-corrective")
    return eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                   eijoint::corrective_only());
  if (name == "ei-renewal")
    return eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                   eijoint::with_renewal(10));
  if (name == "compressor")
    return compressor::build_compressor(compressor::CompressorParameters::defaults(),
                                        compressor::current_plan());
  if (name == "station") {
    return fmt::parse_fmt(R"(
      toplevel Station;
      Station or PumpsDown Controller;
      PumpsDown vot 2 PumpA PumpB;
      PumpA ebe phases=4 mean=6 threshold=3 repair_cost=400 repair_time=0.02;
      PumpB ebe phases=4 mean=6 threshold=3 repair_cost=400 repair_time=0.02;
      Controller be exp(0.04);
      rdep Overload factor=2 trigger=PumpA targets PumpB;
      fdep Surge trigger=Controller targets PumpA;
      inspection Rounds period=0.25 cost=80 detect=0.85 targets PumpA PumpB;
      corrective cost=20000 delay=0.05 downtime_rate=100000;
    )");
  }
  // spare-pool: cold standby plus maintenance.
  return fmt::parse_fmt(R"(
    toplevel Top;
    Top or Pool Other;
    Pool spare dormancy=0.2 P S;
    P ebe phases=3 mean=4 threshold=2 repair_cost=100;
    S ebe phases=3 mean=4 threshold=2 repair_cost=100;
    Other be exp(0.05);
    inspection I period=0.5 cost=10 targets P S;
    corrective cost=1000 delay=0.1 downtime_rate=500;
  )");
}

class TrajectoryInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {};

TEST_P(TrajectoryInvariants, Hold) {
  const auto& [name, seed] = GetParam();
  const fmt::FaultMaintenanceTree model = make_model(name);
  const sim::FmtSimulator simulator(model);
  const double horizon = 25.0;
  sim::SimOptions opts;
  opts.horizon = horizon;
  opts.record_failure_log = true;
  opts.discount_rate = 0.05;

  for (std::uint64_t stream = 0; stream < 40; ++stream) {
    const sim::TrajectoryResult r = simulator.run(RandomStream(seed, stream), opts);
    // Failure accounting is internally consistent.
    ASSERT_EQ(r.failure_log.size(), r.failures);
    std::uint64_t attributed = 0;
    for (std::uint64_t f : r.failures_per_leaf) attributed += f;
    ASSERT_EQ(attributed, r.failures);
    std::uint64_t repairs = 0;
    for (std::uint64_t rep : r.repairs_per_leaf) repairs += rep;
    ASSERT_EQ(repairs, r.repairs);
    // First failure is a failure; survival means no failures.
    if (r.failures > 0) {
      ASSERT_LE(r.first_failure_time, horizon);
      ASSERT_DOUBLE_EQ(r.first_failure_time, r.failure_log.front().time);
    } else {
      ASSERT_TRUE(std::isinf(r.first_failure_time));
    }
    // Failure times ordered within the window, causes valid.
    double prev = 0;
    for (const sim::FailureRecord& f : r.failure_log) {
      ASSERT_GE(f.time, prev);
      ASSERT_LE(f.time, horizon);
      ASSERT_LT(f.cause_leaf, model.num_ebes());
      prev = f.time;
    }
    // Downtime bounded by the window and only present with failures.
    ASSERT_GE(r.downtime, 0.0);
    ASSERT_LE(r.downtime, horizon + 1e-9);
    if (r.downtime > 0) ASSERT_GE(r.failures, 1u);
    // Costs are nonnegative and discounting never increases them.
    for (double c : {r.cost.inspection, r.cost.repair, r.cost.replacement,
                     r.cost.corrective, r.cost.downtime}) {
      ASSERT_GE(c, 0.0);
    }
    ASSERT_LE(r.discounted_cost.total(), r.cost.total() + 1e-9);
    ASSERT_GE(r.discounted_cost.total(),
              r.cost.total() * std::exp(-0.05 * horizon) - 1e-9);
    // Scheduled-activity counts match the deterministic calendars.
    std::uint64_t expected_inspections = 0;
    for (const fmt::InspectionModule& m : model.inspections()) {
      if (m.first_at <= horizon)
        expected_inspections += 1 + static_cast<std::uint64_t>(std::floor(
                                        (horizon - m.first_at) / m.period + 1e-9));
    }
    ASSERT_EQ(r.inspections, expected_inspections);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TrajectoryInvariants,
    ::testing::Combine(::testing::ValuesIn(model_names()),
                       ::testing::Values(1u, 777u, 424242u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::uint64_t>>& info) {
      std::string name = std::get<0>(info.param) + "_seed" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace fmtree
