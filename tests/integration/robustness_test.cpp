// Robustness / failure-injection tests: malformed inputs must produce typed
// exceptions, never crashes or silent misbehaviour.
#include <gtest/gtest.h>

#include "fmt/parser.hpp"
#include "ft/parser.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fmtree {
namespace {

const char* kValidModel = R"(
toplevel System;
System or Electrical Mechanical;
Electrical or Lipping Contamination;
Mechanical vot 2 B1 B2 B3;
Lipping ebe phases=6 mean=10 threshold=4 repair_cost=800 repair=grind;
Contamination ebe phases=3 mean=3 threshold=2 repair_cost=250;
B1 ebe phases=2 mean=40 threshold=2;
B2 ebe phases=2 mean=40 threshold=2;
B3 be exp(0.025);
rdep Accel factor=3 trigger=Contamination targets Lipping;
inspection Visual period=0.25 cost=35 targets Lipping Contamination B1 B2;
corrective cost=8000 delay=0.02 downtime_rate=50000;
)";

/// Every prefix of a valid model must either parse or throw a typed error.
TEST(ParserRobustness, AllPrefixesThrowTypedErrorsOnly) {
  const std::string text = kValidModel;
  for (std::size_t len = 0; len <= text.size(); len += 7) {
    const std::string prefix = text.substr(0, len);
    try {
      (void)fmt::parse_fmt(prefix);
    } catch (const Error&) {
      // ParseError / ModelError are the only acceptable outcomes.
    }
  }
  SUCCEED();
}

/// Deleting any single character must not crash the parser.
TEST(ParserRobustness, SingleCharacterDeletions) {
  const std::string text = kValidModel;
  for (std::size_t i = 0; i < text.size(); i += 3) {
    std::string mutated = text;
    mutated.erase(i, 1);
    try {
      (void)fmt::parse_fmt(mutated);
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

/// Random byte substitutions (printable ASCII) must not crash.
TEST(ParserRobustness, RandomByteMutations) {
  const std::string text = kValidModel;
  RandomStream rng(2026, 0);
  for (int rep = 0; rep < 300; ++rep) {
    std::string mutated = text;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] = static_cast<char>(32 + rng.below(95));
    try {
      (void)fmt::parse_fmt(mutated);
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

/// Statement-level shuffles must parse identically (order independence).
TEST(ParserRobustness, StatementOrderIrrelevant) {
  std::vector<std::string> statements;
  {
    std::string text = kValidModel;
    std::size_t start = 0;
    while (true) {
      const std::size_t end = text.find(';', start);
      if (end == std::string::npos) break;
      const std::string stmt = text.substr(start, end - start + 1);
      if (stmt.find_first_not_of(" \n\t") != std::string::npos)
        statements.push_back(stmt);
      start = end + 1;
    }
  }
  RandomStream rng(5, 1);
  for (int rep = 0; rep < 10; ++rep) {
    // Fisher-Yates shuffle.
    std::vector<std::string> shuffled = statements;
    for (std::size_t i = shuffled.size(); i > 1; --i)
      std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
    std::string text;
    for (const std::string& s : shuffled) text += s + "\n";
    const fmt::FaultMaintenanceTree m = fmt::parse_fmt(text);
    EXPECT_EQ(m.num_ebes(), 5u);
    EXPECT_EQ(m.rdeps().size(), 1u);
    EXPECT_EQ(m.inspections().size(), 1u);
  }
}

/// Deeply (but not absurdly) nested gates must not blow the stack.
TEST(ParserRobustness, DeepNesting) {
  std::string text = "toplevel g0;\n";
  const int depth = 2000;
  for (int i = 0; i < depth; ++i)
    text += "g" + std::to_string(i) + " or g" + std::to_string(i + 1) + ";\n";
  text += "g" + std::to_string(depth) + " be exp(1);\n";
  const fmt::FaultMaintenanceTree m = fmt::parse_fmt(text);
  EXPECT_EQ(m.structure().gates().size(), static_cast<std::size_t>(depth));
}

TEST(ParserRobustness, HugeNumbersRejectedOrHandled) {
  // Overflowing doubles parse to inf, which the validators must reject.
  EXPECT_THROW(fmt::parse_fmt("toplevel T; T or A; A be exp(1e999);"), Error);
  EXPECT_THROW(fmt::parse_fmt("toplevel T; T or A; A ebe phases=1e999 mean=5;"),
               Error);
}

TEST(FtParserRobustness, PrefixesOfStaticFormat) {
  const std::string text =
      "toplevel T;\nT or A G;\nG vot 2 B C D;\nA be exp(1);\nB be erlang(2, 1);\n"
      "C be weibull(1.5, 3);\nD be never;\n";
  for (std::size_t len = 0; len <= text.size(); ++len) {
    try {
      (void)ft::parse_fault_tree(text.substr(0, len));
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace fmtree
