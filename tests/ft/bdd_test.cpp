#include "ft/bdd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include "ft/cutsets.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fmtree::ft {
namespace {

Distribution exp1() { return Distribution::exponential(1.0); }

TEST(BddManager, TerminalsAndVar) {
  BddManager mgr(2);
  EXPECT_NE(mgr.zero(), mgr.one());
  const BddRef x = mgr.var(0);
  EXPECT_NE(x, mgr.zero());
  EXPECT_NE(x, mgr.one());
  EXPECT_EQ(mgr.var(0), x);  // unique table: same node
  EXPECT_THROW(mgr.var(5), DomainError);
}

TEST(BddManager, BooleanIdentities) {
  BddManager mgr(2);
  const BddRef x = mgr.var(0);
  const BddRef y = mgr.var(1);
  EXPECT_EQ(mgr.bdd_and(x, mgr.one()), x);
  EXPECT_EQ(mgr.bdd_and(x, mgr.zero()), mgr.zero());
  EXPECT_EQ(mgr.bdd_or(x, mgr.zero()), x);
  EXPECT_EQ(mgr.bdd_or(x, mgr.one()), mgr.one());
  EXPECT_EQ(mgr.bdd_and(x, x), x);
  EXPECT_EQ(mgr.bdd_or(x, x), x);
  EXPECT_EQ(mgr.bdd_and(x, y), mgr.bdd_and(y, x));  // canonical
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_not(x)), x);
  EXPECT_EQ(mgr.bdd_or(x, mgr.bdd_not(x)), mgr.one());
  EXPECT_EQ(mgr.bdd_and(x, mgr.bdd_not(x)), mgr.zero());
}

TEST(BddManager, DeMorgan) {
  BddManager mgr(3);
  const BddRef x = mgr.var(0), y = mgr.var(1);
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_and(x, y)),
            mgr.bdd_or(mgr.bdd_not(x), mgr.bdd_not(y)));
}

TEST(BddManager, IteDefinition) {
  BddManager mgr(3);
  const BddRef f = mgr.var(0), g = mgr.var(1), h = mgr.var(2);
  const BddRef ite = mgr.ite(f, g, h);
  for (unsigned mask = 0; mask < 8; ++mask) {
    const std::vector<bool> a{(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0};
    EXPECT_EQ(mgr.evaluate(ite, a), a[0] ? a[1] : a[2]);
  }
}

TEST(BddManager, AtLeastEnumerates) {
  BddManager mgr(4);
  std::vector<BddRef> vars{mgr.var(0), mgr.var(1), mgr.var(2), mgr.var(3)};
  const BddRef k2 = mgr.at_least(2, vars);
  for (unsigned mask = 0; mask < 16; ++mask) {
    std::vector<bool> a(4);
    int count = 0;
    for (int i = 0; i < 4; ++i) {
      a[static_cast<std::size_t>(i)] = (mask >> i) & 1;
      count += (mask >> i) & 1;
    }
    EXPECT_EQ(mgr.evaluate(k2, a), count >= 2) << mask;
  }
  EXPECT_EQ(mgr.at_least(0, vars), mgr.one());
  EXPECT_EQ(mgr.at_least(5, vars), mgr.zero());
}

TEST(BddManager, SatCount) {
  BddManager mgr(3);
  const BddRef x = mgr.var(0), y = mgr.var(1);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_and(x, y)), 2.0);  // z free
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_or(x, y)), 6.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.one()), 8.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.zero()), 0.0);
}

TEST(BddManager, ProbabilityBasics) {
  BddManager mgr(2);
  const BddRef x = mgr.var(0), y = mgr.var(1);
  const std::vector<double> p{0.1, 0.2};
  EXPECT_NEAR(mgr.probability(mgr.bdd_and(x, y), p), 0.02, 1e-15);
  EXPECT_NEAR(mgr.probability(mgr.bdd_or(x, y), p), 1 - 0.9 * 0.8, 1e-15);
  EXPECT_EQ(mgr.probability(mgr.one(), p), 1.0);
  EXPECT_EQ(mgr.probability(mgr.zero(), p), 0.0);
  EXPECT_THROW(mgr.probability(x, std::vector<double>{0.1}), DomainError);
}

TEST(BuildBdd, MatchesStructureFunctionExhaustively) {
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId b = t.add_basic_event("B", exp1());
  const NodeId c = t.add_basic_event("C", exp1());
  const NodeId d = t.add_basic_event("D", exp1());
  const NodeId v = t.add_voting("V", 2, {a, b, c});
  t.set_top(t.add_or("T", {v, d}));
  BddManager mgr(4);
  const BddRef f = build_bdd(mgr, t);
  for (unsigned mask = 0; mask < 16; ++mask) {
    std::vector<bool> failed(4);
    for (int i = 0; i < 4; ++i) failed[static_cast<std::size_t>(i)] = (mask >> i) & 1;
    EXPECT_EQ(mgr.evaluate(f, failed), t.evaluate_top(failed)) << mask;
  }
}

TEST(TopEventProbability, MatchesExhaustiveEnumeration) {
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId b = t.add_basic_event("B", exp1());
  const NodeId c = t.add_basic_event("C", exp1());
  const NodeId g1 = t.add_and("G1", {a, b});
  t.set_top(t.add_or("T", {g1, c}));
  const std::vector<double> p{0.3, 0.5, 0.1};
  // Enumerate all 8 assignments.
  double expected = 0;
  for (unsigned mask = 0; mask < 8; ++mask) {
    std::vector<bool> failed(3);
    double weight = 1;
    for (int i = 0; i < 3; ++i) {
      const bool on = (mask >> i) & 1;
      failed[static_cast<std::size_t>(i)] = on;
      weight *= on ? p[static_cast<std::size_t>(i)] : 1 - p[static_cast<std::size_t>(i)];
    }
    if (t.evaluate_top(failed)) expected += weight;
  }
  EXPECT_NEAR(top_event_probability(t, p), expected, 1e-12);
}

TEST(TopEventProbability, AtMissionTimeUsesCdfs) {
  FaultTree t;
  const NodeId a = t.add_basic_event("A", Distribution::exponential(0.5));
  const NodeId b = t.add_basic_event("B", Distribution::exponential(0.25));
  t.set_top(t.add_or("T", {a, b}));
  const double time = 2.0;
  const double pa = 1 - std::exp(-0.5 * time);
  const double pb = 1 - std::exp(-0.25 * time);
  EXPECT_NEAR(top_event_probability(t, time), 1 - (1 - pa) * (1 - pb), 1e-12);
}

TEST(TopEventProbability, AgreesWithMinCutBoundsOnRandomTrees) {
  // Random small trees: rare_event >= exact >= 0 and exact in [bounds].
  RandomStream rng(33, 0);
  for (int rep = 0; rep < 25; ++rep) {
    FaultTree t;
    std::vector<NodeId> leaves;
    const int n = 3 + static_cast<int>(rng.below(4));
    for (int i = 0; i < n; ++i)
      leaves.push_back(t.add_basic_event("L" + std::to_string(i), exp1()));
    // Random two-level structure.
    std::vector<NodeId> groups;
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
      const bool use_and = rng.bernoulli(0.5);
      const std::string name = "G" + std::to_string(i);
      groups.push_back(use_and ? t.add_and(name, {leaves[i], leaves[i + 1]})
                               : t.add_or(name, {leaves[i], leaves[i + 1]}));
    }
    if (leaves.size() % 2 == 1) groups.push_back(leaves.back());
    t.set_top(groups.size() == 1 ? groups[0] : t.add_or("T", groups));
    std::vector<double> p;
    for (int i = 0; i < n; ++i) p.push_back(rng.uniform(0.01, 0.3));
    const double exact = top_event_probability(t, p);
    const auto cuts = minimal_cut_sets(t);
    EXPECT_LE(exact, rare_event_probability(cuts, p) + 1e-12);
    EXPECT_GE(exact, 0.0);
    EXPECT_LE(exact, 1.0);
  }
}

TEST(BddManager, NodeCountForOrChainMatchesAllocationModel) {
  // Each OR step rebuilds the chain below the newly added (deepest) var, so
  // allocations total 2 terminals + n var nodes + sum_{k=2..n}(k-1)
  // = 2 + n + n(n-1)/2. The *final* BDD itself has only n internal nodes;
  // intermediates stay in the unique table (no garbage collection).
  const std::uint32_t n = 10;
  BddManager mgr(n);
  BddRef acc = mgr.zero();
  for (std::uint32_t i = 0; i < n; ++i) acc = mgr.bdd_or(acc, mgr.var(i));
  EXPECT_EQ(mgr.node_count(), 2u + n + n * (n - 1) / 2);
}

}  // namespace
}  // namespace fmtree::ft
