#include "ft/tree.hpp"

#include <gtest/gtest.h>


#include <cmath>
#include "util/error.hpp"

namespace fmtree::ft {
namespace {

Distribution exp1() { return Distribution::exponential(1.0); }

TEST(FaultTree, BuildsAndValidates) {
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId b = t.add_basic_event("B", exp1());
  const NodeId g = t.add_or("Top", {a, b});
  t.set_top(g);
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.basic_events().size(), 2u);
  EXPECT_EQ(t.gates().size(), 1u);
}

TEST(FaultTree, DuplicateNamesRejected) {
  FaultTree t;
  t.add_basic_event("A", exp1());
  EXPECT_THROW(t.add_basic_event("A", exp1()), ModelError);
  const NodeId a = *t.find("A");
  EXPECT_THROW(t.add_or("A", {a}), ModelError);
}

TEST(FaultTree, EmptyNameRejected) {
  FaultTree t;
  EXPECT_THROW(t.add_basic_event("", exp1()), ModelError);
}

TEST(FaultTree, GateNeedsChildren) {
  FaultTree t;
  EXPECT_THROW(t.add_or("G", {}), ModelError);
}

TEST(FaultTree, VotingThresholdValidated) {
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId b = t.add_basic_event("B", exp1());
  EXPECT_THROW(t.add_voting("V0", 0, {a, b}), ModelError);
  EXPECT_THROW(t.add_voting("V3", 3, {a, b}), ModelError);
  EXPECT_NO_THROW(t.add_voting("V2", 2, {a, b}));
}

TEST(FaultTree, ValidateRequiresTop) {
  FaultTree t;
  t.add_basic_event("A", exp1());
  EXPECT_THROW(t.validate(), ModelError);
}

TEST(FaultTree, ValidateRejectsUnreachableNodes) {
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  t.add_basic_event("Orphan", exp1());
  t.set_top(t.add_or("Top", {a}));
  EXPECT_THROW(t.validate(), ModelError);
}

TEST(FaultTree, FindByName) {
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  EXPECT_EQ(t.find("A"), a);
  EXPECT_EQ(t.find("missing"), std::nullopt);
}

TEST(FaultTree, AccessorsCheckKind) {
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId g = t.add_or("G", {a});
  EXPECT_TRUE(t.is_basic(a));
  EXPECT_FALSE(t.is_basic(g));
  EXPECT_THROW(t.basic(g), ModelError);
  EXPECT_THROW(t.gate(a), ModelError);
  EXPECT_THROW(t.basic_index(g), ModelError);
  EXPECT_EQ(t.basic_index(a), 0u);
}

TEST(FaultTree, OutOfRangeIdRejected) {
  FaultTree t;
  t.add_basic_event("A", exp1());
  EXPECT_THROW(t.name(NodeId{99}), ModelError);
  EXPECT_THROW(t.set_top(NodeId{99}), ModelError);
}

TEST(FaultTree, SharedSubtreesAllowed) {
  // DAG: both gates share basic event A.
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId b = t.add_basic_event("B", exp1());
  const NodeId c = t.add_basic_event("C", exp1());
  const NodeId g1 = t.add_and("G1", {a, b});
  const NodeId g2 = t.add_and("G2", {a, c});
  t.set_top(t.add_or("Top", {g1, g2}));
  EXPECT_NO_THROW(t.validate());
}

// ---- Structure function evaluation ------------------------------------------

class GateEvaluation : public ::testing::Test {
protected:
  void SetUp() override {
    a_ = tree_.add_basic_event("A", exp1());
    b_ = tree_.add_basic_event("B", exp1());
    c_ = tree_.add_basic_event("C", exp1());
  }
  FaultTree tree_;
  NodeId a_, b_, c_;
};

TEST_F(GateEvaluation, AndGate) {
  tree_.set_top(tree_.add_and("T", {a_, b_, c_}));
  EXPECT_FALSE(tree_.evaluate_top({true, true, false}));
  EXPECT_TRUE(tree_.evaluate_top({true, true, true}));
  EXPECT_FALSE(tree_.evaluate_top({false, false, false}));
}

TEST_F(GateEvaluation, OrGate) {
  tree_.set_top(tree_.add_or("T", {a_, b_, c_}));
  EXPECT_FALSE(tree_.evaluate_top({false, false, false}));
  EXPECT_TRUE(tree_.evaluate_top({false, true, false}));
}

TEST_F(GateEvaluation, VotingGate) {
  tree_.set_top(tree_.add_voting("T", 2, {a_, b_, c_}));
  EXPECT_FALSE(tree_.evaluate_top({true, false, false}));
  EXPECT_TRUE(tree_.evaluate_top({true, false, true}));
  EXPECT_TRUE(tree_.evaluate_top({true, true, true}));
}

TEST_F(GateEvaluation, NestedGates) {
  const NodeId inner = tree_.add_and("Inner", {a_, b_});
  tree_.set_top(tree_.add_or("T", {inner, c_}));
  EXPECT_TRUE(tree_.evaluate_top({true, true, false}));
  EXPECT_TRUE(tree_.evaluate_top({false, false, true}));
  EXPECT_FALSE(tree_.evaluate_top({true, false, false}));
}

TEST_F(GateEvaluation, WrongStateSizeThrows) {
  tree_.set_top(tree_.add_or("T", {a_}));
  EXPECT_THROW(tree_.evaluate_top({true}), ModelError);  // 3 BEs, 1 value
}

TEST(FaultTreeProbabilities, ProbabilitiesAtUsesCdf) {
  FaultTree t;
  t.add_basic_event("A", Distribution::exponential(1.0));
  t.add_basic_event("B", Distribution::deterministic(5.0));
  const NodeId a = *t.find("A");
  t.set_top(t.add_or("T", {a, *t.find("B")}));
  const std::vector<double> p = t.probabilities_at(2.0);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0], 1 - std::exp(-2.0), 1e-12);
  EXPECT_EQ(p[1], 0.0);  // deterministic(5) has not failed at t=2
}

}  // namespace
}  // namespace fmtree::ft
