#include "ft/parser.hpp"

#include <gtest/gtest.h>

#include "ft/bdd.hpp"
#include "ft/dot.hpp"
#include "util/error.hpp"

namespace fmtree::ft {
namespace {

TEST(FtParser, ParsesSimpleTree) {
  const FaultTree t = parse_fault_tree(R"(
    toplevel System;
    System or A B;
    A be exp(0.5);
    B be erlang(3, 1.0);
  )");
  EXPECT_EQ(t.name(t.top()), "System");
  EXPECT_EQ(t.basic_events().size(), 2u);
  EXPECT_EQ(t.basic(*t.find("A")).lifetime, Distribution::exponential(0.5));
  EXPECT_EQ(t.basic(*t.find("B")).lifetime, Distribution::erlang(3, 1.0));
}

TEST(FtParser, ForwardReferencesAllowed) {
  const FaultTree t = parse_fault_tree(R"(
    toplevel Top;
    A be exp(1);
    Top and A B;
    B be exp(2);
  )");
  EXPECT_EQ(t.gate(t.top()).type, GateType::And);
}

TEST(FtParser, VotingGateWithThreshold) {
  const FaultTree t = parse_fault_tree(R"(
    toplevel V;
    V vot 2 A B C;
    A be exp(1); B be exp(1); C be exp(1);
  )");
  EXPECT_EQ(t.gate(t.top()).type, GateType::Voting);
  EXPECT_EQ(t.gate(t.top()).k, 2);
}

TEST(FtParser, QuotedNamesAndComments) {
  const FaultTree t = parse_fault_tree(R"(
    # a comment
    toplevel "my system";   # trailing comment
    "my system" or "part 1" Other;
    "part 1" be exp(1);
    Other be never;
  )");
  EXPECT_TRUE(t.find("my system").has_value());
  EXPECT_TRUE(t.find("part 1").has_value());
  EXPECT_TRUE(t.basic(*t.find("Other")).lifetime.is_never());
}

TEST(FtParser, AllDistributionForms) {
  const FaultTree t = parse_fault_tree(R"(
    toplevel T;
    T or A B C D E F G;
    A be exp(2);
    B be erlang(4, 0.5);
    C be erlang_mean(4, 8);
    D be weibull(1.5, 2);
    E be lognormal(0.1, 0.9);
    F be uniform(1, 2);
    G be det(3);
  )");
  EXPECT_EQ(t.basic(*t.find("C")).lifetime, Distribution::erlang(4, 0.5));
  EXPECT_EQ(t.basic(*t.find("G")).lifetime, Distribution::deterministic(3));
}

TEST(FtParser, ErrorsCarryLineNumbers) {
  try {
    parse_fault_tree("toplevel T;\nT or A;\nA be exp(0);\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(FtParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_fault_tree("T or A; A be exp(1);"), ParseError);  // no toplevel
  EXPECT_THROW(parse_fault_tree("toplevel T; T or; "), ParseError);    // no children
  EXPECT_THROW(parse_fault_tree("toplevel T; T unknown A; A be exp(1);"), ParseError);
  // missing trailing ;
  EXPECT_THROW(parse_fault_tree("toplevel T; T or A; A be exp(1)"), ParseError);
  EXPECT_THROW(parse_fault_tree("toplevel T; T or A; A be zeta(1);"), ParseError);
  EXPECT_THROW(parse_fault_tree("toplevel T; T vot 0 A B; A be exp(1); B be exp(1);"),
               ParseError);
  EXPECT_THROW(parse_fault_tree("toplevel T; toplevel U; T or A; A be exp(1);"),
               ParseError);
  EXPECT_THROW(parse_fault_tree("toplevel T; T or A; T or B; A be exp(1); B be exp(1);"),
               ParseError);  // duplicate definition
}

TEST(FtParser, RejectsUndefinedAndUnreachableAndCyclic) {
  EXPECT_THROW(parse_fault_tree("toplevel T; T or Missing;"), ModelError);
  EXPECT_THROW(parse_fault_tree(R"(
    toplevel T; T or A; A be exp(1); Orphan be exp(1);
  )"),
               ModelError);
  EXPECT_THROW(parse_fault_tree(R"(
    toplevel T; T or U; U or T;
  )"),
               ModelError);
}

TEST(FtParser, RoundTripsThroughToText) {
  const std::string source = R"(
    toplevel Sys;
    Sys or M E;
    M vot 2 A B C;
    E and D F;
    A be exp(0.1); B be exp(0.2); C be exp(0.3);
    D be erlang(2, 0.5); F be weibull(1.5, 4);
  )";
  const FaultTree t1 = parse_fault_tree(source);
  const FaultTree t2 = parse_fault_tree(to_text(t1));
  // Same structure: identical probability at several mission times.
  for (double time : {0.5, 1.0, 5.0})
    EXPECT_NEAR(top_event_probability(t1, time), top_event_probability(t2, time), 1e-12);
  EXPECT_EQ(t1.basic_events().size(), t2.basic_events().size());
  EXPECT_EQ(t1.gates().size(), t2.gates().size());
}

TEST(FtDot, EmitsAllNodesAndEdges) {
  const FaultTree t = parse_fault_tree(R"(
    toplevel T;
    T or A G;
    G and B C;
    A be exp(1); B be exp(1); C be exp(1);
  )");
  const std::string dot = to_dot(t, "example");
  EXPECT_NE(dot.find("digraph \"example\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"A\""), std::string::npos);
  EXPECT_NE(dot.find("[OR]"), std::string::npos);
  EXPECT_NE(dot.find("[AND]"), std::string::npos);
  // 4 edges: T->A, T->G, G->B, G->C.
  std::size_t edges = 0, pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++edges;
    pos += 4;
  }
  EXPECT_EQ(edges, 4u);
}

TEST(Lexer, TokenizesPunctuationAndNumbers) {
  const auto tokens = tokenize("a(1.5e-2,b)=;");
  ASSERT_EQ(tokens.size(), 9u);  // a ( num , b ) = ; End
  EXPECT_EQ(tokens[0].type, TokenType::Identifier);
  EXPECT_EQ(tokens[2].type, TokenType::Number);
  EXPECT_DOUBLE_EQ(tokens[2].number, 0.015);
  EXPECT_EQ(tokens[6].type, TokenType::Equals);
  EXPECT_EQ(tokens[8].type, TokenType::End);
}

TEST(Lexer, RejectsGarbage) {
  EXPECT_THROW(tokenize("valid @ invalid"), ParseError);
  EXPECT_THROW(tokenize("\"unterminated"), ParseError);
}

}  // namespace
}  // namespace fmtree::ft
