#include "ft/transform.hpp"

#include <gtest/gtest.h>

#include "ft/bdd.hpp"
#include "ft/parser.hpp"
#include "util/rng.hpp"

namespace fmtree::ft {
namespace {

FaultTree parse(const char* text) { return parse_fault_tree(text); }

std::size_t gate_count(const FaultTree& t) { return t.gates().size(); }

TEST(Normalize, FlattensNestedSameTypeGates) {
  const FaultTree t = parse(R"(
    toplevel T;
    T or G1 c;
    G1 or a b;
    a be exp(1); b be exp(1); c be exp(1);
  )");
  const FaultTree n = normalize(t);
  EXPECT_EQ(gate_count(n), 1u);
  EXPECT_EQ(n.gate(n.top()).children.size(), 3u);
}

TEST(Normalize, KeepsMixedTypeNesting) {
  const FaultTree t = parse(R"(
    toplevel T;
    T or G1 c;
    G1 and a b;
    a be exp(1); b be exp(1); c be exp(1);
  )");
  const FaultTree n = normalize(t);
  EXPECT_EQ(gate_count(n), 2u);
}

TEST(Normalize, RemovesDuplicateChildren) {
  FaultTree t;
  const NodeId a = t.add_basic_event("a", Distribution::exponential(1));
  const NodeId b = t.add_basic_event("b", Distribution::exponential(1));
  t.set_top(t.add_or("T", {a, b, a, a}));
  const FaultTree n = normalize(t);
  EXPECT_EQ(n.gate(n.top()).children.size(), 2u);
}

TEST(Normalize, CollapsesSingleChildGates) {
  const FaultTree t = parse(R"(
    toplevel T;
    T or G1 b;
    G1 and a;
    a be exp(1); b be exp(1);
  )");
  const FaultTree n = normalize(t);
  EXPECT_EQ(gate_count(n), 1u);  // G1 gone
  EXPECT_EQ(n.gate(n.top()).children.size(), 2u);
}

TEST(Normalize, RewritesDegenerateVoting) {
  const FaultTree t1 = parse(R"(
    toplevel T; T vot 1 a b; a be exp(1); b be exp(1);
  )");
  EXPECT_EQ(normalize(t1).gate(normalize(t1).top()).type, GateType::Or);
  const FaultTree t2 = parse(R"(
    toplevel T; T vot 2 a b; a be exp(1); b be exp(1);
  )");
  EXPECT_EQ(normalize(t2).gate(normalize(t2).top()).type, GateType::And);
  const FaultTree t3 = parse(R"(
    toplevel T; T vot 2 a b c; a be exp(1); b be exp(1); c be exp(1);
  )");
  EXPECT_EQ(normalize(t3).gate(normalize(t3).top()).type, GateType::Voting);
}

TEST(Normalize, DegenerateTreeWrapsLeafTop) {
  const FaultTree t = parse("toplevel T; T or a; a be exp(1);");
  const FaultTree n = normalize(t);
  EXPECT_NO_THROW(n.validate());
  EXPECT_FALSE(n.is_basic(n.top()));
}

TEST(Normalize, PreservesBasicEventOrder) {
  const FaultTree t = parse(R"(
    toplevel T;
    T or G c;
    G and a b;
    a be exp(0.1); b be exp(0.2); c be exp(0.3);
  )");
  const FaultTree n = normalize(t);
  ASSERT_EQ(n.basic_events().size(), 3u);
  EXPECT_EQ(n.basic(n.basic_events()[0]).name, "a");
  EXPECT_EQ(n.basic(n.basic_events()[1]).name, "b");
  EXPECT_EQ(n.basic(n.basic_events()[2]).name, "c");
}

TEST(Normalize, SemanticsPreservedExhaustively) {
  const FaultTree t = parse(R"(
    toplevel T;
    T or G1 G2;
    G1 or a G3;
    G3 or b c;
    G2 and d G4;
    G4 and a e;
    a be exp(1); b be exp(1); c be exp(1); d be exp(1); e be exp(1);
  )");
  const FaultTree n = normalize(t);
  for (unsigned mask = 0; mask < 32; ++mask) {
    std::vector<bool> failed(5);
    for (int i = 0; i < 5; ++i) failed[static_cast<std::size_t>(i)] = (mask >> i) & 1;
    EXPECT_EQ(t.evaluate_top(failed), n.evaluate_top(failed)) << mask;
  }
}

TEST(Normalize, ProbabilityPreservedOnRandomTrees) {
  RandomStream rng(7, 0);
  for (int rep = 0; rep < 20; ++rep) {
    FaultTree t;
    std::vector<NodeId> nodes;
    const int leaves = 4 + static_cast<int>(rng.below(3));
    for (int i = 0; i < leaves; ++i)
      nodes.push_back(t.add_basic_event("l" + std::to_string(i),
                                        Distribution::exponential(rng.uniform(0.1, 1))));
    int gate_id = 0;
    while (nodes.size() > 1) {
      const std::size_t take =
          2 + rng.below(std::min<std::uint64_t>(2, nodes.size() - 1));
      std::vector<NodeId> kids(nodes.end() - static_cast<std::ptrdiff_t>(take),
                               nodes.end());
      nodes.resize(nodes.size() - take);
      const std::string name = "g" + std::to_string(gate_id++);
      nodes.push_back(rng.bernoulli(0.5) ? t.add_or(name, kids) : t.add_and(name, kids));
    }
    t.set_top(nodes.front());
    if (t.is_basic(nodes.front())) continue;
    const FaultTree n = normalize(t);
    EXPECT_NEAR(top_event_probability(t, 1.0), top_event_probability(n, 1.0), 1e-12);
    EXPECT_LE(gate_count(n), gate_count(t));
  }
}

// ---- Modules ------------------------------------------------------------------

TEST(Modules, TopIsAlwaysAModule) {
  const FaultTree t = parse("toplevel T; T or a b; a be exp(1); b be exp(1);");
  const auto mods = modules(t);
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0], t.top());
}

TEST(Modules, IndependentSubtreesAreModules) {
  const FaultTree t = parse(R"(
    toplevel T;
    T or M1 M2;
    M1 and a b;
    M2 or c d;
    a be exp(1); b be exp(1); c be exp(1); d be exp(1);
  )");
  const auto mods = modules(t);
  EXPECT_EQ(mods.size(), 3u);  // M1, M2, T
}

TEST(Modules, SharedLeafBreaksModularity) {
  const FaultTree t = parse(R"(
    toplevel T;
    T or G1 G2;
    G1 and a b;
    G2 and a c;
    a be exp(1); b be exp(1); c be exp(1);
  )");
  const auto mods = modules(t);
  // G1 and G2 share 'a', so only the top is a module.
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0], t.top());
}

TEST(Modules, NestedModulesAllReported) {
  const FaultTree t = parse(R"(
    toplevel T;
    T or M1 x;
    M1 and M2 y;
    M2 or a b;
    a be exp(1); b be exp(1); x be exp(1); y be exp(1);
  )");
  const auto mods = modules(t);
  EXPECT_EQ(mods.size(), 3u);  // M2, M1, T
}

TEST(Modules, EiJointStyleVotingIsAModule) {
  const FaultTree t = parse(R"(
    toplevel T;
    T or V other;
    V vot 2 b1 b2 b3 b4;
    b1 be exp(1); b2 be exp(1); b3 be exp(1); b4 be exp(1);
    other be exp(1);
  )");
  const auto mods = modules(t);
  ASSERT_EQ(mods.size(), 2u);
  EXPECT_EQ(t.name(mods[0]), "V");
}

}  // namespace
}  // namespace fmtree::ft
