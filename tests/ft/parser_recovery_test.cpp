// Error-recovery parsing: one pass over a broken .ft input must surface
// every diagnostic (with location, stable code and hint), not just the first.
#include "ft/parser.hpp"

#include <gtest/gtest.h>

#include "util/diagnostics.hpp"
#include "util/error.hpp"

namespace fmtree::ft {
namespace {

TEST(FtParserRecovery, CleanInputYieldsTreeAndNoDiagnostics) {
  const FtParseResult r = parse_fault_tree_collect(
      "toplevel T;\nT or A B;\nA be exp(1);\nB be exp(2);\n");
  ASSERT_TRUE(r.tree.has_value());
  EXPECT_TRUE(r.diagnostics.empty());
  EXPECT_EQ(r.tree->basic_events().size(), 2u);
}

TEST(FtParserRecovery, ReportsEveryErrorInOnePass) {
  // Three independent problems on three lines; the statement loop must
  // synchronize at each ';' and keep going.
  const FtParseResult r = parse_fault_tree_collect(
      "toplevel T;\n"
      "T or A B C;\n"
      "A be exp(0);\n"     // bad rate
      "B zz C;\n"          // unknown statement type
      "T be exp(1);\n"     // duplicate definition
      "C be exp(1);\n");   // fine — must still be consumed
  EXPECT_FALSE(r.tree.has_value());
  ASSERT_EQ(r.diagnostics.error_count(), 3u);
  const auto& d = r.diagnostics.all();
  EXPECT_EQ(d[0].loc.line, 3u);
  EXPECT_EQ(d[0].code, "P101");
  EXPECT_EQ(d[1].loc.line, 4u);
  EXPECT_EQ(d[1].code, "P104");
  EXPECT_EQ(d[1].token, "zz");
  EXPECT_GT(d[1].loc.column, 0u);
  EXPECT_EQ(d[2].loc.line, 5u);
  EXPECT_EQ(d[2].code, "P102");
  EXPECT_FALSE(d[2].hint.empty());
}

TEST(FtParserRecovery, LexicalAndSyntaxErrorsCoexist) {
  const FtParseResult r = parse_fault_tree_collect(
      "toplevel T;\n"
      "T or @ A;\n"        // lexer-level bad character
      "A be zeta(1);\n");  // unknown distribution
  EXPECT_FALSE(r.tree.has_value());
  ASSERT_GE(r.diagnostics.error_count(), 2u);
  EXPECT_EQ(r.diagnostics.all()[0].code[0], 'L');
  EXPECT_EQ(r.diagnostics.all()[0].loc.line, 2u);
}

TEST(FtParserRecovery, SyntaxErrorsSuppressCascadingReferenceErrors) {
  // 'A be exp(0);' fails, leaving A undeclared — but reporting M101 for A
  // on top of the real error would only confuse; the semantic phase is
  // skipped when syntax errors exist.
  const FtParseResult r =
      parse_fault_tree_collect("toplevel T;\nT or A;\nA be exp(0);\n");
  ASSERT_EQ(r.diagnostics.error_count(), 1u);
  EXPECT_EQ(r.diagnostics.all()[0].code, "P101");
}

TEST(FtParserRecovery, UndefinedReferencesAllReportedAndDeduplicated) {
  const FtParseResult r = parse_fault_tree_collect(
      "toplevel T;\n"
      "T or A B;\n"
      "A and Miss1 Miss2;\n"
      "B or Miss1;\n"  // Miss1 again: reported once
      );
  EXPECT_FALSE(r.tree.has_value());
  ASSERT_EQ(r.diagnostics.error_count(), 2u);
  EXPECT_EQ(r.diagnostics.all()[0].code, "M101");
  EXPECT_EQ(r.diagnostics.all()[1].code, "M101");
}

TEST(FtParserRecovery, CyclesReported) {
  const FtParseResult r =
      parse_fault_tree_collect("toplevel T;\nT or U;\nU or T;\n");
  EXPECT_FALSE(r.tree.has_value());
  ASSERT_GE(r.diagnostics.error_count(), 1u);
  EXPECT_EQ(r.diagnostics.all()[0].code, "M102");
}

TEST(FtParserRecovery, AllOrphansReported) {
  const FtParseResult r = parse_fault_tree_collect(
      "toplevel T;\nT or A;\nA be exp(1);\n"
      "O1 be exp(1);\nO2 or A;\n");
  EXPECT_FALSE(r.tree.has_value());
  EXPECT_EQ(r.diagnostics.error_count(), 2u);
  for (const Diagnostic& d : r.diagnostics.all()) EXPECT_EQ(d.code, "M103");
}

TEST(FtParserRecovery, MissingToplevelAlwaysChecked) {
  const FtParseResult r = parse_fault_tree_collect("A be exp(1);\n");
  EXPECT_FALSE(r.tree.has_value());
  ASSERT_EQ(r.diagnostics.error_count(), 1u);
  EXPECT_EQ(r.diagnostics.all()[0].code, "P103");
  EXPECT_FALSE(r.diagnostics.all()[0].hint.empty());
}

TEST(FtParserRecovery, ThrowingParserRaisesAggregateWithSameDiagnostics) {
  const std::string text = "toplevel T;\nT or A;\nA be exp(0);\nB zz;\n";
  const FtParseResult collected = parse_fault_tree_collect(text);
  ASSERT_EQ(collected.diagnostics.error_count(), 2u);
  try {
    (void)parse_fault_tree(text);
    FAIL() << "expected ParseErrors";
  } catch (const ParseErrors& e) {
    ASSERT_EQ(e.diagnostics().size(), 2u);
    EXPECT_EQ(e.diagnostics()[0].code, collected.diagnostics.all()[0].code);
    EXPECT_EQ(e.diagnostics()[1].loc.line, collected.diagnostics.all()[1].loc.line);
  }
}

TEST(FtParserRecovery, ExpectedTokenErrorsCarryColumnAndToken) {
  try {
    (void)parse_fault_tree("toplevel T\nT or A;\nA be exp(1);\n");
    FAIL() << "expected ParseErrors";
  } catch (const ParseErrors& e) {
    ASSERT_EQ(e.diagnostics().size(), 1u);
    const Diagnostic& d = e.diagnostics().front();
    EXPECT_EQ(d.loc.line, 2u);  // the 'T' opening line 2 is where ';' was expected
    EXPECT_GT(d.loc.column, 0u);
    EXPECT_EQ(d.token, "T");
    EXPECT_EQ(e.line(), 2u);  // the aggregate mirrors the first error's location
  }
}

}  // namespace
}  // namespace fmtree::ft
