// The BDD-based minimal-cut-set extraction, cross-checked against MOCUS.
#include <gtest/gtest.h>

#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "ft/cutsets.hpp"
#include "ft/parser.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fmtree::ft {
namespace {

TEST(BddCutSets, SimpleGates) {
  const FaultTree t = parse_fault_tree(R"(
    toplevel T;
    T or G1 c;
    G1 and a b;
    a be exp(1); b be exp(1); c be exp(1);
  )");
  const auto cuts = minimal_cut_sets_bdd(t);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_EQ(cuts[0], (CutSet{2}));     // {c}
  EXPECT_EQ(cuts[1], (CutSet{0, 1}));  // {a, b}
}

TEST(BddCutSets, MatchesMocusOnVoting) {
  const FaultTree t = parse_fault_tree(R"(
    toplevel T;
    T vot 3 a b c d e;
    a be exp(1); b be exp(1); c be exp(1); d be exp(1); e be exp(1);
  )");
  EXPECT_EQ(minimal_cut_sets_bdd(t), minimal_cut_sets(t));
  EXPECT_EQ(minimal_cut_sets_bdd(t).size(), 10u);  // C(5,3)
}

TEST(BddCutSets, SubsumptionAcrossSharing) {
  // T = a or (a and b): only {a}.
  FaultTree t;
  const NodeId a = t.add_basic_event("a", Distribution::exponential(1));
  const NodeId b = t.add_basic_event("b", Distribution::exponential(1));
  const NodeId g = t.add_and("g", {a, b});
  t.set_top(t.add_or("T", {a, g}));
  const auto cuts = minimal_cut_sets_bdd(t);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], (CutSet{0}));
}

TEST(BddCutSets, MatchesMocusOnEiJoint) {
  const auto model = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                             eijoint::corrective_only());
  EXPECT_EQ(minimal_cut_sets_bdd(model.structure()),
            minimal_cut_sets(model.structure()));
}

TEST(BddCutSets, MatchesMocusOnRandomTrees) {
  RandomStream rng(99, 0);
  for (int rep = 0; rep < 40; ++rep) {
    FaultTree t;
    std::vector<NodeId> nodes;
    const int leaves = 3 + static_cast<int>(rng.below(5));
    for (int i = 0; i < leaves; ++i)
      nodes.push_back(
          t.add_basic_event("l" + std::to_string(i), Distribution::exponential(1)));
    // Random DAG with occasional sharing: pick children with replacement
    // from the pool, sometimes reusing nodes already consumed.
    int gate_id = 0;
    while (nodes.size() > 1) {
      const std::size_t take =
          2 + rng.below(std::min<std::uint64_t>(3, nodes.size() - 1));
      std::vector<NodeId> kids;
      for (std::size_t i = 0; i < take; ++i) {
        const std::size_t pick = rng.below(nodes.size());
        kids.push_back(nodes[pick]);
        if (i + 1 == take || rng.bernoulli(0.8)) {
          nodes.erase(nodes.begin() + static_cast<std::ptrdiff_t>(pick));
          if (nodes.empty()) break;
        }
      }
      // Dedupe (gates reject duplicates only via cut semantics, not API).
      std::sort(kids.begin(), kids.end(),
                [](NodeId a, NodeId b) { return a.value < b.value; });
      kids.erase(std::unique(kids.begin(), kids.end()), kids.end());
      if (kids.size() < 2) {
        nodes.push_back(kids.front());
        continue;
      }
      const std::string name = "g" + std::to_string(gate_id++);
      const double dice = rng.uniform01();
      NodeId gate;
      if (dice < 0.4) gate = t.add_or(name, kids);
      else if (dice < 0.8) gate = t.add_and(name, kids);
      else gate = t.add_voting(name, 2, kids);
      nodes.push_back(gate);
    }
    t.set_top(nodes.front());
    if (t.is_basic(t.top())) continue;
    try {
      t.validate();
    } catch (const ModelError&) {
      continue;  // generated orphans; skip this instance
    }
    EXPECT_EQ(minimal_cut_sets_bdd(t), minimal_cut_sets(t)) << "rep=" << rep;
  }
}

TEST(BddCutSets, LargeVotingWhereMocusWouldBeSlow) {
  // 3-of-12 voting has C(12,3) = 220 cut sets; both must agree.
  FaultTree t;
  std::vector<NodeId> leaves;
  for (int i = 0; i < 12; ++i)
    leaves.push_back(
        t.add_basic_event("l" + std::to_string(i), Distribution::exponential(1)));
  t.set_top(t.add_voting("T", 3, leaves));
  const auto bdd_cuts = minimal_cut_sets_bdd(t);
  EXPECT_EQ(bdd_cuts.size(), 220u);
  EXPECT_EQ(bdd_cuts, minimal_cut_sets(t));
}

}  // namespace
}  // namespace fmtree::ft
