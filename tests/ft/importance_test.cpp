#include "ft/importance.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include "ft/bdd.hpp"

namespace fmtree::ft {
namespace {

TEST(Importance, SeriesSystemClosedForms) {
  // T = A or B with p_A, p_B: Birnbaum_A = 1 - p_B; FV_A = (P - p_B)/P.
  FaultTree t;
  const NodeId a = t.add_basic_event("A", Distribution::exponential(0.5));
  const NodeId b = t.add_basic_event("B", Distribution::exponential(0.25));
  t.set_top(t.add_or("T", {a, b}));
  const double time = 1.0;
  const double pa = 1 - std::exp(-0.5), pb = 1 - std::exp(-0.25);
  const double p_top = 1 - (1 - pa) * (1 - pb);

  const auto imps = importance_measures(t, time);
  ASSERT_EQ(imps.size(), 2u);
  EXPECT_EQ(imps[0].name, "A");
  EXPECT_NEAR(imps[0].probability, pa, 1e-12);
  EXPECT_NEAR(imps[0].birnbaum, 1 - pb, 1e-12);
  EXPECT_NEAR(imps[0].fussell_vesely, (p_top - pb) / p_top, 1e-12);
  EXPECT_NEAR(imps[0].criticality, (1 - pb) * pa / p_top, 1e-12);
  EXPECT_NEAR(imps[1].birnbaum, 1 - pa, 1e-12);
}

TEST(Importance, ParallelSystemClosedForms) {
  // T = A and B: Birnbaum_A = p_B; FV_A = 1 (removing A kills the only cut).
  FaultTree t;
  const NodeId a = t.add_basic_event("A", Distribution::exponential(1.0));
  const NodeId b = t.add_basic_event("B", Distribution::exponential(2.0));
  t.set_top(t.add_and("T", {a, b}));
  const double time = 0.7;
  const double pb = 1 - std::exp(-2.0 * time);
  const auto imps = importance_measures(t, time);
  EXPECT_NEAR(imps[0].birnbaum, pb, 1e-12);
  EXPECT_NEAR(imps[0].fussell_vesely, 1.0, 1e-12);
}

TEST(Importance, IrrelevantEventHasZeroBirnbaum) {
  // T = A or (A and B): B is irrelevant.
  FaultTree t;
  const NodeId a = t.add_basic_event("A", Distribution::exponential(1.0));
  const NodeId b = t.add_basic_event("B", Distribution::exponential(1.0));
  const NodeId g = t.add_and("G", {a, b});
  t.set_top(t.add_or("T", {a, g}));
  const auto imps = importance_measures(t, 1.0);
  EXPECT_NEAR(imps[1].birnbaum, 0.0, 1e-12);
  EXPECT_NEAR(imps[1].fussell_vesely, 0.0, 1e-12);
}

TEST(Importance, HigherProbabilityHigherFvInSeries) {
  FaultTree t;
  const NodeId a = t.add_basic_event("weak", Distribution::exponential(1.0));
  const NodeId b = t.add_basic_event("strong", Distribution::exponential(0.1));
  t.set_top(t.add_or("T", {a, b}));
  const auto imps = importance_measures(t, 2.0);
  EXPECT_GT(imps[0].fussell_vesely, imps[1].fussell_vesely);
  EXPECT_GT(imps[0].criticality, imps[1].criticality);
}

TEST(Importance, BirnbaumIsDerivative) {
  // Finite-difference check of dP/dp_i on a mixed tree.
  FaultTree t;
  const NodeId a = t.add_basic_event("A", Distribution::exponential(0.3));
  const NodeId b = t.add_basic_event("B", Distribution::exponential(0.6));
  const NodeId c = t.add_basic_event("C", Distribution::exponential(0.9));
  const NodeId v = t.add_voting("V", 2, {a, b, c});
  t.set_top(v);
  const double time = 1.0;
  const auto imps = importance_measures(t, time);
  std::vector<double> p = t.probabilities_at(time);
  const double h = 1e-6;
  for (std::size_t i = 0; i < p.size(); ++i) {
    std::vector<double> up = p, down = p;
    up[i] += h;
    down[i] -= h;
    const double fd =
        (top_event_probability(t, up) - top_event_probability(t, down)) / (2 * h);
    EXPECT_NEAR(imps[i].birnbaum, fd, 1e-6);
  }
}

}  // namespace
}  // namespace fmtree::ft
