#include "ft/cutsets.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fmtree::ft {
namespace {

Distribution exp1() { return Distribution::exponential(1.0); }

FaultTree simple_or() {
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId b = t.add_basic_event("B", exp1());
  t.set_top(t.add_or("T", {a, b}));
  return t;
}

TEST(CutSets, OrGateGivesSingletons) {
  const auto cuts = minimal_cut_sets(simple_or());
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_EQ(cuts[0], (CutSet{0}));
  EXPECT_EQ(cuts[1], (CutSet{1}));
}

TEST(CutSets, AndGateGivesOneSet) {
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId b = t.add_basic_event("B", exp1());
  const NodeId c = t.add_basic_event("C", exp1());
  t.set_top(t.add_and("T", {a, b, c}));
  const auto cuts = minimal_cut_sets(t);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], (CutSet{0, 1, 2}));
}

TEST(CutSets, Voting2of3GivesPairs) {
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId b = t.add_basic_event("B", exp1());
  const NodeId c = t.add_basic_event("C", exp1());
  t.set_top(t.add_voting("T", 2, {a, b, c}));
  const auto cuts = minimal_cut_sets(t);
  ASSERT_EQ(cuts.size(), 3u);
  EXPECT_EQ(cuts[0], (CutSet{0, 1}));
  EXPECT_EQ(cuts[1], (CutSet{0, 2}));
  EXPECT_EQ(cuts[2], (CutSet{1, 2}));
}

TEST(CutSets, SubsumptionRemovesNonMinimal) {
  // T = A or (A and B): cut {A,B} subsumed by {A}.
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId b = t.add_basic_event("B", exp1());
  const NodeId g = t.add_and("G", {a, b});
  t.set_top(t.add_or("T", {a, g}));
  const auto cuts = minimal_cut_sets(t);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], (CutSet{0}));
}

TEST(CutSets, SharedEventDeduplicatedWithinCut) {
  // T = (A and B) and A -> single cut {A, B}.
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId b = t.add_basic_event("B", exp1());
  const NodeId g = t.add_and("G", {a, b});
  t.set_top(t.add_and("T", {g, a}));
  const auto cuts = minimal_cut_sets(t);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], (CutSet{0, 1}));
}

TEST(CutSets, EveryResultIsMinimalCutSet) {
  // Mixed tree, checked against the structure function.
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId b = t.add_basic_event("B", exp1());
  const NodeId c = t.add_basic_event("C", exp1());
  const NodeId d = t.add_basic_event("D", exp1());
  const NodeId e = t.add_basic_event("E", exp1());
  const NodeId v = t.add_voting("V", 2, {a, b, c});
  const NodeId g = t.add_and("G", {d, e});
  t.set_top(t.add_or("T", {v, g}));
  const auto cuts = minimal_cut_sets(t);
  EXPECT_EQ(cuts.size(), 4u);  // 3 pairs + {D,E}
  for (const CutSet& cut : cuts) EXPECT_TRUE(is_minimal_cut_set(t, cut));
}

TEST(CutSets, ExhaustiveAgreementWithStructureFunction) {
  // For every assignment: top fires iff some minimal cut set is contained.
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId b = t.add_basic_event("B", exp1());
  const NodeId c = t.add_basic_event("C", exp1());
  const NodeId d = t.add_basic_event("D", exp1());
  const NodeId ab = t.add_and("AB", {a, b});
  const NodeId cd = t.add_voting("CD", 1, {c, d});
  t.set_top(t.add_or("T", {ab, cd}));
  const auto cuts = minimal_cut_sets(t);
  for (unsigned mask = 0; mask < 16; ++mask) {
    std::vector<bool> failed{(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0,
                             (mask & 8) != 0};
    bool any_cut = false;
    for (const CutSet& cut : cuts) {
      bool contained = true;
      for (std::uint32_t i : cut)
        if (!failed[i]) contained = false;
      if (contained) any_cut = true;
    }
    EXPECT_EQ(t.evaluate_top(failed), any_cut) << "mask=" << mask;
  }
}

TEST(CutSets, LimitGuardsAgainstExplosion) {
  // 2-of-20 voting has 190 pairs; a limit of 10 must trip.
  FaultTree t;
  std::vector<NodeId> leaves;
  for (int i = 0; i < 20; ++i)
    leaves.push_back(t.add_basic_event("L" + std::to_string(i), exp1()));
  t.set_top(t.add_voting("T", 2, leaves));
  EXPECT_THROW(minimal_cut_sets(t, 10), ModelError);
  EXPECT_EQ(minimal_cut_sets(t, 1u << 20).size(), 190u);
}

TEST(CutSetProbability, RareEventAndUpperBoundOrdering) {
  FaultTree t = simple_or();
  const auto cuts = minimal_cut_sets(t);
  const std::vector<double> p{0.1, 0.2};
  const double exact = 1 - 0.9 * 0.8;  // 0.28
  const double rare = rare_event_probability(cuts, p);
  const double upper = min_cut_upper_bound(cuts, p);
  EXPECT_NEAR(rare, 0.3, 1e-12);
  EXPECT_NEAR(upper, exact, 1e-12);  // disjoint singleton cuts: exact
  EXPECT_GE(rare, exact);            // rare-event over-approximates
}

TEST(CutSetProbability, OutOfRangeIndexThrows) {
  const std::vector<CutSet> cuts{{5}};
  const std::vector<double> p{0.1};
  EXPECT_THROW(rare_event_probability(cuts, p), ModelError);
  EXPECT_THROW(min_cut_upper_bound(cuts, p), ModelError);
}

TEST(IsCutSet, DetectsNonCutsAndNonMinimal) {
  FaultTree t;
  const NodeId a = t.add_basic_event("A", exp1());
  const NodeId b = t.add_basic_event("B", exp1());
  t.set_top(t.add_and("T", {a, b}));
  EXPECT_FALSE(is_cut_set(t, {0}));
  EXPECT_TRUE(is_cut_set(t, {0, 1}));
  EXPECT_TRUE(is_minimal_cut_set(t, {0, 1}));
  FaultTree t2 = simple_or();
  EXPECT_TRUE(is_cut_set(t2, {0, 1}));
  EXPECT_FALSE(is_minimal_cut_set(t2, {0, 1}));
}

}  // namespace
}  // namespace fmtree::ft
