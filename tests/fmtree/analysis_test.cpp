// The fmtree::Analysis facade: one session object must produce exactly what
// the layer APIs it wraps produce, and its telemetry sinks must follow the
// session (accumulate across calls, export on demand).
#include "fmtree/analysis.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>

#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "fmt/parser.hpp"
#include "util/error.hpp"

namespace fmtree {
namespace {

const char* kModel = R"(
toplevel System;
System or Wear Electronics;
Wear ebe phases=4 mean=6 threshold=3 repair_cost=800;
Electronics be exp(0.08);
inspection Visual period=0.5 cost=35 targets Wear;
corrective cost=8000 delay=0.02 downtime_rate=50000;
)";

TEST(AnalysisFacade, MatchesTheLayerApisExactly) {
  smc::AnalysisSettings s;
  s.horizon = 8.0;
  s.trajectories = 3000;
  s.seed = 11;
  s.threads = 2;
  const smc::KpiReport direct = smc::analyze(fmt::parse_fmt(kModel), s);

  Analysis study = Analysis::from_text(kModel);
  study.horizon(8.0).trajectories(3000).seed(11).threads(2);
  const smc::KpiReport facade = study.kpis();

  EXPECT_EQ(facade.trajectories, direct.trajectories);
  EXPECT_EQ(std::memcmp(&facade.reliability, &direct.reliability,
                        sizeof(direct.reliability)),
            0);
  EXPECT_EQ(std::memcmp(&facade.total_cost, &direct.total_cost,
                        sizeof(direct.total_cost)),
            0);

  const auto direct_curve =
      smc::reliability_curve(fmt::parse_fmt(kModel), smc::linspace_grid(8.0, 10), s);
  const auto facade_curve = study.reliability_curve(10);
  ASSERT_EQ(facade_curve.size(), direct_curve.size());
  for (std::size_t i = 0; i < facade_curve.size(); ++i)
    EXPECT_EQ(facade_curve[i].value.point, direct_curve[i].value.point) << i;

  const smc::MttfEstimate mttf = study.mttf();
  EXPECT_GT(mttf.mttf.point, 0.0);
}

TEST(AnalysisFacade, SettingsChainAndEscapeHatchAgree) {
  Analysis study = Analysis::from_text(kModel);
  study.horizon(5.0)
      .trajectories(123)
      .seed(99)
      .threads(3)
      .confidence(0.9)
      .discount_rate(0.04)
      .target_relative_error(0.1);
  EXPECT_DOUBLE_EQ(study.settings().horizon, 5.0);
  EXPECT_EQ(study.settings().trajectories, 123u);
  EXPECT_EQ(study.settings().seed, 99u);
  EXPECT_EQ(study.settings().threads, 3u);
  EXPECT_DOUBLE_EQ(study.settings().confidence, 0.9);
  EXPECT_DOUBLE_EQ(study.settings().discount_rate, 0.04);
  EXPECT_DOUBLE_EQ(study.settings().target_relative_error, 0.1);
  study.settings().batch = 500;  // escape hatch reaches everything else
  EXPECT_EQ(study.settings().batch, 500u);
}

TEST(AnalysisFacade, TelemetryAccumulatesAcrossTheSession) {
  Analysis study = Analysis::from_text(kModel);
  study.horizon(8.0).trajectories(500).seed(1).enable_metrics().enable_tracing();
  std::uint64_t progress_calls = 0;
  study.on_progress([&](const obs::Progress&) { ++progress_calls; }, 0.0);

  study.kpis();
  EXPECT_EQ(study.metrics().counter_value("smc.trajectories"), 500u);
  study.kpis();
  EXPECT_EQ(study.metrics().counter_value("smc.trajectories"), 1000u);
  EXPECT_GT(study.tracer().size(), 0u);
  EXPECT_GT(progress_calls, 0u);

  EXPECT_NE(study.metrics_json().find("fmtree.metrics/v1"), std::string::npos);
  EXPECT_NE(study.trace_json().find("fmtree.trace/v1"), std::string::npos);
  EXPECT_EQ(study.chrome_trace().front(), '[');
}

TEST(AnalysisFacade, ExportsAreEmptyWithoutSinks) {
  Analysis study = Analysis::from_text(kModel);
  EXPECT_TRUE(study.metrics_json().empty());
  EXPECT_TRUE(study.trace_json().empty());
  EXPECT_TRUE(study.chrome_trace().empty());
}

TEST(AnalysisFacade, FromFileAndErrors) {
  EXPECT_THROW(Analysis::from_file("/nonexistent/model.fmt"), IoError);
  EXPECT_THROW(Analysis::from_text("toplevel Broken"), Error);
  const Analysis study =
      Analysis::from_file(std::string(FMTREE_SOURCE_DIR) + "/models/ei_joint.fmt");
  EXPECT_GT(study.model().num_ebes(), 0u);
}

TEST(AnalysisFacade, AsyncSubmitMatchesBlockingKpisBitExactly) {
  Analysis blocking = Analysis::from_text(kModel);
  blocking.horizon(8.0).trajectories(3000).seed(11).threads(2);
  const smc::KpiReport reference = blocking.kpis();

  Analysis study = Analysis::from_text(kModel);
  study.horizon(8.0).trajectories(3000).seed(11).threads(2);
  PendingKpis pending = study.submit();
  while (!pending.poll()) pending.wait_for(0.01);
  const smc::KpiReport async = pending.wait();
  EXPECT_EQ(std::memcmp(&async.reliability, &reference.reliability,
                        sizeof(reference.reliability)),
            0);
  EXPECT_EQ(std::memcmp(&async.total_cost, &reference.total_cost,
                        sizeof(reference.total_cost)),
            0);
  // wait() is idempotent, and the second submission of the same study is a
  // cache hit on the session's service — same bits again.
  EXPECT_EQ(pending.wait().trajectories, reference.trajectories);
  const smc::KpiReport again = study.submit().wait();
  EXPECT_EQ(std::memcmp(&again.reliability, &reference.reliability,
                        sizeof(reference.reliability)),
            0);
}

TEST(AnalysisFacade, ResolvedAsyncHandleMayOutliveItsSession) {
  PendingKpis resolved;
  {
    Analysis study = Analysis::from_text(kModel);
    study.horizon(8.0).trajectories(500).seed(11);
    resolved = study.submit();
    resolved.wait();
  }  // the Analysis (and its embedded service) are gone
  EXPECT_TRUE(resolved.poll());
  EXPECT_GT(resolved.wait().trajectories, 0u);
}

TEST(AnalysisFacade, CancelledAsyncHandleThrowsOnWait) {
  Analysis study = Analysis::from_text(kModel);
  study.horizon(8.0).trajectories(50'000'000).seed(11);
  PendingKpis pending = study.submit();
  pending.cancel();
  EXPECT_THROW(pending.wait(), Error);
}

TEST(AnalysisFacade, ExactMttfAndOptimizerPassThrough) {
  // Markovian model (no inspections/phases): the exact backend applies.
  Analysis study = Analysis::from_text(R"(
toplevel System;
System or Part;
Part be exp(0.1);
corrective cost=100 delay=0;
)");
  EXPECT_NEAR(study.exact_mttf(), 10.0, 1e-6);

  // The optimizer runs under the session settings (seed fixed => exact
  // agreement with a direct sweep).
  Analysis ei(fmt::FaultMaintenanceTree{});
  ei.horizon(10.0).trajectories(300).seed(5).enable_metrics();
  const auto factory = eijoint::ei_joint_factory(eijoint::EiJointParameters::defaults());
  const auto candidates = maintenance::inspection_frequency_candidates(
      eijoint::current_policy(), {1.0, 4.0});
  const maintenance::SweepResult sweep = ei.optimize_policy(factory, candidates);
  ASSERT_EQ(sweep.curve.size(), 2u);
  const maintenance::SweepResult direct =
      maintenance::sweep_policies(factory, candidates, [&] {
        smc::AnalysisSettings s;
        s.horizon = 10.0;
        s.trajectories = 300;
        s.seed = 5;
        return s;
      }());
  EXPECT_EQ(sweep.best_index, direct.best_index);
  EXPECT_DOUBLE_EQ(sweep.best().cost_per_year(), direct.best().cost_per_year());
  EXPECT_EQ(ei.metrics().counter_value("optimizer.evaluations"), 2u);
}

}  // namespace
}  // namespace fmtree
