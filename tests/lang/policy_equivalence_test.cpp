// The headline acceptance property of the policy DSL: the scripted periodic
// policy (examples/policies/periodic.mpl) produces bitwise-identical KPIs
// to the model's built-in periodic inspection, on both engines, at any
// thread count and lane width — because policy evaluation draws no random
// numbers and repairs flow through the engines' own bookkeeping.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "fmt/parser.hpp"
#include "lang/policy.hpp"
#include "lang/runtime.hpp"
#include "smc/kpi.hpp"

namespace fmtree::lang {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

fmt::FaultMaintenanceTree ei_joint() {
  return fmt::parse_fmt(
      slurp(std::string(FMTREE_SOURCE_DIR) + "/models/ei_joint.fmt"));
}

std::shared_ptr<const CompiledPolicy> example(const char* name) {
  return std::make_shared<const CompiledPolicy>(compile_policy(
      slurp(std::string(FMTREE_SOURCE_DIR) + "/examples/policies/" + name)));
}

void expect_identical(const smc::KpiReport& a, const smc::KpiReport& b) {
  EXPECT_EQ(a.trajectories, b.trajectories);
  EXPECT_EQ(a.reliability.point, b.reliability.point);
  EXPECT_EQ(a.reliability.lo, b.reliability.lo);
  EXPECT_EQ(a.reliability.hi, b.reliability.hi);
  EXPECT_EQ(a.expected_failures.point, b.expected_failures.point);
  EXPECT_EQ(a.availability.point, b.availability.point);
  EXPECT_EQ(a.total_cost.point, b.total_cost.point);
  EXPECT_EQ(a.total_cost.lo, b.total_cost.lo);
  EXPECT_EQ(a.total_cost.hi, b.total_cost.hi);
  EXPECT_EQ(a.cost_per_year.point, b.cost_per_year.point);
  EXPECT_EQ(a.mean_cost.inspection, b.mean_cost.inspection);
  EXPECT_EQ(a.mean_cost.repair, b.mean_cost.repair);
  EXPECT_EQ(a.mean_cost.replacement, b.mean_cost.replacement);
  EXPECT_EQ(a.mean_cost.corrective, b.mean_cost.corrective);
  EXPECT_EQ(a.mean_cost.downtime, b.mean_cost.downtime);
  EXPECT_EQ(a.mean_inspections, b.mean_inspections);
  EXPECT_EQ(a.mean_repairs, b.mean_repairs);
  ASSERT_EQ(a.failures_per_leaf.size(), b.failures_per_leaf.size());
  for (std::size_t i = 0; i < a.failures_per_leaf.size(); ++i) {
    EXPECT_EQ(a.failures_per_leaf[i], b.failures_per_leaf[i]) << "leaf " << i;
    EXPECT_EQ(a.repairs_per_leaf[i], b.repairs_per_leaf[i]) << "leaf " << i;
  }
}

smc::AnalysisSettings settings(Engine engine, unsigned threads,
                               unsigned lane_width) {
  smc::AnalysisSettings s;
  s.horizon = 10.0;
  s.trajectories = 600;
  s.seed = 7;
  s.engine = engine;
  s.threads = threads;
  s.lane_width = lane_width;
  return s;
}

TEST(PolicyEquivalence, ScriptedPeriodicMatchesBuiltInBitwise) {
  const fmt::FaultMaintenanceTree model = ei_joint();
  const auto periodic = example("periodic.mpl");

  struct Config {
    Engine engine;
    unsigned threads;
    unsigned lane_width;
  };
  const Config configs[] = {
      {Engine::Scalar, 1, 0}, {Engine::Scalar, 4, 0},
      {Engine::Batch, 1, 0},  {Engine::Batch, 4, 0},
      {Engine::Batch, 2, 1},  {Engine::Batch, 3, 8},
  };
  for (const Config& c : configs) {
    smc::AnalysisSettings builtin_settings = settings(c.engine, c.threads, c.lane_width);
    const smc::KpiReport builtin = smc::analyze(model, builtin_settings);

    smc::AnalysisSettings scripted_settings = builtin_settings;
    scripted_settings.policy = periodic;
    const smc::KpiReport scripted = smc::analyze(model, scripted_settings);

    SCOPED_TRACE(::testing::Message()
                 << engine_name(c.engine) << " threads=" << c.threads
                 << " lanes=" << c.lane_width);
    expect_identical(builtin, scripted);
  }
}

TEST(PolicyEquivalence, ScriptedRunsAreThreadCountInvariant) {
  // Determinism is inherited: a scripted run is bit-identical to itself at
  // any thread count / lane width (per engine).
  const fmt::FaultMaintenanceTree model = ei_joint();
  const auto policy = example("seasonal.mpl");
  for (const Engine engine : {Engine::Scalar, Engine::Batch}) {
    smc::AnalysisSettings a = settings(engine, 1, 1);
    a.policy = policy;
    smc::AnalysisSettings b = settings(engine, 4, 16);
    b.policy = policy;
    SCOPED_TRACE(engine_name(engine));
    expect_identical(smc::analyze(model, a), smc::analyze(model, b));
  }
}

TEST(PolicyEquivalence, EveryExampleScriptExecutes) {
  const fmt::FaultMaintenanceTree model = ei_joint();
  for (const char* name :
       {"periodic.mpl", "condition_based.mpl", "opportunistic.mpl", "seasonal.mpl"}) {
    for (const Engine engine : {Engine::Scalar, Engine::Batch}) {
      smc::AnalysisSettings s = settings(engine, 0, 0);
      s.trajectories = 200;
      s.policy = example(name);
      const smc::KpiReport report = smc::analyze(model, s);
      SCOPED_TRACE(::testing::Message() << name << " on " << engine_name(engine));
      EXPECT_EQ(report.trajectories, 200u);
      EXPECT_GT(report.total_cost.point, 0.0);
      EXPECT_TRUE(std::isfinite(report.cost_per_year.point));
    }
  }
}

TEST(PolicyEquivalence, PolicyChangesTheResult) {
  // Sanity: the scripted condition-based policy is NOT the built-in one.
  const fmt::FaultMaintenanceTree model = ei_joint();
  smc::AnalysisSettings plain = settings(Engine::Scalar, 0, 0);
  smc::AnalysisSettings scripted = plain;
  scripted.policy = example("condition_based.mpl");
  EXPECT_NE(smc::analyze(model, plain).total_cost.point,
            smc::analyze(model, scripted).total_cost.point);
}

}  // namespace
}  // namespace fmtree::lang
