// Policy runtime semantics against a synthetic host (no engine): the model
// transform, target resolution, seasonal windows, lazy budgets, and the
// repair guards of run_round (idempotence, crew cap, failed/under-repair).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fmt/parser.hpp"
#include "lang/policy.hpp"
#include "lang/runtime.hpp"
#include "util/diagnostics.hpp"

namespace fmtree::lang {
namespace {

const char* const kModel = R"(
toplevel top;
top or a b c;
a ebe phases=3 mean=3 threshold=2 repair_cost=10 repair=fix_a;
b ebe phases=4 mean=8 threshold=3 repair_cost=20 repair=fix_b;
c ebe phases=1 mean=40 threshold=2;
inspection insp period=1 targets a b;
corrective cost=100;
)";

/// A host over plain arrays; records repair calls in order.
struct FakeState {
  std::vector<double> phase;
  std::vector<std::uint8_t> failed;
  std::vector<std::uint8_t> busy;
  std::vector<std::uint32_t> repaired;
};

auto host_over(FakeState& st) {
  return make_host([&](std::uint32_t l) { return st.phase[l]; },
                   [&](std::uint32_t l) { return st.failed[l] != 0; },
                   [&](std::uint32_t l) { return st.busy[l] != 0; },
                   [&](std::uint32_t l) { st.repaired.push_back(l); });
}

TEST(LangRuntime, ApplyPolicyReplacesInspections) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  const CompiledPolicy policy = compile_policy(
      "calendar narrow every 0.5 offset 0.1 cost 7 targets a;\n"
      "rule narrow { repair; }\n"
      "calendar wide every 2 targets all;\n"
      "rule wide { repair; }\n");
  const fmt::FaultMaintenanceTree out = apply_policy(policy, model);
  ASSERT_EQ(out.inspections().size(), 2u);
  EXPECT_EQ(out.inspections()[0].name, "narrow");
  EXPECT_DOUBLE_EQ(out.inspections()[0].period, 0.5);
  EXPECT_DOUBLE_EQ(out.inspections()[0].first_at, 0.1);
  EXPECT_DOUBLE_EQ(out.inspections()[0].cost, 7.0);
  ASSERT_EQ(out.inspections()[0].targets.size(), 1u);
  // `targets all` resolves to the inspectable leaves only (c has a
  // threshold above its phase count).
  ASSERT_EQ(out.inspections()[1].targets.size(), 2u);
  EXPECT_DOUBLE_EQ(out.inspections()[1].first_at, 2.0);  // offset defaults to period
}

TEST(LangRuntime, UnknownTargetIsDiagnosed) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  const CompiledPolicy policy = compile_policy(
      "calendar c every 1 targets nonsuch; rule c { repair; }");
  try {
    apply_policy(policy, model);
    FAIL() << "expected ModelErrors";
  } catch (const ModelErrors& e) {
    ASSERT_FALSE(e.diagnostics().empty());
    EXPECT_EQ(e.diagnostics()[0].code, "L135");
  }
}

TEST(LangRuntime, RoundActiveWindow) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  const CompiledPolicy policy = compile_policy(
      "calendar c every 0.1 window 0.25..0.75 of 1 targets a; rule c { repair; }");
  const fmt::FaultMaintenanceTree transformed = apply_policy(policy, model);
  const BoundPolicy bound = bind_policy(policy, transformed);
  EXPECT_FALSE(round_active(bound, 0, 0.1));
  EXPECT_TRUE(round_active(bound, 0, 0.25));
  EXPECT_TRUE(round_active(bound, 0, 0.5));
  EXPECT_FALSE(round_active(bound, 0, 0.75));
  EXPECT_FALSE(round_active(bound, 0, 1.1));   // wraps with the cycle
  EXPECT_TRUE(round_active(bound, 0, 1.5));
}

TEST(LangRuntime, BudgetRefillsLazily) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  const CompiledPolicy policy = compile_policy(
      "budget opex = 100 refill 50 every 1;\n"
      "calendar c every 1 targets a; rule c { spend(opex, 30); }");
  const fmt::FaultMaintenanceTree transformed = apply_policy(policy, model);
  const BoundPolicy bound = bind_policy(policy, transformed);
  PolicyState st;
  st.reset(bound);
  EXPECT_DOUBLE_EQ(bound.budget_available(0, 0.0, st), 100.0);
  EXPECT_DOUBLE_EQ(bound.budget_available(0, 2.5, st), 200.0);

  FakeState fake{{1, 1, 1}, {0, 0, 0}, {0, 0, 0}, {}};
  const auto host = host_over(fake);
  run_round(bound, 0, 1.0, host, st);
  EXPECT_DOUBLE_EQ(st.budget_spent[0], 30.0);
  EXPECT_DOUBLE_EQ(bound.budget_available(0, 1.0, st), 120.0);
}

TEST(LangRuntime, RepairGuards) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  const CompiledPolicy policy = compile_policy(
      "calendar c every 1 targets a, b;\n"
      "rule c {\n"
      "  if phase >= threshold then repair;\n"
      "  if phase >= threshold then repair;\n"  // idempotent per round
      "}");
  const fmt::FaultMaintenanceTree transformed = apply_policy(policy, model);
  const BoundPolicy bound = bind_policy(policy, transformed);
  PolicyState st;
  st.reset(bound);

  // Both above threshold: each repaired exactly once despite two statements.
  FakeState fake{{2, 3, 1}, {0, 0, 0}, {0, 0, 0}, {}};
  run_round(bound, 0, 1.0, host_over(fake), st);
  EXPECT_EQ(fake.repaired, (std::vector<std::uint32_t>{0, 1}));

  // Failed and under-repair components are skipped.
  FakeState skip{{4, 3, 1}, {1, 0, 0}, {0, 1, 0}, {}};
  run_round(bound, 0, 2.0, host_over(skip), st);
  EXPECT_TRUE(skip.repaired.empty());
}

TEST(LangRuntime, CrewCapLimitsRepairsPerRound) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  const CompiledPolicy policy = compile_policy(
      "crew 1;\n"
      "calendar c every 1 targets a, b;\n"
      "rule c { if phase >= threshold then repair; }");
  const fmt::FaultMaintenanceTree transformed = apply_policy(policy, model);
  const BoundPolicy bound = bind_policy(policy, transformed);
  PolicyState st;
  st.reset(bound);
  FakeState fake{{2, 3, 1}, {0, 0, 0}, {0, 0, 0}, {}};
  run_round(bound, 0, 1.0, host_over(fake), st);
  EXPECT_EQ(fake.repaired, (std::vector<std::uint32_t>{0}));

  // The cap is per round, not per trajectory.
  fake.repaired.clear();
  run_round(bound, 0, 2.0, host_over(fake), st);
  EXPECT_EQ(fake.repaired, (std::vector<std::uint32_t>{0}));
}

TEST(LangRuntime, NamedReadsAndRepairTargetsOtherComponents) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  const CompiledPolicy policy = compile_policy(
      "calendar c every 1 targets a;\n"
      "rule c { if phase(b) >= threshold(b) then repair(b); }");
  const fmt::FaultMaintenanceTree transformed = apply_policy(policy, model);
  const BoundPolicy bound = bind_policy(policy, transformed);
  PolicyState st;
  st.reset(bound);
  FakeState fake{{1, 3, 1}, {0, 0, 0}, {0, 0, 0}, {}};
  run_round(bound, 0, 1.0, host_over(fake), st);
  EXPECT_EQ(fake.repaired, (std::vector<std::uint32_t>{1}));
}

}  // namespace
}  // namespace fmtree::lang
