// Compiling policy scripts: compiled-table structure, the L12x/L13x
// diagnostics with recovery, and the fingerprint semantics the result cache
// relies on — formatting-invariant, constant-sensitive, name-agnostic.
#include <gtest/gtest.h>

#include <algorithm>

#include "batch/fingerprint.hpp"
#include "fmt/parser.hpp"
#include "lang/policy.hpp"
#include "smc/kpi.hpp"
#include "util/diagnostics.hpp"

namespace fmtree::lang {
namespace {

const char* const kScript = R"(
policy "unit";
budget opex = 100 refill 50 every 1;
crew 3;
calendar c every 0.5 offset 0.25 cost 10 targets all;
rule c {
  if phase >= threshold and budget(opex) >= 20 then repair, spend(opex, 20);
}
)";

TEST(LangCompile, CompilesTables) {
  const CompiledPolicy p = compile_policy(kScript);
  EXPECT_EQ(p.name, "unit");
  EXPECT_EQ(p.crew, 3u);
  ASSERT_EQ(p.budgets.size(), 1u);
  EXPECT_EQ(p.budgets[0].name, "opex");
  EXPECT_DOUBLE_EQ(p.budgets[0].initial, 100.0);
  EXPECT_DOUBLE_EQ(p.budgets[0].refill_amount, 50.0);
  EXPECT_DOUBLE_EQ(p.budgets[0].refill_period, 1.0);
  ASSERT_EQ(p.calendars.size(), 1u);
  EXPECT_DOUBLE_EQ(p.calendars[0].period, 0.5);
  EXPECT_DOUBLE_EQ(p.calendars[0].first_at, 0.25);
  EXPECT_DOUBLE_EQ(p.calendars[0].cost, 10.0);
  EXPECT_TRUE(p.calendars[0].targets_all);
  ASSERT_EQ(p.statements.size(), 1u);
  ASSERT_EQ(p.actions.size(), 2u);
  EXPECT_EQ(p.actions[0].kind, Action::Kind::RepairSelf);
  EXPECT_EQ(p.actions[1].kind, Action::Kind::Spend);
}

TEST(LangCompile, RecoveryReportsEveryError) {
  Diagnostics diags;
  const auto p = compile_policy(R"(
policy "broken";
calendar c every;          # L120: missing number
rule ghost { repair; }     # L130: unknown calendar
rule c { if phase then fix; }  # L122: bad action (c exists? no -> L130)
)",
                                diags);
  EXPECT_FALSE(p.has_value());
  EXPECT_GE(diags.error_count(), 3u);
  for (const Diagnostic& d : diags.all()) {
    ASSERT_EQ(d.code.size(), 4u) << d.code;
    EXPECT_EQ(d.code[0], 'L');
    EXPECT_EQ(d.code[1], '1');
    EXPECT_GT(d.loc.line, 0u) << d.message;
    EXPECT_GT(d.loc.column, 0u) << d.message;
  }
}

TEST(LangCompile, WarnsOnCalendarWithoutRule) {
  Diagnostics diags;
  const auto p = compile_policy("calendar idle every 1 targets all;", diags);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(diags.all().size(), 1u);
  EXPECT_EQ(diags.all()[0].code, "L134");
  EXPECT_EQ(diags.all()[0].severity, Severity::Warning);
}

TEST(LangCompile, ThrowingOverloadCarriesDiagnostics) {
  try {
    compile_policy("calendar c every;");
    FAIL() << "expected ParseErrors";
  } catch (const ParseErrors& e) {
    ASSERT_FALSE(e.diagnostics().empty());
    EXPECT_EQ(e.diagnostics()[0].code, "L120");
  }
}

// ---- Fingerprint semantics --------------------------------------------------

TEST(LangFingerprint, FormattingInvariant) {
  const CompiledPolicy a = compile_policy(
      "policy \"p\"; calendar c every 0.25 cost 35 targets all;\n"
      "rule c { if phase >= threshold then repair; }");
  const CompiledPolicy b = compile_policy(
      "# a comment\npolicy \"p\";\n\ncalendar c\n  every 0.25\n  cost 35\n"
      "  targets all;\nrule c {\n  if phase >= threshold\n    then repair;\n}\n");
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(LangFingerprint, PolicyNameExcluded) {
  const CompiledPolicy a = compile_policy(
      "policy \"first\"; calendar c every 1 targets all; rule c { repair; }");
  const CompiledPolicy b = compile_policy(
      "policy \"renamed\"; calendar c every 1 targets all; rule c { repair; }");
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(LangFingerprint, ConstantChangesFingerprint) {
  const char* const with_2 =
      "calendar c every 1 targets all; rule c { if phase >= 2 then repair; }";
  const char* const with_3 =
      "calendar c every 1 targets all; rule c { if phase >= 3 then repair; }";
  EXPECT_NE(compile_policy(with_2).fingerprint, compile_policy(with_3).fingerprint);
}

TEST(LangFingerprint, StructureChangesFingerprint) {
  const CompiledPolicy base = compile_policy(
      "calendar c every 1 cost 5 targets all; rule c { repair; }");
  EXPECT_NE(base.fingerprint,
            compile_policy("calendar c every 2 cost 5 targets all; "
                           "rule c { repair; }")
                .fingerprint);
  EXPECT_NE(base.fingerprint,
            compile_policy("crew 1; calendar c every 1 cost 5 targets all; "
                           "rule c { repair; }")
                .fingerprint);
  EXPECT_NE(base.fingerprint,
            compile_policy("calendar c every 1 cost 5 targets lipping; "
                           "rule c { repair; }")
                .fingerprint);
}

// ---- Cache-key semantics ----------------------------------------------------

const char* const kModel = R"(
toplevel top;
top or a b;
a ebe phases=3 mean=3 threshold=2 repair_cost=10 repair=fix_a;
b ebe phases=2 mean=5 threshold=2 repair_cost=20 repair=fix_b;
inspection insp period=0.5 targets a b;
corrective cost=100;
)";

smc::AnalysisSettings settings_with(std::shared_ptr<const CompiledPolicy> p) {
  smc::AnalysisSettings s;
  s.trajectories = 100;
  s.engine = Engine::Scalar;
  s.policy = std::move(p);
  return s;
}

TEST(LangCacheKey, ScriptedNeverSharesWithBuiltIn) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  // The scripted twin of the model's own inspection module.
  const auto scripted = std::make_shared<const CompiledPolicy>(compile_policy(
      "calendar insp every 0.5 targets all; "
      "rule insp { if phase >= threshold then repair; }"));
  const batch::CacheKey built_in = batch::kpi_cache_key(model, settings_with(nullptr));
  const batch::CacheKey with_script =
      batch::kpi_cache_key(model, settings_with(scripted));
  EXPECT_NE(built_in.id(), with_script.id());
}

TEST(LangCacheKey, ReformattingPreservesKey) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  const auto a = std::make_shared<const CompiledPolicy>(compile_policy(
      "policy \"x\"; calendar c every 1 targets a, b; "
      "rule c { if phase >= threshold then repair; }"));
  const auto b = std::make_shared<const CompiledPolicy>(compile_policy(
      "# reformatted, renamed, same semantics\npolicy \"y\";\n"
      "calendar c every 1\n  targets a, b;\nrule c {\n"
      "  if phase >= threshold then repair;\n}\n"));
  EXPECT_EQ(batch::kpi_cache_key(model, settings_with(a)).id(),
            batch::kpi_cache_key(model, settings_with(b)).id());
}

TEST(LangCacheKey, ThresholdConstantChangesKey) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(kModel);
  const auto a = std::make_shared<const CompiledPolicy>(compile_policy(
      "calendar c every 1 targets all; rule c { if phase >= 2 then repair; }"));
  const auto b = std::make_shared<const CompiledPolicy>(compile_policy(
      "calendar c every 1 targets all; rule c { if phase >= 3 then repair; }"));
  EXPECT_NE(batch::kpi_cache_key(model, settings_with(a)).id(),
            batch::kpi_cache_key(model, settings_with(b)).id());
}

TEST(LangCacheKey, NoPolicyFingerprintIsStable) {
  // The conditional-field pattern: settings without a policy hash exactly as
  // they did before the field existed, so pre-existing caches stay valid.
  const smc::AnalysisSettings plain = settings_with(nullptr);
  smc::AnalysisSettings detached = settings_with(nullptr);
  detached.policy.reset();
  EXPECT_EQ(batch::settings_fingerprint(plain), batch::settings_fingerprint(detached));
}

}  // namespace
}  // namespace fmtree::lang
