// The committed script corpus plus randomized robustness in the style of
// the ft/fmt parser-recovery suites: every valid corpus script compiles
// clean, every malformed one yields located L1xx errors, and thousands of
// random mutations of the corpus never crash the compiler, never cascade
// unboundedly, and always carry stable L1xx codes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "lang/policy.hpp"
#include "util/diagnostics.hpp"

namespace fmtree::lang {
namespace {

namespace fs = std::filesystem;

const fs::path kCorpus = fs::path(FMTREE_SOURCE_DIR) / "tests" / "lang" / "corpus";

std::string slurp(const fs::path& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

std::vector<fs::path> scripts_in(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".mpl") out.push_back(entry.path());
  std::sort(out.begin(), out.end());
  EXPECT_FALSE(out.empty()) << dir;
  return out;
}

bool is_l1xx(const std::string& code) {
  return code.size() == 4 && code[0] == 'L' && code[1] == '1' &&
         std::isdigit(static_cast<unsigned char>(code[2])) != 0 &&
         std::isdigit(static_cast<unsigned char>(code[3])) != 0;
}

TEST(LangCorpus, ValidScriptsCompileWithoutErrors) {
  for (const fs::path& path : scripts_in(kCorpus / "valid")) {
    Diagnostics diags;
    const auto policy = compile_policy(slurp(path), diags);
    EXPECT_TRUE(policy.has_value()) << path << "\n" << diags.format();
    EXPECT_FALSE(diags.has_errors()) << path << "\n" << diags.format();
    for (const Diagnostic& d : diags.all())
      EXPECT_TRUE(is_l1xx(d.code)) << path << ": " << d.code;
  }
}

TEST(LangCorpus, MalformedScriptsFailWithLocatedL1xxErrors) {
  for (const fs::path& path : scripts_in(kCorpus / "malformed")) {
    Diagnostics diags;
    const auto policy = compile_policy(slurp(path), diags);
    EXPECT_FALSE(policy.has_value()) << path;
    EXPECT_TRUE(diags.has_errors()) << path;
    for (const Diagnostic& d : diags.all()) {
      EXPECT_TRUE(is_l1xx(d.code)) << path << ": " << d.code;
      EXPECT_GT(d.loc.line, 0u) << path << ": " << d.message;
      EXPECT_GT(d.loc.column, 0u) << path << ": " << d.message;
    }
  }
}

/// One deterministic random edit of `text`.
std::string mutate(const std::string& text, std::mt19937& rng) {
  if (text.empty()) return text;
  std::string out = text;
  const auto pos = [&](std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n)(rng);
  };
  switch (rng() % 5) {
    case 0:  // delete a character
      out.erase(pos(out.size() - 1), 1);
      break;
    case 1: {  // insert a hostile character
      static const char kChars[] = ";{}()\",.@$<>=!#0123456789abc \n";
      out.insert(pos(out.size()), 1, kChars[rng() % (sizeof(kChars) - 1)]);
      break;
    }
    case 2: {  // duplicate a chunk
      const std::size_t at = pos(out.size() - 1);
      const std::size_t len = std::min<std::size_t>(1 + rng() % 16, out.size() - at);
      out.insert(at, out.substr(at, len));
      break;
    }
    case 3:  // truncate
      out.resize(pos(out.size()));
      break;
    default: {  // swap two characters
      const std::size_t a = pos(out.size() - 1), b = pos(out.size() - 1);
      std::swap(out[a], out[b]);
      break;
    }
  }
  return out;
}

TEST(LangCorpus, RandomMutationsNeverCrashAndNeverCascade) {
  std::vector<std::string> sources;
  for (const fs::path& path : scripts_in(kCorpus / "valid"))
    sources.push_back(slurp(path));

  std::mt19937 rng(20260809u);
  for (int round = 0; round < 400; ++round) {
    std::string text = sources[round % sources.size()];
    const int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits; ++e) text = mutate(text, rng);

    Diagnostics diags;
    const auto policy = compile_policy(text, diags);  // must not throw/crash
    if (!policy.has_value()) {
      EXPECT_TRUE(diags.has_errors());
    }
    for (const Diagnostic& d : diags.all()) {
      EXPECT_TRUE(is_l1xx(d.code)) << d.code << " on:\n" << text;
      if (d.severity == Severity::Error && d.code != "L136") {
        EXPECT_GT(d.loc.line, 0u) << d.message << " on:\n" << text;
      }
    }
    // Statement-level re-synchronization bounds the damage: a few edits can
    // not produce an avalanche of follow-up errors.
    EXPECT_LE(diags.all().size(), 40u) << "cascade on:\n" << text;
  }
}

}  // namespace
}  // namespace fmtree::lang
