# L111: the string literal never closes.
policy "runs off the end of the file;
