# L133: out-of-range values — negative period, fractional crew, inverted
# window, negative budget.
policy "bad-values";
budget b = -5;
crew 1.5;
calendar c every -1 targets all;
calendar w every 1 window 0.8..0.2 of 1 targets all;
