# L130: the rule names a calendar that was never declared.
policy "ghost-rule";
rule ghost { repair; }
