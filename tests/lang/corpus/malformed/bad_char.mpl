# L110: '@' is not a valid character; '!' alone is not an operator.
policy @bad;
calendar c every 1 targets all;
rule c { if phase ! threshold then repair; }
