# L120: the calendar statement never ends; the rule keyword is consumed as
# a (bad) calendar clause.
policy "missing-semicolon";
calendar c every 1 targets all
rule c { repair; }
