# L121: 'inspect' is not a statement; recovery continues to find the
# second, equally unknown statement.
inspect weekly;
schedule monthly;
