# L132: spend() and budget() name a budget that does not exist.
policy "no-such-budget";
calendar c every 1 targets all;
rule c {
  if budget(capex) > 0 then spend(capex, 1);
}
