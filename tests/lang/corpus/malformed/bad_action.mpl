# L122: 'replace' is not an action; the second statement misuses a keyword
# in an expression.
policy "bad-action";
calendar c every 1 targets all;
rule c {
  if phase >= threshold then replace;
  if spend > 1 then repair;
}
