# L131: duplicate calendar, duplicate budget, duplicate rule, duplicate
# policy name — all reported in one pass.
policy "dups";
policy "dups again";
budget b = 1;
budget b = 2;
calendar c every 1 targets all;
calendar c every 2 targets all;
rule c { repair; }
rule c { repair; }
