# Valid but warns (L134): the calendar has no rule, so its visits inspect
# nothing. Lint exits 0 on warnings.
policy "corpus-warn";
calendar idle every 1 cost 1 targets all;
