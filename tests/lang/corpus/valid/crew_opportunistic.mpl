# Crew cap plus opportunistic pull-forward using the round repair counter.
policy "corpus-crew";
crew 2;
calendar visit every 0.5 cost 20 targets all;
rule visit {
  if phase >= threshold then repair;
  if repairs > 0 and phase >= threshold - 1 then repair;
}
