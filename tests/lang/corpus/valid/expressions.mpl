# Expression-grammar coverage: arithmetic, comparisons, boolean operators,
# named component reads, mod(), time, parenthesization and unary minus.
policy "corpus-expressions";
budget cap = 100;
calendar c every 1 targets widget_a, widget_b;
rule c {
  if (phase + 1) * 2 - -1 >= threshold / 1 and not failed then repair;
  if phase(widget_a) == phases(widget_a) or phase(widget_b) != 1
    then repair(widget_a);
  if mod(time, 2) < 1 and repaired(widget_b) == false then repair(widget_b);
  if budget(cap) > 0 and 1 <= 2 and true then spend(cap, 5 + 2 * 3);
}
