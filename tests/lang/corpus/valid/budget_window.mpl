# Budget with refill, a seasonal window, and spend actions.
policy "corpus-budget-window";
budget opex = 1200 refill 600 every 0.5;
calendar summer every 0.1 offset 0.3 cost 9 window 0.2..0.8 of 1 targets all;
rule summer {
  if phase >= threshold and budget(opex) >= 150
    then repair, spend(opex, 150)
    else spend(opex, 0);
}
