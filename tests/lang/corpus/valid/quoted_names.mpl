# Quoted identifiers: component and calendar names with spaces; a quoted
# word that collides with a keyword stays an identifier.
policy "corpus quoted";
calendar "main visit" every 1 cost 5 targets "end post", "repair";
rule "main visit" {
  if phase >= threshold then repair("end post");
}
