# Minimal periodic policy: one calendar, threshold repairs.
policy "corpus-periodic";
calendar quarterly every 0.25 offset 0.25 cost 35 targets all;
rule quarterly {
  if phase >= threshold then repair;
}
