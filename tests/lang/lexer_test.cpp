// Tokenizer of the maintenance-policy DSL: token coverage, the '..' range
// operator against greedy number scanning, quoted identifiers, and the
// L110-L112 lexical diagnostics in both strict and recovery modes.
#include "lang/lexer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fmtree::lang {
namespace {

std::vector<TokenType> types_of(const std::vector<Token>& tokens) {
  std::vector<TokenType> out;
  for (const Token& t : tokens) out.push_back(t.type);
  return out;
}

TEST(LangLexer, TokenizesAStatement) {
  const auto tokens = tokenize("calendar c every 0.25 cost 35;");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].type, TokenType::Identifier);
  EXPECT_EQ(tokens[0].text, "calendar");
  EXPECT_EQ(tokens[3].type, TokenType::Number);
  EXPECT_DOUBLE_EQ(tokens[3].number, 0.25);
  EXPECT_EQ(tokens[5].number, 35.0);
  EXPECT_EQ(tokens[6].type, TokenType::Semicolon);
  EXPECT_EQ(tokens[7].type, TokenType::End);
}

TEST(LangLexer, OperatorsAndPunctuation) {
  const auto tokens = tokenize("( ) { } , ; = + - * / < <= > >= == !=");
  const std::vector<TokenType> expect = {
      TokenType::LParen,    TokenType::RParen,  TokenType::LBrace,
      TokenType::RBrace,    TokenType::Comma,   TokenType::Semicolon,
      TokenType::Equals,    TokenType::Plus,    TokenType::Minus,
      TokenType::Star,      TokenType::Slash,   TokenType::Less,
      TokenType::LessEq,    TokenType::Greater, TokenType::GreaterEq,
      TokenType::EqualsEquals, TokenType::NotEquals, TokenType::End};
  EXPECT_EQ(types_of(tokens), expect);
}

TEST(LangLexer, RangeOperatorSurvivesGreedyNumbers) {
  // "1..5" must lex as 1, '..', 5 — strtod alone would eat "1." first.
  const auto tokens = tokenize("window 1..5 of 10");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[1].type, TokenType::Number);
  EXPECT_DOUBLE_EQ(tokens[1].number, 1.0);
  EXPECT_EQ(tokens[2].type, TokenType::DotDot);
  EXPECT_DOUBLE_EQ(tokens[3].number, 5.0);

  const auto frac = tokenize("0.25..0.75");
  ASSERT_EQ(frac.size(), 4u);
  EXPECT_DOUBLE_EQ(frac[0].number, 0.25);
  EXPECT_EQ(frac[1].type, TokenType::DotDot);
  EXPECT_DOUBLE_EQ(frac[2].number, 0.75);
}

TEST(LangLexer, QuotedStringsAreMarkedIdentifiers) {
  const auto tokens = tokenize("policy \"end post wear\";");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].type, TokenType::Identifier);
  EXPECT_EQ(tokens[1].text, "end post wear");
  EXPECT_TRUE(tokens[1].quoted);
  EXPECT_FALSE(tokens[0].quoted);
}

TEST(LangLexer, CommentsAndLocations) {
  const auto tokens = tokenize("# a comment\ncrew 2; # trailing\nrepair");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "crew");
  EXPECT_EQ(tokens[0].line, 2u);
  EXPECT_EQ(tokens[0].column, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].column, 6u);
  EXPECT_EQ(tokens[3].text, "repair");
  EXPECT_EQ(tokens[3].line, 3u);
}

TEST(LangLexer, StrictModeThrowsOnBadCharacter) {
  try {
    tokenize("calendar c @ every 1;");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), "L110");
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.column(), 12u);
  }
}

TEST(LangLexer, RecoveryModeCollectsAndContinues) {
  Diagnostics diags;
  const auto tokens = tokenize("a @ b $ c", diags);
  EXPECT_EQ(diags.error_count(), 2u);
  for (const Diagnostic& d : diags.all()) EXPECT_EQ(d.code, "L110");
  // All three identifiers survive around the dropped characters.
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(LangLexer, UnterminatedStringReportsOpeningQuote) {
  Diagnostics diags;
  const auto tokens = tokenize("policy \"abc\ndef", diags);
  ASSERT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.all()[0].code, "L111");
  EXPECT_EQ(diags.all()[0].loc.line, 1u);
  EXPECT_EQ(diags.all()[0].loc.column, 8u);
  // Recovery: the rest of the input becomes the string's contents.
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "abc\ndef");
  EXPECT_TRUE(tokens[1].quoted);

  EXPECT_THROW(tokenize("policy \"abc"), ParseError);
}

TEST(LangLexer, LoneBangIsDiagnosed) {
  Diagnostics diags;
  tokenize("phase ! threshold", diags);
  ASSERT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.all()[0].code, "L110");
  EXPECT_FALSE(diags.all()[0].hint.empty());
}

}  // namespace
}  // namespace fmtree::lang
