file(REMOVE_RECURSE
  "CMakeFiles/compressor_planning.dir/compressor_planning.cpp.o"
  "CMakeFiles/compressor_planning.dir/compressor_planning.cpp.o.d"
  "compressor_planning"
  "compressor_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressor_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
