# Empty dependencies file for compressor_planning.
# This may be replaced when dependencies are built.
