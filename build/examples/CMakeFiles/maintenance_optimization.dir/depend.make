# Empty dependencies file for maintenance_optimization.
# This may be replaced when dependencies are built.
