file(REMOVE_RECURSE
  "CMakeFiles/maintenance_optimization.dir/maintenance_optimization.cpp.o"
  "CMakeFiles/maintenance_optimization.dir/maintenance_optimization.cpp.o.d"
  "maintenance_optimization"
  "maintenance_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
