file(REMOVE_RECURSE
  "CMakeFiles/incident_calibration.dir/incident_calibration.cpp.o"
  "CMakeFiles/incident_calibration.dir/incident_calibration.cpp.o.d"
  "incident_calibration"
  "incident_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
