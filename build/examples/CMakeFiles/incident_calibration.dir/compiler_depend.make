# Empty compiler generated dependencies file for incident_calibration.
# This may be replaced when dependencies are built.
