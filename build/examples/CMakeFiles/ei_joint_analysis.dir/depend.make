# Empty dependencies file for ei_joint_analysis.
# This may be replaced when dependencies are built.
