file(REMOVE_RECURSE
  "CMakeFiles/ei_joint_analysis.dir/ei_joint_analysis.cpp.o"
  "CMakeFiles/ei_joint_analysis.dir/ei_joint_analysis.cpp.o.d"
  "ei_joint_analysis"
  "ei_joint_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ei_joint_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
