file(REMOVE_RECURSE
  "CMakeFiles/custom_fmt_dsl.dir/custom_fmt_dsl.cpp.o"
  "CMakeFiles/custom_fmt_dsl.dir/custom_fmt_dsl.cpp.o.d"
  "custom_fmt_dsl"
  "custom_fmt_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_fmt_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
