# Empty compiler generated dependencies file for fmt_analytic.
# This may be replaced when dependencies are built.
