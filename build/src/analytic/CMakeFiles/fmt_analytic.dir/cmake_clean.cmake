file(REMOVE_RECURSE
  "CMakeFiles/fmt_analytic.dir/ctmc.cpp.o"
  "CMakeFiles/fmt_analytic.dir/ctmc.cpp.o.d"
  "CMakeFiles/fmt_analytic.dir/fmt2ctmc.cpp.o"
  "CMakeFiles/fmt_analytic.dir/fmt2ctmc.cpp.o.d"
  "CMakeFiles/fmt_analytic.dir/solvers.cpp.o"
  "CMakeFiles/fmt_analytic.dir/solvers.cpp.o.d"
  "libfmt_analytic.a"
  "libfmt_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmt_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
