file(REMOVE_RECURSE
  "libfmt_analytic.a"
)
