
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ft/bdd.cpp" "src/ft/CMakeFiles/fmt_ft.dir/bdd.cpp.o" "gcc" "src/ft/CMakeFiles/fmt_ft.dir/bdd.cpp.o.d"
  "/root/repo/src/ft/cutsets.cpp" "src/ft/CMakeFiles/fmt_ft.dir/cutsets.cpp.o" "gcc" "src/ft/CMakeFiles/fmt_ft.dir/cutsets.cpp.o.d"
  "/root/repo/src/ft/dot.cpp" "src/ft/CMakeFiles/fmt_ft.dir/dot.cpp.o" "gcc" "src/ft/CMakeFiles/fmt_ft.dir/dot.cpp.o.d"
  "/root/repo/src/ft/importance.cpp" "src/ft/CMakeFiles/fmt_ft.dir/importance.cpp.o" "gcc" "src/ft/CMakeFiles/fmt_ft.dir/importance.cpp.o.d"
  "/root/repo/src/ft/lexer.cpp" "src/ft/CMakeFiles/fmt_ft.dir/lexer.cpp.o" "gcc" "src/ft/CMakeFiles/fmt_ft.dir/lexer.cpp.o.d"
  "/root/repo/src/ft/parser.cpp" "src/ft/CMakeFiles/fmt_ft.dir/parser.cpp.o" "gcc" "src/ft/CMakeFiles/fmt_ft.dir/parser.cpp.o.d"
  "/root/repo/src/ft/transform.cpp" "src/ft/CMakeFiles/fmt_ft.dir/transform.cpp.o" "gcc" "src/ft/CMakeFiles/fmt_ft.dir/transform.cpp.o.d"
  "/root/repo/src/ft/tree.cpp" "src/ft/CMakeFiles/fmt_ft.dir/tree.cpp.o" "gcc" "src/ft/CMakeFiles/fmt_ft.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fmt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
