# Empty dependencies file for fmt_ft.
# This may be replaced when dependencies are built.
