file(REMOVE_RECURSE
  "libfmt_ft.a"
)
