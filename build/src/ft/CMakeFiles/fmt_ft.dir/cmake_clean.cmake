file(REMOVE_RECURSE
  "CMakeFiles/fmt_ft.dir/bdd.cpp.o"
  "CMakeFiles/fmt_ft.dir/bdd.cpp.o.d"
  "CMakeFiles/fmt_ft.dir/cutsets.cpp.o"
  "CMakeFiles/fmt_ft.dir/cutsets.cpp.o.d"
  "CMakeFiles/fmt_ft.dir/dot.cpp.o"
  "CMakeFiles/fmt_ft.dir/dot.cpp.o.d"
  "CMakeFiles/fmt_ft.dir/importance.cpp.o"
  "CMakeFiles/fmt_ft.dir/importance.cpp.o.d"
  "CMakeFiles/fmt_ft.dir/lexer.cpp.o"
  "CMakeFiles/fmt_ft.dir/lexer.cpp.o.d"
  "CMakeFiles/fmt_ft.dir/parser.cpp.o"
  "CMakeFiles/fmt_ft.dir/parser.cpp.o.d"
  "CMakeFiles/fmt_ft.dir/transform.cpp.o"
  "CMakeFiles/fmt_ft.dir/transform.cpp.o.d"
  "CMakeFiles/fmt_ft.dir/tree.cpp.o"
  "CMakeFiles/fmt_ft.dir/tree.cpp.o.d"
  "libfmt_ft.a"
  "libfmt_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmt_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
