file(REMOVE_RECURSE
  "CMakeFiles/fmt_util.dir/csv.cpp.o"
  "CMakeFiles/fmt_util.dir/csv.cpp.o.d"
  "CMakeFiles/fmt_util.dir/distributions.cpp.o"
  "CMakeFiles/fmt_util.dir/distributions.cpp.o.d"
  "CMakeFiles/fmt_util.dir/rng.cpp.o"
  "CMakeFiles/fmt_util.dir/rng.cpp.o.d"
  "CMakeFiles/fmt_util.dir/stats.cpp.o"
  "CMakeFiles/fmt_util.dir/stats.cpp.o.d"
  "CMakeFiles/fmt_util.dir/table.cpp.o"
  "CMakeFiles/fmt_util.dir/table.cpp.o.d"
  "libfmt_util.a"
  "libfmt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
