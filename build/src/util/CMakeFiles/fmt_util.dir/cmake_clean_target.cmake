file(REMOVE_RECURSE
  "libfmt_util.a"
)
