# Empty dependencies file for fmt_util.
# This may be replaced when dependencies are built.
