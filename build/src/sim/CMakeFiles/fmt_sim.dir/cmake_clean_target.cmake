file(REMOVE_RECURSE
  "libfmt_sim.a"
)
