# Empty dependencies file for fmt_sim.
# This may be replaced when dependencies are built.
