file(REMOVE_RECURSE
  "CMakeFiles/fmt_sim.dir/fmt_executor.cpp.o"
  "CMakeFiles/fmt_sim.dir/fmt_executor.cpp.o.d"
  "CMakeFiles/fmt_sim.dir/trace.cpp.o"
  "CMakeFiles/fmt_sim.dir/trace.cpp.o.d"
  "libfmt_sim.a"
  "libfmt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
