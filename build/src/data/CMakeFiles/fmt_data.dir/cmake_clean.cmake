file(REMOVE_RECURSE
  "CMakeFiles/fmt_data.dir/estimate.cpp.o"
  "CMakeFiles/fmt_data.dir/estimate.cpp.o.d"
  "CMakeFiles/fmt_data.dir/generator.cpp.o"
  "CMakeFiles/fmt_data.dir/generator.cpp.o.d"
  "CMakeFiles/fmt_data.dir/incident.cpp.o"
  "CMakeFiles/fmt_data.dir/incident.cpp.o.d"
  "CMakeFiles/fmt_data.dir/validate.cpp.o"
  "CMakeFiles/fmt_data.dir/validate.cpp.o.d"
  "libfmt_data.a"
  "libfmt_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmt_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
