
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/estimate.cpp" "src/data/CMakeFiles/fmt_data.dir/estimate.cpp.o" "gcc" "src/data/CMakeFiles/fmt_data.dir/estimate.cpp.o.d"
  "/root/repo/src/data/generator.cpp" "src/data/CMakeFiles/fmt_data.dir/generator.cpp.o" "gcc" "src/data/CMakeFiles/fmt_data.dir/generator.cpp.o.d"
  "/root/repo/src/data/incident.cpp" "src/data/CMakeFiles/fmt_data.dir/incident.cpp.o" "gcc" "src/data/CMakeFiles/fmt_data.dir/incident.cpp.o.d"
  "/root/repo/src/data/validate.cpp" "src/data/CMakeFiles/fmt_data.dir/validate.cpp.o" "gcc" "src/data/CMakeFiles/fmt_data.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smc/CMakeFiles/fmt_smc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fmt/CMakeFiles/fmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fmt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ft/CMakeFiles/fmt_ft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
