# Empty dependencies file for fmt_data.
# This may be replaced when dependencies are built.
