file(REMOVE_RECURSE
  "libfmt_data.a"
)
