file(REMOVE_RECURSE
  "CMakeFiles/fmt_core.dir/degradation.cpp.o"
  "CMakeFiles/fmt_core.dir/degradation.cpp.o.d"
  "CMakeFiles/fmt_core.dir/fmtree.cpp.o"
  "CMakeFiles/fmt_core.dir/fmtree.cpp.o.d"
  "CMakeFiles/fmt_core.dir/parser.cpp.o"
  "CMakeFiles/fmt_core.dir/parser.cpp.o.d"
  "libfmt_core.a"
  "libfmt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
