file(REMOVE_RECURSE
  "libfmt_core.a"
)
