# Empty dependencies file for fmt_core.
# This may be replaced when dependencies are built.
