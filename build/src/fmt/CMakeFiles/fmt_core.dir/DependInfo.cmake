
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fmt/degradation.cpp" "src/fmt/CMakeFiles/fmt_core.dir/degradation.cpp.o" "gcc" "src/fmt/CMakeFiles/fmt_core.dir/degradation.cpp.o.d"
  "/root/repo/src/fmt/fmtree.cpp" "src/fmt/CMakeFiles/fmt_core.dir/fmtree.cpp.o" "gcc" "src/fmt/CMakeFiles/fmt_core.dir/fmtree.cpp.o.d"
  "/root/repo/src/fmt/parser.cpp" "src/fmt/CMakeFiles/fmt_core.dir/parser.cpp.o" "gcc" "src/fmt/CMakeFiles/fmt_core.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ft/CMakeFiles/fmt_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fmt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
