file(REMOVE_RECURSE
  "CMakeFiles/fmt_maint.dir/optimizer.cpp.o"
  "CMakeFiles/fmt_maint.dir/optimizer.cpp.o.d"
  "CMakeFiles/fmt_maint.dir/policy.cpp.o"
  "CMakeFiles/fmt_maint.dir/policy.cpp.o.d"
  "CMakeFiles/fmt_maint.dir/repair_value.cpp.o"
  "CMakeFiles/fmt_maint.dir/repair_value.cpp.o.d"
  "libfmt_maint.a"
  "libfmt_maint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmt_maint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
