# Empty dependencies file for fmt_maint.
# This may be replaced when dependencies are built.
