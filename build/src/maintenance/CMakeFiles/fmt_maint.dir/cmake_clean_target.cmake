file(REMOVE_RECURSE
  "libfmt_maint.a"
)
