file(REMOVE_RECURSE
  "libfmt_smc.a"
)
