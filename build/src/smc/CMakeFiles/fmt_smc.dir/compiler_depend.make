# Empty compiler generated dependencies file for fmt_smc.
# This may be replaced when dependencies are built.
