file(REMOVE_RECURSE
  "CMakeFiles/fmt_smc.dir/compare.cpp.o"
  "CMakeFiles/fmt_smc.dir/compare.cpp.o.d"
  "CMakeFiles/fmt_smc.dir/export.cpp.o"
  "CMakeFiles/fmt_smc.dir/export.cpp.o.d"
  "CMakeFiles/fmt_smc.dir/kpi.cpp.o"
  "CMakeFiles/fmt_smc.dir/kpi.cpp.o.d"
  "CMakeFiles/fmt_smc.dir/runner.cpp.o"
  "CMakeFiles/fmt_smc.dir/runner.cpp.o.d"
  "libfmt_smc.a"
  "libfmt_smc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmt_smc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
