file(REMOVE_RECURSE
  "libfmt_cli_lib.a"
)
