file(REMOVE_RECURSE
  "CMakeFiles/fmt_cli_lib.dir/cli.cpp.o"
  "CMakeFiles/fmt_cli_lib.dir/cli.cpp.o.d"
  "libfmt_cli_lib.a"
  "libfmt_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmt_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
