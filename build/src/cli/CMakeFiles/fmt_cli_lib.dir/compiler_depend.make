# Empty compiler generated dependencies file for fmt_cli_lib.
# This may be replaced when dependencies are built.
