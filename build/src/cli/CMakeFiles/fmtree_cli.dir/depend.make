# Empty dependencies file for fmtree_cli.
# This may be replaced when dependencies are built.
