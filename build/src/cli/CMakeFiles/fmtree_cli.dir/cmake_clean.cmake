file(REMOVE_RECURSE
  "CMakeFiles/fmtree_cli.dir/main.cpp.o"
  "CMakeFiles/fmtree_cli.dir/main.cpp.o.d"
  "fmtree"
  "fmtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtree_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
