file(REMOVE_RECURSE
  "CMakeFiles/fmt_compressor.dir/compressor.cpp.o"
  "CMakeFiles/fmt_compressor.dir/compressor.cpp.o.d"
  "libfmt_compressor.a"
  "libfmt_compressor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmt_compressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
