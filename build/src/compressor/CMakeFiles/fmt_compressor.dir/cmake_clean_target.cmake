file(REMOVE_RECURSE
  "libfmt_compressor.a"
)
