# Empty dependencies file for fmt_compressor.
# This may be replaced when dependencies are built.
