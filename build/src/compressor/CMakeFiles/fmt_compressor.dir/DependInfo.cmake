
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compressor/compressor.cpp" "src/compressor/CMakeFiles/fmt_compressor.dir/compressor.cpp.o" "gcc" "src/compressor/CMakeFiles/fmt_compressor.dir/compressor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fmt/CMakeFiles/fmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fmt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ft/CMakeFiles/fmt_ft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
