file(REMOVE_RECURSE
  "CMakeFiles/fmt_eijoint.dir/model.cpp.o"
  "CMakeFiles/fmt_eijoint.dir/model.cpp.o.d"
  "CMakeFiles/fmt_eijoint.dir/scenarios.cpp.o"
  "CMakeFiles/fmt_eijoint.dir/scenarios.cpp.o.d"
  "libfmt_eijoint.a"
  "libfmt_eijoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmt_eijoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
