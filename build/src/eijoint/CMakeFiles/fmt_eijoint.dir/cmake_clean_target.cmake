file(REMOVE_RECURSE
  "libfmt_eijoint.a"
)
