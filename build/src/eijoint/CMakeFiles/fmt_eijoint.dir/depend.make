# Empty dependencies file for fmt_eijoint.
# This may be replaced when dependencies are built.
