# Empty dependencies file for bench_a14_renewal.
# This may be replaced when dependencies are built.
