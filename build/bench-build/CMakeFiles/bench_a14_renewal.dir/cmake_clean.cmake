file(REMOVE_RECURSE
  "../bench/bench_a14_renewal"
  "../bench/bench_a14_renewal.pdb"
  "CMakeFiles/bench_a14_renewal.dir/bench_a14_renewal.cpp.o"
  "CMakeFiles/bench_a14_renewal.dir/bench_a14_renewal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a14_renewal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
