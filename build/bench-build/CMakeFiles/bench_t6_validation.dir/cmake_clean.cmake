file(REMOVE_RECURSE
  "../bench/bench_t6_validation"
  "../bench/bench_t6_validation.pdb"
  "CMakeFiles/bench_t6_validation.dir/bench_t6_validation.cpp.o"
  "CMakeFiles/bench_t6_validation.dir/bench_t6_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
