file(REMOVE_RECURSE
  "../bench/bench_a13_imperfect"
  "../bench/bench_a13_imperfect.pdb"
  "CMakeFiles/bench_a13_imperfect.dir/bench_a13_imperfect.cpp.o"
  "CMakeFiles/bench_a13_imperfect.dir/bench_a13_imperfect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a13_imperfect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
