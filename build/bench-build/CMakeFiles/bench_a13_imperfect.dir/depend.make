# Empty dependencies file for bench_a13_imperfect.
# This may be replaced when dependencies are built.
