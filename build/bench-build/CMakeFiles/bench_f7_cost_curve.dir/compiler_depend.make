# Empty compiler generated dependencies file for bench_f7_cost_curve.
# This may be replaced when dependencies are built.
