file(REMOVE_RECURSE
  "../bench/bench_f7_cost_curve"
  "../bench/bench_f7_cost_curve.pdb"
  "CMakeFiles/bench_f7_cost_curve.dir/bench_f7_cost_curve.cpp.o"
  "CMakeFiles/bench_f7_cost_curve.dir/bench_f7_cost_curve.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_cost_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
