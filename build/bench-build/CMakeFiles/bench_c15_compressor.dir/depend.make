# Empty dependencies file for bench_c15_compressor.
# This may be replaced when dependencies are built.
