file(REMOVE_RECURSE
  "../bench/bench_c15_compressor"
  "../bench/bench_c15_compressor.pdb"
  "CMakeFiles/bench_c15_compressor.dir/bench_c15_compressor.cpp.o"
  "CMakeFiles/bench_c15_compressor.dir/bench_c15_compressor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c15_compressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
