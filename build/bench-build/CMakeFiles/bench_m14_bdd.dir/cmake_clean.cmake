file(REMOVE_RECURSE
  "../bench/bench_m14_bdd"
  "../bench/bench_m14_bdd.pdb"
  "CMakeFiles/bench_m14_bdd.dir/bench_m14_bdd.cpp.o"
  "CMakeFiles/bench_m14_bdd.dir/bench_m14_bdd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m14_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
