# Empty compiler generated dependencies file for bench_m14_bdd.
# This may be replaced when dependencies are built.
