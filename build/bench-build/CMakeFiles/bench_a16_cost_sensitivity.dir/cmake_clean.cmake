file(REMOVE_RECURSE
  "../bench/bench_a16_cost_sensitivity"
  "../bench/bench_a16_cost_sensitivity.pdb"
  "CMakeFiles/bench_a16_cost_sensitivity.dir/bench_a16_cost_sensitivity.cpp.o"
  "CMakeFiles/bench_a16_cost_sensitivity.dir/bench_a16_cost_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a16_cost_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
