# Empty dependencies file for bench_a16_cost_sensitivity.
# This may be replaced when dependencies are built.
