file(REMOVE_RECURSE
  "../bench/bench_a17_tornado"
  "../bench/bench_a17_tornado.pdb"
  "CMakeFiles/bench_a17_tornado.dir/bench_a17_tornado.cpp.o"
  "CMakeFiles/bench_a17_tornado.dir/bench_a17_tornado.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a17_tornado.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
