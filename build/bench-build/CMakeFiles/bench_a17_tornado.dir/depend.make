# Empty dependencies file for bench_a17_tornado.
# This may be replaced when dependencies are built.
