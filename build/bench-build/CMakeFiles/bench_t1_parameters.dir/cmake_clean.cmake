file(REMOVE_RECURSE
  "../bench/bench_t1_parameters"
  "../bench/bench_t1_parameters.pdb"
  "CMakeFiles/bench_t1_parameters.dir/bench_t1_parameters.cpp.o"
  "CMakeFiles/bench_t1_parameters.dir/bench_t1_parameters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
