file(REMOVE_RECURSE
  "../bench/bench_f3_model_dot"
  "../bench/bench_f3_model_dot.pdb"
  "CMakeFiles/bench_f3_model_dot.dir/bench_f3_model_dot.cpp.o"
  "CMakeFiles/bench_f3_model_dot.dir/bench_f3_model_dot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_model_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
