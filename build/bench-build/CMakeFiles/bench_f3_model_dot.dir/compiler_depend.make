# Empty compiler generated dependencies file for bench_f3_model_dot.
# This may be replaced when dependencies are built.
