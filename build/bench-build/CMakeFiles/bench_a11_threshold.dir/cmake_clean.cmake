file(REMOVE_RECURSE
  "../bench/bench_a11_threshold"
  "../bench/bench_a11_threshold.pdb"
  "CMakeFiles/bench_a11_threshold.dir/bench_a11_threshold.cpp.o"
  "CMakeFiles/bench_a11_threshold.dir/bench_a11_threshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a11_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
