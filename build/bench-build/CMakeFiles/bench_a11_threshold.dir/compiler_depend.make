# Empty compiler generated dependencies file for bench_a11_threshold.
# This may be replaced when dependencies are built.
