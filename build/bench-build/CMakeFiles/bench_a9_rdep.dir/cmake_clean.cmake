file(REMOVE_RECURSE
  "../bench/bench_a9_rdep"
  "../bench/bench_a9_rdep.pdb"
  "CMakeFiles/bench_a9_rdep.dir/bench_a9_rdep.cpp.o"
  "CMakeFiles/bench_a9_rdep.dir/bench_a9_rdep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a9_rdep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
