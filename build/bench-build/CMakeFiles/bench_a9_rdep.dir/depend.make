# Empty dependencies file for bench_a9_rdep.
# This may be replaced when dependencies are built.
