file(REMOVE_RECURSE
  "../bench/bench_a18_repair_value"
  "../bench/bench_a18_repair_value.pdb"
  "CMakeFiles/bench_a18_repair_value.dir/bench_a18_repair_value.cpp.o"
  "CMakeFiles/bench_a18_repair_value.dir/bench_a18_repair_value.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a18_repair_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
