# Empty dependencies file for bench_a18_repair_value.
# This may be replaced when dependencies are built.
