file(REMOVE_RECURSE
  "../bench/bench_a10_phases"
  "../bench/bench_a10_phases.pdb"
  "CMakeFiles/bench_a10_phases.dir/bench_a10_phases.cpp.o"
  "CMakeFiles/bench_a10_phases.dir/bench_a10_phases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a10_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
