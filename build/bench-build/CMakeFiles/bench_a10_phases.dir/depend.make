# Empty dependencies file for bench_a10_phases.
# This may be replaced when dependencies are built.
