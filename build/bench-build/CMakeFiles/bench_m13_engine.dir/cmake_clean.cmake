file(REMOVE_RECURSE
  "../bench/bench_m13_engine"
  "../bench/bench_m13_engine.pdb"
  "CMakeFiles/bench_m13_engine.dir/bench_m13_engine.cpp.o"
  "CMakeFiles/bench_m13_engine.dir/bench_m13_engine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m13_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
