# Empty dependencies file for bench_m13_engine.
# This may be replaced when dependencies are built.
