file(REMOVE_RECURSE
  "../bench/bench_t8_strategies"
  "../bench/bench_t8_strategies.pdb"
  "CMakeFiles/bench_t8_strategies.dir/bench_t8_strategies.cpp.o"
  "CMakeFiles/bench_t8_strategies.dir/bench_t8_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t8_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
