# Empty dependencies file for bench_t8_strategies.
# This may be replaced when dependencies are built.
