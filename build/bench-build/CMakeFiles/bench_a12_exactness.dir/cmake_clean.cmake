file(REMOVE_RECURSE
  "../bench/bench_a12_exactness"
  "../bench/bench_a12_exactness.pdb"
  "CMakeFiles/bench_a12_exactness.dir/bench_a12_exactness.cpp.o"
  "CMakeFiles/bench_a12_exactness.dir/bench_a12_exactness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a12_exactness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
