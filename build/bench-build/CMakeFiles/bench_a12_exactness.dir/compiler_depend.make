# Empty compiler generated dependencies file for bench_a12_exactness.
# This may be replaced when dependencies are built.
