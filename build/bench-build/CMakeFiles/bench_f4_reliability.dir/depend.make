# Empty dependencies file for bench_f4_reliability.
# This may be replaced when dependencies are built.
