file(REMOVE_RECURSE
  "../bench/bench_f4_reliability"
  "../bench/bench_f4_reliability.pdb"
  "CMakeFiles/bench_f4_reliability.dir/bench_f4_reliability.cpp.o"
  "CMakeFiles/bench_f4_reliability.dir/bench_f4_reliability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
