# Empty dependencies file for bench_t2_maintenance.
# This may be replaced when dependencies are built.
