# Empty dependencies file for bench_f5_failures.
# This may be replaced when dependencies are built.
