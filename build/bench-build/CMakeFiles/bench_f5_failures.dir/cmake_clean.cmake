file(REMOVE_RECURSE
  "../bench/bench_f5_failures"
  "../bench/bench_f5_failures.pdb"
  "CMakeFiles/bench_f5_failures.dir/bench_f5_failures.cpp.o"
  "CMakeFiles/bench_f5_failures.dir/bench_f5_failures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
