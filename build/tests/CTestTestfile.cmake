# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/ft_tests[1]_include.cmake")
include("/root/repo/build/tests/fmt_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/smc_tests[1]_include.cmake")
include("/root/repo/build/tests/analytic_tests[1]_include.cmake")
include("/root/repo/build/tests/maintenance_tests[1]_include.cmake")
include("/root/repo/build/tests/data_tests[1]_include.cmake")
include("/root/repo/build/tests/eijoint_tests[1]_include.cmake")
include("/root/repo/build/tests/compressor_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/cli_tests[1]_include.cmake")
