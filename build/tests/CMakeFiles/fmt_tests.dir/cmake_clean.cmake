file(REMOVE_RECURSE
  "CMakeFiles/fmt_tests.dir/fmt/degradation_test.cpp.o"
  "CMakeFiles/fmt_tests.dir/fmt/degradation_test.cpp.o.d"
  "CMakeFiles/fmt_tests.dir/fmt/extensions_test.cpp.o"
  "CMakeFiles/fmt_tests.dir/fmt/extensions_test.cpp.o.d"
  "CMakeFiles/fmt_tests.dir/fmt/fmtree_test.cpp.o"
  "CMakeFiles/fmt_tests.dir/fmt/fmtree_test.cpp.o.d"
  "CMakeFiles/fmt_tests.dir/fmt/parser_test.cpp.o"
  "CMakeFiles/fmt_tests.dir/fmt/parser_test.cpp.o.d"
  "CMakeFiles/fmt_tests.dir/fmt/spare_test.cpp.o"
  "CMakeFiles/fmt_tests.dir/fmt/spare_test.cpp.o.d"
  "fmt_tests"
  "fmt_tests.pdb"
  "fmt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
