# Empty dependencies file for fmt_tests.
# This may be replaced when dependencies are built.
