file(REMOVE_RECURSE
  "CMakeFiles/compressor_tests.dir/compressor/compressor_test.cpp.o"
  "CMakeFiles/compressor_tests.dir/compressor/compressor_test.cpp.o.d"
  "compressor_tests"
  "compressor_tests.pdb"
  "compressor_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressor_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
