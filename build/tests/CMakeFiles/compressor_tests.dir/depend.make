# Empty dependencies file for compressor_tests.
# This may be replaced when dependencies are built.
