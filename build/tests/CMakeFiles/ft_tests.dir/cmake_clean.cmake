file(REMOVE_RECURSE
  "CMakeFiles/ft_tests.dir/ft/bdd_cutsets_test.cpp.o"
  "CMakeFiles/ft_tests.dir/ft/bdd_cutsets_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/ft/bdd_test.cpp.o"
  "CMakeFiles/ft_tests.dir/ft/bdd_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/ft/cutsets_test.cpp.o"
  "CMakeFiles/ft_tests.dir/ft/cutsets_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/ft/importance_test.cpp.o"
  "CMakeFiles/ft_tests.dir/ft/importance_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/ft/parser_test.cpp.o"
  "CMakeFiles/ft_tests.dir/ft/parser_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/ft/transform_test.cpp.o"
  "CMakeFiles/ft_tests.dir/ft/transform_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/ft/tree_test.cpp.o"
  "CMakeFiles/ft_tests.dir/ft/tree_test.cpp.o.d"
  "ft_tests"
  "ft_tests.pdb"
  "ft_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
