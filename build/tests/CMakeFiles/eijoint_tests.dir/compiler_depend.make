# Empty compiler generated dependencies file for eijoint_tests.
# This may be replaced when dependencies are built.
