
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eijoint/eijoint_test.cpp" "tests/CMakeFiles/eijoint_tests.dir/eijoint/eijoint_test.cpp.o" "gcc" "tests/CMakeFiles/eijoint_tests.dir/eijoint/eijoint_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eijoint/CMakeFiles/fmt_eijoint.dir/DependInfo.cmake"
  "/root/repo/build/src/compressor/CMakeFiles/fmt_compressor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fmt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/maintenance/CMakeFiles/fmt_maint.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/fmt_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/smc/CMakeFiles/fmt_smc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fmt/CMakeFiles/fmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ft/CMakeFiles/fmt_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fmt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
