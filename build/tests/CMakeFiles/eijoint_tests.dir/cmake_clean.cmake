file(REMOVE_RECURSE
  "CMakeFiles/eijoint_tests.dir/eijoint/eijoint_test.cpp.o"
  "CMakeFiles/eijoint_tests.dir/eijoint/eijoint_test.cpp.o.d"
  "eijoint_tests"
  "eijoint_tests.pdb"
  "eijoint_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eijoint_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
