file(REMOVE_RECURSE
  "CMakeFiles/maintenance_tests.dir/maintenance/maintenance_test.cpp.o"
  "CMakeFiles/maintenance_tests.dir/maintenance/maintenance_test.cpp.o.d"
  "CMakeFiles/maintenance_tests.dir/maintenance/optimizer2_test.cpp.o"
  "CMakeFiles/maintenance_tests.dir/maintenance/optimizer2_test.cpp.o.d"
  "CMakeFiles/maintenance_tests.dir/maintenance/repair_value_test.cpp.o"
  "CMakeFiles/maintenance_tests.dir/maintenance/repair_value_test.cpp.o.d"
  "maintenance_tests"
  "maintenance_tests.pdb"
  "maintenance_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
