# Empty compiler generated dependencies file for maintenance_tests.
# This may be replaced when dependencies are built.
