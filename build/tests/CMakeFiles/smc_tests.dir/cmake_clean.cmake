file(REMOVE_RECURSE
  "CMakeFiles/smc_tests.dir/smc/compare_test.cpp.o"
  "CMakeFiles/smc_tests.dir/smc/compare_test.cpp.o.d"
  "CMakeFiles/smc_tests.dir/smc/npv_test.cpp.o"
  "CMakeFiles/smc_tests.dir/smc/npv_test.cpp.o.d"
  "CMakeFiles/smc_tests.dir/smc/smc_test.cpp.o"
  "CMakeFiles/smc_tests.dir/smc/smc_test.cpp.o.d"
  "smc_tests"
  "smc_tests.pdb"
  "smc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
