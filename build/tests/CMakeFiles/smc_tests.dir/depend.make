# Empty dependencies file for smc_tests.
# This may be replaced when dependencies are built.
