#include "obs/tracer.hpp"

#include <algorithm>
#include <sstream>

#if defined(__linux__) || defined(__APPLE__)
#include <ctime>
#define FMTREE_HAS_THREAD_CPUTIME 1
#endif

namespace fmtree::obs {

namespace {

/// CPU time consumed by the calling thread, in nanoseconds; 0 where the
/// platform offers no per-thread clock (timings then report cpu_ms = 0).
std::uint64_t thread_cpu_ns() noexcept {
#ifdef FMTREE_HAS_THREAD_CPUTIME
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
#endif
  return 0;
}

std::string json_ms(std::uint64_t ns) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << static_cast<double>(ns) / 1e6;
  return os.str();
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::uint32_t Tracer::thread_number_locked(std::thread::id id) {
  for (std::uint32_t i = 0; i < threads_.size(); ++i)
    if (threads_[i] == id) return i;
  threads_.push_back(id);
  open_by_thread_.emplace_back();
  return static_cast<std::uint32_t>(threads_.size() - 1);
}

Tracer::Span Tracer::span(std::string_view name) {
  const auto now = std::chrono::steady_clock::now();
  const std::uint64_t cpu = thread_cpu_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t thread = thread_number_locked(std::this_thread::get_id());
  SpanRecord rec;
  rec.name = std::string(name);
  rec.start_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_).count());
  rec.thread = thread;
  std::vector<std::size_t>& stack = open_by_thread_[thread];
  rec.parent = stack.empty() ? -1 : static_cast<std::int32_t>(stack.back());
  const std::size_t index = spans_.size();
  spans_.push_back(std::move(rec));
  cpu_at_open_.push_back(cpu);
  stack.push_back(index);
  return Span(this, index);
}

void Tracer::end_span(std::size_t index) noexcept {
  const auto now = std::chrono::steady_clock::now();
  const std::uint64_t cpu = thread_cpu_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= spans_.size() || spans_[index].end_ns != 0) return;
  SpanRecord& rec = spans_[index];
  rec.end_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_).count());
  if (rec.end_ns <= rec.start_ns) rec.end_ns = rec.start_ns + 1;  // keep dur > 0
  if (cpu >= cpu_at_open_[index]) rec.cpu_ns = cpu - cpu_at_open_[index];
  // Pop from its thread's open stack (normally the top; tolerate misnesting).
  std::vector<std::size_t>& stack = open_by_thread_[rec.thread];
  const auto it = std::find(stack.rbegin(), stack.rend(), index);
  if (it != stack.rend()) stack.erase(std::next(it).base());
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<SpanRecord> Tracer::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::string Tracer::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\n  \"schema\": \"fmtree.trace/v1\",\n  \"spans\": [";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    const std::uint64_t wall = s.end_ns > s.start_ns ? s.end_ns - s.start_ns : 0;
    os << (i ? ",\n" : "\n") << "    {\"name\": \"" << s.name << "\", \"thread\": "
       << s.thread << ", \"parent\": " << s.parent << ", \"start_ms\": "
       << json_ms(s.start_ns) << ", \"wall_ms\": " << json_ms(wall)
       << ", \"cpu_ms\": " << json_ms(s.cpu_ns) << "}";
  }
  os << (spans_.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

std::string Tracer::to_chrome_trace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << "[";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    const std::uint64_t wall = s.end_ns > s.start_ns ? s.end_ns - s.start_ns : 0;
    os << (i ? ",\n " : "\n ") << "{\"name\": \"" << s.name
       << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << s.thread << ", \"ts\": "
       << static_cast<double>(s.start_ns) / 1e3 << ", \"dur\": "
       << static_cast<double>(wall) / 1e3 << ", \"args\": {\"cpu_ms\": "
       << static_cast<double>(s.cpu_ns) / 1e6 << "}}";
  }
  os << (spans_.empty() ? "]" : "\n]") << "\n";
  return os.str();
}

Tracer::Span maybe_span(Tracer* tracer, std::string_view name) {
  return tracer != nullptr ? tracer->span(name) : Tracer::Span();
}

}  // namespace fmtree::obs
