// Phase-scoped tracing: RAII spans with wall-clock and per-thread CPU
// timings, collected into a thread-safe Tracer and exportable as JSON
// ("fmtree.trace/v1") or Chrome trace_event format (loadable in
// chrome://tracing and Perfetto).
//
// Spans are coarse — one per analysis phase (parse, build, simulate, solve,
// aggregate, sweep), not per event — so every span operation may take the
// tracer mutex without showing up in any profile. Nesting is tracked per
// thread: a span opened while another span of the same thread is open
// records that span as its parent, giving the phase hierarchy without any
// explicit plumbing.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace fmtree::obs {

/// One completed (or still open) span. end_ns == 0 while open.
struct SpanRecord {
  std::string name;
  std::uint64_t start_ns = 0;  ///< wall clock, relative to the tracer epoch
  std::uint64_t end_ns = 0;
  std::uint64_t cpu_ns = 0;    ///< thread CPU time consumed inside the span
  std::int32_t parent = -1;    ///< index of the enclosing span; -1 = root
  std::uint32_t thread = 0;    ///< dense per-tracer thread number
};

class Tracer {
public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// RAII handle: closes its span on destruction (or explicitly, earlier).
  class Span {
  public:
    Span() = default;  ///< inert span; close() is a no-op
    Span(Span&& other) noexcept : tracer_(other.tracer_), index_(other.index_) {
      other.tracer_ = nullptr;
    }
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        close();
        tracer_ = other.tracer_;
        index_ = other.index_;
        other.tracer_ = nullptr;
      }
      return *this;
    }
    ~Span() { close(); }

    /// Ends the span now. Idempotent.
    void close() noexcept {
      if (tracer_ != nullptr) tracer_->end_span(index_);
      tracer_ = nullptr;
    }

  private:
    friend class Tracer;
    Span(Tracer* tracer, std::size_t index) : tracer_(tracer), index_(index) {}
    Tracer* tracer_ = nullptr;
    std::size_t index_ = 0;
  };

  /// Opens a span on the calling thread, parented to that thread's innermost
  /// open span.
  Span span(std::string_view name);

  /// Number of spans recorded so far (open or closed).
  std::size_t size() const;

  /// Snapshot of all spans (open spans have end_ns == 0).
  std::vector<SpanRecord> records() const;

  /// Stable-schema JSON rendering ("fmtree.trace/v1"): spans in creation
  /// order with name/thread/parent/start/wall/cpu milliseconds.
  std::string to_json() const;

  /// Chrome trace_event rendering: a JSON array of complete ("ph":"X")
  /// events with microsecond timestamps, loadable in chrome://tracing.
  std::string to_chrome_trace() const;

private:
  void end_span(std::size_t index) noexcept;
  std::uint32_t thread_number_locked(std::thread::id id);

  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::vector<std::uint64_t> cpu_at_open_;  // parallel to spans_
  std::vector<std::thread::id> threads_;    // dense thread numbering
  std::vector<std::vector<std::size_t>> open_by_thread_;  // per-thread span stack
  std::chrono::steady_clock::time_point epoch_;
};

/// A span when a tracer is configured, an inert handle otherwise — lets
/// instrumented code open spans without null checks.
Tracer::Span maybe_span(Tracer* tracer, std::string_view name);

}  // namespace fmtree::obs
