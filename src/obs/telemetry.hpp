// The telemetry bundle: three optional, independently enabled sinks that
// ride through fmtree::RunSettings into every analysis layer.
//
//  * MetricsRegistry — named counters/gauges/histograms, accumulated
//    per-thread and merged at batch boundaries (obs/metrics.hpp);
//  * Tracer          — phase-scoped spans with wall/CPU timings, exportable
//    as JSON or Chrome trace_event format (obs/tracer.hpp);
//  * ProgressReporter — throttled live-progress callback (obs/progress.hpp).
//
// A null pointer disables the corresponding sink; with all three null the
// instrumented code paths reduce to a handful of pointer tests. Telemetry
// never feeds back into an analysis: enabling any sink changes no analysis
// output bit (see DESIGN.md, "Observability").
#pragma once

namespace fmtree::obs {

class MetricsRegistry;
class Tracer;
class ProgressReporter;

/// Non-owning bundle of telemetry sinks. Copyable; the referenced sinks must
/// outlive every run they are attached to.
struct Telemetry {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  ProgressReporter* progress = nullptr;

  bool enabled() const noexcept {
    return metrics != nullptr || tracer != nullptr || progress != nullptr;
  }
};

}  // namespace fmtree::obs
