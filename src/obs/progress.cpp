#include "obs/progress.hpp"

#include <utility>

namespace fmtree::obs {

ProgressReporter::ProgressReporter(ProgressFn fn, double min_interval_seconds)
    : fn_(std::move(fn)),
      interval_(std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(min_interval_seconds > 0 ? min_interval_seconds
                                                                 : 0.0))),
      next_due_(Clock::now().time_since_epoch().count()) {}

void ProgressReporter::update(Progress p) {
  const auto now = Clock::now();
  auto due_at = next_due_.load(std::memory_order_acquire);
  if (now.time_since_epoch().count() < due_at) return;
  const auto next = (now + interval_).time_since_epoch().count();
  // One winner per interval: losers observe the refreshed deadline and leave.
  if (!next_due_.compare_exchange_strong(due_at, next, std::memory_order_acq_rel))
    return;
  std::lock_guard<std::mutex> lock(mutex_);
  deliver(p, now);
}

void ProgressReporter::report_now(Progress p) {
  const auto now = Clock::now();
  next_due_.store((now + interval_).time_since_epoch().count(),
                  std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  deliver(p, now);
}

void ProgressReporter::deliver(Progress& p, Clock::time_point now) {
  if (have_last_ && p.done > last_done_) {
    const double dt = std::chrono::duration<double>(now - last_time_).count();
    if (dt > 0) p.rate = static_cast<double>(p.done - last_done_) / dt;
  }
  if (p.rate > 0 && p.total > p.done)
    p.eta_seconds = static_cast<double>(p.total - p.done) / p.rate;
  last_time_ = now;
  last_done_ = p.done;
  have_last_ = true;
  ++deliveries_;
  if (fn_) fn_(p);
}

}  // namespace fmtree::obs
