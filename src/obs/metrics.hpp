// Lock-cheap metrics: named counters, gauges and histograms.
//
// Two-level design keeps the Monte-Carlo hot path allocation-free and
// uncontended: each worker thread owns a LocalMetrics accumulator (plain
// arrays, no locks, no atomics) and folds it into the shared MetricsRegistry
// exactly once, at a batch boundary, under the registry mutex. Registration
// (name -> dense id) also takes the mutex but happens once per run, before
// the workers start.
//
// Metrics are observational only: they count work the analysis performs and
// never influence it, so enabling metrics changes no analysis output bit.
// Counter totals derived from per-trajectory quantities (trajectories,
// events, failures) are deterministic for a given (seed, trajectory count)
// at any thread count; wall-clock-dependent values are not and are kept out
// of counters by convention (see DESIGN.md, "Observability" for the metric
// name catalogue).
//
// JSON export follows the stable schema "fmtree.metrics/v1":
//   { "schema": "fmtree.metrics/v1",
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <double>, ... },
//     "histograms": { "<name>": { "lo": .., "hi": .., "counts": [..],
//                                 "underflow": .., "overflow": .., "total": .. } } }
// Keys are emitted in sorted order so the output is diffable.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fmtree::obs {

/// Dense registry-assigned metric handles. Cheap to copy; valid only for the
/// registry that issued them. A default-constructed id is invalid and safely
/// ignored by LocalMetrics.
struct CounterId {
  std::uint32_t index = std::numeric_limits<std::uint32_t>::max();
  bool valid() const noexcept {
    return index != std::numeric_limits<std::uint32_t>::max();
  }
};
struct GaugeId {
  std::uint32_t index = std::numeric_limits<std::uint32_t>::max();
  bool valid() const noexcept {
    return index != std::numeric_limits<std::uint32_t>::max();
  }
};
struct HistogramId {
  std::uint32_t index = std::numeric_limits<std::uint32_t>::max();
  bool valid() const noexcept {
    return index != std::numeric_limits<std::uint32_t>::max();
  }
};

class MetricsRegistry;

/// Per-thread accumulator: plain arrays, no synchronisation. Obtain one via
/// MetricsRegistry::local(), accumulate freely on one thread, then fold it
/// back with MetricsRegistry::merge() at a batch boundary (merge resets the
/// local state, so one LocalMetrics serves many batches).
class LocalMetrics {
public:
  LocalMetrics() = default;

  /// Adds to a counter. Invalid ids are ignored; ids registered after this
  /// accumulator was created grow the arrays on first use (cold path).
  void add(CounterId c, std::uint64_t delta = 1) {
    if (!c.valid()) return;
    if (c.index >= counters_.size()) counters_.resize(c.index + 1, 0);
    counters_[c.index] += delta;
  }

  /// Records one histogram observation.
  void observe(HistogramId h, double x) {
    if (!h.valid() || h.index >= hists_.size()) return;
    hists_[h.index].observe(x);
  }

  bool empty() const noexcept { return counters_.empty() && hists_.empty(); }

private:
  friend class MetricsRegistry;

  struct LocalHist {
    double lo = 0.0;
    double width = 1.0;  // bin width
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;

    void observe(double x) noexcept {
      if (x < lo) {
        ++underflow;
        return;
      }
      const auto bin = static_cast<std::size_t>((x - lo) / width);
      if (bin >= counts.size()) {
        ++overflow;
        return;
      }
      ++counts[bin];
    }
  };

  std::vector<std::uint64_t> counters_;
  std::vector<LocalHist> hists_;
};

/// Thread-safe registry of named metrics. Registration is idempotent: asking
/// for an existing name returns the same id (histograms must re-specify the
/// same shape). All direct mutation (add/set/observe) takes the registry
/// mutex — fine for per-batch or per-phase events; hot loops go through
/// LocalMetrics instead.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  CounterId counter(std::string_view name);
  GaugeId gauge(std::string_view name);
  /// Fixed-width histogram over [lo, hi) with `bins` bins plus
  /// underflow/overflow counters. Throws DomainError on a bad shape or a
  /// shape mismatch with an existing histogram of the same name.
  HistogramId histogram(std::string_view name, double lo, double hi, std::size_t bins);

  void add(CounterId c, std::uint64_t delta = 1);
  void set(GaugeId g, double value);
  void observe(HistogramId h, double x);

  /// A local accumulator pre-sized for everything registered so far.
  LocalMetrics local() const;
  /// Folds a local accumulator into the registry and resets it.
  void merge(LocalMetrics& local);

  // Read-back (primarily for tests and report generation). Unknown names
  // return 0 / 0.0.
  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;
  /// Total observation count of a histogram (including under/overflow).
  std::uint64_t histogram_total(std::string_view name) const;

  /// Stable-schema JSON rendering ("fmtree.metrics/v1"), keys sorted.
  std::string to_json() const;

  /// Drops all values (not the registrations) — counters to zero, gauges to
  /// unset, histogram bins to zero.
  void reset_values();

private:
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    double value = 0.0;
    bool set = false;
  };
  struct Hist {
    std::string name;
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
  };

  std::uint32_t find_counter(std::string_view name) const;  // locked by caller
  std::uint32_t find_gauge(std::string_view name) const;
  std::uint32_t find_hist(std::string_view name) const;

  mutable std::mutex mutex_;
  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<Hist> hists_;
};

}  // namespace fmtree::obs
