#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace fmtree::obs {

namespace {

constexpr std::uint32_t kNotFound = std::numeric_limits<std::uint32_t>::max();

/// JSON-safe rendering of a double: finite values round-trip, non-finite
/// ones (which JSON cannot represent) become null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::uint32_t MetricsRegistry::find_counter(std::string_view name) const {
  for (std::uint32_t i = 0; i < counters_.size(); ++i)
    if (counters_[i].name == name) return i;
  return kNotFound;
}

std::uint32_t MetricsRegistry::find_gauge(std::string_view name) const {
  for (std::uint32_t i = 0; i < gauges_.size(); ++i)
    if (gauges_[i].name == name) return i;
  return kNotFound;
}

std::uint32_t MetricsRegistry::find_hist(std::string_view name) const {
  for (std::uint32_t i = 0; i < hists_.size(); ++i)
    if (hists_[i].name == name) return i;
  return kNotFound;
}

CounterId MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint32_t i = find_counter(name);
  if (i == kNotFound) {
    i = static_cast<std::uint32_t>(counters_.size());
    counters_.push_back(Counter{std::string(name), 0});
  }
  return CounterId{i};
}

GaugeId MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint32_t i = find_gauge(name);
  if (i == kNotFound) {
    i = static_cast<std::uint32_t>(gauges_.size());
    gauges_.push_back(Gauge{std::string(name), 0.0, false});
  }
  return GaugeId{i};
}

HistogramId MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                       std::size_t bins) {
  if (!(hi > lo) || bins == 0 || !std::isfinite(lo) || !std::isfinite(hi))
    throw DomainError("histogram needs finite lo < hi and at least one bin");
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint32_t i = find_hist(name);
  if (i != kNotFound) {
    const Hist& h = hists_[i];
    if (h.lo != lo || h.hi != hi || h.counts.size() != bins)
      throw DomainError("histogram '" + std::string(name) +
                        "' re-registered with a different shape");
    return HistogramId{i};
  }
  i = static_cast<std::uint32_t>(hists_.size());
  Hist h;
  h.name = std::string(name);
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  hists_.push_back(std::move(h));
  return HistogramId{i};
}

void MetricsRegistry::add(CounterId c, std::uint64_t delta) {
  if (!c.valid()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (c.index < counters_.size()) counters_[c.index].value += delta;
}

void MetricsRegistry::set(GaugeId g, double value) {
  if (!g.valid()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (g.index < gauges_.size()) {
    gauges_[g.index].value = value;
    gauges_[g.index].set = true;
  }
}

void MetricsRegistry::observe(HistogramId h, double x) {
  if (!h.valid()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (h.index >= hists_.size()) return;
  Hist& hist = hists_[h.index];
  if (x < hist.lo) {
    ++hist.underflow;
    return;
  }
  const double width = (hist.hi - hist.lo) / static_cast<double>(hist.counts.size());
  const auto bin = static_cast<std::size_t>((x - hist.lo) / width);
  if (bin >= hist.counts.size()) ++hist.overflow;
  else ++hist.counts[bin];
}

LocalMetrics MetricsRegistry::local() const {
  std::lock_guard<std::mutex> lock(mutex_);
  LocalMetrics out;
  out.counters_.assign(counters_.size(), 0);
  out.hists_.reserve(hists_.size());
  for (const Hist& h : hists_) {
    LocalMetrics::LocalHist lh;
    lh.lo = h.lo;
    lh.width = (h.hi - h.lo) / static_cast<double>(h.counts.size());
    lh.counts.assign(h.counts.size(), 0);
    out.hists_.push_back(std::move(lh));
  }
  return out;
}

void MetricsRegistry::merge(LocalMetrics& local) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t nc = std::min(local.counters_.size(), counters_.size());
  for (std::size_t i = 0; i < nc; ++i) counters_[i].value += local.counters_[i];
  std::fill(local.counters_.begin(), local.counters_.end(), 0);
  const std::size_t nh = std::min(local.hists_.size(), hists_.size());
  for (std::size_t i = 0; i < nh; ++i) {
    LocalMetrics::LocalHist& lh = local.hists_[i];
    Hist& h = hists_[i];
    const std::size_t bins = std::min(lh.counts.size(), h.counts.size());
    for (std::size_t b = 0; b < bins; ++b) h.counts[b] += lh.counts[b];
    h.underflow += lh.underflow;
    h.overflow += lh.overflow;
    std::fill(lh.counts.begin(), lh.counts.end(), 0);
    lh.underflow = 0;
    lh.overflow = 0;
  }
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t i = find_counter(name);
  return i == kNotFound ? 0 : counters_[i].value;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t i = find_gauge(name);
  return i == kNotFound ? 0.0 : gauges_[i].value;
}

std::uint64_t MetricsRegistry::histogram_total(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t i = find_hist(name);
  if (i == kNotFound) return 0;
  const Hist& h = hists_[i];
  std::uint64_t total = h.underflow + h.overflow;
  for (std::uint64_t c : h.counts) total += c;
  return total;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Counter& c : counters_) c.value = 0;
  for (Gauge& g : gauges_) {
    g.value = 0.0;
    g.set = false;
  }
  for (Hist& h : hists_) {
    std::fill(h.counts.begin(), h.counts.end(), 0);
    h.underflow = 0;
    h.overflow = 0;
  }
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);

  // Sorted index views keep the output stable regardless of registration order.
  auto sorted_indices = [](const auto& items) {
    std::vector<std::size_t> idx(items.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return items[a].name < items[b].name;
    });
    return idx;
  };

  std::ostringstream os;
  os << "{\n  \"schema\": \"fmtree.metrics/v1\",\n  \"counters\": {";
  bool first = true;
  for (std::size_t i : sorted_indices(counters_)) {
    os << (first ? "\n" : ",\n") << "    \"" << counters_[i].name
       << "\": " << counters_[i].value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (std::size_t i : sorted_indices(gauges_)) {
    if (!gauges_[i].set) continue;
    os << (first ? "\n" : ",\n") << "    \"" << gauges_[i].name
       << "\": " << json_number(gauges_[i].value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (std::size_t i : sorted_indices(hists_)) {
    const Hist& h = hists_[i];
    std::uint64_t total = h.underflow + h.overflow;
    for (std::uint64_t c : h.counts) total += c;
    os << (first ? "\n" : ",\n") << "    \"" << h.name << "\": {\"lo\": "
       << json_number(h.lo) << ", \"hi\": " << json_number(h.hi) << ", \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b)
      os << (b ? ", " : "") << h.counts[b];
    os << "], \"underflow\": " << h.underflow << ", \"overflow\": " << h.overflow
       << ", \"total\": " << total << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace fmtree::obs
