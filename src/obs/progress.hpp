// Throttled live-progress reporting for long-running analyses.
//
// Producers (the Monte-Carlo runner, the adaptive KPI driver, the CTMC
// solvers, the policy optimizer) describe where they are with a Progress
// snapshot; the ProgressReporter rate-limits delivery to the user callback
// so hot loops can offer progress on every iteration without flooding
// anything. The cheap pre-check is `due()` — one steady_clock read and one
// relaxed atomic load — so a disabled or recently-fired reporter costs
// nanoseconds per poll. At most one thread wins the CAS per interval; the
// callback itself runs under a mutex and so never needs to be thread-safe.
//
// Progress is observational: reporters never feed back into the analysis,
// so enabling progress changes no analysis output bit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>

namespace fmtree::obs {

/// One progress snapshot. Producers fill what they know; negative doubles
/// and zero totals mean "not applicable / unknown".
struct Progress {
  std::string_view phase;        ///< "simulate", "solve", "sweep", "refine", ...
  std::uint64_t done = 0;        ///< units completed (trajectories, candidates)
  std::uint64_t total = 0;       ///< scheduled units; 0 = unknown / open-ended
  double rate = 0.0;             ///< units per second; filled in by the reporter
  double eta_seconds = -1.0;     ///< estimated seconds to completion; <0 unknown
  double ci_half_width = -1.0;   ///< current relative CI half-width (SMC); <0 n/a
  double ci_target = -1.0;       ///< requested relative CI half-width; <0 n/a
  double residual = -1.0;        ///< solver convergence residual; <0 n/a
};

using ProgressFn = std::function<void(const Progress&)>;

class ProgressReporter {
public:
  /// Delivers at most one snapshot per `min_interval_seconds` (plus any
  /// forced report_now calls). The callback runs on whichever worker thread
  /// won the interval, serialized by an internal mutex.
  explicit ProgressReporter(ProgressFn fn, double min_interval_seconds = 0.25);

  /// True once the throttle interval has elapsed — the cheap hot-loop guard.
  bool due() const noexcept {
    return Clock::now().time_since_epoch().count() >=
           next_due_.load(std::memory_order_relaxed);
  }

  /// Delivers `p` if due (first caller past the deadline wins; the rest
  /// return immediately). Computes rate and eta from successive calls.
  void update(Progress p);

  /// Delivers `p` unconditionally (end-of-phase summaries).
  void report_now(Progress p);

  std::uint64_t deliveries() const noexcept {
    return deliveries_.load(std::memory_order_relaxed);
  }

private:
  using Clock = std::chrono::steady_clock;

  void deliver(Progress& p, Clock::time_point now);

  ProgressFn fn_;
  Clock::duration interval_;
  std::atomic<Clock::rep> next_due_;
  std::atomic<std::uint64_t> deliveries_{0};

  std::mutex mutex_;  // serializes fn_ and the rate state below
  Clock::time_point last_time_;
  std::uint64_t last_done_ = 0;
  bool have_last_ = false;
};

}  // namespace fmtree::obs
