// Parameters of the EI-joint case study.
//
// SYNTHETIC SUBSTITUTE — the paper's parameter values come from proprietary
// ProRail incident databases and expert interviews; these defaults are
// chosen to the same orders of magnitude (joint lifetimes of decades,
// system failure rates of 0.01–0.5 per joint-year depending on maintenance,
// inspections a few times per year) so every qualitative claim of the paper
// can be exercised. All experiments are parametric in this struct.
//
// Time unit: years. Cost unit: euros.
#pragma once

#include <string>
#include <vector>

namespace fmtree::eijoint {

/// One degradation-based failure mode of the joint.
struct ModeParams {
  std::string name;
  int phases = 1;             ///< Erlang degradation stages
  double mean_ttf = 10.0;     ///< unmaintained mean time to failure (years)
  int threshold = 2;          ///< first inspectable phase (phases+1 = invisible)
  std::string repair_action = "repair";
  double repair_cost = 0.0;   ///< condition-based repair cost (euros)
  double repair_time = 0.0;   ///< crew time per repair (years); 0 = instant
};

struct EiJointParameters {
  // ---- Electrical failure modes (insulation bridged / lost) ---------------
  /// Metal overflow: plastic flow of the rail head smears steel over the
  /// endpost. Slow, clearly visible well before it bridges; removed by
  /// grinding.
  ModeParams lipping{"lipping", 6, 10.0, 4, "grind", 800.0};
  /// Conductive contamination (brake dust, swarf) accumulating in the
  /// joint gap; the fastest mode, removed by cleaning.
  ModeParams contamination{"contamination", 3, 3.0, 2, "clean", 250.0};
  /// Electrical wear-out of the insulating endpost itself.
  ModeParams endpost_wear{"endpost_wear", 4, 30.0, 3, "replace_endpost", 2500.0};
  /// Sudden damage (wheel impact, frost) destroying the insulation with no
  /// observable precursor — the mode inspections cannot prevent.
  ModeParams impact_damage{"impact_damage", 1, 40.0, 2, "none", 0.0};

  // ---- Mechanical failure modes (joint loses structural integrity) --------
  /// Bolts work loose / shear; the joint fails mechanically once
  /// `bolt_vote` of `num_bolts` bolts have failed.
  ModeParams bolt{"bolt", 2, 40.0, 2, "tighten", 100.0};
  int num_bolts = 4;
  int bolt_vote = 2;
  /// Fatigue crack in a fishplate.
  ModeParams fishplate{"fishplate_crack", 3, 45.0, 2, "replace_fishplate", 1800.0};
  /// Deterioration of the glued insulation layer.
  ModeParams glue{"glue_degradation", 5, 35.0, 4, "re_glue", 2800.0};
  /// Battered joint geometry (dipped/hammered rail ends); also accelerates
  /// lipping and glue deterioration once pronounced (RDEP below).
  ModeParams batter{"joint_batter", 5, 18.0, 2, "grind_geometry", 900.0};

  // ---- Rate dependencies ---------------------------------------------------
  bool enable_rdep = true;
  /// Batter phase from which the acceleration applies.
  int batter_trigger_phase = 3;
  double batter_lipping_factor = 3.0;
  double batter_glue_factor = 2.0;

  /// All degradation-mode parameter blocks, for tabulation (bolt listed once).
  std::vector<const ModeParams*> all_modes() const {
    return {&lipping, &contamination, &endpost_wear, &impact_damage,
            &bolt,    &fishplate,     &glue,         &batter};
  }

  /// The documented synthetic defaults.
  static EiJointParameters defaults() { return {}; }
};

}  // namespace fmtree::eijoint
