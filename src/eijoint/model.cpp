#include "eijoint/model.hpp"

#include "util/error.hpp"

namespace fmtree::eijoint {

namespace {

fmt::NodeId add_mode(fmt::FaultMaintenanceTree& model, const ModeParams& mode,
                     const std::string& name_override = {}) {
  return model.add_ebe(
      name_override.empty() ? mode.name : name_override,
      fmt::DegradationModel::erlang(mode.phases, mode.mean_ttf, mode.threshold),
      fmt::RepairSpec{mode.repair_action, mode.repair_cost, mode.repair_time});
}

}  // namespace

fmt::FaultMaintenanceTree build_ei_joint(const EiJointParameters& params,
                                         const maintenance::MaintenancePolicy& policy) {
  if (params.num_bolts < 1 || params.bolt_vote < 1 ||
      params.bolt_vote > params.num_bolts)
    throw ModelError("EI-joint needs 1 <= bolt_vote <= num_bolts");

  fmt::FaultMaintenanceTree model;

  // ---- Electrical branch ----------------------------------------------------
  const fmt::NodeId lipping = add_mode(model, params.lipping);
  const fmt::NodeId contamination = add_mode(model, params.contamination);
  const fmt::NodeId endpost = add_mode(model, params.endpost_wear);
  // Impact damage has no precursor: force an undetectable single-phase model
  // regardless of the (ignored) threshold field.
  const fmt::NodeId impact = model.add_basic_event(
      params.impact_damage.name,
      Distribution::exponential(1.0 / params.impact_damage.mean_ttf));
  const fmt::NodeId electrical = model.add_or(
      "electrical_failure", {lipping, contamination, endpost, impact});

  // ---- Mechanical branch ----------------------------------------------------
  std::vector<fmt::NodeId> bolts;
  bolts.reserve(static_cast<std::size_t>(params.num_bolts));
  for (int b = 1; b <= params.num_bolts; ++b)
    bolts.push_back(add_mode(model, params.bolt,
                             params.bolt.name + "_" + std::to_string(b)));
  const fmt::NodeId bolt_group =
      model.add_voting("bolt_group", params.bolt_vote, bolts);
  const fmt::NodeId fishplate = add_mode(model, params.fishplate);
  const fmt::NodeId glue = add_mode(model, params.glue);
  const fmt::NodeId batter = add_mode(model, params.batter);
  const fmt::NodeId mechanical =
      model.add_or("mechanical_failure", {bolt_group, fishplate, glue, batter});

  model.set_top(model.add_or("ei_joint_failure", {electrical, mechanical}));

  // ---- Rate dependencies ----------------------------------------------------
  if (params.enable_rdep) {
    model.add_rdep("batter_accelerates_lipping", batter, {lipping},
                   params.batter_lipping_factor, params.batter_trigger_phase);
    model.add_rdep("batter_accelerates_glue", batter, {glue},
                   params.batter_glue_factor, params.batter_trigger_phase);
  }

  maintenance::apply_policy(model, policy);
  model.validate();
  return model;
}

maintenance::ModelFactory ei_joint_factory(EiJointParameters params) {
  return [params = std::move(params)](const maintenance::MaintenancePolicy& policy) {
    return build_ei_joint(params, policy);
  };
}

}  // namespace fmtree::eijoint
