#include "eijoint/scenarios.hpp"

#include <utility>

#include "eijoint/model.hpp"
#include "maintenance/optimizer.hpp"

namespace fmtree::eijoint {

fmt::CorrectivePolicy standard_corrective() {
  fmt::CorrectivePolicy c;
  c.enabled = true;
  c.delay = 0.02;               // ~1 week from failure to renewed joint
  c.cost = 8000.0;              // emergency renewal + penalty
  c.downtime_cost_rate = 50000.0;  // traffic disruption per year of downtime
  return c;
}

maintenance::MaintenancePolicy current_policy() {
  maintenance::MaintenancePolicy p;
  p.name = "current-4x";
  p.inspection_period = 0.25;  // quarterly
  p.inspection_cost = 35.0;
  p.replacement_period = 0.0;  // no periodic renewal in force
  p.replacement_cost = 0.0;
  p.corrective = standard_corrective();
  return p;
}

maintenance::MaintenancePolicy corrective_only() {
  maintenance::MaintenancePolicy p = current_policy();
  p.name = "corrective-only";
  p.inspection_period = 0.0;
  return p;
}

maintenance::MaintenancePolicy inspections_per_year(double per_year) {
  maintenance::MaintenancePolicy p = current_policy();
  if (per_year <= 0) return corrective_only();
  p.name = std::to_string(per_year) + "x-per-year";
  p.inspection_period = 1.0 / per_year;
  return p;
}

maintenance::MaintenancePolicy with_renewal(double years) {
  maintenance::MaintenancePolicy p = current_policy();
  p.name = "current+renewal-" + std::to_string(static_cast<int>(years)) + "y";
  p.replacement_period = years;
  p.replacement_cost = 5500.0;  // planned renewal, much cheaper than emergency
  return p;
}

std::vector<maintenance::MaintenancePolicy> paper_strategies() {
  std::vector<maintenance::MaintenancePolicy> strategies;
  strategies.push_back(corrective_only());
  auto named = [](maintenance::MaintenancePolicy p, const char* name) {
    p.name = name;
    return p;
  };
  strategies.push_back(named(inspections_per_year(1), "1x-per-year"));
  strategies.push_back(named(inspections_per_year(2), "2x-per-year"));
  strategies.push_back(named(inspections_per_year(4), "current-4x"));
  strategies.push_back(named(inspections_per_year(8), "8x-per-year"));
  strategies.push_back(named(inspections_per_year(12), "12x-per-year"));
  strategies.push_back(with_renewal(15));
  return strategies;
}

std::vector<double> cost_curve_frequencies() {
  return {0, 0.5, 1, 2, 3, 4, 6, 8, 12, 24};
}

batch::SweepPlan cost_curve_plan(const EiJointParameters& params,
                                 const smc::AnalysisSettings& settings) {
  const maintenance::ModelFactory factory = ei_joint_factory(params);
  batch::SweepPlan plan;
  for (const maintenance::MaintenancePolicy& policy :
       maintenance::inspection_frequency_candidates(current_policy(),
                                                    cost_curve_frequencies())) {
    batch::SweepJob job;
    job.label = policy.name;
    job.model = factory(policy);
    job.settings = settings;
    job.settings.control = nullptr;  // plan-level concerns; see batch/sweep.hpp
    job.settings.telemetry = {};
    plan.jobs.push_back(std::move(job));
  }
  return plan;
}

}  // namespace fmtree::eijoint
