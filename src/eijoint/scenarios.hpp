// The maintenance-strategy catalogue of the case study: the policy in force
// ("current": quarterly visual inspections + corrective renewal) and the
// alternatives the paper compares it against.
#pragma once

#include <vector>

#include "batch/sweep.hpp"
#include "eijoint/params.hpp"
#include "maintenance/policy.hpp"

namespace fmtree::eijoint {

/// Corrective reaction shared by all strategies: a failed joint is renewed
/// after a short logistic delay, at significant cost (emergency crew,
/// penalty, traffic disruption).
fmt::CorrectivePolicy standard_corrective();

/// Quarterly visual inspections, no periodic renewal — the policy in force.
maintenance::MaintenancePolicy current_policy();

/// No inspections, no renewal; failures fixed correctively.
maintenance::MaintenancePolicy corrective_only();

/// Inspections `per_year` times a year (0 = corrective only).
maintenance::MaintenancePolicy inspections_per_year(double per_year);

/// Current policy plus periodic renewal of the whole joint every `years`.
maintenance::MaintenancePolicy with_renewal(double years);

/// The strategy set compared in the study, in presentation order:
/// corrective-only, 1x, 2x, 4x (current), 8x, 12x per year, and
/// current + 15-year renewal.
std::vector<maintenance::MaintenancePolicy> paper_strategies();

/// Inspection frequencies (per year) swept for the cost curve.
std::vector<double> cost_curve_frequencies();

/// The paper's cost-curve sweep as a batch plan: one job per frequency in
/// cost_curve_frequencies() (labels follow the optimizer's naming), all under
/// the same settings so the curve is seed-comparable. Run it with
/// batch::run_sweep or fmtree::Analysis::sweep.
batch::SweepPlan cost_curve_plan(const EiJointParameters& params,
                                 const smc::AnalysisSettings& settings);

}  // namespace fmtree::eijoint
