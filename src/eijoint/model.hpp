// Construction of the EI-joint fault maintenance tree.
//
// Structure (reconstructed from the paper's failure-mode taxonomy):
//
//   ei_joint_failure
//   ├─ electrical_failure (OR)
//   │   ├─ lipping                [EBE, grind]
//   │   ├─ contamination          [EBE, clean]
//   │   ├─ endpost_wear           [EBE, replace endpost]
//   │   └─ impact_damage          [BE, undetectable]
//   └─ mechanical_failure (OR)
//       ├─ bolt_group (VOT 2/4)   [EBE x4, tighten]
//       ├─ fishplate_crack        [EBE, replace fishplate]
//       ├─ glue_degradation       [EBE, re-glue]
//       └─ joint_batter           [EBE, grind geometry]
//
//   RDEP: joint_batter at phase >= 3 accelerates lipping (x3) and glue (x2).
#pragma once

#include "eijoint/params.hpp"
#include "fmt/fmtree.hpp"
#include "maintenance/policy.hpp"

namespace fmtree::eijoint {

/// Builds the EI-joint FMT with the given parameters and maintenance policy.
fmt::FaultMaintenanceTree build_ei_joint(const EiJointParameters& params,
                                         const maintenance::MaintenancePolicy& policy);

/// A factory closing over fixed parameters, for the policy optimizer.
maintenance::ModelFactory ei_joint_factory(EiJointParameters params);

}  // namespace fmtree::eijoint
