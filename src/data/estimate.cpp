#include "data/estimate.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/error.hpp"

namespace fmtree::data {

double gamma_quantile(double shape, double p) {
  if (!(shape > 0)) throw DomainError("gamma_quantile requires shape > 0");
  if (!(p > 0 && p < 1)) throw DomainError("gamma_quantile requires p in (0,1)");
  // Bracket the root of gamma_p(shape, x) = p.
  double lo = 0.0;
  double hi = std::max(1.0, shape);
  while (gamma_p(shape, hi) < p) {
    hi *= 2;
    if (hi > 1e12) throw DomainError("gamma_quantile failed to bracket");
  }
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (gamma_p(shape, mid) < p)
      lo = mid;
    else
      hi = mid;
    if (hi - lo < 1e-12 * std::max(1.0, hi)) break;
  }
  return 0.5 * (lo + hi);
}

RateEstimate estimate_rate(std::uint64_t events, double exposure, double confidence) {
  if (!(exposure > 0) || !std::isfinite(exposure))
    throw DomainError("exposure must be positive and finite");
  if (!(confidence > 0 && confidence < 1))
    throw DomainError("confidence must lie in (0,1)");
  const double alpha = 1.0 - confidence;
  RateEstimate est;
  est.events = events;
  est.exposure = exposure;
  est.confidence = confidence;
  est.rate = static_cast<double>(events) / exposure;
  // Garwood exact interval: [ G(alpha/2; k) , G(1-alpha/2; k+1) ] / T,
  // with G the Gamma(shape, rate=1) quantile and lo = 0 when k = 0.
  est.lo = events == 0
               ? 0.0
               : gamma_quantile(static_cast<double>(events), alpha / 2) / exposure;
  est.hi = gamma_quantile(static_cast<double>(events) + 1.0, 1.0 - alpha / 2) / exposure;
  return est;
}

namespace {

/// Shared NaN-poisoning guard of the lifetime fitters: an empty sample is
/// unusable, and a single NaN/inf/non-positive value would otherwise poison
/// (or, with RunningStats' non-finite exclusion, silently bias) the moments.
void require_positive_finite(const std::vector<double>& samples, const char* what) {
  if (samples.empty()) throw DomainError(std::string(what) + " needs >= 1 sample");
  for (double x : samples) {
    if (!std::isfinite(x) || !(x > 0))
      throw DomainError(std::string(what) + " requires positive finite samples");
  }
}

}  // namespace

ErlangFit fit_erlang(const std::vector<double>& samples) {
  require_positive_finite(samples, "erlang fit");
  RunningStats stats;
  for (double x : samples) stats.add(x);
  ErlangFit fit;
  fit.n = samples.size();
  fit.sample_mean = stats.mean();
  fit.sample_variance = stats.variance();
  // Moment matching divides by the sample variance; degenerate inputs (one
  // sample, or all samples equal) have none, and near-degenerate ones would
  // overflow the integer shape. Clamp to a defined shape and say why instead
  // of producing inf/NaN.
  const double cap = static_cast<double>(kDegenerateErlangShape);
  if (fit.n < 2) {
    fit.shape = kDegenerateErlangShape;
    fit.degenerate = true;
    fit.note = "single sample cannot identify a shape; clamped to " +
               std::to_string(kDegenerateErlangShape) + " phases";
  } else if (fit.sample_variance <= 0) {
    fit.shape = kDegenerateErlangShape;
    fit.degenerate = true;
    fit.note = "zero sample variance (all samples equal); clamped to " +
               std::to_string(kDegenerateErlangShape) + " phases";
  } else {
    const double raw = fit.sample_mean * fit.sample_mean / fit.sample_variance;
    if (raw >= cap + 0.5) {
      fit.shape = kDegenerateErlangShape;
      fit.degenerate = true;
      fit.note = "near-zero sample variance; shape clamped to " +
                 std::to_string(kDegenerateErlangShape) + " phases";
    } else {
      fit.shape = std::max(1, static_cast<int>(std::llround(raw)));
    }
  }
  fit.rate = static_cast<double>(fit.shape) / fit.sample_mean;
  return fit;
}

WeibullFit fit_weibull(const std::vector<double>& samples) {
  require_positive_finite(samples, "weibull fit");
  WeibullFit fit;
  fit.n = samples.size();

  const auto [min_it, max_it] = std::minmax_element(samples.begin(), samples.end());
  if (fit.n < 2 || *min_it == *max_it) {
    // Zero spread: the MLE shape diverges to +infinity (the sample looks
    // deterministic). Clamp to the ceiling; the scale is the common value.
    fit.shape = kMaxWeibullShape;
    fit.scale = *max_it;
    fit.degenerate = true;
    fit.note = fit.n < 2 ? "single sample cannot identify a shape; clamped"
                         : "zero sample spread (all samples equal); shape clamped";
    fit.log_likelihood = weibull_log_likelihood(fit.shape, fit.scale, samples);
    return fit;
  }

  double mean_log = 0;
  for (double x : samples) mean_log += std::log(x);
  mean_log /= static_cast<double>(samples.size());

  // Profile-likelihood equation in the shape k:
  //   g(k) = sum x^k ln x / sum x^k - 1/k - mean(ln x) = 0,
  // with g increasing in k. Bisection is robust for any data.
  const auto g = [&](double k) {
    double sum_xk = 0, sum_xk_lnx = 0;
    for (double x : samples) {
      const double xk = std::pow(x, k);
      sum_xk += xk;
      sum_xk_lnx += xk * std::log(x);
    }
    return sum_xk_lnx / sum_xk - 1.0 / k - mean_log;
  };
  double lo = 1e-3, hi = 1.0;
  // A root escaping the bracket means a (near-)degenerate spread; clamp to
  // the corresponding bound instead of failing the whole calibration.
  while (g(hi) < 0 && hi <= kMaxWeibullShape) hi *= 2;
  if (hi > kMaxWeibullShape) {
    hi = kMaxWeibullShape;
    lo = kMaxWeibullShape;
    fit.degenerate = true;
    fit.note = "near-zero sample spread; shape clamped to the ceiling";
  }
  while (g(lo) > 0 && lo >= 1e-9) lo /= 2;
  if (lo < 1e-9) {
    lo = 1e-9;
    hi = 1e-9;
    fit.degenerate = true;
    fit.note = "extreme sample spread; shape clamped to the floor";
  }
  for (int it = 0; it < 200 && lo < hi; ++it) {
    const double mid = 0.5 * (lo + hi);
    (g(mid) < 0 ? lo : hi) = mid;
  }
  fit.shape = 0.5 * (lo + hi);
  double sum_xk = 0;
  for (double x : samples) sum_xk += std::pow(x, fit.shape);
  fit.scale = std::pow(sum_xk / static_cast<double>(samples.size()), 1.0 / fit.shape);
  fit.log_likelihood = weibull_log_likelihood(fit.shape, fit.scale, samples);
  return fit;
}

double weibull_log_likelihood(double shape, double scale,
                              const std::vector<double>& samples) {
  if (!(shape > 0) || !(scale > 0))
    throw DomainError("weibull parameters must be positive");
  double ll = 0;
  for (double x : samples) {
    if (!(x > 0)) throw DomainError("weibull likelihood requires positive samples");
    const double z = x / scale;
    ll += std::log(shape / scale) + (shape - 1) * std::log(z) - std::pow(z, shape);
  }
  return ll;
}

double erlang_log_likelihood(int shape, double rate, const std::vector<double>& samples) {
  if (shape < 1 || !(rate > 0)) throw DomainError("erlang parameters invalid");
  double ll = 0;
  const double log_norm = static_cast<double>(shape) * std::log(rate) -
                          std::lgamma(static_cast<double>(shape));
  for (double x : samples) {
    if (!(x > 0)) throw DomainError("erlang likelihood requires positive samples");
    ll += log_norm + (shape - 1) * std::log(x) - rate * x;
  }
  return ll;
}

FamilySelection select_lifetime_family(const std::vector<double>& samples) {
  FamilySelection out;
  out.erlang = fit_erlang(samples);
  out.weibull = fit_weibull(samples);
  out.erlang_log_likelihood =
      erlang_log_likelihood(out.erlang.shape, out.erlang.rate, samples);
  out.weibull_log_likelihood = out.weibull.log_likelihood;
  out.family = out.weibull_log_likelihood > out.erlang_log_likelihood
                   ? LifetimeFamily::Weibull
                   : LifetimeFamily::Erlang;
  return out;
}

fmt::DegradationModel fit_degradation(const std::vector<DegradationSample>& samples) {
  if (samples.empty()) throw DomainError("degradation fit needs >= 1 sample");
  std::vector<double> ttf;
  RunningStats threshold_time;
  ttf.reserve(samples.size());
  for (const DegradationSample& s : samples) {
    if (!std::isfinite(s.time_to_threshold) || s.time_to_threshold < 0)
      throw DomainError("degradation fit requires finite non-negative threshold times");
    ttf.push_back(s.time_to_failure);
    threshold_time.add(s.time_to_threshold);
  }
  const ErlangFit fit = fit_erlang(ttf);
  // Expected time to reach phase k from new is (k-1)/rate; place the
  // threshold phase so that matches the observed mean (1-based, clamped).
  const int threshold =
      1 + static_cast<int>(std::llround(threshold_time.mean() * fit.rate));
  const int clamped = std::clamp(threshold, 1, fit.shape + 1);
  return fmt::DegradationModel::erlang(fit.shape, fit.mean(), clamped);
}

}  // namespace fmtree::data
