// Parameter estimation from field data: the calibration half of the study.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/generator.hpp"
#include "fmt/degradation.hpp"
#include "util/stats.hpp"

namespace fmtree::data {

/// Rate estimate from a Poisson count over an exposure, with an exact
/// (Garwood) confidence interval from gamma quantiles.
struct RateEstimate {
  double rate = 0.0;       ///< events / exposure
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t events = 0;
  double exposure = 0.0;
  double confidence = 0.95;
};

RateEstimate estimate_rate(std::uint64_t events, double exposure,
                           double confidence = 0.95);

/// Shape the moment-matched Erlang fit clamps to on degenerate input (zero
/// sample variance or a single sample): many phases approximate the
/// deterministic lifetime the data describes, and the clamp keeps the
/// division mean^2/variance from manufacturing inf/NaN or overflowing the
/// integer shape.
inline constexpr int kDegenerateErlangShape = 100;

/// Shape ceiling of the Weibull profile-likelihood fit. The MLE diverges to
/// +infinity as the sample spread vanishes; the fit clamps there (flagged
/// `degenerate`) instead of failing, matching a near-deterministic lifetime.
inline constexpr double kMaxWeibullShape = 1e4;

/// Erlang fit by moment matching: shape = round(mean^2/var) clamped to
/// [1, kDegenerateErlangShape], rate = shape/mean.
struct ErlangFit {
  int shape = 1;
  double rate = 1.0;
  double sample_mean = 0.0;
  double sample_variance = 0.0;
  std::size_t n = 0;
  /// True when the input could not identify a shape (single sample, zero or
  /// near-zero variance) and the fit was clamped; `note` says why. The
  /// clamped fit is still a valid distribution over the observed mean.
  bool degenerate = false;
  std::string note;

  double mean() const noexcept { return static_cast<double>(shape) / rate; }
};

/// Throws DomainError on an empty sample or any non-positive / non-finite
/// value (NaN-poisoning guard); degenerate-but-valid inputs (all equal,
/// n == 1) yield a clamped fit flagged `degenerate` instead of inf/NaN.
ErlangFit fit_erlang(const std::vector<double>& samples);

/// Fits a full degradation model from elicited durations: the Erlang shape
/// and rate come from the time-to-failure samples; the threshold phase is
/// placed so that the model's expected time-to-threshold,
/// (threshold-1)/rate, matches the observed mean time-to-threshold.
/// Inherits fit_erlang's degenerate handling (a single sample or all-equal
/// durations fit a clamped near-deterministic model instead of throwing);
/// non-finite durations throw DomainError.
fmt::DegradationModel fit_degradation(const std::vector<DegradationSample>& samples);

/// Weibull fit by maximum likelihood (bisection on the profile likelihood
/// in the shape parameter).
struct WeibullFit {
  double shape = 1.0;
  double scale = 1.0;
  std::size_t n = 0;
  double log_likelihood = 0.0;
  /// True when the shape was clamped (single sample, zero spread, or the
  /// profile-likelihood root left [1e-9, kMaxWeibullShape]); `note` says why.
  bool degenerate = false;
  std::string note;
};

/// Same input contract as fit_erlang: throws on empty / non-positive /
/// non-finite samples, clamps (and flags) degenerate-but-valid ones.
WeibullFit fit_weibull(const std::vector<double>& samples);

/// Log-likelihoods for model selection between the two lifetime families
/// the study's calibration considers.
double weibull_log_likelihood(double shape, double scale,
                              const std::vector<double>& samples);
double erlang_log_likelihood(int shape, double rate,
                             const std::vector<double>& samples);

enum class LifetimeFamily { Erlang, Weibull };

struct FamilySelection {
  LifetimeFamily family = LifetimeFamily::Erlang;
  ErlangFit erlang;
  WeibullFit weibull;
  double erlang_log_likelihood = 0.0;
  double weibull_log_likelihood = 0.0;
};

/// Fits both families and picks the one with the higher log-likelihood
/// (both have two parameters, so this is equivalent to AIC selection).
FamilySelection select_lifetime_family(const std::vector<double>& samples);

/// Quantile of the Gamma(shape, rate=1) distribution by bisection on the
/// regularized incomplete gamma function. Exposed for tests.
double gamma_quantile(double shape, double p);

}  // namespace fmtree::data
