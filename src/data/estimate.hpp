// Parameter estimation from field data: the calibration half of the study.
#pragma once

#include <cstdint>
#include <vector>

#include "data/generator.hpp"
#include "fmt/degradation.hpp"
#include "util/stats.hpp"

namespace fmtree::data {

/// Rate estimate from a Poisson count over an exposure, with an exact
/// (Garwood) confidence interval from gamma quantiles.
struct RateEstimate {
  double rate = 0.0;       ///< events / exposure
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t events = 0;
  double exposure = 0.0;
  double confidence = 0.95;
};

RateEstimate estimate_rate(std::uint64_t events, double exposure,
                           double confidence = 0.95);

/// Erlang fit by moment matching: shape = round(mean^2/var) clamped to
/// >= 1, rate = shape/mean.
struct ErlangFit {
  int shape = 1;
  double rate = 1.0;
  double sample_mean = 0.0;
  double sample_variance = 0.0;
  std::size_t n = 0;

  double mean() const noexcept { return static_cast<double>(shape) / rate; }
};

ErlangFit fit_erlang(const std::vector<double>& samples);

/// Fits a full degradation model from elicited durations: the Erlang shape
/// and rate come from the time-to-failure samples; the threshold phase is
/// placed so that the model's expected time-to-threshold,
/// (threshold-1)/rate, matches the observed mean time-to-threshold.
fmt::DegradationModel fit_degradation(const std::vector<DegradationSample>& samples);

/// Weibull fit by maximum likelihood (Newton iteration on the profile
/// likelihood in the shape parameter).
struct WeibullFit {
  double shape = 1.0;
  double scale = 1.0;
  std::size_t n = 0;
  double log_likelihood = 0.0;
};

WeibullFit fit_weibull(const std::vector<double>& samples);

/// Log-likelihoods for model selection between the two lifetime families
/// the study's calibration considers.
double weibull_log_likelihood(double shape, double scale,
                              const std::vector<double>& samples);
double erlang_log_likelihood(int shape, double rate,
                             const std::vector<double>& samples);

enum class LifetimeFamily { Erlang, Weibull };

struct FamilySelection {
  LifetimeFamily family = LifetimeFamily::Erlang;
  ErlangFit erlang;
  WeibullFit weibull;
  double erlang_log_likelihood = 0.0;
  double weibull_log_likelihood = 0.0;
};

/// Fits both families and picks the one with the higher log-likelihood
/// (both have two parameters, so this is equivalent to AIC selection).
FamilySelection select_lifetime_family(const std::vector<double>& samples);

/// Quantile of the Gamma(shape, rate=1) distribution by bisection on the
/// regularized incomplete gamma function. Exposed for tests.
double gamma_quantile(double shape, double p);

}  // namespace fmtree::data
