// Model validation: does the calibrated FMT predict the failure behaviour
// observed in a held-out incident database? (The paper's headline check:
// "a model that faithfully predicts the expected number of failures at
// system level".)
#pragma once

#include <string>
#include <vector>

#include "data/estimate.hpp"
#include "data/incident.hpp"
#include "fmt/fmtree.hpp"
#include "smc/kpi.hpp"

namespace fmtree::data {

/// Comparison of a model prediction against an observed rate.
struct ValidationRow {
  std::string label;              ///< "system" or a failure-mode name
  RateEstimate observed;          ///< from the held-out incident database
  ConfidenceInterval predicted;   ///< failures per asset-year from the model
  bool intervals_overlap = false; ///< do the two 95% intervals intersect?
};

struct ValidationReport {
  ValidationRow system;             ///< all modes combined
  std::vector<ValidationRow> modes; ///< one row per failure mode present
  /// Per-mode condition-based repair rates, when fleet maintenance records
  /// are available (validate_fleet).
  std::vector<ValidationRow> repairs;
  std::uint64_t trajectories = 0;
};

/// Predicts failures/asset-year with the candidate model (via SMC) and
/// compares against the held-out database, overall and per attributed mode.
ValidationReport validate_against(const fmt::FaultMaintenanceTree& model,
                                  const IncidentDatabase& holdout,
                                  const smc::AnalysisSettings& settings);

/// As validate_against, but also checks the maintenance-record side: the
/// model's predicted per-mode repair rates against the fleet's logged
/// condition-based repairs. A model can match failure rates while wildly
/// mispredicting maintenance workload; this catches that.
ValidationReport validate_fleet(const fmt::FaultMaintenanceTree& model,
                                const FleetData& holdout,
                                const smc::AnalysisSettings& settings);

}  // namespace fmtree::data
