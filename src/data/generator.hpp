// Synthetic data generation from a ground-truth FMT — the stand-in for the
// paper's two data sources:
//
//  * generate_incidents(): an incident registration database (system-level
//    failures of a simulated fleet under the model's own maintenance
//    policy), the analogue of ProRail's incident registration;
//  * elicit_degradation(): per-mode degradation durations (time to reach
//    the inspection threshold, total time to failure) as an expert-
//    elicitation dataset, the analogue of interviewing maintenance
//    engineers about how fast each mode progresses.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "data/incident.hpp"
#include "fmt/fmtree.hpp"

namespace fmtree::data {

/// Simulates `num_assets` independent assets for `years` under the model's
/// maintenance policy, recording every system failure with its attributed
/// mode. Asset i uses RandomStream(seed, i).
IncidentDatabase generate_incidents(const fmt::FaultMaintenanceTree& ground_truth,
                                    std::uint32_t num_assets, double years,
                                    std::uint64_t seed);

/// A fleet observation window: the incident registration plus the
/// aggregated maintenance-management records (condition-based repairs per
/// mode, inspection and renewal counts) — the paper's second data source.
struct FleetData {
  IncidentDatabase incidents;
  std::map<std::string, std::uint64_t> repairs_by_mode;
  std::uint64_t inspections = 0;
  std::uint64_t replacements = 0;

  double exposure() const noexcept { return incidents.exposure(); }
};

/// As generate_incidents, but also collects the maintenance records of the
/// same trajectories (identical seeds: generate_fleet_data(...).incidents
/// equals generate_incidents(...)).
FleetData generate_fleet_data(const fmt::FaultMaintenanceTree& ground_truth,
                              std::uint32_t num_assets, double years,
                              std::uint64_t seed);

/// Elicited degradation durations of one failure mode.
struct DegradationSample {
  double time_to_threshold = 0.0;  ///< time to reach the inspection threshold
  double time_to_failure = 0.0;    ///< total unmaintained lifetime
};

/// Draws `n` independent unmaintained degradation trajectories of the given
/// leaf (by sampling its phase sojourns directly; maintenance and RDEPs do
/// not apply to elicitation data).
std::vector<DegradationSample> elicit_degradation(
    const fmt::FaultMaintenanceTree& ground_truth, fmt::NodeId leaf, std::size_t n,
    std::uint64_t seed);

}  // namespace fmtree::data
