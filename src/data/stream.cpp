#include "data/stream.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace fmtree::data {

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw IoError("cannot open '" + path + "': " + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("cannot stat '" + path + "': " + std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      size_ = 0;
      throw IoError("cannot mmap '" + path + "': " + std::strerror(err));
    }
    data_ = static_cast<const char*>(mapped);
  }
  ::close(fd);  // the mapping keeps its own reference
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

namespace {

/// One CSV field off the mapping (util/csv.cpp dialect: RFC 4180 quoting,
/// CRLF tolerated). Advances `cur` past the field and its delimiter; sets
/// `end_of_row` when the delimiter was a newline (or end of input).
std::string next_field(const char*& cur, const char* end, bool& end_of_row) {
  std::string field;
  bool in_quotes = false;
  end_of_row = true;  // until a comma says otherwise
  while (cur < end) {
    const char c = *cur++;
    if (in_quotes) {
      if (c == '"') {
        if (cur < end && *cur == '"') {
          field += '"';
          ++cur;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      if (!field.empty())
        throw IoError("csv: quote in the middle of an unquoted field");
      in_quotes = true;
    } else if (c == ',') {
      end_of_row = false;
      return field;
    } else if (c == '\r') {
      // tolerate CRLF
    } else if (c == '\n') {
      return field;
    } else {
      field += c;
    }
  }
  if (in_quotes) throw IoError("csv: unterminated quoted field");
  return field;
}

[[noreturn]] void malformed(std::uint64_t row, const char* what) {
  throw IoError("incident csv: " + std::string(what) + " in row " +
                std::to_string(row));
}

}  // namespace

IncidentStreamReader::IncidentStreamReader(const std::string& path) : map_(path) {
  cur_ = map_.data();
  end_ = map_.data() + map_.size();
  bool eor = false;
  CsvRow header;
  if (cur_ < end_) {
    do {
      header.push_back(next_field(cur_, end_, eor));
    } while (!eor);
  }
  if (header != CsvRow{"asset_id", "time", "failure_mode"})
    throw IoError("incident csv: missing or wrong header");
}

bool IncidentStreamReader::next(IncidentRecord& out) {
  // Skip blank lines (read_csv drops them too).
  while (cur_ < end_ && (*cur_ == '\n' || *cur_ == '\r')) ++cur_;
  if (cur_ >= end_) return false;

  bool eor = false;
  const std::string asset = next_field(cur_, end_, eor);
  if (eor) malformed(row_, "wrong column count");
  const std::string time = next_field(cur_, end_, eor);
  if (eor) malformed(row_, "wrong column count");
  out.failure_mode = next_field(cur_, end_, eor);
  if (!eor) malformed(row_, "wrong column count");

  char* parse_end = nullptr;
  errno = 0;
  const unsigned long id = std::strtoul(asset.c_str(), &parse_end, 10);
  if (parse_end == asset.c_str() || *parse_end != '\0')
    malformed(row_, "malformed value");
  if (errno == ERANGE || id > std::numeric_limits<std::uint32_t>::max())
    malformed(row_, "value out of range");
  out.asset_id = static_cast<std::uint32_t>(id);

  errno = 0;
  out.time = std::strtod(time.c_str(), &parse_end);
  if (parse_end == time.c_str() || *parse_end != '\0')
    malformed(row_, "malformed value");
  if (errno == ERANGE) malformed(row_, "value out of range");

  ++row_;
  return true;
}

IncidentScan scan_incidents(const std::string& path) {
  IncidentStreamReader reader(path);
  IncidentScan scan;
  IncidentRecord record;
  while (reader.next(record)) {
    ++scan.records;
    scan.max_asset_id = std::max(scan.max_asset_id, record.asset_id);
    scan.max_time = std::max(scan.max_time, record.time);
    ++scan.counts_by_mode[record.failure_mode];
  }
  return scan;
}

std::vector<ModeRate> estimate_mode_rates(const IncidentScan& scan,
                                          std::uint32_t num_assets,
                                          double observation_years,
                                          double confidence) {
  if (num_assets == 0) throw DomainError("rate estimation needs >= 1 asset");
  if (!(observation_years > 0) || !std::isfinite(observation_years))
    throw DomainError("observation window must be positive and finite");
  if (scan.records > 0 && scan.max_asset_id >= num_assets)
    throw DomainError("incident scan saw asset id " +
                      std::to_string(scan.max_asset_id) +
                      " outside the fleet of " + std::to_string(num_assets));
  if (scan.records > 0 && scan.max_time > observation_years)
    throw DomainError("incident scan saw a time outside the observation window");
  const double exposure =
      static_cast<double>(num_assets) * observation_years;
  std::vector<ModeRate> rates;
  rates.reserve(scan.counts_by_mode.size());
  for (const auto& [mode, count] : scan.counts_by_mode)
    rates.push_back({mode, estimate_rate(count, exposure, confidence)});
  return rates;
}

IncidentStreamWriter::IncidentStreamWriter(const std::string& path) : path_(path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr)
    throw IoError("cannot create '" + path + "': " + std::strerror(errno));
  file_ = file;
  // Same bytes as IncidentDatabase::save_csv's header row.
  if (std::fputs("asset_id,time,failure_mode\n", file) < 0) {
    std::fclose(file);
    file_ = nullptr;
    throw IoError("cannot write '" + path + "'");
  }
}

IncidentStreamWriter::~IncidentStreamWriter() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

void IncidentStreamWriter::add(const IncidentRecord& record) {
  if (file_ == nullptr) throw IoError("incident writer '" + path_ + "' is closed");
  // std::to_string + csv_escape: the exact formatting save_csv produces.
  const std::string row = std::to_string(record.asset_id) + "," +
                          std::to_string(record.time) + "," +
                          csv_escape(record.failure_mode) + "\n";
  if (std::fwrite(row.data(), 1, row.size(), static_cast<std::FILE*>(file_)) !=
      row.size())
    throw IoError("cannot write '" + path_ + "'");
  ++written_;
}

void IncidentStreamWriter::close() {
  if (file_ == nullptr) return;
  std::FILE* file = static_cast<std::FILE*>(file_);
  file_ = nullptr;
  if (std::fclose(file) != 0)
    throw IoError("cannot flush '" + path_ + "': " + std::strerror(errno));
}

}  // namespace fmtree::data
