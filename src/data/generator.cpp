#include "data/generator.hpp"

#include "sim/fmt_executor.hpp"
#include "util/error.hpp"

namespace fmtree::data {

IncidentDatabase generate_incidents(const fmt::FaultMaintenanceTree& ground_truth,
                                    std::uint32_t num_assets, double years,
                                    std::uint64_t seed) {
  return generate_fleet_data(ground_truth, num_assets, years, seed).incidents;
}

FleetData generate_fleet_data(const fmt::FaultMaintenanceTree& ground_truth,
                              std::uint32_t num_assets, double years,
                              std::uint64_t seed) {
  const sim::FmtSimulator simulator(ground_truth);
  sim::SimOptions opts;
  opts.horizon = years;
  opts.record_failure_log = true;

  FleetData fleet{IncidentDatabase(num_assets, years), {}, 0, 0};
  for (const fmt::ExtendedBasicEvent& e : ground_truth.ebes())
    fleet.repairs_by_mode.emplace(e.name, 0);
  for (std::uint32_t asset = 0; asset < num_assets; ++asset) {
    const sim::TrajectoryResult r = simulator.run(RandomStream(seed, asset), opts);
    for (const sim::FailureRecord& f : r.failure_log) {
      fleet.incidents.add(
          IncidentRecord{asset, f.time, ground_truth.ebes()[f.cause_leaf].name});
    }
    for (std::size_t leaf = 0; leaf < ground_truth.num_ebes(); ++leaf)
      fleet.repairs_by_mode[ground_truth.ebes()[leaf].name] += r.repairs_per_leaf[leaf];
    fleet.inspections += r.inspections;
    fleet.replacements += r.replacements;
  }
  return fleet;
}

std::vector<DegradationSample> elicit_degradation(
    const fmt::FaultMaintenanceTree& ground_truth, fmt::NodeId leaf, std::size_t n,
    std::uint64_t seed) {
  if (n == 0) throw DomainError("elicitation needs n >= 1 samples");
  const fmt::DegradationModel& deg = ground_truth.ebe(leaf).degradation;
  // A dedicated stream per leaf keeps elicitation datasets of different
  // modes independent under the same seed.
  RandomStream rng =
      RandomStream(seed, 0xe11c17).substream(ground_truth.ebe_index(leaf));

  std::vector<DegradationSample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    DegradationSample s;
    double total = 0;
    for (int phase = 1; phase <= deg.phases(); ++phase) {
      if (phase == deg.threshold_phase()) s.time_to_threshold = total;
      total += deg.sojourn(phase).sample(rng);
    }
    // Threshold at phases+1 (undetectable) elicits threshold == failure.
    if (deg.threshold_phase() > deg.phases()) s.time_to_threshold = total;
    s.time_to_failure = total;
    out.push_back(s);
  }
  return out;
}

}  // namespace fmtree::data
