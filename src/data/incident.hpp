// Incident registration database: the substitute for the proprietary
// ProRail incident data the paper calibrated against. Records system-level
// failures of a fleet of assets (joints) over an observation window, with
// the failure mode attributed by the maintenance engineer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace fmtree::data {

struct IncidentRecord {
  std::uint32_t asset_id = 0;  ///< which joint in the fleet
  double time = 0.0;           ///< years since the observation window opened
  std::string failure_mode;    ///< attributed cause (leaf name)
};

/// In-memory incident database with CSV round-trip.
class IncidentDatabase {
public:
  IncidentDatabase(std::uint32_t num_assets, double observation_years);

  void add(IncidentRecord record);

  std::uint32_t num_assets() const noexcept { return num_assets_; }
  double observation_years() const noexcept { return observation_years_; }
  const std::vector<IncidentRecord>& records() const noexcept { return records_; }
  std::size_t size() const noexcept { return records_.size(); }

  /// Total asset-years of exposure in the window.
  double exposure() const noexcept {
    return static_cast<double>(num_assets_) * observation_years_;
  }

  /// Failures per asset-year across all modes.
  double failure_rate() const noexcept {
    return static_cast<double>(records_.size()) / exposure();
  }

  /// Incident counts by failure mode, ordered by mode name.
  std::map<std::string, std::uint64_t> counts_by_mode() const;

  /// CSV format: header "asset_id,time,failure_mode", one row per record.
  void save_csv(std::ostream& os) const;
  static IncidentDatabase load_csv(std::istream& is, std::uint32_t num_assets,
                                   double observation_years);

private:
  std::uint32_t num_assets_;
  double observation_years_;
  std::vector<IncidentRecord> records_;
};

}  // namespace fmtree::data
