#include "data/incident.hpp"

#include <istream>
#include <ostream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace fmtree::data {

IncidentDatabase::IncidentDatabase(std::uint32_t num_assets, double observation_years)
    : num_assets_(num_assets), observation_years_(observation_years) {
  if (num_assets == 0) throw DomainError("incident database needs >= 1 asset");
  if (!(observation_years > 0))
    throw DomainError("observation window must be positive");
}

void IncidentDatabase::add(IncidentRecord record) {
  if (record.asset_id >= num_assets_)
    throw DomainError("incident asset id out of range");
  if (record.time < 0 || record.time > observation_years_)
    throw DomainError("incident time outside the observation window");
  if (record.failure_mode.empty()) throw DomainError("incident needs a failure mode");
  records_.push_back(std::move(record));
}

std::map<std::string, std::uint64_t> IncidentDatabase::counts_by_mode() const {
  std::map<std::string, std::uint64_t> counts;
  for (const IncidentRecord& r : records_) ++counts[r.failure_mode];
  return counts;
}

void IncidentDatabase::save_csv(std::ostream& os) const {
  CsvWriter writer(os);
  writer.write_row({"asset_id", "time", "failure_mode"});
  for (const IncidentRecord& r : records_)
    writer.write_row(
        {std::to_string(r.asset_id), std::to_string(r.time), r.failure_mode});
}

IncidentDatabase IncidentDatabase::load_csv(std::istream& is, std::uint32_t num_assets,
                                            double observation_years) {
  const std::vector<CsvRow> rows = read_csv(is);
  if (rows.empty() || rows.front() != CsvRow{"asset_id", "time", "failure_mode"})
    throw IoError("incident csv: missing or wrong header");
  IncidentDatabase db(num_assets, observation_years);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const CsvRow& row = rows[i];
    if (row.size() != 3) throw IoError("incident csv: row " + std::to_string(i) +
                                       " has wrong column count");
    try {
      db.add(IncidentRecord{static_cast<std::uint32_t>(std::stoul(row[0])),
                            std::stod(row[1]), row[2]});
    } catch (const std::invalid_argument&) {
      throw IoError("incident csv: malformed value in row " + std::to_string(i));
    } catch (const std::out_of_range&) {
      throw IoError("incident csv: value out of range in row " + std::to_string(i));
    }
  }
  return db;
}

}  // namespace fmtree::data
