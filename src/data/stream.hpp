// Streaming incident ingestion: calibrate against million-record incident
// databases in O(1) memory.
//
// IncidentDatabase::load_csv materialises every record; fine for the paper's
// ~hundreds of incidents, hopeless for a national fleet's registry. The
// streaming layer keeps the same CSV dialect (the exact bytes save_csv
// writes — RFC 4180 quoting, "asset_id,time,failure_mode" header) but never
// holds more than one record:
//
//  * MappedFile           — read-only POSIX mmap with RAII unmap;
//  * IncidentStreamReader — pull-reader yielding IncidentRecords straight
//                           off the mapping, zero copies for unquoted
//                           fields' numeric parses;
//  * scan_incidents       — one pass producing the O(#modes) summary
//                           estimation needs (per-mode counts, record count,
//                           max asset id / time);
//  * estimate_mode_rates  — Garwood rate table from a scan: the streaming
//                           equivalent of estimate_rate over counts_by_mode;
//  * IncidentStreamWriter — append-only writer emitting byte-identical
//                           output to IncidentDatabase::save_csv, so
//                           generators can produce fleet-scale databases
//                           without materialising them either.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/estimate.hpp"
#include "data/incident.hpp"

namespace fmtree::data {

/// Read-only memory mapping of a whole file. Move-only; unmaps on
/// destruction. An empty file maps to a null data() with size() == 0.
class MappedFile {
public:
  explicit MappedFile(const std::string& path);  ///< throws IoError
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }

private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Pull-reader over a mapped incident CSV. Validates the header eagerly
/// (throws IoError, same message discipline as load_csv); next() yields
/// records in file order and throws IoError on a malformed row, naming the
/// 1-based data-row index. Unlike IncidentDatabase, the reader applies no
/// range checks — it does not know the fleet size or window; callers
/// validate against their own context (scan_incidents reports the maxima).
class IncidentStreamReader {
public:
  explicit IncidentStreamReader(const std::string& path);

  /// Fills `out` and returns true, or returns false at end of input.
  bool next(IncidentRecord& out);

  /// 1-based index of the data row next() would read (header not counted).
  std::uint64_t row() const noexcept { return row_; }

private:
  MappedFile map_;
  const char* cur_ = nullptr;
  const char* end_ = nullptr;
  std::uint64_t row_ = 1;
};

/// One-pass summary of an incident CSV: everything per-mode Poisson
/// calibration needs, in O(#modes) memory.
struct IncidentScan {
  std::uint64_t records = 0;
  std::uint32_t max_asset_id = 0;  ///< 0 when records == 0
  double max_time = 0.0;           ///< 0 when records == 0
  std::map<std::string, std::uint64_t> counts_by_mode;
};

IncidentScan scan_incidents(const std::string& path);

/// One failure mode's Garwood rate estimate.
struct ModeRate {
  std::string mode;
  RateEstimate rate;
};

/// Per-mode failure rates from a scan, exposure = num_assets *
/// observation_years. Throws DomainError on a non-positive exposure or when
/// the scan saw an asset id >= num_assets or a time > observation_years
/// (the streaming analogue of IncidentDatabase::add's range checks).
std::vector<ModeRate> estimate_mode_rates(const IncidentScan& scan,
                                          std::uint32_t num_assets,
                                          double observation_years,
                                          double confidence = 0.95);

/// Append-only incident CSV writer; output is byte-identical to
/// IncidentDatabase::save_csv over the same records. Writes the header on
/// construction; close() flushes and throws IoError on failure (also called
/// by the destructor, which swallows errors instead).
class IncidentStreamWriter {
public:
  explicit IncidentStreamWriter(const std::string& path);  ///< throws IoError
  ~IncidentStreamWriter();
  IncidentStreamWriter(const IncidentStreamWriter&) = delete;
  IncidentStreamWriter& operator=(const IncidentStreamWriter&) = delete;

  void add(const IncidentRecord& record);
  void close();

  std::uint64_t written() const noexcept { return written_; }

private:
  std::string path_;
  void* file_ = nullptr;  ///< std::FILE*, kept out of the header
  std::uint64_t written_ = 0;
};

}  // namespace fmtree::data
