#include "data/validate.hpp"

#include "util/error.hpp"

namespace fmtree::data {

namespace {

bool overlap(const RateEstimate& a, const ConfidenceInterval& b) {
  return a.lo <= b.hi && b.lo <= a.hi;
}

}  // namespace

namespace {

ValidationReport validate_impl(const fmt::FaultMaintenanceTree& model,
                               const IncidentDatabase& holdout,
                               const smc::AnalysisSettings& settings,
                               smc::KpiReport* kpis_out);

}  // namespace

ValidationReport validate_against(const fmt::FaultMaintenanceTree& model,
                                  const IncidentDatabase& holdout,
                                  const smc::AnalysisSettings& settings) {
  return validate_impl(model, holdout, settings, nullptr);
}

ValidationReport validate_fleet(const fmt::FaultMaintenanceTree& model,
                                const FleetData& holdout,
                                const smc::AnalysisSettings& settings) {
  smc::KpiReport kpis;
  ValidationReport report = validate_impl(model, holdout.incidents, settings, &kpis);
  const double window = holdout.incidents.observation_years();
  const double sim_exposure = static_cast<double>(kpis.trajectories) * window;
  for (std::size_t leaf = 0; leaf < model.num_ebes(); ++leaf) {
    const std::string& mode = model.ebes()[leaf].name;
    const auto predicted_events = static_cast<std::uint64_t>(
        kpis.repairs_per_leaf[leaf] * static_cast<double>(kpis.trajectories) + 0.5);
    const RateEstimate predicted =
        estimate_rate(predicted_events, sim_exposure, settings.confidence);
    const auto it = holdout.repairs_by_mode.find(mode);
    const std::uint64_t observed_events =
        it == holdout.repairs_by_mode.end() ? 0 : it->second;

    ValidationRow row;
    row.label = mode;
    row.observed =
        estimate_rate(observed_events, holdout.exposure(), settings.confidence);
    row.predicted = {predicted.rate, predicted.lo, predicted.hi, predicted.confidence};
    row.intervals_overlap = row.observed.lo <= row.predicted.hi &&
                            row.predicted.lo <= row.observed.hi;
    report.repairs.push_back(std::move(row));
  }
  return report;
}

namespace {

ValidationReport validate_impl(const fmt::FaultMaintenanceTree& model,
                               const IncidentDatabase& holdout,
                               const smc::AnalysisSettings& settings,
                               smc::KpiReport* kpis_out) {
  // Predict with the same horizon as the observation window so that
  // edge effects (e.g. the first inspection offset) match.
  smc::AnalysisSettings s = settings;
  s.horizon = holdout.observation_years();
  const smc::KpiReport kpis = smc::analyze(model, s);
  if (kpis_out != nullptr) *kpis_out = kpis;

  ValidationReport report;
  report.trajectories = kpis.trajectories;

  report.system.label = "system";
  report.system.observed =
      estimate_rate(holdout.size(), holdout.exposure(), settings.confidence);
  report.system.predicted = kpis.failures_per_year;
  report.system.intervals_overlap =
      overlap(report.system.observed, report.system.predicted);

  // Per-mode: predicted mean failures per leaf / horizon. The Monte-Carlo
  // error of a per-leaf mean is bounded by the system-level half-width, and
  // per-leaf counts are 0/1-ish per trajectory, so a Wilson-style interval
  // from the attributed counts would need the raw counts; approximate with
  // a Poisson interval on the simulated totals instead.
  const double sim_exposure =
      static_cast<double>(kpis.trajectories) * holdout.observation_years();
  const auto observed_by_mode = holdout.counts_by_mode();
  for (std::size_t leaf = 0; leaf < model.num_ebes(); ++leaf) {
    const std::string& mode = model.ebes()[leaf].name;
    const double mean_failures = kpis.failures_per_leaf[leaf];
    const auto simulated_events = static_cast<std::uint64_t>(
        mean_failures * static_cast<double>(kpis.trajectories) + 0.5);
    const RateEstimate predicted =
        estimate_rate(simulated_events, sim_exposure, settings.confidence);
    const auto it = observed_by_mode.find(mode);
    const std::uint64_t observed_events = it == observed_by_mode.end() ? 0 : it->second;

    ValidationRow row;
    row.label = mode;
    row.observed =
        estimate_rate(observed_events, holdout.exposure(), settings.confidence);
    row.predicted = {predicted.rate, predicted.lo, predicted.hi, predicted.confidence};
    row.intervals_overlap = overlap(row.observed, row.predicted);
    report.modes.push_back(std::move(row));
  }
  return report;
}

}  // namespace

}  // namespace fmtree::data
