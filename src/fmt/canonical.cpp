#include "fmt/canonical.hpp"

#include <variant>

#include "fmt/fmtree.hpp"

namespace fmtree::fmt {

namespace {

void hash_distribution(StreamHasher& h, const Distribution& d) {
  // Variant index + exact parameter bits. The index is part of the wire
  // format: new alternatives must be appended, never inserted.
  h.u64(d.as_variant().index());
  std::visit(
      [&h](const auto& alt) {
        using T = std::decay_t<decltype(alt)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          h.f64(alt.rate);
        } else if constexpr (std::is_same_v<T, Erlang>) {
          h.i64(alt.shape);
          h.f64(alt.rate);
        } else if constexpr (std::is_same_v<T, Weibull>) {
          h.f64(alt.shape);
          h.f64(alt.scale);
        } else if constexpr (std::is_same_v<T, Lognormal>) {
          h.f64(alt.mu);
          h.f64(alt.sigma);
        } else if constexpr (std::is_same_v<T, UniformDist>) {
          h.f64(alt.lo);
          h.f64(alt.hi);
        } else {
          static_assert(std::is_same_v<T, Deterministic>);
          h.f64(alt.value);
        }
      },
      d.as_variant());
}

void hash_node_ref(StreamHasher& h, const FaultMaintenanceTree& m, ft::NodeId id) {
  h.str(m.name(id));
}

void hash_targets(StreamHasher& h, const FaultMaintenanceTree& m,
                  std::span<const ft::NodeId> targets) {
  h.u64(targets.size());
  for (const ft::NodeId t : targets) hash_node_ref(h, m, t);
}

}  // namespace

Fingerprint canonical_hash(const FaultMaintenanceTree& m) {
  StreamHasher h;
  h.tag("fmtree.model/v1");
  const ft::FaultTree& t = m.structure();

  h.tag("leaves");
  h.u64(m.num_ebes());
  for (const ExtendedBasicEvent& e : m.ebes()) {
    h.str(e.name);
    h.i64(e.degradation.phases());
    h.i64(e.degradation.threshold_phase());
    for (const Distribution& d : e.degradation.sojourns()) hash_distribution(h, d);
    h.str(e.repair.action);
    h.f64(e.repair.cost);
    h.f64(e.repair.duration);
  }

  h.tag("gates");
  h.u64(t.gates().size());
  for (const ft::NodeId id : t.gates()) {
    const ft::Gate& g = t.gate(id);
    h.str(g.name);
    h.u32(static_cast<std::uint32_t>(g.type));
    h.i64(g.k);
    h.u64(g.children.size());
    for (const ft::NodeId c : g.children) hash_node_ref(h, m, c);
  }

  h.tag("top");
  if (t.has_top())
    hash_node_ref(h, m, t.top());
  else
    h.boolean(false);

  h.tag("rdeps");
  h.u64(m.rdeps().size());
  for (const RateDependency& r : m.rdeps()) {
    h.str(r.name);
    hash_node_ref(h, m, r.trigger);
    hash_targets(h, m, r.dependents);
    h.f64(r.factor);
    h.i64(r.trigger_phase);
  }

  h.tag("fdeps");
  h.u64(m.fdeps().size());
  for (const FunctionalDependency& f : m.fdeps()) {
    h.str(f.name);
    hash_node_ref(h, m, f.trigger);
    hash_targets(h, m, f.dependents);
  }

  h.tag("spares");
  h.u64(m.spares().size());
  for (const SpareSpec& s : m.spares()) {
    h.str(s.name);
    hash_node_ref(h, m, s.gate);
    hash_targets(h, m, s.children);
    h.f64(s.dormancy);
  }

  h.tag("inspections");
  h.u64(m.inspections().size());
  for (const InspectionModule& i : m.inspections()) {
    h.str(i.name);
    h.f64(i.period);
    h.f64(i.first_at);
    h.f64(i.cost);
    h.f64(i.detection_probability);
    hash_targets(h, m, i.targets);
  }

  h.tag("replacements");
  h.u64(m.replacements().size());
  for (const ReplacementModule& r : m.replacements()) {
    h.str(r.name);
    h.f64(r.period);
    h.f64(r.first_at);
    h.f64(r.cost);
    hash_targets(h, m, r.targets);
  }

  h.tag("corrective");
  const CorrectivePolicy& c = m.corrective();
  h.boolean(c.enabled);
  h.f64(c.delay);
  h.f64(c.cost);
  h.f64(c.downtime_cost_rate);

  return h.digest();
}

}  // namespace fmtree::fmt
