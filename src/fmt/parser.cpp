#include "fmt/parser.hpp"

#include <cctype>
#include <cmath>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <variant>

#include "ft/lexer.hpp"
#include "ft/parser.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace fmtree::fmt {

namespace {

using ft::Token;
using ft::TokenCursor;
using ft::TokenType;

struct GateDecl {
  GateType type;
  int k = 0;
  bool is_spare = false;
  double dormancy = 0.0;
  std::vector<std::string> children;
  std::size_t line = 0;
  std::size_t column = 0;
};

struct LeafDecl {
  DegradationModel degradation = DegradationModel::basic(Distribution::exponential(1));
  RepairSpec repair;
  std::size_t line = 0;
};

struct ModuleDecl {
  bool is_inspection = false;
  std::string name;
  double period = -1;
  double offset = -1;
  double cost = 0;
  double detect = 1.0;
  bool targets_all = false;
  std::vector<std::string> targets;
  std::size_t line = 0;
};

struct FdepDecl {
  std::string name;
  std::string trigger;
  std::vector<std::string> targets;
  std::size_t line = 0;
};

struct RdepDecl {
  std::string name;
  double factor = -1;
  std::string trigger;
  int trigger_phase = 0;
  std::vector<std::string> targets;
  std::size_t line = 0;
};

struct Declarations {
  std::unordered_map<std::string, GateDecl> gates;
  std::unordered_map<std::string, LeafDecl> leaves;
  std::vector<ModuleDecl> modules;
  std::vector<RdepDecl> rdeps;
  std::vector<FdepDecl> fdeps;
  CorrectivePolicy corrective{.enabled = false};
  bool corrective_seen = false;
  std::string top;
};

void ensure_unique_name(const Declarations& d, const std::string& name,
                        std::size_t line) {
  if (d.gates.contains(name) || d.leaves.contains(name))
    throw ParseError(line, "duplicate definition of '" + name + "'");
}

LeafDecl parse_ebe_body(TokenCursor& cur, std::size_t line) {
  double phases = -1, mean = -1, rate = -1, threshold = -1;
  double repair_cost = 0, repair_time = 0;
  std::string repair_action = "repair";
  while (cur.peek().type == TokenType::Identifier) {
    const std::string key = cur.next().text;
    cur.expect(TokenType::Equals, "'=' after '" + key + "'");
    if (key == "repair") {
      repair_action = cur.expect_identifier("repair action name");
      continue;
    }
    const double value = cur.expect_number("value for '" + key + "'");
    if (key == "phases") phases = value;
    else if (key == "mean") mean = value;
    else if (key == "rate") rate = value;
    else if (key == "threshold") threshold = value;
    else if (key == "repair_cost") repair_cost = value;
    else if (key == "repair_time") repair_time = value;
    else throw ParseError(line, "unknown ebe attribute '" + key + "'");
  }
  // isfinite before the casts below: casting inf/NaN (or values beyond int
  // range) to int is undefined behaviour.
  if (!std::isfinite(phases) || phases < 1 || phases != std::floor(phases) ||
      phases > 1e9)
    throw ParseError(line, "ebe needs integer phases >= 1");
  if (rate < 0 && (!(mean > 0) || !std::isfinite(mean)))
    throw ParseError(line, "ebe needs mean > 0 or rate > 0");
  if (rate >= 0 && (!(rate > 0) || !std::isfinite(rate)))
    throw ParseError(line, "ebe needs rate > 0");
  if (threshold < 0) threshold = phases + 1;  // default: undetectable
  if (!std::isfinite(threshold) || threshold != std::floor(threshold) ||
      threshold > 2e9)
    throw ParseError(line, "ebe threshold must be an integer");
  if (repair_time < 0) throw ParseError(line, "repair_time must be >= 0");
  // rate wins over mean (see parser.hpp): the per-phase rate is the stored
  // quantity, so taking it verbatim keeps reparsing exact.
  DegradationModel degradation =
      rate > 0 ? DegradationModel(std::vector<Distribution>(
                                      static_cast<std::size_t>(phases),
                                      Distribution::exponential(rate)),
                                  static_cast<int>(threshold))
               : DegradationModel::erlang(static_cast<int>(phases), mean,
                                          static_cast<int>(threshold));
  LeafDecl leaf{std::move(degradation),
                RepairSpec{repair_action, repair_cost, repair_time}, line};
  return leaf;
}

ModuleDecl parse_module_body(TokenCursor& cur, bool is_inspection, std::size_t line) {
  ModuleDecl m;
  m.is_inspection = is_inspection;
  m.line = line;
  m.name = cur.expect_identifier("module name");
  while (cur.peek().type == TokenType::Identifier) {
    const std::string key = cur.next().text;
    if (key == "targets") {
      if (cur.accept_word("all")) {
        m.targets_all = true;
      } else {
        while (cur.peek().type == TokenType::Identifier)
          m.targets.push_back(cur.next().text);
        if (m.targets.empty()) throw ParseError(line, "empty target list");
      }
      break;  // targets terminate the statement body
    }
    cur.expect(TokenType::Equals, "'=' after '" + key + "'");
    const double value = cur.expect_number("value for '" + key + "'");
    if (key == "period") m.period = value;
    else if (key == "offset") m.offset = value;
    else if (key == "cost") m.cost = value;
    else if (key == "detect" && is_inspection) m.detect = value;
    else throw ParseError(line, "unknown module attribute '" + key + "'");
  }
  if (!(m.period > 0)) throw ParseError(line, "module needs period > 0");
  if (!m.targets_all && m.targets.empty())
    throw ParseError(line, "module needs 'targets <leaf>...' or 'targets all'");
  return m;
}

RdepDecl parse_rdep_body(TokenCursor& cur, std::size_t line) {
  RdepDecl r;
  r.line = line;
  r.name = cur.expect_identifier("rdep name");
  while (cur.peek().type == TokenType::Identifier) {
    const std::string key = cur.next().text;
    if (key == "targets") {
      while (cur.peek().type == TokenType::Identifier)
        r.targets.push_back(cur.next().text);
      break;
    }
    cur.expect(TokenType::Equals, "'=' after '" + key + "'");
    if (key == "factor") {
      r.factor = cur.expect_number("rdep factor");
    } else if (key == "trigger") {
      r.trigger = cur.expect_identifier("trigger node");
    } else if (key == "trigger_phase") {
      const double tp = cur.expect_number("trigger phase");
      if (!std::isfinite(tp) || tp < 1 || tp != std::floor(tp) || tp > 1e9)
        throw ParseError(line, "trigger_phase must be a positive integer");
      r.trigger_phase = static_cast<int>(tp);
    } else {
      throw ParseError(line, "unknown rdep attribute '" + key + "'");
    }
  }
  if (!(r.factor >= 1)) throw ParseError(line, "rdep needs factor >= 1");
  if (r.trigger.empty()) throw ParseError(line, "rdep needs trigger=<node>");
  if (r.targets.empty()) throw ParseError(line, "rdep needs targets <leaf>...");
  return r;
}

FdepDecl parse_fdep_body(TokenCursor& cur, std::size_t line) {
  FdepDecl f;
  f.line = line;
  f.name = cur.expect_identifier("fdep name");
  while (cur.peek().type == TokenType::Identifier) {
    const std::string key = cur.next().text;
    if (key == "targets") {
      while (cur.peek().type == TokenType::Identifier)
        f.targets.push_back(cur.next().text);
      break;
    }
    cur.expect(TokenType::Equals, "'=' after '" + key + "'");
    if (key == "trigger") {
      f.trigger = cur.expect_identifier("trigger node");
    } else {
      throw ParseError(line, "unknown fdep attribute '" + key + "'");
    }
  }
  if (f.trigger.empty()) throw ParseError(line, "fdep needs trigger=<node>");
  if (f.targets.empty()) throw ParseError(line, "fdep needs targets <leaf>...");
  return f;
}

CorrectivePolicy parse_corrective_body(TokenCursor& cur, std::size_t line) {
  CorrectivePolicy p;
  p.enabled = true;
  while (cur.peek().type == TokenType::Identifier) {
    const std::string key = cur.next().text;
    if (key == "off") {
      p.enabled = false;
      continue;
    }
    cur.expect(TokenType::Equals, "'=' after '" + key + "'");
    const double value = cur.expect_number("value for '" + key + "'");
    if (key == "cost") p.cost = value;
    else if (key == "delay") p.delay = value;
    else if (key == "downtime_rate") p.downtime_cost_rate = value;
    else throw ParseError(line, "unknown corrective attribute '" + key + "'");
  }
  return p;
}

/// Parses one ';'-terminated statement into `decls`. Throws ParseError on
/// any syntax problem; the caller decides whether to abort or synchronize.
void parse_statement(TokenCursor& cur, Declarations& decls) {
  const std::size_t line = cur.line();
  const std::size_t column = cur.column();
  const std::string head = cur.expect_identifier("statement");
  if (head == "toplevel") {
    if (!decls.top.empty())
      throw ParseError(line, column, head, "duplicate toplevel declaration", "P102",
                       "a model has exactly one 'toplevel <name>;' statement");
    decls.top = cur.expect_identifier("top event name");
  } else if (head == "inspection" || head == "replacement") {
    decls.modules.push_back(parse_module_body(cur, head == "inspection", line));
  } else if (head == "rdep") {
    decls.rdeps.push_back(parse_rdep_body(cur, line));
  } else if (head == "fdep") {
    decls.fdeps.push_back(parse_fdep_body(cur, line));
  } else if (head == "corrective") {
    if (decls.corrective_seen)
      throw ParseError(line, column, head, "duplicate corrective declaration", "P102");
    decls.corrective = parse_corrective_body(cur, line);
    decls.corrective_seen = true;
  } else {
    const std::string& name = head;
    ensure_unique_name(decls, name, line);
    const std::string op = cur.expect_identifier("gate type, 'be' or 'ebe'");
    if (op == "be") {
      Distribution d = ft::parse_distribution(cur);
      decls.leaves.emplace(
          name, LeafDecl{DegradationModel::basic(std::move(d)), RepairSpec{}, line});
    } else if (op == "ebe") {
      decls.leaves.emplace(name, parse_ebe_body(cur, line));
    } else if (op == "and" || op == "or" || op == "vot" || op == "spare") {
      GateDecl g;
      g.line = line;
      g.column = column;
      if (op == "and") g.type = GateType::And;
      else if (op == "or") g.type = GateType::Or;
      else if (op == "spare") {
        g.type = GateType::And;  // boolean view of a spare pool
        g.is_spare = true;
        if (cur.accept_word("dormancy")) {
          cur.expect(TokenType::Equals, "'=' after 'dormancy'");
          g.dormancy = cur.expect_number("dormancy factor");
          if (!(g.dormancy >= 0 && g.dormancy <= 1))
            throw ParseError(line, "dormancy must lie in [0, 1]");
        }
      } else {
        g.type = GateType::Voting;
        const double k = cur.expect_number("voting threshold k");
        if (!std::isfinite(k) || k != std::floor(k) || k < 1 || k > 1e9)
          throw ParseError(line, "voting threshold must be a positive integer");
        g.k = static_cast<int>(k);
      }
      while (cur.peek().type == TokenType::Identifier)
        g.children.push_back(cur.next().text);
      if (g.children.empty())
        throw ParseError(line, column, name, "gate '" + name + "' has no children",
                         "P201", "list at least one child after the gate type");
      decls.gates.emplace(name, std::move(g));
    } else {
      throw ParseError(line, column, op, "unknown statement '" + op + "'", "P104");
    }
  }
  cur.expect(TokenType::Semicolon, "';'");
}

Declarations collect(TokenCursor& cur, Diagnostics& diags) {
  Declarations decls;
  while (!cur.at_end()) {
    try {
      parse_statement(cur, decls);
    } catch (const ParseError& e) {
      diags.add(diagnostic_from(e));
      cur.synchronize();
    } catch (const Error& e) {
      // Statement helpers may surface domain errors from model construction;
      // keep the collect contract (diagnostics, never exceptions).
      diags.add(diagnostic_from(e, "P199"));
      cur.synchronize();
    }
  }
  if (decls.top.empty())
    diags.error("P103", {cur.line(), cur.column()}, "missing 'toplevel' declaration",
                "declare the top event with 'toplevel <name>;'");
  return decls;
}

/// Reference / cycle / usage validation over the declaration graph,
/// reporting every problem instead of the first. Runs only on syntactically
/// clean inputs, so the declaration set is trustworthy.
void validate_declarations(const Declarations& decls, Diagnostics& diags) {
  const auto declared = [&](const std::string& name) {
    return decls.gates.contains(name) || decls.leaves.contains(name);
  };
  std::unordered_set<std::string> reported;
  const auto report_undefined = [&](const std::string& name, std::size_t line) {
    if (!reported.insert(name).second) return;
    diags.error("M101", {line, 0}, "node '" + name + "' referenced but never defined",
                "declare it as a gate, 'be' or 'ebe' leaf", name);
  };
  if (!decls.top.empty() && !declared(decls.top)) report_undefined(decls.top, 0);
  for (const auto& [name, g] : decls.gates)
    for (const std::string& child : g.children)
      if (!declared(child)) report_undefined(child, g.line);

  // Dependency / module statements resolve names too; historically these
  // fail as parse errors ("unknown node"), so they get a P-range code.
  const auto check_ref = [&](const std::string& name, std::size_t line) {
    if (declared(name) || !reported.insert(name).second) return;
    diags.error("P301", {line, 0}, "unknown node '" + name + "'",
                "dependency and module statements may only reference declared nodes",
                name);
  };
  for (const RdepDecl& r : decls.rdeps) {
    check_ref(r.trigger, r.line);
    for (const std::string& t : r.targets) check_ref(t, r.line);
  }
  for (const FdepDecl& f : decls.fdeps) {
    check_ref(f.trigger, f.line);
    for (const std::string& t : f.targets) check_ref(t, f.line);
  }
  for (const ModuleDecl& m : decls.modules)
    for (const std::string& t : m.targets) check_ref(t, m.line);

  // Cycle detection: iterative colored DFS over the gate graph.
  enum class Color { White, Grey, Black };
  std::unordered_map<std::string, Color> color;
  for (const auto& [name, g] : decls.gates) color.emplace(name, Color::White);
  for (const auto& [start, g0] : decls.gates) {
    if (color[start] != Color::White) continue;
    std::vector<std::pair<const std::string*, std::size_t>> stack;
    stack.emplace_back(&start, 0);
    color[start] = Color::Grey;
    while (!stack.empty()) {
      auto& [name, next_child] = stack.back();
      const GateDecl& g = decls.gates.at(*name);
      if (next_child >= g.children.size()) {
        color[*name] = Color::Black;
        stack.pop_back();
        continue;
      }
      const std::string& child = g.children[next_child++];
      const auto it = decls.gates.find(child);
      if (it == decls.gates.end()) continue;  // leaf or undefined
      Color& c = color[child];
      if (c == Color::Grey) {
        diags.error("M102", {it->second.line, it->second.column},
                    "cycle involving node '" + child + "'",
                    "fault trees are acyclic; remove the back reference", child);
        continue;
      }
      if (c == Color::White) {
        c = Color::Grey;
        stack.emplace_back(&it->first, 0);
      }
    }
  }
  if (diags.has_errors()) return;  // usage analysis would only cascade

  // Usage mirrors FaultMaintenanceTree::validate: a node must be reachable
  // from the top event or a dependency *trigger* (a condition may accelerate
  // other modes without feeding the structure function). Targets are not
  // usage roots — they must sit in the tree themselves.
  std::unordered_set<std::string> used;
  std::vector<const std::string*> stack{&decls.top};
  for (const RdepDecl& r : decls.rdeps) stack.push_back(&r.trigger);
  for (const FdepDecl& f : decls.fdeps) stack.push_back(&f.trigger);
  while (!stack.empty()) {
    const std::string& name = *stack.back();
    stack.pop_back();
    if (!used.insert(name).second) continue;
    if (const auto it = decls.gates.find(name); it != decls.gates.end())
      for (const std::string& child : it->second.children) stack.push_back(&child);
  }
  for (const auto& [name, g] : decls.gates)
    if (!used.contains(name))
      diags.error("M103", {g.line, g.column}, "gate '" + name + "' is used by nothing",
                  "wire it into the tree or delete it", name);
  for (const auto& [name, l] : decls.leaves)
    if (!used.contains(name))
      diags.error("M103", {l.line, 0}, "leaf '" + name + "' is used by nothing",
                  "wire it into the tree or delete it", name);
}

FaultMaintenanceTree build_model(const Declarations& decls) {
  FaultMaintenanceTree model;
  std::unordered_map<std::string, NodeId> built;
  std::unordered_set<std::string> building;

  std::function<NodeId(const std::string&)> build = [&](const std::string& name) {
    if (auto it = built.find(name); it != built.end()) return it->second;
    if (building.contains(name)) throw ModelError("cycle involving node '" + name + "'");
    if (auto leaf = decls.leaves.find(name); leaf != decls.leaves.end()) {
      const NodeId id =
          model.add_ebe(name, leaf->second.degradation, leaf->second.repair);
      built.emplace(name, id);
      return id;
    }
    auto gi = decls.gates.find(name);
    if (gi == decls.gates.end())
      throw ModelError("node '" + name + "' referenced but never defined");
    building.insert(name);
    std::vector<NodeId> children;
    children.reserve(gi->second.children.size());
    for (const std::string& child : gi->second.children) children.push_back(build(child));
    building.erase(name);
    const NodeId id =
        gi->second.is_spare
            ? model.add_spare(name, std::move(children), gi->second.dormancy)
            : model.add_gate(name, gi->second.type, std::move(children), gi->second.k);
    built.emplace(name, id);
    return id;
  };
  model.set_top(build(decls.top));

  // Dependency and module statements may reference nodes that do not feed
  // the top event (e.g. a standalone condition that only triggers an RDEP),
  // so resolution builds on demand.
  auto resolve = [&](const std::string& name, std::size_t line) {
    if (!built.contains(name) && !decls.leaves.contains(name) &&
        !decls.gates.contains(name))
      throw ParseError(line, "unknown node '" + name + "'");
    return build(name);
  };

  for (const RdepDecl& r : decls.rdeps) {
    std::vector<NodeId> deps;
    deps.reserve(r.targets.size());
    for (const std::string& t : r.targets) deps.push_back(resolve(t, r.line));
    model.add_rdep(r.name, resolve(r.trigger, r.line), std::move(deps), r.factor,
                   r.trigger_phase);
  }

  for (const FdepDecl& f : decls.fdeps) {
    std::vector<NodeId> deps;
    deps.reserve(f.targets.size());
    for (const std::string& t : f.targets) deps.push_back(resolve(t, f.line));
    model.add_fdep(f.name, resolve(f.trigger, f.line), std::move(deps));
  }

  for (const ModuleDecl& m : decls.modules) {
    std::vector<NodeId> targets;
    if (m.targets_all) {
      for (NodeId leaf : model.leaves()) {
        if (!m.is_inspection || model.ebe(leaf).degradation.inspectable())
          targets.push_back(leaf);
      }
      if (targets.empty())
        throw ParseError(m.line, "module '" + m.name + "': 'all' matches no leaves");
    } else {
      targets.reserve(m.targets.size());
      for (const std::string& t : m.targets) targets.push_back(resolve(t, m.line));
    }
    if (m.is_inspection) {
      if (!(m.detect > 0 && m.detect <= 1))
        throw ParseError(m.line, "inspection detect must lie in (0, 1]");
      model.add_inspection(InspectionModule{m.name, m.period, m.offset, m.cost,
                                            std::move(targets), m.detect});
    } else {
      model.add_replacement(
          ReplacementModule{m.name, m.period, m.offset, m.cost, std::move(targets)});
    }
  }

  if (decls.corrective_seen) model.set_corrective(decls.corrective);

  // Everything declared must be used somewhere: under the top event or by a
  // dependency/module statement (which built it on demand above).
  for (const auto& [name, decl] : decls.gates)
    if (!built.contains(name))
      throw ModelError("gate '" + name + "' is used by nothing");
  for (const auto& [name, decl] : decls.leaves)
    if (!built.contains(name))
      throw ModelError("leaf '" + name + "' is used by nothing");

  model.validate();
  return model;
}

}  // namespace

FmtParseResult parse_fmt_collect(const std::string& text) {
  FmtParseResult result;
  TokenCursor cur(ft::tokenize(text, result.diagnostics));
  const Declarations decls = collect(cur, result.diagnostics);
  if (result.diagnostics.has_errors()) return result;
  validate_declarations(decls, result.diagnostics);
  if (result.diagnostics.has_errors()) return result;
  try {
    result.model = build_model(decls);
  } catch (const ParseError& e) {
    // Build-time checks not covered by validate_declarations (detection
    // probability range, 'targets all' matching nothing, ...).
    result.diagnostics.add(diagnostic_from(e));
  } catch (const Error& e) {
    result.diagnostics.add(diagnostic_from(e, "M104"));
  }
  return result;
}

FaultMaintenanceTree parse_fmt(const std::string& text) {
  FmtParseResult result = parse_fmt_collect(text);
  result.diagnostics.throw_if_errors();
  return std::move(*result.model);
}

namespace {

std::string quoted(const std::string& name) {
  for (char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_' ||
                    c == '.' || c == '-';
    if (!ok) return '"' + name + '"';
  }
  if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0])) != 0)
    return '"' + name + '"';
  return name;
}

/// Shortest exact decimal form (see util/format.hpp); the emitter prints
/// every double through this so reparsing reproduces the same bits.
std::string num(double v) { return format_double(v); }

std::string dist_to_text(const Distribution& d) {
  std::ostringstream os;
  std::visit(
      [&os](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          os << "exp(" << num(x.rate) << ")";
        } else if constexpr (std::is_same_v<T, Erlang>) {
          os << "erlang(" << x.shape << ", " << num(x.rate) << ")";
        } else if constexpr (std::is_same_v<T, Weibull>) {
          os << "weibull(" << num(x.shape) << ", " << num(x.scale) << ")";
        } else if constexpr (std::is_same_v<T, Lognormal>) {
          os << "lognormal(" << num(x.mu) << ", " << num(x.sigma) << ")";
        } else if constexpr (std::is_same_v<T, UniformDist>) {
          os << "uniform(" << num(x.lo) << ", " << num(x.hi) << ")";
        } else {
          static_assert(std::is_same_v<T, Deterministic>);
          if (std::isinf(x.value))
            os << "never";
          else
            os << "det(" << num(x.value) << ")";
        }
      },
      d.as_variant());
  return os.str();
}

/// The per-phase rate when all phases are Exponential with one common rate
/// (the `ebe rate=` form); unset otherwise.
std::optional<double> common_phase_rate(const DegradationModel& deg) {
  std::optional<double> rate;
  for (const Distribution& d : deg.sojourns()) {
    const auto* e = std::get_if<Exponential>(&d.as_variant());
    if (e == nullptr) return std::nullopt;
    if (rate && *rate != e->rate) return std::nullopt;
    rate = e->rate;
  }
  return rate;
}

}  // namespace

std::string to_text(const FaultMaintenanceTree& model) {
  model.validate();
  const ft::FaultTree& structure = model.structure();
  std::ostringstream os;
  os << "toplevel " << quoted(structure.name(structure.top())) << ";\n";
  std::unordered_map<std::uint32_t, const SpareSpec*> spare_gates;
  for (const SpareSpec& spec : model.spares())
    spare_gates.emplace(spec.gate.value, &spec);
  for (NodeId id : structure.gates()) {
    const ft::Gate& g = structure.gate(id);
    os << quoted(g.name) << ' ';
    if (const auto it = spare_gates.find(id.value); it != spare_gates.end()) {
      os << "spare dormancy=" << num(it->second->dormancy);
    } else {
      switch (g.type) {
        case GateType::And: os << "and"; break;
        case GateType::Or: os << "or"; break;
        case GateType::Voting: os << "vot " << g.k; break;
      }
    }
    for (NodeId c : g.children) os << ' ' << quoted(structure.name(c));
    os << ";\n";
  }
  for (NodeId id : model.leaves()) {
    const ExtendedBasicEvent& e = model.ebe(id);
    const DegradationModel& deg = e.degradation;
    const bool default_repair =
        e.repair.action == "repair" && e.repair.cost == 0 && e.repair.duration == 0;
    // A plain basic event round-trips as `be <dist>`, keeping its lifetime
    // distribution exact (the ebe form could only approximate e.g. a
    // Weibull by an exponential with the same mean).
    if (deg.phases() == 1 && !deg.inspectable() && default_repair) {
      os << quoted(e.name) << " be " << dist_to_text(deg.sojourn(1)) << ";\n";
      continue;
    }
    os << quoted(e.name) << " ebe phases=" << deg.phases();
    if (const std::optional<double> rate = common_phase_rate(deg))
      os << " rate=" << num(*rate);
    else
      os << " mean=" << num(deg.mean_time_to_failure());
    os << " threshold=" << deg.threshold_phase();
    if (e.repair.cost != 0) os << " repair_cost=" << num(e.repair.cost);
    if (e.repair.duration != 0) os << " repair_time=" << num(e.repair.duration);
    if (e.repair.action != "repair") os << " repair=" << quoted(e.repair.action);
    os << ";\n";
  }
  for (const RateDependency& r : model.rdeps()) {
    os << "rdep " << quoted(r.name) << " factor=" << num(r.factor) << " trigger="
       << quoted(structure.name(r.trigger));
    if (r.trigger_phase != 0) os << " trigger_phase=" << r.trigger_phase;
    os << " targets";
    for (NodeId t : r.dependents) os << ' ' << quoted(structure.name(t));
    os << ";\n";
  }
  for (const FunctionalDependency& f : model.fdeps()) {
    os << "fdep " << quoted(f.name) << " trigger=" << quoted(structure.name(f.trigger))
       << " targets";
    for (NodeId t : f.dependents) os << ' ' << quoted(structure.name(t));
    os << ";\n";
  }
  for (const InspectionModule& m : model.inspections()) {
    os << "inspection " << quoted(m.name) << " period=" << num(m.period)
       << " offset=" << num(m.first_at) << " cost=" << num(m.cost);
    if (m.detection_probability < 1.0)
      os << " detect=" << num(m.detection_probability);
    os << " targets";
    for (NodeId t : m.targets) os << ' ' << quoted(structure.name(t));
    os << ";\n";
  }
  for (const ReplacementModule& m : model.replacements()) {
    os << "replacement " << quoted(m.name) << " period=" << num(m.period)
       << " offset=" << num(m.first_at) << " cost=" << num(m.cost) << " targets";
    for (NodeId t : m.targets) os << ' ' << quoted(structure.name(t));
    os << ";\n";
  }
  const CorrectivePolicy& c = model.corrective();
  if (c.enabled) {
    os << "corrective cost=" << num(c.cost) << " delay=" << num(c.delay)
       << " downtime_rate=" << num(c.downtime_cost_rate) << ";\n";
  }
  return os.str();
}

}  // namespace fmtree::fmt
