// Maintenance constructs attached to a fault maintenance tree.
#pragma once

#include <string>
#include <vector>

#include "ft/tree.hpp"

namespace fmtree::fmt {

/// Condition-based repair action attached to one extended basic event: what
/// happens when an inspection finds the EBE at/past its threshold phase. The
/// action restores the EBE to phase 1 ("as new" for that failure mode).
///
/// A repair may take time (`duration` > 0): while the crew works, the
/// component's degradation is paused (it neither progresses nor fails), it
/// is skipped by further inspections, and the restoration to phase 1 only
/// takes effect when the repair completes. Renewals (replacement modules or
/// corrective maintenance) preempt an ongoing repair.
struct RepairSpec {
  std::string action = "repair";  ///< e.g. "grind", "clean", "tighten"
  double cost = 0.0;              ///< cost per executed action
  double duration = 0.0;          ///< time from detection to restored component
};

/// Periodic inspection: every `period` time units (first at `first_at`),
/// each target EBE at/past its threshold phase has its RepairSpec executed.
/// Failed targets are not repaired by inspections — that is corrective
/// maintenance's job.
///
/// Inspections may be imperfect: each degraded target is detected (and thus
/// repaired) with probability `detection_probability`, independently per
/// target per round. 1.0 models the perfect inspections of the base study.
struct InspectionModule {
  std::string name;
  double period = 1.0;
  double first_at = -1.0;  ///< negative = use `period`
  double cost = 0.0;       ///< cost per inspection round
  std::vector<ft::NodeId> targets;
  double detection_probability = 1.0;  ///< in (0, 1]
};

/// Periodic preventive replacement (renewal): every `period` time units the
/// target EBEs are reset to phase 1 regardless of condition (and failed
/// targets are restored).
struct ReplacementModule {
  std::string name;
  double period = 1.0;
  double first_at = -1.0;  ///< negative = use `period`
  double cost = 0.0;       ///< cost per replacement round
  std::vector<ft::NodeId> targets;
};

/// What happens when the top event fires: after `delay` time units the whole
/// system is renewed (every EBE reset to phase 1). The interval between
/// failure and completed renewal counts as downtime.
struct CorrectivePolicy {
  bool enabled = true;
  double delay = 0.0;              ///< repair lead time (downtime per failure)
  double cost = 0.0;               ///< cost per system failure (incl. penalty)
  double downtime_cost_rate = 0.0; ///< additional cost per unit of downtime
};

/// Rate dependency: while the trigger condition holds, the dependent EBEs
/// degrade `factor` times faster; once the trigger is repaired/renewed the
/// normal rate is restored.
///
/// Two trigger semantics:
///  * trigger_phase == 0 (default): the trigger node's *event* holds
///    (classic RDEP — the trigger has failed);
///  * trigger_phase >= 1: the trigger must be a leaf, and the dependency is
///    active while that leaf's degradation phase is >= trigger_phase. This
///    expresses conditions like "a visibly battered joint accelerates metal
///    overflow" where the accelerating condition is degradation, not failure.
struct RateDependency {
  std::string name;
  ft::NodeId trigger;
  std::vector<ft::NodeId> dependents;
  double factor = 1.0;    ///< acceleration factor gamma >= 1
  int trigger_phase = 0;  ///< 0 = event semantics; >=1 = phase semantics
};

/// Functional dependency (the FDEP gate of dynamic fault trees): the moment
/// the trigger event holds, every dependent leaf fails immediately. The
/// dependents stay failed until maintenance restores them like any other
/// failure (replacement or corrective renewal); if the trigger still holds
/// at that point they fail again at once.
struct FunctionalDependency {
  std::string name;
  ft::NodeId trigger;
  std::vector<ft::NodeId> dependents;
};

/// Spare management (the SPARE gate of dynamic fault trees): `children` are
/// a primary-and-spares pool, primary first. At any moment the lowest-index
/// non-failed child is *active* and degrades at its full rate; the remaining
/// non-failed children are *dormant* and degrade at `dormancy` times their
/// rate (0 = cold spare: no degradation while waiting; 1 = hot spare). The
/// associated gate fails when the whole pool has failed. Renewing a child
/// re-activates it according to the same lowest-index rule.
struct SpareSpec {
  std::string name;
  ft::NodeId gate;                  ///< the AND gate over the pool
  std::vector<ft::NodeId> children; ///< primary first, then spares, in order
  double dormancy = 0.0;            ///< in [0, 1]
};

/// Aggregated maintenance / failure costs of a trajectory or expectation.
struct CostBreakdown {
  double inspection = 0.0;   ///< inspection rounds
  double repair = 0.0;       ///< condition-based repair actions
  double replacement = 0.0;  ///< planned renewals
  double corrective = 0.0;   ///< per-failure corrective costs
  double downtime = 0.0;     ///< downtime_cost_rate * downtime
  double total() const noexcept {
    return inspection + repair + replacement + corrective + downtime;
  }

  CostBreakdown& operator+=(const CostBreakdown& o) noexcept {
    inspection += o.inspection;
    repair += o.repair;
    replacement += o.replacement;
    corrective += o.corrective;
    downtime += o.downtime;
    return *this;
  }
  CostBreakdown operator/(double d) const noexcept {
    return {inspection / d, repair / d, replacement / d, corrective / d, downtime / d};
  }
};

}  // namespace fmtree::fmt
