#include "fmt/degradation.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fmtree::fmt {

DegradationModel::DegradationModel(std::vector<Distribution> phase_sojourns,
                                   int threshold_phase)
    : sojourns_(std::move(phase_sojourns)), threshold_(threshold_phase) {
  if (sojourns_.empty()) throw ModelError("degradation model needs >= 1 phase");
  if (threshold_ < 1 || threshold_ > phases() + 1)
    throw ModelError("threshold phase must lie in [1, phases+1]");
  for (const Distribution& d : sojourns_)
    if (d.is_never())
      throw ModelError("phase sojourn must not be 'never' (use a huge mean instead)");
}

DegradationModel DegradationModel::erlang(int phases, double mean_ttf,
                                          int threshold_phase) {
  if (phases < 1) throw ModelError("erlang degradation needs >= 1 phase");
  if (!(mean_ttf > 0)) throw ModelError("mean time to failure must be positive");
  const double rate = static_cast<double>(phases) / mean_ttf;
  std::vector<Distribution> sojourns(static_cast<std::size_t>(phases),
                                     Distribution::exponential(rate));
  return DegradationModel(std::move(sojourns), threshold_phase);
}

DegradationModel DegradationModel::basic(Distribution lifetime) {
  std::vector<Distribution> sojourns{std::move(lifetime)};
  return DegradationModel(std::move(sojourns), 2);  // threshold past the end
}

const Distribution& DegradationModel::sojourn(int phase) const {
  if (phase < 1 || phase > phases())
    throw ModelError("phase " + std::to_string(phase) + " out of range");
  return sojourns_[static_cast<std::size_t>(phase - 1)];
}

double DegradationModel::mean_time_to_failure() const {
  double total = 0;
  for (const Distribution& d : sojourns_) total += d.mean();
  return total;
}

double DegradationModel::variance_time_to_failure() const {
  double total = 0;
  for (const Distribution& d : sojourns_) total += d.variance();
  return total;
}

bool DegradationModel::all_phases_exponential() const noexcept {
  for (const Distribution& d : sojourns_)
    if (!std::holds_alternative<Exponential>(d.as_variant())) return false;
  return true;
}

Distribution DegradationModel::time_to_failure_approximation() const {
  // Exact case: a single phase is its own lifetime.
  if (phases() == 1) return sojourns_.front();
  // Exact case: iid exponential phases -> Erlang.
  if (all_phases_exponential()) {
    const double first_rate = std::get<Exponential>(sojourns_.front().as_variant()).rate;
    bool uniform = true;
    for (const Distribution& d : sojourns_)
      if (std::get<Exponential>(d.as_variant()).rate != first_rate) uniform = false;
    if (uniform) return Distribution::erlang(phases(), first_rate);
  }
  const double mean = mean_time_to_failure();
  const double var = variance_time_to_failure();
  if (!(var > 0)) return Distribution::deterministic(mean);
  // Moment-matched Erlang: shape = round(mean^2 / var), rate = shape / mean.
  const double raw_shape = mean * mean / var;
  const int shape = std::max(1, static_cast<int>(std::llround(raw_shape)));
  return Distribution::erlang_mean(shape, mean);
}

}  // namespace fmtree::fmt
