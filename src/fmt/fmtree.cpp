#include "fmt/fmtree.hpp"

#include <unordered_set>

#include "util/error.hpp"

namespace fmtree::fmt {

NodeId FaultMaintenanceTree::add_ebe(std::string name, DegradationModel degradation,
                                     RepairSpec repair) {
  Distribution ttf = degradation.time_to_failure_approximation();
  const NodeId id = structure_.add_basic_event(name, std::move(ttf));
  ebes_.push_back(
      ExtendedBasicEvent{std::move(name), std::move(degradation), std::move(repair)});
  return id;
}

NodeId FaultMaintenanceTree::add_basic_event(std::string name, Distribution lifetime) {
  return add_ebe(std::move(name), DegradationModel::basic(std::move(lifetime)));
}

void FaultMaintenanceTree::set_ebe_degradation(NodeId id, DegradationModel degradation) {
  const std::size_t index = structure_.basic_index(id);  // throws if not a leaf
  structure_.set_basic_lifetime(id, degradation.time_to_failure_approximation());
  ebes_[index].degradation = std::move(degradation);
}

NodeId FaultMaintenanceTree::add_gate(std::string name, GateType type,
                                      std::vector<NodeId> children, int k) {
  return structure_.add_gate(std::move(name), type, std::move(children), k);
}

NodeId FaultMaintenanceTree::add_spare(std::string name, std::vector<NodeId> children,
                                       double dormancy) {
  if (children.size() < 2)
    throw ModelError("spare gate '" + name + "' needs a primary and >= 1 spare");
  if (!(dormancy >= 0.0 && dormancy <= 1.0))
    throw ModelError("spare gate '" + name + "' needs dormancy in [0, 1]");
  for (NodeId c : children) {
    if (!structure_.is_basic(c))
      throw ModelError("spare gate '" + name + "' child '" + structure_.name(c) +
                       "' is not a leaf");
    for (const SpareSpec& other : spares_) {
      for (NodeId existing : other.children) {
        if (existing == c)
          throw ModelError("leaf '" + structure_.name(c) +
                           "' already belongs to spare pool '" + other.name + "'");
      }
    }
  }
  std::vector<NodeId> pool = children;  // the gate consumes a copy
  const NodeId gate = structure_.add_and(name, std::move(pool));
  spares_.push_back(SpareSpec{std::move(name), gate, std::move(children), dormancy});
  return gate;
}

NodeId FaultMaintenanceTree::add_and(std::string name, std::vector<NodeId> children) {
  return structure_.add_and(std::move(name), std::move(children));
}

NodeId FaultMaintenanceTree::add_or(std::string name, std::vector<NodeId> children) {
  return structure_.add_or(std::move(name), std::move(children));
}

NodeId FaultMaintenanceTree::add_voting(std::string name, int k,
                                        std::vector<NodeId> children) {
  return structure_.add_voting(std::move(name), k, std::move(children));
}

void FaultMaintenanceTree::set_top(NodeId id) { structure_.set_top(id); }

void FaultMaintenanceTree::add_rdep(std::string name, NodeId trigger,
                                    std::vector<NodeId> dependents, double factor,
                                    int trigger_phase) {
  if (!(factor >= 1.0)) throw ModelError("RDEP factor must be >= 1");
  if (dependents.empty()) throw ModelError("RDEP '" + name + "' needs dependents");
  for (NodeId d : dependents) {
    if (!structure_.is_basic(d))
      throw ModelError("RDEP '" + name + "' dependent '" + structure_.name(d) +
                       "' is not a leaf");
    if (d == trigger)
      throw ModelError("RDEP '" + name + "' has its trigger among the dependents");
  }
  // Touch the trigger to range-check it.
  (void)structure_.name(trigger);
  if (trigger_phase != 0) {
    if (!structure_.is_basic(trigger))
      throw ModelError("RDEP '" + name +
                       "' uses phase-trigger semantics, so the trigger must be a leaf");
    const int max_phase = ebe(trigger).degradation.phases() + 1;
    if (trigger_phase < 1 || trigger_phase > max_phase)
      throw ModelError("RDEP '" + name + "' trigger phase out of [1, phases+1]");
  }
  rdeps_.push_back(RateDependency{std::move(name), trigger, std::move(dependents),
                                  factor, trigger_phase});
}

void FaultMaintenanceTree::add_fdep(std::string name, NodeId trigger,
                                    std::vector<NodeId> dependents) {
  if (dependents.empty()) throw ModelError("FDEP '" + name + "' needs dependents");
  for (NodeId d : dependents) {
    if (!structure_.is_basic(d))
      throw ModelError("FDEP '" + name + "' dependent '" + structure_.name(d) +
                       "' is not a leaf");
    if (d == trigger)
      throw ModelError("FDEP '" + name + "' has its trigger among the dependents");
  }
  (void)structure_.name(trigger);  // range check
  fdeps_.push_back(FunctionalDependency{std::move(name), trigger, std::move(dependents)});
}

namespace {

void check_targets(const ft::FaultTree& structure, const std::string& module_name,
                   const std::vector<NodeId>& targets) {
  if (targets.empty())
    throw ModelError("maintenance module '" + module_name + "' has no targets");
  std::unordered_set<std::uint32_t> seen;
  for (NodeId t : targets) {
    if (!structure.is_basic(t))
      throw ModelError("maintenance module '" + module_name + "' target '" +
                       structure.name(t) + "' is not a leaf");
    if (!seen.insert(t.value).second)
      throw ModelError("maintenance module '" + module_name + "' lists target '" +
                       structure.name(t) + "' twice");
  }
}

}  // namespace

std::size_t FaultMaintenanceTree::add_inspection(InspectionModule module) {
  if (!(module.period > 0))
    throw ModelError("inspection '" + module.name + "' needs period > 0");
  if (!(module.detection_probability > 0 && module.detection_probability <= 1))
    throw ModelError("inspection '" + module.name +
                     "' needs detection probability in (0, 1]");
  if (module.first_at < 0) module.first_at = module.period;
  check_targets(structure_, module.name, module.targets);
  inspections_.push_back(std::move(module));
  return inspections_.size() - 1;
}

std::size_t FaultMaintenanceTree::add_replacement(ReplacementModule module) {
  if (!(module.period > 0))
    throw ModelError("replacement '" + module.name + "' needs period > 0");
  if (module.first_at < 0) module.first_at = module.period;
  check_targets(structure_, module.name, module.targets);
  replacements_.push_back(std::move(module));
  return replacements_.size() - 1;
}

void FaultMaintenanceTree::remove_inspection_target(std::size_t module_index,
                                                    NodeId leaf) {
  if (module_index >= inspections_.size())
    throw ModelError("inspection module index out of range");
  auto& targets = inspections_[module_index].targets;
  std::erase(targets, leaf);
  if (targets.empty())
    inspections_.erase(inspections_.begin() +
                       static_cast<std::ptrdiff_t>(module_index));
}

void FaultMaintenanceTree::set_inspection_schedule(std::size_t module_index,
                                                   double period, double first_at) {
  if (module_index >= inspections_.size())
    throw ModelError("inspection module index out of range");
  InspectionModule& module = inspections_[module_index];
  if (!(period > 0))
    throw ModelError("inspection '" + module.name + "' needs period > 0");
  module.period = period;
  module.first_at = first_at < 0 ? period : first_at;
}

void FaultMaintenanceTree::set_corrective(CorrectivePolicy policy) {
  if (policy.enabled && policy.delay < 0)
    throw ModelError("corrective delay must be >= 0");
  corrective_ = policy;
}

const ExtendedBasicEvent& FaultMaintenanceTree::ebe(NodeId id) const {
  return ebes_[structure_.basic_index(id)];
}

void FaultMaintenanceTree::validate() const {
  Diagnostics diags;
  validate(diags);
  if (!diags.has_errors()) return;
  // Preserve the historical single-error message; aggregate otherwise.
  if (diags.error_count() == 1) throw ModelError(diags.all().front().message);
  throw ModelErrors(diags.all());
}

void FaultMaintenanceTree::validate(Diagnostics& diags) const {
  // Dependency triggers are used even when they do not feed the structure
  // function (e.g. a condition that only accelerates other modes).
  std::vector<NodeId> roots;
  for (const RateDependency& r : rdeps_) roots.push_back(r.trigger);
  for (const FunctionalDependency& f : fdeps_) roots.push_back(f.trigger);
  structure_.validate(roots, diags);
  FMTREE_ASSERT(ebes_.size() == structure_.basic_events().size(),
                "EBE bookkeeping out of sync with structure");
  // Inspection of an undetectable EBE is legal but useless; flag it as a
  // modelling error because it invariably indicates a wrong threshold.
  for (const InspectionModule& m : inspections_) {
    for (NodeId t : m.targets) {
      if (!ebe(t).degradation.inspectable())
        diags.error("M107", {},
                    "inspection '" + m.name + "' targets '" + name(t) +
                        "', whose degradation has no detectable phase",
                    "raise the EBE's threshold below its phase count or drop the "
                    "target",
                    name(t));
    }
  }
}

bool FaultMaintenanceTree::is_markovian() const {
  // FDEP cascades are instantaneous and state-determined, so they do not
  // break the Markov property; only deterministic clocks and non-exponential
  // sojourns do.
  if (!inspections_.empty() || !replacements_.empty()) return false;
  if (corrective_.enabled && corrective_.delay != 0.0) return false;
  for (const ExtendedBasicEvent& e : ebes_)
    if (!e.degradation.all_phases_exponential()) return false;
  return true;
}

}  // namespace fmtree::fmt
