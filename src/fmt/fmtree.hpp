// Fault maintenance trees (FMTs): fault trees augmented with degradation
// phases, inspections, repairs and replacements — the formalism of Ruijters,
// Guck, van Noort & Stoelinga (DSN 2016).
//
// An FMT couples
//   * a boolean failure structure (AND/OR/VOT gates over leaves),
//   * per-leaf phased degradation (DegradationModel),
//   * rate dependencies (RDEP) accelerating degradation once a trigger holds,
//   * maintenance modules: periodic inspections with condition-based repair,
//     periodic preventive replacement, and corrective renewal on failure,
//   * a cost model distributed over those constructs.
//
// Analyses:
//   * structure()/static_view() expose a classic fault tree for BDD-based
//     baselines (maintenance ignored),
//   * sim::FmtSimulator executes the full timed semantics,
//   * analytic::fmt_to_ctmc gives exact answers for inspection-free models.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fmt/degradation.hpp"
#include "fmt/maintenance.hpp"
#include "ft/tree.hpp"

namespace fmtree::fmt {

using ft::GateType;
using ft::NodeId;

/// A leaf of the FMT: a failure mode with phased degradation and an attached
/// condition-based repair action.
struct ExtendedBasicEvent {
  std::string name;
  DegradationModel degradation;
  RepairSpec repair;
};

class FaultMaintenanceTree {
public:
  // ---- Construction --------------------------------------------------------

  /// Adds a leaf with phased degradation. Returns its node id.
  NodeId add_ebe(std::string name, DegradationModel degradation, RepairSpec repair = {});

  /// Adds a classic basic event: single phase, not inspectable.
  NodeId add_basic_event(std::string name, Distribution lifetime);

  NodeId add_gate(std::string name, GateType type, std::vector<NodeId> children,
                  int k = 0);

  /// Adds a SPARE gate: an AND over the pool in the boolean structure, plus
  /// spare-management semantics (see SpareSpec). Children must be leaves,
  /// each belonging to at most one spare pool; dormancy in [0, 1]. The
  /// static_view/structure() treats the pool as an AND of independent
  /// lifetimes, which ignores dormancy — exact analyses must use the
  /// simulator or the CTMC backend.
  NodeId add_spare(std::string name, std::vector<NodeId> children, double dormancy);

  NodeId add_and(std::string name, std::vector<NodeId> children);
  NodeId add_or(std::string name, std::vector<NodeId> children);
  NodeId add_voting(std::string name, int k, std::vector<NodeId> children);

  void set_top(NodeId id);

  /// Attaches a rate dependency. Trigger may be any node (or, with
  /// trigger_phase >= 1, a leaf whose phase activates the dependency);
  /// dependents must be leaves; factor >= 1.
  void add_rdep(std::string name, NodeId trigger, std::vector<NodeId> dependents,
                double factor, int trigger_phase = 0);

  /// Attaches a functional dependency (FDEP): once the trigger event holds,
  /// the dependent leaves fail instantly. Dependents must be leaves and
  /// distinct from the trigger; cyclic FDEP chains are allowed (the cascade
  /// is a monotone fixpoint).
  void add_fdep(std::string name, NodeId trigger, std::vector<NodeId> dependents);

  /// Index of the new module is returned (used by traces).
  std::size_t add_inspection(InspectionModule module);
  std::size_t add_replacement(ReplacementModule module);
  void set_corrective(CorrectivePolicy policy);

  /// Removes one leaf from an inspection module's target list (no-op if it
  /// is not a target). Used by what-if analyses ("stop grinding — what
  /// happens?"). Removing the last target of a module deletes the module.
  void remove_inspection_target(std::size_t module_index, NodeId leaf);

  /// Reschedules an existing inspection module: period > 0, and a negative
  /// `first_at` means "align the first round with the period" (the same
  /// convention as InspectionModule::first_at). Used by frequency sweeps,
  /// which re-derive one model per candidate inspection interval.
  void set_inspection_schedule(std::size_t module_index, double period,
                               double first_at = -1.0);

  /// Drops every inspection module — the "no planned maintenance" variant
  /// at frequency 0 of a sweep. Corrective maintenance is untouched.
  void clear_inspections() noexcept { inspections_.clear(); }

  /// Replaces the degradation model of an existing leaf, refreshing the
  /// static view's lifetime approximation to match. Maintenance modules,
  /// dependencies and node indices are untouched. Throws ModelError when
  /// `id` is not a leaf. Used by fleet generators, which derive per-asset
  /// variants of one calibrated base model by rescaling phase sojourns.
  void set_ebe_degradation(NodeId id, DegradationModel degradation);

  /// Validates the whole model (structure + maintenance references).
  /// Throws ModelError on violations.
  void validate() const;

  /// Collecting variant: records every violation (M-range codes) into
  /// `diags` instead of throwing on the first one.
  void validate(Diagnostics& diags) const;

  // ---- Accessors -----------------------------------------------------------

  /// The boolean structure. Leaf lifetimes in this view are the
  /// no-maintenance time-to-failure approximations of each EBE (exact for
  /// iid-exponential phases), so classic static analyses (BDD, cut sets,
  /// importance) apply directly.
  const ft::FaultTree& structure() const noexcept { return structure_; }

  std::span<const ExtendedBasicEvent> ebes() const noexcept { return ebes_; }
  const ExtendedBasicEvent& ebe(NodeId id) const;
  /// Leaf position of `id` (shared index space with structure().basic_index).
  std::size_t ebe_index(NodeId id) const { return structure_.basic_index(id); }
  std::size_t num_ebes() const noexcept { return ebes_.size(); }

  std::span<const InspectionModule> inspections() const noexcept { return inspections_; }
  std::span<const ReplacementModule> replacements() const noexcept {
    return replacements_;
  }
  std::span<const RateDependency> rdeps() const noexcept { return rdeps_; }
  std::span<const FunctionalDependency> fdeps() const noexcept { return fdeps_; }
  std::span<const SpareSpec> spares() const noexcept { return spares_; }
  const CorrectivePolicy& corrective() const noexcept { return corrective_; }

  NodeId top() const { return structure_.top(); }
  std::optional<NodeId> find(const std::string& name) const {
    return structure_.find(name);
  }
  const std::string& name(NodeId id) const { return structure_.name(id); }

  /// All leaf node ids in leaf-index order.
  std::span<const NodeId> leaves() const noexcept { return structure_.basic_events(); }

  /// True iff the model can be converted to a CTMC exactly: all phases
  /// exponential, no deterministic maintenance clocks needed (i.e. no
  /// inspection or replacement modules), corrective delay zero or disabled.
  bool is_markovian() const;

private:
  ft::FaultTree structure_;
  std::vector<ExtendedBasicEvent> ebes_;  // parallel to structure_.basic_events()
  std::vector<InspectionModule> inspections_;
  std::vector<ReplacementModule> replacements_;
  std::vector<RateDependency> rdeps_;
  std::vector<FunctionalDependency> fdeps_;
  std::vector<SpareSpec> spares_;
  CorrectivePolicy corrective_{.enabled = false};
};

}  // namespace fmtree::fmt
