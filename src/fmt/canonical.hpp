// Canonical content hash of a fault maintenance tree.
//
// canonical_hash() walks the in-memory model — not its textual form — so two
// models that parse/build to the same semantics produce the same
// fingerprint regardless of formatting, comments, or attribute order in the
// source text. Conversely it covers *every* semantically meaningful field
// (structure, distribution parameters bit-for-bit, thresholds, maintenance
// module schedules and costs, dependency factors, corrective policy): any
// change that could alter an analysis result changes the hash.
//
// Node references are hashed by name, and leaves/gates in their stored
// (insertion) order. Leaf order is deliberately part of the identity: KPI
// reports carry per-leaf vectors indexed by leaf position, so models that
// differ only in leaf ordering are *not* interchangeable cache-wise.
//
// The walk is versioned by an embedded schema tag ("fmtree.model/v1");
// extending the model with new constructs must bump it so stale disk-cache
// entries can never alias a model the old walk could not see.
#pragma once

#include "util/fingerprint.hpp"

namespace fmtree::fmt {

class FaultMaintenanceTree;

Fingerprint canonical_hash(const FaultMaintenanceTree& model);

}  // namespace fmtree::fmt
