// Phased degradation models for extended basic events.
//
// An extended basic event (EBE) degrades through phases 1..N and fails on
// leaving phase N (conceptually entering phase N+1). Each phase has its own
// sojourn-time distribution. A configurable threshold phase marks the point
// from which periodic inspections can detect the degradation and trigger a
// condition-based repair — the key modelling device of fault maintenance
// trees: an exponential (single-phase) failure has no inspectable
// intermediate state, so condition-based maintenance cannot help it.
#pragma once

#include <string>
#include <vector>

#include "util/distributions.hpp"

namespace fmtree::fmt {

class DegradationModel {
public:
  /// General form: explicit per-phase sojourn distributions.
  /// `threshold_phase` is 1-based; degradation is detectable by inspection
  /// once the current phase is >= threshold_phase. Pass phases.size()+1 (or
  /// use undetectable()) for failure modes inspections cannot see.
  DegradationModel(std::vector<Distribution> phase_sojourns, int threshold_phase);

  /// The FMT-paper default: overall time to failure ~ Erlang(N, N/mean_ttf),
  /// i.e. N identical exponential phases. Exact for CTMC conversion.
  static DegradationModel erlang(int phases, double mean_ttf, int threshold_phase);

  /// Single-phase model with an arbitrary lifetime; undetectable by
  /// inspection (classic basic event).
  static DegradationModel basic(Distribution lifetime);

  int phases() const noexcept { return static_cast<int>(sojourns_.size()); }
  int threshold_phase() const noexcept { return threshold_; }
  /// True if some reachable phase is detectable before failure.
  bool inspectable() const noexcept { return threshold_ <= phases(); }
  const Distribution& sojourn(int phase) const;  // 1-based
  const std::vector<Distribution>& sojourns() const noexcept { return sojourns_; }

  /// Mean total time to failure (sum of phase means) with no maintenance.
  double mean_time_to_failure() const;
  /// Variance of the total time to failure (phases are independent).
  double variance_time_to_failure() const;

  /// True iff every phase is exponential (required for exact CTMC analysis).
  bool all_phases_exponential() const noexcept;

  /// A single lifetime Distribution matching the total time to failure:
  /// exact Erlang when all phases are iid exponential; otherwise an Erlang
  /// moment-matched on mean and variance (used by the static fault-tree
  /// view, which cannot represent general phase sums).
  Distribution time_to_failure_approximation() const;

  friend bool operator==(const DegradationModel&, const DegradationModel&) = default;

private:
  std::vector<Distribution> sojourns_;
  int threshold_;
};

}  // namespace fmtree::fmt
