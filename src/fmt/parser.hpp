// Text format for fault maintenance trees. Extends the static fault-tree
// grammar (ft/parser.hpp) with degradation and maintenance statements:
//
//   toplevel <name>;
//   <name> and|or <child>...;            # gates, as in the ft format
//   <name> vot <k> <child>...;
//   <name> be <dist>;                    # classic leaf (1 phase, undetectable)
//   <name> ebe phases=<N> mean=<M>|rate=<r> threshold=<K>
//          [repair_cost=<c>] [repair=<action-name>];
//   rdep <name> factor=<g> trigger=<node> targets <leaf>...;
//   inspection <name> period=<p> [offset=<o>] [cost=<c>] targets <leaf>...|all;
//   replacement <name> period=<p> [offset=<o>] [cost=<c>] targets <leaf>...|all;
//   corrective [cost=<c>] [delay=<d>] [downtime_rate=<r>] [off];
//
// For `inspection ... targets all`, "all" expands to every inspectable leaf;
// for `replacement ... targets all`, to every leaf.
//
// An ebe takes its per-phase rate either as `rate=<r>` (used directly) or as
// `mean=<M>` (the Erlang mean time to failure; rate = phases/mean). When
// both are present, `rate` wins: it is what to_text() emits, because the
// rate is the stored quantity and printing it verbatim makes
// parse→print→reparse an exact fixpoint (canonical_hash()-stable), which
// the mean→rate division is not.
#pragma once

#include <optional>
#include <string>

#include "fmt/fmtree.hpp"
#include "util/diagnostics.hpp"

namespace fmtree::fmt {

/// Parses a complete FMT. Throws ParseError / ModelError; when the input has
/// several problems the exception is a ParseErrors / ModelErrors aggregate
/// carrying one Diagnostic per problem.
FaultMaintenanceTree parse_fmt(const std::string& text);

/// Outcome of an error-recovery parse: `model` is engaged iff no
/// error-severity diagnostic was recorded.
struct FmtParseResult {
  std::optional<FaultMaintenanceTree> model;
  Diagnostics diagnostics;
};

/// Error-recovery parse: never throws on malformed input. Statements
/// synchronize at ';' boundaries and reference/cycle/usage validation runs
/// over the whole declaration set, so one pass reports every problem.
FmtParseResult parse_fmt_collect(const std::string& text);

/// Serializes back to the text format. Numbers are printed in shortest
/// exact form and iid-exponential phase models as `rate=`, so for models
/// expressible in the grammar (iid-exponential EBEs and `be` leaves)
/// parse(to_text(m)) reproduces `m` bit-for-bit — the result-cache keying
/// tests rely on this fixpoint.
std::string to_text(const FaultMaintenanceTree& model);

}  // namespace fmtree::fmt
