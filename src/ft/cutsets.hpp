// Minimal cut set computation (bottom-up MOCUS-style expansion).
#pragma once

#include <vector>

#include "ft/tree.hpp"

namespace fmtree::ft {

/// A cut set: sorted, duplicate-free basic-event indices (basic_events()
/// order) whose joint failure causes the top event.
using CutSet = std::vector<std::uint32_t>;

/// All minimal cut sets of the tree, each sorted; the list itself is sorted
/// by (size, lexicographic) for deterministic output.
///
/// Complexity is exponential in the worst case; intended for case-study
/// sized trees (tens of basic events). `limit` bounds the number of
/// intermediate sets as a safety valve (throws ModelError when exceeded).
std::vector<CutSet> minimal_cut_sets(const FaultTree& tree,
                                     std::size_t limit = 1u << 20);

/// Minimal cut sets via the BDD (Rauzy's minimal-solutions algorithm):
/// compiles the structure function and extracts minimal solutions with
/// per-node memoization. Identical output to minimal_cut_sets (same
/// ordering); usually much faster on trees with heavy sharing, and an
/// independent oracle for the MOCUS implementation.
std::vector<CutSet> minimal_cut_sets_bdd(const FaultTree& tree);

/// Rare-event approximation of top probability from cut sets:
/// sum over cut sets of the product of member probabilities.
double rare_event_probability(const std::vector<CutSet>& cuts,
                              std::span<const double> p);

/// Min-cut upper bound: 1 - prod(1 - P(cut)). Exact for disjoint cut sets.
double min_cut_upper_bound(const std::vector<CutSet>& cuts,
                           std::span<const double> p);

/// True iff `candidate` is a cut set (not necessarily minimal) of the tree.
bool is_cut_set(const FaultTree& tree, const CutSet& candidate);

/// True iff `candidate` is a *minimal* cut set: it is a cut set and removing
/// any single element stops it from being one.
bool is_minimal_cut_set(const FaultTree& tree, const CutSet& candidate);

}  // namespace fmtree::ft
