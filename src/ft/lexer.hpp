// Tokenizer shared by the fault-tree and fault-maintenance-tree text formats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/diagnostics.hpp"

namespace fmtree::ft {

enum class TokenType {
  Identifier,  // bare name or quoted string (quotes stripped)
  Number,      // double literal
  LParen,
  RParen,
  Comma,
  Semicolon,
  Equals,
  End,
};

struct Token {
  TokenType type = TokenType::End;
  std::string text;     // identifier text
  double number = 0.0;  // numeric value for Number
  std::size_t line = 1;
  std::size_t column = 1;  // 1-based column of the token's first character
};

/// Tokenizes the whole input. '#' starts a comment to end of line. Throws
/// ParseError on unterminated strings or malformed numbers. The final token
/// is always TokenType::End.
std::vector<Token> tokenize(const std::string& input);

/// Error-recovery tokenization: lexical problems are recorded in `diags`
/// (codes L101/L102) and skipped instead of thrown, so one pass surfaces
/// every bad character. Never throws on malformed input.
std::vector<Token> tokenize(const std::string& input, Diagnostics& diags);

/// Cursor over a token stream with convenience expectations.
class TokenCursor {
public:
  explicit TokenCursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& peek() const { return tokens_[pos_]; }
  const Token& next();
  bool at_end() const { return peek().type == TokenType::End; }
  std::size_t line() const { return peek().line; }
  std::size_t column() const { return peek().column; }

  /// Consumes and returns a token of the given type, or throws ParseError.
  Token expect(TokenType type, const std::string& what);
  /// Consumes the next token if it matches; returns whether it did.
  bool accept(TokenType type);
  /// Consumes an identifier equal to `word` if present.
  bool accept_word(const std::string& word);
  /// Consumes and returns an identifier, or throws.
  std::string expect_identifier(const std::string& what);
  /// Consumes and returns a number, or throws.
  double expect_number(const std::string& what);

  /// Panic-mode recovery: skips past the next ';' (or to end of input) so
  /// parsing can resume at the following statement.
  void synchronize();

private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

const char* token_type_name(TokenType t);

/// Display text of a token, for diagnostics.
std::string token_text(const Token& t);

}  // namespace fmtree::ft
