#include "ft/bdd.hpp"

#include <array>
#include <cmath>

#include "util/error.hpp"

namespace fmtree::ft {

BddManager::BddManager(std::uint32_t num_vars) : num_vars_(num_vars) {
  nodes_.push_back(Node{kTerminalVar, 0, 0});  // index 0: FALSE
  nodes_.push_back(Node{kTerminalVar, 1, 1});  // index 1: TRUE
}

std::uint32_t BddManager::level(std::uint32_t node) const noexcept {
  const std::uint32_t v = nodes_[node].var;
  return v == kTerminalVar ? num_vars_ : v;  // terminals sort below everything
}

std::uint32_t BddManager::make_node(std::uint32_t v, std::uint32_t low,
                                    std::uint32_t high) {
  if (low == high) return low;  // reduction rule
  const std::array<std::uint32_t, 3> key{v, low, high};
  auto [it, inserted] = unique_.try_emplace(key, 0);
  if (!inserted) return it->second;
  if (nodes_.size() >= max_nodes_) {
    unique_.erase(it);  // keep the unique table consistent with nodes_
    throw ResourceLimitError("BDD node count exceeds max_nodes (" +
                                 std::to_string(max_nodes_) + ")",
                             {.states = nodes_.size()});
  }
  const auto idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{v, low, high});
  it->second = idx;
  return idx;
}

BddRef BddManager::var(std::uint32_t v) {
  if (v >= num_vars_) throw DomainError("BDD variable out of range");
  return BddRef{make_node(v, 0, 1)};
}

std::uint32_t BddManager::apply_and(std::uint32_t a, std::uint32_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == 1) return b;
  if (b == 1) return a;
  if (a == b) return a;
  if (a > b) std::swap(a, b);  // canonicalize for cache hits
  const std::array<std::uint32_t, 3> key{a, b, 0};
  if (auto it = and_cache_.find(key); it != and_cache_.end()) return it->second;
  const std::uint32_t la = level(a);
  const std::uint32_t lb = level(b);
  const std::uint32_t v = std::min(la, lb);
  const std::uint32_t a0 = la == v ? nodes_[a].low : a;
  const std::uint32_t a1 = la == v ? nodes_[a].high : a;
  const std::uint32_t b0 = lb == v ? nodes_[b].low : b;
  const std::uint32_t b1 = lb == v ? nodes_[b].high : b;
  const std::uint32_t r = make_node(v, apply_and(a0, b0), apply_and(a1, b1));
  and_cache_.emplace(key, r);
  return r;
}

std::uint32_t BddManager::apply_or(std::uint32_t a, std::uint32_t b) {
  if (a == 1 || b == 1) return 1;
  if (a == 0) return b;
  if (b == 0) return a;
  if (a == b) return a;
  if (a > b) std::swap(a, b);
  const std::array<std::uint32_t, 3> key{a, b, 0};
  if (auto it = or_cache_.find(key); it != or_cache_.end()) return it->second;
  const std::uint32_t la = level(a);
  const std::uint32_t lb = level(b);
  const std::uint32_t v = std::min(la, lb);
  const std::uint32_t a0 = la == v ? nodes_[a].low : a;
  const std::uint32_t a1 = la == v ? nodes_[a].high : a;
  const std::uint32_t b0 = lb == v ? nodes_[b].low : b;
  const std::uint32_t b1 = lb == v ? nodes_[b].high : b;
  const std::uint32_t r = make_node(v, apply_or(a0, b0), apply_or(a1, b1));
  or_cache_.emplace(key, r);
  return r;
}

BddRef BddManager::bdd_and(BddRef a, BddRef b) {
  return BddRef{apply_and(a.index, b.index)};
}
BddRef BddManager::bdd_or(BddRef a, BddRef b) {
  return BddRef{apply_or(a.index, b.index)};
}

BddRef BddManager::bdd_not(BddRef a) {
  if (a.index == 0) return one();
  if (a.index == 1) return zero();
  const std::array<std::uint32_t, 3> key{a.index, 0, 0};
  if (auto it = not_cache_.find(key); it != not_cache_.end()) return BddRef{it->second};
  const Node n = nodes_[a.index];
  const std::uint32_t r =
      make_node(n.var, bdd_not(BddRef{n.low}).index, bdd_not(BddRef{n.high}).index);
  not_cache_.emplace(key, r);
  return BddRef{r};
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // f·g + ¬f·h — built from AND/OR/NOT; the caches make this efficient
  // enough for our model sizes.
  return bdd_or(bdd_and(f, g), bdd_and(bdd_not(f), h));
}

BddRef BddManager::at_least(int k, std::span<const BddRef> fs) {
  if (k <= 0) return one();
  if (static_cast<std::size_t>(k) > fs.size()) return zero();
  // DP: best[j] = BDD of ">= j of the children processed so far".
  std::vector<BddRef> best(static_cast<std::size_t>(k) + 1, zero());
  best[0] = one();
  for (BddRef f : fs) {
    for (int j = k; j >= 1; --j) {
      const auto ju = static_cast<std::size_t>(j);
      best[ju] = bdd_or(best[ju], bdd_and(best[ju - 1], f));
    }
  }
  return best[static_cast<std::size_t>(k)];
}

double BddManager::probability(BddRef f, std::span<const double> p) const {
  if (p.size() != num_vars_)
    throw DomainError("probability vector size does not match BDD variable count");
  std::unordered_map<std::uint32_t, double> memo;
  // Iterative DFS to avoid recursion-depth issues on deep BDDs.
  std::vector<std::uint32_t> stack{f.index};
  memo.emplace(0u, 0.0);
  memo.emplace(1u, 1.0);
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    if (memo.contains(n)) {
      stack.pop_back();
      continue;
    }
    const Node& node = nodes_[n];
    const bool lo_done = memo.contains(node.low);
    const bool hi_done = memo.contains(node.high);
    if (lo_done && hi_done) {
      const double pv = p[node.var];
      memo[n] = (1.0 - pv) * memo[node.low] + pv * memo[node.high];
      stack.pop_back();
    } else {
      if (!lo_done) stack.push_back(node.low);
      if (!hi_done) stack.push_back(node.high);
    }
  }
  return memo.at(f.index);
}

bool BddManager::evaluate(BddRef f, const std::vector<bool>& assignment) const {
  if (assignment.size() != num_vars_)
    throw DomainError("assignment size does not match BDD variable count");
  std::uint32_t n = f.index;
  while (nodes_[n].var != kTerminalVar)
    n = assignment[nodes_[n].var] ? nodes_[n].high : nodes_[n].low;
  return n == 1;
}

BddManager::NodeView BddManager::view(BddRef f) const {
  if (f.index >= nodes_.size()) throw DomainError("BDD reference out of range");
  const Node& n = nodes_[f.index];
  NodeView out;
  if (n.var == kTerminalVar) {
    out.is_terminal = true;
    out.terminal_value = f.index == 1;
  } else {
    out.var = n.var;
    out.low = BddRef{n.low};
    out.high = BddRef{n.high};
  }
  return out;
}

double BddManager::sat_count(BddRef f) const {
  std::vector<double> p(num_vars_, 0.5);
  return probability(f, p) * std::pow(2.0, static_cast<double>(num_vars_));
}

BddRef build_bdd(BddManager& mgr, const FaultTree& tree) {
  tree.validate();
  if (mgr.num_vars() != tree.basic_events().size())
    throw DomainError("BDD manager variable count does not match tree");
  std::vector<BddRef> memo(tree.node_count(), BddRef{0});
  for (std::uint32_t id = 0; id < tree.node_count(); ++id) {
    const NodeId node{id};
    if (tree.is_basic(node)) {
      memo[id] = mgr.var(static_cast<std::uint32_t>(tree.basic_index(node)));
      continue;
    }
    const Gate& g = tree.gate(node);
    std::vector<BddRef> kids;
    kids.reserve(g.children.size());
    for (NodeId c : g.children) kids.push_back(memo[c.value]);
    switch (g.type) {
      case GateType::And: {
        BddRef acc = mgr.one();
        for (BddRef k : kids) acc = mgr.bdd_and(acc, k);
        memo[id] = acc;
        break;
      }
      case GateType::Or: {
        BddRef acc = mgr.zero();
        for (BddRef k : kids) acc = mgr.bdd_or(acc, k);
        memo[id] = acc;
        break;
      }
      case GateType::Voting:
        memo[id] = mgr.at_least(g.k, kids);
        break;
    }
  }
  return memo[tree.top().value];
}

double top_event_probability(const FaultTree& tree, double mission_time) {
  const std::vector<double> p = tree.probabilities_at(mission_time);
  return top_event_probability(tree, p);
}

double top_event_probability(const FaultTree& tree, std::span<const double> p) {
  BddManager mgr(static_cast<std::uint32_t>(tree.basic_events().size()));
  const BddRef f = build_bdd(mgr, tree);
  return mgr.probability(f, p);
}

}  // namespace fmtree::ft
