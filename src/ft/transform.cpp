#include "ft/transform.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace fmtree::ft {

FaultTree normalize(const FaultTree& tree) {
  tree.validate();
  FaultTree out;
  // Recreate leaves first so basic-event indices are preserved.
  for (NodeId leaf : tree.basic_events()) {
    const BasicEvent& be = tree.basic(leaf);
    out.add_basic_event(be.name, be.lifetime);
  }

  std::unordered_map<std::uint32_t, NodeId> mapping;  // old id -> new id
  for (NodeId leaf : tree.basic_events())
    mapping.emplace(leaf.value, *out.find(tree.basic(leaf).name));

  // Children precede parents, so one ascending pass suffices.
  std::function<void(NodeId)> build = [&](NodeId node) {
    if (mapping.contains(node.value)) return;
    const Gate& g = tree.gate(node);
    GateType type = g.type;
    int k = g.k;
    // Voting degenerations.
    if (type == GateType::Voting) {
      if (k == 1) type = GateType::Or;
      else if (static_cast<std::size_t>(k) == g.children.size()) type = GateType::And;
    }
    std::vector<NodeId> children;
    std::unordered_set<std::uint32_t> seen;
    const std::function<void(NodeId)> absorb = [&](NodeId child) {
      const NodeId mapped = mapping.at(child.value);
      // Flatten same-type AND/OR children that the *output* tree knows about.
      if ((type == GateType::And || type == GateType::Or) && !out.is_basic(mapped) &&
          out.gate(mapped).type == type) {
        for (NodeId grandchild : out.gate(mapped).children) {
          if (seen.insert(grandchild.value).second) children.push_back(grandchild);
        }
        return;
      }
      if (seen.insert(mapped.value).second) children.push_back(mapped);
    };
    for (NodeId child : g.children) absorb(child);

    if (children.size() == 1 && type != GateType::Voting) {
      // Collapsed away entirely: alias the surviving child.
      mapping.emplace(node.value, children.front());
      return;
    }
    mapping.emplace(node.value,
                    out.add_gate(g.name, type, std::move(children), k));
  };
  for (NodeId gate : tree.gates()) build(gate);

  NodeId new_top = mapping.at(tree.top().value);
  if (out.is_basic(new_top)) {
    // Degenerate: the whole tree collapsed to one leaf; wrap it so the
    // result is still a valid tree with a gate top (keeps callers simple).
    new_top = out.add_or(tree.name(tree.top()) + "_top", {new_top});
  }
  out.set_top(new_top);

  // Gates absorbed by flattening may be orphaned in `out`; rebuild with only
  // the nodes reachable from the new top (leaves are always reachable —
  // flattening never drops a distinct leaf).
  std::vector<bool> reachable(out.node_count(), false);
  std::vector<NodeId> stack{new_top};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (reachable[n.value]) continue;
    reachable[n.value] = true;
    if (!out.is_basic(n))
      for (NodeId c : out.gate(n).children) stack.push_back(c);
  }
  FaultTree gc;
  std::unordered_map<std::uint32_t, NodeId> remap;
  for (NodeId leaf : out.basic_events()) {
    const BasicEvent& be = out.basic(leaf);
    remap.emplace(leaf.value, gc.add_basic_event(be.name, be.lifetime));
  }
  for (NodeId gate : out.gates()) {
    if (!reachable[gate.value]) continue;
    const Gate& g = out.gate(gate);
    std::vector<NodeId> children;
    children.reserve(g.children.size());
    for (NodeId c : g.children) children.push_back(remap.at(c.value));
    remap.emplace(gate.value, gc.add_gate(g.name, g.type, std::move(children), g.k));
  }
  gc.set_top(remap.at(new_top.value));
  gc.validate();
  return gc;
}

std::vector<NodeId> modules(const FaultTree& tree) {
  tree.validate();
  // Parent lists.
  std::vector<std::vector<std::uint32_t>> parents(tree.node_count());
  for (NodeId gate : tree.gates())
    for (NodeId child : tree.gate(gate).children)
      parents[child.value].push_back(gate.value);

  // Subtree (descendant) sets per gate; trees are small, so bitsets as
  // vector<bool> are fine.
  const auto descendants = [&](NodeId root) {
    std::vector<bool> in(tree.node_count(), false);
    std::vector<NodeId> stack{root};
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      if (in[n.value]) continue;
      in[n.value] = true;
      if (!tree.is_basic(n))
        for (NodeId c : tree.gate(n).children) stack.push_back(c);
    }
    return in;
  };

  std::vector<NodeId> result;
  for (NodeId gate : tree.gates()) {
    const std::vector<bool> in = descendants(gate);
    bool is_module = true;
    for (std::uint32_t node = 0; node < tree.node_count() && is_module; ++node) {
      if (!in[node] || node == gate.value) continue;
      for (std::uint32_t parent : parents[node]) {
        if (!in[parent]) {
          is_module = false;
          break;
        }
      }
    }
    if (is_module) result.push_back(gate);
  }
  std::sort(result.begin(), result.end(),
            [](NodeId a, NodeId b) { return a.value < b.value; });
  return result;
}

}  // namespace fmtree::ft
