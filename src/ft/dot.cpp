#include "ft/dot.hpp"

#include <sstream>

namespace fmtree::ft {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const FaultTree& tree, const std::string& graph_name) {
  tree.validate();
  std::ostringstream os;
  os << "digraph \"" << escape(graph_name) << "\" {\n";
  os << "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  for (std::uint32_t id = 0; id < tree.node_count(); ++id) {
    const NodeId node{id};
    if (tree.is_basic(node)) {
      const BasicEvent& be = tree.basic(node);
      os << "  n" << id << " [shape=circle, label=\"" << escape(be.name)
         << "\", tooltip=\"" << escape(be.lifetime.to_string()) << "\"];\n";
    } else {
      const Gate& g = tree.gate(node);
      std::string label;
      switch (g.type) {
        case GateType::And: label = "AND"; break;
        case GateType::Or: label = "OR"; break;
        case GateType::Voting: label = std::to_string(g.k) + "/" +
                                       std::to_string(g.children.size()); break;
      }
      const bool is_top = tree.has_top() && tree.top() == node;
      os << "  n" << id << " [shape=box, label=\"" << escape(g.name) << "\\n[" << label
         << "]\"" << (is_top ? ", style=bold" : "") << "];\n";
    }
  }
  for (NodeId gid : tree.gates()) {
    for (NodeId c : tree.gate(gid).children)
      os << "  n" << gid.value << " -> n" << c.value << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace fmtree::ft
