// Graphviz export of fault trees.
#pragma once

#include <string>

#include "ft/tree.hpp"

namespace fmtree::ft {

/// Renders the tree as a Graphviz digraph: gates as shaped nodes (AND/OR/
/// VOT labels), basic events as circles annotated with their distribution.
std::string to_dot(const FaultTree& tree, const std::string& graph_name = "fault_tree");

}  // namespace fmtree::ft
