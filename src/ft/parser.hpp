// Text format for static fault trees (Galileo-inspired).
//
// Grammar (statements in any order, ';'-terminated, '#' comments):
//
//   toplevel <name>;
//   <name> and <child> <child> ...;
//   <name> or  <child> <child> ...;
//   <name> vot <k> <child> <child> ...;
//   <name> be <dist>;
//
// where <dist> is one of
//   exp(rate) | erlang(k, rate) | erlang_mean(k, mean) | weibull(shape, scale)
//   | lognormal(mu, sigma) | uniform(lo, hi) | det(value) | never
//
// Names may be bare identifiers or double-quoted strings. Forward references
// are allowed; cycles are rejected.
#pragma once

#include <string>

#include "ft/lexer.hpp"
#include "ft/tree.hpp"

namespace fmtree::ft {

/// Parses a complete fault tree from text. Throws ParseError / ModelError.
FaultTree parse_fault_tree(const std::string& text);

/// Parses one distribution expression, e.g. "erlang(3, 0.5)". Shared with
/// the FMT format.
Distribution parse_distribution(TokenCursor& cur);

/// Serializes a tree back to the text format (round-trips with the parser,
/// modulo formatting).
std::string to_text(const FaultTree& tree);

}  // namespace fmtree::ft
