// Text format for static fault trees (Galileo-inspired).
//
// Grammar (statements in any order, ';'-terminated, '#' comments):
//
//   toplevel <name>;
//   <name> and <child> <child> ...;
//   <name> or  <child> <child> ...;
//   <name> vot <k> <child> <child> ...;
//   <name> be <dist>;
//
// where <dist> is one of
//   exp(rate) | erlang(k, rate) | erlang_mean(k, mean) | weibull(shape, scale)
//   | lognormal(mu, sigma) | uniform(lo, hi) | det(value) | never
//
// Names may be bare identifiers or double-quoted strings. Forward references
// are allowed; cycles are rejected.
#pragma once

#include <optional>
#include <string>

#include "ft/lexer.hpp"
#include "ft/tree.hpp"
#include "util/diagnostics.hpp"

namespace fmtree::ft {

/// Parses a complete fault tree from text. Throws ParseError / ModelError.
/// When the input has several problems, the exception is a ParseErrors /
/// ModelErrors aggregate carrying one Diagnostic per problem.
FaultTree parse_fault_tree(const std::string& text);

/// Outcome of an error-recovery parse: `tree` is engaged iff no
/// error-severity diagnostic was recorded.
struct FtParseResult {
  std::optional<FaultTree> tree;
  Diagnostics diagnostics;
};

/// Error-recovery parse: never throws on malformed input. The lexer skips
/// bad characters, the statement loop synchronizes at ';' boundaries, and
/// reference/cycle/reachability validation reports the complete problem
/// list — so one pass surfaces every diagnostic the input deserves.
FtParseResult parse_fault_tree_collect(const std::string& text);

/// Parses one distribution expression, e.g. "erlang(3, 0.5)". Shared with
/// the FMT format.
Distribution parse_distribution(TokenCursor& cur);

/// Serializes a tree back to the text format (round-trips with the parser,
/// modulo formatting).
std::string to_text(const FaultTree& tree);

}  // namespace fmtree::ft
