// Reduced ordered binary decision diagrams for exact static fault-tree
// analysis.
//
// Variables are the tree's basic events in basic_events() order (index i is
// variable i). The manager owns all nodes; BddRef values are plain indices
// and remain valid for the manager's lifetime.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "ft/tree.hpp"

namespace fmtree::ft {

/// Handle to a BDD node inside a BddManager.
struct BddRef {
  std::uint32_t index = 0;
  friend bool operator==(BddRef, BddRef) = default;
};

class BddManager {
public:
  explicit BddManager(std::uint32_t num_vars);

  BddRef zero() const noexcept { return BddRef{0}; }
  BddRef one() const noexcept { return BddRef{1}; }
  /// The single-variable function x_var.
  BddRef var(std::uint32_t v);

  BddRef bdd_and(BddRef a, BddRef b);
  BddRef bdd_or(BddRef a, BddRef b);
  BddRef bdd_not(BddRef a);
  /// if-then-else(f, g, h) = f·g + ¬f·h.
  BddRef ite(BddRef f, BddRef g, BddRef h);
  /// "At least k of fs" as a BDD.
  BddRef at_least(int k, std::span<const BddRef> fs);

  /// P(f = 1) when variable i is true independently with probability p[i].
  double probability(BddRef f, std::span<const double> p) const;

  /// Evaluates f under a concrete assignment.
  bool evaluate(BddRef f, const std::vector<bool>& assignment) const;

  /// Number of satisfying assignments over all num_vars variables.
  double sat_count(BddRef f) const;

  /// Count of live nodes (including the two terminals).
  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Caps diagram growth: once node_count() would exceed `max_nodes`, node
  /// creation throws ResourceLimitError carrying the node count reached.
  /// The default (2^22 nodes ≈ 64 MiB) is far above any tree analysed in
  /// practice; lower it to bound exact analysis on adversarial inputs.
  void set_max_nodes(std::size_t max_nodes) noexcept { max_nodes_ = max_nodes; }
  std::size_t max_nodes() const noexcept { return max_nodes_; }

  /// Structural view of a node, for algorithms walking the diagram
  /// (e.g. minimal-solution extraction).
  struct NodeView {
    bool is_terminal = false;
    bool terminal_value = false;  ///< meaningful when is_terminal
    std::uint32_t var = 0;        ///< meaningful when !is_terminal
    BddRef low;
    BddRef high;
  };
  NodeView view(BddRef f) const;

  std::uint32_t num_vars() const noexcept { return num_vars_; }

private:
  struct Node {
    std::uint32_t var;  // kTerminalVar for terminals
    std::uint32_t low;
    std::uint32_t high;
  };

  static constexpr std::uint32_t kTerminalVar = 0xffffffffu;

  struct TripleHash {
    std::size_t operator()(const std::array<std::uint32_t, 3>& t) const noexcept {
      std::size_t h = 1469598103934665603ULL;
      for (std::uint32_t x : t) {
        h ^= x;
        h *= 1099511628211ULL;
      }
      return h;
    }
  };

  std::uint32_t make_node(std::uint32_t v, std::uint32_t low, std::uint32_t high);
  std::uint32_t apply_and(std::uint32_t a, std::uint32_t b);
  std::uint32_t apply_or(std::uint32_t a, std::uint32_t b);
  std::uint32_t level(std::uint32_t node) const noexcept;

  std::uint32_t num_vars_;
  std::size_t max_nodes_ = std::size_t{1} << 22;
  std::vector<Node> nodes_;
  std::unordered_map<std::array<std::uint32_t, 3>, std::uint32_t, TripleHash> unique_;
  std::unordered_map<std::array<std::uint32_t, 3>, std::uint32_t, TripleHash> and_cache_;
  std::unordered_map<std::array<std::uint32_t, 3>, std::uint32_t, TripleHash> or_cache_;
  std::unordered_map<std::array<std::uint32_t, 3>, std::uint32_t, TripleHash> not_cache_;
};

/// Compiles the tree's structure function into a BDD. The manager must have
/// exactly tree.basic_events().size() variables.
BddRef build_bdd(BddManager& mgr, const FaultTree& tree);

/// Exact top-event probability at mission time t via BDD.
double top_event_probability(const FaultTree& tree, double mission_time);

/// Exact top-event probability for explicit basic-event probabilities.
double top_event_probability(const FaultTree& tree, std::span<const double> p);

}  // namespace fmtree::ft
