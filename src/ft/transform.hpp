// Structural transformations of static fault trees.
#pragma once

#include <vector>

#include "ft/tree.hpp"

namespace fmtree::ft {

/// Returns a semantically equivalent tree with
///  * nested same-type AND/OR gates flattened into their parent,
///  * duplicate children of AND/OR gates removed,
///  * single-child AND/OR gates (and 1-of-1 voting) collapsed away,
///  * voting gates rewritten to AND (k == n) or OR (k == 1).
/// Basic events keep their order, so probability vectors remain compatible.
FaultTree normalize(const FaultTree& tree);

/// Gates that are *modules*: the gate is the single entry point to its
/// subtree (no node below it is referenced from outside). Modules can be
/// analysed independently and substituted by a super-event — the classic
/// fault-tree decomposition. The top gate is always a module. Returned in
/// ascending node-id order.
std::vector<NodeId> modules(const FaultTree& tree);

}  // namespace fmtree::ft
