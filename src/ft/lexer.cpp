#include "ft/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace fmtree::ft {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '.' ||
         c == '-';
}

bool is_number_start(char c, char next) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0 ||
         (c == '.' && std::isdigit(static_cast<unsigned char>(next)) != 0);
}

/// Shared scanner. With `diags == nullptr` lexical errors throw ParseError
/// (the strict historical behaviour); with a sink they are recorded and
/// skipped so the whole input is scanned in one pass.
std::vector<Token> tokenize_impl(const std::string& input, Diagnostics* diags) {
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t i = 0;
  std::size_t line_start = 0;  // index of the first character of `line`
  const std::size_t n = input.size();
  const auto column = [&](std::size_t at) { return at - line_start + 1; };
  const auto fail = [&](std::size_t at, std::string code, const std::string& msg,
                        const std::string& token, const std::string& hint) {
    if (diags == nullptr)
      throw ParseError(line, column(at), token, msg, std::move(code), hint);
    diags->error(std::move(code), {line, column(at)}, msg, hint, token);
  };
  while (i < n) {
    const char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '"') {
      std::string text;
      const std::size_t start = i;
      ++i;
      while (i < n && input[i] != '"') {
        if (input[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        text += input[i++];
      }
      if (i >= n) {
        fail(start, "L102", "unterminated string literal", {},
             "close the string with '\"'");
        // Recovery: treat the rest of the input as the string's contents.
        out.push_back(Token{TokenType::Identifier, std::move(text), 0.0, line,
                            column(start)});
        break;
      }
      ++i;  // closing quote
      out.push_back(
          Token{TokenType::Identifier, std::move(text), 0.0, line, column(start)});
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < n && is_ident_char(input[i])) ++i;
      out.push_back(Token{TokenType::Identifier, input.substr(start, i - start), 0.0,
                          line, column(start)});
      continue;
    }
    const char next = i + 1 < n ? input[i + 1] : '\0';
    if (is_number_start(c, next)) {
      char* end = nullptr;
      const double value = std::strtod(input.c_str() + i, &end);
      if (end == input.c_str() + i) {
        fail(i, "L103", "malformed number", std::string(1, c), {});
        ++i;  // recovery: skip the character
        continue;
      }
      const std::size_t start = i;
      i = static_cast<std::size_t>(end - input.c_str());
      out.push_back(Token{TokenType::Number, {}, value, line, column(start)});
      continue;
    }
    switch (c) {
      case '(':
        out.push_back(Token{TokenType::LParen, "(", 0.0, line, column(i)});
        break;
      case ')':
        out.push_back(Token{TokenType::RParen, ")", 0.0, line, column(i)});
        break;
      case ',':
        out.push_back(Token{TokenType::Comma, ",", 0.0, line, column(i)});
        break;
      case ';':
        out.push_back(Token{TokenType::Semicolon, ";", 0.0, line, column(i)});
        break;
      case '=':
        out.push_back(Token{TokenType::Equals, "=", 0.0, line, column(i)});
        break;
      default:
        fail(i, "L101", std::string("unexpected character '") + c + "'",
             std::string(1, c),
             "identifiers use letters, digits, '_', '.', '-'; strings use double "
             "quotes");
        // Recovery: drop the character and continue scanning.
        break;
    }
    ++i;
  }
  out.push_back(Token{TokenType::End, {}, 0.0, line,
                      i >= line_start ? i - line_start + 1 : 1});
  return out;
}

}  // namespace

std::vector<Token> tokenize(const std::string& input) {
  return tokenize_impl(input, nullptr);
}

std::vector<Token> tokenize(const std::string& input, Diagnostics& diags) {
  return tokenize_impl(input, &diags);
}

const Token& TokenCursor::next() {
  const Token& t = tokens_[pos_];
  if (t.type != TokenType::End) ++pos_;
  return t;
}

std::string token_text(const Token& t) {
  if (t.type == TokenType::Number) return std::to_string(t.number);
  return t.text.empty() ? token_type_name(t.type) : t.text;
}

Token TokenCursor::expect(TokenType type, const std::string& what) {
  const Token& t = peek();
  if (t.type != type)
    throw ParseError(t.line, t.column, token_text(t),
                     "expected " + what + ", found '" + token_text(t) + "'", "P101");
  return next();
}

bool TokenCursor::accept(TokenType type) {
  if (peek().type != type) return false;
  next();
  return true;
}

bool TokenCursor::accept_word(const std::string& word) {
  if (peek().type != TokenType::Identifier || peek().text != word) return false;
  next();
  return true;
}

std::string TokenCursor::expect_identifier(const std::string& what) {
  return expect(TokenType::Identifier, what).text;
}

double TokenCursor::expect_number(const std::string& what) {
  return expect(TokenType::Number, what).number;
}

void TokenCursor::synchronize() {
  while (!at_end()) {
    if (next().type == TokenType::Semicolon) return;
  }
}

const char* token_type_name(TokenType t) {
  switch (t) {
    case TokenType::Identifier: return "identifier";
    case TokenType::Number: return "number";
    case TokenType::LParen: return "'('";
    case TokenType::RParen: return "')'";
    case TokenType::Comma: return "','";
    case TokenType::Semicolon: return "';'";
    case TokenType::Equals: return "'='";
    case TokenType::End: return "end of input";
  }
  return "?";
}

}  // namespace fmtree::ft
