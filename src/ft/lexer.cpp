#include "ft/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace fmtree::ft {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '.' ||
         c == '-';
}

bool is_number_start(char c, char next) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0 ||
         (c == '.' && std::isdigit(static_cast<unsigned char>(next)) != 0);
}

}  // namespace

std::vector<Token> tokenize(const std::string& input) {
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '"') {
      std::string text;
      ++i;
      while (i < n && input[i] != '"') {
        if (input[i] == '\n') ++line;
        text += input[i++];
      }
      if (i >= n) throw ParseError(line, "unterminated string literal");
      ++i;  // closing quote
      out.push_back(Token{TokenType::Identifier, std::move(text), 0.0, line});
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < n && is_ident_char(input[i])) ++i;
      out.push_back(
          Token{TokenType::Identifier, input.substr(start, i - start), 0.0, line});
      continue;
    }
    const char next = i + 1 < n ? input[i + 1] : '\0';
    if (is_number_start(c, next)) {
      char* end = nullptr;
      const double value = std::strtod(input.c_str() + i, &end);
      if (end == input.c_str() + i) throw ParseError(line, "malformed number");
      i = static_cast<std::size_t>(end - input.c_str());
      out.push_back(Token{TokenType::Number, {}, value, line});
      continue;
    }
    switch (c) {
      case '(':
        out.push_back(Token{TokenType::LParen, "(", 0.0, line});
        break;
      case ')':
        out.push_back(Token{TokenType::RParen, ")", 0.0, line});
        break;
      case ',':
        out.push_back(Token{TokenType::Comma, ",", 0.0, line});
        break;
      case ';':
        out.push_back(Token{TokenType::Semicolon, ";", 0.0, line});
        break;
      case '=':
        out.push_back(Token{TokenType::Equals, "=", 0.0, line});
        break;
      default:
        throw ParseError(line, std::string("unexpected character '") + c + "'");
    }
    ++i;
  }
  out.push_back(Token{TokenType::End, {}, 0.0, line});
  return out;
}

const Token& TokenCursor::next() {
  const Token& t = tokens_[pos_];
  if (t.type != TokenType::End) ++pos_;
  return t;
}

Token TokenCursor::expect(TokenType type, const std::string& what) {
  const Token& t = peek();
  if (t.type != type)
    throw ParseError(t.line, "expected " + what + ", found '" +
                                 (t.type == TokenType::Number
                                      ? std::to_string(t.number)
                                      : (t.text.empty() ? token_type_name(t.type) : t.text)) +
                                 "'");
  return next();
}

bool TokenCursor::accept(TokenType type) {
  if (peek().type != type) return false;
  next();
  return true;
}

bool TokenCursor::accept_word(const std::string& word) {
  if (peek().type != TokenType::Identifier || peek().text != word) return false;
  next();
  return true;
}

std::string TokenCursor::expect_identifier(const std::string& what) {
  return expect(TokenType::Identifier, what).text;
}

double TokenCursor::expect_number(const std::string& what) {
  return expect(TokenType::Number, what).number;
}

const char* token_type_name(TokenType t) {
  switch (t) {
    case TokenType::Identifier: return "identifier";
    case TokenType::Number: return "number";
    case TokenType::LParen: return "'('";
    case TokenType::RParen: return "')'";
    case TokenType::Comma: return "','";
    case TokenType::Semicolon: return "';'";
    case TokenType::Equals: return "'='";
    case TokenType::End: return "end of input";
  }
  return "?";
}

}  // namespace fmtree::ft
