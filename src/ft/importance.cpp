#include "ft/importance.hpp"

#include "ft/bdd.hpp"

namespace fmtree::ft {

std::vector<Importance> importance_measures(const FaultTree& tree,
                                            double mission_time) {
  BddManager mgr(static_cast<std::uint32_t>(tree.basic_events().size()));
  const BddRef f = build_bdd(mgr, tree);
  std::vector<double> p = tree.probabilities_at(mission_time);
  const double p_top = mgr.probability(f, p);

  std::vector<Importance> out;
  out.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    Importance imp;
    imp.name = tree.basic(tree.basic_events()[i]).name;
    imp.probability = p[i];
    const double saved = p[i];
    // Probability is multilinear in each p_i, so conditioning equals
    // evaluating with p_i pinned to 1 or 0.
    p[i] = 1.0;
    const double p_up = mgr.probability(f, p);
    p[i] = 0.0;
    const double p_down = mgr.probability(f, p);
    p[i] = saved;
    imp.birnbaum = p_up - p_down;
    imp.criticality = p_top > 0 ? imp.birnbaum * saved / p_top : 0.0;
    imp.fussell_vesely = p_top > 0 ? (p_top - p_down) / p_top : 0.0;
    out.push_back(std::move(imp));
  }
  return out;
}

}  // namespace fmtree::ft
