#include "ft/parser.hpp"

#include <cmath>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <variant>

#include "util/error.hpp"

namespace fmtree::ft {

Distribution parse_distribution(TokenCursor& cur) {
  const std::size_t line = cur.line();
  const std::string kind = cur.expect_identifier("distribution name");
  if (kind == "never") return Distribution::never();

  cur.expect(TokenType::LParen, "'(' after distribution name");
  std::vector<double> args;
  if (cur.peek().type != TokenType::RParen) {
    args.push_back(cur.expect_number("distribution parameter"));
    while (cur.accept(TokenType::Comma))
      args.push_back(cur.expect_number("distribution parameter"));
  }
  cur.expect(TokenType::RParen, "')' after distribution parameters");

  auto arity = [&](std::size_t n) {
    if (args.size() != n)
      throw ParseError(line, "distribution '" + kind + "' takes " + std::to_string(n) +
                                 " parameter(s), got " + std::to_string(args.size()));
  };
  try {
    if (kind == "exp") {
      arity(1);
      return Distribution::exponential(args[0]);
    }
    if (kind == "erlang") {
      arity(2);
      const double k = args[0];
      if (k != std::floor(k)) throw ParseError(line, "erlang shape must be an integer");
      return Distribution::erlang(static_cast<int>(k), args[1]);
    }
    if (kind == "erlang_mean") {
      arity(2);
      const double k = args[0];
      if (k != std::floor(k))
        throw ParseError(line, "erlang_mean shape must be an integer");
      return Distribution::erlang_mean(static_cast<int>(k), args[1]);
    }
    if (kind == "weibull") {
      arity(2);
      return Distribution::weibull(args[0], args[1]);
    }
    if (kind == "lognormal") {
      arity(2);
      return Distribution::lognormal(args[0], args[1]);
    }
    if (kind == "uniform") {
      arity(2);
      return Distribution::uniform(args[0], args[1]);
    }
    if (kind == "det") {
      arity(1);
      return Distribution::deterministic(args[0]);
    }
  } catch (const DomainError& e) {
    throw ParseError(line, e.what());
  }
  throw ParseError(line, "unknown distribution '" + kind + "'");
}

namespace {

struct GateDecl {
  GateType type;
  int k = 0;
  std::vector<std::string> children;
  std::size_t line = 0;
};

struct BeDecl {
  Distribution dist;
  std::size_t line = 0;
};

struct Declarations {
  std::unordered_map<std::string, GateDecl> gates;
  std::unordered_map<std::string, BeDecl> basics;
  std::string top;
  std::size_t top_line = 0;
};

Declarations collect(TokenCursor& cur) {
  Declarations decls;
  while (!cur.at_end()) {
    const std::size_t line = cur.line();
    const std::string head = cur.expect_identifier("statement");
    if (head == "toplevel") {
      if (!decls.top.empty()) throw ParseError(line, "duplicate toplevel declaration");
      decls.top = cur.expect_identifier("top event name");
      decls.top_line = line;
      cur.expect(TokenType::Semicolon, "';'");
      continue;
    }
    const std::string& name = head;
    if (decls.gates.contains(name) || decls.basics.contains(name))
      throw ParseError(line, "duplicate definition of '" + name + "'");
    const std::string op = cur.expect_identifier("gate type or 'be'");
    if (op == "be") {
      Distribution d = parse_distribution(cur);
      cur.expect(TokenType::Semicolon, "';'");
      decls.basics.emplace(name, BeDecl{std::move(d), line});
      continue;
    }
    GateDecl g;
    g.line = line;
    if (op == "and") {
      g.type = GateType::And;
    } else if (op == "or") {
      g.type = GateType::Or;
    } else if (op == "vot") {
      g.type = GateType::Voting;
      const double k = cur.expect_number("voting threshold k");
      if (k != std::floor(k) || k < 1)
        throw ParseError(line, "voting threshold must be a positive integer");
      g.k = static_cast<int>(k);
    } else {
      throw ParseError(line, "unknown statement '" + op + "' (expected and/or/vot/be)");
    }
    while (cur.peek().type == TokenType::Identifier)
      g.children.push_back(cur.next().text);
    if (g.children.empty()) throw ParseError(line, "gate '" + name + "' has no children");
    cur.expect(TokenType::Semicolon, "';'");
    decls.gates.emplace(name, std::move(g));
  }
  if (decls.top.empty()) throw ParseError(cur.line(), "missing 'toplevel' declaration");
  return decls;
}

}  // namespace

FaultTree parse_fault_tree(const std::string& text) {
  TokenCursor cur(tokenize(text));
  const Declarations decls = collect(cur);

  FaultTree tree;
  std::unordered_map<std::string, NodeId> built;
  std::unordered_set<std::string> building;  // cycle detection

  std::function<NodeId(const std::string&)> build = [&](const std::string& name) {
    if (auto it = built.find(name); it != built.end()) return it->second;
    if (building.contains(name))
      throw ModelError("cycle involving node '" + name + "'");
    if (auto be = decls.basics.find(name); be != decls.basics.end()) {
      const NodeId id = tree.add_basic_event(name, be->second.dist);
      built.emplace(name, id);
      return id;
    }
    auto gi = decls.gates.find(name);
    if (gi == decls.gates.end())
      throw ModelError("node '" + name + "' referenced but never defined");
    building.insert(name);
    std::vector<NodeId> children;
    children.reserve(gi->second.children.size());
    for (const std::string& child : gi->second.children) children.push_back(build(child));
    building.erase(name);
    const NodeId id = tree.add_gate(name, gi->second.type, std::move(children),
                                    gi->second.k);
    built.emplace(name, id);
    return id;
  };

  tree.set_top(build(decls.top));

  // Reject orphans: every declared node must end up in the tree.
  for (const auto& [name, decl] : decls.gates)
    if (!built.contains(name))
      throw ModelError("gate '" + name + "' is not reachable from the top event");
  for (const auto& [name, decl] : decls.basics)
    if (!built.contains(name))
      throw ModelError("basic event '" + name + "' is not reachable from the top event");

  tree.validate();
  return tree;
}

namespace {

std::string quote_if_needed(const std::string& name) {
  for (char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_' ||
                    c == '.' || c == '-';
    if (!ok) return '"' + name + '"';
  }
  if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0])) != 0)
    return '"' + name + '"';
  return name;
}

std::string dist_to_text(const Distribution& d) {
  std::ostringstream os;
  std::visit(
      [&os](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          os << "exp(" << x.rate << ")";
        } else if constexpr (std::is_same_v<T, Erlang>) {
          os << "erlang(" << x.shape << ", " << x.rate << ")";
        } else if constexpr (std::is_same_v<T, Weibull>) {
          os << "weibull(" << x.shape << ", " << x.scale << ")";
        } else if constexpr (std::is_same_v<T, Lognormal>) {
          os << "lognormal(" << x.mu << ", " << x.sigma << ")";
        } else if constexpr (std::is_same_v<T, UniformDist>) {
          os << "uniform(" << x.lo << ", " << x.hi << ")";
        } else {
          static_assert(std::is_same_v<T, Deterministic>);
          if (std::isinf(x.value))
            os << "never";
          else
            os << "det(" << x.value << ")";
        }
      },
      d.as_variant());
  return os.str();
}

}  // namespace

std::string to_text(const FaultTree& tree) {
  tree.validate();
  std::ostringstream os;
  os << "toplevel " << quote_if_needed(tree.name(tree.top())) << ";\n";
  for (NodeId id : tree.gates()) {
    const Gate& g = tree.gate(id);
    os << quote_if_needed(g.name) << ' ';
    switch (g.type) {
      case GateType::And: os << "and"; break;
      case GateType::Or: os << "or"; break;
      case GateType::Voting: os << "vot " << g.k; break;
    }
    for (NodeId c : g.children) os << ' ' << quote_if_needed(tree.name(c));
    os << ";\n";
  }
  for (NodeId id : tree.basic_events()) {
    const BasicEvent& be = tree.basic(id);
    os << quote_if_needed(be.name) << " be " << dist_to_text(be.lifetime) << ";\n";
  }
  return os.str();
}

}  // namespace fmtree::ft
