#include "ft/parser.hpp"

#include <cmath>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <variant>

#include "util/error.hpp"
#include "util/format.hpp"

namespace fmtree::ft {

Distribution parse_distribution(TokenCursor& cur) {
  const std::size_t line = cur.line();
  const std::string kind = cur.expect_identifier("distribution name");
  if (kind == "never") return Distribution::never();

  cur.expect(TokenType::LParen, "'(' after distribution name");
  std::vector<double> args;
  if (cur.peek().type != TokenType::RParen) {
    args.push_back(cur.expect_number("distribution parameter"));
    while (cur.accept(TokenType::Comma))
      args.push_back(cur.expect_number("distribution parameter"));
  }
  cur.expect(TokenType::RParen, "')' after distribution parameters");

  auto arity = [&](std::size_t n) {
    if (args.size() != n)
      throw ParseError(line, "distribution '" + kind + "' takes " + std::to_string(n) +
                                 " parameter(s), got " + std::to_string(args.size()));
  };
  // Shape parameters are cast to int; reject anything the cast cannot
  // represent (casting a non-finite or out-of-range double is UB).
  auto int_shape = [&](double k, const char* which) {
    if (!std::isfinite(k) || k != std::floor(k) || k < 1 || k > 1e9)
      throw ParseError(line,
                       std::string(which) + " shape must be an integer in [1, 1e9]");
    return static_cast<int>(k);
  };
  try {
    if (kind == "exp") {
      arity(1);
      return Distribution::exponential(args[0]);
    }
    if (kind == "erlang") {
      arity(2);
      return Distribution::erlang(int_shape(args[0], "erlang"), args[1]);
    }
    if (kind == "erlang_mean") {
      arity(2);
      return Distribution::erlang_mean(int_shape(args[0], "erlang_mean"), args[1]);
    }
    if (kind == "weibull") {
      arity(2);
      return Distribution::weibull(args[0], args[1]);
    }
    if (kind == "lognormal") {
      arity(2);
      return Distribution::lognormal(args[0], args[1]);
    }
    if (kind == "uniform") {
      arity(2);
      return Distribution::uniform(args[0], args[1]);
    }
    if (kind == "det") {
      arity(1);
      return Distribution::deterministic(args[0]);
    }
  } catch (const DomainError& e) {
    throw ParseError(line, e.what());
  }
  throw ParseError(line, "unknown distribution '" + kind + "'");
}

namespace {

struct GateDecl {
  GateType type;
  int k = 0;
  std::vector<std::string> children;
  std::size_t line = 0;
  std::size_t column = 0;
};

struct BeDecl {
  Distribution dist;
  std::size_t line = 0;
};

struct Declarations {
  std::unordered_map<std::string, GateDecl> gates;
  std::unordered_map<std::string, BeDecl> basics;
  std::string top;
  std::size_t top_line = 0;
};

/// Parses one ';'-terminated statement into `decls`. Throws ParseError on
/// any syntax problem; the caller decides whether to abort or synchronize.
void parse_statement(TokenCursor& cur, Declarations& decls) {
  const std::size_t line = cur.line();
  const std::size_t column = cur.column();
  const std::string head = cur.expect_identifier("statement");
  if (head == "toplevel") {
    if (!decls.top.empty())
      throw ParseError(line, column, head, "duplicate toplevel declaration", "P102",
                       "a model has exactly one 'toplevel <name>;' statement");
    decls.top = cur.expect_identifier("top event name");
    decls.top_line = line;
    cur.expect(TokenType::Semicolon, "';'");
    return;
  }
  const std::string& name = head;
  if (decls.gates.contains(name) || decls.basics.contains(name))
    throw ParseError(line, column, name, "duplicate definition of '" + name + "'",
                     "P102", "every node is declared exactly once");
  const std::string op = cur.expect_identifier("gate type or 'be'");
  if (op == "be") {
    Distribution d = parse_distribution(cur);
    cur.expect(TokenType::Semicolon, "';'");
    decls.basics.emplace(name, BeDecl{std::move(d), line});
    return;
  }
  GateDecl g;
  g.line = line;
  g.column = column;
  if (op == "and") {
    g.type = GateType::And;
  } else if (op == "or") {
    g.type = GateType::Or;
  } else if (op == "vot") {
    g.type = GateType::Voting;
    const double k = cur.expect_number("voting threshold k");
    if (k != std::floor(k) || k < 1)
      throw ParseError(line, column, name, "voting threshold must be a positive integer",
                       "P201");
    g.k = static_cast<int>(k);
  } else {
    throw ParseError(line, column, op,
                     "unknown statement '" + op + "' (expected and/or/vot/be)", "P104");
  }
  while (cur.peek().type == TokenType::Identifier)
    g.children.push_back(cur.next().text);
  if (g.children.empty())
    throw ParseError(line, column, name, "gate '" + name + "' has no children", "P201",
                     "list at least one child after the gate type");
  cur.expect(TokenType::Semicolon, "';'");
  decls.gates.emplace(name, std::move(g));
}

Declarations collect(TokenCursor& cur, Diagnostics& diags) {
  Declarations decls;
  while (!cur.at_end()) {
    try {
      parse_statement(cur, decls);
    } catch (const ParseError& e) {
      diags.add(diagnostic_from(e));
      cur.synchronize();
    } catch (const Error& e) {
      // Statement helpers may surface domain errors from model construction;
      // keep the collect contract (diagnostics, never exceptions).
      diags.add(diagnostic_from(e, "P199"));
      cur.synchronize();
    }
  }
  if (decls.top.empty())
    diags.error("P103", {cur.line(), cur.column()}, "missing 'toplevel' declaration",
                "declare the top event with 'toplevel <name>;'");
  return decls;
}

/// Reference / cycle / reachability validation over the declaration graph,
/// reporting every problem instead of the first. Runs only on syntactically
/// clean inputs, so the declaration set is trustworthy.
void validate_declarations(const Declarations& decls, Diagnostics& diags) {
  const auto declared = [&](const std::string& name) {
    return decls.gates.contains(name) || decls.basics.contains(name);
  };
  std::unordered_set<std::string> reported;
  const auto report_undefined = [&](const std::string& name, std::size_t line,
                                    std::size_t column) {
    if (!reported.insert(name).second) return;
    diags.error("M101", {line, column},
                "node '" + name + "' referenced but never defined",
                "declare it as a gate or with '" + name + " be <dist>;'", name);
  };
  if (!decls.top.empty() && !declared(decls.top))
    report_undefined(decls.top, decls.top_line, 0);
  for (const auto& [name, g] : decls.gates)
    for (const std::string& child : g.children)
      if (!declared(child)) report_undefined(child, g.line, g.column);

  // Cycle detection: iterative colored DFS over the gate graph.
  enum class Color { White, Grey, Black };
  std::unordered_map<std::string, Color> color;
  for (const auto& [name, g] : decls.gates) color.emplace(name, Color::White);
  for (const auto& [start, g0] : decls.gates) {
    if (color[start] != Color::White) continue;
    // Stack of (gate name, next child index to visit).
    std::vector<std::pair<const std::string*, std::size_t>> stack;
    stack.emplace_back(&start, 0);
    color[start] = Color::Grey;
    while (!stack.empty()) {
      auto& [name, next_child] = stack.back();
      const GateDecl& g = decls.gates.at(*name);
      if (next_child >= g.children.size()) {
        color[*name] = Color::Black;
        stack.pop_back();
        continue;
      }
      const std::string& child = g.children[next_child++];
      const auto it = decls.gates.find(child);
      if (it == decls.gates.end()) continue;  // basic event or undefined
      Color& c = color[child];
      if (c == Color::Grey) {
        diags.error("M102", {it->second.line, it->second.column},
                    "cycle involving node '" + child + "'",
                    "fault trees are acyclic; remove the back reference", child);
        continue;
      }
      if (c == Color::White) {
        c = Color::Grey;
        stack.emplace_back(&it->first, 0);
      }
    }
  }
  if (diags.has_errors()) return;  // reachability would only cascade

  // Orphans: every declared node must be reachable from the top event.
  std::unordered_set<std::string> reachable;
  std::vector<const std::string*> stack{&decls.top};
  while (!stack.empty()) {
    const std::string& name = *stack.back();
    stack.pop_back();
    if (!reachable.insert(name).second) continue;
    if (const auto it = decls.gates.find(name); it != decls.gates.end())
      for (const std::string& child : it->second.children) stack.push_back(&child);
  }
  for (const auto& [name, g] : decls.gates)
    if (!reachable.contains(name))
      diags.error("M103", {g.line, g.column},
                  "gate '" + name + "' is not reachable from the top event",
                  "wire it into the tree or delete it", name);
  for (const auto& [name, b] : decls.basics)
    if (!reachable.contains(name))
      diags.error("M103", {b.line, 0},
                  "basic event '" + name + "' is not reachable from the top event",
                  "wire it into the tree or delete it", name);
}

FaultTree build_tree(const Declarations& decls) {
  FaultTree tree;
  std::unordered_map<std::string, NodeId> built;
  std::unordered_set<std::string> building;  // cycle detection

  std::function<NodeId(const std::string&)> build = [&](const std::string& name) {
    if (auto it = built.find(name); it != built.end()) return it->second;
    if (building.contains(name))
      throw ModelError("cycle involving node '" + name + "'");
    if (auto be = decls.basics.find(name); be != decls.basics.end()) {
      const NodeId id = tree.add_basic_event(name, be->second.dist);
      built.emplace(name, id);
      return id;
    }
    auto gi = decls.gates.find(name);
    if (gi == decls.gates.end())
      throw ModelError("node '" + name + "' referenced but never defined");
    building.insert(name);
    std::vector<NodeId> children;
    children.reserve(gi->second.children.size());
    for (const std::string& child : gi->second.children) children.push_back(build(child));
    building.erase(name);
    const NodeId id = tree.add_gate(name, gi->second.type, std::move(children),
                                    gi->second.k);
    built.emplace(name, id);
    return id;
  };

  tree.set_top(build(decls.top));
  tree.validate();
  return tree;
}

}  // namespace

FtParseResult parse_fault_tree_collect(const std::string& text) {
  FtParseResult result;
  TokenCursor cur(tokenize(text, result.diagnostics));
  const Declarations decls = collect(cur, result.diagnostics);
  if (result.diagnostics.has_errors()) return result;
  validate_declarations(decls, result.diagnostics);
  if (result.diagnostics.has_errors()) return result;
  try {
    result.tree = build_tree(decls);
  } catch (const ModelError& e) {
    // validate_declarations covers the builder's failure modes, but keep the
    // construction errors typed rather than escaping should they diverge.
    result.diagnostics.add(diagnostic_from(e, "M104"));
  }
  return result;
}

FaultTree parse_fault_tree(const std::string& text) {
  FtParseResult result = parse_fault_tree_collect(text);
  result.diagnostics.throw_if_errors();
  return std::move(*result.tree);
}

namespace {

std::string quote_if_needed(const std::string& name) {
  for (char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_' ||
                    c == '.' || c == '-';
    if (!ok) return '"' + name + '"';
  }
  if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0])) != 0)
    return '"' + name + '"';
  return name;
}

std::string dist_to_text(const Distribution& d) {
  std::ostringstream os;
  std::visit(
      [&os](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          os << "exp(" << format_double(x.rate) << ")";
        } else if constexpr (std::is_same_v<T, Erlang>) {
          os << "erlang(" << x.shape << ", " << format_double(x.rate) << ")";
        } else if constexpr (std::is_same_v<T, Weibull>) {
          os << "weibull(" << format_double(x.shape) << ", " << format_double(x.scale)
             << ")";
        } else if constexpr (std::is_same_v<T, Lognormal>) {
          os << "lognormal(" << format_double(x.mu) << ", " << format_double(x.sigma)
             << ")";
        } else if constexpr (std::is_same_v<T, UniformDist>) {
          os << "uniform(" << format_double(x.lo) << ", " << format_double(x.hi) << ")";
        } else {
          static_assert(std::is_same_v<T, Deterministic>);
          if (std::isinf(x.value))
            os << "never";
          else
            os << "det(" << format_double(x.value) << ")";
        }
      },
      d.as_variant());
  return os.str();
}

}  // namespace

std::string to_text(const FaultTree& tree) {
  tree.validate();
  std::ostringstream os;
  os << "toplevel " << quote_if_needed(tree.name(tree.top())) << ";\n";
  for (NodeId id : tree.gates()) {
    const Gate& g = tree.gate(id);
    os << quote_if_needed(g.name) << ' ';
    switch (g.type) {
      case GateType::And: os << "and"; break;
      case GateType::Or: os << "or"; break;
      case GateType::Voting: os << "vot " << g.k; break;
    }
    for (NodeId c : g.children) os << ' ' << quote_if_needed(tree.name(c));
    os << ";\n";
  }
  for (NodeId id : tree.basic_events()) {
    const BasicEvent& be = tree.basic(id);
    os << quote_if_needed(be.name) << " be " << dist_to_text(be.lifetime) << ";\n";
  }
  return os.str();
}

}  // namespace fmtree::ft
