#include "ft/cutsets.hpp"

#include <algorithm>
#include <unordered_map>

#include "ft/bdd.hpp"
#include "util/error.hpp"

namespace fmtree::ft {

namespace {

using CutList = std::vector<CutSet>;

bool subsumes(const CutSet& small, const CutSet& big) {
  // True iff small ⊆ big; both are sorted.
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

/// Removes non-minimal sets: any set that is a superset of another.
void minimize(CutList& cuts) {
  std::sort(cuts.begin(), cuts.end(), [](const CutSet& a, const CutSet& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  CutList out;
  out.reserve(cuts.size());
  for (const CutSet& c : cuts) {
    const bool dominated = std::any_of(out.begin(), out.end(),
                                       [&](const CutSet& m) { return subsumes(m, c); });
    if (!dominated) out.push_back(c);
  }
  cuts = std::move(out);
}

CutSet merge_sets(const CutSet& a, const CutSet& b) {
  CutSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

CutList cross_product(const CutList& a, const CutList& b, std::size_t limit) {
  CutList out;
  out.reserve(a.size() * b.size());
  for (const CutSet& x : a) {
    for (const CutSet& y : b) {
      out.push_back(merge_sets(x, y));
      if (out.size() > limit)
        throw ModelError("cut set expansion exceeded limit; tree too large for MOCUS");
    }
  }
  minimize(out);
  return out;
}

CutList union_lists(CutList a, const CutList& b, std::size_t limit) {
  a.insert(a.end(), b.begin(), b.end());
  if (a.size() > limit)
    throw ModelError("cut set expansion exceeded limit; tree too large for MOCUS");
  minimize(a);
  return a;
}

// Cut sets of "at least k of the given child lists fail".
CutList voting_cuts(const std::vector<CutList>& children, int k, std::size_t limit) {
  // DP over children: atleast[j] = cuts for ">= j failures among prefix".
  // Process children one at a time; atleast[0] is the constant TRUE (empty cut).
  std::vector<CutList> atleast(static_cast<std::size_t>(k) + 1);
  atleast[0] = {CutSet{}};  // empty cut set == always true
  for (const CutList& child : children) {
    // Update from high j to low so each child is used at most once per set.
    for (int j = k; j >= 1; --j) {
      CutList with_child =
          cross_product(atleast[static_cast<std::size_t>(j) - 1], child, limit);
      atleast[static_cast<std::size_t>(j)] =
          union_lists(std::move(atleast[static_cast<std::size_t>(j)]), with_child, limit);
    }
  }
  return atleast[static_cast<std::size_t>(k)];
}

}  // namespace

std::vector<CutSet> minimal_cut_sets(const FaultTree& tree, std::size_t limit) {
  tree.validate();
  std::unordered_map<std::uint32_t, CutList> memo;

  // Children are created before parents, so iterating all node ids in order
  // is a valid bottom-up schedule.
  for (std::uint32_t id = 0; id < tree.node_count(); ++id) {
    const NodeId node{id};
    if (tree.is_basic(node)) {
      memo[id] = {CutSet{static_cast<std::uint32_t>(tree.basic_index(node))}};
      continue;
    }
    const Gate& g = tree.gate(node);
    std::vector<CutList> child_cuts;
    child_cuts.reserve(g.children.size());
    for (NodeId c : g.children) child_cuts.push_back(memo.at(c.value));
    CutList result;
    switch (g.type) {
      case GateType::Or:
        for (CutList& cl : child_cuts) result = union_lists(std::move(result), cl, limit);
        break;
      case GateType::And: {
        result = {CutSet{}};
        for (const CutList& cl : child_cuts) result = cross_product(result, cl, limit);
        break;
      }
      case GateType::Voting:
        result = voting_cuts(child_cuts, g.k, limit);
        break;
    }
    memo[id] = std::move(result);
  }
  CutList top = memo.at(tree.top().value);
  minimize(top);
  return top;
}

namespace {

// Rauzy's minimal solutions: for a coherent function,
//   minsol(0) = {}, minsol(1) = {{}},
//   minsol((v, lo, hi)) = minsol(lo)
//                       u { {v} u c : c in minsol(hi), not subsumed by
//                           any solution of minsol(lo) }.
std::vector<CutSet> minimal_solutions(const BddManager& mgr, BddRef f,
                                      std::unordered_map<std::uint32_t, CutList>& memo) {
  if (auto it = memo.find(f.index); it != memo.end()) return it->second;
  const BddManager::NodeView node = mgr.view(f);
  CutList result;
  if (node.is_terminal) {
    if (node.terminal_value) result.push_back(CutSet{});
  } else {
    const CutList without = minimal_solutions(mgr, node.low, memo);
    const CutList with = minimal_solutions(mgr, node.high, memo);
    result = without;
    for (const CutSet& c : with) {
      CutSet candidate;
      candidate.reserve(c.size() + 1);
      // Variables increase with depth, so v precedes everything in c.
      candidate.push_back(node.var);
      candidate.insert(candidate.end(), c.begin(), c.end());
      const bool dominated = std::any_of(
          without.begin(), without.end(),
          [&](const CutSet& l) { return subsumes(l, candidate); });
      if (!dominated) result.push_back(std::move(candidate));
    }
  }
  memo.emplace(f.index, result);
  return result;
}

}  // namespace

std::vector<CutSet> minimal_cut_sets_bdd(const FaultTree& tree) {
  tree.validate();
  BddManager mgr(static_cast<std::uint32_t>(tree.basic_events().size()));
  const BddRef f = build_bdd(mgr, tree);
  std::unordered_map<std::uint32_t, CutList> memo;
  CutList cuts = minimal_solutions(mgr, f, memo);
  minimize(cuts);  // establishes the canonical (size, lex) order
  return cuts;
}

double rare_event_probability(const std::vector<CutSet>& cuts,
                              std::span<const double> p) {
  double total = 0.0;
  for (const CutSet& c : cuts) {
    double prod = 1.0;
    for (std::uint32_t i : c) {
      if (i >= p.size()) throw ModelError("cut set references unknown basic event");
      prod *= p[i];
    }
    total += prod;
  }
  return total;
}

double min_cut_upper_bound(const std::vector<CutSet>& cuts, std::span<const double> p) {
  double survive = 1.0;
  for (const CutSet& c : cuts) {
    double prod = 1.0;
    for (std::uint32_t i : c) {
      if (i >= p.size()) throw ModelError("cut set references unknown basic event");
      prod *= p[i];
    }
    survive *= 1.0 - prod;
  }
  return 1.0 - survive;
}

bool is_cut_set(const FaultTree& tree, const CutSet& candidate) {
  std::vector<bool> failed(tree.basic_events().size(), false);
  for (std::uint32_t i : candidate) {
    if (i >= failed.size()) throw ModelError("cut set references unknown basic event");
    failed[i] = true;
  }
  return tree.evaluate_top(failed);
}

bool is_minimal_cut_set(const FaultTree& tree, const CutSet& candidate) {
  if (!is_cut_set(tree, candidate)) return false;
  for (std::size_t drop = 0; drop < candidate.size(); ++drop) {
    CutSet reduced;
    reduced.reserve(candidate.size() - 1);
    for (std::size_t i = 0; i < candidate.size(); ++i)
      if (i != drop) reduced.push_back(candidate[i]);
    if (is_cut_set(tree, reduced)) return false;
  }
  return true;
}

}  // namespace fmtree::ft
