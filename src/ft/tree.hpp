// Static (classic) fault trees.
//
// A FaultTree is a DAG of basic events and AND / OR / VOT(k/N) gates with a
// designated top event. Children must exist before a parent references them,
// so trees are acyclic by construction. Basic events carry a lifetime
// distribution; the static analyses evaluate the tree at a mission time t by
// setting each basic event's failure probability to F_i(t).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/diagnostics.hpp"
#include "util/distributions.hpp"

namespace fmtree::ft {

/// Index of a node within one FaultTree. Strongly typed to avoid mixing with
/// other integer spaces (BDD variables, phase counts, ...).
struct NodeId {
  std::uint32_t value = 0;
  friend bool operator==(NodeId, NodeId) = default;
};

enum class GateType { And, Or, Voting };

/// Leaf of the tree: a component failure mode with a lifetime distribution.
struct BasicEvent {
  std::string name;
  Distribution lifetime;
};

/// Internal node combining child failures.
struct Gate {
  std::string name;
  GateType type = GateType::Or;
  /// Threshold for Voting gates (fails when >= k children failed); unused
  /// otherwise.
  int k = 0;
  std::vector<NodeId> children;
};

class FaultTree {
public:
  /// Adds a leaf. Names must be unique across the whole tree.
  NodeId add_basic_event(std::string name, Distribution lifetime);

  /// Adds a gate over existing nodes. For Voting, 1 <= k <= children.size().
  NodeId add_gate(std::string name, GateType type, std::vector<NodeId> children,
                  int k = 0);

  NodeId add_and(std::string name, std::vector<NodeId> children) {
    return add_gate(std::move(name), GateType::And, std::move(children));
  }
  NodeId add_or(std::string name, std::vector<NodeId> children) {
    return add_gate(std::move(name), GateType::Or, std::move(children));
  }
  NodeId add_voting(std::string name, int k, std::vector<NodeId> children) {
    return add_gate(std::move(name), GateType::Voting, std::move(children), k);
  }

  void set_top(NodeId id);

  /// Replaces the lifetime distribution of an existing basic event. Throws
  /// ModelError when `id` is not a leaf. Structure, names and indices are
  /// untouched, so derived artifacts (BDD variable order, cut sets) keyed on
  /// basic_events() order stay valid.
  void set_basic_lifetime(NodeId id, Distribution lifetime);

  /// Checks global invariants: top set, every node reachable from the top,
  /// at least one basic event. Throws ModelError otherwise.
  void validate() const { validate({}); }

  /// As validate(), but nodes reachable from `extra_roots` also count as
  /// used (FMT dependency triggers need not contribute to the structure
  /// function).
  void validate(std::span<const NodeId> extra_roots) const;

  /// Collecting variant: records every invariant violation (M-range codes)
  /// into `diags` instead of throwing on the first one.
  void validate(std::span<const NodeId> extra_roots, Diagnostics& diags) const;

  // ---- Accessors -----------------------------------------------------------

  std::size_t node_count() const noexcept { return kinds_.size(); }
  bool is_basic(NodeId id) const;
  const BasicEvent& basic(NodeId id) const;
  const Gate& gate(NodeId id) const;
  const std::string& name(NodeId id) const;
  NodeId top() const;
  bool has_top() const noexcept { return top_.has_value(); }

  /// All basic-event node ids in insertion order. This order defines the
  /// "basic event index" used by cut sets and the BDD variable order.
  std::span<const NodeId> basic_events() const noexcept { return basics_; }
  /// All gate node ids in insertion order (children before parents).
  std::span<const NodeId> gates() const noexcept { return gates_list_; }

  /// Position of a basic event within basic_events(); throws if not a leaf.
  std::size_t basic_index(NodeId id) const;

  std::optional<NodeId> find(const std::string& name) const;

  /// Evaluates the structure function: given failed[i] for the i-th basic
  /// event (order of basic_events()), has the node's event occurred?
  bool evaluate(NodeId node, const std::vector<bool>& failed) const;
  bool evaluate_top(const std::vector<bool>& failed) const {
    return evaluate(top(), failed);
  }

  /// Failure probability of each basic event at mission time t, in
  /// basic_events() order: p_i = F_i(t).
  std::vector<double> probabilities_at(double mission_time) const;

private:
  enum class Kind : std::uint8_t { Basic, Gate };

  void check_id(NodeId id) const;

  std::vector<Kind> kinds_;
  std::vector<std::uint32_t> payload_;  // index into basics_store_/gates_store_
  std::vector<BasicEvent> basics_store_;
  std::vector<Gate> gates_store_;
  std::vector<NodeId> basics_;
  std::vector<NodeId> gates_list_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::optional<NodeId> top_;
};

}  // namespace fmtree::ft
