#include "ft/tree.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fmtree::ft {

NodeId FaultTree::add_basic_event(std::string name, Distribution lifetime) {
  if (name.empty()) throw ModelError("basic event needs a non-empty name");
  if (by_name_.contains(name)) throw ModelError("duplicate node name: " + name);
  const NodeId id{static_cast<std::uint32_t>(kinds_.size())};
  kinds_.push_back(Kind::Basic);
  payload_.push_back(static_cast<std::uint32_t>(basics_store_.size()));
  basics_store_.push_back(BasicEvent{name, std::move(lifetime)});
  basics_.push_back(id);
  by_name_.emplace(std::move(name), id);
  return id;
}

NodeId FaultTree::add_gate(std::string name, GateType type,
                           std::vector<NodeId> children, int k) {
  if (name.empty()) throw ModelError("gate needs a non-empty name");
  if (by_name_.contains(name)) throw ModelError("duplicate node name: " + name);
  if (children.empty()) throw ModelError("gate '" + name + "' needs children");
  for (NodeId c : children) check_id(c);
  if (type == GateType::Voting) {
    if (k < 1 || static_cast<std::size_t>(k) > children.size())
      throw ModelError("voting gate '" + name + "' needs 1 <= k <= #children");
  } else {
    k = 0;
  }
  const NodeId id{static_cast<std::uint32_t>(kinds_.size())};
  kinds_.push_back(Kind::Gate);
  payload_.push_back(static_cast<std::uint32_t>(gates_store_.size()));
  gates_store_.push_back(Gate{name, type, k, std::move(children)});
  gates_list_.push_back(id);
  by_name_.emplace(std::move(name), id);
  return id;
}

void FaultTree::set_top(NodeId id) {
  check_id(id);
  top_ = id;
}

void FaultTree::set_basic_lifetime(NodeId id, Distribution lifetime) {
  check_id(id);
  if (kinds_[id.value] != Kind::Basic)
    throw ModelError("node '" + name(id) + "' is not a basic event");
  basics_store_[payload_[id.value]].lifetime = std::move(lifetime);
}

void FaultTree::validate(std::span<const NodeId> extra_roots) const {
  Diagnostics diags;
  validate(extra_roots, diags);
  if (!diags.has_errors()) return;
  // Preserve the historical single-error message; aggregate otherwise.
  if (diags.error_count() == 1) throw ModelError(diags.all().front().message);
  throw ModelErrors(diags.all());
}

void FaultTree::validate(std::span<const NodeId> extra_roots,
                         Diagnostics& diags) const {
  if (!top_) {
    diags.error("M105", {}, "no top event set");
    return;  // reachability is meaningless without a root
  }
  if (basics_.empty()) diags.error("M106", {}, "tree has no basic events");
  // Reachability from the top (plus any dependency-trigger roots).
  std::vector<bool> seen(kinds_.size(), false);
  std::vector<NodeId> stack{*top_};
  for (NodeId r : extra_roots) {
    check_id(r);
    stack.push_back(r);
  }
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (seen[n.value]) continue;
    seen[n.value] = true;
    if (!is_basic(n))
      for (NodeId c : gate(n).children) stack.push_back(c);
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      const std::string& n = name(NodeId{static_cast<std::uint32_t>(i)});
      diags.error("M103", {}, "node '" + n + "' is not reachable from the top event",
                  "wire it into the tree or delete it", n);
    }
  }
}

bool FaultTree::is_basic(NodeId id) const {
  check_id(id);
  return kinds_[id.value] == Kind::Basic;
}

const BasicEvent& FaultTree::basic(NodeId id) const {
  check_id(id);
  if (kinds_[id.value] != Kind::Basic)
    throw ModelError("node '" + name(id) + "' is not a basic event");
  return basics_store_[payload_[id.value]];
}

const Gate& FaultTree::gate(NodeId id) const {
  check_id(id);
  if (kinds_[id.value] != Kind::Gate)
    throw ModelError("node '" + name(id) + "' is not a gate");
  return gates_store_[payload_[id.value]];
}

const std::string& FaultTree::name(NodeId id) const {
  check_id(id);
  return kinds_[id.value] == Kind::Basic ? basics_store_[payload_[id.value]].name
                                         : gates_store_[payload_[id.value]].name;
}

NodeId FaultTree::top() const {
  if (!top_) throw ModelError("no top event set");
  return *top_;
}

std::size_t FaultTree::basic_index(NodeId id) const {
  if (!is_basic(id)) throw ModelError("node '" + name(id) + "' is not a basic event");
  return payload_[id.value];
}

std::optional<NodeId> FaultTree::find(const std::string& node_name) const {
  auto it = by_name_.find(node_name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

bool FaultTree::evaluate(NodeId node, const std::vector<bool>& failed) const {
  if (failed.size() != basics_.size())
    throw ModelError("state vector size does not match number of basic events");
  if (is_basic(node)) return failed[basic_index(node)];
  const Gate& g = gate(node);
  switch (g.type) {
    case GateType::And:
      return std::all_of(g.children.begin(), g.children.end(),
                         [&](NodeId c) { return evaluate(c, failed); });
    case GateType::Or:
      return std::any_of(g.children.begin(), g.children.end(),
                         [&](NodeId c) { return evaluate(c, failed); });
    case GateType::Voting: {
      int count = 0;
      for (NodeId c : g.children)
        if (evaluate(c, failed)) ++count;
      return count >= g.k;
    }
  }
  throw ModelError("unknown gate type");
}

std::vector<double> FaultTree::probabilities_at(double mission_time) const {
  std::vector<double> p;
  p.reserve(basics_.size());
  for (NodeId id : basics_) p.push_back(basic(id).lifetime.cdf(mission_time));
  return p;
}

void FaultTree::check_id(NodeId id) const {
  if (id.value >= kinds_.size())
    throw ModelError("node id " + std::to_string(id.value) + " out of range");
}

}  // namespace fmtree::ft
