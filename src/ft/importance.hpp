// Component importance measures from exact BDD analysis.
#pragma once

#include <string>
#include <vector>

#include "ft/tree.hpp"

namespace fmtree::ft {

/// Importance of one basic event at a mission time.
struct Importance {
  std::string name;
  double probability = 0.0;    ///< p_i = F_i(t)
  double birnbaum = 0.0;       ///< dP(top)/dp_i = P(top|i=1) - P(top|i=0)
  double criticality = 0.0;    ///< birnbaum * p_i / P(top)
  double fussell_vesely = 0.0; ///< (P(top) - P(top|p_i=0)) / P(top)
};

/// Computes all three measures for every basic event, in basic_events()
/// order. Runs one BDD compilation and O(#BE) probability evaluations.
std::vector<Importance> importance_measures(const FaultTree& tree, double mission_time);

}  // namespace fmtree::ft
