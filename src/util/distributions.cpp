#include "util/distributions.hpp"

#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace fmtree {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void require(bool ok, const std::string& what) {
  if (!ok) throw DomainError(what);
}

double sample_exponential(double rate, RandomStream& rng) {
  return -std::log(rng.uniform01_open_left()) / rate;
}

double sample_normal(RandomStream& rng) {
  // Box–Muller; one variate per call keeps streams stateless across calls.
  const double u1 = rng.uniform01_open_left();
  const double u2 = rng.uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace

Distribution Distribution::exponential(double rate) {
  require(std::isfinite(rate) && rate > 0, "exponential rate must be positive");
  return Distribution(Exponential{rate});
}

Distribution Distribution::erlang(int shape, double rate) {
  require(shape >= 1, "erlang shape must be >= 1");
  require(std::isfinite(rate) && rate > 0, "erlang rate must be positive");
  return Distribution(Erlang{shape, rate});
}

Distribution Distribution::erlang_mean(int shape, double mean) {
  require(std::isfinite(mean) && mean > 0, "erlang mean must be positive");
  require(shape >= 1, "erlang shape must be >= 1");
  return erlang(shape, static_cast<double>(shape) / mean);
}

Distribution Distribution::weibull(double shape, double scale) {
  require(std::isfinite(shape) && shape > 0, "weibull shape must be positive");
  require(std::isfinite(scale) && scale > 0, "weibull scale must be positive");
  return Distribution(Weibull{shape, scale});
}

Distribution Distribution::lognormal(double mu, double sigma) {
  require(std::isfinite(mu), "lognormal mu must be finite");
  require(std::isfinite(sigma) && sigma > 0, "lognormal sigma must be positive");
  return Distribution(Lognormal{mu, sigma});
}

Distribution Distribution::uniform(double lo, double hi) {
  require(std::isfinite(lo) && std::isfinite(hi) && lo >= 0 && hi > lo,
          "uniform requires 0 <= lo < hi, both finite");
  return Distribution(UniformDist{lo, hi});
}

Distribution Distribution::deterministic(double value) {
  require(value >= 0 && !std::isnan(value), "deterministic value must be >= 0");
  return Distribution(Deterministic{value});
}

Distribution Distribution::never() { return Distribution(Deterministic{kInf}); }

double Distribution::sample(RandomStream& rng) const {
  return std::visit(
      [&rng](const auto& d) -> double {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          return sample_exponential(d.rate, rng);
        } else if constexpr (std::is_same_v<T, Erlang>) {
          double total = 0;
          for (int i = 0; i < d.shape; ++i) total += sample_exponential(d.rate, rng);
          return total;
        } else if constexpr (std::is_same_v<T, Weibull>) {
          return d.scale * std::pow(-std::log(rng.uniform01_open_left()), 1.0 / d.shape);
        } else if constexpr (std::is_same_v<T, Lognormal>) {
          return std::exp(d.mu + d.sigma * sample_normal(rng));
        } else if constexpr (std::is_same_v<T, UniformDist>) {
          return rng.uniform(d.lo, d.hi);
        } else {
          static_assert(std::is_same_v<T, Deterministic>);
          return d.value;
        }
      },
      v_);
}

double Distribution::mean() const {
  return std::visit(
      [](const auto& d) -> double {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          return 1.0 / d.rate;
        } else if constexpr (std::is_same_v<T, Erlang>) {
          return static_cast<double>(d.shape) / d.rate;
        } else if constexpr (std::is_same_v<T, Weibull>) {
          return d.scale * std::exp(log_gamma(1.0 + 1.0 / d.shape));
        } else if constexpr (std::is_same_v<T, Lognormal>) {
          return std::exp(d.mu + 0.5 * d.sigma * d.sigma);
        } else if constexpr (std::is_same_v<T, UniformDist>) {
          return 0.5 * (d.lo + d.hi);
        } else {
          static_assert(std::is_same_v<T, Deterministic>);
          return d.value;
        }
      },
      v_);
}

double Distribution::variance() const {
  return std::visit(
      [](const auto& d) -> double {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          return 1.0 / (d.rate * d.rate);
        } else if constexpr (std::is_same_v<T, Erlang>) {
          return static_cast<double>(d.shape) / (d.rate * d.rate);
        } else if constexpr (std::is_same_v<T, Weibull>) {
          const double g1 = std::exp(log_gamma(1.0 + 1.0 / d.shape));
          const double g2 = std::exp(log_gamma(1.0 + 2.0 / d.shape));
          return d.scale * d.scale * (g2 - g1 * g1);
        } else if constexpr (std::is_same_v<T, Lognormal>) {
          const double s2 = d.sigma * d.sigma;
          return (std::exp(s2) - 1.0) * std::exp(2.0 * d.mu + s2);
        } else if constexpr (std::is_same_v<T, UniformDist>) {
          const double w = d.hi - d.lo;
          return w * w / 12.0;
        } else {
          static_assert(std::is_same_v<T, Deterministic>);
          return std::isinf(d.value) ? kInf : 0.0;
        }
      },
      v_);
}

double Distribution::cdf(double x) const {
  if (x < 0) return 0.0;
  return std::visit(
      [x](const auto& d) -> double {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          return 1.0 - std::exp(-d.rate * x);
        } else if constexpr (std::is_same_v<T, Erlang>) {
          return gamma_p(static_cast<double>(d.shape), d.rate * x);
        } else if constexpr (std::is_same_v<T, Weibull>) {
          return 1.0 - std::exp(-std::pow(x / d.scale, d.shape));
        } else if constexpr (std::is_same_v<T, Lognormal>) {
          if (x == 0) return 0.0;
          return normal_cdf((std::log(x) - d.mu) / d.sigma);
        } else if constexpr (std::is_same_v<T, UniformDist>) {
          if (x <= d.lo) return 0.0;
          if (x >= d.hi) return 1.0;
          return (x - d.lo) / (d.hi - d.lo);
        } else {
          static_assert(std::is_same_v<T, Deterministic>);
          return x >= d.value ? 1.0 : 0.0;
        }
      },
      v_);
}

Distribution Distribution::scaled(double factor) const {
  require(std::isfinite(factor) && factor > 0, "scale factor must be positive");
  return std::visit(
      [factor](const auto& d) -> Distribution {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          return exponential(d.rate / factor);
        } else if constexpr (std::is_same_v<T, Erlang>) {
          return erlang(d.shape, d.rate / factor);
        } else if constexpr (std::is_same_v<T, Weibull>) {
          return weibull(d.shape, d.scale * factor);
        } else if constexpr (std::is_same_v<T, Lognormal>) {
          return lognormal(d.mu + std::log(factor), d.sigma);
        } else if constexpr (std::is_same_v<T, UniformDist>) {
          return uniform(d.lo * factor, d.hi * factor);
        } else {
          static_assert(std::is_same_v<T, Deterministic>);
          return Distribution(Deterministic{d.value * factor});
        }
      },
      v_);
}

bool Distribution::is_never() const noexcept {
  const auto* det = std::get_if<Deterministic>(&v_);
  return det != nullptr && std::isinf(det->value);
}

std::string Distribution::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Distribution& d) {
  std::visit(
      [&os](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          os << "Exponential(rate=" << x.rate << ")";
        } else if constexpr (std::is_same_v<T, Erlang>) {
          os << "Erlang(" << x.shape << ", rate=" << x.rate << ")";
        } else if constexpr (std::is_same_v<T, Weibull>) {
          os << "Weibull(shape=" << x.shape << ", scale=" << x.scale << ")";
        } else if constexpr (std::is_same_v<T, Lognormal>) {
          os << "Lognormal(mu=" << x.mu << ", sigma=" << x.sigma << ")";
        } else if constexpr (std::is_same_v<T, UniformDist>) {
          os << "Uniform[" << x.lo << ", " << x.hi << "]";
        } else {
          static_assert(std::is_same_v<T, Deterministic>);
          if (std::isinf(x.value))
            os << "Never";
          else
            os << "Deterministic(" << x.value << ")";
        }
      },
      d.as_variant());
  return os;
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) throw DomainError("normal_quantile requires p in (0,1)");
  // Peter Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r, x;
  if (p < p_low) {
    q = std::sqrt(-2 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  } else if (p <= 1 - p_low) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  } else {
    q = std::sqrt(-2 * std::log(1 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  return x;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double log_gamma(double x) {
  if (!(x > 0)) throw DomainError("log_gamma requires x > 0");
  return std::lgamma(x);
}

namespace {

// Series expansion of P(a, x), valid for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for Q(a, x) = 1 - P(a, x), valid for x >= a + 1.
double gamma_q_cf(double a, double x) {
  constexpr double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double gamma_p(double a, double x) {
  if (!(a > 0)) throw DomainError("gamma_p requires a > 0");
  if (x < 0) throw DomainError("gamma_p requires x >= 0");
  if (x == 0) return 0.0;
  if (std::isinf(x)) return 1.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

}  // namespace fmtree
