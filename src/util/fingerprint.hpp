// Stable 128-bit content fingerprints — the identity primitive of the
// content-addressed result cache (src/batch).
//
// Two hashing front-ends over the same mixing core:
//
//  * StreamHasher — order-sensitive: feed typed values in a fixed canonical
//    order (used for model structure, where order is semantically visible);
//  * KeyedHasher — order-insensitive: feed named fields in any order; the
//    digest sorts by key first, so two call sites that enumerate the same
//    settings fields in different orders produce the same fingerprint.
//
// Every value is fed with a type tag, so e.g. u64(1) and f64(1.0) cannot
// collide by sharing a byte pattern. Doubles are hashed by IEEE-754 bit
// pattern with -0.0 canonicalized to +0.0. The hash is deterministic across
// processes, platforms and library versions for the same inputs — it is a
// persistence format (disk cache keys), not a hash-table hash — so the
// mixing constants below must never change without bumping every schema tag
// fed into them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fmtree {

/// A 128-bit content fingerprint. Value type; compares bitwise.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex characters (hi then lo), e.g. for cache file names.
  std::string hex() const;

  /// Inverse of hex(): parses exactly 32 lowercase hex characters. Throws
  /// DomainError on any other input (wire decoders use this to reject
  /// malformed keys early).
  static Fingerprint from_hex(std::string_view text);

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
  friend bool operator<(const Fingerprint& a, const Fingerprint& b) noexcept {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// Order-sensitive streaming hasher: two independent FNV-1a lanes with
/// distinct primes, post-mixed on digest(). Feed order defines the hash.
class StreamHasher {
public:
  StreamHasher& bytes(const void* data, std::size_t size) noexcept;

  StreamHasher& u64(std::uint64_t v);
  StreamHasher& i64(std::int64_t v);
  StreamHasher& u32(std::uint32_t v);
  /// Bit-pattern hash; -0.0 is canonicalized to +0.0.
  StreamHasher& f64(double v);
  StreamHasher& boolean(bool v);
  /// Length-prefixed, so str("ab") + str("c") != str("a") + str("bc").
  StreamHasher& str(std::string_view s);
  /// A structural marker (schema tag, section name). Same wire form as
  /// str(), distinct type tag.
  StreamHasher& tag(std::string_view s);
  /// Folds a sub-fingerprint in (e.g. a per-field digest).
  StreamHasher& fingerprint(const Fingerprint& f);

  Fingerprint digest() const noexcept;

private:
  std::uint64_t h1_ = 0xcbf29ce484222325ull;  // FNV offset basis
  std::uint64_t h2_ = 0x9e3779b97f4a7c15ull;  // golden-ratio offset
};

/// Order-insensitive named-field hasher. Each field becomes a (key, value
/// fingerprint) pair; digest() sorts the pairs by key and stream-hashes
/// them, so insertion order cannot leak into the result. Duplicate keys are
/// a caller bug and throw DomainError at digest() time.
class KeyedHasher {
public:
  /// `schema` namespaces the digest (e.g. "fmtree.settings/v1").
  explicit KeyedHasher(std::string_view schema);

  KeyedHasher& u64(std::string_view key, std::uint64_t v);
  KeyedHasher& f64(std::string_view key, double v);
  KeyedHasher& boolean(std::string_view key, bool v);
  KeyedHasher& str(std::string_view key, std::string_view v);
  KeyedHasher& fingerprint(std::string_view key, const Fingerprint& f);

  Fingerprint digest() const;

private:
  KeyedHasher& field(std::string_view key, const Fingerprint& value);

  std::string schema_;
  std::vector<std::pair<std::string, Fingerprint>> fields_;
};

}  // namespace fmtree
