// Deterministic fault injection: named fault sites compiled into the I/O and
// scheduling paths that must degrade gracefully (disk-cache reads/writes,
// sweep worker tasks, allocation-heavy solver entry points).
//
// A *site* is a stable string ("cache.write", "sweep.task", ...) named at the
// code location where a fault can manifest. Sites are inert until *armed*
// with a FaultSpec, either programmatically (tests, fault::Scope) or from the
// FMTREE_FAULTS environment variable / the CLI's --inject-fault flag. The
// armed spec decides
//
//   * the *mode* — what happens when the fault fires:
//       error          throw InjectedFault at the site
//       corrupt        fault_point() returns true; the site corrupts its own
//                      payload (only sites handling a buffer honor this)
//       stall=<ms>     sleep for <ms> at the site (feeds the sweep watchdog)
//   * the *trigger* — which hits of the site fire:
//       always         every hit (the default)
//       nth=<k>        exactly the k-th hit of the site (1-based)
//       p=<prob>[,seed=<s>]   seeded pseudo-random coin per hit: hit i fires
//                      iff u01(mix(seed, site, i)) < prob. Deterministic for
//                      a fixed hit order; under concurrency the *number* of
//                      fires converges to prob per hit but which logical
//                      operation observes them may vary run to run.
//   * an optional  limit=<n>  cap on total fires of the spec.
//
// Grammar (one spec):   site:mode[,trigger][,limit=<n>]
//   e.g.  cache.write:error,p=0.05,seed=7
//         sweep.task:stall=200,nth=1,limit=1
// FMTREE_FAULTS holds a ';'-separated list of specs. Malformed env specs are
// reported on stderr and skipped (arming must never take the process down);
// parse_fault_spec() used by tests/CLI throws DomainError instead.
//
// Cost contract: when nothing is armed, a fault_point() is one relaxed atomic
// load and a branch — cheap enough to compile into per-task and per-I/O
// paths unconditionally. Fault sites never change analysis semantics when
// disarmed: successful outputs are bit-identical with and without the
// framework compiled in (DESIGN.md, "Failure semantics").
//
// The site catalog lives in DESIGN.md; tests assert the sites named there
// exist by arming them and observing the fire.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace fmtree::fault {

/// Thrown by a site whose armed spec is in `error` mode. Derives from Error,
/// not IoError: call sites that must treat an injected fault like a real I/O
/// failure catch it explicitly, which keeps the degradation paths visible.
class InjectedFault : public Error {
public:
  explicit InjectedFault(std::string site)
      : Error("injected fault at site '" + site + "'"), site_(std::move(site)) {}
  const std::string& site() const noexcept { return site_; }

private:
  std::string site_;
};

enum class Mode : std::uint8_t {
  Error,    ///< throw InjectedFault at the site
  Corrupt,  ///< tell the site to corrupt its payload
  Stall,    ///< sleep stall_ms at the site
};

constexpr const char* mode_name(Mode m) noexcept {
  switch (m) {
    case Mode::Error: return "error";
    case Mode::Corrupt: return "corrupt";
    case Mode::Stall: return "stall";
  }
  return "?";
}

/// One armed fault: which site, what happens, and when.
struct FaultSpec {
  std::string site;
  Mode mode = Mode::Error;
  std::uint64_t stall_ms = 0;  ///< sleep duration (Stall mode)
  /// Probability trigger; negative = not probability-triggered.
  double probability = -1.0;
  std::uint64_t seed = 0;  ///< seeds the probability coin
  /// Nth-hit trigger (1-based); 0 = not nth-triggered. With neither trigger
  /// the spec fires on every hit.
  std::uint64_t nth = 0;
  /// Maximum number of fires; further hits pass through unharmed.
  std::uint64_t limit = std::numeric_limits<std::uint64_t>::max();
};

/// Parses "site:mode[,trigger][,limit=n]". Throws DomainError with a
/// user-facing message on malformed input.
FaultSpec parse_fault_spec(std::string_view text);

/// What a firing site must do (Error mode is thrown before this is returned).
struct FaultHit {
  Mode mode = Mode::Error;
  std::uint64_t stall_ms = 0;
};

/// Process-wide registry of armed faults. All mutation is mutex-guarded; the
/// disarmed fast path is a single relaxed atomic load (any_armed()).
class FaultRegistry {
public:
  /// The singleton; first use parses FMTREE_FAULTS (malformed entries are
  /// reported on stderr and skipped).
  static FaultRegistry& instance();

  /// Arms (or replaces) the spec for spec.site.
  void arm(FaultSpec spec);
  /// Disarms one site; returns false if it was not armed.
  bool disarm(std::string_view site);
  void disarm_all();

  bool any_armed() const noexcept {
    return armed_count_.load(std::memory_order_relaxed) != 0;
  }

  /// Records a hit of `site` and decides whether the armed spec (if any)
  /// fires. Stall sleeps happen here; Error mode throws InjectedFault;
  /// Corrupt is returned for the site to honor.
  std::optional<FaultHit> check(std::string_view site);

  /// Total fires across all sites since process start (or last reset via
  /// disarm_all + re-arm; fires are never decremented). Feeds the
  /// fault.injected metric.
  std::uint64_t fires() const noexcept {
    return fires_.load(std::memory_order_relaxed);
  }
  /// Hits recorded for one site (armed or not, since it was first armed).
  std::uint64_t hits(std::string_view site) const;

private:
  FaultRegistry();

  struct Armed {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Armed> sites_;
  std::atomic<std::size_t> armed_count_{0};
  std::atomic<std::uint64_t> fires_{0};
};

namespace detail {
/// Cold path of fault_point(): consults the registry, sleeps on Stall,
/// throws on Error, returns true on Corrupt.
bool fault_point_slow(std::string_view site);
}  // namespace detail

/// The site primitive. Disarmed: one relaxed load. Armed: records the hit
/// and fires per the spec — throws InjectedFault (error mode), sleeps (stall
/// mode), or returns true (corrupt mode; the caller corrupts its payload).
inline bool fault_point(std::string_view site) {
  if (!FaultRegistry::instance().any_armed()) return false;
  return detail::fault_point_slow(site);
}

/// RAII arming for tests and the CLI: arms the given "site:spec" strings on
/// construction (throws DomainError on malformed input) and disarms exactly
/// those sites on destruction, leaving other armings (e.g. FMTREE_FAULTS)
/// in place.
class Scope {
public:
  Scope() = default;
  explicit Scope(const std::vector<std::string>& specs);
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
  ~Scope();

private:
  std::vector<std::string> sites_;
};

}  // namespace fmtree::fault
