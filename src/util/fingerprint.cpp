#include "util/fingerprint.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace fmtree {

namespace {

// Wire-format type tags; part of the persistent hash format, never renumber.
enum : unsigned char {
  kTagU64 = 1,
  kTagI64 = 2,
  kTagU32 = 3,
  kTagF64 = 4,
  kTagBool = 5,
  kTagStr = 6,
  kTagTag = 7,
  kTagFingerprint = 8,
};

constexpr std::uint64_t kPrime1 = 0x00000100000001b3ull;  // FNV-1a prime
constexpr std::uint64_t kPrime2 = 0x9ddfea08eb382d69ull;  // Murmur-style prime

std::uint64_t final_mix(std::uint64_t h) noexcept {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

std::string Fingerprint::hex() const {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) out[15 - i] = kDigits[(hi >> (4 * i)) & 0xf];
  for (int i = 0; i < 16; ++i) out[31 - i] = kDigits[(lo >> (4 * i)) & 0xf];
  return out;
}

Fingerprint Fingerprint::from_hex(std::string_view text) {
  if (text.size() != 32)
    throw DomainError("fingerprint hex must be 32 characters, got " +
                      std::to_string(text.size()));
  const auto nibble = [&](char c) -> std::uint64_t {
    if (c >= '0' && c <= '9') return static_cast<std::uint64_t>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<std::uint64_t>(c - 'a' + 10);
    throw DomainError(std::string("invalid fingerprint hex character '") + c + "'");
  };
  Fingerprint f;
  for (int i = 0; i < 16; ++i) f.hi = f.hi << 4 | nibble(text[i]);
  for (int i = 16; i < 32; ++i) f.lo = f.lo << 4 | nibble(text[i]);
  return f;
}

StreamHasher& StreamHasher::bytes(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h1_ = (h1_ ^ p[i]) * kPrime1;
    h2_ = (h2_ ^ p[i]) * kPrime2;
  }
  return *this;
}

StreamHasher& StreamHasher::u64(std::uint64_t v) {
  const unsigned char tag = kTagU64;
  bytes(&tag, 1);
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  return bytes(buf, sizeof buf);
}

StreamHasher& StreamHasher::i64(std::int64_t v) {
  const unsigned char tag = kTagI64;
  bytes(&tag, 1);
  const auto u = static_cast<std::uint64_t>(v);
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(u >> (8 * i));
  return bytes(buf, sizeof buf);
}

StreamHasher& StreamHasher::u32(std::uint32_t v) {
  const unsigned char tag = kTagU32;
  bytes(&tag, 1);
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  return bytes(buf, sizeof buf);
}

StreamHasher& StreamHasher::f64(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 and +0.0 to one bit pattern
  const unsigned char tag = kTagF64;
  bytes(&tag, 1);
  const auto u = std::bit_cast<std::uint64_t>(v);
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(u >> (8 * i));
  return bytes(buf, sizeof buf);
}

StreamHasher& StreamHasher::boolean(bool v) {
  const unsigned char buf[2] = {kTagBool, static_cast<unsigned char>(v ? 1 : 0)};
  return bytes(buf, sizeof buf);
}

StreamHasher& StreamHasher::str(std::string_view s) {
  const unsigned char tag = kTagStr;
  bytes(&tag, 1);
  u64(s.size());
  return bytes(s.data(), s.size());
}

StreamHasher& StreamHasher::tag(std::string_view s) {
  const unsigned char t = kTagTag;
  bytes(&t, 1);
  u64(s.size());
  return bytes(s.data(), s.size());
}

StreamHasher& StreamHasher::fingerprint(const Fingerprint& f) {
  const unsigned char tag = kTagFingerprint;
  bytes(&tag, 1);
  u64(f.hi);
  return u64(f.lo);
}

Fingerprint StreamHasher::digest() const noexcept {
  // Cross-mix the lanes so each output word depends on both accumulators.
  return {final_mix(h1_ + 0x2545f4914f6cdd1dull * h2_),
          final_mix(h2_ + 0x27d4eb2f165667c5ull * h1_)};
}

KeyedHasher::KeyedHasher(std::string_view schema) : schema_(schema) {}

KeyedHasher& KeyedHasher::field(std::string_view key, const Fingerprint& value) {
  fields_.emplace_back(std::string(key), value);
  return *this;
}

KeyedHasher& KeyedHasher::u64(std::string_view key, std::uint64_t v) {
  return field(key, StreamHasher().u64(v).digest());
}

KeyedHasher& KeyedHasher::f64(std::string_view key, double v) {
  return field(key, StreamHasher().f64(v).digest());
}

KeyedHasher& KeyedHasher::boolean(std::string_view key, bool v) {
  return field(key, StreamHasher().boolean(v).digest());
}

KeyedHasher& KeyedHasher::str(std::string_view key, std::string_view v) {
  return field(key, StreamHasher().str(v).digest());
}

KeyedHasher& KeyedHasher::fingerprint(std::string_view key, const Fingerprint& f) {
  return field(key, StreamHasher().fingerprint(f).digest());
}

Fingerprint KeyedHasher::digest() const {
  std::vector<std::pair<std::string, Fingerprint>> sorted = fields_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].first == sorted[i - 1].first)
      throw DomainError("duplicate fingerprint field '" + sorted[i].first + "'");
  }
  StreamHasher h;
  h.tag(schema_);
  h.u64(sorted.size());
  for (const auto& [key, value] : sorted) {
    h.str(key);
    h.fingerprint(value);
  }
  return h.digest();
}

}  // namespace fmtree
