// Number formatting helpers for fmtree's text emitters.
#pragma once

#include <charconv>
#include <string>

namespace fmtree {

/// Shortest decimal form of `v` that parses back (strtod / from_chars) to
/// exactly the same double — "0.25" stays "0.25", never "0.2500000...01".
/// Text emitters use this so printed models and cache artifacts are lossless
/// round-trips of the in-memory values.
inline std::string format_double(double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;  // 32 bytes always suffice for the shortest double form
  return std::string(buf, end);
}

}  // namespace fmtree
