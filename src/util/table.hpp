// ASCII table rendering for benchmark/report output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fmtree {

/// Column alignment within a rendered table.
enum class Align { Left, Right };

/// A simple text table: set headers, append rows, print. All cells are
/// strings; use the cell() helpers for formatted numerics.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> headers);

  /// Per-column alignment; default is Left for all.
  void set_alignment(std::vector<Align> alignment);

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }

  /// Renders with a header rule and column separators.
  void print(std::ostream& os) const;
  std::string to_string() const;

private:
  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-decimal formatting, e.g. cell(3.14159, 2) == "3.14".
std::string cell(double value, int decimals);
/// Scientific formatting with the given significant digits.
std::string cell_sci(double value, int significant);
std::string cell(std::uint64_t value);
std::string cell(int value);

}  // namespace fmtree
