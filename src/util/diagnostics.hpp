// Structured diagnostics: every user-facing failure is a Diagnostic with a
// severity, a stable code, a source location (line and column where one
// exists) and an optional hint. Front ends (the .fmt/.ft parsers, model
// validation, the CLI) collect diagnostics into a Diagnostics sink so a
// single pass reports *every* problem instead of aborting at the first one.
//
// Stable code ranges (documented in DESIGN.md, "Failure semantics"):
//   L1xx  lexical errors       (bad character, unterminated string, ...)
//   P1xx  syntax errors        (unexpected token, duplicate statement, ...)
//   P2xx  attribute errors     (missing/unknown/out-of-range attributes)
//   P3xx  reference errors     (statement names an undeclared node)
//   M1xx  model errors         (cycles, orphans, structural validation)
//   R1xx  resource limits      (iteration caps, state-space caps, budgets)
//   N1xx  numeric errors       (non-finite statistics)
//   U1xx  usage/input errors   (bad files, bad option values, unsupported models)
//   X1xx  internal errors      (anything escaping as std::exception)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace fmtree {

enum class Severity { Note, Warning, Error };

const char* severity_name(Severity s);

/// 1-based line/column; 0 means "no location" (whole-input problems such as
/// a missing toplevel declaration, or non-parser diagnostics).
struct SourceLocation {
  std::size_t line = 0;
  std::size_t column = 0;
};

struct Diagnostic {
  Severity severity = Severity::Error;
  std::string code;     ///< stable identifier, e.g. "P101"
  SourceLocation loc;
  std::string message;  ///< plain message, no "parse error at ..." prefix
  std::string hint;     ///< optional "try ..." guidance; empty when none
  std::string token;    ///< offending token text when one exists
};

/// Append-only diagnostic sink. Cheap to pass by reference through the
/// parsing/validation layers; rendering (text or JSON) happens at the edge.
class Diagnostics {
public:
  void add(Diagnostic d);
  void error(std::string code, SourceLocation loc, std::string message,
             std::string hint = {}, std::string token = {});
  void warning(std::string code, SourceLocation loc, std::string message,
               std::string hint = {});

  bool empty() const noexcept { return items_.empty(); }
  std::size_t error_count() const noexcept { return errors_; }
  bool has_errors() const noexcept { return errors_ > 0; }
  const std::vector<Diagnostic>& all() const noexcept { return items_; }

  /// Human-readable rendering, one diagnostic per line:
  ///   <line>:<col>: error[P101]: message (hint: ...)
  std::string format() const;

  /// Machine-readable rendering: a JSON array of diagnostic objects with
  /// keys severity/code/line/column/message/hint/token.
  std::string to_json() const;

  /// Throws if any error-severity diagnostic was collected: ParseErrors when
  /// at least one lexical/syntax/attribute/reference (L*/P*) error exists,
  /// ModelErrors otherwise. No-op when error-free.
  void throw_if_errors() const;

private:
  std::vector<Diagnostic> items_;
  std::size_t errors_ = 0;
};

/// Renders one diagnostic in the human-readable format used by Diagnostics::format().
std::string format_diagnostic(const Diagnostic& d);

/// JSON string escaping for the machine-readable error channel.
std::string json_escape(const std::string& s);

/// Aggregate of one parse pass: derives from ParseError so call sites that
/// expect the single-error exception keep working, while carrying the full
/// diagnostic list of the pass.
class ParseErrors : public ParseError {
public:
  explicit ParseErrors(std::vector<Diagnostic> diagnostics);
  const std::vector<Diagnostic>& diagnostics() const noexcept { return diagnostics_; }

private:
  std::vector<Diagnostic> diagnostics_;
};

/// Aggregate of model validation; derives from ModelError analogously.
class ModelErrors : public ModelError {
public:
  explicit ModelErrors(std::vector<Diagnostic> diagnostics);
  const std::vector<Diagnostic>& diagnostics() const noexcept { return diagnostics_; }

private:
  std::vector<Diagnostic> diagnostics_;
};

/// Converts a caught exception into a Diagnostic, preserving structured
/// fields (location, code, hint) where the exception type carries them.
Diagnostic diagnostic_from(const ParseError& e);
Diagnostic diagnostic_from(const Error& e, std::string code);

}  // namespace fmtree
