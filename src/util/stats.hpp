// Streaming statistics and confidence intervals.
#pragma once

#include <cstdint>
#include <vector>

namespace fmtree {

/// A two-sided confidence interval [lo, hi] around a point estimate.
struct ConfidenceInterval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double confidence = 0.95;

  double half_width() const noexcept { return 0.5 * (hi - lo); }
  bool contains(double x) const noexcept { return lo <= x && x <= hi; }
};

/// Welford's online algorithm: numerically stable running mean/variance.
/// Non-finite samples (NaN/inf) are counted but excluded from the moments —
/// they would silently poison every later estimate otherwise — and any
/// moment query that matters for inference (mean_ci) refuses to produce an
/// interval once one was seen.
class RunningStats {
public:
  void add(double x) noexcept;
  /// Merge another accumulator (Chan et al. parallel combination).
  void merge(const RunningStats& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  /// Number of non-finite samples seen (and excluded from the moments).
  std::uint64_t non_finite_count() const noexcept { return non_finite_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean.
  double std_error() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Normal-approximation CI for the mean at the given confidence level.
  /// Throws DomainError if any non-finite sample was recorded: an interval
  /// over a contaminated sample would be silently wrong.
  ConfidenceInterval mean_ci(double confidence = 0.95) const;

private:
  std::uint64_t n_ = 0;
  std::uint64_t non_finite_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Wilson score interval for a binomial proportion — well-behaved near 0/1,
/// which reliability estimates frequently are.
ConfidenceInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                   double confidence = 0.95);

/// Distribution-free CI from Hoeffding's inequality for values in [0, 1].
/// Conservative but valid at any sample size.
ConfidenceInterval hoeffding_interval(double point, std::uint64_t trials,
                                      double confidence = 0.95);

/// Okamoto/Chernoff bound: number of samples needed so that a proportion
/// estimate has half-width <= eps with the given confidence.
std::uint64_t okamoto_sample_size(double eps, double confidence = 0.95);

/// Fixed-width histogram over [lo, hi) with out-of-range counters.
class Histogram {
public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::uint64_t bin_count(std::size_t i) const;
  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Empirical quantile (linear interpolation) of a sample; sorts a copy.
double quantile(std::vector<double> sample, double q);

}  // namespace fmtree
