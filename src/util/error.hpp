// Error types shared across the fmtree libraries.
//
// All recoverable errors are reported via exceptions derived from
// fmtree::Error; programming errors (violated preconditions on internal
// interfaces) use FMTREE_ASSERT which terminates with a message.
#pragma once

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fmtree {

/// Root of the fmtree exception hierarchy.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A model is structurally invalid (bad arity, cycle, dangling reference, ...).
class ModelError : public Error {
public:
  explicit ModelError(const std::string& what) : Error("model error: " + what) {}
};

/// Text-format input could not be parsed.
class ParseError : public Error {
public:
  ParseError(std::size_t line, const std::string& what)
      : Error("parse error at line " + std::to_string(line) + ": " + what), line_(line) {}

  std::size_t line() const noexcept { return line_; }

private:
  std::size_t line_;
};

/// A numeric routine received parameters outside its domain.
class DomainError : public Error {
public:
  explicit DomainError(const std::string& what) : Error("domain error: " + what) {}
};

/// An analysis backend cannot handle the given model (e.g. CTMC conversion
/// of a model with deterministic inspection clocks).
class UnsupportedModelError : public Error {
public:
  explicit UnsupportedModelError(const std::string& what)
      : Error("unsupported model: " + what) {}
};

/// I/O failure (file not found, write error, malformed CSV, ...).
class IoError : public Error {
public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "fmtree assertion failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  // Internal invariant violations are not recoverable; fail loudly.
  std::fputs(os.str().c_str(), stderr);
  std::fputc('\n', stderr);
  std::abort();
}
}  // namespace detail

}  // namespace fmtree

/// Precondition/invariant check for internal interfaces. Always enabled:
/// analysis results silently computed from corrupted state are worse than a
/// crash.
#define FMTREE_ASSERT(expr, msg)                                              \
  do {                                                                        \
    if (!(expr)) ::fmtree::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
