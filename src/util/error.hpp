// Error types shared across the fmtree libraries.
//
// All recoverable errors are reported via exceptions derived from
// fmtree::Error; programming errors (violated preconditions on internal
// interfaces) use FMTREE_ASSERT which terminates with a message.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fmtree {

/// Root of the fmtree exception hierarchy.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A model is structurally invalid (bad arity, cycle, dangling reference, ...).
class ModelError : public Error {
public:
  explicit ModelError(const std::string& what) : Error("model error: " + what) {}
};

/// Text-format input could not be parsed. Carries the source location down
/// to the column and the offending token so diagnostics can point at the
/// exact spot, plus a stable code and an optional hint (see
/// util/diagnostics.hpp for the code ranges).
class ParseError : public Error {
public:
  ParseError(std::size_t line, const std::string& what)
      : ParseError(line, 0, {}, what) {}

  ParseError(std::size_t line, std::size_t column, std::string token,
             const std::string& what, std::string code = "P101", std::string hint = {})
      : Error(render(line, column, token, what)),
        line_(line),
        column_(column),
        token_(std::move(token)),
        message_(what),
        code_(std::move(code)),
        hint_(std::move(hint)) {}

  std::size_t line() const noexcept { return line_; }
  /// 1-based column of the offending token; 0 when unknown.
  std::size_t column() const noexcept { return column_; }
  /// Text of the offending token; empty when not applicable.
  const std::string& token() const noexcept { return token_; }
  /// The bare message without the "parse error at ..." prefix.
  const std::string& message() const noexcept { return message_; }
  const std::string& code() const noexcept { return code_; }
  const std::string& hint() const noexcept { return hint_; }

protected:
  /// For aggregate subclasses that supply a fully rendered what().
  struct Raw {};
  ParseError(Raw, std::size_t line, std::size_t column, const std::string& what)
      : Error(what), line_(line), column_(column), message_(what) {}

private:
  static std::string render(std::size_t line, std::size_t column,
                            const std::string& token, const std::string& what) {
    std::string out = "parse error at line " + std::to_string(line);
    if (column != 0) out += ", column " + std::to_string(column);
    out += ": " + what;
    // Mention the offending token unless the message already quotes it.
    if (!token.empty() && what.find("'" + token + "'") == std::string::npos)
      out += " (at '" + token + "')";
    return out;
  }

  std::size_t line_ = 0;
  std::size_t column_ = 0;
  std::string token_;
  std::string message_;
  std::string code_ = "P101";
  std::string hint_;
};

/// A numeric routine received parameters outside its domain.
class DomainError : public Error {
public:
  explicit DomainError(const std::string& what) : Error("domain error: " + what) {}
};

/// An analysis backend cannot handle the given model (e.g. CTMC conversion
/// of a model with deterministic inspection clocks).
class UnsupportedModelError : public Error {
public:
  explicit UnsupportedModelError(const std::string& what)
      : Error("unsupported model: " + what) {}
};

/// I/O failure (file not found, write error, malformed CSV, ...).
class IoError : public Error {
public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// A computation hit an explicit resource budget (iteration cap, series
/// length cap, state-space cap, node cap). Unlike DomainError, the inputs
/// were valid — the work was simply larger than the budget — so the error
/// carries the partial progress made, letting callers report how far the
/// computation got or fall back to another backend.
class ResourceLimitError : public Error {
public:
  struct Progress {
    std::uint64_t iterations = 0;  ///< iterations / series terms completed
    double residual = 0.0;         ///< last convergence residual; 0 if n/a
    std::uint64_t states = 0;      ///< states / nodes built; 0 if n/a
  };

  ResourceLimitError(const std::string& what, Progress progress)
      : Error("resource limit: " + what + render(progress)), progress_(progress) {}

  const Progress& progress() const noexcept { return progress_; }

private:
  static std::string render(const Progress& p) {
    std::ostringstream os;
    os << " [progress:";
    if (p.iterations != 0) os << " iterations=" << p.iterations;
    if (p.residual != 0.0) os << " residual=" << p.residual;
    if (p.states != 0) os << " states=" << p.states;
    os << "]";
    return os.str();
  }

  Progress progress_;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "fmtree assertion failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  // Internal invariant violations are not recoverable; fail loudly.
  std::fputs(os.str().c_str(), stderr);
  std::fputc('\n', stderr);
  std::abort();
}
}  // namespace detail

}  // namespace fmtree

/// Precondition/invariant check for internal interfaces. Always enabled:
/// analysis results silently computed from corrupted state are worse than a
/// crash.
#define FMTREE_ASSERT(expr, msg)                                              \
  do {                                                                        \
    if (!(expr)) ::fmtree::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
