#include "util/diagnostics.hpp"

#include <sstream>

namespace fmtree {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

void Diagnostics::add(Diagnostic d) {
  if (d.severity == Severity::Error) ++errors_;
  items_.push_back(std::move(d));
}

void Diagnostics::error(std::string code, SourceLocation loc, std::string message,
                        std::string hint, std::string token) {
  add(Diagnostic{Severity::Error, std::move(code), loc, std::move(message),
                 std::move(hint), std::move(token)});
}

void Diagnostics::warning(std::string code, SourceLocation loc, std::string message,
                          std::string hint) {
  add(Diagnostic{Severity::Warning, std::move(code), loc, std::move(message),
                 std::move(hint), {}});
}

std::string format_diagnostic(const Diagnostic& d) {
  std::ostringstream os;
  if (d.loc.line != 0) {
    os << d.loc.line << ':';
    if (d.loc.column != 0) os << d.loc.column << ':';
    os << ' ';
  }
  os << severity_name(d.severity) << '[' << d.code << "]: " << d.message;
  if (!d.token.empty() && d.message.find("'" + d.token + "'") == std::string::npos)
    os << " (at '" << d.token << "')";
  if (!d.hint.empty()) os << " (hint: " << d.hint << ')';
  return os.str();
}

std::string Diagnostics::format() const {
  std::string out;
  for (const Diagnostic& d : items_) {
    out += format_diagnostic(d);
    out += '\n';
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Diagnostics::to_json() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < items_.size(); ++i) {
    const Diagnostic& d = items_[i];
    if (i != 0) os << ',';
    os << "{\"severity\":\"" << severity_name(d.severity) << "\",\"code\":\""
       << json_escape(d.code) << "\",\"line\":" << d.loc.line
       << ",\"column\":" << d.loc.column << ",\"message\":\""
       << json_escape(d.message) << '"';
    if (!d.hint.empty()) os << ",\"hint\":\"" << json_escape(d.hint) << '"';
    if (!d.token.empty()) os << ",\"token\":\"" << json_escape(d.token) << '"';
    os << '}';
  }
  os << ']';
  return os.str();
}

namespace {

bool is_parse_code(const std::string& code) {
  return !code.empty() && (code[0] == 'L' || code[0] == 'P');
}

std::vector<Diagnostic> errors_only(const std::vector<Diagnostic>& items) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : items)
    if (d.severity == Severity::Error) out.push_back(d);
  return out;
}

std::string render_aggregate(const char* kind, const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  std::size_t errors = 0;
  for (const Diagnostic& d : diags)
    if (d.severity == Severity::Error) ++errors;
  os << errors << ' ' << kind << (errors == 1 ? "" : "s") << ":\n";
  for (const Diagnostic& d : diags) os << "  " << format_diagnostic(d) << '\n';
  return os.str();
}

SourceLocation first_error_location(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags)
    if (d.severity == Severity::Error) return d.loc;
  return {};
}

}  // namespace

ParseErrors::ParseErrors(std::vector<Diagnostic> diagnostics)
    : ParseError(Raw{}, first_error_location(diagnostics).line,
                 first_error_location(diagnostics).column,
                 render_aggregate("parse error", diagnostics)),
      diagnostics_(std::move(diagnostics)) {}

ModelErrors::ModelErrors(std::vector<Diagnostic> diagnostics)
    : ModelError(render_aggregate("model error", diagnostics)),
      diagnostics_(std::move(diagnostics)) {}

void Diagnostics::throw_if_errors() const {
  if (!has_errors()) return;
  const std::vector<Diagnostic> errs = errors_only(items_);
  for (const Diagnostic& d : errs)
    if (is_parse_code(d.code)) throw ParseErrors(errs);
  throw ModelErrors(errs);
}

Diagnostic diagnostic_from(const ParseError& e) {
  return Diagnostic{Severity::Error, e.code(), {e.line(), e.column()},
                    e.message().empty() ? std::string(e.what()) : e.message(),
                    e.hint(), e.token()};
}

Diagnostic diagnostic_from(const Error& e, std::string code) {
  std::string message = e.what();
  // Strip the class prefix ("model error: ", "domain error: ", ...) — the
  // diagnostic code already classifies the problem.
  if (const std::size_t colon = message.find(": "); colon != std::string::npos &&
                                                    colon < 24)
    message.erase(0, colon + 2);
  return Diagnostic{Severity::Error, std::move(code), {}, std::move(message), {}, {}};
}

}  // namespace fmtree
