// A minimal JSON reader for fmtree's own on-disk artifacts (result-cache
// entries). Full JSON grammar on input; numbers are kept as their raw
// source tokens so callers can decode them losslessly (the cache stores
// doubles as C99 hexfloat *strings*, not JSON numbers, precisely to avoid
// decimal round-trip error — see batch/result_cache.cpp).
//
// This is deliberately not a general-purpose JSON library: no DOM mutation,
// no serializer (writers hand-format their output), no streaming. Errors
// throw IoError with a byte offset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fmtree::json {

enum class Kind { Null, Bool, Number, String, Array, Object };

/// A parsed JSON value. Object member order is preserved.
struct Value {
  Kind kind = Kind::Null;
  bool boolean = false;
  std::string text;  ///< String content, or the raw token of a Number.
  std::vector<Value> items;
  std::vector<std::pair<std::string, Value>> members;

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const noexcept;

  bool is(Kind k) const noexcept { return kind == k; }

  /// Decodes a Number token as u64 / double; throws IoError on any other
  /// kind or on trailing garbage in the token.
  std::uint64_t as_u64() const;
  double as_double() const;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws IoError on malformed input.
Value parse(std::string_view text);

/// Serializes a Value back to compact (whitespace-free, single-line) JSON.
/// Number tokens are emitted verbatim, so parse -> write round-trips every
/// value byte; strings are re-escaped through escape(). Used by the serve
/// protocol to extract embedded sub-documents from a parsed event line.
std::string write(const Value& v);

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
std::string escape(std::string_view s);

}  // namespace fmtree::json
