#include "util/rng.hpp"

namespace fmtree {

std::uint64_t RandomStream::below(std::uint64_t n) noexcept {
  if (n == 0) return 0;  // degenerate; callers should not ask, but stay total
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = engine_();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = engine_();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace fmtree
