#include "util/rng.hpp"

namespace fmtree {

namespace {

/// Lemire's nearly-divisionless bounded generation, shared by both stream
/// families (identical rejection behavior, so tests can reason about one).
template <typename Engine>
std::uint64_t lemire_below(Engine& next, std::uint64_t n) noexcept {
  if (n == 0) return 0;  // degenerate; callers should not ask, but stay total
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace

std::uint64_t RandomStream::below(std::uint64_t n) noexcept {
  return lemire_below(*this, n);
}

std::uint64_t CounterStream::below(std::uint64_t n) noexcept {
  return lemire_below(*this, n);
}

}  // namespace fmtree
