// Probability distributions over non-negative durations.
//
// A Distribution is a small value type (tagged union) so models can be
// copied, compared and serialized freely. Sampling takes an explicit
// RandomStream to keep all randomness externally controlled.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>

#include "util/rng.hpp"

namespace fmtree {

/// Exponential(rate): mean 1/rate.
struct Exponential {
  double rate;
  friend bool operator==(const Exponential&, const Exponential&) = default;
};

/// Erlang(k, rate): sum of k iid Exponential(rate) phases; mean k/rate.
struct Erlang {
  int shape;    ///< number of phases k >= 1
  double rate;  ///< rate of each phase
  friend bool operator==(const Erlang&, const Erlang&) = default;
};

/// Weibull(shape, scale): F(x) = 1 - exp(-(x/scale)^shape).
struct Weibull {
  double shape;
  double scale;
  friend bool operator==(const Weibull&, const Weibull&) = default;
};

/// Lognormal: log X ~ Normal(mu, sigma^2).
struct Lognormal {
  double mu;
  double sigma;
  friend bool operator==(const Lognormal&, const Lognormal&) = default;
};

/// Uniform on [lo, hi].
struct UniformDist {
  double lo;
  double hi;
  friend bool operator==(const UniformDist&, const UniformDist&) = default;
};

/// Point mass at `value`. value = +infinity means "never happens".
struct Deterministic {
  double value;
  friend bool operator==(const Deterministic&, const Deterministic&) = default;
};

/// A duration distribution. Construct via the factory functions below, which
/// validate parameters (throwing DomainError on nonsense).
class Distribution {
public:
  using Variant =
      std::variant<Exponential, Erlang, Weibull, Lognormal, UniformDist, Deterministic>;

  static Distribution exponential(double rate);
  static Distribution erlang(int shape, double rate);
  /// Erlang with the given mean split over `shape` phases (rate = shape/mean).
  static Distribution erlang_mean(int shape, double mean);
  static Distribution weibull(double shape, double scale);
  static Distribution lognormal(double mu, double sigma);
  static Distribution uniform(double lo, double hi);
  static Distribution deterministic(double value);
  /// Point mass at +infinity: the event never occurs.
  static Distribution never();

  /// Draw a variate.
  double sample(RandomStream& rng) const;

  /// E[X]; +infinity for never().
  double mean() const;

  /// Var[X]; 0 for deterministic, +infinity propagates from never().
  double variance() const;

  /// P(X <= x).
  double cdf(double x) const;

  /// The distribution of factor * X (time rescaling within the same family:
  /// rates divide by the factor, scales multiply). factor must be positive
  /// and finite; never() is a fixpoint. Used by fleet generators to jitter
  /// and couple per-asset degradation speeds without leaving the family —
  /// so scaled models stay CTMC-convertible and canonically hashable.
  Distribution scaled(double factor) const;

  /// True iff this is a point mass at +infinity.
  bool is_never() const noexcept;

  /// Short human-readable form, e.g. "Erlang(3, rate=0.25)".
  std::string to_string() const;

  const Variant& as_variant() const noexcept { return v_; }

  friend bool operator==(const Distribution&, const Distribution&) = default;

private:
  explicit Distribution(Variant v) noexcept : v_(std::move(v)) {}

  Variant v_;
};

std::ostream& operator<<(std::ostream& os, const Distribution& d);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). Exposed for tests and estimators.
double normal_quantile(double p);

/// Standard normal CDF.
double normal_cdf(double x);

/// Regularized lower incomplete gamma P(a, x); used for Erlang/Weibull CDFs
/// and chi-square tail probabilities.
double gamma_p(double a, double x);

/// ln Gamma(x) for x > 0.
double log_gamma(double x);

}  // namespace fmtree
