#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace fmtree {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), alignment_(headers_.size(), Align::Left) {
  if (headers_.empty()) throw DomainError("table requires at least one column");
}

void TextTable::set_alignment(std::vector<Align> alignment) {
  if (alignment.size() != headers_.size())
    throw DomainError("alignment width does not match header width");
  alignment_ = std::move(alignment);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != headers_.size())
    throw DomainError("row width does not match header width");
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      if (alignment_[c] == Align::Right)
        os << std::setw(static_cast<int>(widths[c])) << std::right << row[c];
      else
        os << std::setw(static_cast<int>(widths[c])) << std::left << row[c];
      os << " |";
    }
    os << '\n';
  };

  auto rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
    }
    os << '\n';
  };

  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string cell(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string cell_sci(double value, int significant) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(significant - 1) << value;
  return os.str();
}

std::string cell(std::uint64_t value) { return std::to_string(value); }
std::string cell(int value) { return std::to_string(value); }

}  // namespace fmtree
