#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/distributions.hpp"
#include "util/error.hpp"

namespace fmtree {

void RunningStats::add(double x) noexcept {
  if (!std::isfinite(x)) {
    ++non_finite_;
    return;
  }
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  non_finite_ += other.non_finite_;
  if (other.n_ == 0) return;
  if (n_ == 0) {
    const std::uint64_t non_finite = non_finite_;
    *this = other;
    non_finite_ = non_finite;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::std_error() const noexcept {
  return n_ >= 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

ConfidenceInterval RunningStats::mean_ci(double confidence) const {
  if (!(confidence > 0 && confidence < 1))
    throw DomainError("confidence must lie in (0,1)");
  if (non_finite_ > 0)
    throw DomainError("sample contains " + std::to_string(non_finite_) +
                      " non-finite value(s); refusing to build a confidence interval");
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double hw = z * std_error();
  return {mean(), mean() - hw, mean() + hw, confidence};
}

ConfidenceInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                   double confidence) {
  if (trials == 0) throw DomainError("wilson_interval requires trials > 0");
  if (successes > trials) throw DomainError("successes exceed trials");
  if (!(confidence > 0 && confidence < 1))
    throw DomainError("confidence must lie in (0,1)");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2 * n)) / denom;
  const double half = z * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n)) / denom;
  return {p, std::max(0.0, centre - half), std::min(1.0, centre + half), confidence};
}

ConfidenceInterval hoeffding_interval(double point, std::uint64_t trials,
                                      double confidence) {
  if (trials == 0) throw DomainError("hoeffding_interval requires trials > 0");
  if (!(confidence > 0 && confidence < 1))
    throw DomainError("confidence must lie in (0,1)");
  const double alpha = 1.0 - confidence;
  const double eps =
      std::sqrt(std::log(2.0 / alpha) / (2.0 * static_cast<double>(trials)));
  return {point, std::max(0.0, point - eps), std::min(1.0, point + eps), confidence};
}

std::uint64_t okamoto_sample_size(double eps, double confidence) {
  if (!(eps > 0)) throw DomainError("okamoto_sample_size requires eps > 0");
  if (!(confidence > 0 && confidence < 1))
    throw DomainError("confidence must lie in (0,1)");
  const double alpha = 1.0 - confidence;
  return static_cast<std::uint64_t>(
      std::ceil(std::log(2.0 / alpha) / (2.0 * eps * eps)));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (!(hi > lo)) throw DomainError("histogram requires hi > lo");
  if (bins == 0) throw DomainError("histogram requires at least one bin");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // guard fp rounding
  ++counts_[idx];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  if (i >= counts_.size()) throw DomainError("histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  if (i >= counts_.size()) throw DomainError("histogram bin out of range");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double quantile(std::vector<double> sample, double q) {
  if (sample.empty()) throw DomainError("quantile of empty sample");
  if (!(q >= 0 && q <= 1)) throw DomainError("quantile requires q in [0,1]");
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= sample.size()) return sample.back();
  const double frac = pos - static_cast<double>(i);
  return sample[i] * (1.0 - frac) + sample[i + 1] * frac;
}

}  // namespace fmtree
