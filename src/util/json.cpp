#include "util/json.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace fmtree::json {

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw IoError("json: " + what + " at byte " + std::to_string(pos_));
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string_value();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value{.kind = Kind::Bool, .boolean = true};
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value{.kind = Kind::Bool, .boolean = false};
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  Value parse_string_value() {
    Value v;
    v.kind = Kind::String;
    v.text = parse_string();
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: fail("bad escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("bad \\u escape");
    }
    return value;
  }

  static void append_codepoint(std::string& out, unsigned cp) {
    // BMP-only UTF-8 encoding; surrogate pairs are passed through as two
    // 3-byte sequences, which is lossy but irrelevant for cache files.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool number_char = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                               c == 'E' || c == '+' || c == '-';
      if (!number_char) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Kind::Number;
    v.text.assign(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const noexcept {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

std::uint64_t Value::as_u64() const {
  if (kind != Kind::Number) throw IoError("json: expected a number");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0')
    throw IoError("json: bad unsigned integer '" + text + "'");
  return v;
}

double Value::as_double() const {
  if (kind != Kind::Number) throw IoError("json: expected a number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0')
    throw IoError("json: bad number '" + text + "'");
  return v;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

namespace {

void write_value(const Value& v, std::string& out) {
  switch (v.kind) {
    case Kind::Null: out += "null"; return;
    case Kind::Bool: out += v.boolean ? "true" : "false"; return;
    case Kind::Number: out += v.text; return;
    case Kind::String:
      out.push_back('"');
      out += escape(v.text);
      out.push_back('"');
      return;
    case Kind::Array:
      out.push_back('[');
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i != 0) out.push_back(',');
        write_value(v.items[i], out);
      }
      out.push_back(']');
      return;
    case Kind::Object:
      out.push_back('{');
      for (std::size_t i = 0; i < v.members.size(); ++i) {
        if (i != 0) out.push_back(',');
        out.push_back('"');
        out += escape(v.members[i].first);
        out += "\":";
        write_value(v.members[i].second, out);
      }
      out.push_back('}');
      return;
  }
}

}  // namespace

std::string write(const Value& v) {
  std::string out;
  write_value(v, out);
  return out;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace fmtree::json
