#include "util/fault_injection.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace fmtree::fault {

namespace {

/// splitmix64: the standard 64-bit finalizer — full avalanche, so
/// consecutive hit indices decorrelate into independent coin flips.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Deterministic coin for the probability trigger: hit i of a site fires
/// iff u01 < p, where u01 is a pure function of (seed, site, i).
bool coin(std::uint64_t seed, std::string_view site, std::uint64_t hit,
          double p) noexcept {
  const std::uint64_t v = mix64(seed ^ mix64(fnv1a(site)) ^ mix64(hit));
  const double u01 =
      static_cast<double>(v >> 11) * 0x1.0p-53;  // 53 uniform bits in [0,1)
  return u01 < p;
}

double parse_number(std::string_view text, std::string_view what) {
  const std::string copy(text);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0')
    throw DomainError("fault spec: bad " + std::string(what) + " '" + copy + "'");
  return v;
}

std::uint64_t parse_count(std::string_view text, std::string_view what) {
  const double v = parse_number(text, what);
  if (v < 0 || v != static_cast<double>(static_cast<std::uint64_t>(v)))
    throw DomainError("fault spec: " + std::string(what) +
                      " must be a nonnegative integer");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

FaultSpec parse_fault_spec(std::string_view text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos || colon == 0)
    throw DomainError("fault spec '" + std::string(text) +
                      "' must look like site:mode[,trigger][,limit=n]");
  FaultSpec spec;
  spec.site = std::string(text.substr(0, colon));

  bool have_mode = false;
  std::string_view rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view token = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (token.empty())
      throw DomainError("fault spec '" + std::string(text) + "': empty token");
    const std::size_t eq = token.find('=');
    const std::string_view key = token.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{} : token.substr(eq + 1);
    if (key == "error" || key == "corrupt") {
      spec.mode = key == "error" ? Mode::Error : Mode::Corrupt;
      have_mode = true;
    } else if (key == "stall") {
      spec.mode = Mode::Stall;
      spec.stall_ms = parse_count(value, "stall duration");
      have_mode = true;
    } else if (key == "always") {
      spec.probability = -1.0;
      spec.nth = 0;
    } else if (key == "p") {
      spec.probability = parse_number(value, "probability");
      if (!(spec.probability > 0 && spec.probability <= 1))
        throw DomainError("fault spec: probability must lie in (0,1]");
    } else if (key == "seed") {
      spec.seed = parse_count(value, "seed");
    } else if (key == "nth") {
      spec.nth = parse_count(value, "nth");
      if (spec.nth == 0) throw DomainError("fault spec: nth is 1-based");
    } else if (key == "limit") {
      spec.limit = parse_count(value, "limit");
      if (spec.limit == 0) throw DomainError("fault spec: limit must be positive");
    } else {
      throw DomainError("fault spec '" + std::string(text) +
                        "': unknown token '" + std::string(key) + "'");
    }
  }
  if (!have_mode)
    throw DomainError("fault spec '" + std::string(text) +
                      "' needs a mode (error, corrupt, or stall=<ms>)");
  if (spec.probability > 0 && spec.nth != 0)
    throw DomainError("fault spec: p= and nth= triggers are mutually exclusive");
  return spec;
}

FaultRegistry::FaultRegistry() {
  const char* env = std::getenv("FMTREE_FAULTS");
  if (env == nullptr) return;
  std::string_view all(env);
  while (!all.empty()) {
    const std::size_t semi = all.find(';');
    const std::string_view one = all.substr(0, semi);
    all = semi == std::string_view::npos ? std::string_view{}
                                         : all.substr(semi + 1);
    if (one.empty()) continue;
    try {
      arm(parse_fault_spec(one));
    } catch (const DomainError& e) {
      // Env arming must never take the process down; report and skip.
      std::fprintf(stderr, "fmtree: FMTREE_FAULTS: %s (entry skipped)\n",
                   e.what());
    }
  }
}

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

void FaultRegistry::arm(FaultSpec spec) {
  if (spec.site.empty()) throw DomainError("fault spec needs a site name");
  // Copy the key first: the RHS of map[key] = value is sequenced before the
  // subscript, so keying on spec.site while moving spec would key on "".
  const std::string site = spec.site;
  std::lock_guard lock(mutex_);
  sites_[site] = Armed{std::move(spec), 0, 0};
  armed_count_.store(sites_.size(), std::memory_order_relaxed);
}

bool FaultRegistry::disarm(std::string_view site) {
  std::lock_guard lock(mutex_);
  const bool erased = sites_.erase(std::string(site)) != 0;
  armed_count_.store(sites_.size(), std::memory_order_relaxed);
  return erased;
}

void FaultRegistry::disarm_all() {
  std::lock_guard lock(mutex_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

std::uint64_t FaultRegistry::hits(std::string_view site) const {
  std::lock_guard lock(mutex_);
  const auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0 : it->second.hits;
}

std::optional<FaultHit> FaultRegistry::check(std::string_view site) {
  std::optional<FaultHit> hit;
  {
    std::lock_guard lock(mutex_);
    const auto it = sites_.find(std::string(site));
    if (it == sites_.end()) return std::nullopt;
    Armed& armed = it->second;
    const std::uint64_t index = ++armed.hits;
    if (armed.fired >= armed.spec.limit) return std::nullopt;
    bool fire = true;
    if (armed.spec.nth != 0) {
      fire = index == armed.spec.nth;
    } else if (armed.spec.probability > 0) {
      fire = coin(armed.spec.seed, site, index, armed.spec.probability);
    }
    if (!fire) return std::nullopt;
    ++armed.fired;
    fires_.fetch_add(1, std::memory_order_relaxed);
    hit = FaultHit{armed.spec.mode, armed.spec.stall_ms};
  }
  // Sleep outside the registry mutex so a stalled site cannot block other
  // sites (or the watchdog arming path) behind it.
  if (hit->mode == Mode::Stall) {
    std::this_thread::sleep_for(std::chrono::milliseconds(hit->stall_ms));
  }
  return hit;
}

namespace detail {

bool fault_point_slow(std::string_view site) {
  const std::optional<FaultHit> hit = FaultRegistry::instance().check(site);
  if (!hit.has_value()) return false;
  if (hit->mode == Mode::Error) throw InjectedFault(std::string(site));
  return hit->mode == Mode::Corrupt;
}

}  // namespace detail

Scope::Scope(const std::vector<std::string>& specs) {
  sites_.reserve(specs.size());
  for (const std::string& text : specs) {
    FaultSpec spec = parse_fault_spec(text);
    sites_.push_back(spec.site);
    FaultRegistry::instance().arm(std::move(spec));
  }
}

Scope::~Scope() {
  for (const std::string& site : sites_) FaultRegistry::instance().disarm(site);
}

}  // namespace fmtree::fault
