#include "util/csv.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace fmtree {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const CsvRow& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << csv_escape(row[i]);
  }
  os_ << '\n';
}

std::vector<CsvRow> read_csv(std::istream& is) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;
  char c;
  while (is.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (is.peek() == '"') {
          is.get();
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty())
          throw IoError("csv: quote in the middle of an unquoted field");
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !field.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_has_content = false;
        }
        break;
      default:
        field += c;
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) throw IoError("csv: unterminated quoted field");
  if (row_has_content || !field.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<CsvRow> read_csv_string(const std::string& text) {
  std::istringstream is(text);
  return read_csv(is);
}

}  // namespace fmtree
