// Deterministic random number generation with independent substreams.
//
// Every stochastic computation in fmtree draws from a RandomStream, and every
// stream is identified by a (seed, stream-id) pair. Monte-Carlo trajectory i
// always uses stream i regardless of which thread runs it, so results are
// bit-for-bit reproducible at any thread count.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
// Stream separation uses SplitMix64 over (seed, stream) rather than jump
// polynomials: it is simpler, O(1), and collisions between the 2^64 streams
// of one seed are astronomically unlikely.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace fmtree {

/// SplitMix64: used for seeding and stream derivation. Passes BigCrush on its
/// own; never used as the main generator here.
class SplitMix64 {
public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256StarStar {
public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via SplitMix64, as the authors
  /// recommend. The all-zero state is unreachable this way.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// A stream of uniform variates identified by (seed, stream id).
///
/// Two RandomStreams with different ids (same seed) are statistically
/// independent; the same (seed, id) always reproduces the same sequence.
class RandomStream {
public:
  using result_type = std::uint64_t;

  RandomStream(std::uint64_t seed, std::uint64_t stream) noexcept
      : engine_(derive(seed, stream)), seed_(seed), stream_(stream) {}

  static constexpr result_type min() noexcept { return Xoshiro256StarStar::min(); }
  static constexpr result_type max() noexcept { return Xoshiro256StarStar::max(); }

  result_type operator()() noexcept { return engine_(); }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; safe as an argument to log().
  double uniform01_open_left() noexcept { return 1.0 - uniform01(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// A child stream derived from this stream's identity. Used to give each
  /// model component its own stream within a trajectory.
  RandomStream substream(std::uint64_t child) const noexcept {
    return RandomStream(derive(seed_, stream_), child);
  }

  std::uint64_t seed() const noexcept { return seed_; }
  std::uint64_t stream() const noexcept { return stream_; }

private:
  static std::uint64_t derive(std::uint64_t seed, std::uint64_t stream) noexcept {
    // Mix the pair (seed, stream) into one 64-bit engine seed. The golden
    // ratio constant decorrelates stream from seed; SplitMix64 then avalanches.
    SplitMix64 sm(seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
    (void)sm.next();
    return sm.next();
  }

  Xoshiro256StarStar engine_;
  std::uint64_t seed_;
  std::uint64_t stream_;
};

}  // namespace fmtree
