// Deterministic random number generation with independent substreams.
//
// Every stochastic computation in fmtree draws from a RandomStream, and every
// stream is identified by a (seed, stream-id) pair. Monte-Carlo trajectory i
// always uses stream i regardless of which thread runs it, so results are
// bit-for-bit reproducible at any thread count.
//
// Two generator families live here:
//
//  * RandomStream — stateful xoshiro256** (Blackman & Vigna), seeded via
//    SplitMix64. Stream separation uses SplitMix64 over (seed, stream)
//    rather than jump polynomials: it is simpler, O(1), and collisions
//    between the 2^64 streams of one seed are astronomically unlikely.
//    This is the scalar engine's generator.
//
//  * CounterStream — counter-based Philox-4x32-10 (Salmon et al., "Parallel
//    random numbers: as easy as 1, 2, 3"). Draw i of stream t under seed s
//    is the pure function philox(key = s, counter = (t, i)): no state to
//    carry, so a stream can be evaluated out of order, resumed at any draw
//    index, or interleaved across SIMD lanes without perturbing any other
//    stream. The batch trajectory kernel keys one CounterStream per
//    trajectory, which is what makes its reports bit-identical at any lane
//    width, chunk size and thread count by construction.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace fmtree {

/// SplitMix64: used for seeding and stream derivation. Passes BigCrush on its
/// own; never used as the main generator here.
class SplitMix64 {
public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256StarStar {
public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via SplitMix64, as the authors
  /// recommend. The all-zero state is unreachable this way.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// A stream of uniform variates identified by (seed, stream id).
///
/// Two RandomStreams with different ids (same seed) are statistically
/// independent; the same (seed, id) always reproduces the same sequence.
class RandomStream {
public:
  using result_type = std::uint64_t;

  RandomStream(std::uint64_t seed, std::uint64_t stream) noexcept
      : engine_(derive(seed, stream)), seed_(seed), stream_(stream) {}

  static constexpr result_type min() noexcept { return Xoshiro256StarStar::min(); }
  static constexpr result_type max() noexcept { return Xoshiro256StarStar::max(); }

  result_type operator()() noexcept { return engine_(); }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; safe as an argument to log().
  double uniform01_open_left() noexcept { return 1.0 - uniform01(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// A child stream derived from this stream's identity. Used to give each
  /// model component its own stream within a trajectory.
  RandomStream substream(std::uint64_t child) const noexcept {
    return RandomStream(derive(seed_, stream_), child);
  }

  std::uint64_t seed() const noexcept { return seed_; }
  std::uint64_t stream() const noexcept { return stream_; }

private:
  static std::uint64_t derive(std::uint64_t seed, std::uint64_t stream) noexcept {
    // Mix the pair (seed, stream) into one 64-bit engine seed. The golden
    // ratio constant decorrelates stream from seed; SplitMix64 then avalanches.
    SplitMix64 sm(seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
    (void)sm.next();
    return sm.next();
  }

  Xoshiro256StarStar engine_;
  std::uint64_t seed_;
  std::uint64_t stream_;
};

/// Philox-4x32-10: a counter-based generator. One invocation bijectively
/// maps a 128-bit counter (under a 64-bit key) to 128 output bits through
/// ten multiply-xor rounds; distinct counters therefore *cannot* collide
/// within a key. Passes BigCrush/Crush in the Random123 test battery.
class Philox4x32 {
public:
  struct Block {
    std::array<std::uint32_t, 4> word;
  };

  /// The block for counter (ctr_lo, ctr_hi) under `key`.
  static constexpr Block block(std::uint64_t key, std::uint64_t ctr_lo,
                               std::uint64_t ctr_hi) noexcept {
    std::uint32_t c0 = static_cast<std::uint32_t>(ctr_lo);
    std::uint32_t c1 = static_cast<std::uint32_t>(ctr_lo >> 32);
    std::uint32_t c2 = static_cast<std::uint32_t>(ctr_hi);
    std::uint32_t c3 = static_cast<std::uint32_t>(ctr_hi >> 32);
    std::uint32_t k0 = static_cast<std::uint32_t>(key);
    std::uint32_t k1 = static_cast<std::uint32_t>(key >> 32);
    for (int round = 0; round < 10; ++round) {
      const std::uint64_t p0 = static_cast<std::uint64_t>(kMul0) * c0;
      const std::uint64_t p1 = static_cast<std::uint64_t>(kMul1) * c2;
      const std::uint32_t n0 =
          static_cast<std::uint32_t>(p1 >> 32) ^ c1 ^ k0;
      const std::uint32_t n1 = static_cast<std::uint32_t>(p1);
      const std::uint32_t n2 =
          static_cast<std::uint32_t>(p0 >> 32) ^ c3 ^ k1;
      const std::uint32_t n3 = static_cast<std::uint32_t>(p0);
      c0 = n0;
      c1 = n1;
      c2 = n2;
      c3 = n3;
      k0 += kWeyl0;
      k1 += kWeyl1;
    }
    return Block{{c0, c1, c2, c3}};
  }

private:
  static constexpr std::uint32_t kMul0 = 0xD2511F53u;
  static constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1
};

/// A counter-based stream of uniform variates identified by (seed, stream).
///
/// Output i is the pure function Philox(key = seed, counter = (stream, i)) —
/// there is no hidden state, so the same (seed, stream, i) triple always
/// yields the same value no matter which draws preceded it, and distinct
/// (stream, i) pairs can never collide under one seed. Interface mirrors
/// RandomStream so samplers can be written once against either.
class CounterStream {
public:
  using result_type = std::uint64_t;

  CounterStream(std::uint64_t seed, std::uint64_t stream) noexcept
      : seed_(seed), stream_(stream) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// The draw at `index` of stream (seed, stream) — random access, no state.
  static constexpr result_type at(std::uint64_t seed, std::uint64_t stream,
                                  std::uint64_t index) noexcept {
    const Philox4x32::Block b = Philox4x32::block(seed, index >> 1, stream);
    const unsigned half = static_cast<unsigned>(index & 1) * 2;
    return static_cast<std::uint64_t>(b.word[half]) |
           (static_cast<std::uint64_t>(b.word[half + 1]) << 32);
  }

  /// Sequential draws walk the counter; each Philox block serves two 64-bit
  /// outputs, so only every second call runs the cipher.
  result_type operator()() noexcept {
    const std::uint64_t blk = draw_ >> 1;
    if (blk != cached_block_) {
      const Philox4x32::Block b = Philox4x32::block(seed_, blk, stream_);
      cached_[0] = static_cast<std::uint64_t>(b.word[0]) |
                   (static_cast<std::uint64_t>(b.word[1]) << 32);
      cached_[1] = static_cast<std::uint64_t>(b.word[2]) |
                   (static_cast<std::uint64_t>(b.word[3]) << 32);
      cached_block_ = blk;
    }
    return cached_[draw_++ & 1];
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; safe as an argument to log().
  double uniform01_open_left() noexcept { return 1.0 - uniform01(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  std::uint64_t seed() const noexcept { return seed_; }
  std::uint64_t stream() const noexcept { return stream_; }
  /// Index of the next draw operator()() would produce.
  std::uint64_t draw_index() const noexcept { return draw_; }

private:
  std::uint64_t seed_;
  std::uint64_t stream_;
  std::uint64_t draw_ = 0;
  std::uint64_t cached_block_ = ~std::uint64_t{0};
  std::array<std::uint64_t, 2> cached_{};
};

}  // namespace fmtree
