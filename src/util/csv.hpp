// Minimal CSV reading/writing for incident databases and bench outputs.
//
// Supports quoted fields with embedded commas/quotes/newlines (RFC 4180
// subset). Good enough for our own round-trips; not a general CSV library.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fmtree {

using CsvRow = std::vector<std::string>;

/// Streaming CSV writer. Quotes fields only when needed.
class CsvWriter {
public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void write_row(const CsvRow& row);

private:
  std::ostream& os_;
};

/// Parses all rows from a stream. Throws IoError on malformed quoting.
std::vector<CsvRow> read_csv(std::istream& is);

/// Convenience: parse from an in-memory string.
std::vector<CsvRow> read_csv_string(const std::string& text);

/// Escapes one field per RFC 4180 (used by CsvWriter; exposed for tests).
std::string csv_escape(const std::string& field);

}  // namespace fmtree
