// Second case study: the train-mounted pneumatic compressor, the other
// railway asset analysed with fault maintenance trees by the same research
// line. Unlike the EI-joint, the compressor's maintenance plan layers two
// inspection regimes — a frequent cheap "minor service" on the consumables
// (oil, dryer, separator) and a rare expensive "major inspection" of the
// wear parts — optionally topped by a periodic overhaul. The model therefore
// exercises multiple inspection modules per FMT.
//
// Parameters are synthetic (same caveat as the EI-joint; see DESIGN.md).
// Time unit: years. Cost unit: euros.
#pragma once

#include <string>
#include <vector>

#include "fmt/fmtree.hpp"

namespace fmtree::compressor {

/// Tree (reconstructed taxonomy):
///
///   compressor_failure (OR)
///   ├─ air_supply_failure (OR): cylinder_wear, piston_rings, valve_wear
///   ├─ air_treatment_failure (OR): dryer_saturation, oil_carryover
///   ├─ lubrication_failure (OR): oil_degradation, oil_pump
///   └─ drive_failure (OR): motor_bearing, motor_winding (memoryless)
///
///   RDEP: degraded oil (phase >= 3) accelerates cylinder x2.5, rings x2,
///   bearing x1.5 — poor lubrication eats the mechanical parts.
struct CompressorParameters {
  // Wear parts (major-inspection scope).
  double cylinder_mean = 12.0;
  double rings_mean = 8.0;
  double valve_mean = 10.0;
  double bearing_mean = 20.0;
  // Consumables (minor-service scope).
  double dryer_mean = 4.0;
  double separator_mean = 6.0;
  double oil_mean = 5.0;
  // Memoryless electrical failures.
  double pump_mean = 25.0;
  double winding_mean = 30.0;
  // Lubrication coupling.
  bool enable_rdep = true;
  double oil_cylinder_factor = 2.5;
  double oil_rings_factor = 2.0;
  double oil_bearing_factor = 1.5;
  int oil_trigger_phase = 3;

  static CompressorParameters defaults() { return {}; }
};

/// A two-tier maintenance plan. Periods <= 0 disable the tier.
struct CompressorPlan {
  std::string name;
  double minor_period = 0.5;   ///< minor service: consumables
  double minor_cost = 150.0;
  double major_period = 2.0;   ///< major inspection: wear parts
  double major_cost = 1200.0;
  double overhaul_period = 0.0;  ///< full renewal; <= 0: none
  double overhaul_cost = 15000.0;
  fmt::CorrectivePolicy corrective{true, 0.05, 25000.0, 200000.0};
};

/// Builds the compressor FMT under a plan.
fmt::FaultMaintenanceTree build_compressor(const CompressorParameters& params,
                                           const CompressorPlan& plan);

/// The maintenance plans compared in the study extension:
/// none (corrective only), minor-only, major-only, the combined plan in
/// force, and combined + 8-year overhaul.
std::vector<CompressorPlan> compressor_plans();

/// The plan in force: minor service twice a year, major inspection every
/// two years, no scheduled overhaul.
CompressorPlan current_plan();

}  // namespace fmtree::compressor
