#include "compressor/compressor.hpp"

#include "util/error.hpp"

namespace fmtree::compressor {

fmt::FaultMaintenanceTree build_compressor(const CompressorParameters& params,
                                           const CompressorPlan& plan) {
  fmt::FaultMaintenanceTree m;

  // ---- Air supply: the wear parts -------------------------------------------
  const auto cylinder = m.add_ebe(
      "cylinder_wear", fmt::DegradationModel::erlang(6, params.cylinder_mean, 4),
      fmt::RepairSpec{"re_bore", 3500.0, 0.01});
  const auto rings =
      m.add_ebe("piston_rings", fmt::DegradationModel::erlang(4, params.rings_mean, 3),
                fmt::RepairSpec{"replace_rings", 1800.0, 0.005});
  const auto valve =
      m.add_ebe("valve_wear", fmt::DegradationModel::erlang(4, params.valve_mean, 2),
                fmt::RepairSpec{"re_seat_valve", 900.0});
  const auto air_supply = m.add_or("air_supply_failure", {cylinder, rings, valve});

  // ---- Air treatment: the consumables ----------------------------------------
  const auto dryer = m.add_ebe(
      "dryer_saturation", fmt::DegradationModel::erlang(3, params.dryer_mean, 2),
      fmt::RepairSpec{"replace_desiccant", 250.0});
  const auto separator = m.add_ebe(
      "oil_carryover", fmt::DegradationModel::erlang(3, params.separator_mean, 2),
      fmt::RepairSpec{"replace_separator", 400.0});
  const auto treatment = m.add_or("air_treatment_failure", {dryer, separator});

  // ---- Lubrication -------------------------------------------------------------
  const auto oil =
      m.add_ebe("oil_degradation", fmt::DegradationModel::erlang(4, params.oil_mean, 2),
                fmt::RepairSpec{"oil_change", 180.0});
  const auto pump = m.add_basic_event(
      "oil_pump", Distribution::exponential(1.0 / params.pump_mean));
  const auto lubrication = m.add_or("lubrication_failure", {oil, pump});

  // ---- Drive ---------------------------------------------------------------------
  const auto bearing =
      m.add_ebe("motor_bearing", fmt::DegradationModel::erlang(5, params.bearing_mean, 3),
                fmt::RepairSpec{"replace_bearing", 1100.0, 0.008});
  const auto winding = m.add_basic_event(
      "motor_winding", Distribution::exponential(1.0 / params.winding_mean));
  const auto drive = m.add_or("drive_failure", {bearing, winding});

  m.set_top(m.add_or("compressor_failure",
                     {air_supply, treatment, lubrication, drive}));

  if (params.enable_rdep) {
    m.add_rdep("oil_eats_cylinder", oil, {cylinder}, params.oil_cylinder_factor,
               params.oil_trigger_phase);
    m.add_rdep("oil_eats_rings", oil, {rings}, params.oil_rings_factor,
               params.oil_trigger_phase);
    m.add_rdep("oil_eats_bearing", oil, {bearing}, params.oil_bearing_factor,
               params.oil_trigger_phase);
  }

  // ---- Maintenance plan -----------------------------------------------------------
  if (plan.minor_period > 0) {
    m.add_inspection(fmt::InspectionModule{
        plan.name.empty() ? "minor_service" : plan.name + "-minor",
        plan.minor_period, -1.0, plan.minor_cost, {dryer, separator, oil}});
  }
  if (plan.major_period > 0) {
    m.add_inspection(fmt::InspectionModule{
        plan.name.empty() ? "major_inspection" : plan.name + "-major",
        plan.major_period, -1.0, plan.major_cost,
        {cylinder, rings, valve, bearing}});
  }
  if (plan.overhaul_period > 0) {
    std::vector<fmt::NodeId> all(m.leaves().begin(), m.leaves().end());
    m.add_replacement(fmt::ReplacementModule{
        plan.name.empty() ? "overhaul" : plan.name + "-overhaul",
        plan.overhaul_period, -1.0, plan.overhaul_cost, std::move(all)});
  }
  m.set_corrective(plan.corrective);
  m.validate();
  return m;
}

CompressorPlan current_plan() {
  CompressorPlan p;
  p.name = "current";
  return p;  // defaults: minor 2x/yr, major every 2y, no overhaul
}

std::vector<CompressorPlan> compressor_plans() {
  std::vector<CompressorPlan> plans;
  {
    CompressorPlan p = current_plan();
    p.name = "corrective-only";
    p.minor_period = 0;
    p.major_period = 0;
    plans.push_back(p);
  }
  {
    CompressorPlan p = current_plan();
    p.name = "minor-only";
    p.major_period = 0;
    plans.push_back(p);
  }
  {
    CompressorPlan p = current_plan();
    p.name = "major-only";
    p.minor_period = 0;
    plans.push_back(p);
  }
  plans.push_back(current_plan());
  {
    CompressorPlan p = current_plan();
    p.name = "current+overhaul-8y";
    p.overhaul_period = 8.0;
    plans.push_back(p);
  }
  return plans;
}

}  // namespace fmtree::compressor
