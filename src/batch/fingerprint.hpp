// Cache keys for analysis results: canonical model hash x stable settings
// fingerprint.
//
// A key identifies *what was asked*: the exact model content
// (fmt::canonical_hash) and every analysis setting that can influence a
// result bit (horizon, seed, trajectory budget, confidence, discount rate,
// adaptive-stopping parameters), plus the kind and schema version of the
// result. Execution-only knobs are deliberately excluded:
//
//   * threads — the engine is bit-reproducible at any thread count, so a
//     result computed with 8 threads is *the* result for 1 thread too;
//   * telemetry — observational by contract, changes no output bit;
//   * control  — truncated runs are never cached (see ResultCache::put), and
//     an untruncated run is identical with or without a RunControl watching;
//   * failure_log_cap — KPI reports never include failure logs.
//   * lane_width — the batch engine is bit-reproducible at any lane width
//     (counter-based streams), exactly like `threads`.
//
// The *engine* is NOT execution-only: scalar and batch kernels consume
// different RNG families, so `engine` (plus the RNG family name) is hashed
// whenever the resolved engine is Batch — scalar fingerprints predate the
// field and stay byte-stable by hashing nothing in that case.
//
// Settings fields are fed through the order-insensitive KeyedHasher, so the
// fingerprint is a function of the field *values*, not of the order any
// call site happens to enumerate them in.
#pragma once

#include "util/fingerprint.hpp"

namespace fmtree::fmt {
class FaultMaintenanceTree;
}
namespace fmtree::smc {
struct AnalysisSettings;
}

namespace fmtree::batch {

/// Identity of one cached result: which model, which request.
struct CacheKey {
  Fingerprint model;    ///< fmt::canonical_hash of the model
  Fingerprint request;  ///< result kind + schema version + settings fingerprint

  /// "<model-hex>-<request-hex>", used as map key and disk file stem.
  std::string id() const { return model.hex() + "-" + request.hex(); }

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// Fingerprint of the result-relevant AnalysisSettings fields (see the
/// exclusion list above). `batch` participates only when adaptive stopping
/// is active (target_relative_error > 0): that is the only mode where the
/// batching granularity feeds back into which trajectories exist.
Fingerprint settings_fingerprint(const smc::AnalysisSettings& settings);

/// Key of a full-KPI analysis (smc::analyze / batch sweeps) of `model`
/// under `settings`.
CacheKey kpi_cache_key(const fmt::FaultMaintenanceTree& model,
                       const smc::AnalysisSettings& settings);

}  // namespace fmtree::batch
