// Batch execution of analysis sweeps over one shared work-stealing pool.
//
// A SweepPlan is a set of (model, settings) jobs — typically the same system
// under many policy variants (the paper's cost-curve sweep). run_sweep()
// schedules *trajectory chunks* of all jobs over one pool, so small jobs no
// longer idle most threads the way per-job ParallelRunner calls do, and
// consults an optional ResultCache so previously computed jobs cost one
// model hash instead of a simulation.
//
// Determinism contract (the same one smc::analyze keeps): trajectory i of a
// job draws from RandomStream(settings.seed, i) regardless of which worker
// runs it, chunk boundaries only partition the index space, per-leaf totals
// are integer sums (exactly commutative), and aggregation runs sequentially
// in index order via smc::aggregate_kpis. A job's report is therefore
// bit-identical to smc::analyze on the same model and settings, at any
// thread count, chunk size, and cache state.
//
// Two job classes fall back to a plain smc::analyze call (still executed,
// still cached, just not chunk-scheduled): adaptive-stopping jobs
// (target_relative_error > 0), whose trajectory count is decided by a
// sequential CI feedback loop, and — trivially — jobs on models the pooled
// path cannot split. Job-level RunSettings::control and ::telemetry are
// ignored: interruption and instrumentation of a sweep are plan-level
// concerns (SweepPlan::control, run_sweep's telemetry argument).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batch/fingerprint.hpp"
#include "batch/result_cache.hpp"
#include "fmt/fmtree.hpp"
#include "obs/telemetry.hpp"
#include "smc/kpi.hpp"

namespace fmtree::batch {

/// One unit of a sweep: a fully-built model plus its analysis settings.
struct SweepJob {
  std::string label;  ///< e.g. the policy name; used in results and spans
  fmt::FaultMaintenanceTree model;
  smc::AnalysisSettings settings;
};

struct SweepPlan {
  std::vector<SweepJob> jobs;
  /// Trajectories per scheduled task. Smaller chunks balance better across
  /// jobs of uneven size; the result is identical for any value.
  std::uint64_t chunk = 2048;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Polled between trajectories. On a stop, jobs whose trajectories all
  /// completed still deliver exact reports; interrupted jobs are returned
  /// with completed == false.
  const smc::RunControl* control = nullptr;
};

struct JobResult {
  std::string label;
  CacheKey key;
  bool completed = false;  ///< report is valid (simulated or from cache)
  bool cache_hit = false;
  smc::KpiReport report;
};

struct SweepOutcome {
  std::vector<JobResult> results;  ///< in SweepPlan::jobs order
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;  ///< jobs actually simulated
  std::uint64_t trajectories_simulated = 0;
  /// True when SweepPlan::control stopped the run before every job finished.
  bool truncated = false;
  smc::StopReason stop_reason = smc::StopReason::None;
};

/// Executes the plan. `cache` may be null (no caching); `telemetry` may be
/// empty. Emits batch.* counters (jobs, tasks, steals, trajectories, cache
/// hits/misses), per-task tracer spans named after the job labels, and
/// "sweep"-phase progress over the total trajectory count.
SweepOutcome run_sweep(const SweepPlan& plan, ResultCache* cache = nullptr,
                       const obs::Telemetry& telemetry = {});

}  // namespace fmtree::batch
