// Batch execution of analysis sweeps over one shared work-stealing pool.
//
// A SweepPlan is a set of (model, settings) jobs — typically the same system
// under many policy variants (the paper's cost-curve sweep). run_sweep()
// schedules *trajectory chunks* of all jobs over one pool, so small jobs no
// longer idle most threads the way per-job ParallelRunner calls do, and
// consults an optional ResultCache so previously computed jobs cost one
// model hash instead of a simulation.
//
// Determinism contract (the same one smc::analyze keeps): trajectory i of a
// job draws from RandomStream(settings.seed, i) regardless of which worker
// runs it, chunk boundaries only partition the index space, per-leaf totals
// are integer sums (exactly commutative), and aggregation runs sequentially
// in index order via smc::aggregate_kpis. A job's report is therefore
// bit-identical to smc::analyze on the same model and settings, at any
// thread count, chunk size, and cache state.
//
// Two job classes fall back to a plain smc::analyze call (still executed,
// still cached, just not chunk-scheduled): adaptive-stopping jobs
// (target_relative_error > 0), whose trajectory count is decided by a
// sequential CI feedback loop, and — trivially — jobs on models the pooled
// path cannot split. Job-level RunSettings::control and ::telemetry are
// ignored: interruption and instrumentation of a sweep are plan-level
// concerns (SweepPlan::control, run_sweep's telemetry argument).
//
// Self-healing (DESIGN.md, "Failure semantics"): a job that throws mid-run —
// an injected I/O error, a resource cap, a NaN-poisoned aggregate — becomes a
// structured per-job failure record (JobResult::failed + JobFailure) while
// the rest of the plan completes. Transient failure classes (I/O, injected
// faults) are retried up to SweepPlan::max_retries times with bounded
// exponential backoff; the retry path is a plain smc::analyze, which is
// bit-identical to the pooled path by the determinism contract, so a healed
// job's report carries no trace of the faults it survived. A watchdog
// (SweepPlan::stall_timeout_s) converts stalled-worker heartbeats into a
// StopReason::Stalled stop with a diagnostic naming the stuck workers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batch/fingerprint.hpp"
#include "batch/result_cache.hpp"
#include "fmt/fmtree.hpp"
#include "obs/telemetry.hpp"
#include "smc/kpi.hpp"
#include "util/diagnostics.hpp"

namespace fmtree::batch {

/// One unit of a sweep: a fully-built model plus its analysis settings.
struct SweepJob {
  std::string label;  ///< e.g. the policy name; used in results and spans
  fmt::FaultMaintenanceTree model;
  smc::AnalysisSettings settings;
  /// Optional per-job cancellation, distinct from the plan-level
  /// SweepPlan::control: a stop observed here parks *this* job as
  /// JobResult::cancelled while the rest of the plan keeps running (the
  /// serve layer fires it when every caller of a deduplicated request has
  /// hung up). A cancel that lands after the job's last trajectory completed
  /// is too late by design — the job aggregates and caches normally.
  /// Analyze-fallback jobs (adaptive stopping, retries) only observe it at
  /// attempt boundaries.
  const smc::RunControl* cancel = nullptr;
};

struct SweepPlan {
  std::vector<SweepJob> jobs;
  /// Trajectories per scheduled task. Smaller chunks balance better across
  /// jobs of uneven size; the result is identical for any value.
  std::uint64_t chunk = 2048;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Polled between trajectories. On a stop, jobs whose trajectories all
  /// completed still deliver exact reports; interrupted jobs are returned
  /// with completed == false.
  const smc::RunControl* control = nullptr;
  /// Retry budget for jobs that failed with a *transient* class (I/O errors,
  /// injected faults): up to this many re-runs after the first attempt.
  /// Non-transient classes (domain, resource, internal) never retry.
  std::uint32_t max_retries = 2;
  /// Exponential backoff before retry k sleeps
  /// min(retry_backoff_ms * 2^(k-1), retry_backoff_cap_ms) milliseconds.
  double retry_backoff_ms = 25.0;
  double retry_backoff_cap_ms = 1000.0;
  /// Stall watchdog: when > 0 and the pool makes no trajectory progress for
  /// this many seconds while tasks remain, the sweep stops with
  /// StopReason::Stalled and a diagnostic naming the silent workers.
  /// 0 disables the watchdog (the default).
  double stall_timeout_s = 0.0;
};

/// Why a job failed, as data: classification, the message, and how many
/// attempts were spent on it.
struct JobFailure {
  /// Stable class name: "injected", "io", "resource", "domain", "internal".
  std::string kind;
  std::string message;       ///< the final attempt's exception text
  bool transient = false;    ///< whether the class was eligible for retry
  std::uint32_t attempts = 0;  ///< total attempts (first run + retries)
};

struct JobResult {
  std::string label;
  CacheKey key;
  bool completed = false;  ///< report is valid (simulated or from cache)
  bool cache_hit = false;
  /// True when the job threw and exhausted (or was ineligible for) retries;
  /// `failure` then describes why. failed and completed are exclusive.
  bool failed = false;
  JobFailure failure;
  /// Retry attempts spent on this job (0 when the first attempt succeeded).
  std::uint32_t retries = 0;
  /// True when SweepJob::cancel stopped the job before it completed.
  /// Cancelled jobs are neither failures nor plan truncation: completed,
  /// failed and cancelled are mutually exclusive.
  bool cancelled = false;
  smc::KpiReport report;
};

struct SweepOutcome {
  std::vector<JobResult> results;  ///< in SweepPlan::jobs order
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;  ///< jobs actually simulated
  std::uint64_t trajectories_simulated = 0;
  /// True when the plan stopped (control or watchdog) before every job
  /// finished. Permanently *failed* jobs do not set this — they are
  /// accounted in jobs_failed instead — and neither do per-job *cancelled*
  /// jobs (jobs_cancelled).
  bool truncated = false;
  smc::StopReason stop_reason = smc::StopReason::None;
  std::uint64_t jobs_failed = 0;     ///< jobs with a permanent failure record
  std::uint64_t jobs_cancelled = 0;  ///< jobs stopped by SweepJob::cancel
  std::uint64_t retries = 0;         ///< retry attempts across all jobs
  /// Cache-integrity warnings (C101/C102) drained from the cache plus the
  /// watchdog's stall diagnostic (B102) when it fired.
  std::vector<Diagnostic> warnings;
};

/// Executes the plan. `cache` may be null (no caching); `telemetry` may be
/// empty. Emits batch.* counters (jobs, jobs_simulated — jobs that produced
/// a fresh report rather than a cache hit — tasks, steals, trajectories,
/// cache hits/misses), the robustness counters (sweep.retries,
/// sweep.job_failures, cache.corrupt_entries, fault.injected), per-task
/// tracer spans named after the job labels plus "retry:<label>" spans, and
/// "sweep"-phase progress over the total trajectory count.
SweepOutcome run_sweep(const SweepPlan& plan, ResultCache* cache = nullptr,
                       const obs::Telemetry& telemetry = {});

}  // namespace fmtree::batch
