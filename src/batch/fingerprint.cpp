#include "batch/fingerprint.hpp"

#include "fmt/canonical.hpp"
#include "lang/policy.hpp"
#include "smc/kpi.hpp"

namespace fmtree::batch {

Fingerprint settings_fingerprint(const smc::AnalysisSettings& s) {
  KeyedHasher h("fmtree.settings/v1");
  h.f64("horizon", s.horizon);
  h.u64("seed", s.seed);
  h.u64("trajectories", s.trajectories);
  h.f64("confidence", s.confidence);
  h.f64("discount_rate", s.discount_rate);
  const bool adaptive = s.target_relative_error > 0;
  h.f64("target_relative_error", adaptive ? s.target_relative_error : 0.0);
  if (adaptive) h.u64("batch", s.batch);
  // Engine identity: the two kernels draw from different RNG families, so
  // their results differ bit-wise and must never share a cache entry. The
  // fields are hashed only on the non-default engine (the same pattern as
  // `batch` above), so every fingerprint minted before the batch engine
  // existed — and every scalar fingerprint today — is unchanged.
  if (resolve_engine(s.engine) == Engine::Batch) {
    h.str("engine", engine_name(Engine::Batch));
    h.str("rng", "philox4x32-10");
  }
  // Scripted maintenance policy: hash the compiled form's fingerprint (not
  // the script text), so reformatting preserves the key while any semantic
  // change invalidates it. Hashed only when a policy is present — built-in
  // runs keep their pre-DSL fingerprints, and a scripted run can never
  // collide with a built-in one.
  if (s.policy) h.fingerprint("policy", s.policy->fingerprint);
  return h.digest();
}

CacheKey kpi_cache_key(const fmt::FaultMaintenanceTree& model,
                       const smc::AnalysisSettings& settings) {
  KeyedHasher request("fmtree.request/v1");
  request.str("kind", "kpis");
  request.u64("result_schema", 1);  // bump with ResultCache's serialization
  request.fingerprint("settings", settings_fingerprint(settings));
  return CacheKey{fmt::canonical_hash(model), request.digest()};
}

}  // namespace fmtree::batch
