#include "batch/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "batch/sweep.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace fmtree::batch {

namespace {
constexpr const char* kSchema = "fmtree.sweep-checkpoint/v1";
}  // namespace

std::uint64_t SweepCheckpoint::jobs_done() const {
  std::uint64_t n = 0;
  for (const CheckpointEntry& e : jobs)
    if (e.status == "done") ++n;
  return n;
}

std::uint64_t SweepCheckpoint::jobs_failed() const {
  std::uint64_t n = 0;
  for (const CheckpointEntry& e : jobs)
    if (e.status == "failed") ++n;
  return n;
}

std::uint64_t SweepCheckpoint::jobs_pending() const {
  std::uint64_t n = 0;
  for (const CheckpointEntry& e : jobs)
    if (e.status == "pending") ++n;
  return n;
}

std::string checkpoint_plan_id(const SweepPlan& plan) {
  StreamHasher h;
  h.tag(kSchema);
  h.u64(plan.jobs.size());
  for (const SweepJob& job : plan.jobs) {
    h.str(job.label);
    const CacheKey key = kpi_cache_key(job.model, job.settings);
    h.fingerprint(key.model).fingerprint(key.request);
  }
  return h.digest().hex();
}

std::string checkpoint_path(const std::string& cache_dir) {
  return cache_dir + "/sweep-checkpoint.json";
}

std::string encode_checkpoint(const SweepCheckpoint& cp) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"" << kSchema << "\",\n"
     << "  \"plan\": \"" << cp.plan_id << "\",\n"
     << "  \"jobs\": [\n";
  for (std::size_t i = 0; i < cp.jobs.size(); ++i) {
    const CheckpointEntry& e = cp.jobs[i];
    os << "    {\"label\": \"" << json::escape(e.label) << "\", \"key\": \""
       << e.key << "\", \"status\": \"" << e.status << "\"}"
       << (i + 1 < cp.jobs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

SweepCheckpoint decode_checkpoint(const std::string& text) {
  const json::Value doc = json::parse(text);
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is(json::Kind::String) ||
      schema->text != kSchema)
    throw IoError("sweep checkpoint: unknown schema");
  const json::Value* plan = doc.find("plan");
  if (plan == nullptr || !plan->is(json::Kind::String))
    throw IoError("sweep checkpoint: missing plan fingerprint");
  const json::Value* jobs = doc.find("jobs");
  if (jobs == nullptr || !jobs->is(json::Kind::Array))
    throw IoError("sweep checkpoint: missing jobs array");
  SweepCheckpoint cp;
  cp.plan_id = plan->text;
  cp.jobs.reserve(jobs->items.size());
  for (const json::Value& item : jobs->items) {
    const json::Value* label = item.find("label");
    const json::Value* key = item.find("key");
    const json::Value* status = item.find("status");
    if (label == nullptr || key == nullptr || status == nullptr)
      throw IoError("sweep checkpoint: malformed job entry");
    if (status->text != "done" && status->text != "failed" &&
        status->text != "pending")
      throw IoError("sweep checkpoint: unknown status '" + status->text + "'");
    cp.jobs.push_back({label->text, key->text, status->text});
  }
  return cp;
}

bool write_checkpoint(const std::string& path, const SweepPlan& plan,
                      const SweepOutcome& outcome) {
  SweepCheckpoint cp;
  cp.plan_id = checkpoint_plan_id(plan);
  cp.jobs.reserve(plan.jobs.size());
  for (std::size_t j = 0; j < plan.jobs.size(); ++j) {
    CheckpointEntry e;
    e.label = plan.jobs[j].label;
    if (j < outcome.results.size()) {
      const JobResult& r = outcome.results[j];
      e.key = r.key.id();
      e.status = r.completed ? "done" : r.failed ? "failed" : "pending";
    } else {
      e.key = kpi_cache_key(plan.jobs[j].model, plan.jobs[j].settings).id();
      e.status = "pending";
    }
    cp.jobs.push_back(std::move(e));
  }
  // Atomic publish, same discipline as the cache: a crash mid-write leaves
  // either the previous manifest or a stale temp file, never a torn one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << encode_checkpoint(cp);
    if (!out.flush()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<SweepCheckpoint> read_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  return decode_checkpoint(text.str());
}

}  // namespace fmtree::batch
