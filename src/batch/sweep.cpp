#include "batch/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "sim/batch_executor.hpp"
#include "sim/fmt_executor.hpp"
#include "util/error.hpp"

namespace fmtree::batch {

namespace {

/// A scheduled slice of one job's trajectory index space.
struct Task {
  std::uint32_t job = 0;
  std::uint64_t first = 0;
  std::uint64_t count = 0;
};

/// Mutable execution state of one pooled (non-cached, non-adaptive) job.
struct JobExec {
  std::uint32_t index = 0;  ///< into plan.jobs / outcome.results
  const SweepJob* job = nullptr;
  std::unique_ptr<sim::FmtSimulator> simulator;
  /// Non-null when the job's resolved engine is Engine::Batch; tasks then
  /// run lane batches through it instead of the scalar simulator.
  std::unique_ptr<sim::BatchExecutor> batch_executor;
  sim::SimOptions opts;
  smc::BatchResult batch;  ///< summaries preallocated; slots are disjoint
  std::mutex totals_mutex;
  std::atomic<std::uint64_t> completed{0};
};

struct SweepMetricIds {
  obs::CounterId jobs, tasks, steals, trajectories, events, cache_hits,
      cache_misses;
};

SweepMetricIds register_sweep_metrics(obs::MetricsRegistry& registry) {
  SweepMetricIds ids;
  ids.jobs = registry.counter("batch.jobs");
  ids.tasks = registry.counter("batch.tasks");
  ids.steals = registry.counter("batch.steals");
  ids.trajectories = registry.counter("batch.trajectories");
  ids.events = registry.counter("batch.events");
  ids.cache_hits = registry.counter("batch.cache.hits");
  ids.cache_misses = registry.counter("batch.cache.misses");
  return ids;
}

/// One worker's task deque. Owner pushes/pops at the back, thieves take from
/// the front, so a steal grabs the work its owner would reach last.
struct alignas(64) WorkQueue {
  std::mutex mutex;
  std::deque<Task> tasks;
};

sim::SimOptions options_for(const smc::AnalysisSettings& s) {
  // Mirrors smc::analyze's collect(): same options, so the simulator draws
  // the exact same event sequence per trajectory stream.
  sim::SimOptions opts;
  static_cast<RunSettings&>(opts) = s;
  opts.horizon = s.horizon;
  opts.discount_rate = s.discount_rate;
  opts.record_failure_log = false;
  opts.failure_log_cap = s.failure_log_cap;
  return opts;
}

void store_summary(smc::TrajectorySummary& s, const sim::TrajectoryResult& r) {
  s.first_failure_time = r.first_failure_time;
  s.failures = static_cast<std::uint32_t>(r.failures);
  s.downtime = r.downtime;
  s.cost = r.cost;
  s.discounted_total = r.discounted_cost.total();
  s.inspections = static_cast<std::uint32_t>(r.inspections);
  s.repairs = static_cast<std::uint32_t>(r.repairs);
  s.replacements = static_cast<std::uint32_t>(r.replacements);
}

}  // namespace

SweepOutcome run_sweep(const SweepPlan& plan, ResultCache* cache,
                       const obs::Telemetry& telemetry) {
  if (!(plan.chunk > 0)) throw DomainError("sweep chunk must be positive");
  for (const SweepJob& job : plan.jobs) smc::validate_settings(job.settings);

  auto sweep_span = obs::maybe_span(telemetry.tracer, "sweep");
  obs::MetricsRegistry* metrics = telemetry.metrics;
  const SweepMetricIds ids =
      metrics != nullptr ? register_sweep_metrics(*metrics) : SweepMetricIds{};

  SweepOutcome outcome;
  outcome.results.resize(plan.jobs.size());

  // Phase 1: resolve every job against the cache; split the misses into
  // pooled jobs and analyze-fallback jobs (adaptive stopping).
  std::vector<std::unique_ptr<JobExec>> pooled;
  std::vector<std::uint32_t> fallback;
  for (std::uint32_t j = 0; j < plan.jobs.size(); ++j) {
    const SweepJob& job = plan.jobs[j];
    JobResult& result = outcome.results[j];
    result.label = job.label;
    result.key = kpi_cache_key(job.model, job.settings);
    if (metrics != nullptr) metrics->add(ids.jobs);
    if (cache != nullptr) {
      if (std::optional<smc::KpiReport> hit = cache->get(result.key)) {
        result.report = *std::move(hit);
        result.completed = true;
        result.cache_hit = true;
        ++outcome.cache_hits;
        if (metrics != nullptr) metrics->add(ids.cache_hits);
        continue;
      }
    }
    ++outcome.cache_misses;
    if (metrics != nullptr) metrics->add(ids.cache_misses);
    if (job.settings.target_relative_error > 0) {
      fallback.push_back(j);
      continue;
    }
    auto exec = std::make_unique<JobExec>();
    exec->index = j;
    exec->job = &job;
    exec->simulator = std::make_unique<sim::FmtSimulator>(job.model);
    if (resolve_engine(job.settings.engine) == Engine::Batch)
      exec->batch_executor = std::make_unique<sim::BatchExecutor>(job.model);
    exec->opts = options_for(job.settings);
    exec->batch.summaries.resize(job.settings.trajectories);
    exec->batch.failures_per_leaf.assign(job.model.num_ebes(), 0);
    exec->batch.repairs_per_leaf.assign(job.model.num_ebes(), 0);
    pooled.push_back(std::move(exec));
  }

  // Phase 2: chunk the pooled jobs into tasks and run them over one
  // work-stealing pool. Tasks are dealt round-robin so all workers start
  // loaded; stealing (front of a victim's deque) rebalances the tail.
  std::uint64_t total_trajectories = 0;
  for (const auto& exec : pooled) total_trajectories += exec->batch.summaries.size();
  std::atomic<std::uint64_t> done{0};
  std::atomic<smc::StopReason> stop{smc::StopReason::None};

  if (total_trajectories > 0) {
    const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
    const unsigned workers = static_cast<unsigned>(std::min<std::uint64_t>(
        plan.threads != 0 ? plan.threads : hardware,
        (total_trajectories + plan.chunk - 1) / plan.chunk));

    std::vector<WorkQueue> queues(workers);
    {
      std::size_t next = 0;
      for (const auto& exec : pooled) {
        const std::uint64_t n = exec->batch.summaries.size();
        for (std::uint64_t first = 0; first < n; first += plan.chunk) {
          Task task{exec->index, first, std::min(plan.chunk, n - first)};
          queues[next % workers].tasks.push_back(task);
          ++next;
        }
      }
      if (metrics != nullptr) metrics->add(ids.tasks, next);
    }

    // index of each pooled JobExec by plan-job index, for task dispatch
    std::vector<JobExec*> exec_of(plan.jobs.size(), nullptr);
    for (const auto& exec : pooled) exec_of[exec->index] = exec.get();

    auto work = [&](unsigned w) {
      sim::SimWorkspace ws;  // reused across all of this worker's tasks
      sim::BatchWorkspace bws;  // ditto, for batch-engine jobs
      obs::LocalMetrics local =
          metrics != nullptr ? metrics->local() : obs::LocalMetrics{};
      std::vector<std::uint64_t> leaf_failures, leaf_repairs;
      obs::ProgressReporter* progress = telemetry.progress;
      std::uint64_t polls = 0;
      while (true) {
        // Own queue first (back), then steal (front), round-robin scan.
        Task task;
        bool found = false;
        {
          std::lock_guard lock(queues[w].mutex);
          if (!queues[w].tasks.empty()) {
            task = queues[w].tasks.back();
            queues[w].tasks.pop_back();
            found = true;
          }
        }
        if (!found) {
          for (unsigned off = 1; off < workers && !found; ++off) {
            WorkQueue& victim = queues[(w + off) % workers];
            std::lock_guard lock(victim.mutex);
            if (!victim.tasks.empty()) {
              task = victim.tasks.front();
              victim.tasks.pop_front();
              found = true;
              local.add(ids.steals);
            }
          }
        }
        if (!found) break;  // no tasks anywhere; none are ever added
        JobExec& exec = *exec_of[task.job];
        auto task_span = obs::maybe_span(telemetry.tracer,
                                        "job:" + exec.job->label);
        const std::uint64_t seed = exec.job->settings.seed;
        const std::size_t num_leaves = exec.batch.failures_per_leaf.size();
        leaf_failures.assign(num_leaves, 0);
        leaf_repairs.assign(num_leaves, 0);
        // Polls the shared control; returns true when the sweep must stop.
        const auto should_stop = [&]() {
          if (plan.control == nullptr) return false;
          smc::StopReason r = stop.load(std::memory_order_acquire);
          if (r == smc::StopReason::None &&
              (r = plan.control->should_stop(
                   done.load(std::memory_order_relaxed))) !=
                  smc::StopReason::None) {
            smc::StopReason expected = smc::StopReason::None;
            stop.compare_exchange_strong(expected, r,
                                         std::memory_order_acq_rel);
          }
          return r != smc::StopReason::None;
        };
        const auto report_progress = [&]() {
          if (progress != nullptr && (++polls & 31u) == 0 && progress->due()) {
            obs::Progress p;
            p.phase = "sweep";
            p.done = done.load(std::memory_order_relaxed);
            p.total = total_trajectories;
            progress->update(p);
          }
        };
        std::uint64_t task_done = 0;
        if (exec.batch_executor != nullptr) {
          // Batch engine: slice the task into lane batches. Trajectory
          // identity lives in the counter-based streams, so the slicing
          // (like the chunking above it) cannot affect any result bit.
          const std::uint64_t width =
              exec.opts.lane_width != 0 ? exec.opts.lane_width
                                        : sim::BatchExecutor::kDefaultLaneWidth;
          for (std::uint64_t off = 0; off < task.count;) {
            if (should_stop()) break;
            const auto n = static_cast<std::uint32_t>(
                std::min(width, task.count - off));
            exec.batch_executor->run(seed, task.first + off, n, exec.opts, bws);
            for (std::uint32_t lane = 0; lane < n; ++lane) {
              const sim::TrajectoryResult& r = bws.results[lane];
              store_summary(exec.batch.summaries[task.first + off + lane], r);
              for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
                leaf_failures[leaf] += r.failures_per_leaf[leaf];
                leaf_repairs[leaf] += r.repairs_per_leaf[leaf];
              }
              if (metrics != nullptr) {
                local.add(ids.trajectories);
                local.add(ids.events, r.events);
              }
            }
            task_done += n;
            done.fetch_add(n, std::memory_order_relaxed);
            off += n;
            report_progress();
          }
        } else {
          for (std::uint64_t i = 0; i < task.count; ++i) {
            if (should_stop()) break;
            const std::uint64_t index = task.first + i;
            sim::TrajectoryResult r = exec.simulator->run(
                RandomStream(seed, index), exec.opts, ws);
            store_summary(exec.batch.summaries[index], r);
            for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
              leaf_failures[leaf] += r.failures_per_leaf[leaf];
              leaf_repairs[leaf] += r.repairs_per_leaf[leaf];
            }
            ++task_done;
            done.fetch_add(1, std::memory_order_relaxed);
            if (metrics != nullptr) {
              local.add(ids.trajectories);
              local.add(ids.events, r.events);
            }
            report_progress();
          }
        }
        {
          // Integer totals commute, so fold order cannot affect the result.
          std::lock_guard lock(exec.totals_mutex);
          for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
            exec.batch.failures_per_leaf[leaf] += leaf_failures[leaf];
            exec.batch.repairs_per_leaf[leaf] += leaf_repairs[leaf];
          }
        }
        exec.completed.fetch_add(task_done, std::memory_order_relaxed);
        if (stop.load(std::memory_order_acquire) != smc::StopReason::None)
          break;  // drain: leave remaining tasks unexecuted
      }
      if (metrics != nullptr) metrics->merge(local);
    };

    if (workers == 1) {
      work(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) threads.emplace_back(work, w);
      for (std::thread& t : threads) t.join();
    }
  }

  outcome.trajectories_simulated = done.load(std::memory_order_relaxed);
  const smc::StopReason stopped = stop.load(std::memory_order_acquire);

  // Phase 3: aggregate every fully simulated job (sequentially, in index
  // order — the bit-reproducibility step) and feed the cache.
  for (const auto& exec : pooled) {
    JobResult& result = outcome.results[exec->index];
    const std::uint64_t wanted = exec->batch.summaries.size();
    if (exec->completed.load(std::memory_order_relaxed) != wanted) continue;
    exec->batch.completed = wanted;
    smc::AnalysisSettings agg = exec->job->settings;
    agg.telemetry = telemetry;
    result.report = smc::aggregate_kpis(exec->batch, agg);
    result.completed = true;
    if (cache != nullptr) cache->put(result.key, result.report);
  }

  // Phase 4: adaptive jobs go through smc::analyze — their trajectory count
  // emerges from a sequential CI loop that chunk scheduling cannot replay.
  for (const std::uint32_t j : fallback) {
    if (stopped != smc::StopReason::None) break;
    const SweepJob& job = plan.jobs[j];
    JobResult& result = outcome.results[j];
    auto job_span = obs::maybe_span(telemetry.tracer, "job:" + job.label);
    smc::AnalysisSettings settings = job.settings;
    settings.telemetry = telemetry;
    settings.control = plan.control;
    result.report = smc::analyze(job.model, settings);
    result.completed = !result.report.truncated;
    outcome.trajectories_simulated += result.report.trajectories;
    if (result.completed && cache != nullptr)
      cache->put(result.key, result.report);
  }

  for (const JobResult& result : outcome.results) {
    if (!result.completed) {
      outcome.truncated = true;
      outcome.stop_reason = stopped;
      break;
    }
  }
  return outcome;
}

}  // namespace fmtree::batch
