#include "batch/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "lang/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "sim/batch_executor.hpp"
#include "sim/fmt_executor.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace fmtree::batch {

namespace {

/// A scheduled slice of one job's trajectory index space.
struct Task {
  std::uint32_t job = 0;
  std::uint64_t first = 0;
  std::uint64_t count = 0;
};

/// Mutable execution state of one pooled (non-cached, non-adaptive) job.
struct JobExec {
  std::uint32_t index = 0;  ///< into plan.jobs / outcome.results
  const SweepJob* job = nullptr;
  /// Scripted-policy jobs simulate the apply_policy transform of the job's
  /// model (owned here so the simulator/executor pointers stay stable); the
  /// cache key is still minted from the untransformed model + the policy
  /// fingerprint in the settings.
  std::optional<fmt::FaultMaintenanceTree> transformed;
  std::optional<lang::BoundPolicy> bound;
  std::unique_ptr<sim::FmtSimulator> simulator;
  /// Non-null when the job's resolved engine is Engine::Batch; tasks then
  /// run lane batches through it instead of the scalar simulator.
  std::unique_ptr<sim::BatchExecutor> batch_executor;
  sim::SimOptions opts;
  smc::BatchResult batch;  ///< summaries preallocated; slots are disjoint
  std::mutex totals_mutex;
  std::atomic<std::uint64_t> completed{0};
  /// Job-level isolation: the first throw in any of this job's tasks parks
  /// the job here (remaining tasks are skipped) instead of taking down the
  /// pool; the job is then healed or reported after the pool drains.
  std::atomic<bool> failed{false};
  /// Set when SweepJob::cancel observed a stop: remaining tasks of this job
  /// are dropped on claim, like failed ones, while the plan keeps running.
  std::atomic<bool> cancelled{false};
  std::mutex failure_mutex;
  JobFailure failure;
};

struct SweepMetricIds {
  obs::CounterId jobs, jobs_simulated, tasks, steals, trajectories, events,
      cache_hits, cache_misses;
  obs::CounterId retries, job_failures, corrupt_entries, faults_injected;
};

SweepMetricIds register_sweep_metrics(obs::MetricsRegistry& registry) {
  SweepMetricIds ids;
  ids.jobs = registry.counter("batch.jobs");
  ids.jobs_simulated = registry.counter("batch.jobs_simulated");
  ids.tasks = registry.counter("batch.tasks");
  ids.steals = registry.counter("batch.steals");
  ids.trajectories = registry.counter("batch.trajectories");
  ids.events = registry.counter("batch.events");
  ids.cache_hits = registry.counter("batch.cache.hits");
  ids.cache_misses = registry.counter("batch.cache.misses");
  ids.retries = registry.counter("sweep.retries");
  ids.job_failures = registry.counter("sweep.job_failures");
  ids.corrupt_entries = registry.counter("cache.corrupt_entries");
  ids.faults_injected = registry.counter("fault.injected");
  return ids;
}

/// One worker's task deque. Owner pushes/pops at the back, thieves take from
/// the front, so a steal grabs the work its owner would reach last.
struct alignas(64) WorkQueue {
  std::mutex mutex;
  std::deque<Task> tasks;
};

/// Per-worker liveness signal for the stall watchdog: beats advance with
/// every claimed task and completed trajectory batch; active drops when the
/// worker exits. Cache-line-aligned like the queues to keep the relaxed
/// increments contention-free.
struct alignas(64) Heartbeat {
  std::atomic<std::uint64_t> beats{0};
  std::atomic<bool> active{true};
};

sim::SimOptions options_for(const smc::AnalysisSettings& s) {
  // Mirrors smc::analyze's collect(): same options, so the simulator draws
  // the exact same event sequence per trajectory stream.
  sim::SimOptions opts;
  static_cast<RunSettings&>(opts) = s;
  opts.horizon = s.horizon;
  opts.discount_rate = s.discount_rate;
  opts.record_failure_log = false;
  opts.failure_log_cap = s.failure_log_cap;
  return opts;
}

void store_summary(smc::TrajectorySummary& s, const sim::TrajectoryResult& r) {
  s.first_failure_time = r.first_failure_time;
  s.failures = static_cast<std::uint32_t>(r.failures);
  s.downtime = r.downtime;
  s.cost = r.cost;
  s.discounted_total = r.discounted_cost.total();
  s.inspections = static_cast<std::uint32_t>(r.inspections);
  s.repairs = static_cast<std::uint32_t>(r.repairs);
  s.replacements = static_cast<std::uint32_t>(r.replacements);
}

/// Maps a caught exception to its failure record. The transient classes
/// (retry-eligible) are I/O and injected faults — external conditions a
/// re-run can outlive; domain errors (NaN-poisoned statistics), resource caps and
/// unknown exceptions are deterministic for the job's inputs and retrying
/// them would only repeat the failure.
JobFailure classify_failure(const std::exception& e, std::uint32_t attempts) {
  JobFailure f;
  f.message = e.what();
  f.attempts = attempts;
  if (dynamic_cast<const fault::InjectedFault*>(&e) != nullptr) {
    f.kind = "injected";
    f.transient = true;
  } else if (dynamic_cast<const IoError*>(&e) != nullptr) {
    f.kind = "io";
    f.transient = true;
  } else if (dynamic_cast<const ResourceLimitError*>(&e) != nullptr) {
    f.kind = "resource";
  } else if (dynamic_cast<const DomainError*>(&e) != nullptr) {
    f.kind = "domain";
  } else {
    f.kind = "internal";
  }
  return f;
}

}  // namespace

SweepOutcome run_sweep(const SweepPlan& plan, ResultCache* cache,
                       const obs::Telemetry& telemetry) {
  if (!(plan.chunk > 0)) throw DomainError("sweep chunk must be positive");
  for (const SweepJob& job : plan.jobs) smc::validate_settings(job.settings);

  auto sweep_span = obs::maybe_span(telemetry.tracer, "sweep");
  obs::MetricsRegistry* metrics = telemetry.metrics;
  const SweepMetricIds ids =
      metrics != nullptr ? register_sweep_metrics(*metrics) : SweepMetricIds{};
  const std::uint64_t faults_before = fault::FaultRegistry::instance().fires();
  const std::uint64_t corrupt_before =
      cache != nullptr ? cache->stats().corrupt_entries : 0;

  SweepOutcome outcome;
  outcome.results.resize(plan.jobs.size());

  // Phase 1: resolve every job against the cache; split the misses into
  // pooled jobs and analyze-fallback jobs (adaptive stopping).
  std::vector<std::unique_ptr<JobExec>> pooled;
  std::vector<std::uint32_t> fallback;
  for (std::uint32_t j = 0; j < plan.jobs.size(); ++j) {
    const SweepJob& job = plan.jobs[j];
    JobResult& result = outcome.results[j];
    result.label = job.label;
    result.key = kpi_cache_key(job.model, job.settings);
    if (metrics != nullptr) metrics->add(ids.jobs);
    if (cache != nullptr) {
      if (std::optional<smc::KpiReport> hit = cache->get(result.key)) {
        result.report = *std::move(hit);
        result.completed = true;
        result.cache_hit = true;
        ++outcome.cache_hits;
        if (metrics != nullptr) metrics->add(ids.cache_hits);
        continue;
      }
    }
    ++outcome.cache_misses;
    if (metrics != nullptr) metrics->add(ids.cache_misses);
    if (job.settings.target_relative_error > 0) {
      fallback.push_back(j);
      continue;
    }
    auto exec = std::make_unique<JobExec>();
    exec->index = j;
    exec->job = &job;
    try {
      const fmt::FaultMaintenanceTree* sim_model = &job.model;
      if (job.settings.policy) {
        exec->transformed.emplace(
            lang::apply_policy(*job.settings.policy, job.model));
        sim_model = &*exec->transformed;
      }
      exec->simulator = std::make_unique<sim::FmtSimulator>(*sim_model);
      if (resolve_engine(job.settings.engine) == Engine::Batch)
        exec->batch_executor = std::make_unique<sim::BatchExecutor>(*sim_model);
      exec->opts = options_for(job.settings);
      if (job.settings.policy) {
        exec->bound.emplace(lang::bind_policy(*job.settings.policy, *sim_model));
        exec->opts.bound_policy = &*exec->bound;
      }
    } catch (const std::exception& e) {
      // Model/policy rejected at construction (e.g. a script naming a
      // component this model lacks): park the failure on the job and let the
      // heal driver classify it — the pool never sees its tasks.
      exec->failed.store(true, std::memory_order_release);
      exec->failure = classify_failure(e, /*attempts=*/1);
    }
    exec->batch.summaries.resize(job.settings.trajectories);
    exec->batch.failures_per_leaf.assign(job.model.num_ebes(), 0);
    exec->batch.repairs_per_leaf.assign(job.model.num_ebes(), 0);
    pooled.push_back(std::move(exec));
  }

  // Phase 2: chunk the pooled jobs into tasks and run them over one
  // work-stealing pool. Tasks are dealt round-robin so all workers start
  // loaded; stealing (front of a victim's deque) rebalances the tail.
  std::uint64_t total_trajectories = 0;
  for (const auto& exec : pooled) total_trajectories += exec->batch.summaries.size();
  std::atomic<std::uint64_t> done{0};
  std::atomic<smc::StopReason> stop{smc::StopReason::None};
  std::string stall_diagnostic;  // written by the watchdog before it stops us

  if (total_trajectories > 0) {
    const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
    const unsigned workers = static_cast<unsigned>(std::min<std::uint64_t>(
        plan.threads != 0 ? plan.threads : hardware,
        (total_trajectories + plan.chunk - 1) / plan.chunk));

    std::vector<WorkQueue> queues(workers);
    std::vector<Heartbeat> heartbeats(workers);
    {
      std::size_t next = 0;
      for (const auto& exec : pooled) {
        const std::uint64_t n = exec->batch.summaries.size();
        for (std::uint64_t first = 0; first < n; first += plan.chunk) {
          Task task{exec->index, first, std::min(plan.chunk, n - first)};
          queues[next % workers].tasks.push_back(task);
          ++next;
        }
      }
      if (metrics != nullptr) metrics->add(ids.tasks, next);
    }

    // index of each pooled JobExec by plan-job index, for task dispatch
    std::vector<JobExec*> exec_of(plan.jobs.size(), nullptr);
    for (const auto& exec : pooled) exec_of[exec->index] = exec.get();

    auto work = [&](unsigned w) {
      sim::SimWorkspace ws;  // reused across all of this worker's tasks
      sim::BatchWorkspace bws;  // ditto, for batch-engine jobs
      obs::LocalMetrics local =
          metrics != nullptr ? metrics->local() : obs::LocalMetrics{};
      std::vector<std::uint64_t> leaf_failures, leaf_repairs;
      obs::ProgressReporter* progress = telemetry.progress;
      std::uint64_t polls = 0;
      while (true) {
        // Own queue first (back), then steal (front), round-robin scan.
        Task task;
        bool found = false;
        {
          std::lock_guard lock(queues[w].mutex);
          if (!queues[w].tasks.empty()) {
            task = queues[w].tasks.back();
            queues[w].tasks.pop_back();
            found = true;
          }
        }
        if (!found) {
          for (unsigned off = 1; off < workers && !found; ++off) {
            WorkQueue& victim = queues[(w + off) % workers];
            std::lock_guard lock(victim.mutex);
            if (!victim.tasks.empty()) {
              task = victim.tasks.front();
              victim.tasks.pop_front();
              found = true;
              local.add(ids.steals);
            }
          }
        }
        if (!found) break;  // no tasks anywhere; none are ever added
        heartbeats[w].beats.fetch_add(1, std::memory_order_relaxed);
        JobExec& exec = *exec_of[task.job];
        // Job-level isolation: once a job failed or was cancelled, its
        // remaining tasks are dropped on claim — the pool keeps its
        // throughput for live jobs.
        if (exec.failed.load(std::memory_order_acquire)) continue;
        // Per-job cancellation (SweepJob::cancel): stops this job only.
        const auto job_cancelled = [&exec]() {
          if (exec.cancelled.load(std::memory_order_acquire)) return true;
          if (exec.job->cancel == nullptr) return false;
          if (exec.job->cancel->should_stop(
                  exec.completed.load(std::memory_order_relaxed)) !=
              smc::StopReason::None) {
            exec.cancelled.store(true, std::memory_order_release);
            return true;
          }
          return false;
        };
        if (job_cancelled()) continue;
        auto task_span = obs::maybe_span(telemetry.tracer,
                                        "job:" + exec.job->label);
        const std::uint64_t seed = exec.job->settings.seed;
        const std::size_t num_leaves = exec.batch.failures_per_leaf.size();
        leaf_failures.assign(num_leaves, 0);
        leaf_repairs.assign(num_leaves, 0);
        // Polls the watchdog/shared control; true when the sweep must stop.
        const auto should_stop = [&]() {
          smc::StopReason r = stop.load(std::memory_order_acquire);
          if (r != smc::StopReason::None) return true;
          if (plan.control == nullptr) return false;
          if ((r = plan.control->should_stop(
                   done.load(std::memory_order_relaxed))) !=
              smc::StopReason::None) {
            smc::StopReason expected = smc::StopReason::None;
            stop.compare_exchange_strong(expected, r,
                                         std::memory_order_acq_rel);
            return true;
          }
          return false;
        };
        const auto report_progress = [&]() {
          if (progress != nullptr && (++polls & 31u) == 0 && progress->due()) {
            obs::Progress p;
            p.phase = "sweep";
            p.done = done.load(std::memory_order_relaxed);
            p.total = total_trajectories;
            progress->update(p);
          }
        };
        std::uint64_t task_done = 0;
        try {
          // The worker-task fault site: error mode simulates a crashed task
          // (isolated into a per-job failure record + retry), stall mode
          // parks this worker to exercise the watchdog.
          (void)fault::fault_point("sweep.task");
          if (exec.batch_executor != nullptr) {
            // Batch engine: slice the task into lane batches. Trajectory
            // identity lives in the counter-based streams, so the slicing
            // (like the chunking above it) cannot affect any result bit.
            const std::uint64_t width =
                exec.opts.lane_width != 0
                    ? exec.opts.lane_width
                    : sim::BatchExecutor::kDefaultLaneWidth;
            for (std::uint64_t off = 0; off < task.count;) {
              if (should_stop() || job_cancelled()) break;
              const auto n = static_cast<std::uint32_t>(
                  std::min(width, task.count - off));
              exec.batch_executor->run(seed, task.first + off, n, exec.opts,
                                       bws);
              for (std::uint32_t lane = 0; lane < n; ++lane) {
                const sim::TrajectoryResult& r = bws.results[lane];
                store_summary(exec.batch.summaries[task.first + off + lane], r);
                for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
                  leaf_failures[leaf] += r.failures_per_leaf[leaf];
                  leaf_repairs[leaf] += r.repairs_per_leaf[leaf];
                }
                if (metrics != nullptr) {
                  local.add(ids.trajectories);
                  local.add(ids.events, r.events);
                }
              }
              task_done += n;
              done.fetch_add(n, std::memory_order_relaxed);
              heartbeats[w].beats.fetch_add(1, std::memory_order_relaxed);
              off += n;
              report_progress();
            }
          } else {
            for (std::uint64_t i = 0; i < task.count; ++i) {
              if (should_stop() || job_cancelled()) break;
              const std::uint64_t index = task.first + i;
              sim::TrajectoryResult r = exec.simulator->run(
                  RandomStream(seed, index), exec.opts, ws);
              store_summary(exec.batch.summaries[index], r);
              for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
                leaf_failures[leaf] += r.failures_per_leaf[leaf];
                leaf_repairs[leaf] += r.repairs_per_leaf[leaf];
              }
              ++task_done;
              done.fetch_add(1, std::memory_order_relaxed);
              heartbeats[w].beats.fetch_add(1, std::memory_order_relaxed);
              if (metrics != nullptr) {
                local.add(ids.trajectories);
                local.add(ids.events, r.events);
              }
              report_progress();
            }
          }
        } catch (const std::exception& e) {
          // First failure wins; later tasks of the job are skipped on claim.
          bool expected = false;
          if (exec.failed.compare_exchange_strong(expected, true,
                                                  std::memory_order_acq_rel)) {
            std::lock_guard lock(exec.failure_mutex);
            exec.failure = classify_failure(e, /*attempts=*/1);
          }
          continue;  // this worker moves on to other jobs' tasks
        }
        {
          // Integer totals commute, so fold order cannot affect the result.
          std::lock_guard lock(exec.totals_mutex);
          for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
            exec.batch.failures_per_leaf[leaf] += leaf_failures[leaf];
            exec.batch.repairs_per_leaf[leaf] += leaf_repairs[leaf];
          }
        }
        exec.completed.fetch_add(task_done, std::memory_order_relaxed);
        if (stop.load(std::memory_order_acquire) != smc::StopReason::None)
          break;  // drain: leave remaining tasks unexecuted
      }
      heartbeats[w].active.store(false, std::memory_order_release);
      if (metrics != nullptr) metrics->merge(local);
    };

    // The stall watchdog: while the pool runs, any stall_timeout_s window
    // without a single completed trajectory converts into a Stalled stop and
    // a diagnostic naming the workers whose heartbeats went silent. The
    // watchdog only ever *stops* the sweep — it never unsticks a worker, so
    // join() below still waits for stalled workers to come back (a stuck
    // syscall keeps the process alive; the stop makes every live worker
    // drain as soon as it polls).
    std::atomic<bool> pool_running{true};
    std::thread watchdog;
    if (plan.stall_timeout_s > 0) {
      watchdog = std::thread([&] {
        using clock = std::chrono::steady_clock;
        const auto timeout =
            std::chrono::duration<double>(plan.stall_timeout_s);
        const auto poll = std::chrono::duration<double>(
            std::min(plan.stall_timeout_s / 8.0, 0.05));
        std::vector<std::uint64_t> seen(workers, 0);
        std::uint64_t last_done = done.load(std::memory_order_relaxed);
        auto last_progress = clock::now();
        while (pool_running.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(poll);
          const std::uint64_t cur = done.load(std::memory_order_relaxed);
          if (cur != last_done) {
            last_done = cur;
            last_progress = clock::now();
            continue;
          }
          if (clock::now() - last_progress < timeout) continue;
          std::string silent;
          bool any_active = false;
          for (unsigned w = 0; w < workers; ++w) {
            const std::uint64_t beats =
                heartbeats[w].beats.load(std::memory_order_relaxed);
            if (heartbeats[w].active.load(std::memory_order_acquire)) {
              any_active = true;
              if (beats == seen[w])
                silent += (silent.empty() ? "" : ", ") + std::to_string(w);
            }
            seen[w] = beats;
          }
          if (!any_active) break;  // pool is draining on its own
          stall_diagnostic =
              "sweep watchdog: no trajectory progress for " +
              std::to_string(plan.stall_timeout_s) + "s; silent worker(s): " +
              (silent.empty() ? "(none — tasks not being claimed)" : silent);
          smc::StopReason expected = smc::StopReason::None;
          stop.compare_exchange_strong(expected, smc::StopReason::Stalled,
                                       std::memory_order_acq_rel);
          break;
        }
      });
    }

    if (workers == 1) {
      work(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) threads.emplace_back(work, w);
      for (std::thread& t : threads) t.join();
    }
    pool_running.store(false, std::memory_order_release);
    if (watchdog.joinable()) watchdog.join();
  }

  outcome.trajectories_simulated = done.load(std::memory_order_relaxed);

  // The sequential phases below re-check the stop state through this: the
  // watchdog or control may have stopped the pool, and retries also honor a
  // stop that arrives while they back off.
  const auto stopped = [&]() {
    if (stop.load(std::memory_order_acquire) != smc::StopReason::None)
      return true;
    if (plan.control == nullptr) return false;
    const smc::StopReason r = plan.control->should_stop(
        outcome.trajectories_simulated);
    if (r != smc::StopReason::None) {
      smc::StopReason expected = smc::StopReason::None;
      stop.compare_exchange_strong(expected, r, std::memory_order_acq_rel);
      return true;
    }
    return false;
  };

  // Heal-or-fail driver: (re)runs one job through smc::analyze — which is
  // bit-identical to the pooled path — honoring the transient/permanent
  // split and the bounded exponential backoff. On entry result.failure
  // holds the last failed attempt (attempts >= 1) or is empty (attempts ==
  // 0, first execution of an analyze-fallback job).
  const auto heal_job = [&](const SweepJob& job, JobResult& result) {
    std::uint32_t attempts = result.failure.attempts;
    for (;;) {
      // Per-job cancel beats both healing and failure accounting: the
      // caller already hung up, so neither a retry nor a failure record is
      // owed. Observed only at attempt boundaries (documented on SweepJob).
      if (job.cancel != nullptr &&
          job.cancel->should_stop(0) != smc::StopReason::None) {
        result.cancelled = true;
        return;
      }
      if (attempts > 0) {
        if (!result.failure.transient || result.retries >= plan.max_retries) {
          result.failed = true;
          ++outcome.jobs_failed;
          if (metrics != nullptr) metrics->add(ids.job_failures);
          return;
        }
        if (stopped()) return;  // stopping: leave the job incomplete
        const double backoff_ms =
            std::min(plan.retry_backoff_ms * std::exp2(double(result.retries)),
                     plan.retry_backoff_cap_ms);
        if (backoff_ms > 0)
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(backoff_ms));
        ++result.retries;
        ++outcome.retries;
        if (metrics != nullptr) metrics->add(ids.retries);
      } else if (stopped()) {
        return;
      }
      auto span = obs::maybe_span(
          telemetry.tracer,
          (attempts > 0 ? "retry:" : "job:") + job.label);
      try {
        smc::AnalysisSettings settings = job.settings;
        settings.telemetry = telemetry;
        settings.control = plan.control;
        smc::KpiReport report = smc::analyze(job.model, settings);
        outcome.trajectories_simulated += report.trajectories;
        result.report = std::move(report);
        result.completed = !result.report.truncated;
        if (result.completed && cache != nullptr)
          cache->put(result.key, result.report);
        return;
      } catch (const std::exception& e) {
        ++attempts;
        const std::uint32_t prior_retries = result.retries;
        result.failure = classify_failure(e, attempts);
        result.retries = prior_retries;
      }
    }
  };

  // Phase 3: aggregate every fully simulated job (sequentially, in index
  // order — the bit-reproducibility step), feed the cache, and queue failed
  // jobs for healing.
  for (const auto& exec : pooled) {
    JobResult& result = outcome.results[exec->index];
    if (exec->failed.load(std::memory_order_acquire)) {
      {
        std::lock_guard lock(exec->failure_mutex);
        result.failure = exec->failure;
      }
      heal_job(*exec->job, result);
      continue;
    }
    const std::uint64_t wanted = exec->batch.summaries.size();
    if (exec->completed.load(std::memory_order_relaxed) != wanted) {
      // A cancel that left trajectories unrun parks the job as cancelled; a
      // cancel that lost the race with the last task falls through and
      // aggregates normally below.
      if (exec->cancelled.load(std::memory_order_acquire))
        result.cancelled = true;
      continue;
    }
    exec->batch.completed = wanted;
    smc::AnalysisSettings agg = exec->job->settings;
    agg.telemetry = telemetry;
    try {
      result.report = smc::aggregate_kpis(exec->batch, agg);
      result.completed = true;
      if (cache != nullptr) cache->put(result.key, result.report);
    } catch (const std::exception& e) {
      // E.g. NaN-poisoned statistics (DomainError): deterministic for the
      // job's inputs, so heal_job records a permanent failure without
      // burning retries; injected faults still heal.
      result.failure = classify_failure(e, /*attempts=*/1);
      heal_job(*exec->job, result);
    }
  }

  // Phase 4: adaptive jobs go through smc::analyze — their trajectory count
  // emerges from a sequential CI loop that chunk scheduling cannot replay.
  // heal_job gives them the same retry policy as pooled jobs.
  for (const std::uint32_t j : fallback) {
    const SweepJob& job = plan.jobs[j];
    heal_job(job, outcome.results[j]);
  }

  const smc::StopReason stopped_reason = stop.load(std::memory_order_acquire);
  std::uint64_t jobs_simulated = 0;
  for (const JobResult& result : outcome.results) {
    if (result.cancelled) ++outcome.jobs_cancelled;
    if (result.completed && !result.cache_hit) ++jobs_simulated;
    if (!result.completed && !result.failed && !result.cancelled) {
      outcome.truncated = true;
      outcome.stop_reason = stopped_reason;
    }
  }
  if (metrics != nullptr && jobs_simulated > 0)
    metrics->add(ids.jobs_simulated, jobs_simulated);

  // Robustness bookkeeping: cache-integrity warnings + watchdog diagnostic
  // surface on the outcome; the deltas feed the metrics registry.
  if (!stall_diagnostic.empty()) {
    Diagnostic d;
    d.severity = Severity::Warning;
    d.code = "B102";
    d.message = stall_diagnostic;
    d.hint = "raise --stall-timeout if the workload legitimately pauses";
    outcome.warnings.push_back(std::move(d));
  }
  if (cache != nullptr) {
    for (Diagnostic& d : cache->take_warnings())
      outcome.warnings.push_back(std::move(d));
    if (metrics != nullptr) {
      const std::uint64_t corrupt_now = cache->stats().corrupt_entries;
      if (corrupt_now > corrupt_before)
        metrics->add(ids.corrupt_entries, corrupt_now - corrupt_before);
    }
  }
  if (metrics != nullptr) {
    const std::uint64_t fired =
        fault::FaultRegistry::instance().fires() - faults_before;
    if (fired > 0) metrics->add(ids.faults_injected, fired);
  }
  return outcome;
}

}  // namespace fmtree::batch
