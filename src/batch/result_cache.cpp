#include "batch/result_cache.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace fmtree::batch {

namespace {

/// C99 hexfloat form: exact bits, locale-independent, strtod-parseable.
std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double parse_hexfloat(const json::Value& v) {
  if (!v.is(json::Kind::String)) throw IoError("cache entry: expected a hexfloat string");
  errno = 0;
  char* end = nullptr;
  const double d = std::strtod(v.text.c_str(), &end);
  if (end == v.text.c_str() || *end != '\0')
    throw IoError("cache entry: bad hexfloat '" + v.text + "'");
  return d;
}

void encode_ci(std::ostringstream& os, const char* name,
               const ConfidenceInterval& ci) {
  os << "    \"" << name << "\": [\"" << hexfloat(ci.point) << "\", \""
     << hexfloat(ci.lo) << "\", \"" << hexfloat(ci.hi) << "\", \""
     << hexfloat(ci.confidence) << "\"],\n";
}

ConfidenceInterval decode_ci(const json::Value& report, const char* name) {
  const json::Value* v = report.find(name);
  if (v == nullptr || !v->is(json::Kind::Array) || v->items.size() != 4)
    throw IoError("cache entry: missing interval '" + std::string(name) + "'");
  return {parse_hexfloat(v->items[0]), parse_hexfloat(v->items[1]),
          parse_hexfloat(v->items[2]), parse_hexfloat(v->items[3])};
}

void encode_doubles(std::ostringstream& os, const char* name,
                    const std::vector<double>& values, bool trailing_comma) {
  os << "    \"" << name << "\": [";
  for (std::size_t i = 0; i < values.size(); ++i)
    os << (i == 0 ? "\"" : ", \"") << hexfloat(values[i]) << "\"";
  os << "]" << (trailing_comma ? "," : "") << "\n";
}

std::vector<double> decode_doubles(const json::Value& report, const char* name) {
  const json::Value* v = report.find(name);
  if (v == nullptr || !v->is(json::Kind::Array))
    throw IoError("cache entry: missing array '" + std::string(name) + "'");
  std::vector<double> out;
  out.reserve(v->items.size());
  for (const json::Value& item : v->items) out.push_back(parse_hexfloat(item));
  return out;
}

double decode_double(const json::Value& report, const char* name) {
  const json::Value* v = report.find(name);
  if (v == nullptr) throw IoError("cache entry: missing field '" + std::string(name) + "'");
  return parse_hexfloat(*v);
}

}  // namespace

std::string encode_report(const CacheKey& key, const smc::KpiReport& r) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"fmtree.result/v1\",\n"
     << "  \"model\": \"" << key.model.hex() << "\",\n"
     << "  \"request\": \"" << key.request.hex() << "\",\n"
     << "  \"report\": {\n"
     << "    \"horizon\": \"" << hexfloat(r.horizon) << "\",\n"
     << "    \"trajectories\": " << r.trajectories << ",\n";
  encode_ci(os, "reliability", r.reliability);
  encode_ci(os, "expected_failures", r.expected_failures);
  encode_ci(os, "failures_per_year", r.failures_per_year);
  encode_ci(os, "availability", r.availability);
  encode_ci(os, "total_cost", r.total_cost);
  encode_ci(os, "cost_per_year", r.cost_per_year);
  encode_ci(os, "npv_cost", r.npv_cost);
  encode_doubles(os, "mean_cost",
                 {r.mean_cost.inspection, r.mean_cost.repair, r.mean_cost.replacement,
                  r.mean_cost.corrective, r.mean_cost.downtime},
                 /*trailing_comma=*/true);
  os << "    \"mean_inspections\": \"" << hexfloat(r.mean_inspections) << "\",\n"
     << "    \"mean_repairs\": \"" << hexfloat(r.mean_repairs) << "\",\n"
     << "    \"mean_replacements\": \"" << hexfloat(r.mean_replacements) << "\",\n";
  encode_doubles(os, "failures_per_leaf", r.failures_per_leaf, true);
  encode_doubles(os, "repairs_per_leaf", r.repairs_per_leaf, false);
  os << "  }\n}\n";
  return os.str();
}

smc::KpiReport decode_report(const CacheKey& key, const std::string& text) {
  const json::Value doc = json::parse(text);
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is(json::Kind::String) ||
      schema->text != "fmtree.result/v1")
    throw IoError("cache entry: unknown schema");
  const json::Value* model = doc.find("model");
  const json::Value* request = doc.find("request");
  if (model == nullptr || request == nullptr || model->text != key.model.hex() ||
      request->text != key.request.hex())
    throw IoError("cache entry: key mismatch");
  const json::Value* rep = doc.find("report");
  if (rep == nullptr || !rep->is(json::Kind::Object))
    throw IoError("cache entry: missing report object");

  smc::KpiReport r;
  r.horizon = decode_double(*rep, "horizon");
  const json::Value* traj = rep->find("trajectories");
  if (traj == nullptr) throw IoError("cache entry: missing trajectory count");
  r.trajectories = traj->as_u64();
  r.truncated = false;  // put() never stores truncated reports
  r.stop_reason = smc::StopReason::None;
  r.reliability = decode_ci(*rep, "reliability");
  r.expected_failures = decode_ci(*rep, "expected_failures");
  r.failures_per_year = decode_ci(*rep, "failures_per_year");
  r.availability = decode_ci(*rep, "availability");
  r.total_cost = decode_ci(*rep, "total_cost");
  r.cost_per_year = decode_ci(*rep, "cost_per_year");
  r.npv_cost = decode_ci(*rep, "npv_cost");
  const std::vector<double> cost = decode_doubles(*rep, "mean_cost");
  if (cost.size() != 5) throw IoError("cache entry: mean_cost needs 5 components");
  r.mean_cost = {cost[0], cost[1], cost[2], cost[3], cost[4]};
  r.mean_inspections = decode_double(*rep, "mean_inspections");
  r.mean_repairs = decode_double(*rep, "mean_repairs");
  r.mean_replacements = decode_double(*rep, "mean_replacements");
  r.failures_per_leaf = decode_doubles(*rep, "failures_per_leaf");
  r.repairs_per_leaf = decode_doubles(*rep, "repairs_per_leaf");
  return r;
}

ResultCache::ResultCache(std::string directory) : directory_(std::move(directory)) {
  if (directory_.empty()) throw IoError("result cache needs a directory path");
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec)
    throw IoError("cannot create cache directory '" + directory_ +
                  "': " + ec.message());
}

std::string ResultCache::entry_path(const CacheKey& key) const {
  return directory_ + "/" + key.id() + ".json";
}

std::optional<smc::KpiReport> ResultCache::get(const CacheKey& key) {
  std::lock_guard lock(mutex_);
  const std::string id = key.id();
  if (const auto it = memory_.find(id); it != memory_.end()) {
    ++stats_.hits;
    ++stats_.memory_hits;
    return it->second;
  }
  if (!directory_.empty()) {
    std::ifstream in(entry_path(key));
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      try {
        smc::KpiReport report = decode_report(key, text.str());
        memory_.emplace(id, report);
        ++stats_.hits;
        ++stats_.disk_hits;
        return report;
      } catch (const IoError&) {
        ++stats_.disk_failures;  // corrupt entry: fall through to a miss
      }
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::put(const CacheKey& key, const smc::KpiReport& report) {
  if (report.truncated) return;  // a stop prefix is not the key's canonical result
  std::lock_guard lock(mutex_);
  memory_.insert_or_assign(key.id(), report);
  if (directory_.empty()) return;
  // Write-then-rename so concurrent readers never observe a partial entry.
  const std::string final_path = entry_path(key);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      ++stats_.disk_failures;
      return;
    }
    out << encode_report(key, report);
    if (!out.flush()) {
      ++stats_.disk_failures;
      std::remove(tmp_path.c_str());
      return;
    }
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ++stats_.disk_failures;
    std::remove(tmp_path.c_str());
    return;
  }
  ++stats_.disk_writes;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return memory_.size();
}

}  // namespace fmtree::batch
