#include "batch/result_cache.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <utility>

#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/json.hpp"

namespace fmtree::batch {

namespace {

/// C99 hexfloat form: exact bits, locale-independent, strtod-parseable.
std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double parse_hexfloat(const json::Value& v) {
  if (!v.is(json::Kind::String)) throw IoError("cache entry: expected a hexfloat string");
  errno = 0;
  char* end = nullptr;
  const double d = std::strtod(v.text.c_str(), &end);
  if (end == v.text.c_str() || *end != '\0')
    throw IoError("cache entry: bad hexfloat '" + v.text + "'");
  return d;
}

void encode_ci(std::ostringstream& os, const char* name,
               const ConfidenceInterval& ci) {
  os << "    \"" << name << "\": [\"" << hexfloat(ci.point) << "\", \""
     << hexfloat(ci.lo) << "\", \"" << hexfloat(ci.hi) << "\", \""
     << hexfloat(ci.confidence) << "\"],\n";
}

ConfidenceInterval decode_ci(const json::Value& report, const char* name) {
  const json::Value* v = report.find(name);
  if (v == nullptr || !v->is(json::Kind::Array) || v->items.size() != 4)
    throw IoError("cache entry: missing interval '" + std::string(name) + "'");
  return {parse_hexfloat(v->items[0]), parse_hexfloat(v->items[1]),
          parse_hexfloat(v->items[2]), parse_hexfloat(v->items[3])};
}

void encode_doubles(std::ostringstream& os, const char* name,
                    const std::vector<double>& values, bool trailing_comma) {
  os << "    \"" << name << "\": [";
  for (std::size_t i = 0; i < values.size(); ++i)
    os << (i == 0 ? "\"" : ", \"") << hexfloat(values[i]) << "\"";
  os << "]" << (trailing_comma ? "," : "") << "\n";
}

std::vector<double> decode_doubles(const json::Value& report, const char* name) {
  const json::Value* v = report.find(name);
  if (v == nullptr || !v->is(json::Kind::Array))
    throw IoError("cache entry: missing array '" + std::string(name) + "'");
  std::vector<double> out;
  out.reserve(v->items.size());
  for (const json::Value& item : v->items) out.push_back(parse_hexfloat(item));
  return out;
}

double decode_double(const json::Value& report, const char* name) {
  const json::Value* v = report.find(name);
  if (v == nullptr)
    throw IoError("cache entry: missing field '" + std::string(name) + "'");
  return parse_hexfloat(*v);
}

/// Per-process random token for temp-file names: two crashed or concurrent
/// processes writing the same entry never collide on a temp path.
const std::string& process_tag() {
  static const std::string tag = [] {
    std::random_device rd;
    std::uint64_t token = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(token));
    return std::string(buf);
  }();
  return tag;
}

/// Deterministic single-byte mutation for the cache.read/cache.write corrupt
/// fault modes: flips one bit in the middle of the payload, which either
/// breaks the JSON or changes a value the content hash then rejects.
void corrupt_payload(std::string& payload) {
  if (payload.empty()) return;
  payload[payload.size() / 2] ^= 0x01;
}

}  // namespace

Fingerprint report_content_hash(const smc::KpiReport& r) {
  StreamHasher h;
  h.tag("fmtree.result/v2");
  h.f64(r.horizon).u64(r.trajectories);
  const auto ci = [&h](const ConfidenceInterval& c) {
    h.f64(c.point).f64(c.lo).f64(c.hi).f64(c.confidence);
  };
  ci(r.reliability);
  ci(r.expected_failures);
  ci(r.failures_per_year);
  ci(r.availability);
  ci(r.total_cost);
  ci(r.cost_per_year);
  ci(r.npv_cost);
  h.f64(r.mean_cost.inspection)
      .f64(r.mean_cost.repair)
      .f64(r.mean_cost.replacement)
      .f64(r.mean_cost.corrective)
      .f64(r.mean_cost.downtime);
  h.f64(r.mean_inspections).f64(r.mean_repairs).f64(r.mean_replacements);
  h.u64(r.failures_per_leaf.size());
  for (const double v : r.failures_per_leaf) h.f64(v);
  h.u64(r.repairs_per_leaf.size());
  for (const double v : r.repairs_per_leaf) h.f64(v);
  return h.digest();
}

std::string encode_report(const CacheKey& key, const smc::KpiReport& r) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"fmtree.result/v2\",\n"
     << "  \"model\": \"" << key.model.hex() << "\",\n"
     << "  \"request\": \"" << key.request.hex() << "\",\n"
     << "  \"content_hash\": \"" << report_content_hash(r).hex() << "\",\n"
     << "  \"report\": {\n"
     << "    \"horizon\": \"" << hexfloat(r.horizon) << "\",\n"
     << "    \"trajectories\": " << r.trajectories << ",\n";
  encode_ci(os, "reliability", r.reliability);
  encode_ci(os, "expected_failures", r.expected_failures);
  encode_ci(os, "failures_per_year", r.failures_per_year);
  encode_ci(os, "availability", r.availability);
  encode_ci(os, "total_cost", r.total_cost);
  encode_ci(os, "cost_per_year", r.cost_per_year);
  encode_ci(os, "npv_cost", r.npv_cost);
  encode_doubles(os, "mean_cost",
                 {r.mean_cost.inspection, r.mean_cost.repair, r.mean_cost.replacement,
                  r.mean_cost.corrective, r.mean_cost.downtime},
                 /*trailing_comma=*/true);
  os << "    \"mean_inspections\": \"" << hexfloat(r.mean_inspections) << "\",\n"
     << "    \"mean_repairs\": \"" << hexfloat(r.mean_repairs) << "\",\n"
     << "    \"mean_replacements\": \"" << hexfloat(r.mean_replacements) << "\",\n";
  encode_doubles(os, "failures_per_leaf", r.failures_per_leaf, true);
  encode_doubles(os, "repairs_per_leaf", r.repairs_per_leaf, false);
  os << "  }\n}\n";
  return os.str();
}

smc::KpiReport decode_report(const CacheKey& key, const std::string& text) {
  const json::Value doc = json::parse(text);
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is(json::Kind::String) ||
      schema->text != "fmtree.result/v2")
    throw IoError("cache entry: unknown schema");
  const json::Value* model = doc.find("model");
  const json::Value* request = doc.find("request");
  if (model == nullptr || request == nullptr || model->text != key.model.hex() ||
      request->text != key.request.hex())
    throw IoError("cache entry: key mismatch");
  const json::Value* stored_hash = doc.find("content_hash");
  if (stored_hash == nullptr || !stored_hash->is(json::Kind::String))
    throw IoError("cache entry: missing content hash");
  const json::Value* rep = doc.find("report");
  if (rep == nullptr || !rep->is(json::Kind::Object))
    throw IoError("cache entry: missing report object");

  smc::KpiReport r;
  r.horizon = decode_double(*rep, "horizon");
  const json::Value* traj = rep->find("trajectories");
  if (traj == nullptr) throw IoError("cache entry: missing trajectory count");
  r.trajectories = traj->as_u64();
  r.truncated = false;  // put() never stores truncated reports
  r.stop_reason = smc::StopReason::None;
  r.reliability = decode_ci(*rep, "reliability");
  r.expected_failures = decode_ci(*rep, "expected_failures");
  r.failures_per_year = decode_ci(*rep, "failures_per_year");
  r.availability = decode_ci(*rep, "availability");
  r.total_cost = decode_ci(*rep, "total_cost");
  r.cost_per_year = decode_ci(*rep, "cost_per_year");
  r.npv_cost = decode_ci(*rep, "npv_cost");
  const std::vector<double> cost = decode_doubles(*rep, "mean_cost");
  if (cost.size() != 5) throw IoError("cache entry: mean_cost needs 5 components");
  r.mean_cost = {cost[0], cost[1], cost[2], cost[3], cost[4]};
  r.mean_inspections = decode_double(*rep, "mean_inspections");
  r.mean_repairs = decode_double(*rep, "mean_repairs");
  r.mean_replacements = decode_double(*rep, "mean_replacements");
  r.failures_per_leaf = decode_doubles(*rep, "failures_per_leaf");
  r.repairs_per_leaf = decode_doubles(*rep, "repairs_per_leaf");

  // Integrity gate: the values we decoded must reproduce the checksum the
  // writer computed from its values. Any bit rot or torn write that still
  // parses lands here.
  if (report_content_hash(r).hex() != stored_hash->text)
    throw IoError("cache entry: content hash mismatch");
  return r;
}

ResultCache::ResultCache(std::string directory) : directory_(std::move(directory)) {
  if (directory_.empty()) throw IoError("result cache needs a directory path");
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec)
    throw IoError("cannot create cache directory '" + directory_ +
                  "': " + ec.message());
  recovery_scan();
}

std::string ResultCache::entry_path(const CacheKey& key) const {
  return directory_ + "/" + key.id() + ".json";
}

std::string ResultCache::quarantine_directory() const {
  return directory_.empty() ? std::string{} : directory_ + "/quarantine";
}

void ResultCache::recovery_scan() {
  // A crashed writer leaves "<entry>.json.tmp.<tag>" files behind (and the
  // pre-v2 format left "<entry>.json.tmp"); none can ever be read, so remove
  // them. A *live* concurrent writer could lose its temp file to this scan —
  // it then fails its rename and recomputes, which is the contract anyway.
  std::error_code ec;
  std::uint64_t removed = 0;
  // An unreadable directory yields an end iterator: no recovery, no throw.
  for (const auto& entry : std::filesystem::directory_iterator(directory_, ec)) {
    std::error_code file_ec;
    if (!entry.is_regular_file(file_ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(".json.tmp") == std::string::npos) continue;
    std::filesystem::remove(entry.path(), file_ec);
    if (!file_ec) ++removed;
  }
  if (removed > 0) {
    stats_.recovered_tmp_files += removed;
    Diagnostic d;
    d.severity = Severity::Warning;
    d.code = "C102";
    d.message = "cache recovery: removed " + std::to_string(removed) +
                " stale temporary file(s) left by a crashed writer in '" +
                directory_ + "'";
    warnings_.push_back(std::move(d));
  }
}

void ResultCache::quarantine_entry(const std::string& path, const std::string& why) {
  // Caller holds mutex_. Move the entry aside so the next read is a clean
  // miss and the corrupt bytes stay available for post-mortem inspection.
  ++stats_.disk_failures;
  ++stats_.corrupt_entries;
  const std::filesystem::path source(path);
  const std::filesystem::path dir(quarantine_directory());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string disposition;
  if (!ec) {
    std::filesystem::rename(source, dir / source.filename(), ec);
  }
  if (!ec) {
    ++stats_.quarantined;
    disposition = "quarantined to '" + (dir / source.filename()).string() + "'";
  } else {
    disposition = "could not quarantine: " + ec.message();
  }
  Diagnostic d;
  d.severity = Severity::Warning;
  d.code = "C101";
  d.message = "corrupt result-cache entry '" + source.filename().string() +
              "' (" + why + "); " + disposition;
  d.hint = "the result will be recomputed; inspect the quarantine directory "
           "if corruption persists";
  warnings_.push_back(std::move(d));
}

std::optional<smc::KpiReport> ResultCache::get(const CacheKey& key) {
  std::lock_guard lock(mutex_);
  const std::string id = key.id();
  if (const auto it = memory_.find(id); it != memory_.end()) {
    ++stats_.hits;
    ++stats_.memory_hits;
    return it->second;
  }
  if (!directory_.empty()) {
    const std::string path = entry_path(key);
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      std::string payload = text.str();
      try {
        if (fault::fault_point("cache.read")) corrupt_payload(payload);
        smc::KpiReport report = decode_report(key, payload);
        memory_.emplace(id, report);
        ++stats_.hits;
        ++stats_.disk_hits;
        return report;
      } catch (const fault::InjectedFault& e) {
        quarantine_entry(path, e.what());  // injected read error: same path
      } catch (const IoError& e) {
        quarantine_entry(path, e.what());
      }
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::put(const CacheKey& key, const smc::KpiReport& report) {
  if (report.truncated) return;  // a stop prefix is not the key's canonical result
  std::lock_guard lock(mutex_);
  memory_.insert_or_assign(key.id(), report);
  if (directory_.empty()) return;
  // Write-then-rename so concurrent readers never observe a partial entry.
  // The temp name is process- and sequence-unique: two writers of the same
  // key never clobber each other's in-flight file.
  const std::string final_path = entry_path(key);
  const std::string tmp_path =
      final_path + ".tmp." + process_tag() + "-" + std::to_string(++tmp_sequence_);
  std::string payload = encode_report(key, report);
  try {
    // "cache.write" in corrupt mode simulates silent media corruption: the
    // mangled payload is published and must be caught by the content hash on
    // the next read. Error mode simulates a failed write syscall.
    if (fault::fault_point("cache.write")) corrupt_payload(payload);
  } catch (const fault::InjectedFault&) {
    ++stats_.disk_failures;
    return;  // nothing was written yet
  }
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      ++stats_.disk_failures;
      return;
    }
    out << payload;
    if (!out.flush()) {
      ++stats_.disk_failures;
      std::remove(tmp_path.c_str());
      return;
    }
  }
  try {
    (void)fault::fault_point("cache.rename");
  } catch (const fault::InjectedFault&) {
    ++stats_.disk_failures;
    std::remove(tmp_path.c_str());  // failed publish must not leak the temp
    return;
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ++stats_.disk_failures;
    std::remove(tmp_path.c_str());
    return;
  }
  ++stats_.disk_writes;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::vector<Diagnostic> ResultCache::take_warnings() {
  std::lock_guard lock(mutex_);
  return std::exchange(warnings_, {});
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return memory_.size();
}

}  // namespace fmtree::batch
