// Durable sweep checkpoints: the resume layer over the result cache.
//
// The content-addressed ResultCache is the actual source of truth for
// resume — any job whose report made it to disk replays bit-identically as
// a cache hit, whether or not a checkpoint exists. The checkpoint manifest
// ("fmtree.sweep-checkpoint/v1", one JSON file per cache directory) adds
// the part the cache cannot express:
//
//  * plan identity — a fingerprint over the ordered job keys, so a resume
//    against a *different* plan (edited model, changed grid) is detected
//    and reported (stable code C103) instead of silently half-matching;
//  * per-job status — done / failed / pending, so `fmtree sweep --resume`
//    can say how much of the plan is already banked before it starts.
//
// Writes are atomic (temp file + rename, same discipline as the cache) and
// best-effort: a failed checkpoint write degrades resume UX, never the
// sweep itself.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fmtree::batch {

struct SweepPlan;
struct SweepOutcome;

/// One job's durable status in the manifest.
struct CheckpointEntry {
  std::string label;
  std::string key;     ///< CacheKey::id() — "<model-hex>-<request-hex>"
  std::string status;  ///< "done", "failed" or "pending"
};

struct SweepCheckpoint {
  std::string plan_id;  ///< hex of checkpoint_plan_id over the source plan
  std::vector<CheckpointEntry> jobs;

  std::uint64_t jobs_done() const;
  /// Jobs that ran and failed in the previous run. Disjoint from done and
  /// pending; a failed job is NOT banked (it will re-run on resume), so
  /// progress accounting must never fold it into the done count.
  std::uint64_t jobs_failed() const;
  std::uint64_t jobs_pending() const;
};

/// Identity of a plan for resume purposes: a fingerprint over the ordered
/// job labels and cache keys (and nothing else — execution knobs like
/// threads or chunk size do not change what a resume may reuse).
std::string checkpoint_plan_id(const SweepPlan& plan);

/// The manifest's location inside a cache directory.
std::string checkpoint_path(const std::string& cache_dir);

std::string encode_checkpoint(const SweepCheckpoint& cp);
/// Throws IoError on malformed input or an unknown schema.
SweepCheckpoint decode_checkpoint(const std::string& text);

/// Builds the manifest for `plan` as witnessed by `outcome` and publishes it
/// atomically at `path`. Best-effort: returns false (and changes nothing
/// durable) on I/O failure.
bool write_checkpoint(const std::string& path, const SweepPlan& plan,
                      const SweepOutcome& outcome);

/// Reads the manifest at `path`. Returns nullopt when the file does not
/// exist; throws IoError when it exists but cannot be parsed.
std::optional<SweepCheckpoint> read_checkpoint(const std::string& path);

}  // namespace fmtree::batch
