// Content-addressed cache of analysis results.
//
// Two tiers:
//  * memory — always on; a mutex-guarded map from CacheKey to KpiReport;
//  * disk   — optional; one JSON file per entry ("fmtree.result/v1") in a
//    caller-chosen directory, so repeated CLI runs and separate processes
//    share results.
//
// There are no invalidation rules: keys are content hashes, so any change
// to the model or the result-relevant settings produces a *different* key
// and old entries simply stop being referenced. The schema version inside
// kpi_cache_key guards the serialization format the same way.
//
// Bitwise identity: a cache hit returns the exact doubles of the original
// computation. On disk every double is stored as a C99 hexfloat string
// ("0x1.8p+1"), which round-trips bit-for-bit through strtod — decimal JSON
// numbers would not. Truncated reports (RunControl stops) are refused by
// put(): they are exact only over the prefix a stop happened to cut, which
// is not a deterministic function of the key.
//
// Corrupt or unreadable disk entries are treated as misses (and counted in
// Stats::disk_failures), never as errors: a cache must degrade to
// recomputation, not take the analysis down.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "batch/fingerprint.hpp"
#include "smc/kpi.hpp"

namespace fmtree::batch {

class ResultCache {
public:
  /// Memory-only cache.
  ResultCache() = default;

  /// Memory + disk tiers. The directory is created if missing; an
  /// uncreatable directory throws IoError immediately (failing at first use
  /// would silently disable the tier the caller asked for).
  explicit ResultCache(std::string directory);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Looks the key up (memory first, then disk; a disk hit is promoted into
  /// memory). Returns the stored report or nullopt.
  std::optional<smc::KpiReport> get(const CacheKey& key);

  /// Stores a report under `key` in every tier. Truncated reports are
  /// ignored (see file comment). Disk write failures are recorded in
  /// stats() and otherwise ignored.
  void put(const CacheKey& key, const smc::KpiReport& report);

  /// Cumulative counters since construction. hits == memory_hits + disk_hits.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t memory_hits = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t disk_writes = 0;
    std::uint64_t disk_failures = 0;  ///< unreadable/corrupt reads + failed writes
  };
  Stats stats() const;

  /// Entries currently held in the memory tier.
  std::size_t size() const;

  bool has_disk_tier() const noexcept { return !directory_.empty(); }
  const std::string& directory() const noexcept { return directory_; }

private:
  std::string entry_path(const CacheKey& key) const;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, smc::KpiReport> memory_;
  std::string directory_;
  Stats stats_;
};

/// Serialization used by the disk tier ("fmtree.result/v1"), exposed so
/// tests can assert the hexfloat round-trip is bitwise exact.
std::string encode_report(const CacheKey& key, const smc::KpiReport& report);
/// Throws IoError on malformed input or a key mismatch.
smc::KpiReport decode_report(const CacheKey& key, const std::string& text);

}  // namespace fmtree::batch
