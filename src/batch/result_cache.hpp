// Content-addressed cache of analysis results.
//
// Two tiers:
//  * memory — always on; a mutex-guarded map from CacheKey to KpiReport;
//  * disk   — optional; one JSON file per entry ("fmtree.result/v2") in a
//    caller-chosen directory, so repeated CLI runs and separate processes
//    share results.
//
// There are no invalidation rules: keys are content hashes, so any change
// to the model or the result-relevant settings produces a *different* key
// and old entries simply stop being referenced. The schema version inside
// kpi_cache_key guards the serialization format the same way.
//
// Bitwise identity: a cache hit returns the exact doubles of the original
// computation. On disk every double is stored as a C99 hexfloat string
// ("0x1.8p+1"), which round-trips bit-for-bit through strtod — decimal JSON
// numbers would not. Truncated reports (RunControl stops) are refused by
// put(): they are exact only over the prefix a stop happened to cut, which
// is not a deterministic function of the key.
//
// Crash safety (the disk tier survives torn writes, bit rot and injected
// faults — see DESIGN.md, "Failure semantics"):
//  * every entry carries a content hash over the decoded *values*
//    (report_content_hash); a read whose recomputed hash disagrees with the
//    stored one is corrupt, no matter how plausibly it parsed;
//  * corrupt or unreadable entries are treated as misses, counted in
//    Stats::corrupt_entries, moved into a `quarantine/` subdirectory for
//    post-mortem inspection, and reported as stable-code C101 warning
//    diagnostics (take_warnings());
//  * writes go to a process-unique `<entry>.json.tmp.<tag>` file and are
//    published by rename, so concurrent readers never observe a partial
//    entry; failed writes remove their temp file;
//  * opening the disk tier runs a recovery scan that deletes stale
//    `*.json.tmp.*` files left behind by crashed writers
//    (Stats::recovered_tmp_files).
//
// Fault sites compiled into the I/O path (util/fault_injection.hpp):
// "cache.read" (error/corrupt the just-read payload), "cache.write" (fail or
// corrupt a write), "cache.rename" (fail the publish step). All are inert
// unless armed; a cache under injection degrades to recomputation, never
// takes the analysis down.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "batch/fingerprint.hpp"
#include "smc/kpi.hpp"
#include "util/diagnostics.hpp"

namespace fmtree::batch {

class ResultCache {
public:
  /// Memory-only cache.
  ResultCache() = default;

  /// Memory + disk tiers. The directory is created if missing; an
  /// uncreatable directory throws IoError immediately (failing at first use
  /// would silently disable the tier the caller asked for). Runs the
  /// crash-recovery scan (stale temp-file cleanup) before returning.
  explicit ResultCache(std::string directory);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Looks the key up (memory first, then disk; a disk hit is promoted into
  /// memory). Returns the stored report or nullopt. Corrupt disk entries
  /// are quarantined and count as misses.
  std::optional<smc::KpiReport> get(const CacheKey& key);

  /// Stores a report under `key` in every tier. Truncated reports are
  /// ignored (see file comment). Disk write failures are recorded in
  /// stats() and otherwise ignored.
  void put(const CacheKey& key, const smc::KpiReport& report);

  /// Cumulative counters since construction. hits == memory_hits + disk_hits.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t memory_hits = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t disk_writes = 0;
    std::uint64_t disk_failures = 0;  ///< unreadable/corrupt reads + failed writes
    std::uint64_t corrupt_entries = 0;      ///< reads rejected by decode/checksum
    std::uint64_t quarantined = 0;          ///< corrupt entries moved aside
    std::uint64_t recovered_tmp_files = 0;  ///< stale temp files removed at open
  };
  Stats stats() const;

  /// Drains the pending warning diagnostics (C101 corrupt-entry quarantine,
  /// C102 recovery-scan cleanup). Callers surface them on their own channel;
  /// un-drained warnings are dropped with the cache.
  std::vector<Diagnostic> take_warnings();

  /// Entries currently held in the memory tier.
  std::size_t size() const;

  bool has_disk_tier() const noexcept { return !directory_.empty(); }
  const std::string& directory() const noexcept { return directory_; }
  /// Where corrupt entries are moved ("<directory>/quarantine").
  std::string quarantine_directory() const;

private:
  std::string entry_path(const CacheKey& key) const;
  void recovery_scan();                                         // ctor only
  void quarantine_entry(const std::string& path, const std::string& why);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, smc::KpiReport> memory_;
  std::string directory_;
  Stats stats_;
  std::vector<Diagnostic> warnings_;
  std::uint64_t tmp_sequence_ = 0;
};

/// Serialization used by the disk tier ("fmtree.result/v2"), exposed so
/// tests can assert the hexfloat round-trip is bitwise exact.
std::string encode_report(const CacheKey& key, const smc::KpiReport& report);
/// Throws IoError on malformed input, a key mismatch, or a content-hash
/// mismatch (the entry parsed but its values disagree with the checksum the
/// writer stored).
smc::KpiReport decode_report(const CacheKey& key, const std::string& text);

/// The integrity checksum stored in every disk entry: a fingerprint of the
/// report's *values* (IEEE-754 bit patterns, counts, vector lengths), not of
/// its serialized text — so it is stable across libc hexfloat formatting
/// differences and catches any value-changing corruption.
Fingerprint report_content_hash(const smc::KpiReport& report);

}  // namespace fmtree::batch
