// CSV export of analysis results, for plotting outside the library.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "smc/kpi.hpp"

namespace fmtree::smc {

/// Writes a curve as "t,point,lo,hi" rows with a header.
void write_curve_csv(std::ostream& os, const std::vector<CurvePoint>& curve,
                     const std::string& value_name = "value");

/// Writes a KPI report as "kpi,point,lo,hi" rows plus the per-leaf
/// attribution as "failures_per_year:<leaf>" rows. `leaf_names` must match
/// the report's per-leaf vectors (pass the model's leaf names).
void write_report_csv(std::ostream& os, const KpiReport& report,
                      const std::vector<std::string>& leaf_names);

}  // namespace fmtree::smc
