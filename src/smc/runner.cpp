#include "smc/runner.hpp"

#include <atomic>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "sim/batch_executor.hpp"
#include "util/error.hpp"

namespace fmtree::smc {

namespace {

/// Sparse per-trajectory copy of the integer leaf counters, kept only when a
/// RunControl may truncate the batch: eager accumulation into the worker
/// totals would contaminate them with trajectories beyond the delivered
/// prefix, so the totals are rebuilt from the surviving deltas instead.
struct LeafDelta {
  std::uint32_t leaf = 0;
  std::uint32_t failures = 0;
  std::uint32_t repairs = 0;
};

/// Metric handles of one batch; registered up front (idempotent name
/// lookups) so the worker loop touches nothing but dense local arrays.
struct BatchMetricIds {
  obs::CounterId trajectories, events, failures, repairs, inspections,
      replacements, log_records_dropped;
  obs::HistogramId events_per_trajectory;
};

BatchMetricIds register_batch_metrics(obs::MetricsRegistry& registry) {
  BatchMetricIds ids;
  ids.trajectories = registry.counter("smc.trajectories");
  ids.events = registry.counter("smc.events");
  ids.failures = registry.counter("smc.failures");
  ids.repairs = registry.counter("smc.repairs");
  ids.inspections = registry.counter("smc.inspections");
  ids.replacements = registry.counter("smc.replacements");
  ids.log_records_dropped = registry.counter("smc.failure_log_records_dropped");
  ids.events_per_trajectory =
      registry.histogram("smc.events_per_trajectory", 0.0, 1024.0, 64);
  return ids;
}

}  // namespace

ParallelRunner::ParallelRunner(const sim::FmtSimulator& simulator, unsigned threads)
    : simulator_(simulator),
      threads_(threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())) {}

BatchResult ParallelRunner::run(std::uint64_t seed, std::uint64_t first,
                                std::uint64_t count, const sim::SimOptions& opts,
                                const RunControl* control) const {
  if (opts.trace != nullptr)
    throw DomainError("traces are per-trajectory; run the simulator directly");
  if (resolve_engine(opts.engine) == Engine::Batch)
    return run_batch(seed, first, count, opts, control);
  const std::size_t num_leaves = simulator_.model().num_ebes();
  obs::MetricsRegistry* metrics = opts.telemetry.metrics;
  obs::ProgressReporter* progress = opts.telemetry.progress;
  const BatchMetricIds metric_ids =
      metrics != nullptr ? register_batch_metrics(*metrics) : BatchMetricIds{};

  BatchResult out;
  out.summaries.resize(count);
  out.failures_per_leaf.assign(num_leaves, 0);
  out.repairs_per_leaf.assign(num_leaves, 0);
  if (opts.record_failure_log) out.failure_logs.resize(count);

  const unsigned workers = static_cast<unsigned>(
      std::min<std::uint64_t>(threads_, std::max<std::uint64_t>(count, 1)));

  // Per-worker integer accumulators; merged below (integers commute). Used
  // only on the uncontrolled path, where every trajectory survives.
  std::vector<std::vector<std::uint64_t>> worker_failures(
      workers, std::vector<std::uint64_t>(num_leaves, 0));
  std::vector<std::vector<std::uint64_t>> worker_repairs(
      workers, std::vector<std::uint64_t>(num_leaves, 0));

  // Controlled path: per-trajectory sparse deltas plus, per worker, the
  // first index it did NOT complete. Trajectory i runs on worker i % workers
  // in increasing index order, so every index below
  //   k = min_w first_uncompleted[w]
  // is complete — k is the longest exact prefix.
  std::vector<std::vector<LeafDelta>> deltas(control != nullptr ? count : 0);
  std::vector<std::uint64_t> first_uncompleted(workers, count);
  std::atomic<std::uint64_t> done{0};
  std::atomic<StopReason> stop{StopReason::None};

  // Failure-log memory cap: a shared budget of records. A trajectory whose
  // log does not fit is delivered without its log and the batch flagged.
  std::atomic<std::int64_t> log_budget{
      static_cast<std::int64_t>(std::min<std::uint64_t>(
          opts.failure_log_cap, std::uint64_t{1} << 62))};
  std::atomic<bool> logs_truncated{false};

  // Progress needs a cross-worker completion count; the controlled path
  // maintains one anyway, so only the progress-without-control case adds an
  // (uncontended, relaxed) increment to the hot loop.
  const bool count_done = control != nullptr || progress != nullptr;

  auto work = [&](unsigned w) {
    sim::SimWorkspace ws;  // reused across all of this worker's trajectories
    obs::LocalMetrics local =
        metrics != nullptr ? metrics->local() : obs::LocalMetrics{};
    std::uint64_t polls = 0;
    for (std::uint64_t i = w; i < count; i += workers) {
      if (control != nullptr) {
        StopReason r = stop.load(std::memory_order_acquire);
        // Budgets count trajectories globally: `first` carries the completed
        // count of earlier batches (adaptive drivers pass it that way), so a
        // budget smaller than the remaining work stops mid-batch.
        if (r == StopReason::None &&
            (r = control->should_stop(
                 first + done.load(std::memory_order_relaxed))) !=
                StopReason::None) {
          StopReason expected = StopReason::None;
          stop.compare_exchange_strong(expected, r, std::memory_order_acq_rel);
        }
        if (r != StopReason::None) {
          first_uncompleted[w] = i;
          break;
        }
      }
      sim::TrajectoryResult r =
          simulator_.run(RandomStream(seed, first + i), opts, ws);
      TrajectorySummary& s = out.summaries[i];
      s.first_failure_time = r.first_failure_time;
      s.failures = static_cast<std::uint32_t>(r.failures);
      s.downtime = r.downtime;
      s.cost = r.cost;
      s.discounted_total = r.discounted_cost.total();
      s.inspections = static_cast<std::uint32_t>(r.inspections);
      s.repairs = static_cast<std::uint32_t>(r.repairs);
      s.replacements = static_cast<std::uint32_t>(r.replacements);
      if (control == nullptr) {
        for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
          worker_failures[w][leaf] += r.failures_per_leaf[leaf];
          worker_repairs[w][leaf] += r.repairs_per_leaf[leaf];
        }
      } else {
        for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
          if (r.failures_per_leaf[leaf] != 0 || r.repairs_per_leaf[leaf] != 0)
            deltas[i].push_back(
                LeafDelta{static_cast<std::uint32_t>(leaf),
                          static_cast<std::uint32_t>(r.failures_per_leaf[leaf]),
                          static_cast<std::uint32_t>(r.repairs_per_leaf[leaf])});
        }
      }
      if (count_done) done.fetch_add(1, std::memory_order_relaxed);
      if (opts.record_failure_log) {
        const auto need = static_cast<std::int64_t>(r.failure_log.size());
        if (need == 0 ||
            log_budget.fetch_sub(need, std::memory_order_relaxed) >= need) {
          out.failure_logs[i] = std::move(r.failure_log);
        } else {
          log_budget.fetch_add(need, std::memory_order_relaxed);
          logs_truncated.store(true, std::memory_order_relaxed);
          local.add(metric_ids.log_records_dropped,
                    static_cast<std::uint64_t>(need));
        }
      }
      if (metrics != nullptr) {
        local.add(metric_ids.trajectories);
        local.add(metric_ids.events, r.events);
        local.add(metric_ids.failures, r.failures);
        local.add(metric_ids.repairs, r.repairs);
        local.add(metric_ids.inspections, r.inspections);
        local.add(metric_ids.replacements, r.replacements);
        local.observe(metric_ids.events_per_trajectory,
                      static_cast<double>(r.events));
      }
      // The steady_clock read inside due() costs ~20 ns; polling every 32nd
      // trajectory keeps it out of the per-trajectory budget entirely.
      if (progress != nullptr && (++polls & 31u) == 0 && progress->due()) {
        obs::Progress p;
        p.phase = "simulate";
        p.done = first + done.load(std::memory_order_relaxed);
        p.total = first + count;
        progress->update(p);
      }
    }
    if (metrics != nullptr) metrics->merge(local);
  };

  if (workers == 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(work, w);
    for (std::thread& t : pool) t.join();
  }
  out.failure_logs_truncated = logs_truncated.load(std::memory_order_relaxed);

  if (control == nullptr) {
    out.completed = count;
    for (unsigned w = 0; w < workers; ++w) {
      for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
        out.failures_per_leaf[leaf] += worker_failures[w][leaf];
        out.repairs_per_leaf[leaf] += worker_repairs[w][leaf];
      }
    }
    return out;
  }

  std::uint64_t prefix = count;
  for (unsigned w = 0; w < workers; ++w)
    prefix = std::min(prefix, first_uncompleted[w]);
  out.completed = prefix;
  out.truncated = prefix < count;
  out.stop_reason =
      out.truncated ? stop.load(std::memory_order_acquire) : StopReason::None;
  out.summaries.resize(prefix);
  if (opts.record_failure_log) out.failure_logs.resize(prefix);
  for (std::uint64_t i = 0; i < prefix; ++i) {
    for (const LeafDelta& d : deltas[i]) {
      out.failures_per_leaf[d.leaf] += d.failures;
      out.repairs_per_leaf[d.leaf] += d.repairs;
    }
  }
  return out;
}

// The lane-batch engine path. The unit of scheduling is a *block* of up to
// lane_width consecutive trajectory indices; block b runs on worker
// b % workers, blocks in increasing order per worker. Trajectory identity is
// carried entirely by the counter-based streams (CounterStream(seed, index)),
// so the partition into blocks/workers affects scheduling only — reports are
// bit-identical at any lane width and thread count. With a RunControl,
// workers poll between blocks and the batch is cut to the longest
// fully-completed index prefix at block granularity (the same exactness
// contract as the scalar path, coarser quantum).
BatchResult ParallelRunner::run_batch(std::uint64_t seed, std::uint64_t first,
                                      std::uint64_t count,
                                      const sim::SimOptions& opts,
                                      const RunControl* control) const {
  const std::size_t num_leaves = simulator_.model().num_ebes();
  obs::MetricsRegistry* metrics = opts.telemetry.metrics;
  obs::ProgressReporter* progress = opts.telemetry.progress;
  const BatchMetricIds metric_ids =
      metrics != nullptr ? register_batch_metrics(*metrics) : BatchMetricIds{};

  const sim::BatchExecutor executor(simulator_.model());
  const std::uint64_t width =
      opts.lane_width != 0 ? opts.lane_width : sim::BatchExecutor::kDefaultLaneWidth;

  BatchResult out;
  out.summaries.resize(count);
  out.failures_per_leaf.assign(num_leaves, 0);
  out.repairs_per_leaf.assign(num_leaves, 0);
  if (opts.record_failure_log) out.failure_logs.resize(count);

  const std::uint64_t num_blocks = (count + width - 1) / width;
  const unsigned workers = static_cast<unsigned>(
      std::min<std::uint64_t>(threads_, std::max<std::uint64_t>(num_blocks, 1)));

  std::vector<std::vector<std::uint64_t>> worker_failures(
      workers, std::vector<std::uint64_t>(num_leaves, 0));
  std::vector<std::vector<std::uint64_t>> worker_repairs(
      workers, std::vector<std::uint64_t>(num_leaves, 0));
  std::vector<std::vector<LeafDelta>> deltas(control != nullptr ? count : 0);
  std::vector<std::uint64_t> first_uncompleted(workers, count);
  std::atomic<std::uint64_t> done{0};
  std::atomic<StopReason> stop{StopReason::None};
  std::atomic<std::int64_t> log_budget{
      static_cast<std::int64_t>(std::min<std::uint64_t>(
          opts.failure_log_cap, std::uint64_t{1} << 62))};
  std::atomic<bool> logs_truncated{false};
  const bool count_done = control != nullptr || progress != nullptr;

  auto work = [&](unsigned w) {
    sim::BatchWorkspace ws;  // reused across all of this worker's blocks
    obs::LocalMetrics local =
        metrics != nullptr ? metrics->local() : obs::LocalMetrics{};
    for (std::uint64_t b = w; b < num_blocks; b += workers) {
      const std::uint64_t begin = b * width;
      const auto n = static_cast<std::uint32_t>(std::min(width, count - begin));
      if (control != nullptr) {
        StopReason r = stop.load(std::memory_order_acquire);
        if (r == StopReason::None &&
            (r = control->should_stop(
                 first + done.load(std::memory_order_relaxed))) !=
                StopReason::None) {
          StopReason expected = StopReason::None;
          stop.compare_exchange_strong(expected, r, std::memory_order_acq_rel);
        }
        if (r != StopReason::None) {
          first_uncompleted[w] = begin;
          break;
        }
      }
      executor.run(seed, first + begin, n, opts, ws);
      for (std::uint32_t lane = 0; lane < n; ++lane) {
        const std::uint64_t i = begin + lane;
        sim::TrajectoryResult& r = ws.results[lane];
        TrajectorySummary& s = out.summaries[i];
        s.first_failure_time = r.first_failure_time;
        s.failures = static_cast<std::uint32_t>(r.failures);
        s.downtime = r.downtime;
        s.cost = r.cost;
        s.discounted_total = r.discounted_cost.total();
        s.inspections = static_cast<std::uint32_t>(r.inspections);
        s.repairs = static_cast<std::uint32_t>(r.repairs);
        s.replacements = static_cast<std::uint32_t>(r.replacements);
        if (control == nullptr) {
          for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
            worker_failures[w][leaf] += r.failures_per_leaf[leaf];
            worker_repairs[w][leaf] += r.repairs_per_leaf[leaf];
          }
        } else {
          for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
            if (r.failures_per_leaf[leaf] != 0 || r.repairs_per_leaf[leaf] != 0)
              deltas[i].push_back(LeafDelta{
                  static_cast<std::uint32_t>(leaf),
                  static_cast<std::uint32_t>(r.failures_per_leaf[leaf]),
                  static_cast<std::uint32_t>(r.repairs_per_leaf[leaf])});
          }
        }
        if (opts.record_failure_log) {
          const auto need = static_cast<std::int64_t>(r.failure_log.size());
          if (need == 0 ||
              log_budget.fetch_sub(need, std::memory_order_relaxed) >= need) {
            out.failure_logs[i] = std::move(r.failure_log);
          } else {
            log_budget.fetch_add(need, std::memory_order_relaxed);
            logs_truncated.store(true, std::memory_order_relaxed);
            local.add(metric_ids.log_records_dropped,
                      static_cast<std::uint64_t>(need));
          }
        }
        if (metrics != nullptr) {
          local.add(metric_ids.trajectories);
          local.add(metric_ids.events, r.events);
          local.add(metric_ids.failures, r.failures);
          local.add(metric_ids.repairs, r.repairs);
          local.add(metric_ids.inspections, r.inspections);
          local.add(metric_ids.replacements, r.replacements);
          local.observe(metric_ids.events_per_trajectory,
                        static_cast<double>(r.events));
        }
      }
      if (count_done) done.fetch_add(n, std::memory_order_relaxed);
      if (progress != nullptr && progress->due()) {
        obs::Progress p;
        p.phase = "simulate";
        p.done = first + done.load(std::memory_order_relaxed);
        p.total = first + count;
        progress->update(p);
      }
    }
    if (metrics != nullptr) metrics->merge(local);
  };

  if (workers == 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(work, w);
    for (std::thread& t : pool) t.join();
  }
  out.failure_logs_truncated = logs_truncated.load(std::memory_order_relaxed);

  if (control == nullptr) {
    out.completed = count;
    for (unsigned w = 0; w < workers; ++w) {
      for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
        out.failures_per_leaf[leaf] += worker_failures[w][leaf];
        out.repairs_per_leaf[leaf] += worker_repairs[w][leaf];
      }
    }
    return out;
  }

  std::uint64_t prefix = count;
  for (unsigned w = 0; w < workers; ++w)
    prefix = std::min(prefix, first_uncompleted[w]);
  out.completed = prefix;
  out.truncated = prefix < count;
  out.stop_reason =
      out.truncated ? stop.load(std::memory_order_acquire) : StopReason::None;
  out.summaries.resize(prefix);
  if (opts.record_failure_log) out.failure_logs.resize(prefix);
  for (std::uint64_t i = 0; i < prefix; ++i) {
    for (const LeafDelta& d : deltas[i]) {
      out.failures_per_leaf[d.leaf] += d.failures;
      out.repairs_per_leaf[d.leaf] += d.repairs;
    }
  }
  return out;
}

}  // namespace fmtree::smc
