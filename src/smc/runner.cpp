#include "smc/runner.hpp"

#include <thread>

#include "util/error.hpp"

namespace fmtree::smc {

ParallelRunner::ParallelRunner(const sim::FmtSimulator& simulator, unsigned threads)
    : simulator_(simulator),
      threads_(threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())) {}

BatchResult ParallelRunner::run(std::uint64_t seed, std::uint64_t first,
                                std::uint64_t count, const sim::SimOptions& opts) const {
  if (opts.trace != nullptr)
    throw DomainError("traces are per-trajectory; run the simulator directly");
  const std::size_t num_leaves = simulator_.model().num_ebes();

  BatchResult out;
  out.summaries.resize(count);
  out.failures_per_leaf.assign(num_leaves, 0);
  out.repairs_per_leaf.assign(num_leaves, 0);
  if (opts.record_failure_log) out.failure_logs.resize(count);

  const unsigned workers =
      static_cast<unsigned>(std::min<std::uint64_t>(threads_, std::max<std::uint64_t>(count, 1)));

  // Per-worker integer accumulators; merged below (integers commute).
  std::vector<std::vector<std::uint64_t>> worker_failures(
      workers, std::vector<std::uint64_t>(num_leaves, 0));
  std::vector<std::vector<std::uint64_t>> worker_repairs(
      workers, std::vector<std::uint64_t>(num_leaves, 0));

  auto work = [&](unsigned w) {
    sim::SimWorkspace ws;  // reused across all of this worker's trajectories
    for (std::uint64_t i = w; i < count; i += workers) {
      sim::TrajectoryResult r =
          simulator_.run(RandomStream(seed, first + i), opts, ws);
      TrajectorySummary& s = out.summaries[i];
      s.first_failure_time = r.first_failure_time;
      s.failures = static_cast<std::uint32_t>(r.failures);
      s.downtime = r.downtime;
      s.cost = r.cost;
      s.discounted_total = r.discounted_cost.total();
      s.inspections = static_cast<std::uint32_t>(r.inspections);
      s.repairs = static_cast<std::uint32_t>(r.repairs);
      s.replacements = static_cast<std::uint32_t>(r.replacements);
      for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
        worker_failures[w][leaf] += r.failures_per_leaf[leaf];
        worker_repairs[w][leaf] += r.repairs_per_leaf[leaf];
      }
      if (opts.record_failure_log) out.failure_logs[i] = std::move(r.failure_log);
    }
  };

  if (workers == 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(work, w);
    for (std::thread& t : pool) t.join();
  }

  for (unsigned w = 0; w < workers; ++w) {
    for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
      out.failures_per_leaf[leaf] += worker_failures[w][leaf];
      out.repairs_per_leaf[leaf] += worker_repairs[w][leaf];
    }
  }
  return out;
}

}  // namespace fmtree::smc
