// Key performance indicators of a fault maintenance tree, estimated by
// statistical model checking (Monte-Carlo simulation with confidence
// intervals) — the analysis layer of the DSN'16 EI-joint study: system
// reliability, expected number of failures, expected cost, availability.
#pragma once

#include <cstdint>
#include <vector>

#include "fmt/fmtree.hpp"
#include "fmtree/run_settings.hpp"
#include "smc/runner.hpp"
#include "util/stats.hpp"

namespace fmtree::smc {

/// Monte-Carlo analysis settings. The execution knobs every backend shares —
/// horizon, seed, threads, RunControl, telemetry — live in the embedded
/// fmtree::RunSettings base (their old field locations keep compiling:
/// `settings.seed`, `settings.horizon`, ... resolve to the base subobject).
/// A stop via `control` returns early over the completed trajectory prefix —
/// statistics stay exact for the streams they cover — and the report is
/// flagged `truncated`.
struct AnalysisSettings : RunSettings {
  std::uint64_t trajectories = 10000;
  double confidence = 0.95;
  /// Continuous discount rate for net-present-value cost reporting
  /// (KpiReport::npv_cost); 0 disables discounting.
  double discount_rate = 0.0;
  /// If > 0: keep simulating (in batches of `batch`) until the CI half-width
  /// of E[#failures] is <= target_relative_error * mean, or `trajectories`
  /// is reached; `trajectories` then acts as the budget cap.
  double target_relative_error = 0.0;
  std::uint64_t batch = 2048;
  /// Cap on the total number of sim::FailureRecord entries retained per
  /// collection when failure logs are recorded (expected_failures_curve);
  /// bounds memory on multi-million-trajectory runs. See
  /// sim::SimOptions::failure_log_cap for the truncation contract.
  std::uint64_t failure_log_cap = std::uint64_t{1} << 24;
};

/// Everything the case study reports, from one set of trajectories.
struct KpiReport {
  double horizon = 0.0;
  std::uint64_t trajectories = 0;
  /// True when a RunControl stopped the run early; `trajectories` then holds
  /// the completed prefix the statistics are exact over.
  bool truncated = false;
  StopReason stop_reason = StopReason::None;

  ConfidenceInterval reliability;       ///< P(no system failure in [0, horizon])
  ConfidenceInterval expected_failures; ///< E[#failures in [0, horizon]]
  ConfidenceInterval failures_per_year; ///< expected_failures / horizon
  ConfidenceInterval availability;      ///< E[uptime fraction]
  ConfidenceInterval total_cost;        ///< E[total cost over horizon]
  ConfidenceInterval cost_per_year;     ///< total_cost / horizon
  ConfidenceInterval npv_cost;          ///< E[discounted cost] (== total_cost at rate 0)

  fmt::CostBreakdown mean_cost;         ///< expectation of each component
  double mean_inspections = 0.0;        ///< rounds per trajectory
  double mean_repairs = 0.0;
  double mean_replacements = 0.0;

  /// E[system failures attributed to leaf i] (model.leaves() order).
  std::vector<double> failures_per_leaf;
  /// E[condition-based repairs of leaf i].
  std::vector<double> repairs_per_leaf;
};

/// Runs the Monte-Carlo analysis and aggregates all KPIs. Equivalent to
/// validate_settings + collecting trajectories + aggregate_kpis.
KpiReport analyze(const fmt::FaultMaintenanceTree& model,
                  const AnalysisSettings& settings);

/// Rejects nonsensical settings (non-positive horizon, zero trajectories,
/// confidence outside (0,1)) with DomainError. analyze() calls this; other
/// executors (the batch sweep engine) share the same contract.
void validate_settings(const AnalysisSettings& settings);

/// Aggregates index-ordered trajectory summaries into the full KPI report.
/// The loop visits summaries strictly in trajectory-index order, so the
/// report depends only on the summaries themselves — never on how many
/// threads produced them or how the work was chunked. Alternative executors
/// (batch sweeps) reuse this to stay bit-identical with analyze(). Throws
/// ResourceLimitError when `batch` holds no completed trajectory.
KpiReport aggregate_kpis(const BatchResult& batch, const AnalysisSettings& settings);

/// One point of an estimated curve.
struct CurvePoint {
  double t = 0.0;
  ConfidenceInterval value;
};

/// Reliability curve: P(first failure > t) for each t in `grid`, from one
/// set of trajectories with horizon = max(grid). Wilson intervals.
std::vector<CurvePoint> reliability_curve(const fmt::FaultMaintenanceTree& model,
                                          const std::vector<double>& grid,
                                          const AnalysisSettings& settings);

/// Expected cumulative number of failures at each t in `grid`.
std::vector<CurvePoint> expected_failures_curve(const fmt::FaultMaintenanceTree& model,
                                                const std::vector<double>& grid,
                                                const AnalysisSettings& settings);

/// Mean time to first system failure. Trajectories that survive the horizon
/// are right-censored at it, making the estimate a lower bound; `censored`
/// reports how many.
struct MttfEstimate {
  ConfidenceInterval mttf;
  std::uint64_t censored = 0;
  std::uint64_t trajectories = 0;
};
MttfEstimate mean_time_to_failure(const fmt::FaultMaintenanceTree& model,
                                  const AnalysisSettings& settings);

/// Evenly spaced grid helper: n+1 points 0, h/n, ..., h.
std::vector<double> linspace_grid(double horizon, std::size_t n);

}  // namespace fmtree::smc
