// Cooperative run control for long Monte-Carlo batches.
//
// A RunControl is a small, thread-safe handle shared between the party that
// wants to stop a run (a SIGINT handler, a watchdog, an adaptive driver) and
// the workers executing it. Workers poll should_stop() between trajectories;
// none of the mechanisms preempt a trajectory mid-flight, so stopping is
// always at a trajectory boundary and results over the completed prefix stay
// exact (see ParallelRunner for the truncation contract).
//
// Three independent stop conditions, first one to fire wins:
//   - request_stop(): externally signalled (async-signal-safe, lock-free);
//   - a wall-clock deadline (set_timeout / set_deadline);
//   - a trajectory budget (set_trajectory_budget).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string_view>

namespace fmtree::smc {

/// Why a run ended early. None means it ran to natural completion.
enum class StopReason : std::uint8_t {
  None = 0,
  Interrupted,      ///< request_stop() was called (e.g. SIGINT/SIGTERM)
  DeadlineExpired,  ///< wall-clock deadline passed
  BudgetExhausted,  ///< trajectory budget consumed
  Stalled,          ///< a watchdog saw no progress for its stall timeout
};

constexpr const char* stop_reason_name(StopReason r) noexcept {
  switch (r) {
    case StopReason::None: return "none";
    case StopReason::Interrupted: return "interrupted";
    case StopReason::DeadlineExpired: return "deadline";
    case StopReason::BudgetExhausted: return "budget";
    case StopReason::Stalled: return "stalled";
  }
  return "?";
}

/// Inverse of stop_reason_name, for wire decoders (the serve protocol
/// transports stop reasons by their stable names). Unknown names map to
/// None rather than failing: a newer server introducing a reason must not
/// break an older client's ability to read the rest of the response.
constexpr StopReason stop_reason_from_name(std::string_view name) noexcept {
  if (name == "interrupted") return StopReason::Interrupted;
  if (name == "deadline") return StopReason::DeadlineExpired;
  if (name == "budget") return StopReason::BudgetExhausted;
  if (name == "stalled") return StopReason::Stalled;
  return StopReason::None;
}

class RunControl {
public:
  using Clock = std::chrono::steady_clock;

  /// Requests a stop at the next trajectory boundary. Safe to call from a
  /// signal handler (a single lock-free atomic store).
  void request_stop() noexcept { stop_.store(true, std::memory_order_release); }
  bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  /// Stops the run once the wall clock passes now() + seconds. Non-positive
  /// timeouts fire immediately.
  void set_timeout(double seconds) noexcept {
    set_deadline(Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(seconds)));
  }
  void set_deadline(Clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_release);
  }

  /// Stops the run once `budget` trajectories have completed.
  void set_trajectory_budget(std::uint64_t budget) noexcept {
    budget_.store(budget, std::memory_order_release);
  }

  /// Cooperative poll: the first stop condition that holds, or None.
  /// `completed` is the number of trajectories finished so far (used by the
  /// budget check).
  StopReason should_stop(std::uint64_t completed) const noexcept {
    if (stop_requested()) return StopReason::Interrupted;
    const auto deadline = deadline_ns_.load(std::memory_order_acquire);
    if (deadline != kNoDeadline &&
        Clock::now().time_since_epoch().count() >= deadline)
      return StopReason::DeadlineExpired;
    if (completed >= budget_.load(std::memory_order_acquire))
      return StopReason::BudgetExhausted;
    return StopReason::None;
  }

  /// Rearms the handle for another run (clears all three conditions).
  void reset() noexcept {
    stop_.store(false, std::memory_order_release);
    deadline_ns_.store(kNoDeadline, std::memory_order_release);
    budget_.store(kNoBudget, std::memory_order_release);
  }

private:
  static constexpr auto kNoDeadline = std::numeric_limits<Clock::rep>::max();
  static constexpr auto kNoBudget = std::numeric_limits<std::uint64_t>::max();

  std::atomic<bool> stop_{false};
  std::atomic<Clock::rep> deadline_ns_{kNoDeadline};
  std::atomic<std::uint64_t> budget_{kNoBudget};
};

}  // namespace fmtree::smc
