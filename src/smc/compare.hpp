// Paired comparison of two FMT variants under common random numbers, and
// quantiles of the time-to-failure distribution.
//
// Comparing two maintenance policies with independent runs wastes most of
// the sample budget on noise both variants share (the same degradation luck).
// Running trajectory i of both variants from the same RandomStream(seed, i)
// and estimating the per-trajectory *difference* cancels that shared noise,
// giving far tighter confidence intervals on "which policy is better".
#pragma once

#include "fmt/fmtree.hpp"
#include "smc/kpi.hpp"

namespace fmtree::smc {

/// Paired difference estimates: positive means A exceeds B.
struct PairedComparison {
  ConfidenceInterval failures_diff;  ///< E[failures_A - failures_B]
  ConfidenceInterval cost_diff;      ///< E[cost_A - cost_B]
  ConfidenceInterval downtime_diff;  ///< E[downtime_A - downtime_B]
  std::uint64_t trajectories = 0;

  /// True iff the CI on the failure difference excludes zero.
  bool failures_significantly_different() const noexcept {
    return !failures_diff.contains(0.0);
  }
  bool cost_significantly_different() const noexcept {
    return !cost_diff.contains(0.0);
  }
};

/// Runs both models on identical random streams and returns paired
/// difference CIs (A minus B).
PairedComparison compare_models(const fmt::FaultMaintenanceTree& a,
                                const fmt::FaultMaintenanceTree& b,
                                const AnalysisSettings& settings);

/// Quantiles of the time-to-first-failure distribution. A requested quantile
/// that falls beyond the observed horizon (because too many trajectories
/// survive) is reported as +infinity.
std::vector<double> failure_time_quantiles(const fmt::FaultMaintenanceTree& model,
                                           const std::vector<double>& probabilities,
                                           const AnalysisSettings& settings);

}  // namespace fmtree::smc
