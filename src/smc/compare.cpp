#include "smc/compare.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "smc/runner.hpp"
#include "util/error.hpp"

namespace fmtree::smc {

PairedComparison compare_models(const fmt::FaultMaintenanceTree& a,
                                const fmt::FaultMaintenanceTree& b,
                                const AnalysisSettings& settings) {
  if (!(settings.horizon > 0)) throw DomainError("horizon must be positive");
  if (settings.trajectories == 0) throw DomainError("need at least one trajectory");
  const sim::FmtSimulator sim_a(a);
  const sim::FmtSimulator sim_b(b);
  const ParallelRunner runner_a(sim_a, settings.threads);
  const ParallelRunner runner_b(sim_b, settings.threads);
  sim::SimOptions opts;
  opts.horizon = settings.horizon;

  // Same (seed, stream) per index: trajectory i of both variants experiences
  // the same random draws in the same order as long as their executions
  // agree, which is what cancels shared noise.
  const BatchResult ra = runner_a.run(settings.seed, 0, settings.trajectories, opts);
  const BatchResult rb = runner_b.run(settings.seed, 0, settings.trajectories, opts);

  RunningStats failures, cost, downtime;
  for (std::size_t i = 0; i < ra.summaries.size(); ++i) {
    failures.add(static_cast<double>(ra.summaries[i].failures) -
                 static_cast<double>(rb.summaries[i].failures));
    cost.add(ra.summaries[i].cost.total() - rb.summaries[i].cost.total());
    downtime.add(ra.summaries[i].downtime - rb.summaries[i].downtime);
  }
  PairedComparison out;
  out.failures_diff = failures.mean_ci(settings.confidence);
  out.cost_diff = cost.mean_ci(settings.confidence);
  out.downtime_diff = downtime.mean_ci(settings.confidence);
  out.trajectories = ra.summaries.size();
  return out;
}

std::vector<double> failure_time_quantiles(const fmt::FaultMaintenanceTree& model,
                                           const std::vector<double>& probabilities,
                                           const AnalysisSettings& settings) {
  if (probabilities.empty()) throw DomainError("need at least one probability");
  for (double p : probabilities)
    if (!(p >= 0 && p <= 1)) throw DomainError("quantile probability outside [0,1]");
  const sim::FmtSimulator simulator(model);
  const ParallelRunner runner(simulator, settings.threads);
  sim::SimOptions opts;
  opts.horizon = settings.horizon;
  const BatchResult batch = runner.run(settings.seed, 0, settings.trajectories, opts);

  std::vector<double> times;
  times.reserve(batch.summaries.size());
  for (const TrajectorySummary& t : batch.summaries)
    times.push_back(t.first_failure_time);  // +inf for survivors
  std::sort(times.begin(), times.end());

  std::vector<double> out;
  out.reserve(probabilities.size());
  for (double p : probabilities) {
    const double pos = p * static_cast<double>(times.size() - 1);
    const auto idx = static_cast<std::size_t>(pos);
    const double lo = times[idx];
    const double hi = times[std::min(idx + 1, times.size() - 1)];
    if (std::isinf(lo) || std::isinf(hi)) {
      out.push_back(std::numeric_limits<double>::infinity());
    } else {
      const double frac = pos - static_cast<double>(idx);
      out.push_back(lo * (1 - frac) + hi * frac);
    }
  }
  return out;
}

}  // namespace fmtree::smc
