#include "smc/kpi.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "lang/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"

namespace fmtree::smc {

void validate_settings(const AnalysisSettings& s) {
  if (!(s.horizon > 0)) throw DomainError("analysis horizon must be positive");
  if (s.trajectories == 0) throw DomainError("need at least one trajectory");
  if (!(s.confidence > 0 && s.confidence < 1))
    throw DomainError("confidence must lie in (0,1)");
}

namespace {

/// Runs trajectories (optionally in sequential batches until the relative
/// error target on E[#failures] is met) and returns index-ordered summaries
/// plus integer per-leaf totals. With `record_failure_log`, per-trajectory
/// failure logs ride along in BatchResult::failure_logs.
BatchResult collect(const fmt::FaultMaintenanceTree& model, const AnalysisSettings& s,
                    double horizon, bool record_failure_log = false) {
  auto build_span = obs::maybe_span(s.telemetry.tracer, "build");
  // Scripted policy: simulate the apply_policy transform of the model (its
  // calendars as inspection modules) and hand both engines the bound policy.
  // The transform and binding live here — the single funnel every analysis
  // entry point (KPIs, curves, MTTF) and both engines run through.
  std::optional<fmt::FaultMaintenanceTree> transformed;
  std::optional<lang::BoundPolicy> bound;
  if (s.policy) {
    transformed.emplace(lang::apply_policy(*s.policy, model));
    bound.emplace(lang::bind_policy(*s.policy, *transformed));
  }
  const sim::FmtSimulator simulator(transformed ? *transformed : model);
  build_span.close();
  const ParallelRunner runner(simulator, s.threads);
  sim::SimOptions opts;
  static_cast<RunSettings&>(opts) = s;  // horizon overridden below
  opts.horizon = horizon;
  opts.discount_rate = s.discount_rate;
  opts.record_failure_log = record_failure_log;
  opts.failure_log_cap = s.failure_log_cap;
  if (bound) opts.bound_policy = &*bound;
  obs::MetricsRegistry* metrics = s.telemetry.metrics;
  const obs::CounterId batches_counter =
      metrics != nullptr ? metrics->counter("smc.batches") : obs::CounterId{};
  auto simulate_span = obs::maybe_span(s.telemetry.tracer, "simulate");

  if (s.target_relative_error <= 0) {
    if (metrics != nullptr) metrics->add(batches_counter);
    return runner.run(s.seed, 0, s.trajectories, opts, s.control);
  }

  BatchResult all;
  all.failures_per_leaf.assign(model.num_ebes(), 0);
  all.repairs_per_leaf.assign(model.num_ebes(), 0);
  RunningStats failures;
  const double z = normal_quantile(0.5 + s.confidence / 2.0);
  while (all.summaries.size() < s.trajectories) {
    const std::uint64_t todo =
        std::min<std::uint64_t>(s.batch, s.trajectories - all.summaries.size());
    BatchResult batch = runner.run(s.seed, all.summaries.size(), todo, opts, s.control);
    if (metrics != nullptr) metrics->add(batches_counter);
    for (const TrajectorySummary& t : batch.summaries)
      failures.add(static_cast<double>(t.failures));
    all.summaries.insert(all.summaries.end(), batch.summaries.begin(),
                         batch.summaries.end());
    if (record_failure_log) {
      all.failure_logs.insert(all.failure_logs.end(),
                              std::make_move_iterator(batch.failure_logs.begin()),
                              std::make_move_iterator(batch.failure_logs.end()));
    }
    all.failure_logs_truncated |= batch.failure_logs_truncated;
    for (std::size_t i = 0; i < all.failures_per_leaf.size(); ++i) {
      all.failures_per_leaf[i] += batch.failures_per_leaf[i];
      all.repairs_per_leaf[i] += batch.repairs_per_leaf[i];
    }
    if (batch.truncated) {
      all.truncated = true;
      all.stop_reason = batch.stop_reason;
      break;
    }
    const bool have_ci = failures.count() >= 2 && failures.mean() > 0;
    const double half = have_ci ? z * failures.std_error() : 0.0;
    // The CI-trend snapshot after every adaptive batch: how tight the
    // estimate is versus the requested target, alongside raw throughput.
    if (obs::ProgressReporter* progress = s.telemetry.progress) {
      obs::Progress p;
      p.phase = "simulate";
      p.done = all.summaries.size();
      p.total = s.trajectories;
      p.ci_half_width = have_ci ? half / failures.mean() : -1.0;
      p.ci_target = s.target_relative_error;
      progress->update(p);
    }
    if (have_ci && half <= s.target_relative_error * failures.mean()) break;
  }
  all.completed = all.summaries.size();
  return all;
}

ConfidenceInterval scale(const ConfidenceInterval& ci, double factor) {
  return {ci.point * factor, ci.lo * factor, ci.hi * factor, ci.confidence};
}

}  // namespace

std::vector<double> linspace_grid(double horizon, std::size_t n) {
  if (!(horizon > 0) || n == 0) throw DomainError("bad linspace_grid arguments");
  std::vector<double> grid;
  grid.reserve(n + 1);
  for (std::size_t i = 0; i <= n; ++i)
    grid.push_back(horizon * static_cast<double>(i) / static_cast<double>(n));
  return grid;
}

KpiReport aggregate_kpis(const BatchResult& batch, const AnalysisSettings& settings) {
  if (batch.summaries.empty())
    throw ResourceLimitError(
        "run stopped (" + std::string(stop_reason_name(batch.stop_reason)) +
            ") before any trajectory completed",
        {});
  const auto n = static_cast<double>(batch.summaries.size());
  auto aggregate_span = obs::maybe_span(settings.telemetry.tracer, "aggregate");

  KpiReport report;
  report.horizon = settings.horizon;
  report.trajectories = batch.summaries.size();
  report.truncated = batch.truncated;
  report.stop_reason = batch.stop_reason;

  RunningStats failures, availability, total_cost, npv_cost;
  RunningStats inspections, repairs, replacements;
  fmt::CostBreakdown cost_sum;
  std::uint64_t survived = 0;
  for (const TrajectorySummary& t : batch.summaries) {
    failures.add(static_cast<double>(t.failures));
    availability.add(1.0 - t.downtime / settings.horizon);
    total_cost.add(t.cost.total());
    npv_cost.add(t.discounted_total);
    inspections.add(static_cast<double>(t.inspections));
    repairs.add(static_cast<double>(t.repairs));
    replacements.add(static_cast<double>(t.replacements));
    cost_sum += t.cost;
    if (t.first_failure_time > settings.horizon) ++survived;
  }

  report.reliability =
      wilson_interval(survived, batch.summaries.size(), settings.confidence);
  report.expected_failures = failures.mean_ci(settings.confidence);
  report.failures_per_year = scale(report.expected_failures, 1.0 / settings.horizon);
  report.availability = availability.mean_ci(settings.confidence);
  report.total_cost = total_cost.mean_ci(settings.confidence);
  report.cost_per_year = scale(report.total_cost, 1.0 / settings.horizon);
  report.npv_cost = npv_cost.mean_ci(settings.confidence);
  report.mean_cost = cost_sum / n;
  report.mean_inspections = inspections.mean();
  report.mean_repairs = repairs.mean();
  report.mean_replacements = replacements.mean();

  report.failures_per_leaf.reserve(batch.failures_per_leaf.size());
  for (std::uint64_t f : batch.failures_per_leaf)
    report.failures_per_leaf.push_back(static_cast<double>(f) / n);
  report.repairs_per_leaf.reserve(batch.repairs_per_leaf.size());
  for (std::uint64_t r : batch.repairs_per_leaf)
    report.repairs_per_leaf.push_back(static_cast<double>(r) / n);
  return report;
}

KpiReport analyze(const fmt::FaultMaintenanceTree& model,
                  const AnalysisSettings& settings) {
  validate_settings(settings);
  const BatchResult batch = collect(model, settings, settings.horizon);
  return aggregate_kpis(batch, settings);
}

std::vector<CurvePoint> reliability_curve(const fmt::FaultMaintenanceTree& model,
                                          const std::vector<double>& grid,
                                          const AnalysisSettings& settings) {
  validate_settings(settings);
  if (grid.empty()) throw DomainError("empty grid");
  AnalysisSettings s = settings;
  s.horizon = *std::max_element(grid.begin(), grid.end());
  if (!(s.horizon > 0)) s.horizon = settings.horizon;
  const BatchResult batch = collect(model, s, s.horizon);
  auto aggregate_span = obs::maybe_span(settings.telemetry.tracer, "aggregate");

  // Sorting the first-failure times lets each grid point be answered with a
  // binary search instead of a pass over all trajectories.
  std::vector<double> first_failures;
  first_failures.reserve(batch.summaries.size());
  for (const TrajectorySummary& t : batch.summaries)
    first_failures.push_back(t.first_failure_time);
  std::sort(first_failures.begin(), first_failures.end());

  std::vector<CurvePoint> out;
  out.reserve(grid.size());
  for (double t : grid) {
    const auto it =
        std::upper_bound(first_failures.begin(), first_failures.end(), t);
    const auto surviving = static_cast<std::uint64_t>(first_failures.end() - it);
    out.push_back(CurvePoint{
        t, wilson_interval(surviving, first_failures.size(), settings.confidence)});
  }
  return out;
}

std::vector<CurvePoint> expected_failures_curve(const fmt::FaultMaintenanceTree& model,
                                                const std::vector<double>& grid,
                                                const AnalysisSettings& settings) {
  validate_settings(settings);
  if (grid.empty()) throw DomainError("empty grid");
  const double horizon = *std::max_element(grid.begin(), grid.end());
  if (!(horizon > 0)) throw DomainError("grid needs a positive maximum");

  // Needs per-failure timestamps, so collect with the failure log enabled
  // and bucket counts per grid point. Runs through ParallelRunner under the
  // full settings contract (threads, batch, target_relative_error), like
  // analyze(); bucketing iterates trajectories in index order, so the
  // statistics are bit-identical at any thread count.
  const BatchResult batch =
      collect(model, settings, horizon, /*record_failure_log=*/true);
  if (batch.failure_logs_truncated)
    throw ResourceLimitError(
        "failure-log cap exceeded while estimating the failures curve; raise "
        "AnalysisSettings::failure_log_cap or reduce the trajectory count",
        {.iterations = batch.completed, .residual = 0.0, .states = 0});
  auto aggregate_span = obs::maybe_span(settings.telemetry.tracer, "aggregate");

  std::vector<double> sorted_grid = grid;
  std::sort(sorted_grid.begin(), sorted_grid.end());

  std::vector<RunningStats> counts(grid.size());
  std::vector<double> times;
  for (const std::vector<sim::FailureRecord>& log : batch.failure_logs) {
    times.clear();
    times.reserve(log.size());
    for (const sim::FailureRecord& f : log) times.push_back(f.time);
    std::sort(times.begin(), times.end());
    for (std::size_t g = 0; g < sorted_grid.size(); ++g) {
      const auto it = std::upper_bound(times.begin(), times.end(), sorted_grid[g]);
      counts[g].add(static_cast<double>(it - times.begin()));
    }
  }
  std::vector<CurvePoint> out;
  out.reserve(grid.size());
  for (std::size_t g = 0; g < sorted_grid.size(); ++g)
    out.push_back(CurvePoint{sorted_grid[g], counts[g].mean_ci(settings.confidence)});
  return out;
}

MttfEstimate mean_time_to_failure(const fmt::FaultMaintenanceTree& model,
                                  const AnalysisSettings& settings) {
  validate_settings(settings);
  const BatchResult batch = collect(model, settings, settings.horizon);
  RunningStats ttf;
  std::uint64_t censored = 0;
  for (const TrajectorySummary& t : batch.summaries) {
    if (t.first_failure_time > settings.horizon) {
      ttf.add(settings.horizon);
      ++censored;
    } else {
      ttf.add(t.first_failure_time);
    }
  }
  return MttfEstimate{ttf.mean_ci(settings.confidence), censored,
                      batch.summaries.size()};
}

}  // namespace fmtree::smc
