// Deterministic multi-threaded Monte-Carlo execution of FMT trajectories.
//
// Trajectory i always draws from RandomStream(seed, i), independent of the
// thread that runs it, and floating-point aggregation happens sequentially
// over the index-ordered summaries — so every statistic is bit-for-bit
// reproducible at any thread count.
//
// Each worker thread owns one sim::SimWorkspace reused across all its
// trajectories, so a batch of millions of runs performs no per-trajectory
// allocation in the simulator (the determinism contract is unaffected:
// workspaces carry no state between trajectories).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/fmt_executor.hpp"
#include "smc/run_control.hpp"

namespace fmtree::smc {

/// Compact per-trajectory record retained for aggregation.
struct TrajectorySummary {
  double first_failure_time = 0.0;
  std::uint32_t failures = 0;
  double downtime = 0.0;
  fmt::CostBreakdown cost;
  double discounted_total = 0.0;  ///< NPV of all costs (== cost.total() at rate 0)
  std::uint32_t inspections = 0;
  std::uint32_t repairs = 0;
  std::uint32_t replacements = 0;
};

/// Result of one batch of trajectories.
struct BatchResult {
  /// Ordered by trajectory index (first .. first+completed-1).
  std::vector<TrajectorySummary> summaries;
  /// Integer totals over the batch; order-independent, so summed per thread.
  std::vector<std::uint64_t> failures_per_leaf;
  std::vector<std::uint64_t> repairs_per_leaf;
  /// Per-trajectory failure logs, parallel to `summaries`. Only filled when
  /// SimOptions::record_failure_log is set; empty otherwise.
  std::vector<std::vector<sim::FailureRecord>> failure_logs;
  /// True when at least one trajectory's failure log was dropped because the
  /// batch hit SimOptions::failure_log_cap. Summaries and per-leaf totals
  /// are unaffected; only the auxiliary logs are incomplete.
  bool failure_logs_truncated = false;
  /// Trajectories actually delivered (== the requested count unless the run
  /// was truncated by a RunControl).
  std::uint64_t completed = 0;
  /// True when the batch stopped early. The delivered prefix is still exact:
  /// bit-identical to an untruncated run over the same `completed` streams.
  bool truncated = false;
  StopReason stop_reason = StopReason::None;
};

class ParallelRunner {
public:
  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit ParallelRunner(const sim::FmtSimulator& simulator, unsigned threads = 0);

  /// Runs trajectories with stream ids [first, first+count) under `seed`.
  ///
  /// With a RunControl, workers poll it between trajectories; on a stop the
  /// batch is cut to the longest fully-completed index prefix, so every
  /// delivered statistic is exact for the streams it covers — identical to
  /// running the same seed over just those streams. Without one (`control ==
  /// nullptr`) the batch always runs to completion.
  ///
  /// Telemetry rides in `opts.telemetry`: smc.* counters and the
  /// events-per-trajectory histogram accumulate per worker and merge at the
  /// end of the batch; a ProgressReporter is polled between trajectories.
  /// Telemetry reads counters only — enabling it changes no result bit.
  ///
  /// The trajectory kernel is selected by `opts.engine` (resolved through
  /// FMTREE_ENGINE when Default). The scalar engine runs trajectory i on
  /// RandomStream(seed, first + i); the batch engine runs lane batches of
  /// sim::BatchExecutor on CounterStream(seed, first + i). Either way the
  /// result is bit-identical at any thread count; the batch engine is
  /// additionally invariant to lane width (opts.lane_width) and chunking.
  BatchResult run(std::uint64_t seed, std::uint64_t first, std::uint64_t count,
                  const sim::SimOptions& opts,
                  const RunControl* control = nullptr) const;

  unsigned threads() const noexcept { return threads_; }

private:
  BatchResult run_batch(std::uint64_t seed, std::uint64_t first,
                        std::uint64_t count, const sim::SimOptions& opts,
                        const RunControl* control) const;

  const sim::FmtSimulator& simulator_;
  unsigned threads_;
};

}  // namespace fmtree::smc
