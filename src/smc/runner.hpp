// Deterministic multi-threaded Monte-Carlo execution of FMT trajectories.
//
// Trajectory i always draws from RandomStream(seed, i), independent of the
// thread that runs it, and floating-point aggregation happens sequentially
// over the index-ordered summaries — so every statistic is bit-for-bit
// reproducible at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/fmt_executor.hpp"

namespace fmtree::smc {

/// Compact per-trajectory record retained for aggregation.
struct TrajectorySummary {
  double first_failure_time = 0.0;
  std::uint32_t failures = 0;
  double downtime = 0.0;
  fmt::CostBreakdown cost;
  double discounted_total = 0.0;  ///< NPV of all costs (== cost.total() at rate 0)
  std::uint32_t inspections = 0;
  std::uint32_t repairs = 0;
  std::uint32_t replacements = 0;
};

/// Result of one batch of trajectories.
struct BatchResult {
  /// Ordered by trajectory index (first .. first+count-1).
  std::vector<TrajectorySummary> summaries;
  /// Integer totals over the batch; order-independent, so summed per thread.
  std::vector<std::uint64_t> failures_per_leaf;
  std::vector<std::uint64_t> repairs_per_leaf;
};

class ParallelRunner {
public:
  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit ParallelRunner(const sim::FmtSimulator& simulator, unsigned threads = 0);

  /// Runs trajectories with stream ids [first, first+count) under `seed`.
  BatchResult run(std::uint64_t seed, std::uint64_t first, std::uint64_t count,
                  const sim::SimOptions& opts) const;

  unsigned threads() const noexcept { return threads_; }

private:
  const sim::FmtSimulator& simulator_;
  unsigned threads_;
};

}  // namespace fmtree::smc
