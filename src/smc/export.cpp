#include "smc/export.hpp"

#include <ostream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace fmtree::smc {

namespace {

std::string num(double x) {
  // Full round-trip precision so plots and re-analyses agree exactly.
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", x);
  return buffer;
}

}  // namespace

void write_curve_csv(std::ostream& os, const std::vector<CurvePoint>& curve,
                     const std::string& value_name) {
  CsvWriter writer(os);
  writer.write_row({"t", value_name, "ci_lo", "ci_hi"});
  for (const CurvePoint& p : curve)
    writer.write_row({num(p.t), num(p.value.point), num(p.value.lo), num(p.value.hi)});
}

void write_report_csv(std::ostream& os, const KpiReport& report,
                      const std::vector<std::string>& leaf_names) {
  if (leaf_names.size() != report.failures_per_leaf.size())
    throw DomainError("leaf name count does not match the report");
  CsvWriter writer(os);
  writer.write_row({"kpi", "point", "ci_lo", "ci_hi"});
  const auto row = [&](const std::string& name, const ConfidenceInterval& ci) {
    writer.write_row({name, num(ci.point), num(ci.lo), num(ci.hi)});
  };
  row("reliability", report.reliability);
  row("expected_failures", report.expected_failures);
  row("failures_per_year", report.failures_per_year);
  row("availability", report.availability);
  row("total_cost", report.total_cost);
  row("cost_per_year", report.cost_per_year);
  row("npv_cost", report.npv_cost);
  for (std::size_t i = 0; i < leaf_names.size(); ++i) {
    writer.write_row({"failures_per_horizon:" + leaf_names[i],
                      num(report.failures_per_leaf[i]), "", ""});
    writer.write_row({"repairs_per_horizon:" + leaf_names[i],
                      num(report.repairs_per_leaf[i]), "", ""});
  }
}

}  // namespace fmtree::smc
